(* Hierarchical tracing + metrics. See obs.mli for the design notes;
   the short version: spans always aggregate into the histogram
   registry, sinks (including the Trace collector) see every finished
   span, and fine_span is gated behind the [detailed] flag so hot
   per-item paths cost one boolean read when observability is off.

   Domain safety (the parallel learner runs spans and counters from
   worker domains):
   - counters are atomics — increments from any domain are never lost;
   - the span stack is domain-local ([Domain.DLS]), so nesting depth is
     tracked per domain and parallel spans cannot corrupt each other;
   - registry lookups and histogram updates take [registry_lock]; sink
     delivery (including the Trace buffer) takes [sink_lock]. Both are
     only touched on span finish / handle creation, never per counter
     increment. *)

(* -- Clock -------------------------------------------------------------- *)

(* Wall clock, not [Sys.time]: CPU time silently under-reports blocking
   (sleeps, IO) and multi-domain work, where the process accumulates CPU
   seconds faster than real time. *)
let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now () = !clock ()

(* -- Detail gate --------------------------------------------------------- *)

let detailed = ref false
let set_detailed b = detailed := b
let detailed_enabled () = !detailed

type attr = string * string

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_domain : int;
  sp_attrs : attr list;
}

(* -- Locks --------------------------------------------------------------- *)

(* [registry_lock] guards the counter/histogram hashtables and histogram
   field updates; [sink_lock] guards the sink list and serializes span
   delivery (the Trace buffer mutates inside it). A sink callback may
   create registry handles (it takes [registry_lock] while holding
   [sink_lock]); registry operations never take [sink_lock], so the
   acquisition order is acyclic. *)
let registry_lock = Mutex.create ()
let sink_lock = Mutex.create ()

let locked m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* -- Registries ---------------------------------------------------------- *)

let by_name_compare name_of a b = String.compare (name_of a) (name_of b)

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; value = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
  let value c = Atomic.get c.value
  let name c = c.name
  let reset c = Atomic.set c.value 0

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
    |> List.sort (by_name_compare name)
end

module Histogram = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        { name; count = 0; total = 0.0; min_v = infinity; max_v = neg_infinity }
      in
      Hashtbl.add registry name h;
      h

  let observe h v =
    locked registry_lock @@ fun () ->
    h.count <- h.count + 1;
    h.total <- h.total +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  let count h = h.count
  let total h = h.total
  let mean h = if h.count = 0 then 0.0 else h.total /. float_of_int h.count
  let max_value h = if h.count = 0 then 0.0 else h.max_v
  let min_value h = if h.count = 0 then 0.0 else h.min_v
  let name h = h.name

  let reset h =
    locked registry_lock @@ fun () ->
    h.count <- 0;
    h.total <- 0.0;
    h.min_v <- infinity;
    h.max_v <- neg_infinity

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
    |> List.sort (by_name_compare name)
end

(* -- Sinks --------------------------------------------------------------- *)

type sink = { on_span : span -> unit }

let sinks : sink list ref = ref []

let register_sink s =
  locked sink_lock @@ fun () -> sinks := s :: !sinks

let unregister_sink s =
  locked sink_lock @@ fun () -> sinks := List.filter (fun x -> x != s) !sinks

(* -- Spans --------------------------------------------------------------- *)

(* The stack of open spans, one per domain. Attrs are stored
   newest-first and reversed on finish; [set_attr] therefore shadows
   earlier values for the same key in export order. *)
type frame = {
  f_name : string;
  f_start : float;
  mutable f_attrs : attr list;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let set_attr k v =
  match !(stack ()) with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

let span ?(attrs = []) name f =
  let stack = stack () in
  let fr = { f_name = name; f_start = now (); f_attrs = List.rev attrs } in
  let depth = List.length !stack in
  stack := fr :: !stack;
  Fun.protect
    ~finally:(fun () ->
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ -> stack := List.filter (fun x -> x != fr) !stack);
      let dur = now () -. fr.f_start in
      Histogram.observe (Histogram.make fr.f_name) dur;
      locked sink_lock (fun () ->
          if !sinks <> [] then begin
            let sp =
              {
                sp_name = fr.f_name;
                sp_start = fr.f_start;
                sp_dur = dur;
                sp_depth = depth;
                sp_domain = (Domain.self () :> int);
                sp_attrs = List.rev fr.f_attrs;
              }
            in
            List.iter (fun s -> s.on_span sp) !sinks
          end))
    f

let fine_span ?attrs name f = if !detailed then span ?attrs name f else f ()

(* -- Trace collection + Chrome export ------------------------------------ *)

module Trace = struct
  let limit = ref 1_000_000
  let set_limit n = limit := n

  (* Mutated only from inside [sink_lock] (delivery) or under it
     (clear/stop), so plain refs are safe. *)
  let buf : span list ref = ref []
  let count = ref 0
  let dropped_count = ref 0
  let active_flag = ref false

  let sink =
    {
      on_span =
        (fun sp ->
          if !count < !limit then begin
            buf := sp :: !buf;
            incr count
          end
          else incr dropped_count);
    }

  let start () =
    if not !active_flag then begin
      active_flag := true;
      register_sink sink
    end

  let active () = !active_flag

  let spans () =
    let collected = locked sink_lock (fun () -> !buf) in
    List.stable_sort
      (fun a b -> Float.compare a.sp_start b.sp_start)
      (List.rev collected)

  let stop () =
    if !active_flag then begin
      active_flag := false;
      unregister_sink sink
    end;
    spans ()

  let clear () =
    locked sink_lock @@ fun () ->
    buf := [];
    count := 0;
    dropped_count := 0

  let dropped () = !dropped_count

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let layer_of name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name

  let to_chrome_json (spans : span list) : string =
    let origin =
      List.fold_left (fun acc sp -> Float.min acc sp.sp_start) infinity spans
    in
    let origin = if Float.is_finite origin then origin else 0.0 in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    Buffer.add_string b
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"agenp\"}}";
    List.iter
      (fun sp ->
        Printf.bprintf b
          ",\n\
           {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d"
          (json_escape sp.sp_name)
          (json_escape (layer_of sp.sp_name))
          (sp.sp_domain + 1)
          ((sp.sp_start -. origin) *. 1e6)
          (sp.sp_dur *. 1e6) sp.sp_depth;
        List.iter
          (fun (k, v) ->
            Printf.bprintf b ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
          sp.sp_attrs;
        Buffer.add_string b "}}")
      spans;
    Buffer.add_string b "]}\n";
    Buffer.contents b

  let write_chrome path spans =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_chrome_json spans))
end

(* -- Reset --------------------------------------------------------------- *)

let reset () =
  List.iter Counter.reset (Counter.all ());
  List.iter Histogram.reset (Histogram.all ());
  Trace.clear ()

(* -- Aggregate report ----------------------------------------------------- *)

type span_agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;
  agg_mean : float;
  agg_max : float;
}

type report = {
  r_spans : span_agg list;
  r_counters : (string * int) list;
}

let report () =
  let r_spans =
    Histogram.all ()
    |> List.filter (fun h -> Histogram.count h > 0)
    |> List.map (fun h ->
           {
             agg_name = Histogram.name h;
             agg_count = Histogram.count h;
             agg_total = Histogram.total h;
             agg_mean = Histogram.mean h;
             agg_max = Histogram.max_value h;
           })
  in
  let r_counters =
    Counter.all () |> List.map (fun c -> (Counter.name c, Counter.value c))
  in
  { r_spans; r_counters }

let report_to_string r =
  let b = Buffer.create 1024 in
  if r.r_spans <> [] then begin
    Printf.bprintf b "%-36s %10s %12s %12s %12s\n" "span" "count" "total(s)"
      "mean(s)" "max(s)";
    List.iter
      (fun a ->
        Printf.bprintf b "%-36s %10d %12.6f %12.6f %12.6f\n" a.agg_name
          a.agg_count a.agg_total a.agg_mean a.agg_max)
      r.r_spans
  end;
  if r.r_counters <> [] then begin
    if r.r_spans <> [] then Buffer.add_char b '\n';
    Printf.bprintf b "%-36s %10s\n" "counter" "value";
    List.iter
      (fun (name, v) -> Printf.bprintf b "%-36s %10d\n" name v)
      r.r_counters
  end;
  Buffer.contents b

let pp_report ppf r = Format.pp_print_string ppf (report_to_string r)

let report_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"spans\": {";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "\"%s\": {\"count\": %d, \"total_s\": %.6f, \"mean_s\": %.6f, \"max_s\": %.6f}"
        (Trace.json_escape a.agg_name)
        a.agg_count a.agg_total a.agg_mean a.agg_max)
    r.r_spans;
  Buffer.add_string b "}, \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %d" (Trace.json_escape name) v)
    r.r_counters;
  Buffer.add_string b "}}";
  Buffer.contents b
