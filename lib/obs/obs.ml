(* Hierarchical tracing + metrics + profiling. See obs.mli for the design
   notes; the short version: spans always aggregate into the histogram
   registry, sinks (including the Trace collector) see every finished
   span, and fine_span is gated behind the [detailed] flag so hot
   per-item paths cost one boolean read when observability is off. GC
   accounting is gated the same way behind [gc_stats].

   Domain safety (the parallel learner runs spans and counters from
   worker domains):
   - counters are atomics — increments from any domain are never lost;
   - the span stack is domain-local ([Domain.DLS]), so nesting depth is
     tracked per domain and parallel spans cannot corrupt each other;
   - each histogram and GC aggregate carries its own lock, so two
     domains observing different metrics never contend ([registry_lock]
     only guards the find-or-create tables); sink delivery (including
     the Trace buffer) takes [sink_lock]. All of these are only touched
     on span finish / handle creation, never per counter increment. *)

(* -- Clock -------------------------------------------------------------- *)

(* Wall clock, not [Sys.time]: CPU time silently under-reports blocking
   (sleeps, IO) and multi-domain work, where the process accumulates CPU
   seconds faster than real time. *)
let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock f = clock := f
let use_default_clock () = clock := default_clock
let now () = !clock ()

(* -- Gates --------------------------------------------------------------- *)

let detailed = ref false
let set_detailed b = detailed := b
let detailed_enabled () = !detailed
let gc_stats = ref false
let set_gc_stats b = gc_stats := b
let gc_stats_enabled () = !gc_stats

type attr = string * string

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_domain : int;
  sp_attrs : attr list;
}

(* -- Locks --------------------------------------------------------------- *)

(* [registry_lock] guards the find-or-create hashtables only; each
   histogram / GC aggregate has a lock of its own, so observes on
   different handles never contend. [sink_lock] guards the sink list and
   serializes span delivery (the Trace buffer mutates inside it). A sink
   callback may create registry handles (it takes [registry_lock] while
   holding [sink_lock]); registry operations never take [sink_lock], so
   the acquisition order is acyclic. *)
let registry_lock = Mutex.create ()
let sink_lock = Mutex.create ()

let locked m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* -- Registries ---------------------------------------------------------- *)

let by_name_compare name_of a b = String.compare (name_of a) (name_of b)

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; value = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
  let value c = Atomic.get c.value
  let name c = c.name
  let reset c = Atomic.set c.value 0

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
    |> List.sort (by_name_compare name)
end

module Histogram = struct
  (* Log-bucketed (DDSketch-style): bucket [i] covers (γ^(i-1), γ^i] and
     a value in it is estimated as 2γ^i/(γ+1), so the relative error of
     any quantile estimate is bounded by α = (γ-1)/(γ+1) ≈ 4.8% at
     γ = 1.1 — with fixed memory: one int array regardless of how many
     values are observed. Indices are clamped to [lo_idx, hi_idx]
     (≈ 1.4e-10 s .. 4.6e6 s); non-positive values land in a dedicated
     zero bucket estimated as 0. *)
  let gamma = 1.1
  let inv_log_gamma = 1.0 /. Float.log gamma
  let quantile_relative_error = (gamma -. 1.0) /. (gamma +. 1.0)
  let lo_idx = -240
  let hi_idx = 160
  let n_buckets = hi_idx - lo_idx + 1

  type t = {
    name : string;
    lock : Mutex.t;
    buckets : int array;  (** counts per log bucket, index offset by lo_idx *)
    mutable zero : int;  (** observations <= 0 *)
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h =
        {
          name;
          lock = Mutex.create ();
          buckets = Array.make n_buckets 0;
          zero = 0;
          count = 0;
          total = 0.0;
          min_v = infinity;
          max_v = neg_infinity;
        }
      in
      Hashtbl.add registry name h;
      h

  let bucket_of v =
    let i = int_of_float (Float.ceil (Float.log v *. inv_log_gamma)) in
    if i < lo_idx then lo_idx else if i > hi_idx then hi_idx else i

  (* the DDSketch midpoint estimate for bucket [i] *)
  let value_of_bucket i = 2.0 *. (gamma ** float_of_int i) /. (gamma +. 1.0)

  let observe h v =
    locked h.lock @@ fun () ->
    if v > 0.0 then begin
      let i = bucket_of v in
      h.buckets.(i - lo_idx) <- h.buckets.(i - lo_idx) + 1
    end
    else h.zero <- h.zero + 1;
    h.count <- h.count + 1;
    h.total <- h.total +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

  let count h = locked h.lock @@ fun () -> h.count
  let total h = locked h.lock @@ fun () -> h.total

  let mean h =
    locked h.lock @@ fun () ->
    if h.count = 0 then 0.0 else h.total /. float_of_int h.count

  let max_value h = locked h.lock @@ fun () -> if h.count = 0 then 0.0 else h.max_v
  let min_value h = locked h.lock @@ fun () -> if h.count = 0 then 0.0 else h.min_v
  let name h = h.name

  (* [quantile h q] estimates the q-quantile (the ⌈q·count⌉-th smallest
     observation, q clamped to [0,1]); 0 when empty. Bounded relative
     error [quantile_relative_error] for values inside the bucketed
     range. *)
  let quantile h q =
    locked h.lock @@ fun () ->
    if h.count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int h.count)) in
        if r < 1 then 1 else if r > h.count then h.count else r
      in
      if rank <= h.zero then 0.0
      else begin
        let cum = ref h.zero in
        let result = ref (if h.count = 0 then 0.0 else h.max_v) in
        (try
           for i = 0 to n_buckets - 1 do
             cum := !cum + h.buckets.(i);
             if !cum >= rank then begin
               result := value_of_bucket (i + lo_idx);
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end
    end

  let reset h =
    locked h.lock @@ fun () ->
    Array.fill h.buckets 0 n_buckets 0;
    h.zero <- 0;
    h.count <- 0;
    h.total <- 0.0;
    h.min_v <- infinity;
    h.max_v <- neg_infinity

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
    |> List.sort (by_name_compare name)
end

(* -- GC / allocation accounting ------------------------------------------ *)

module Alloc = struct
  (* Per-span-name allocation aggregates, fed by [span] when the
     [gc_stats] gate is open. [Gc.quick_stat] is per-domain in OCaml 5
     for the minor-heap fields, and a span starts and finishes on the
     same domain, so the deltas are consistent. Deltas are inclusive of
     child spans, like span durations. *)
  type t = {
    name : string;
    lock : Mutex.t;
    mutable count : int;
    mutable minor_words : float;
    mutable promoted_words : float;
    mutable major_collections : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some a -> a
    | None ->
      let a =
        {
          name;
          lock = Mutex.create ();
          count = 0;
          minor_words = 0.0;
          promoted_words = 0.0;
          major_collections = 0;
        }
      in
      Hashtbl.add registry name a;
      a

  let record a ~minor_words ~promoted_words ~major_collections =
    locked a.lock @@ fun () ->
    a.count <- a.count + 1;
    a.minor_words <- a.minor_words +. minor_words;
    a.promoted_words <- a.promoted_words +. promoted_words;
    a.major_collections <- a.major_collections + major_collections

  let name a = a.name
  let count a = locked a.lock @@ fun () -> a.count
  let minor_words a = locked a.lock @@ fun () -> a.minor_words
  let promoted_words a = locked a.lock @@ fun () -> a.promoted_words
  let major_collections a = locked a.lock @@ fun () -> a.major_collections

  let reset a =
    locked a.lock @@ fun () ->
    a.count <- 0;
    a.minor_words <- 0.0;
    a.promoted_words <- 0.0;
    a.major_collections <- 0

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ a acc -> a :: acc) registry [])
    |> List.sort (by_name_compare name)
end

(* -- Rolling windows ------------------------------------------------------ *)

module Window = struct
  (* A sliding-window histogram: the window is split into [n] time
     slots, each a full log-bucket array; a slot is lazily cleared and
     re-stamped when its epoch comes around again, so observations older
     than the window fall out with no timer thread. Queries merge the
     slots whose epoch is still inside the window. Same γ-bucket
     geometry (and error bound) as {!Histogram}. *)
  type slot = {
    mutable s_epoch : int;  (** -1 = never used *)
    s_buckets : int array;
    mutable s_zero : int;
    mutable s_count : int;
    mutable s_total : float;
  }

  type t = {
    name : string;
    lock : Mutex.t;
    window : float;
    slot_s : float;
    slots : slot array;
  }

  let default_window = 30.0
  let default_slots = 15
  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(slots = default_slots) ?(window = default_window) name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some w -> w
    | None ->
      let slots = max 1 slots in
      let window = Float.max 1e-9 window in
      let w =
        {
          name;
          lock = Mutex.create ();
          window;
          slot_s = window /. float_of_int slots;
          slots =
            Array.init slots (fun _ ->
                {
                  s_epoch = -1;
                  s_buckets = Array.make Histogram.n_buckets 0;
                  s_zero = 0;
                  s_count = 0;
                  s_total = 0.0;
                });
        }
      in
      Hashtbl.add registry name w;
      w

  let name w = w.name
  let window_seconds w = w.window
  let n_slots w = Array.length w.slots

  (* epochs count slot widths since clock zero; the clock is clamped to
     0 so a (test) clock that starts negative cannot produce negative
     [mod] indices *)
  let epoch_of w t = int_of_float (Float.floor (Float.max 0.0 t /. w.slot_s))

  let clear_slot s =
    Array.fill s.s_buckets 0 (Array.length s.s_buckets) 0;
    s.s_zero <- 0;
    s.s_count <- 0;
    s.s_total <- 0.0

  let observe w v =
    locked w.lock @@ fun () ->
    let e = epoch_of w (now ()) in
    let s = w.slots.(e mod Array.length w.slots) in
    if s.s_epoch <> e then begin
      clear_slot s;
      s.s_epoch <- e
    end;
    (if v > 0.0 then begin
       let i = Histogram.bucket_of v in
       s.s_buckets.(i - Histogram.lo_idx) <-
         s.s_buckets.(i - Histogram.lo_idx) + 1
     end
     else s.s_zero <- s.s_zero + 1);
    s.s_count <- s.s_count + 1;
    s.s_total <- s.s_total +. v

  (* call with [w.lock] held *)
  let live_slots w =
    let e_now = epoch_of w (now ()) in
    let n = Array.length w.slots in
    Array.to_list w.slots
    |> List.filter (fun s ->
           s.s_epoch > e_now - n && s.s_epoch <= e_now && s.s_count > 0)

  let live_count live = List.fold_left (fun acc s -> acc + s.s_count) 0 live
  let count w = locked w.lock @@ fun () -> live_count (live_slots w)

  let total w =
    locked w.lock @@ fun () ->
    List.fold_left (fun acc s -> acc +. s.s_total) 0.0 (live_slots w)

  let rate w =
    locked w.lock @@ fun () ->
    float_of_int (live_count (live_slots w)) /. w.window

  let quantile w q =
    locked w.lock @@ fun () ->
    let live = live_slots w in
    let count = live_count live in
    if count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int count)) in
        if r < 1 then 1 else if r > count then count else r
      in
      let zero = List.fold_left (fun acc s -> acc + s.s_zero) 0 live in
      if rank <= zero then 0.0
      else begin
        let cum = ref zero in
        let result = ref (Histogram.value_of_bucket Histogram.hi_idx) in
        (try
           for i = 0 to Histogram.n_buckets - 1 do
             List.iter (fun s -> cum := !cum + s.s_buckets.(i)) live;
             if !cum >= rank then begin
               result := Histogram.value_of_bucket (i + Histogram.lo_idx);
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end
    end

  let reset w =
    locked w.lock @@ fun () ->
    Array.iter
      (fun s ->
        clear_slot s;
        s.s_epoch <- -1)
      w.slots

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ w acc -> w :: acc) registry [])
    |> List.sort (by_name_compare name)
end

(* -- SLO tracking --------------------------------------------------------- *)

module Slo = struct
  (* A latency SLO: [objective] of the observations over the rolling
     [window] must land at or under [target] seconds. Windowing reuses
     the {!Window} slot-ring scheme but only counts totals and breaches
     per slot. The burn rate is the pace at which the error budget is
     consumed — windowed breach fraction over the allowed fraction
     (1 - objective): 1.0 spends the budget exactly at the sustainable
     pace, above 1 exhausts it early. *)
  type t = {
    name : string;
    lock : Mutex.t;
    target : float;
    objective : float;
    window : float;
    slot_s : float;
    epochs : int array;
    totals : int array;
    breaches : int array;
    mutable cum_total : int;
    mutable cum_breaches : int;
  }

  type status = {
    slo_name : string;
    slo_target : float;
    slo_objective : float;
    slo_window : float;
    total : int;
    breaches : int;
    window_total : int;
    window_breaches : int;
    compliance : float;
    burn_rate : float;
    budget_remaining : float;
  }

  let default_slots = 15
  let registry : (string, t) Hashtbl.t = Hashtbl.create 8

  let make ?(objective = 0.99) ?(window = 60.0) ~target name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let objective = Float.max 0.0 (Float.min 1.0 objective) in
      let window = Float.max 1e-9 window in
      let n = default_slots in
      let s =
        {
          name;
          lock = Mutex.create ();
          target;
          objective;
          window;
          slot_s = window /. float_of_int n;
          epochs = Array.make n (-1);
          totals = Array.make n 0;
          breaches = Array.make n 0;
          cum_total = 0;
          cum_breaches = 0;
        }
      in
      Hashtbl.add registry name s;
      s

  let name s = s.name
  let target s = s.target
  let objective s = s.objective
  let window_seconds s = s.window
  let epoch_of s t = int_of_float (Float.floor (Float.max 0.0 t /. s.slot_s))

  let record s latency =
    locked s.lock @@ fun () ->
    let e = epoch_of s (now ()) in
    let i = e mod Array.length s.epochs in
    if s.epochs.(i) <> e then begin
      s.epochs.(i) <- e;
      s.totals.(i) <- 0;
      s.breaches.(i) <- 0
    end;
    s.totals.(i) <- s.totals.(i) + 1;
    s.cum_total <- s.cum_total + 1;
    if latency > s.target then begin
      s.breaches.(i) <- s.breaches.(i) + 1;
      s.cum_breaches <- s.cum_breaches + 1
    end

  let status s =
    locked s.lock @@ fun () ->
    let e_now = epoch_of s (now ()) in
    let n = Array.length s.epochs in
    let wt = ref 0 and wb = ref 0 in
    for i = 0 to n - 1 do
      if s.epochs.(i) > e_now - n && s.epochs.(i) <= e_now then begin
        wt := !wt + s.totals.(i);
        wb := !wb + s.breaches.(i)
      end
    done;
    let breach_frac =
      if !wt = 0 then 0.0 else float_of_int !wb /. float_of_int !wt
    in
    (* the epsilon keeps a 100% objective finite instead of dividing by
       zero; any breach then reads as an enormous (but serializable)
       burn rate, which is the right signal *)
    let allowed = Float.max (1.0 -. s.objective) 1e-9 in
    let burn_rate = breach_frac /. allowed in
    {
      slo_name = s.name;
      slo_target = s.target;
      slo_objective = s.objective;
      slo_window = s.window;
      total = s.cum_total;
      breaches = s.cum_breaches;
      window_total = !wt;
      window_breaches = !wb;
      compliance = 1.0 -. breach_frac;
      burn_rate;
      budget_remaining = 1.0 -. burn_rate;
    }

  let reset s =
    locked s.lock @@ fun () ->
    Array.fill s.epochs 0 (Array.length s.epochs) (-1);
    Array.fill s.totals 0 (Array.length s.totals) 0;
    Array.fill s.breaches 0 (Array.length s.breaches) 0;
    s.cum_total <- 0;
    s.cum_breaches <- 0

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) registry [])
    |> List.sort (by_name_compare name)
end

(* -- Sinks --------------------------------------------------------------- *)

type sink = { on_span : span -> unit }

let sinks : sink list ref = ref []

let register_sink s =
  locked sink_lock @@ fun () -> sinks := s :: !sinks

let unregister_sink s =
  locked sink_lock @@ fun () -> sinks := List.filter (fun x -> x != s) !sinks

(* -- Spans --------------------------------------------------------------- *)

(* The stack of open spans, one per domain. Attrs are stored
   newest-first and reversed on finish; [set_attr] therefore shadows
   earlier values for the same key in export order. *)
type frame = {
  f_name : string;
  f_start : float;
  mutable f_attrs : attr list;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let set_attr k v =
  match !(stack ()) with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

(* innermost open span name on this domain, and current depth — the span
   context structured log records carry *)
let current_span_name () =
  match !(stack ()) with [] -> None | f :: _ -> Some f.f_name

let current_depth () = List.length !(stack ())

(* -- Trace context -------------------------------------------------------- *)

module Trace_context = struct
  (* The request-scoped identity: a domain-local (DLS) optional trace
     ID. Root IDs must be unique within a run (the audit-trail
     uniqueness guarantee) and unlikely to collide across runs whose
     JSONL lands in the same place, hence the pid/start-time nonce. *)
  let nonce =
    lazy
      (let t = Unix.gettimeofday () in
       let mix =
         (Unix.getpid () * 1_000_003)
         + int_of_float (Float.rem (t *. 1e3) 1_048_576.0)
       in
       Printf.sprintf "%05x" (mix land 0xfffff))

  let root_counter = Atomic.make 0
  let child_counter = Atomic.make 0

  let key : string option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let slot () = Domain.DLS.get key
  let current () = !(slot ())

  let new_root_id () =
    Printf.sprintf "%s-%06d" (Lazy.force nonce)
      (Atomic.fetch_and_add root_counter 1)

  let child_id () =
    match current () with
    | None -> new_root_id ()
    | Some parent ->
      Printf.sprintf "%s.%d" parent (Atomic.fetch_and_add child_counter 1)

  let with_opt v f =
    let s = slot () in
    let saved = !s in
    s := v;
    Fun.protect ~finally:(fun () -> s := saved) f

  let with_id id f = with_opt (Some id) f

  let scope f =
    match current () with
    | Some id -> f id
    | None ->
      let id = new_root_id () in
      with_id id (fun () -> f id)
end

let span ?(attrs = []) name f =
  let stack = stack () in
  let fr = { f_name = name; f_start = now (); f_attrs = List.rev attrs } in
  let depth = List.length !stack in
  (* [Gc.minor_words ()] reads the domain's allocation pointer directly;
     [quick_stat]'s minor_words field only advances at minor
     collections, so it would under-count short spans to zero. *)
  let gc0 =
    if !gc_stats then Some (Gc.minor_words (), Gc.quick_stat ()) else None
  in
  stack := fr :: !stack;
  Fun.protect
    ~finally:(fun () ->
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ -> stack := List.filter (fun x -> x != fr) !stack);
      let dur = now () -. fr.f_start in
      (match gc0 with
      | Some (mw0, g0) ->
        let g1 = Gc.quick_stat () in
        let minor_words = Gc.minor_words () -. mw0 in
        let promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words in
        let major_collections =
          g1.Gc.major_collections - g0.Gc.major_collections
        in
        Alloc.record (Alloc.make fr.f_name) ~minor_words ~promoted_words
          ~major_collections;
        fr.f_attrs <-
          ("gc.major_collections", string_of_int major_collections)
          :: ("gc.promoted_words", Printf.sprintf "%.0f" promoted_words)
          :: ("gc.minor_words", Printf.sprintf "%.0f" minor_words)
          :: fr.f_attrs
      | None -> ());
      (* stamp the ambient trace ID (if any) last so it exports after
         user attrs; spans outside any trace context are unchanged *)
      (match Trace_context.current () with
      | Some id -> fr.f_attrs <- ("trace", id) :: fr.f_attrs
      | None -> ());
      Histogram.observe (Histogram.make fr.f_name) dur;
      locked sink_lock (fun () ->
          if !sinks <> [] then begin
            let sp =
              {
                sp_name = fr.f_name;
                sp_start = fr.f_start;
                sp_dur = dur;
                sp_depth = depth;
                sp_domain = (Domain.self () :> int);
                sp_attrs = List.rev fr.f_attrs;
              }
            in
            List.iter (fun s -> s.on_span sp) !sinks
          end))
    f

let fine_span ?attrs name f = if !detailed then span ?attrs name f else f ()

(* -- A minimal JSON reader ------------------------------------------------ *)

(* The dependency set has no JSON library; this covers what the bench
   gate (reading BENCH_*.json baselines) and the exporter round-trip
   tests need. Numbers are floats, \u escapes outside the basic escapes
   are replaced with '?'. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
            Buffer.add_char b '\n';
            advance ();
            go ()
          | Some 't' ->
            Buffer.add_char b '\t';
            advance ();
            go ()
          | Some 'r' ->
            Buffer.add_char b '\r';
            advance ();
            go ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              advance ()
            done;
            Buffer.add_char b '?';
            go ()
          | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
          | None -> fail "bad escape")
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> list ()
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end"
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    and list () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let member k = function
    | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Parse_error ("no member " ^ k)))
    | _ -> raise (Parse_error ("no member " ^ k))

  let member_opt k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let to_list = function List l -> l | _ -> raise (Parse_error "not a list")
  let to_str = function Str s -> s | _ -> raise (Parse_error "not a string")
  let to_num = function Num f -> f | _ -> raise (Parse_error "not a number")
  let to_bool = function Bool b -> b | _ -> raise (Parse_error "not a bool")

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
end

(* -- Structured logging --------------------------------------------------- *)

module Log = struct
  type level = Debug | Info | Warn | Error

  let level_to_string = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  (* records below [threshold] are dropped entirely; records at or above
     [stderr_threshold] are additionally mirrored to stderr in a
     one-line human format (no timestamp, so the output is stable under
     test). *)
  let threshold = ref Warn
  let set_level l = threshold := l
  let level () = !threshold
  let enabled l = severity l >= severity !threshold
  let stderr_threshold : level option ref = ref (Some Warn)
  let set_stderr_threshold o = stderr_threshold := o

  let lock = Mutex.create ()
  let chan : out_channel option ref = ref None

  let open_file path =
    locked lock @@ fun () ->
    (match !chan with Some oc -> close_out oc | None -> ());
    chan := Some (open_out path)

  let close_file () =
    locked lock @@ fun () ->
    match !chan with
    | Some oc ->
      chan := None;
      close_out oc
    | None -> ()

  let jsonl_record ts l ~domain ~span ~depth ~trace ~attrs msg =
    let b = Buffer.create 160 in
    Printf.bprintf b "{\"ts\": %.6f, \"level\": \"%s\", \"domain\": %d" ts
      (level_to_string l) domain;
    (match span with
    | Some s -> Printf.bprintf b ", \"span\": \"%s\"" (Json.escape s)
    | None -> Buffer.add_string b ", \"span\": null");
    (match trace with
    | Some t -> Printf.bprintf b ", \"trace\": \"%s\"" (Json.escape t)
    | None -> Buffer.add_string b ", \"trace\": null");
    Printf.bprintf b ", \"depth\": %d, \"msg\": \"%s\", \"attrs\": {" depth
      (Json.escape msg);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "\"%s\": \"%s\"" (Json.escape k) (Json.escape v))
      attrs;
    Buffer.add_string b "}}\n";
    Buffer.contents b

  let log l ?(attrs = []) msg =
    if enabled l then begin
      let ts = now () in
      let domain = (Domain.self () :> int) in
      let span = current_span_name () in
      let depth = current_depth () in
      let trace = Trace_context.current () in
      locked lock (fun () ->
          match !chan with
          | Some oc ->
            output_string oc
              (jsonl_record ts l ~domain ~span ~depth ~trace ~attrs msg);
            flush oc
          | None -> ());
      match !stderr_threshold with
      | Some t when severity l >= severity t ->
        let attr_text =
          if attrs = [] then ""
          else
            Printf.sprintf " (%s)"
              (String.concat ", "
                 (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs))
        in
        Printf.eprintf "%% [%s] %s%s\n%!" (level_to_string l) msg attr_text
      | _ -> ()
    end

  let debug ?attrs msg = log Debug ?attrs msg
  let info ?attrs msg = log Info ?attrs msg
  let warn ?attrs msg = log Warn ?attrs msg
  let error ?attrs msg = log Error ?attrs msg
end

(* -- Policy health -------------------------------------------------------- *)

module Health = struct
  (* Streaming policy-health estimation. One signal per monitored
     boolean stream (a PCP violation, a PEP non-compliance, a PDP
     fallback); each observation updates a cumulative tally, a
     per-GPM-version tally, a count-based rolling window (the last
     [window] observations — request-indexed, so rolling rates do not
     depend on the clock at all), and a Page–Hinkley change-point test
     over the stream mean. The PH statistic for an upward shift is
     m_t − min m_i with m_t = Σ (x_i − mean_i − δ); crossing λ raises a
     structured event into the bounded global ring and re-arms the
     detector from scratch, so one sustained shift raises exactly one
     event. Only event timestamps read the clock ([now ()]), so an
     injected clock ({!set_clock}) makes the whole pipeline
     deterministic. *)

  type config = {
    window : int;
    min_observations : int;
    ph_delta : float;
    ph_lambda : float;
  }

  let default_config =
    { window = 50; min_observations = 10; ph_delta = 0.05; ph_lambda = 2.0 }

  type event = {
    ev_seq : int;
    ev_ts : float;
    ev_signal : string;
    ev_kind : string;  (** ["rate_shift"] (detector) or ["relearn"] (PAdaP) *)
    ev_gpm_version : int;  (** -1 when no version was ever observed *)
    ev_observations : int;
    ev_baseline : float;
    ev_current : float;
    ev_deviation : float;
    ev_old_size : int;
    ev_new_size : int;
    ev_detail : string;
  }

  (* The bounded event ring, global across signals (mirroring the serve
     layer's audit ring): an array indexed by [seq mod capacity], so
     wraparound keeps exactly the newest [capacity] events and
     oldest-first order follows from the sequence numbers. *)
  let ring_lock = Mutex.create ()
  let ring_cap = ref 256
  let ring : event option array ref = ref (Array.make !ring_cap None)
  let ring_total = ref 0

  let set_ring_capacity n =
    locked ring_lock @@ fun () ->
    let n = max 1 n in
    ring_cap := n;
    ring := Array.make n None;
    ring_total := 0

  let clear_events () =
    locked ring_lock @@ fun () ->
    Array.fill !ring 0 (Array.length !ring) None;
    ring_total := 0

  let events_total () = locked ring_lock @@ fun () -> !ring_total

  let events ?last () =
    locked ring_lock @@ fun () ->
    let kept = min !ring_total !ring_cap in
    let kept = match last with Some n -> min kept (max 0 n) | None -> kept in
    let first_seq = !ring_total - kept in
    List.init kept (fun i ->
        match !ring.((first_seq + i) mod !ring_cap) with
        | Some e -> e
        | None -> assert false (* seqs below [ring_total] are always filled *))

  let emit ?(gpm_version = -1) ?(observations = 0) ?(baseline = 0.0)
      ?(current = 0.0) ?(deviation = 0.0) ?(old_size = 0) ?(new_size = 0)
      ?(detail = "") ~signal ~kind () =
    Counter.incr (Counter.make "health.events");
    let ev =
      locked ring_lock @@ fun () ->
      let seq = !ring_total in
      let ev =
        {
          ev_seq = seq;
          ev_ts = now ();
          ev_signal = signal;
          ev_kind = kind;
          ev_gpm_version = gpm_version;
          ev_observations = observations;
          ev_baseline = baseline;
          ev_current = current;
          ev_deviation = deviation;
          ev_old_size = old_size;
          ev_new_size = new_size;
          ev_detail = detail;
        }
      in
      !ring.(seq mod !ring_cap) <- Some ev;
      ring_total := seq + 1;
      ev
    in
    Log.info "health event"
      ~attrs:
        [
          ("signal", signal);
          ("kind", kind);
          ("gpm_version", string_of_int gpm_version);
          ("detail", detail);
        ];
    ev

  type t = {
    name : string;
    lock : Mutex.t;
    config : config;
    mutable count : int;
    mutable positives : int;
    versions : (int, int * int) Hashtbl.t;  (** version -> (n, positives) *)
    recent : bool array;  (** last [window] observations, ring *)
    mutable recent_n : int;
    mutable recent_sum : int;
    mutable ph_n : int;
    mutable ph_mean : float;
    mutable ph_m : float;
    mutable ph_min : float;
    mutable last_version : int;
    mutable alarms : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8

  let make ?(config = default_config) name =
    locked registry_lock @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        {
          name;
          lock = Mutex.create ();
          config = { config with window = max 1 config.window };
          count = 0;
          positives = 0;
          versions = Hashtbl.create 4;
          recent = Array.make (max 1 config.window) false;
          recent_n = 0;
          recent_sum = 0;
          ph_n = 0;
          ph_mean = 0.0;
          ph_m = 0.0;
          ph_min = 0.0;
          last_version = -1;
          alarms = 0;
        }
      in
      Hashtbl.add registry name s;
      s

  let name s = s.name
  let observations s = locked s.lock @@ fun () -> s.count
  let positives s = locked s.lock @@ fun () -> s.positives
  let alarms s = locked s.lock @@ fun () -> s.alarms

  (* rolling rate over the last [window] observations *)
  let rate s =
    locked s.lock @@ fun () ->
    if s.recent_n = 0 then 0.0
    else float_of_int s.recent_sum /. float_of_int s.recent_n

  let overall_rate s =
    locked s.lock @@ fun () ->
    if s.count = 0 then 0.0
    else float_of_int s.positives /. float_of_int s.count

  let version_rates s =
    locked s.lock @@ fun () ->
    Hashtbl.fold
      (fun v (n, p) acc ->
        (v, n, if n = 0 then 0.0 else float_of_int p /. float_of_int n) :: acc)
      s.versions []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

  let observe ?version s positive =
    let fire =
      locked s.lock @@ fun () ->
      let x = if positive then 1.0 else 0.0 in
      s.count <- s.count + 1;
      if positive then s.positives <- s.positives + 1;
      (match version with
      | Some v ->
        s.last_version <- v;
        let n, p = Option.value ~default:(0, 0) (Hashtbl.find_opt s.versions v) in
        Hashtbl.replace s.versions v (n + 1, if positive then p + 1 else p)
      | None -> ());
      let w = Array.length s.recent in
      let i = (s.count - 1) mod w in
      if s.recent_n = w then begin
        if s.recent.(i) then s.recent_sum <- s.recent_sum - 1
      end
      else s.recent_n <- s.recent_n + 1;
      s.recent.(i) <- positive;
      if positive then s.recent_sum <- s.recent_sum + 1;
      (* Page–Hinkley: running mean first, then the cumulative deviation;
         [ph_min] trails the minimum so the statistic measures the rise
         since the stream last looked stationary *)
      s.ph_n <- s.ph_n + 1;
      s.ph_mean <- s.ph_mean +. ((x -. s.ph_mean) /. float_of_int s.ph_n);
      s.ph_m <- s.ph_m +. (x -. s.ph_mean -. s.config.ph_delta);
      if s.ph_m < s.ph_min then s.ph_min <- s.ph_m;
      let stat = s.ph_m -. s.ph_min in
      if s.ph_n >= s.config.min_observations && stat > s.config.ph_lambda
      then begin
        s.alarms <- s.alarms + 1;
        let info =
          ( s.count,
            s.ph_mean,
            (if s.recent_n = 0 then 0.0
             else float_of_int s.recent_sum /. float_of_int s.recent_n),
            stat,
            s.last_version )
        in
        (* re-arm: a fresh baseline, so recovery is observable and each
           further sustained shift raises its own event *)
        s.ph_n <- 0;
        s.ph_mean <- 0.0;
        s.ph_m <- 0.0;
        s.ph_min <- 0.0;
        Some info
      end
      else None
    in
    match fire with
    | Some (obs, baseline, current, stat, version) ->
      ignore
        (emit ~gpm_version:version ~observations:obs ~baseline ~current
           ~deviation:stat ~detail:"page-hinkley" ~signal:s.name
           ~kind:"rate_shift" ())
    | None -> ()

  let reset s =
    locked s.lock @@ fun () ->
    s.count <- 0;
    s.positives <- 0;
    Hashtbl.reset s.versions;
    Array.fill s.recent 0 (Array.length s.recent) false;
    s.recent_n <- 0;
    s.recent_sum <- 0;
    s.ph_n <- 0;
    s.ph_mean <- 0.0;
    s.ph_m <- 0.0;
    s.ph_min <- 0.0;
    s.last_version <- -1;
    s.alarms <- 0

  let find name =
    locked registry_lock @@ fun () -> Hashtbl.find_opt registry name

  let all () =
    locked registry_lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) registry [])
    |> List.sort (by_name_compare name)

  let event_to_json e =
    Printf.sprintf
      "{\"seq\": %d, \"ts\": %.6f, \"signal\": \"%s\", \"kind\": \"%s\", \
       \"gpm_version\": %d, \"observations\": %d, \"baseline\": %.6f, \
       \"current\": %.6f, \"deviation\": %.6f, \"old_size\": %d, \
       \"new_size\": %d, \"detail\": \"%s\"}"
      e.ev_seq e.ev_ts (Json.escape e.ev_signal) (Json.escape e.ev_kind)
      e.ev_gpm_version e.ev_observations e.ev_baseline e.ev_current
      e.ev_deviation e.ev_old_size e.ev_new_size (Json.escape e.ev_detail)

  let event_of_json line =
    let j = Json.parse line in
    let num k = int_of_float (Json.to_num (Json.member k j)) in
    let fnum k = Json.to_num (Json.member k j) in
    let str k = Json.to_str (Json.member k j) in
    {
      ev_seq = num "seq";
      ev_ts = fnum "ts";
      ev_signal = str "signal";
      ev_kind = str "kind";
      ev_gpm_version = num "gpm_version";
      ev_observations = num "observations";
      ev_baseline = fnum "baseline";
      ev_current = fnum "current";
      ev_deviation = fnum "deviation";
      ev_old_size = num "old_size";
      ev_new_size = num "new_size";
      ev_detail = str "detail";
    }

  let write_jsonl path events =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (event_to_json e);
            output_char oc '\n')
          events)

  let read_jsonl path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | "" -> go acc
          | line -> go (event_of_json line :: acc)
        in
        go [])
end

(* -- Trace collection + exporters ---------------------------------------- *)

module Trace = struct
  let limit = ref 1_000_000
  let set_limit n = limit := n

  (* [buf]/[count] are mutated only from inside [sink_lock] (delivery)
     or under it (clear/stop), so plain refs are safe there;
     [dropped_count] is additionally read unsynchronized by [dropped],
     so it is atomic. *)
  let buf : span list ref = ref []
  let count = ref 0
  let dropped_count = Atomic.make 0
  let active_flag = ref false

  let sink =
    {
      on_span =
        (fun sp ->
          if !count < !limit then begin
            buf := sp :: !buf;
            incr count
          end
          else Atomic.incr dropped_count);
    }

  let start () =
    if not !active_flag then begin
      active_flag := true;
      register_sink sink
    end

  let active () = !active_flag

  let spans () =
    let collected = locked sink_lock (fun () -> !buf) in
    List.stable_sort
      (fun a b -> Float.compare a.sp_start b.sp_start)
      (List.rev collected)

  let stop () =
    if !active_flag then begin
      active_flag := false;
      unregister_sink sink
    end;
    spans ()

  let clear () =
    locked sink_lock @@ fun () ->
    buf := [];
    count := 0;
    Atomic.set dropped_count 0

  let dropped () = Atomic.get dropped_count

  let json_escape = Json.escape

  let layer_of name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name

  let to_chrome_json (spans : span list) : string =
    let origin =
      List.fold_left (fun acc sp -> Float.min acc sp.sp_start) infinity spans
    in
    let origin = if Float.is_finite origin then origin else 0.0 in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    Buffer.add_string b
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"agenp\"}}";
    List.iter
      (fun sp ->
        Printf.bprintf b
          ",\n\
           {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d"
          (json_escape sp.sp_name)
          (json_escape (layer_of sp.sp_name))
          (sp.sp_domain + 1)
          ((sp.sp_start -. origin) *. 1e6)
          (sp.sp_dur *. 1e6) sp.sp_depth;
        List.iter
          (fun (k, v) ->
            Printf.bprintf b ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
          sp.sp_attrs;
        Buffer.add_string b "}}")
      spans;
    Buffer.add_string b "]}\n";
    Buffer.contents b

  let write_chrome path spans =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_chrome_json spans))

  (* ---- span tree reconstruction (shared by the flamegraph exporters) --

     Spans arrive flat, in start order, with their nesting depth and
     domain recorded. Because a child both starts after and finishes
     before its parent, scanning each domain's spans in start order with
     a depth-pruned stack rebuilds the call tree exactly. *)

  type node = { nd_span : span; mutable nd_children : node list (* reversed *) }

  let forest_of (spans : span list) : (int * node list) list =
    let domains = Hashtbl.create 4 in
    List.iter
      (fun sp ->
        let d = sp.sp_domain in
        if not (Hashtbl.mem domains d) then Hashtbl.add domains d ())
      spans;
    let per_domain d =
      let roots = ref [] in
      let stack = ref [] in
      List.iter
        (fun sp ->
          if sp.sp_domain = d then begin
            let node = { nd_span = sp; nd_children = [] } in
            (* pop frames at the same or deeper nesting than [sp] *)
            while
              match !stack with
              | top :: _ -> top.nd_span.sp_depth >= sp.sp_depth
              | [] -> false
            do
              stack := List.tl !stack
            done;
            (match !stack with
            | parent :: _ -> parent.nd_children <- node :: parent.nd_children
            | [] -> roots := node :: !roots);
            stack := node :: !stack
          end)
        spans;
      let rec finalize n =
        n.nd_children <- List.rev n.nd_children;
        List.iter finalize n.nd_children
      in
      let roots = List.rev !roots in
      List.iter finalize roots;
      roots
    in
    Hashtbl.fold (fun d () acc -> d :: acc) domains []
    |> List.sort Int.compare
    |> List.map (fun d -> (d, per_domain d))

  (* ---- folded stacks (Brendan Gregg flamegraph.pl / speedscope input) --

     One line per distinct stack: "frame;frame;frame weight", weight in
     integer microseconds of SELF time (span duration minus children).
     When the trace covers several domains, stacks are rooted at a
     synthetic "domainN" frame to keep their timelines apart. *)

  let to_folded (spans : span list) : string =
    let forest = forest_of spans in
    let multi = List.length forest > 1 in
    let weights : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let add_weight path w =
      if w > 0 then
        Hashtbl.replace weights path
          (w + Option.value ~default:0 (Hashtbl.find_opt weights path))
    in
    let rec walk prefix node =
      let sp = node.nd_span in
      let path =
        if prefix = "" then sp.sp_name else prefix ^ ";" ^ sp.sp_name
      in
      let child_time =
        List.fold_left
          (fun acc c -> acc +. c.nd_span.sp_dur)
          0.0 node.nd_children
      in
      let self_us =
        int_of_float (Float.round ((sp.sp_dur -. child_time) *. 1e6))
      in
      add_weight path self_us;
      List.iter (walk path) node.nd_children
    in
    List.iter
      (fun (d, roots) ->
        let prefix = if multi then Printf.sprintf "domain%d" d else "" in
        List.iter (walk prefix) roots)
      forest;
    let lines =
      Hashtbl.fold
        (fun path w acc -> Printf.sprintf "%s %d" path w :: acc)
        weights []
    in
    String.concat "\n" (List.sort String.compare lines)
    ^ if Hashtbl.length weights > 0 then "\n" else ""

  let write_folded path spans =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_folded spans))

  (* ---- speedscope (https://www.speedscope.app/file-format-schema.json) --

     One "evented" profile per domain, times in seconds relative to the
     earliest span. Open/close events are emitted from the reconstructed
     tree, with a monotone cursor so rounding can never produce the
     out-of-order or unbalanced event sequences the schema forbids. *)

  let to_speedscope_json ?(name = "agenp") (spans : span list) : string =
    let forest = forest_of spans in
    let origin =
      List.fold_left (fun acc sp -> Float.min acc sp.sp_start) infinity spans
    in
    let origin = if Float.is_finite origin then origin else 0.0 in
    (* frame table, deduplicated by name *)
    let frame_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let frames_rev = ref [] in
    let frame_id name =
      match Hashtbl.find_opt frame_ids name with
      | Some i -> i
      | None ->
        let i = Hashtbl.length frame_ids in
        Hashtbl.add frame_ids name i;
        frames_rev := name :: !frames_rev;
        i
    in
    let profiles =
      List.map
        (fun (d, roots) ->
          let events = Buffer.create 1024 in
          let first = ref true in
          let cursor = ref 0.0 in
          let emit ty frame at =
            let at = Float.max at !cursor in
            cursor := at;
            if not !first then Buffer.add_string events ",";
            first := false;
            Printf.bprintf events
              "{\"type\":\"%s\",\"frame\":%d,\"at\":%.9f}" ty frame at
          in
          let rec walk node =
            let sp = node.nd_span in
            let fid = frame_id sp.sp_name in
            emit "O" fid (sp.sp_start -. origin);
            List.iter walk node.nd_children;
            emit "C" fid (sp.sp_start -. origin +. sp.sp_dur)
          in
          List.iter walk roots;
          let end_value = !cursor in
          (d, Buffer.contents events, end_value))
        forest
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",";
    Printf.bprintf b "\"name\":\"%s\",\"exporter\":\"agenp-obs\","
      (Json.escape name);
    Buffer.add_string b "\"activeProfileIndex\":0,\"shared\":{\"frames\":[";
    List.iteri
      (fun i fname ->
        if i > 0 then Buffer.add_string b ",";
        Printf.bprintf b "{\"name\":\"%s\"}" (Json.escape fname))
      (List.rev !frames_rev);
    Buffer.add_string b "]},\"profiles\":[";
    List.iteri
      (fun i (d, events, end_value) ->
        if i > 0 then Buffer.add_string b ",";
        Printf.bprintf b
          "{\"type\":\"evented\",\"name\":\"domain %d\",\"unit\":\"seconds\",\"startValue\":0,\"endValue\":%.9f,\"events\":[%s]}"
          d end_value events)
      profiles;
    Buffer.add_string b "]}\n";
    Buffer.contents b

  let write_speedscope ?name path spans =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_speedscope_json ?name spans))
end

(* -- OpenMetrics exposition ----------------------------------------------- *)

module Openmetrics = struct
  (* Text exposition per the OpenMetrics spec: counters carry the
     [_total] suffix (TYPE line on the family name), histograms render
     as summaries with quantile labels, windows and SLOs as labeled
     gauges, and the document ends with "# EOF". Metric names are
     prefixed [agenp_] and sanitized to the allowed charset. *)
  let content_type =
    "application/openmetrics-text; version=1.0.0; charset=utf-8"

  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

  let metric name = "agenp_" ^ sanitize name

  let escape_label v =
    let b = Buffer.create (String.length v + 4) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let labels_text = function
    | [] -> ""
    | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             ls)
      ^ "}"

  let fnum v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.9g" v

  let render ?(extra = []) () =
    let b = Buffer.create 4096 in
    let typed = Hashtbl.create 32 in
    let ty name kind =
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.add typed name ();
        Printf.bprintf b "# TYPE %s %s\n" name kind
      end
    in
    let gauge ?(labels = []) name v =
      ty name "gauge";
      Printf.bprintf b "%s%s %s\n" name (labels_text labels) (fnum v)
    in
    List.iter
      (fun c ->
        let n = metric (Counter.name c) in
        ty n "counter";
        Printf.bprintf b "%s_total %d\n" n (Counter.value c))
      (Counter.all ());
    List.iter
      (fun h ->
        if Histogram.count h > 0 then begin
          let n = metric (Histogram.name h) ^ "_seconds" in
          ty n "summary";
          List.iter
            (fun q ->
              Printf.bprintf b "%s{quantile=\"%g\"} %s\n" n q
                (fnum (Histogram.quantile h q)))
            [ 0.5; 0.9; 0.99 ];
          Printf.bprintf b "%s_sum %s\n" n (fnum (Histogram.total h));
          Printf.bprintf b "%s_count %d\n" n (Histogram.count h)
        end)
      (Histogram.all ());
    List.iter
      (fun w ->
        let c = Window.count w in
        if c > 0 then begin
          let base = metric (Window.name w) ^ "_window" in
          let wl =
            ("window", Printf.sprintf "%gs" (Window.window_seconds w))
          in
          List.iter
            (fun (qn, q) ->
              gauge
                ~labels:[ ("quantile", qn); wl ]
                (base ^ "_seconds") (Window.quantile w q))
            [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ];
          gauge ~labels:[ wl ] (base ^ "_count") (float_of_int c);
          gauge ~labels:[ wl ] (base ^ "_rate") (Window.rate w)
        end)
      (Window.all ());
    List.iter
      (fun s ->
        let st = Slo.status s in
        let base = metric ("slo." ^ Slo.name s) in
        let labels =
          [
            ("target", fnum (Slo.target s));
            ("objective", fnum (Slo.objective s));
          ]
        in
        gauge ~labels (base ^ "_compliance") st.Slo.compliance;
        gauge ~labels (base ^ "_burn_rate") st.Slo.burn_rate;
        gauge ~labels (base ^ "_budget_remaining") st.Slo.budget_remaining;
        ty (base ^ "_breaches") "counter";
        Printf.bprintf b "%s_breaches_total%s %d\n" base (labels_text labels)
          st.Slo.breaches)
      (Slo.all ());
    List.iter
      (fun s ->
        if Health.observations s > 0 then begin
          let base = metric ("health." ^ Health.name s) in
          gauge (base ^ "_rate") (Health.rate s);
          gauge (base ^ "_observations")
            (float_of_int (Health.observations s));
          List.iter
            (fun (v, n, r) ->
              gauge
                ~labels:[ ("gpm_version", string_of_int v) ]
                (base ^ "_version_rate") r;
              gauge
                ~labels:[ ("gpm_version", string_of_int v) ]
                (base ^ "_version_observations") (float_of_int n))
            (Health.version_rates s);
          ty (base ^ "_alarms") "counter";
          Printf.bprintf b "%s_alarms_total %d\n" base (Health.alarms s)
        end)
      (Health.all ());
    let g = Gc.quick_stat () in
    gauge "agenp_gc_minor_words" (Gc.minor_words ());
    gauge "agenp_gc_promoted_words" g.Gc.promoted_words;
    gauge "agenp_gc_major_words" g.Gc.major_words;
    gauge "agenp_gc_minor_collections" (float_of_int g.Gc.minor_collections);
    gauge "agenp_gc_major_collections" (float_of_int g.Gc.major_collections);
    gauge "agenp_gc_compactions" (float_of_int g.Gc.compactions);
    gauge "agenp_gc_heap_words" (float_of_int g.Gc.heap_words);
    List.iter (fun (name, labels, v) -> gauge ~labels (metric name) v) extra;
    Buffer.add_string b "# EOF\n";
    Buffer.contents b
end

(* -- Reset --------------------------------------------------------------- *)

let reset () =
  List.iter Counter.reset (Counter.all ());
  List.iter Histogram.reset (Histogram.all ());
  List.iter Alloc.reset (Alloc.all ());
  List.iter Window.reset (Window.all ());
  List.iter Slo.reset (Slo.all ());
  List.iter Health.reset (Health.all ());
  Health.clear_events ();
  Trace.clear ()

(* -- Aggregate report ----------------------------------------------------- *)

type span_agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;
  agg_mean : float;
  agg_max : float;
  agg_p50 : float;
  agg_p90 : float;
  agg_p99 : float;
  agg_minor_words : float;
  agg_promoted_words : float;
  agg_major_collections : int;
}

type window_agg = {
  w_name : string;
  w_window : float;
  w_count : int;
  w_rate : float;
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
}

type report = {
  r_spans : span_agg list;
  r_counters : (string * int) list;
  r_windows : window_agg list;
  r_slos : Slo.status list;
}

let report () =
  let r_spans =
    Histogram.all ()
    |> List.filter (fun h -> Histogram.count h > 0)
    |> List.map (fun h ->
           let name = Histogram.name h in
           let minor, promoted, major =
             match Alloc.find name with
             | Some a ->
               ( Alloc.minor_words a,
                 Alloc.promoted_words a,
                 Alloc.major_collections a )
             | None -> (0.0, 0.0, 0)
           in
           {
             agg_name = name;
             agg_count = Histogram.count h;
             agg_total = Histogram.total h;
             agg_mean = Histogram.mean h;
             agg_max = Histogram.max_value h;
             agg_p50 = Histogram.quantile h 0.50;
             agg_p90 = Histogram.quantile h 0.90;
             agg_p99 = Histogram.quantile h 0.99;
             agg_minor_words = minor;
             agg_promoted_words = promoted;
             agg_major_collections = major;
           })
  in
  let r_counters =
    Counter.all () |> List.map (fun c -> (Counter.name c, Counter.value c))
  in
  let r_windows =
    Window.all ()
    |> List.filter (fun w -> Window.count w > 0)
    |> List.map (fun w ->
           {
             w_name = Window.name w;
             w_window = Window.window_seconds w;
             w_count = Window.count w;
             w_rate = Window.rate w;
             w_p50 = Window.quantile w 0.50;
             w_p90 = Window.quantile w 0.90;
             w_p99 = Window.quantile w 0.99;
           })
  in
  let r_slos = Slo.all () |> List.map Slo.status in
  { r_spans; r_counters; r_windows; r_slos }

let report_to_string r =
  let b = Buffer.create 1024 in
  let with_alloc =
    List.exists
      (fun a -> a.agg_minor_words > 0.0 || a.agg_major_collections > 0)
      r.r_spans
  in
  if r.r_spans <> [] then begin
    Printf.bprintf b "%-36s %8s %11s %11s %11s %11s %11s %11s" "span" "count"
      "total(s)" "mean(s)" "p50(s)" "p90(s)" "p99(s)" "max(s)";
    if with_alloc then Printf.bprintf b " %14s %12s %6s" "minor(w)" "promoted(w)" "majgc";
    Buffer.add_char b '\n';
    List.iter
      (fun a ->
        Printf.bprintf b "%-36s %8d %11.6f %11.6f %11.6f %11.6f %11.6f %11.6f"
          a.agg_name a.agg_count a.agg_total a.agg_mean a.agg_p50 a.agg_p90
          a.agg_p99 a.agg_max;
        if with_alloc then
          Printf.bprintf b " %14.0f %12.0f %6d" a.agg_minor_words
            a.agg_promoted_words a.agg_major_collections;
        Buffer.add_char b '\n')
      r.r_spans
  end;
  if r.r_windows <> [] then begin
    if Buffer.length b > 0 then Buffer.add_char b '\n';
    Printf.bprintf b "%-36s %8s %8s %10s %11s %11s %11s\n" "window" "last(s)"
      "count" "rate(/s)" "p50(s)" "p90(s)" "p99(s)";
    List.iter
      (fun w ->
        Printf.bprintf b "%-36s %8.0f %8d %10.2f %11.6f %11.6f %11.6f\n"
          w.w_name w.w_window w.w_count w.w_rate w.w_p50 w.w_p90 w.w_p99)
      r.r_windows
  end;
  if r.r_counters <> [] then begin
    if Buffer.length b > 0 then Buffer.add_char b '\n';
    Printf.bprintf b "%-36s %10s\n" "counter" "value";
    List.iter
      (fun (name, v) -> Printf.bprintf b "%-36s %10d\n" name v)
      r.r_counters
  end;
  if r.r_slos <> [] then begin
    if Buffer.length b > 0 then Buffer.add_char b '\n';
    Printf.bprintf b "%-24s %10s %10s %9s %7s %8s %11s %8s\n" "slo" "target(s)"
      "objective" "last(s)" "seen" "breach" "compliance" "burn";
    List.iter
      (fun (st : Slo.status) ->
        Printf.bprintf b "%-24s %10.6f %10.4f %9.0f %7d %8d %11.4f %8.2f\n"
          st.Slo.slo_name st.Slo.slo_target st.Slo.slo_objective
          st.Slo.slo_window st.Slo.window_total st.Slo.window_breaches
          st.Slo.compliance st.Slo.burn_rate)
      r.r_slos
  end;
  Buffer.contents b

let pp_report ppf r = Format.pp_print_string ppf (report_to_string r)

let report_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"spans\": {";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "\"%s\": {\"count\": %d, \"total_s\": %.6f, \"mean_s\": %.6f, \
         \"p50_s\": %.6f, \"p90_s\": %.6f, \"p99_s\": %.6f, \"max_s\": %.6f, \
         \"gc\": {\"minor_words\": %.0f, \"promoted_words\": %.0f, \
         \"major_collections\": %d}}"
        (Json.escape a.agg_name) a.agg_count a.agg_total a.agg_mean a.agg_p50
        a.agg_p90 a.agg_p99 a.agg_max a.agg_minor_words a.agg_promoted_words
        a.agg_major_collections)
    r.r_spans;
  Buffer.add_string b "}, \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": %d" (Json.escape name) v)
    r.r_counters;
  Buffer.add_string b "}, \"windows\": {";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "\"%s\": {\"window_s\": %g, \"count\": %d, \"rate\": %.6f, \"p50_s\": \
         %.6f, \"p90_s\": %.6f, \"p99_s\": %.6f}"
        (Json.escape w.w_name) w.w_window w.w_count w.w_rate w.w_p50 w.w_p90
        w.w_p99)
    r.r_windows;
  Buffer.add_string b "}, \"slos\": {";
  List.iteri
    (fun i (st : Slo.status) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b
        "\"%s\": {\"target_s\": %g, \"objective\": %g, \"window_s\": %g, \
         \"total\": %d, \"breaches\": %d, \"window_total\": %d, \
         \"window_breaches\": %d, \"compliance\": %.6f, \"burn_rate\": %.6f, \
         \"budget_remaining\": %.6f}"
        (Json.escape st.Slo.slo_name) st.Slo.slo_target st.Slo.slo_objective
        st.Slo.slo_window st.Slo.total st.Slo.breaches st.Slo.window_total
        st.Slo.window_breaches st.Slo.compliance st.Slo.burn_rate
        st.Slo.budget_remaining)
    r.r_slos;
  Buffer.add_string b "}}";
  Buffer.contents b
