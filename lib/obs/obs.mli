(** Hierarchical tracing, metrics, and profiling for the whole stack.

    A dependency-free observability substrate: every other library may
    link it, so it links nothing itself (beyond [unix] for the clock).
    Concepts:

    - {e spans} — named, nested wall-clock measurements
      ([Obs.span "ilp.search" @@ fun () -> ...]). Span names follow the
      [layer.operation] convention ([asp.ground], [ilp.learn],
      [agenp.pdp.decide]); the segment before the first dot is the layer
      and becomes the category in trace exports.
    - {e counters} and {e histograms} — a named registry of cheap
      aggregates. Counter increments are a single atomic update on a
      preallocated handle, so they are safe in the hottest loops.
      Histograms are log-bucketed and answer quantile queries
      (p50/p90/p99) with bounded relative error in fixed memory.
    - {e GC accounting} — per-span allocation deltas ([Gc.quick_stat]),
      gated like {!fine_span} so hot paths stay cheap (see
      {!set_gc_stats}).
    - {e sinks} — a pluggable interface receiving every finished span.
      The built-in {!Trace} collector (Chrome [trace_event], folded
      flamegraph, and speedscope exports) is itself a sink; tests and
      embedders can register their own.
    - {e structured logs} — a leveled JSONL logger ({!Log}) that stamps
      each record with the innermost open span, replacing ad-hoc
      [Fmt.epr] warnings in the libraries.

    {2 Cost model and the gates}

    Every span costs two clock reads plus one histogram update. The
    default clock ({!Unix.gettimeofday}) is a few hundred nanoseconds
    per read, so instrumentation on {e per-item} hot paths (a grounder
    delta round, a solver stability check, a learner candidate
    evaluation) uses {!fine_span}, which is a no-op unless
    {!set_detailed} was called — one boolean read when disabled.
    Call-level spans ({!span}) are always measured and always feed the
    aggregate registry, which is what {!report} summarizes.

    GC accounting adds two [Gc.quick_stat] calls per span (tens of
    nanoseconds each — the stat is per-domain and does not stop the
    world) plus one locked aggregate update; it is off by default and
    gated by {!set_gc_stats} independently of the detail gate, so
    latency profiling does not pay for allocation profiling.

    The clock measures {e wall-clock} time and is injectable with
    {!set_clock} so tests can run against a deterministic clock.

    {2 Domain safety}

    State is global but safe to use from multiple domains (the
    parallel learner, [lib/par] fan-outs): counter increments are
    atomic, the span stack is domain-local (each domain nests its own
    spans; {!span.sp_domain} records which domain a span ran on, and
    becomes the [tid] in Chrome exports), and each histogram / GC
    aggregate carries its own lock, so concurrent observes on
    {e different} metrics never contend and concurrent observes on the
    {e same} metric are serialized but lose nothing. Sink delivery and
    the trace buffer are serialized by one internal lock taken only on
    span finish — never per counter increment. Reads of aggregates
    ({!report}, [Histogram.count], …) take the same per-handle locks,
    so they are safe anytime, but a report taken {e during} a parallel
    region is a consistent snapshot per-metric, not across metrics;
    read after parallel regions complete, which is what the CLI and
    bench drivers do. *)

(** {1 Clock} *)

(** Replace the clock (seconds, monotone non-decreasing). Affects all
    subsequent spans; aggregates recorded under the old clock keep
    their values. *)
val set_clock : (unit -> float) -> unit

(** Restore the default clock ([Unix.gettimeofday]: wall-clock
    seconds, so spans covering blocking waits or multi-domain parallel
    sections report real elapsed time — unlike CPU-time clocks such as
    [Sys.time], which under-report sleeps and over-count parallel
    work). *)
val use_default_clock : unit -> unit

(** Current clock reading, in seconds. *)
val now : unit -> float

(** {1 Gates} *)

(** Enable/disable {!fine_span} recording (default: disabled). *)
val set_detailed : bool -> unit

val detailed_enabled : unit -> bool

(** Enable/disable per-span GC/allocation accounting (default:
    disabled). When enabled, every {!span} records [Gc.quick_stat]
    deltas — minor words allocated, words promoted, major collections —
    as span attributes ([gc.minor_words], [gc.promoted_words],
    [gc.major_collections]) and aggregates them per span name (see
    {!Alloc} and the allocation columns of {!report_to_string}).
    Deltas are inclusive of child spans, like durations. *)
val set_gc_stats : bool -> unit

val gc_stats_enabled : unit -> bool

(** {1 Spans} *)

type attr = string * string

type span = {
  sp_name : string;
  sp_start : float;  (** clock reading at span start, seconds *)
  sp_dur : float;  (** duration, seconds *)
  sp_depth : int;
      (** nesting depth {e on the span's own domain}; roots are 0 *)
  sp_domain : int;  (** id of the domain the span ran on; main is 0 *)
  sp_attrs : attr list;
}

(** [span name f] runs [f], measuring it as one span. The duration is
    recorded in the histogram named [name] (see {!report}) and the
    finished span is delivered to every registered sink. Exception-safe:
    the span is recorded even when [f] raises. *)
val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Like {!span} when the detail gate is open ({!set_detailed}); just
    runs the thunk otherwise. For per-item hot-path instrumentation. *)
val fine_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op outside any
    span). Later values for the same key shadow earlier ones in export
    order. *)
val set_attr : string -> string -> unit

(** Name of the innermost open span on the calling domain, if any.
    This is the span context {!Log} records carry. *)
val current_span_name : unit -> string option

(** Number of open spans on the calling domain. *)
val current_depth : unit -> int

(** {1 Trace context}

    Request-scoped identity: a domain-local optional trace ID that
    correlates everything one request touches. While a context is
    installed, every finished {!span} gains a [trace] attribute and
    every {!Log} record a ["trace"] field, so spans, log lines, and the
    serve-layer audit records of one request can be joined end to end.
    The context is domain-local ([Domain.DLS]); [lib/par] fan-outs
    re-install the submitting context on worker domains so it survives
    parallel sections. *)
module Trace_context : sig
  (** A fresh process-unique root ID ([<run-nonce>-<seq>]). The nonce
      mixes pid and start time so IDs from different runs are unlikely
      to collide in shared logs; the sequence makes them unique within
      the run. *)
  val new_root_id : unit -> string

  (** A child of the current context ([<parent>.<seq>]), or a fresh
      root when no context is installed. Used to give each request of a
      batch its own ID under the batch's ambient trace. *)
  val child_id : unit -> string

  (** The trace ID installed on the calling domain, if any. *)
  val current : unit -> string option

  (** [with_id id f] runs [f] with [id] installed, restoring the
      previous context afterwards (exception-safe). *)
  val with_id : string -> (unit -> 'a) -> 'a

  (** Like {!with_id} but installs an optional context verbatim —
      [with_opt None] masks any ambient context. *)
  val with_opt : string option -> (unit -> 'a) -> 'a

  (** [scope f] runs [f id] under the current context when one is
      installed, else under a fresh root installed for the call — the
      entry-point idiom: reuse the caller's trace, or start one. *)
  val scope : (string -> 'a) -> 'a
end

(** {1 Counters, histograms, allocation aggregates} *)

module Counter : sig
  type t

  (** Find-or-create the counter registered under [name]. Handles are
      stable: repeated calls return the same counter. *)
  val make : string -> t

  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit

  val find : string -> t option

  (** All registered counters, sorted by name. *)
  val all : unit -> t list
end

module Histogram : sig
  type t

  (** Find-or-create, like {!Counter.make}. Span durations land in the
      histogram named after the span. *)
  val make : string -> t

  val observe : t -> float -> unit
  val count : t -> int
  val total : t -> float

  (** Mean/max/min observed value; 0 when empty. *)
  val mean : t -> float

  val max_value : t -> float
  val min_value : t -> float

  (** [quantile h q] estimates the q-quantile of the observed values —
      the ⌈q·count⌉-th smallest observation ([q] clamped to [0,1]); 0
      when the histogram is empty.

      Observations are stored in logarithmic buckets (DDSketch-style,
      γ = 1.1): bucket [i] covers the interval (γ{^i-1}, γ{^i}] and is
      estimated by its midpoint 2γ{^i}/(γ+1), so every quantile
      estimate [e] of a true value [v] satisfies
      [|e - v| <= quantile_relative_error * v] — about 4.8% — with
      fixed memory (~400 int buckets spanning 1.4e-10 .. 4.6e6
      seconds; values outside are clamped to the edge buckets,
      non-positive values land in an exact zero bucket). *)
  val quantile : t -> float -> float

  (** The relative error bound α = (γ-1)/(γ+1) of {!quantile}. *)
  val quantile_relative_error : float

  val name : t -> string
  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list
end

(** Per-span-name allocation aggregates, populated by {!span} when
    {!set_gc_stats} is enabled. All figures are inclusive of child
    spans, like span durations. *)
module Alloc : sig
  type t

  (** Find-or-create, like {!Counter.make}. *)
  val make : string -> t

  val record :
    t ->
    minor_words:float ->
    promoted_words:float ->
    major_collections:int ->
    unit

  val name : t -> string

  (** Number of spans that contributed deltas. *)
  val count : t -> int

  val minor_words : t -> float
  val promoted_words : t -> float
  val major_collections : t -> int
  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list
end

(** {1 Rolling windows and SLOs} *)

(** Sliding-window histograms: like {!Histogram} (same log-bucket
    geometry and ±4.8% quantile error) but covering only the last
    [window] seconds. The window is a ring of time slots lazily
    re-stamped as the clock advances, so expiry needs no timer thread;
    queries merge the in-window slots. Deterministic under an injected
    clock ({!set_clock}). *)
module Window : sig
  type t

  (** Find-or-create, like {!Counter.make}. [window] is the covered
      span in seconds (default 30), divided into [slots] ring slots
      (default 15 — the expiry granularity). Parameters are fixed at
      first creation. *)
  val make : ?slots:int -> ?window:float -> string -> t

  val observe : t -> float -> unit

  (** Observations still inside the window. *)
  val count : t -> int

  val total : t -> float

  (** [count / window]: the windowed arrival rate per second. *)
  val rate : t -> float

  (** Windowed quantile, same estimator and error bound as
      {!Histogram.quantile}; 0 when the window is empty. *)
  val quantile : t -> float -> float

  val name : t -> string
  val window_seconds : t -> float
  val n_slots : t -> int
  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list
end

(** Latency SLO tracking with error-budget burn rate. An SLO says:
    over the rolling [window], at least [objective] of observations
    must be at or under [target] seconds. The {e error budget} is the
    allowed breach fraction (1 - objective); the {e burn rate} is the
    windowed breach fraction divided by that allowance — 1.0 spends
    the budget exactly at the sustainable pace, above 1 exhausts it
    early. *)
module Slo : sig
  type t

  type status = {
    slo_name : string;
    slo_target : float;  (** seconds *)
    slo_objective : float;
    slo_window : float;  (** seconds *)
    total : int;  (** observations since creation/reset *)
    breaches : int;  (** cumulative observations over target *)
    window_total : int;
    window_breaches : int;
    compliance : float;  (** windowed in-target fraction; 1 when idle *)
    burn_rate : float;
    budget_remaining : float;
        (** [1 - burn_rate]: fraction of the window's error budget
            unspent; negative when overspent *)
  }

  (** Find-or-create by name; [objective] defaults to 0.99 (clamped to
      [0,1]), [window] to 60 s. Parameters are fixed at first
      creation. *)
  val make : ?objective:float -> ?window:float -> target:float -> string -> t

  (** Record one observed latency (seconds). *)
  val record : t -> float -> unit

  val status : t -> status
  val name : t -> string
  val target : t -> float
  val objective : t -> float
  val window_seconds : t -> float
  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list
end

(** {1 Policy health}

    Streaming health estimation for the generative-policy loop: one
    {!Health.t} per monitored boolean stream (a PCP violation, a PEP
    non-compliance, a PDP fallback). Each {!Health.observe} updates a
    cumulative tally, a per-GPM-version tally, a count-based rolling
    window, and a Page–Hinkley change-point test over the stream mean;
    when the PH statistic crosses the alarm threshold, a structured
    {!Health.event} is appended to a bounded, mutex-guarded global
    event ring (mirroring the serve layer's audit ring) and the
    detector re-arms. Rolling rates are request-indexed (no clock), and
    event timestamps come from {!now}, so the whole pipeline is
    deterministic under an injected clock ({!set_clock}). *)
module Health : sig
  type config = {
    window : int;  (** rolling-rate window, in observations *)
    min_observations : int;
        (** detector warm-up: no alarm before this many observations
            since creation or the last alarm *)
    ph_delta : float;
        (** Page–Hinkley drift tolerance δ: sustained deviation below
            [mean + δ] never accumulates toward an alarm *)
    ph_lambda : float;  (** Page–Hinkley alarm threshold λ *)
  }

  (** window 50, min_observations 10, δ = 0.05, λ = 2.0 — tuned so a
      periodic stationary stream never alarms while a 0→1 rate shift is
      caught within a handful of observations. *)
  val default_config : config

  type t

  (** Find-or-create, like {!Counter.make}. [config] is fixed at first
      creation. *)
  val make : ?config:config -> string -> t

  (** [observe ?version s positive] feeds one boolean observation,
      optionally tallied under GPM version [version]. May raise a
      health event (kind ["rate_shift"]) as a side effect. *)
  val observe : ?version:int -> t -> bool -> unit

  val name : t -> string
  val observations : t -> int
  val positives : t -> int

  (** Positive fraction of the last [window] observations; 0 when
      empty. *)
  val rate : t -> float

  (** Positive fraction of every observation since creation/reset. *)
  val overall_rate : t -> float

  (** Per-GPM-version [(version, observations, rate)], sorted by
      version. Only observations fed with [?version] are tallied. *)
  val version_rates : t -> (int * int * float) list

  (** Number of detector alarms raised by this signal. *)
  val alarms : t -> int

  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list

  (** A structured health event: a detector alarm ([ev_kind =
      "rate_shift"], [ev_baseline] the PH running mean at alarm,
      [ev_current] the rolling rate, [ev_deviation] the PH statistic)
      or a lifecycle event emitted by a layer (the PAdaP's
      ["relearn"], where [ev_old_size]/[ev_new_size] are hypothesis
      sizes, [ev_baseline]/[ev_current] accuracies over the retained
      examples, and [ev_detail] the trigger reason). *)
  type event = {
    ev_seq : int;
    ev_ts : float;
    ev_signal : string;
    ev_kind : string;
    ev_gpm_version : int;  (** -1 when no version was ever observed *)
    ev_observations : int;
    ev_baseline : float;
    ev_current : float;
    ev_deviation : float;
    ev_old_size : int;
    ev_new_size : int;
    ev_detail : string;
  }

  (** Append an event to the global ring (and bump the
      [health.events] counter). Used by the detector internally and by
      layers reporting lifecycle events (e.g. PAdaP re-learns). *)
  val emit :
    ?gpm_version:int ->
    ?observations:int ->
    ?baseline:float ->
    ?current:float ->
    ?deviation:float ->
    ?old_size:int ->
    ?new_size:int ->
    ?detail:string ->
    signal:string ->
    kind:string ->
    unit ->
    event

  (** Retained events, oldest first; [last] keeps only the newest [n]. *)
  val events : ?last:int -> unit -> event list

  (** Events ever emitted (retained or expired from the ring). *)
  val events_total : unit -> int

  (** Resize the ring (default 256 events). Clears retained events. *)
  val set_ring_capacity : int -> unit

  val clear_events : unit -> unit

  (** One JSON object per event: [{"seq", "ts", "signal", "kind",
      "gpm_version", "observations", "baseline", "current",
      "deviation", "old_size", "new_size", "detail"}] — the line format
      of {!write_jsonl} and the [health/1] export. *)
  val event_to_json : event -> string

  (** Parse one JSONL line; raises {!Json.Parse_error} on malformed
      input. *)
  val event_of_json : string -> event

  val write_jsonl : string -> event list -> unit
  val read_jsonl : string -> event list
end

(** Zero every registered counter, histogram, allocation aggregate,
    window, SLO, and health signal (handles stay valid), clear the
    health event ring, and clear the trace buffer. *)
val reset : unit -> unit

(** {1 Sinks} *)

type sink = { on_span : span -> unit }

val register_sink : sink -> unit
val unregister_sink : sink -> unit

(** {1 JSON reading} *)

(** A minimal JSON parser — the dependency set has no JSON library.
    Used by the bench regression gate to load committed baselines and
    by tests to round-trip the exporters. Numbers are parsed as
    floats; [\uXXXX] escapes are not decoded (replaced with ['?']). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (** Parse a complete JSON document; raises {!Parse_error} on
      malformed or trailing input. *)
  val parse : string -> t

  (** Object member access; raises {!Parse_error} when absent or not
      an object. *)
  val member : string -> t -> t

  val member_opt : string -> t -> t option
  val to_list : t -> t list
  val to_str : t -> string
  val to_num : t -> float
  val to_bool : t -> bool

  (** Escape a string for embedding inside JSON double quotes. *)
  val escape : string -> string
end

(** {1 Structured logging} *)

(** Leveled structured logging with span context.

    Records below the threshold ({!set_level}, default [Warn]) are
    dropped at the call site. Enabled records go to the JSONL file
    opened with {!open_file} (one object per line:
    [{"ts": seconds, "level": "...", "domain": n, "span": name-or-null,
    "trace": id-or-null, "depth": n, "msg": "...", "attrs": {...}}] —
    [span]/[depth] are the innermost open span and nesting depth on the
    logging domain, [trace] the ambient {!Trace_context} ID),
    and records at or above the stderr threshold
    ({!set_stderr_threshold}, default [Warn]) are also mirrored to
    stderr as one stable human-readable line
    ([% [level] msg (k=v, ...)] — no timestamp, so test output is
    deterministic). Logging is safe from any domain. *)
module Log : sig
  type level = Debug | Info | Warn | Error

  val level_to_string : level -> string

  (** Minimum level that is recorded at all (default [Warn]). *)
  val set_level : level -> unit

  val level : unit -> level

  (** [enabled l] is true when a record at level [l] would be kept. *)
  val enabled : level -> bool

  (** Minimum level mirrored to stderr; [None] silences stderr
      entirely (default [Some Warn]). *)
  val set_stderr_threshold : level option -> unit

  (** Open (or replace) the JSONL output file. *)
  val open_file : string -> unit

  (** Flush and close the JSONL file, if open. *)
  val close_file : unit -> unit

  val log : level -> ?attrs:attr list -> string -> unit
  val debug : ?attrs:attr list -> string -> unit
  val info : ?attrs:attr list -> string -> unit
  val warn : ?attrs:attr list -> string -> unit
  val error : ?attrs:attr list -> string -> unit
end

(** {1 Trace collection and exporters} *)

module Trace : sig
  (** Start retaining finished spans in memory (idempotent). Retention
      is capped (default 1,000,000 spans); spans beyond the cap are
      counted in {!dropped} instead of retained. *)
  val start : unit -> unit

  val active : unit -> bool

  (** Stop collecting and return the retained spans in start order. *)
  val stop : unit -> span list

  (** Retained spans so far, in start order, without stopping. *)
  val spans : unit -> span list

  val clear : unit -> unit
  val dropped : unit -> int
  val set_limit : int -> unit

  (** Render spans as Chrome [trace_event] JSON (the format of
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}): one
      complete ("ph":"X") event per span with microsecond timestamps
      relative to the earliest span, [cat] set to the span's layer
      (name segment before the first dot), and attributes plus nesting
      depth under [args]. *)
  val to_chrome_json : span list -> string

  val write_chrome : string -> span list -> unit

  (** Render spans as Brendan-Gregg folded stacks (the input format of
      [flamegraph.pl] and of speedscope's "folded" importer): one line
      per distinct call stack, [frame;frame;frame weight], where the
      weight is the stack's {e self} time (duration minus children) in
      integer microseconds, summed over occurrences. The call tree is
      reconstructed from recorded depths per domain; when spans from
      more than one domain are present, stacks are rooted at a
      synthetic [domainN] frame. Lines are sorted for determinism. *)
  val to_folded : span list -> string

  val write_folded : string -> span list -> unit

  (** Render spans as a {{:https://www.speedscope.app}speedscope} JSON
      document ([evented] format, one profile per domain, times in
      seconds relative to the earliest span). Open/close event pairs
      are emitted from the reconstructed call tree with a monotone
      cursor, so the event sequence is always well-nested and
      non-decreasing as the schema requires. [name] defaults to
      ["agenp"]. *)
  val to_speedscope_json : ?name:string -> span list -> string

  val write_speedscope : ?name:string -> string -> span list -> unit
end

(** {1 OpenMetrics exposition} *)

(** Render the registries in the OpenMetrics/Prometheus text format —
    what a [/metrics] endpoint serves. *)
module Openmetrics : sig
  (** The HTTP [Content-Type] of the rendered document. *)
  val content_type : string

  (** Replace characters outside [[a-zA-Z0-9_:]] with ['_']. *)
  val sanitize : string -> string

  (** [metric name] is the exposition name: ["agenp_" ^ sanitize name]. *)
  val metric : string -> string

  (** [render ()] renders every registered counter (as [<name>_total]
      with a [counter] TYPE line), non-empty histogram (as a summary:
      [quantile="0.5"/"0.9"/"0.99"] samples plus [_sum]/[_count],
      suffixed [_seconds]), non-empty window (labeled gauges suffixed
      [_window_seconds]/[_window_count]/[_window_rate]), SLO
      ([_compliance]/[_burn_rate]/[_budget_remaining] gauges and a
      [_breaches_total] counter, labeled with target and objective),
      non-empty health signal (gauges [agenp_health_<name>_rate] /
      [_observations], per-version gauges labeled [gpm_version], and an
      [_alarms_total] counter), and current GC figures ([agenp_gc_*]
      gauges); [extra] appends
      caller gauges as [(name, labels, value)] triples. The document
      ends with ["# EOF"] as the spec requires. *)
  val render :
    ?extra:(string * (string * string) list * float) list -> unit -> string
end

(** {1 Aggregate report} *)

type span_agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** seconds *)
  agg_mean : float;
  agg_max : float;
  agg_p50 : float;  (** {!Histogram.quantile} 0.50 — ±4.8% *)
  agg_p90 : float;
  agg_p99 : float;
  agg_minor_words : float;
      (** total minor-heap words allocated under this span name (0
          unless {!set_gc_stats} was enabled) *)
  agg_promoted_words : float;
  agg_major_collections : int;
}

type window_agg = {
  w_name : string;
  w_window : float;  (** window width, seconds *)
  w_count : int;
  w_rate : float;  (** arrivals per second over the window *)
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
}

type report = {
  r_spans : span_agg list;  (** non-empty histograms, sorted by name *)
  r_counters : (string * int) list;  (** all counters, sorted by name *)
  r_windows : window_agg list;  (** non-empty windows, sorted by name *)
  r_slos : Slo.status list;  (** all registered SLOs, sorted by name *)
}

val report : unit -> report

(** Human-readable table: one line per span name
    ([name count total mean p50 p90 p99 max], plus
    [minor(w) promoted(w) majgc] columns when any allocation data was
    recorded) and one line per counter; window and SLO sections follow
    only when windows/SLOs are registered and non-empty, so reports
    from runs that never used them are unchanged. *)
val report_to_string : report -> string

val pp_report : Format.formatter -> report -> unit

(** One JSON object: [{"spans": {name: {count, total_s, mean_s, p50_s,
    p90_s, p99_s, max_s, gc: {minor_words, promoted_words,
    major_collections}}}, "counters": {name: value}, "windows": {name:
    {window_s, count, rate, p50_s, p90_s, p99_s}}, "slos": {name:
    {target_s, objective, window_s, total, breaches, window_total,
    window_breaches, compliance, burn_rate, budget_remaining}}}]. *)
val report_to_json : report -> string
