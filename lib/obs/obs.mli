(** Hierarchical tracing and metrics for the whole stack.

    A dependency-free observability substrate: every other library may
    link it, so it links nothing itself. Three concepts:

    - {e spans} — named, nested wall-clock measurements
      ([Obs.span "ilp.search" @@ fun () -> ...]). Span names follow the
      [layer.operation] convention ([asp.ground], [ilp.learn],
      [agenp.pdp.decide]); the segment before the first dot is the layer
      and becomes the category in trace exports.
    - {e counters} and {e histograms} — a named registry of cheap
      aggregates. Counter increments are a single field update on a
      preallocated handle, so they are safe in the hottest loops.
    - {e sinks} — a pluggable interface receiving every finished span.
      The built-in {!Trace} collector (Chrome [trace_event] export) is
      itself a sink; tests and embedders can register their own.

    {2 Cost model and the detail gate}

    Every span costs two clock reads plus one histogram update. The
    default clock ({!Unix.gettimeofday}) is a few hundred nanoseconds
    per read, so instrumentation on {e per-item} hot paths (a grounder
    delta round, a solver stability check, a learner candidate
    evaluation) uses {!fine_span}, which is a no-op unless
    {!set_detailed} was called — one boolean read when disabled.
    Call-level spans ({!span}) are always measured and always feed the
    aggregate registry, which is what {!report} summarizes.

    The clock measures {e wall-clock} time and is injectable with
    {!set_clock} so tests can run against a deterministic clock.

    {2 Domain safety}

    State is global but safe to use from multiple domains (the
    parallel learner, [lib/par] fan-outs): counter increments are
    atomic, the span stack is domain-local (each domain nests its own
    spans; {!span.sp_domain} records which domain a span ran on, and
    becomes the [tid] in Chrome exports), and histogram updates, sink
    delivery, and the trace buffer are serialized by internal locks
    taken only on span finish — never per counter increment. Reads of
    aggregates ({!report}, [Histogram.count], …) are not synchronized
    against concurrently {e running} spans; read them from one domain
    after parallel regions complete, which is what the CLI and bench
    drivers do. *)

(** {1 Clock} *)

(** Replace the clock (seconds, monotone non-decreasing). Affects all
    subsequent spans; aggregates recorded under the old clock keep
    their values. *)
val set_clock : (unit -> float) -> unit

(** Restore the default clock ([Unix.gettimeofday]: wall-clock
    seconds, so spans covering blocking waits or multi-domain parallel
    sections report real elapsed time — unlike CPU-time clocks such as
    [Sys.time], which under-report sleeps and over-count parallel
    work). *)
val use_default_clock : unit -> unit

(** Current clock reading, in seconds. *)
val now : unit -> float

(** {1 Detail gate} *)

(** Enable/disable {!fine_span} recording (default: disabled). *)
val set_detailed : bool -> unit

val detailed_enabled : unit -> bool

(** {1 Spans} *)

type attr = string * string

type span = {
  sp_name : string;
  sp_start : float;  (** clock reading at span start, seconds *)
  sp_dur : float;  (** duration, seconds *)
  sp_depth : int;
      (** nesting depth {e on the span's own domain}; roots are 0 *)
  sp_domain : int;  (** id of the domain the span ran on; main is 0 *)
  sp_attrs : attr list;
}

(** [span name f] runs [f], measuring it as one span. The duration is
    recorded in the histogram named [name] (see {!report}) and the
    finished span is delivered to every registered sink. Exception-safe:
    the span is recorded even when [f] raises. *)
val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Like {!span} when the detail gate is open ({!set_detailed}); just
    runs the thunk otherwise. For per-item hot-path instrumentation. *)
val fine_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op outside any
    span). Later values for the same key shadow earlier ones in export
    order. *)
val set_attr : string -> string -> unit

(** {1 Counters and histograms} *)

module Counter : sig
  type t

  (** Find-or-create the counter registered under [name]. Handles are
      stable: repeated calls return the same counter. *)
  val make : string -> t

  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit

  val find : string -> t option

  (** All registered counters, sorted by name. *)
  val all : unit -> t list
end

module Histogram : sig
  type t

  (** Find-or-create, like {!Counter.make}. Span durations land in the
      histogram named after the span. *)
  val make : string -> t

  val observe : t -> float -> unit
  val count : t -> int
  val total : t -> float

  (** Mean/max/min observed value; 0 when empty. *)
  val mean : t -> float

  val max_value : t -> float
  val min_value : t -> float
  val name : t -> string
  val reset : t -> unit
  val find : string -> t option
  val all : unit -> t list
end

(** Zero every registered counter and histogram (handles stay valid)
    and clear the trace buffer. *)
val reset : unit -> unit

(** {1 Sinks} *)

type sink = { on_span : span -> unit }

val register_sink : sink -> unit
val unregister_sink : sink -> unit

(** {1 Trace collection and Chrome export} *)

module Trace : sig
  (** Start retaining finished spans in memory (idempotent). Retention
      is capped (default 1,000,000 spans); spans beyond the cap are
      counted in {!dropped} instead of retained. *)
  val start : unit -> unit

  val active : unit -> bool

  (** Stop collecting and return the retained spans in start order. *)
  val stop : unit -> span list

  (** Retained spans so far, in start order, without stopping. *)
  val spans : unit -> span list

  val clear : unit -> unit
  val dropped : unit -> int
  val set_limit : int -> unit

  (** Render spans as Chrome [trace_event] JSON (the format of
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}): one
      complete ("ph":"X") event per span with microsecond timestamps
      relative to the earliest span, [cat] set to the span's layer
      (name segment before the first dot), and attributes plus nesting
      depth under [args]. *)
  val to_chrome_json : span list -> string

  val write_chrome : string -> span list -> unit
end

(** {1 Aggregate report} *)

type span_agg = {
  agg_name : string;
  agg_count : int;
  agg_total : float;  (** seconds *)
  agg_mean : float;
  agg_max : float;
}

type report = {
  r_spans : span_agg list;  (** non-empty histograms, sorted by name *)
  r_counters : (string * int) list;  (** all counters, sorted by name *)
}

val report : unit -> report

(** Human-readable table: one line per span name
    ([name count total mean max]) and one per counter. *)
val report_to_string : report -> string

val pp_report : Format.formatter -> report -> unit

(** One JSON object: [{"spans": {name: {count, total_s, mean_s,
    max_s}}, "counters": {name: value}}]. *)
val report_to_json : report -> string
