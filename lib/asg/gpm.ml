(** Answer set grammars (Definition 2 of the paper): a CFG whose production
    rules carry annotated ASP programs, plus the two operations the
    learning task needs — [with_context] ([G(C)]: add a program to every
    production's annotation) and [with_hypothesis] ([G : H]: add learned
    rules to specific productions). *)

type t = {
  cfg : Grammar.Cfg.t;
  annotations : (int * Annotation.program) list;
      (** production id -> annotated program *)
  shared : Annotation.program;
      (** rules attached to {e every} production — used for contexts *)
  version : int;
      (** process-unique stamp; every construction/derivation gets a
          fresh one, so equal versions imply the same grammar value *)
}

(* Process-wide version source. Atomic so grammars can be derived from
   worker domains (e.g. the serving layer's batch path) without racing. *)
let next_version = Atomic.make 0
let fresh_version () = Atomic.fetch_and_add next_version 1

let make ?(annotations = []) cfg =
  { cfg; annotations; shared = []; version = fresh_version () }

let cfg g = g.cfg
let shared g = g.shared
let version g = g.version

let annotation g prod_id =
  List.concat_map (fun (id, p) -> if id = prod_id then p else []) g.annotations

(** All annotation rules of the production, including shared (context)
    rules. *)
let full_annotation g prod_id = annotation g prod_id @ g.shared

(** [G(C)]: the grammar constructed by adding program [C] to the annotation
    of every production rule. *)
let with_context g (c : Asp.Program.t) =
  {
    g with
    shared = g.shared @ Annotation.of_asp_program c;
    version = fresh_version ();
  }

(** [G : H]: add each hypothesis rule to the annotation of the production
    it names. *)
let with_hypothesis g (h : (int * Annotation.rule) list) =
  {
    g with
    annotations = g.annotations @ List.map (fun (id, r) -> (id, [ r ])) h;
    version = fresh_version ();
  }

let add_annotation g prod_id rules =
  {
    g with
    annotations = g.annotations @ [ (prod_id, rules) ];
    version = fresh_version ();
  }

(** The underlying CFG with annotations removed (called [G_CF] in the
    paper) is just [cfg g]; the language of that CFG always contains the
    language of [g]. *)

let pp ppf g =
  List.iter
    (fun (p : Grammar.Production.t) ->
      let ann = annotation g p.Grammar.Production.id in
      if ann = [] then Fmt.pf ppf "%a@." Grammar.Production.pp p
      else
        Fmt.pf ppf "%a { %a }@." Grammar.Production.pp p Annotation.pp ann)
    (Grammar.Cfg.productions g.cfg);
  if g.shared <> [] then Fmt.pf ppf "shared { %a }@." Annotation.pp g.shared

let to_string g = Fmt.str "%a" pp g

(** Remove unreachable/unproductive productions from the underlying CFG,
    re-homing annotations onto the surviving productions (annotations of
    dropped productions could never fire and are discarded). Shared
    (context) rules are preserved. *)
let clean (g : t) : t =
  let cleaned, mapping = Grammar.Transform.remove_useless g.cfg in
  let annotations =
    List.filter_map
      (fun (old_id, new_id) ->
        match annotation g old_id with
        | [] -> None
        | rules -> Some (new_id, rules))
      mapping
  in
  { cfg = cleaned; annotations; shared = g.shared; version = fresh_version () }
