(** The [G[PT]] mapping (Section II-A): a parse tree of an ASG induces an
    ASP program by instantiating each node's production annotation at the
    node's trace. The string is in the language of the grammar iff some
    parse tree's induced program has an answer set. *)

(** Build the ASP program induced by [tree] under grammar [g]. *)
let program (g : Gpm.t) (tree : Grammar.Parse_tree.t) : Asp.Program.t =
  let rules =
    List.concat_map
      (fun (trace, (p : Grammar.Production.t), _children) ->
        Annotation.instantiate_program trace
          (Gpm.full_annotation g p.Grammar.Production.id))
      (Grammar.Parse_tree.nodes_with_traces tree)
  in
  Asp.Program.of_rules rules

(** The induced program together with extra ground context facts. *)
let program_with_facts g tree facts =
  Asp.Program.with_facts (program g tree) facts

(** The ground atoms a fact-only context contributes to [tree]'s induced
    program: each atom instantiated at every node's trace — exactly the
    fact rules {!Gpm.with_context} would inject through the shared
    annotation, without rebuilding the grammar or re-inducing the
    program. [program g tree] plus these facts is therefore
    rule-for-rule the program [program (Gpm.with_context g ctx) tree]
    induces (up to rule order), which is what lets a serving layer keep
    the induced program as a frozen incremental-grounding core and
    delta-ground only the context. *)
let context_facts (tree : Grammar.Parse_tree.t) (facts : Asp.Atom.t list) :
    Asp.Atom.t list =
  List.concat_map
    (fun (trace, _p, _children) ->
      List.map
        (fun a -> Annotation.instantiate_atom trace (Annotation.at a))
        facts)
    (Grammar.Parse_tree.nodes_with_traces tree)
