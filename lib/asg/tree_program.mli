(** The [G[PT]] mapping (Section II-A): the ASP program a parse tree
    induces — each node's annotation instantiated at the node's trace. *)

val program : Gpm.t -> Grammar.Parse_tree.t -> Asp.Program.t

val program_with_facts :
  Gpm.t -> Grammar.Parse_tree.t -> Asp.Atom.t list -> Asp.Program.t

(** [context_facts tree facts] is the ground fact set a fact-only context
    contributes to [tree]'s induced program: each atom instantiated at
    every node's trace, mirroring {!Gpm.with_context}'s shared-annotation
    injection. [program g tree] extended with these facts equals (up to
    rule order) [program (Gpm.with_context g ctx) tree] — the
    decomposition behind incremental per-request grounding. *)
val context_facts : Grammar.Parse_tree.t -> Asp.Atom.t list -> Asp.Atom.t list
