(** Language membership for answer set grammars: [s] is in [L(G)] iff at
    least one parse tree of the underlying CFG for [s] induces a program
    with an answer set. *)

let c_hypothesis_evals = Obs.Counter.make "asg.hypothesis_evals"

let tokenize sentence =
  String.split_on_char ' ' sentence |> List.filter (fun s -> s <> "")

(** Does [tree] witness membership (its induced program is satisfiable)? *)
let tree_accepted (g : Gpm.t) tree =
  Obs.Counter.incr c_hypothesis_evals;
  Obs.fine_span "asg.tree_eval" @@ fun () ->
  Asp.Solver.has_answer_set (Tree_program.program g tree)

(** Is the token list in the language of the grammar? Tries parse trees
    lazily and stops at the first satisfiable one. *)
let accepts_tokens (g : Gpm.t) (tokens : string list) : bool =
  Obs.span "asg.membership" @@ fun () ->
  let trees = Grammar.Earley.parses (Gpm.cfg g) tokens in
  List.exists (tree_accepted g) trees

let accepts (g : Gpm.t) (sentence : string) : bool =
  accepts_tokens g (tokenize sentence)

(** Membership under a context: [s ∈ L(G(C))]. *)
let accepts_in_context (g : Gpm.t) ~(context : Asp.Program.t)
    (sentence : string) : bool =
  accepts (Gpm.with_context g context) sentence

(** A witnessing answer set for an accepted sentence, if any — the basis
    for decision explanations. *)
let witness (g : Gpm.t) (sentence : string) : Asp.Solver.model option =
  Obs.span "asg.witness" @@ fun () ->
  let trees = Grammar.Earley.parses (Gpm.cfg g) (tokenize sentence) in
  List.fold_left
    (fun acc tree ->
      match acc with
      | Some _ -> acc
      | None ->
        Obs.Counter.incr c_hypothesis_evals;
        Asp.Solver.first_answer_set (Tree_program.program g tree))
    None trees
