(** Answer set grammars (Definition 2) — the representation of a
    generative policy model: a CFG whose productions carry annotated ASP
    programs, plus the two operations of the learning task: [G(C)]
    (context extension) and [G : H] (hypothesis extension). *)

type t

val make : ?annotations:(int * Annotation.program) list -> Grammar.Cfg.t -> t
val cfg : t -> Grammar.Cfg.t

(** Process-unique version stamp: every construction and every derivation
    ({!make}, {!with_context}, {!with_hypothesis}, {!add_annotation},
    {!clean}) yields a fresh version, so equal versions imply the same
    grammar value. The serving layer keys its decision memo on this, which
    makes cache invalidation on hypothesis/context changes automatic. *)
val version : t -> int

(** Rules attached to every production (contexts). *)
val shared : t -> Annotation.program

(** Annotation of one production (excluding shared rules). *)
val annotation : t -> int -> Annotation.program

(** Annotation of one production including shared rules. *)
val full_annotation : t -> int -> Annotation.program

(** [G(C)]: add a program to every production's annotation. *)
val with_context : t -> Asp.Program.t -> t

(** [G : H]: add each rule to the production it names. *)
val with_hypothesis : t -> (int * Annotation.rule) list -> t

val add_annotation : t -> int -> Annotation.rule list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Remove useless productions (via {!Grammar.Transform}), re-homing
    annotations; shared rules are preserved. *)
val clean : t -> t
