(** A small polymorphic LRU cache: hash table plus intrusive recency
    list. [find] promotes the entry to most-recently-used; [add] evicts
    the least-recently-used entry when the cache is full. Not
    thread-safe — callers serialize access (the serving engine holds one
    mutex over both of its tiers). *)

type ('k, 'v) t

(** [create ~capacity ()] — [capacity] must be at least 1. *)
val create : capacity:int -> unit -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** Lookup; a hit promotes the entry to most-recently-used. *)
val find : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

(** Insert or replace, promoting to most-recently-used. Returns the
    evicted key when the insert pushed the least-recently-used entry
    out. *)
val add : ('k, 'v) t -> 'k -> 'v -> 'k option

(** Keys in recency order, most recently used first — the eviction order
    reversed. Exposed so eviction policy is unit-testable. *)
val keys_newest_first : ('k, 'v) t -> 'k list

(** Total evictions since creation (or the last {!clear}). *)
val evictions : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
