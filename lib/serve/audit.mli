(** The decision audit trail: a bounded, mutex-protected ring of
    per-decision records kept by a serving engine.

    Every decision the engine serves appends one record carrying the
    request's trace ID (joinable against span [trace] attributes and
    log ["trace"] fields), the context fingerprint, model version,
    options, outcome, compliance verdict, cache provenance, and
    latency. The ring keeps the newest [capacity] records; older ones
    are overwritten, but [seq]/[total] keep counting so truncation is
    visible. Records export to JSONL (one object per line) and parse
    back for offline queries ([agenp audit]). *)

type record = {
  seq : int;  (** 0-based position in the engine's decision sequence *)
  ts : float;  (** wall-clock seconds when the decision finished *)
  trace_id : string;
  context_fp : int;  (** [Asp.Program.fingerprint] of the request context *)
  gpm_version : int;
  options : string list;
  chosen : string;
  fallback_used : bool;
  compliant : bool option;
  provenance : string;  (** [Serve.provenance_to_string] of the response *)
  ground_hits : int;
      (** ground-cache hits across {e every} membership check of this
          decision (one per parse tree per option) *)
  ground_misses : int;  (** ditto, misses — [0]/[0] on a memo hit *)
  latency : float;  (** seconds *)
}

type t

(** A ring retaining the newest [capacity] records ([capacity >= 1]
    enforced). *)
val create : capacity:int -> t

val capacity : t -> int

(** Records currently retained. *)
val length : t -> int

(** Records ever added (>= {!length}; the difference was overwritten). *)
val total : t -> int

(** Append one record; assigns and returns its [seq]. Thread-safe. *)
val add :
  t ->
  ts:float ->
  trace_id:string ->
  context_fp:int ->
  gpm_version:int ->
  options:string list ->
  chosen:string ->
  fallback_used:bool ->
  compliant:bool option ->
  provenance:string ->
  ground_hits:int ->
  ground_misses:int ->
  latency:float ->
  int

(** Retained records, oldest first; [last] keeps only the newest [n]. *)
val to_list : ?last:int -> t -> record list

val clear : t -> unit

(** One JSON object (no trailing newline):
    [{"seq", "ts", "trace", "context_fp" (hex string — the 62-bit hash
    would lose bits as a JSON number), "gpm_version", "options",
    "chosen", "fallback_used", "compliant" (bool or null),
    "provenance", "ground_hits", "ground_misses", "latency_s"}]. *)
val record_to_json : record -> string

(** Parse one {!record_to_json} line.
    @raise Obs.Json.Parse_error on malformed input. *)
val record_of_json : string -> record

(** Write records as JSONL, one {!record_to_json} per line. *)
val write_jsonl : string -> record list -> unit

(** Read a JSONL file back (blank lines skipped).
    @raise Obs.Json.Parse_error on malformed lines. *)
val read_jsonl : string -> record list
