(** A minimal [/metrics] exposition endpoint: one background thread
    accepting plain-HTTP GETs on a TCP socket and answering
    [GET /metrics] with the text produced by a caller-supplied render
    function (normally {!Obs.Openmetrics.render} composed with engine
    gauges). Any other path gets a 404; every connection is served and
    closed ([Connection: close]).

    The server is a [Thread] (not a domain): exposition is IO-bound
    and must not compete with the pool domains for cores. Rendering
    runs on the server thread, so the render function must be
    thread-safe — the [Obs] registries are. *)

type t

(** Start listening on [addr]:[port] (defaults: loopback). [port = 0]
    binds an ephemeral port — read the actual one with {!port}.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : ?addr:string -> port:int -> render:(unit -> string) -> unit -> t

(** The bound port (useful after [port = 0]). *)
val port : t -> int

(** Stop accepting, join the thread, close the socket (idempotent). *)
val stop : t -> unit
