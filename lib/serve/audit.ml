(* The bounded decision audit ring. See audit.mli. The ring is an array
   indexed by [seq mod capacity], so wraparound keeps exactly the newest
   [capacity] records and the oldest-first order of [to_list] follows
   from the sequence numbers alone. *)

type record = {
  seq : int;
  ts : float;
  trace_id : string;
  context_fp : int;
  gpm_version : int;
  options : string list;
  chosen : string;
  fallback_used : bool;
  compliant : bool option;
  provenance : string;
  ground_hits : int;
  ground_misses : int;
  latency : float;
}

type t = {
  cap : int;
  buf : record option array;
  mutable total : int;
  mu : Mutex.t;
}

let create ~capacity =
  let cap = max 1 capacity in
  { cap; buf = Array.make cap None; total = 0; mu = Mutex.create () }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let length t = locked t @@ fun () -> min t.total t.cap
let total t = locked t @@ fun () -> t.total

let add t ~ts ~trace_id ~context_fp ~gpm_version ~options ~chosen
    ~fallback_used ~compliant ~provenance ~ground_hits ~ground_misses ~latency
    =
  locked t @@ fun () ->
  let seq = t.total in
  t.buf.(seq mod t.cap) <-
    Some
      {
        seq;
        ts;
        trace_id;
        context_fp;
        gpm_version;
        options;
        chosen;
        fallback_used;
        compliant;
        provenance;
        ground_hits;
        ground_misses;
        latency;
      };
  t.total <- t.total + 1;
  seq

let to_list ?last t =
  locked t @@ fun () ->
  let kept = min t.total t.cap in
  let kept = match last with Some n -> min kept (max 0 n) | None -> kept in
  let first_seq = t.total - kept in
  List.init kept (fun i ->
      match t.buf.((first_seq + i) mod t.cap) with
      | Some r -> r
      | None -> assert false (* seqs below [total] are always filled *))

let clear t =
  locked t @@ fun () ->
  Array.fill t.buf 0 t.cap None;
  t.total <- 0

let record_to_json r =
  let b = Buffer.create 256 in
  (* the fingerprint is a 62-bit hash: as a JSON number it would lose
     bits to float round-tripping, so it travels as a hex string *)
  Printf.bprintf b
    "{\"seq\": %d, \"ts\": %.6f, \"trace\": \"%s\", \"context_fp\": \"%x\", \
     \"gpm_version\": %d, \"options\": [%s], \"chosen\": \"%s\", \
     \"fallback_used\": %b, \"compliant\": %s, \"provenance\": \"%s\", \
     \"ground_hits\": %d, \"ground_misses\": %d, \"latency_s\": %.9f}"
    r.seq r.ts
    (Obs.Json.escape r.trace_id)
    r.context_fp r.gpm_version
    (String.concat ", "
       (List.map
          (fun o -> Printf.sprintf "\"%s\"" (Obs.Json.escape o))
          r.options))
    (Obs.Json.escape r.chosen)
    r.fallback_used
    (match r.compliant with
    | Some true -> "true"
    | Some false -> "false"
    | None -> "null")
    (Obs.Json.escape r.provenance)
    r.ground_hits r.ground_misses r.latency;
  Buffer.contents b

let record_of_json line =
  let j = Obs.Json.parse line in
  let num k = int_of_float (Obs.Json.to_num (Obs.Json.member k j)) in
  let fnum k = Obs.Json.to_num (Obs.Json.member k j) in
  let str k = Obs.Json.to_str (Obs.Json.member k j) in
  {
    seq = num "seq";
    ts = fnum "ts";
    trace_id = str "trace";
    context_fp =
      (match int_of_string_opt ("0x" ^ str "context_fp") with
      | Some fp -> fp
      | None -> raise (Obs.Json.Parse_error "bad context_fp"));
    gpm_version = num "gpm_version";
    options =
      List.map Obs.Json.to_str (Obs.Json.to_list (Obs.Json.member "options" j));
    chosen = str "chosen";
    fallback_used = Obs.Json.to_bool (Obs.Json.member "fallback_used" j);
    compliant =
      (match Obs.Json.member "compliant" j with
      | Obs.Json.Null -> None
      | v -> Some (Obs.Json.to_bool v));
    provenance = str "provenance";
    (* absent in pre-ground-count exports; default 0 keeps old trails
       readable *)
    ground_hits =
      (match Obs.Json.member_opt "ground_hits" j with
      | Some v -> int_of_float (Obs.Json.to_num v)
      | None -> 0);
    ground_misses =
      (match Obs.Json.member_opt "ground_misses" j with
      | Some v -> int_of_float (Obs.Json.to_num v)
      | None -> 0);
    latency = fnum "latency_s";
  }

let write_jsonl path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (record_to_json r);
          output_char oc '\n')
        records)

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc
        | line -> go (record_of_json line :: acc)
      in
      go [])
