(** The policy-decision serving layer: a request/response engine over a
    generative policy model ({!Asg.Gpm}) that makes repeated decisions
    fast with two cache tiers, and a sharded multi-tenant front
    ({!Cluster}) that runs one isolated engine per tenant behind a
    bounded ingestion queue.

    {2 Decision semantics}

    A request carries a context and candidate options in preference
    order. The decision is the first option admitted by the model in
    that context ([s ∈ L(G(C))]); when the model admits none, the last
    option is returned as a flagged fail-safe. Cached and uncached paths
    return bit-identical decisions — caches only change latency, never
    outcomes (pinned by the differential property tests).

    {2 Cache tiers}

    - {b Ground-program (core) cache}: each membership check grounds an
      induced ASP program. For the common fact-only context the engine
      splits the program in two: the {e context-free core} the parse
      tree induces — frozen once via {!Asp.Grounder.Incremental.freeze},
      paired with its precompiled solver state ({!Asp.Solver.prepare}),
      and cached keyed by {!Asp.Program.fingerprint} (hits confirmed
      with {!Asp.Program.equal}) — and the per-request context facts,
      which are {e delta-grounded} against the frozen core
      ({!Asp.Grounder.Incremental.delta_with}) and {e delta-solved}
      against the prepared state
      ({!Asp.Solver.has_answer_set_prepared}), so a warm check pays for
      its delta only, never a recompile of the core. A context that
      touches a latent negative literal or dormant choice of the core
      repairs it via {!Asp.Grounder.Incremental.ground_with} and solves
      the combined program whole. The cache key no longer embeds the
      context, so distinct contexts over the same model hit the same
      core and per-request grounding cost scales with context size, not
      program size. Contexts carrying proper rules fall back to
      freezing the full context-baked program (counted in
      [delta.fallbacks]); structurally recurring rule contexts still
      hit. Keys do not mention the model version: a structurally
      recurring program stays warm across adaptations. A fingerprint
      collision (resident key, unequal program) replaces the resident
      entry; it is counted in the tier's own [collisions] counter,
      separately from capacity evictions.
    - {b Decision memo}: whole decisions keyed by (GPM version, context
      fingerprint, options). {!Asg.Gpm.version} is bumped by every
      [with_context]/[with_hypothesis]/adaptation, so stale entries are
      unreachable by construction; {!set_gpm} additionally clears the
      memo explicitly when the model changes, and {!invalidate} drops
      both tiers.

    Both tiers use LRU eviction ({!Lru}) and report
    hit/miss/eviction/collision counters plus latency histograms
    through [lib/obs] (spans [serve.decide] / [serve.batch], counters
    [serve.*], rolling window [serve.decide]).

    {2 Multi-tenant serving}

    {!Cluster} scales the engine to many tenants: each tenant (an AMS,
    a coalition member, a party in the FLAP sense) owns a {!Shard} —
    its own engine, so its own decision memo, ground cache, GPM
    version stamp, latency window and health signal. Shards share no
    mutable state: tenants never contend on a lock and a model swap on
    one tenant ({!Cluster.set_gpm}) cannot invalidate another's
    entries. Requests carry a [tenant] id and enter through a bounded
    queue ({!Cluster.submit}); when the queue is full the cluster
    answers [Rejected Queue_full] immediately — backpressure is
    explicit, never silent. {!Cluster.drain} serves the queue,
    {e coalescing} identical (tenant, context, options) requests so
    duplicates in one drain window resolve from a single computation,
    and fanning the distinct work across a [lib/par] pool. Responses
    carry shard provenance ({!Response.t.shard}).

    {2 The ops plane}

    Every served decision is request-scoped: {!decide} runs under an
    [Obs.Trace_context] scope (reusing the ambient trace or rooting a
    fresh one), so its span, any grounder/solver spans and log lines
    beneath it, the audit record, and {!Response.t.trace_id} all carry
    one ID; {!Batch.run} gives each request a child ID that survives
    the [lib/par] fan-out, and so does every request queued through a
    {!Cluster}. Decisions are recorded in a bounded {!Audit} ring
    (JSONL-exportable), latency feeds a rolling [serve.decide] window
    and an optional {!Obs.Slo}, and {!openmetrics} (servable over TCP
    via {!Metrics}) exposes it all in the Prometheus/OpenMetrics text
    format — {!Cluster.openmetrics} adds per-shard gauges labeled by
    tenant. *)

module Lru = Lru
module Audit = Audit
module Metrics = Metrics

exception No_options
(** Raised by {!decide}/{!decide_uncached} on a request with an empty
    options list — there is nothing to decide and no fail-safe to fall
    back to. *)

module Request : sig
  type t = {
    context : Asp.Program.t;  (** the facts/rules the decision is made in *)
    options : string list;
        (** candidate decisions in preference order; last is the
            fail-safe *)
    priority : int;
        (** batch scheduling priority (higher first); does not affect
            the decision *)
    deadline : float option;
        (** latency budget in seconds; exceeding it is only {e reported}
            (via {!Response.t.deadline_missed}), never enforced *)
    tenant : string;
        (** the tenant whose shard must serve this request; routing
            only — a single engine ignores it. ["default"] unless set *)
  }

  val make :
    ?priority:int ->
    ?deadline:float ->
    ?tenant:string ->
    context:Asp.Program.t ->
    options:string list ->
    unit ->
    t
end

module Decision : sig
  (** The single decision payload of the serving API — also aliased as
      [Agenp.Decision] and folded into the PDP/PEP surfaces. *)
  type t = {
    chosen : string;
    valid_options : string list;
        (** every option the model admits, in preference order *)
    fallback_used : bool;  (** the model admitted nothing *)
    compliant : bool option;
        (** monitoring verdict, filled in at enforcement time; [None]
            until the PEP has seen the decision *)
  }

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Where a response came from. *)
type provenance =
  | Cold  (** full membership evaluation, no cache helped *)
  | Ground_hit  (** decision recomputed, but on cached ground programs *)
  | Memo_hit  (** whole decision served from the memo *)

val provenance_to_string : provenance -> string

module Response : sig
  type t = {
    decision : Decision.t;
    trace_id : string;
        (** the request's trace ID — the one on its spans, log lines,
            and audit record *)
    provenance : provenance;
    latency : float;  (** seconds spent serving this request *)
    gpm_version : int;  (** model version that made the decision *)
    deadline_missed : bool;
        (** latency exceeded the request's deadline (if any) *)
    shard : string;
        (** name of the engine that served this request — the tenant
            when routed through a {!Cluster}, ["default"] otherwise *)
  }
end

module Config : sig
  (** Engine configuration, grouped by concern. *)

  type caching = {
    decision_cache : int;  (** decision-memo capacity (entries) *)
    ground_cache : int;  (** ground-program cache capacity (entries) *)
  }

  type audit = {
    capacity : int;
        (** audit-ring capacity (records); [0] disables the trail *)
  }

  type slo = {
    target : float option;
        (** latency SLO target in seconds; [None] tracks no SLO *)
    objective : float;  (** fraction that must meet the target *)
    window : float;  (** SLO rolling window, seconds *)
  }

  type t = { caching : caching; audit : audit; slo : slo }

  (** 256 decisions, 512 ground programs, 1024 audit records, no SLO
      (objective 0.99 over 60 s once a target is set). *)
  val default : t
end

(** Per-tier cache statistics of one engine. *)
type tier_stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries pushed out by capacity pressure *)
  collisions : int;
      (** fingerprint collisions: a resident key whose stored program
          was not structurally equal to the probe — the resident is
          replaced, which is neither a hit nor a capacity eviction *)
  entries : int;
  cap : int;
}

(** Incremental-grounding statistics: how much serving work ran as
    delta-grounding over a cached core rather than full regrounds. *)
type delta_stats = {
  delta_grounds : int;  (** delta grounds performed (core reused) *)
  delta_facts : int;  (** context facts delta-grounded, instantiated *)
  delta_rules : int;  (** ground rules the deltas added *)
  fallbacks : int;  (** rule-bearing contexts, full core freeze *)
}

type stats = {
  decisions : tier_stats;
  grounds : tier_stats;
  delta : delta_stats;
}

(** [hits / (hits + misses)]; 0 before any lookup. *)
val hit_rate : tier_stats -> float

val pp_stats : Format.formatter -> stats -> unit

type t

(** A fresh engine serving [gpm]. [name] is the shard provenance
    reported on responses (default ["default"]); clusters name each
    shard engine after its tenant. *)
val create : ?name:string -> ?config:Config.t -> Asg.Gpm.t -> t

val name : t -> string
val gpm : t -> Asg.Gpm.t
val config : t -> Config.t

(** Swap the served model (e.g. after the PAdaP adapts). A version
    change clears the decision memo — the explicit invalidation backing
    the version-keyed one — and keeps the ground cache, whose
    fingerprint keys are model-independent. *)
val set_gpm : t -> Asg.Gpm.t -> unit

(** Drop both cache tiers (statistics survive). *)
val invalidate : t -> unit

(** Serve one request through the caches. Thread-safe: the engine may be
    shared across pool domains (cache state affects only speed, never
    the decision). @raise No_options on an empty options list. *)
val decide : t -> Request.t -> Response.t

(** The cache-free reference path: evaluates membership directly through
    {!Asg.Membership}. The differential oracle for the cached engine.
    @raise No_options on an empty options list. *)
val decide_uncached : Asg.Gpm.t -> Request.t -> Decision.t

val stats : t -> stats

(** The engine's decision audit ring, unless disabled by
    [audit.capacity = 0]. *)
val audit : t -> Audit.t option

(** The engine's SLO handle, when [slo.target] is configured. The
    handle is the [Obs.Slo] registered as ["serve.decide"], so it also
    appears in [Obs.report]. *)
val slo : t -> Obs.Slo.t option

(** One JSON object (schema [serve-stats/4]):
    [{"schema", "gpm_version", "requests", "decision_cache": tier,
    "ground_cache": tier, "delta": {"grounds", "facts", "rules_added",
    "fallbacks"}, "audit": {"capacity", "retained", "total"} or null,
    "health": {"signals": [{"signal", "observations", "positives",
    "rate", "overall_rate", "alarms"}], "events"}}]
    with [tier = {"hits", "misses", "evictions", "collisions",
    "entries", "capacity", "hit_rate"}]. The health section reports
    every {!Obs.Health} signal with observations (process-wide — the
    policy-health plane is global, not per-engine) plus the total
    health-event count. The machine-readable face of {!pp_stats}. *)
val stats_to_json : t -> string

(** The OpenMetrics exposition for this engine:
    {!Obs.Openmetrics.render} extended with per-tier gauges
    ([agenp_serve_cache_entries]/[_capacity]/[_hit_rate]/
    [_collisions], labeled [tier="decision"|"ground"]). This is what a
    {!Metrics} server should render. *)
val openmetrics : t -> string

module Batch : sig
  (** The deterministic dispatch order over a request array: by priority
      (higher first), then earliest deadline (no deadline last), then
      input position. Exposed for scheduling tests; {!run} dispatches in
      exactly this order. *)
  val schedule : Request.t array -> int array

  (** Fan a batch across [pool] (default {!Par.Config.pool}), scheduling
      higher-priority requests first and, within a priority class,
      earlier-deadline requests first, and return responses in {e input}
      order. Decisions are deterministic at every pool size — each
      request is evaluated in isolation and caches never change
      outcomes; provenance and latency naturally vary with scheduling.

      The batch runs under one trace scope; every request is assigned
      its own child trace ID at submission (so IDs are unique across
      the batch and chain to any ambient trace) and carries it to
      whichever pool domain serves it. *)
  val run : ?pool:Par.t -> t -> Request.t list -> Response.t list
end

type engine = t
(** Alias for referring to the engine type from the shard/cluster
    surfaces below. *)

module Shard : sig
  (** One tenant's slice of a {!Cluster}: a private engine plus the
      tenant-scoped telemetry it owns — a rolling latency window
      ([serve.shard.<tenant>]) and a fallback health signal
      ([serve.shard.<tenant>.fallbacks]). Shards share nothing
      mutable with each other. *)

  type t

  val tenant : t -> string

  (** The shard's private engine — its memo, ground cache, and GPM
      version stamp belong to this tenant alone. *)
  val engine : t -> engine

  (** Requests this shard has served (through its cluster or
      {!Cluster.decide}). *)
  val served : t -> int
end

module Cluster : sig
  (** The sharded multi-tenant serve plane: one {!Shard} per tenant
      behind a bounded ingestion queue with explicit backpressure and
      in-flight coalescing. See the module preamble for the design. *)

  type t

  type reject_reason =
    | Queue_full  (** the bounded ingestion queue is at capacity *)
    | Unknown_tenant  (** no shard owns the request's tenant id *)

  val reject_reason_to_string : reject_reason -> string

  (** What became of a submitted request. Rejection is the explicit
      backpressure signal — the caller decides whether to retry, shed,
      or fall back to {!decide_uncached}. *)
  type outcome = Served of Response.t | Rejected of reject_reason

  type ticket
  (** A claim on a submitted request's eventual outcome. *)

  (** A cluster with one shard per [(tenant, gpm)] pair, every shard
      configured with [config]. [queue_depth] bounds the ingestion
      queue (default 64). @raise Invalid_argument on an empty or
      duplicate tenant list, or [queue_depth < 1]. *)
  val create :
    ?config:Config.t ->
    ?queue_depth:int ->
    tenants:(string * Asg.Gpm.t) list ->
    unit ->
    t

  val tenants : t -> string list
  val shard : t -> string -> Shard.t option
  val shards : t -> Shard.t list
  val queue_depth : t -> int

  (** Requests currently queued, not yet drained. *)
  val queue_length : t -> int

  (** Swap one tenant's model. Touches only that tenant's shard: no
      other shard's memo, ground cache, or version stamp is affected.
      @raise Invalid_argument on an unknown tenant. *)
  val set_gpm : t -> tenant:string -> Asg.Gpm.t -> unit

  (** Enqueue a request. Returns immediately: the ticket resolves
      after a {!drain}, except on rejection — an unknown tenant or a
      full queue resolves the ticket to [Rejected] on the spot. Each
      accepted request is assigned its child trace ID at submission. *)
  val submit : t -> Request.t -> ticket

  (** The outcome, if resolved. *)
  val poll : ticket -> outcome option

  (** Serve everything queued: identical (tenant, context, options)
      submissions are coalesced into one computation (context equality
      confirmed structurally, not just by fingerprint) and the
      distinct work is fanned across [pool] (default
      {!Par.Config.pool}). Returns the number of requests fulfilled,
      coalesced duplicates included. *)
  val drain : ?pool:Par.t -> t -> int

  (** The ticket's outcome, draining this cluster first if it is still
      pending. *)
  val await : ?pool:Par.t -> t -> ticket -> outcome

  (** The synchronous routed path: serve one request on its tenant's
      shard, bypassing the queue (never [Queue_full]; still
      [Rejected Unknown_tenant] for an unowned tenant id). This is
      what [Pdp.decide] uses through a cluster target. *)
  val decide : t -> Request.t -> outcome

  (** Flow-controlled convenience over submit/drain: submits the whole
      stream, draining whenever the queue fills, and returns outcomes
      in input order. Unlike raw {!submit}, never rejects for queue
      pressure — only unknown tenants are rejected. *)
  val run : ?pool:Par.t -> t -> Request.t list -> outcome list

  (** Duplicate requests answered from a coalesced computation. *)
  val coalesced : t -> int

  (** Requests rejected (queue full or unknown tenant). *)
  val rejected : t -> int

  (** Requests accepted into the queue since creation. *)
  val submitted : t -> int

  (** Per-tenant engine statistics, in tenant declaration order. *)
  val stats : t -> (string * stats) list

  (** The cluster-wide OpenMetrics exposition: per-shard gauges
      ([agenp_serve_shard_cache_entries]/[_hit_rate]/[_collisions]
      labeled by tenant and tier, [agenp_serve_shard_requests] per
      tenant) plus queue gauges; the [serve.cluster.coalesced] and
      [serve.cluster.rejected] counters render with every other
      registered metric. *)
  val openmetrics : t -> string
end

(** Where a PDP routes its decisions: one engine, or one tenant's
    shard of a cluster. [Ams.attach_engine] takes this, so coalition
    members can share a cluster while keeping per-member state
    isolated. *)
type target = Engine of t | Tenant of Cluster.t * string
