(* The /metrics exposition thread. See metrics.mli. The HTTP here is
   deliberately minimal: read the request head, look at the request
   line, answer one response, close. Prometheus scrapers and curl both
   speak exactly that much. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let has_terminator s =
  (* end of the header block: CRLFCRLF (or bare LFLF from hand-typed
     clients) *)
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then false
    else if s.[i] = '\n' && (s.[i + 1] = '\n' || (i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n'))
    then true
    else go (i + 1)
  in
  go 0

let read_head client =
  let chunk = Bytes.create 4096 in
  let b = Buffer.create 256 in
  let rec go () =
    if Buffer.length b < 65536 && not (has_terminator (Buffer.contents b))
    then begin
      match Unix.read client chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  go ();
  Buffer.contents b

let write_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

let handle render client =
  let head = read_head client in
  let request_line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  let reply =
    match String.split_on_char ' ' request_line with
    | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
      response ~status:"200 OK" ~content_type:Obs.Openmetrics.content_type
        (render ())
    | "GET" :: _ ->
      response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"
    | _ ->
      response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET\n"
  in
  write_all client reply

let rec accept_loop sock stopping render =
  match Unix.accept sock with
  | exception _ ->
    (* EBADF/EINTR on shutdown, or a transient accept failure — the
       delay keeps a persistent failure from spinning hot *)
    if not (Atomic.get stopping) then begin
      Thread.delay 0.01;
      accept_loop sock stopping render
    end
  | client, _ ->
    if Atomic.get stopping then (try Unix.close client with _ -> ())
    else begin
      (try handle render client with _ -> ());
      (try Unix.close client with _ -> ());
      accept_loop sock stopping render
    end

let start ?(addr = "127.0.0.1") ~port ~render () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let thread = Thread.create (fun () -> accept_loop sock stopping render) () in
  { sock; port; thread; stopping }

let port t = t.port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* wake a blocking accept by connecting to ourselves, then join *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with _ -> ())
         (fun () ->
           Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
     with _ -> ());
    Thread.join t.thread;
    try Unix.close t.sock with _ -> ()
  end
