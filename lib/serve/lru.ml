(* LRU cache: a hash table from key to node plus a doubly-linked recency
   list threaded through the nodes. The list head is the most recently
   used entry, the tail the eviction candidate. All operations are O(1)
   expected (hashing aside). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (** towards the head (newer) *)
  mutable next : ('k, 'v) node option;  (** towards the tail (older) *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable evictions : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let mem t k = Hashtbl.mem t.table k

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    promote t n;
    None
  | None ->
    let evicted =
      if Hashtbl.length t.table >= t.capacity then (
        match t.tail with
        | None -> None
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          t.evictions <- t.evictions + 1;
          Some lru.key)
      else None
    in
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n;
    evicted

let keys_newest_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.evictions <- 0
