(* The decision-serving engine. See serve.mli for the cache design; the
   invariant that matters throughout is that every cached artifact is a
   pure function of its key — ground programs of the induced program,
   decisions of (model version, context, options) — so caching can change
   latency and provenance but never the decision. *)

module Lru = Lru
module Audit = Audit
module Metrics = Metrics

exception No_options

module Request = struct
  type t = {
    context : Asp.Program.t;
    options : string list;
    priority : int;
    deadline : float option;
  }

  let make ?(priority = 0) ?deadline ~context ~options () =
    { context; options; priority; deadline }
end

module Decision = struct
  type t = {
    chosen : string;
    valid_options : string list;
    fallback_used : bool;
    compliant : bool option;
  }

  let equal a b =
    String.equal a.chosen b.chosen
    && List.equal String.equal a.valid_options b.valid_options
    && Bool.equal a.fallback_used b.fallback_used
    && Option.equal Bool.equal a.compliant b.compliant

  let pp ppf d =
    Fmt.pf ppf "%s%s%a" d.chosen
      (if d.fallback_used then " (fallback)" else "")
      (fun ppf -> function
        | None -> ()
        | Some c -> Fmt.pf ppf " [%s]" (if c then "compliant" else "violation"))
      d.compliant
end

type provenance = Cold | Ground_hit | Memo_hit

let provenance_to_string = function
  | Cold -> "cold"
  | Ground_hit -> "ground"
  | Memo_hit -> "memo"

module Response = struct
  type t = {
    decision : Decision.t;
    trace_id : string;
    provenance : provenance;
    latency : float;
    gpm_version : int;
    deadline_missed : bool;
  }
end

module Config = struct
  type t = {
    decision_cache : int;
    ground_cache : int;
    audit_capacity : int;
    slo_target : float option;
    slo_objective : float;
    slo_window : float;
  }

  let default =
    {
      decision_cache = 256;
      ground_cache = 512;
      audit_capacity = 1024;
      slo_target = None;
      slo_objective = 0.99;
      slo_window = 60.0;
    }
end

type tier_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  cap : int;
}

type stats = { decisions : tier_stats; grounds : tier_stats }

let hit_rate (s : tier_stats) =
  let n = s.hits + s.misses in
  if n = 0 then 0.0 else float_of_int s.hits /. float_of_int n

let pp_tier ppf (s : tier_stats) =
  Fmt.pf ppf "%d/%d entries, %d hit(s), %d miss(es), %d eviction(s), rate %.2f"
    s.entries s.cap s.hits s.misses s.evictions (hit_rate s)

let pp_stats ppf s =
  Fmt.pf ppf "decisions: %a@.grounds:   %a" pp_tier s.decisions pp_tier
    s.grounds

(* Process-wide counters, created on first engine use rather than at
   module initialization so that runs that never serve (plain `agenp
   solve` etc.) keep their counter tables unchanged. *)
type counters = {
  c_requests : Obs.Counter.t;
  cd_hits : Obs.Counter.t;
  cd_misses : Obs.Counter.t;
  cd_evictions : Obs.Counter.t;
  cg_hits : Obs.Counter.t;
  cg_misses : Obs.Counter.t;
  cg_evictions : Obs.Counter.t;
  w_decide : Obs.Window.t;
}

let counters =
  lazy
    {
      c_requests = Obs.Counter.make "serve.requests";
      cd_hits = Obs.Counter.make "serve.decision_cache.hits";
      cd_misses = Obs.Counter.make "serve.decision_cache.misses";
      cd_evictions = Obs.Counter.make "serve.decision_cache.evictions";
      cg_hits = Obs.Counter.make "serve.ground_cache.hits";
      cg_misses = Obs.Counter.make "serve.ground_cache.misses";
      cg_evictions = Obs.Counter.make "serve.ground_cache.evictions";
      w_decide = Obs.Window.make "serve.decide";
    }

(* ---- the decision core ------------------------------------------------ *)

(** First valid option, or the last option as a flagged fail-safe —
    exactly the PDP semantics, shared by cached and uncached paths.
    [membership] decides one option. *)
let decide_core ~(membership : string -> bool) (options : string list) :
    Decision.t =
  if options = [] then raise No_options;
  let valid_options = List.filter membership options in
  match valid_options with
  | chosen :: _ ->
    { Decision.chosen; valid_options; fallback_used = false; compliant = None }
  | [] ->
    let fallback = List.hd (List.rev options) in
    {
      Decision.chosen = fallback;
      valid_options = [];
      fallback_used = true;
      compliant = None;
    }

let decide_uncached (gpm : Asg.Gpm.t) (req : Request.t) : Decision.t =
  decide_core req.options
    ~membership:(fun opt ->
      Asg.Membership.accepts_in_context gpm ~context:req.context opt)

(* ---- the engine ------------------------------------------------------- *)

type memo_key = int * int * string list
(* (gpm version, context fingerprint, options) *)

type t = {
  mutable gpm : Asg.Gpm.t;
  cfg : Config.t;
  memo : (memo_key, Asp.Program.t * Decision.t) Lru.t;
      (** the stored context confirms fingerprint hits *)
  grounds : (int, Asp.Program.t * Asp.Grounder.ground_program) Lru.t;
      (** induced-program fingerprint -> (program, its grounding) *)
  mu : Mutex.t;  (** guards both tiers and the stat mirror *)
  mutable d_hits : int;
  mutable d_misses : int;
  mutable g_hits : int;
  mutable g_misses : int;
  audit : Audit.t option;
  slo : Obs.Slo.t option;
}

let create ?(config = Config.default) gpm =
  ignore (Lazy.force counters);
  {
    gpm;
    cfg = config;
    memo = Lru.create ~capacity:config.decision_cache ();
    grounds = Lru.create ~capacity:config.ground_cache ();
    mu = Mutex.create ();
    d_hits = 0;
    d_misses = 0;
    g_hits = 0;
    g_misses = 0;
    audit =
      (if config.audit_capacity > 0 then
         Some (Audit.create ~capacity:config.audit_capacity)
       else None);
    slo =
      Option.map
        (fun target ->
          Obs.Slo.make ~objective:config.slo_objective
            ~window:config.slo_window ~target "serve.decide")
        config.slo_target;
  }

let gpm t = t.gpm
let config t = t.cfg
let audit t = t.audit
let slo t = t.slo

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let set_gpm t gpm =
  if Asg.Gpm.version gpm <> Asg.Gpm.version t.gpm then begin
    t.gpm <- gpm;
    (* the version key already makes old entries unreachable; clearing
       reclaims their memory immediately (adaptation is rare, requests
       are not) *)
    locked t (fun () -> Lru.clear t.memo)
  end

let invalidate t =
  locked t (fun () ->
      Lru.clear t.memo;
      Lru.clear t.grounds)

let stats t =
  locked t (fun () ->
      {
        decisions =
          {
            hits = t.d_hits;
            misses = t.d_misses;
            evictions = Lru.evictions t.memo;
            entries = Lru.length t.memo;
            cap = Lru.capacity t.memo;
          };
        grounds =
          {
            hits = t.g_hits;
            misses = t.g_misses;
            evictions = Lru.evictions t.grounds;
            entries = Lru.length t.grounds;
            cap = Lru.capacity t.grounds;
          };
      })

let stats_to_json t =
  let s = stats t in
  let tier (ts : tier_stats) =
    Printf.sprintf
      "{\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"entries\": %d, \
       \"capacity\": %d, \"hit_rate\": %.6f}"
      ts.hits ts.misses ts.evictions ts.entries ts.cap (hit_rate ts)
  in
  let audit_part =
    match t.audit with
    | Some ring ->
      Printf.sprintf "{\"capacity\": %d, \"retained\": %d, \"total\": %d}"
        (Audit.capacity ring) (Audit.length ring) (Audit.total ring)
    | None -> "null"
  in
  Printf.sprintf
    "{\"schema\": \"serve-stats/1\", \"gpm_version\": %d, \"requests\": %d, \
     \"decision_cache\": %s, \"ground_cache\": %s, \"audit\": %s}"
    (Asg.Gpm.version t.gpm)
    (s.decisions.hits + s.decisions.misses)
    (tier s.decisions) (tier s.grounds) audit_part

let openmetrics t =
  let s = stats t in
  let tier name (ts : tier_stats) =
    [
      ("serve.cache.entries", [ ("tier", name) ], float_of_int ts.entries);
      ("serve.cache.capacity", [ ("tier", name) ], float_of_int ts.cap);
      ("serve.cache.hit_rate", [ ("tier", name) ], hit_rate ts);
    ]
  in
  Obs.Openmetrics.render
    ~extra:(tier "decision" s.decisions @ tier "ground" s.grounds)
    ()

(** Grounding of [p] through the fingerprint-keyed cache. Sets [hit]
    when the cached core was reused. *)
let ground_cached t (p : Asp.Program.t) ~(hit : bool ref) :
    Asp.Grounder.ground_program =
  let c = Lazy.force counters in
  let fp = Asp.Program.fingerprint p in
  let core = locked t (fun () -> Lru.find t.grounds fp) in
  match core with
  | Some (p0, gp) when Asp.Program.equal p0 p ->
    locked t (fun () -> t.g_hits <- t.g_hits + 1);
    Obs.Counter.incr c.cg_hits;
    hit := true;
    gp
  | _ ->
    (* miss, or a fingerprint collision: ground_with re-confirms and
       falls back to grounding either way *)
    let gp = Asp.Grounder.ground_with ?core p in
    locked t (fun () ->
        t.g_misses <- t.g_misses + 1;
        match Lru.add t.grounds fp (p, gp) with
        | Some _ -> Obs.Counter.incr c.cg_evictions
        | None -> ());
    Obs.Counter.incr c.cg_misses;
    gp

(** One option's membership check, [s ∈ L(G(C))], on cached ground
    programs: parse, induce each tree's program, solve the cached
    grounding — stopping at the first satisfiable tree, like
    {!Asg.Membership.accepts_in_context}. *)
let accepts_cached t (g_ctx : Asg.Gpm.t) (opt : string) ~(hit : bool ref) :
    bool =
  let tokens = Asg.Membership.tokenize opt in
  let trees = Grammar.Earley.parses (Asg.Gpm.cfg g_ctx) tokens in
  List.exists
    (fun tree ->
      let p = Asg.Tree_program.program g_ctx tree in
      Asp.Solver.has_answer_set_ground (ground_cached t p ~hit))
    trees

let decide t (req : Request.t) : Response.t =
  let c = Lazy.force counters in
  (* the request-scoped identity: reuse the ambient trace (a batch or
     PDP scope) or root a fresh one, so the serve.decide span, any
     grounder/solver spans and log lines beneath it, and the audit
     record all carry the same ID *)
  Obs.Trace_context.scope @@ fun trace_id ->
  Obs.span "serve.decide"
    ~attrs:[ ("options", string_of_int (List.length req.options)) ]
  @@ fun () ->
  Obs.Counter.incr c.c_requests;
  let t0 = Obs.now () in
  if req.options = [] then raise No_options;
  let gpm = t.gpm in
  let version = Asg.Gpm.version gpm in
  let key = (version, Asp.Program.fingerprint req.context, req.options) in
  let memo = locked t (fun () -> Lru.find t.memo key) in
  let decision, provenance =
    match memo with
    | Some (ctx0, d) when Asp.Program.equal ctx0 req.context ->
      locked t (fun () -> t.d_hits <- t.d_hits + 1);
      Obs.Counter.incr c.cd_hits;
      (d, Memo_hit)
    | _ ->
      locked t (fun () -> t.d_misses <- t.d_misses + 1);
      Obs.Counter.incr c.cd_misses;
      let g_ctx = Asg.Gpm.with_context gpm req.context in
      let ground_hit = ref false in
      let d =
        decide_core req.options
          ~membership:(accepts_cached t g_ctx ~hit:ground_hit)
      in
      locked t (fun () ->
          match Lru.add t.memo key (req.context, d) with
          | Some _ -> Obs.Counter.incr c.cd_evictions
          | None -> ());
      (d, if !ground_hit then Ground_hit else Cold)
  in
  let latency = Obs.now () -. t0 in
  Obs.set_attr "provenance" (provenance_to_string provenance);
  Obs.Window.observe c.w_decide latency;
  Option.iter (fun slo -> Obs.Slo.record slo latency) t.slo;
  (match t.audit with
  | Some ring ->
    ignore
      (Audit.add ring ~ts:(Obs.now ()) ~trace_id
         ~context_fp:(Asp.Program.fingerprint req.context)
         ~gpm_version:version ~options:req.options
         ~chosen:decision.Decision.chosen
         ~fallback_used:decision.Decision.fallback_used
         ~compliant:decision.Decision.compliant
         ~provenance:(provenance_to_string provenance)
         ~latency)
  | None -> ());
  {
    Response.decision;
    trace_id;
    provenance;
    latency;
    gpm_version = version;
    deadline_missed =
      (match req.deadline with Some d -> latency > d | None -> false);
  }

module Batch = struct
  (* Higher priority first; ties broken by input position so the
     schedule (not just the output) is deterministic. *)
  let schedule (arr : Request.t array) : int array =
    let order = Array.init (Array.length arr) Fun.id in
    Array.sort
      (fun i j ->
        let c =
          Int.compare arr.(j).Request.priority arr.(i).Request.priority
        in
        if c <> 0 then c else Int.compare i j)
      order;
    order

  let run ?pool t (reqs : Request.t list) : Response.t list =
    match reqs with
    | [] -> []
    | _ ->
      (* the batch runs under one trace scope; each request gets its
         own child ID at submission time (deterministic in schedule
         order), installed around its decide on whichever pool domain
         runs it — IDs stay unique per request and chain to the batch *)
      Obs.Trace_context.scope @@ fun _batch_id ->
      Obs.span "serve.batch"
        ~attrs:[ ("requests", string_of_int (List.length reqs)) ]
      @@ fun () ->
      let pool = match pool with Some p -> p | None -> Par.Config.pool () in
      let arr = Array.of_list reqs in
      let order = schedule arr in
      let scheduled =
        Array.map (fun i -> (Obs.Trace_context.child_id (), arr.(i))) order
      in
      let results =
        Par.parallel_map pool
          (fun (id, req) -> Obs.Trace_context.with_id id (fun () -> decide t req))
          scheduled
      in
      let out = Array.make (Array.length arr) results.(0) in
      Array.iteri (fun k i -> out.(i) <- results.(k)) order;
      Array.to_list out
end
