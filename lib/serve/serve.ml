(* The decision-serving engine. See serve.mli for the cache design; the
   invariant that matters throughout is that every cached artifact is a
   pure function of its key — ground programs of the induced program,
   decisions of (model version, context, options) — so caching can change
   latency and provenance but never the decision. The same invariant
   carries to the multi-tenant cluster: shards share nothing mutable, so
   sharding and coalescing change scheduling, never outcomes. *)

module Lru = Lru
module Audit = Audit
module Metrics = Metrics

exception No_options

module Request = struct
  type t = {
    context : Asp.Program.t;
    options : string list;
    priority : int;
    deadline : float option;
    tenant : string;
  }

  let make ?(priority = 0) ?deadline ?(tenant = "default") ~context ~options
      () =
    { context; options; priority; deadline; tenant }
end

module Decision = struct
  type t = {
    chosen : string;
    valid_options : string list;
    fallback_used : bool;
    compliant : bool option;
  }

  let equal a b =
    String.equal a.chosen b.chosen
    && List.equal String.equal a.valid_options b.valid_options
    && Bool.equal a.fallback_used b.fallback_used
    && Option.equal Bool.equal a.compliant b.compliant

  let pp ppf d =
    Fmt.pf ppf "%s%s%a" d.chosen
      (if d.fallback_used then " (fallback)" else "")
      (fun ppf -> function
        | None -> ()
        | Some c -> Fmt.pf ppf " [%s]" (if c then "compliant" else "violation"))
      d.compliant
end

type provenance = Cold | Ground_hit | Memo_hit

let provenance_to_string = function
  | Cold -> "cold"
  | Ground_hit -> "ground"
  | Memo_hit -> "memo"

module Response = struct
  type t = {
    decision : Decision.t;
    trace_id : string;
    provenance : provenance;
    latency : float;
    gpm_version : int;
    deadline_missed : bool;
    shard : string;
  }
end

module Config = struct
  type caching = { decision_cache : int; ground_cache : int }
  type audit = { capacity : int }
  type slo = { target : float option; objective : float; window : float }
  type t = { caching : caching; audit : audit; slo : slo }

  let default =
    {
      caching = { decision_cache = 256; ground_cache = 512 };
      audit = { capacity = 1024 };
      slo = { target = None; objective = 0.99; window = 60.0 };
    }
end

type tier_stats = {
  hits : int;
  misses : int;
  evictions : int;
  collisions : int;
  entries : int;
  cap : int;
}

type delta_stats = {
  delta_grounds : int;
  delta_facts : int;
  delta_rules : int;
  fallbacks : int;
}

type stats = {
  decisions : tier_stats;
  grounds : tier_stats;
  delta : delta_stats;
}

let hit_rate (s : tier_stats) =
  let n = s.hits + s.misses in
  if n = 0 then 0.0 else float_of_int s.hits /. float_of_int n

let pp_tier ppf (s : tier_stats) =
  Fmt.pf ppf
    "%d/%d entries, %d hit(s), %d miss(es), %d eviction(s), %d collision(s), \
     rate %.2f"
    s.entries s.cap s.hits s.misses s.evictions s.collisions (hit_rate s)

let pp_delta ppf (d : delta_stats) =
  Fmt.pf ppf "%d ground(s), %d fact(s), %d rule(s) added, %d fallback(s)"
    d.delta_grounds d.delta_facts d.delta_rules d.fallbacks

let pp_stats ppf s =
  Fmt.pf ppf "decisions: %a@.grounds:   %a@.delta:     %a" pp_tier s.decisions
    pp_tier s.grounds pp_delta s.delta

(* Process-wide counters, created on first engine use rather than at
   module initialization so that runs that never serve (plain `agenp
   solve` etc.) keep their counter tables unchanged. *)
type counters = {
  c_requests : Obs.Counter.t;
  cd_hits : Obs.Counter.t;
  cd_misses : Obs.Counter.t;
  cd_evictions : Obs.Counter.t;
  cd_collisions : Obs.Counter.t;
  cg_hits : Obs.Counter.t;
  cg_misses : Obs.Counter.t;
  cg_evictions : Obs.Counter.t;
  cg_collisions : Obs.Counter.t;
  cs_delta_grounds : Obs.Counter.t;
  cs_delta_facts : Obs.Counter.t;
  cs_delta_rules : Obs.Counter.t;
  cs_delta_fallbacks : Obs.Counter.t;
  cl_coalesced : Obs.Counter.t;
  cl_rejected : Obs.Counter.t;
  w_decide : Obs.Window.t;
}

let counters =
  lazy
    {
      c_requests = Obs.Counter.make "serve.requests";
      cd_hits = Obs.Counter.make "serve.decision_cache.hits";
      cd_misses = Obs.Counter.make "serve.decision_cache.misses";
      cd_evictions = Obs.Counter.make "serve.decision_cache.evictions";
      cd_collisions = Obs.Counter.make "serve.decision_cache.collisions";
      cg_hits = Obs.Counter.make "serve.ground_cache.hits";
      cg_misses = Obs.Counter.make "serve.ground_cache.misses";
      cg_evictions = Obs.Counter.make "serve.ground_cache.evictions";
      cg_collisions = Obs.Counter.make "serve.ground_cache.collisions";
      cs_delta_grounds = Obs.Counter.make "serve.delta.grounds";
      cs_delta_facts = Obs.Counter.make "serve.delta.facts";
      cs_delta_rules = Obs.Counter.make "serve.delta.rules";
      cs_delta_fallbacks = Obs.Counter.make "serve.delta.fallbacks";
      cl_coalesced = Obs.Counter.make "serve.cluster.coalesced";
      cl_rejected = Obs.Counter.make "serve.cluster.rejected";
      w_decide = Obs.Window.make "serve.decide";
    }

(* ---- the decision core ------------------------------------------------ *)

(** First valid option, or the last option as a flagged fail-safe —
    exactly the PDP semantics, shared by cached and uncached paths.
    [membership] decides one option. *)
let decide_core ~(membership : string -> bool) (options : string list) :
    Decision.t =
  if options = [] then raise No_options;
  let valid_options = List.filter membership options in
  match valid_options with
  | chosen :: _ ->
    { Decision.chosen; valid_options; fallback_used = false; compliant = None }
  | [] ->
    let fallback = List.hd (List.rev options) in
    {
      Decision.chosen = fallback;
      valid_options = [];
      fallback_used = true;
      compliant = None;
    }

let decide_uncached (gpm : Asg.Gpm.t) (req : Request.t) : Decision.t =
  decide_core req.options
    ~membership:(fun opt ->
      Asg.Membership.accepts_in_context gpm ~context:req.context opt)

(* ---- the engine ------------------------------------------------------- *)

type memo_key = int * int * string list
(* (gpm version, context fingerprint, options) *)

(* Per-request ground-cache accounting: every membership check of a
   request (one per parse tree per option) bumps exactly one of these, so
   provenance can be derived from the full set instead of a single
   any-tree-hit flag. *)
type req_counts = { mutable rq_hits : int; mutable rq_misses : int }

(* A ground-cache entry: the frozen incremental core plus its precompiled
   solver state, so the hot path pays neither regrounding nor solver-core
   recompilation. Both halves are immutable and keyed by the same core
   program. *)
type centry = {
  ce_core : Asp.Grounder.Incremental.core;
  ce_prepared : Asp.Solver.prepared;
}

type t = {
  name : string;  (** shard provenance on responses *)
  mutable gpm : Asg.Gpm.t;
  cfg : Config.t;
  memo : (memo_key, Asp.Program.t * Decision.t) Lru.t;
      (** the stored context confirms fingerprint hits *)
  grounds : (int, centry) Lru.t;
      (** {e core}-program fingerprint -> frozen incremental core with
          its prepared solver state; the stored core's program confirms
          fingerprint hits *)
  trees :
    ( int * string,
      (Grammar.Parse_tree.t * Asp.Program.t * int) list )
    Hashtbl.t;
      (** (gpm version, option) -> parse trees with their context-free
          induced programs and the programs' fingerprints (precomputed:
          they key the ground cache on every membership check); bounded
          by the option vocabulary *)
  mu : Mutex.t;  (** guards all tiers and the stat mirrors *)
  mutable d_hits : int;
  mutable d_misses : int;
  mutable d_collisions : int;
      (** memo entries displaced by fingerprint-collision replacement
          (resident key, structurally different context) *)
  mutable g_hits : int;
  mutable g_misses : int;
  mutable g_collisions : int;
      (** ground entries displaced by fingerprint-collision replacement
          (the [Lru.add] value-replace path, invisible to
          [Lru.evictions] — and not a capacity eviction) *)
  mutable n_delta_grounds : int;
  mutable n_delta_facts : int;
  mutable n_delta_rules : int;
  mutable n_fallbacks : int;
  audit : Audit.t option;
  slo : Obs.Slo.t option;
}

let create ?(name = "default") ?(config = Config.default) gpm =
  ignore (Lazy.force counters);
  {
    name;
    gpm;
    cfg = config;
    memo = Lru.create ~capacity:config.Config.caching.Config.decision_cache ();
    grounds = Lru.create ~capacity:config.Config.caching.Config.ground_cache ();
    trees = Hashtbl.create 16;
    mu = Mutex.create ();
    d_hits = 0;
    d_misses = 0;
    d_collisions = 0;
    g_hits = 0;
    g_misses = 0;
    g_collisions = 0;
    n_delta_grounds = 0;
    n_delta_facts = 0;
    n_delta_rules = 0;
    n_fallbacks = 0;
    audit =
      (if config.Config.audit.Config.capacity > 0 then
         Some (Audit.create ~capacity:config.Config.audit.Config.capacity)
       else None);
    slo =
      Option.map
        (fun target ->
          Obs.Slo.make ~objective:config.Config.slo.Config.objective
            ~window:config.Config.slo.Config.window ~target "serve.decide")
        config.Config.slo.Config.target;
  }

let name t = t.name
let gpm t = t.gpm
let config t = t.cfg
let audit t = t.audit
let slo t = t.slo

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let set_gpm t gpm =
  if Asg.Gpm.version gpm <> Asg.Gpm.version t.gpm then begin
    t.gpm <- gpm;
    (* the version key already makes old entries unreachable; clearing
       reclaims their memory immediately (adaptation is rare, requests
       are not) *)
    locked t (fun () ->
        Lru.clear t.memo;
        Hashtbl.reset t.trees)
  end

let invalidate t =
  locked t (fun () ->
      Lru.clear t.memo;
      Lru.clear t.grounds;
      Hashtbl.reset t.trees)

let stats t =
  locked t (fun () ->
      {
        decisions =
          {
            hits = t.d_hits;
            misses = t.d_misses;
            evictions = Lru.evictions t.memo;
            collisions = t.d_collisions;
            entries = Lru.length t.memo;
            cap = Lru.capacity t.memo;
          };
        grounds =
          {
            hits = t.g_hits;
            misses = t.g_misses;
            evictions = Lru.evictions t.grounds;
            collisions = t.g_collisions;
            entries = Lru.length t.grounds;
            cap = Lru.capacity t.grounds;
          };
        delta =
          {
            delta_grounds = t.n_delta_grounds;
            delta_facts = t.n_delta_facts;
            delta_rules = t.n_delta_rules;
            fallbacks = t.n_fallbacks;
          };
      })

let stats_to_json t =
  let s = stats t in
  let tier (ts : tier_stats) =
    Printf.sprintf
      "{\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"collisions\": %d, \
       \"entries\": %d, \"capacity\": %d, \"hit_rate\": %.6f}"
      ts.hits ts.misses ts.evictions ts.collisions ts.entries ts.cap
      (hit_rate ts)
  in
  let audit_part =
    match t.audit with
    | Some ring ->
      Printf.sprintf "{\"capacity\": %d, \"retained\": %d, \"total\": %d}"
        (Audit.capacity ring) (Audit.length ring) (Audit.total ring)
    | None -> "null"
  in
  let delta_part =
    Printf.sprintf
      "{\"grounds\": %d, \"facts\": %d, \"rules_added\": %d, \"fallbacks\": \
       %d}"
      s.delta.delta_grounds s.delta.delta_facts s.delta.delta_rules
      s.delta.fallbacks
  in
  let health_part =
    let signal h =
      Printf.sprintf
        "{\"signal\": \"%s\", \"observations\": %d, \"positives\": %d, \
         \"rate\": %.6f, \"overall_rate\": %.6f, \"alarms\": %d}"
        (Obs.Health.name h)
        (Obs.Health.observations h)
        (Obs.Health.positives h) (Obs.Health.rate h)
        (Obs.Health.overall_rate h)
        (Obs.Health.alarms h)
    in
    let signals =
      List.filter (fun h -> Obs.Health.observations h > 0) (Obs.Health.all ())
    in
    Printf.sprintf "{\"signals\": [%s], \"events\": %d}"
      (String.concat ", " (List.map signal signals))
      (Obs.Health.events_total ())
  in
  Printf.sprintf
    "{\"schema\": \"serve-stats/4\", \"gpm_version\": %d, \"requests\": %d, \
     \"decision_cache\": %s, \"ground_cache\": %s, \"delta\": %s, \"audit\": \
     %s, \"health\": %s}"
    (Asg.Gpm.version t.gpm)
    (s.decisions.hits + s.decisions.misses)
    (tier s.decisions) (tier s.grounds) delta_part audit_part health_part

let openmetrics t =
  let s = stats t in
  let tier name (ts : tier_stats) =
    [
      ("serve.cache.entries", [ ("tier", name) ], float_of_int ts.entries);
      ("serve.cache.capacity", [ ("tier", name) ], float_of_int ts.cap);
      ("serve.cache.hit_rate", [ ("tier", name) ], hit_rate ts);
      ("serve.cache.collisions", [ ("tier", name) ], float_of_int ts.collisions);
    ]
  in
  Obs.Openmetrics.render
    ~extra:(tier "decision" s.decisions @ tier "ground" s.grounds)
    ()

(** The frozen incremental core for program [p], through the
    fingerprint-keyed cache. A resident entry whose program is not
    structurally equal to [p] is a fingerprint collision: freezing [p]
    and [Lru.add]ing it displaces the resident through the value-replace
    path, which [Lru.evictions] cannot see — the displacement gets its
    own [collisions] count (it is not a capacity eviction: the cache
    never ran out of room). *)
let core_cached t (p : Asp.Program.t) ~(fp : int) ~(counts : req_counts) :
    centry =
  let c = Lazy.force counters in
  let resident = locked t (fun () -> Lru.find t.grounds fp) in
  match resident with
  | Some e
    when Asp.Program.equal
           (Asp.Grounder.Incremental.core_program e.ce_core)
           p ->
    locked t (fun () -> t.g_hits <- t.g_hits + 1);
    Obs.Counter.incr c.cg_hits;
    counts.rq_hits <- counts.rq_hits + 1;
    e
  | _ ->
    let collision = Option.is_some resident in
    let core = Asp.Grounder.Incremental.freeze p in
    let e =
      {
        ce_core = core;
        ce_prepared =
          Asp.Solver.prepare (Asp.Grounder.Incremental.core_ground core);
      }
    in
    locked t (fun () ->
        t.g_misses <- t.g_misses + 1;
        if collision then t.g_collisions <- t.g_collisions + 1;
        match Lru.add t.grounds fp e with
        | Some _ -> Obs.Counter.incr c.cg_evictions
        | None -> ());
    if collision then Obs.Counter.incr c.cg_collisions;
    Obs.Counter.incr c.cg_misses;
    counts.rq_misses <- counts.rq_misses + 1;
    e

(** A context consisting solely of ground facts — the common case, and
    the one that delta-grounds instead of regrounding: the induced core
    program is context-free, so the cache can finally hit across
    requests with distinct contexts. *)
let fact_only_context (p : Asp.Program.t) : Asp.Atom.t list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (r : Asp.Rule.t) :: rest -> (
      match (r.head, r.body) with
      | Asp.Rule.Head a, [] when Asp.Atom.is_ground a -> go (a :: acc) rest
      | _ -> None)
  in
  go [] (Asp.Program.rules p)

(** Parse trees of [opt] under the served grammar with their
    context-free induced programs, cached per (version, option): the
    Earley parse and program induction are context-independent, so on
    the hot path they are paid once per option per model version. *)
let trees_for t (gpm : Asg.Gpm.t) (opt : string) :
    (Grammar.Parse_tree.t * Asp.Program.t * int) list =
  let key = (Asg.Gpm.version gpm, opt) in
  match locked t (fun () -> Hashtbl.find_opt t.trees key) with
  | Some l -> l
  | None ->
    let tokens = Asg.Membership.tokenize opt in
    let l =
      List.map
        (fun tree ->
          let p = Asg.Tree_program.program gpm tree in
          (tree, p, Asp.Program.fingerprint p))
        (Grammar.Earley.parses (Asg.Gpm.cfg gpm) tokens)
    in
    locked t (fun () -> Hashtbl.replace t.trees key l);
    l

(** One option's membership check, [s ∈ L(G(C))], by incremental
    grounding with delta solving: the context-free core is fetched
    frozen from the cache (or frozen on a miss) and only the context
    facts — instantiated at each node trace — are delta-grounded, per
    tree, stopping at the first satisfiable one like
    {!Asg.Membership.accepts_in_context}. When the frozen core needs no
    repair (the overwhelmingly common case) the delta rules extend the
    entry's precompiled solver state directly; only a context that
    touches a latent negative literal or dormant choice of the core pays
    the full reground-and-recompile. *)
let accepts_incremental t (gpm : Asg.Gpm.t) (opt : string)
    ~(counts : req_counts) ~(ctx_facts : Asp.Atom.t list) : bool =
  let c = Lazy.force counters in
  List.exists
    (fun (tree, core_p, core_fp) ->
      let e = core_cached t core_p ~fp:core_fp ~counts in
      match ctx_facts with
      | [] -> Asp.Solver.has_answer_set_prepared e.ce_prepared ~delta:[]
      | _ -> (
        let facts = Asg.Tree_program.context_facts tree ctx_facts in
        let note added =
          locked t (fun () ->
              t.n_delta_grounds <- t.n_delta_grounds + 1;
              t.n_delta_facts <- t.n_delta_facts + List.length facts;
              t.n_delta_rules <- t.n_delta_rules + added);
          Obs.Counter.incr c.cs_delta_grounds;
          Obs.Counter.incr c.cs_delta_facts ~by:(List.length facts);
          Obs.Counter.incr c.cs_delta_rules ~by:added
        in
        match Asp.Grounder.Incremental.delta_with e.ce_core ~facts with
        | Some d ->
          note (List.length d);
          Asp.Solver.has_answer_set_prepared e.ce_prepared ~delta:d
        | None ->
          (* core repair needed: rebuild the combined program *)
          let gp = Asp.Grounder.Incremental.ground_with e.ce_core ~facts in
          note
            (Asp.Grounder.size gp
            - Asp.Grounder.size (Asp.Grounder.Incremental.core_ground e.ce_core));
          Asp.Solver.has_answer_set_ground gp))
    (trees_for t gpm opt)

(** The fallback for contexts carrying proper rules: the context is
    baked into the grammar ({!Asg.Gpm.with_context}) and each tree's
    full induced program is frozen whole — structurally recurring
    contexts still hit the cache, exactly the pre-incremental
    behaviour. *)
let accepts_fallback t (g_ctx : Asg.Gpm.t) (opt : string)
    ~(counts : req_counts) : bool =
  let tokens = Asg.Membership.tokenize opt in
  let trees = Grammar.Earley.parses (Asg.Gpm.cfg g_ctx) tokens in
  List.exists
    (fun tree ->
      let p = Asg.Tree_program.program g_ctx tree in
      let e = core_cached t p ~fp:(Asp.Program.fingerprint p) ~counts in
      Asp.Solver.has_answer_set_prepared e.ce_prepared ~delta:[])
    trees

let decide t (req : Request.t) : Response.t =
  let c = Lazy.force counters in
  (* the request-scoped identity: reuse the ambient trace (a batch or
     PDP scope) or root a fresh one, so the serve.decide span, any
     grounder/solver spans and log lines beneath it, and the audit
     record all carry the same ID *)
  Obs.Trace_context.scope @@ fun trace_id ->
  Obs.span "serve.decide"
    ~attrs:[ ("options", string_of_int (List.length req.options)) ]
  @@ fun () ->
  Obs.Counter.incr c.c_requests;
  let t0 = Obs.now () in
  if req.options = [] then raise No_options;
  let gpm = t.gpm in
  let version = Asg.Gpm.version gpm in
  let ctx_fp = Asp.Program.fingerprint req.context in
  let key = (version, ctx_fp, req.options) in
  let memo = locked t (fun () -> Lru.find t.memo key) in
  let counts = { rq_hits = 0; rq_misses = 0 } in
  let decision, provenance =
    match memo with
    | Some (ctx0, d) when Asp.Program.equal ctx0 req.context ->
      locked t (fun () -> t.d_hits <- t.d_hits + 1);
      Obs.Counter.incr c.cd_hits;
      (d, Memo_hit)
    | _ ->
      (* a resident entry that failed the equality confirm is a
         fingerprint collision; the add below replaces it in place *)
      let collision = Option.is_some memo in
      locked t (fun () ->
          t.d_misses <- t.d_misses + 1;
          if collision then t.d_collisions <- t.d_collisions + 1);
      Obs.Counter.incr c.cd_misses;
      if collision then Obs.Counter.incr c.cd_collisions;
      let d =
        match fact_only_context req.context with
        | Some ctx_facts ->
          decide_core req.options
            ~membership:(fun opt ->
              accepts_incremental t gpm opt ~counts ~ctx_facts)
        | None ->
          (* rule-bearing context: no context-free core to reuse *)
          locked t (fun () -> t.n_fallbacks <- t.n_fallbacks + 1);
          Obs.Counter.incr c.cs_delta_fallbacks;
          let g_ctx = Asg.Gpm.with_context gpm req.context in
          decide_core req.options
            ~membership:(fun opt -> accepts_fallback t g_ctx opt ~counts)
      in
      locked t (fun () ->
          match Lru.add t.memo key (req.context, d) with
          | Some _ -> Obs.Counter.incr c.cd_evictions
          | None -> ());
      (* ground-cache provenance over the full set of membership checks:
         a request is a [Ground_hit] only when every ground program it
         needed came from the cache (one stray miss used to be enough to
         mislabel the request when any other tree hit) *)
      (d, if counts.rq_misses = 0 && counts.rq_hits > 0 then Ground_hit else Cold)
  in
  let latency = Obs.now () -. t0 in
  Obs.set_attr "provenance" (provenance_to_string provenance);
  Obs.Window.observe c.w_decide latency;
  Option.iter (fun slo -> Obs.Slo.record slo latency) t.slo;
  (match t.audit with
  | Some ring ->
    ignore
      (Audit.add ring ~ts:(Obs.now ()) ~trace_id ~context_fp:ctx_fp
         ~gpm_version:version ~options:req.options
         ~chosen:decision.Decision.chosen
         ~fallback_used:decision.Decision.fallback_used
         ~compliant:decision.Decision.compliant
         ~provenance:(provenance_to_string provenance)
         ~ground_hits:counts.rq_hits ~ground_misses:counts.rq_misses
         ~latency)
  | None -> ());
  {
    Response.decision;
    trace_id;
    provenance;
    latency;
    gpm_version = version;
    deadline_missed =
      (match req.deadline with Some d -> latency > d | None -> false);
    shard = t.name;
  }

module Batch = struct
  (* Higher priority first; within a priority class, earliest deadline
     first (no deadline sorts last — it can never be missed); remaining
     ties broken by input position so the schedule (not just the output)
     is deterministic at every pool size. *)
  let schedule (arr : Request.t array) : int array =
    let deadline i =
      match arr.(i).Request.deadline with Some d -> d | None -> infinity
    in
    let order = Array.init (Array.length arr) Fun.id in
    Array.sort
      (fun i j ->
        let c =
          Int.compare arr.(j).Request.priority arr.(i).Request.priority
        in
        if c <> 0 then c
        else
          let c = Float.compare (deadline i) (deadline j) in
          if c <> 0 then c else Int.compare i j)
      order;
    order

  let run ?pool t (reqs : Request.t list) : Response.t list =
    match reqs with
    | [] -> []
    | _ ->
      (* the batch runs under one trace scope; each request gets its
         own child ID at submission time (deterministic in schedule
         order), installed around its decide on whichever pool domain
         runs it — IDs stay unique per request and chain to the batch *)
      Obs.Trace_context.scope @@ fun _batch_id ->
      Obs.span "serve.batch"
        ~attrs:[ ("requests", string_of_int (List.length reqs)) ]
      @@ fun () ->
      let pool = match pool with Some p -> p | None -> Par.Config.pool () in
      let arr = Array.of_list reqs in
      let order = schedule arr in
      let scheduled =
        Array.map (fun i -> (Obs.Trace_context.child_id (), arr.(i))) order
      in
      let results =
        Par.parallel_map pool
          (fun (id, req) -> Obs.Trace_context.with_id id (fun () -> decide t req))
          scheduled
      in
      let out = Array.make (Array.length arr) results.(0) in
      Array.iteri (fun k i -> out.(i) <- results.(k)) order;
      Array.to_list out
end

(* ---- sharded multi-tenant serving ------------------------------------- *)

type engine = t

let engine_stats = stats

module Shard = struct
  type t = {
    sh_tenant : string;
    sh_engine : engine;
    sh_window : Obs.Window.t;  (** per-tenant rolling latency *)
    sh_fallbacks : Obs.Health.t;  (** per-tenant fallback signal *)
    sh_mu : Mutex.t;
    mutable sh_served : int;
  }

  let make ?config tenant gpm =
    {
      sh_tenant = tenant;
      sh_engine = create ~name:tenant ?config gpm;
      sh_window = Obs.Window.make ("serve.shard." ^ tenant);
      sh_fallbacks = Obs.Health.make ("serve.shard." ^ tenant ^ ".fallbacks");
      sh_mu = Mutex.create ();
      sh_served = 0;
    }

  let tenant sh = sh.sh_tenant
  let engine sh = sh.sh_engine

  let served sh =
    Mutex.lock sh.sh_mu;
    let n = sh.sh_served in
    Mutex.unlock sh.sh_mu;
    n

  (* The shard-owned serve path: the engine decides, the shard's own
     telemetry observes. Called from pool domains during a drain, so
     the served count takes the shard mutex. *)
  let serve sh (req : Request.t) : Response.t =
    let r = decide sh.sh_engine req in
    Obs.Window.observe sh.sh_window r.Response.latency;
    Obs.Health.observe ~version:r.Response.gpm_version sh.sh_fallbacks
      r.Response.decision.Decision.fallback_used;
    Mutex.lock sh.sh_mu;
    sh.sh_served <- sh.sh_served + 1;
    Mutex.unlock sh.sh_mu;
    r
end

module Cluster = struct
  type reject_reason = Queue_full | Unknown_tenant

  let reject_reason_to_string = function
    | Queue_full -> "queue_full"
    | Unknown_tenant -> "unknown_tenant"

  type outcome = Served of Response.t | Rejected of reject_reason
  type ticket = { mutable resolved : outcome option }

  type entry = { e_req : Request.t; e_ticket : ticket; e_trace : string }

  type t = {
    cl_shards : (string * Shard.t) list;  (** tenant declaration order *)
    cl_queue_depth : int;
    cl_mu : Mutex.t;  (** guards the queue and the cluster counters *)
    cl_queue : entry Queue.t;
    mutable cl_submitted : int;
    mutable cl_coalesced : int;
    mutable cl_rejected : int;
  }

  let locked t f =
    Mutex.lock t.cl_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.cl_mu) f

  let create ?config ?(queue_depth = 64) ~tenants () =
    if tenants = [] then
      invalid_arg "Serve.Cluster.create: at least one tenant required";
    if queue_depth < 1 then
      invalid_arg "Serve.Cluster.create: queue_depth must be >= 1";
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (name, _) ->
        if Hashtbl.mem seen name then
          invalid_arg ("Serve.Cluster.create: duplicate tenant " ^ name);
        Hashtbl.add seen name ())
      tenants;
    {
      cl_shards =
        List.map (fun (name, gpm) -> (name, Shard.make ?config name gpm)) tenants;
      cl_queue_depth = queue_depth;
      cl_mu = Mutex.create ();
      cl_queue = Queue.create ();
      cl_submitted = 0;
      cl_coalesced = 0;
      cl_rejected = 0;
    }

  let tenants t = List.map fst t.cl_shards
  let shard t tenant = List.assoc_opt tenant t.cl_shards
  let shards t = List.map snd t.cl_shards
  let queue_depth t = t.cl_queue_depth
  let queue_length t = locked t (fun () -> Queue.length t.cl_queue)
  let coalesced t = locked t (fun () -> t.cl_coalesced)
  let rejected t = locked t (fun () -> t.cl_rejected)
  let submitted t = locked t (fun () -> t.cl_submitted)

  let set_gpm t ~tenant gpm =
    match shard t tenant with
    | Some sh -> set_gpm (Shard.engine sh) gpm
    | None -> invalid_arg ("Serve.Cluster.set_gpm: unknown tenant " ^ tenant)

  let reject t tk reason =
    let c = Lazy.force counters in
    locked t (fun () -> t.cl_rejected <- t.cl_rejected + 1);
    Obs.Counter.incr c.cl_rejected;
    tk.resolved <- Some (Rejected reason);
    tk

  let submit t (req : Request.t) : ticket =
    let tk = { resolved = None } in
    match shard t req.Request.tenant with
    | None -> reject t tk Unknown_tenant
    | Some _ ->
      let accepted =
        locked t (fun () ->
            if Queue.length t.cl_queue >= t.cl_queue_depth then false
            else begin
              t.cl_submitted <- t.cl_submitted + 1;
              Queue.add
                {
                  e_req = req;
                  e_ticket = tk;
                  e_trace = Obs.Trace_context.child_id ();
                }
                t.cl_queue;
              true
            end)
      in
      if accepted then tk else reject t tk Queue_full

  let poll tk = tk.resolved

  (* Serve everything queued. Coalescing groups entries by (tenant,
     context fingerprint, options) with the context confirmed by
     structural equality — a fingerprint collision never merges two
     distinct requests. Representatives are served in first-occurrence
     order across the pool; every member of a group shares its
     representative's response. *)
  let drain ?pool t : int =
    let entries =
      locked t (fun () ->
          let l = List.of_seq (Queue.to_seq t.cl_queue) in
          Queue.clear t.cl_queue;
          l)
    in
    match entries with
    | [] -> 0
    | _ ->
      let c = Lazy.force counters in
      let pool = match pool with Some p -> p | None -> Par.Config.pool () in
      let groups :
          ( string * int * string list,
            (Asp.Program.t * entry list ref) list ref )
          Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref [] in
      List.iter
        (fun (e : entry) ->
          let req = e.e_req in
          let key =
            ( req.Request.tenant,
              Asp.Program.fingerprint req.Request.context,
              req.Request.options )
          in
          let bucket =
            match Hashtbl.find_opt groups key with
            | Some b -> b
            | None ->
              let b = ref [] in
              Hashtbl.add groups key b;
              b
          in
          match
            List.find_opt
              (fun (ctx, _) -> Asp.Program.equal ctx req.Request.context)
              !bucket
          with
          | Some (_, members) -> members := e :: !members
          | None ->
            let members = ref [ e ] in
            bucket := (req.Request.context, members) :: !bucket;
            order := (e, members) :: !order)
        entries;
      let reps = Array.of_list (List.rev !order) in
      let n_coalesced = List.length entries - Array.length reps in
      if n_coalesced > 0 then begin
        locked t (fun () -> t.cl_coalesced <- t.cl_coalesced + n_coalesced);
        Obs.Counter.incr c.cl_coalesced ~by:n_coalesced
      end;
      let responses =
        Par.parallel_map pool
          (fun ((e : entry), _) ->
            Obs.Trace_context.with_id e.e_trace (fun () ->
                match shard t e.e_req.Request.tenant with
                | Some sh -> Shard.serve sh e.e_req
                | None -> assert false (* submit checked the tenant *)))
          reps
      in
      Array.iteri
        (fun i (_, members) ->
          let outcome = Served responses.(i) in
          List.iter (fun (m : entry) -> m.e_ticket.resolved <- Some outcome)
            !members)
        reps;
      List.length entries

  let await ?pool t tk =
    match tk.resolved with
    | Some o -> o
    | None ->
      ignore (drain ?pool t);
      Option.get tk.resolved

  let decide t (req : Request.t) : outcome =
    match shard t req.Request.tenant with
    | None -> (
      match poll (reject t { resolved = None } Unknown_tenant) with
      | Some o -> o
      | None -> Rejected Unknown_tenant)
    | Some sh -> Served (Shard.serve sh req)

  let run ?pool t (reqs : Request.t list) : outcome list =
    Obs.Trace_context.scope @@ fun _run_id ->
    let tickets =
      List.map
        (fun req ->
          let tk = submit t req in
          match poll tk with
          | Some (Rejected Queue_full) ->
            (* flow control: make room, then resubmit (the queue is
               empty now, so the retry cannot be rejected for space) *)
            ignore (drain ?pool t);
            submit t req
          | _ -> tk)
        reqs
    in
    ignore (drain ?pool t);
    List.map (fun tk -> Option.get (poll tk)) tickets

  let stats t =
    List.map (fun (name, sh) -> (name, engine_stats (Shard.engine sh))) t.cl_shards

  let openmetrics t =
    let tier tenant tname (ts : tier_stats) =
      let labels = [ ("tenant", tenant); ("tier", tname) ] in
      [
        ("serve.shard.cache.entries", labels, float_of_int ts.entries);
        ("serve.shard.cache.hit_rate", labels, hit_rate ts);
        ("serve.shard.cache.collisions", labels, float_of_int ts.collisions);
      ]
    in
    let shard_extra =
      List.concat_map
        (fun (tenant, sh) ->
          let s = engine_stats (Shard.engine sh) in
          ( "serve.shard.requests",
            [ ("tenant", tenant) ],
            float_of_int (Shard.served sh) )
          :: (tier tenant "decision" s.decisions @ tier tenant "ground" s.grounds))
        t.cl_shards
    in
    let cluster_extra =
      [
        ("serve.cluster.queue.depth", [], float_of_int t.cl_queue_depth);
        ("serve.cluster.queue.length", [], float_of_int (queue_length t));
      ]
    in
    Obs.Openmetrics.render ~extra:(cluster_extra @ shard_extra) ()
end

type target = Engine of t | Tenant of Cluster.t * string
