(** Rule-level explanations for policy decisions (Section V-B): witnessing
    answer sets (why), blocking constraints with fired ground bodies
    (why-not), and full derivation trees for decision atoms.

    Explanation traffic flows through the [lib/obs] registry: counters
    [explain.why_calls] / [explain.why_not_calls] /
    [explain.derivation_calls], histograms [explain.derivation_size]
    (justification-tree node counts) and [explain.blockers] (deduped
    blocking constraints per rejection), and spans [explain.why] /
    [explain.why_not] / [explain.why_derivation] — so explanation load
    appears in [--report], flamegraphs, and [/metrics]. *)

type blocker = {
  trace : int list;  (** parse-tree node whose annotation blocks *)
  constraint_rule : Asp.Rule.t;  (** the instantiated constraint *)
  fired_body : Asp.Rule.body_elt list;  (** the ground instance that fired *)
}

type why_not =
  | Not_in_cfg  (** not even syntactically valid *)
  | No_model  (** non-constraint annotations are inconsistent *)
  | Blocked of blocker list

val pp_blocker : Format.formatter -> blocker -> unit

(** Justification tree for a (trace-mangled) decision atom in a witnessing
    answer set of an accepted sentence. *)
val why_derivation :
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  string ->
  Asp.Atom.t ->
  Asp.Justification.t option

(** Witnessing answer set for an accepted sentence. *)
val why :
  Asg.Gpm.t -> context:Asp.Program.t -> string -> Asp.Solver.model option

(** Explain a rejection. *)
val why_not : Asg.Gpm.t -> context:Asp.Program.t -> string -> why_not

val why_not_to_string : why_not -> string
