(** Rule-level explanations for generative-policy decisions (Section V-B):
    {e why} is a policy valid (a witnessing answer set), and {e why not}
    (which learned constraints block it, with the ground conditions that
    fired). *)

type blocker = {
  trace : int list;  (** parse-tree node whose annotation blocks *)
  constraint_rule : Asp.Rule.t;  (** the instantiated constraint *)
  fired_body : Asp.Rule.body_elt list;  (** the ground instance that fired *)
}

type why_not =
  | Not_in_cfg  (** the sentence is not even syntactically valid *)
  | No_model  (** the non-constraint part of the program is inconsistent *)
  | Blocked of blocker list  (** violated constraints, per candidate model *)

let c_why = Obs.Counter.make "explain.why_calls"
let c_why_not = Obs.Counter.make "explain.why_not_calls"
let c_derivations = Obs.Counter.make "explain.derivation_calls"
let h_derivation_size = Obs.Histogram.make "explain.derivation_size"
let h_blockers = Obs.Histogram.make "explain.blockers"

(* nodes in a justification tree — the derivation-size metric *)
let rec justification_size (j : Asp.Justification.t) : int =
  match j with
  | Asp.Justification.Fact _ -> 1
  | Asp.Justification.Derived { premises; _ }
  | Asp.Justification.Chosen { premises; _ } ->
    1 + List.fold_left (fun acc p -> acc + justification_size p) 0 premises

let pp_blocker ppf b =
  Fmt.pf ppf "at node %s: %a fired with %a"
    (Grammar.Parse_tree.trace_to_string b.trace)
    Asp.Rule.pp b.constraint_rule
    Fmt.(list ~sep:(any ", ") Asp.Rule.pp_body_elt)
    b.fired_body

(** A derivation tree for the chosen decision atom of an accepted
    sentence: the witnessing answer set plus the justification (paper
    Section V-B's "which rules within a policy were the ones that were
    applied"). *)
let why_derivation (gpm : Asg.Gpm.t) ~(context : Asp.Program.t)
    (sentence : string) (target : Asp.Atom.t) : Asp.Justification.t option =
  Obs.span "explain.why_derivation" @@ fun () ->
  Obs.Counter.incr c_derivations;
  let g = Asg.Gpm.with_context gpm context in
  let tokens = Asg.Membership.tokenize sentence in
  let j =
    List.fold_left
      (fun acc tree ->
        match acc with
        | Some _ -> acc
        | None -> (
          let gp = Asp.Grounder.ground (Asg.Tree_program.program g tree) in
          match Asp.Solver.solve_ground ~limit:1 gp with
          | [] -> None
          | m :: _ -> Asp.Justification.justify gp m target))
      None
      (Grammar.Earley.parses (Asg.Gpm.cfg g) tokens)
  in
  (match j with
  | Some j ->
    Obs.Histogram.observe h_derivation_size
      (float_of_int (justification_size j))
  | None -> ());
  j

(** Witnessing answer set for an accepted sentence. *)
let why (gpm : Asg.Gpm.t) ~(context : Asp.Program.t) (sentence : string) :
    Asp.Solver.model option =
  Obs.span "explain.why" @@ fun () ->
  Obs.Counter.incr c_why;
  Asg.Membership.witness (Asg.Gpm.with_context gpm context) sentence

(** Explain a rejection: for the first parse tree, compute the models of
    the program without its constraints and report which constraints each
    model violates (with their ground firing instances). *)
let why_not (gpm : Asg.Gpm.t) ~(context : Asp.Program.t) (sentence : string) :
    why_not =
  Obs.span "explain.why_not" @@ fun () ->
  Obs.Counter.incr c_why_not;
  let g = Asg.Gpm.with_context gpm context in
  let tokens = Asg.Membership.tokenize sentence in
  match Grammar.Earley.parses (Asg.Gpm.cfg g) tokens with
  | [] -> Not_in_cfg
  | tree :: _ ->
    (* collect instantiated constraints per node *)
    let node_constraints =
      List.concat_map
        (fun (trace, (p : Grammar.Production.t), _) ->
          List.filter_map
            (fun (r : Asg.Annotation.rule) ->
              match r.Asg.Annotation.head with
              | Asg.Annotation.Falsity ->
                Some (trace, Asg.Annotation.instantiate_rule trace r)
              | Asg.Annotation.Head _ | Asg.Annotation.Choice _
              | Asg.Annotation.Weak _ ->
                None)
            (Asg.Gpm.full_annotation g p.Grammar.Production.id))
        (Grammar.Parse_tree.nodes_with_traces tree)
    in
    let full = Asg.Tree_program.program g tree in
    let without_constraints =
      Asp.Program.of_rules
        (List.filter
           (fun r -> not (Asp.Rule.is_constraint r))
           (Asp.Program.rules full))
    in
    (match Asp.Solver.solve ~limit:8 without_constraints with
    | [] -> No_model
    | models ->
      let blockers =
        List.concat_map
          (fun model ->
            List.concat_map
              (fun (trace, (c : Asp.Rule.t)) ->
                List.map
                  (fun fired_body -> { trace; constraint_rule = c; fired_body })
                  (Asp.Query.satisfying_instances model c.Asp.Rule.body))
              node_constraints)
          models
      in
      let dedup =
        List.sort_uniq
          (fun a b ->
            compare
              (Fmt.str "%a" pp_blocker a)
              (Fmt.str "%a" pp_blocker b))
          blockers
      in
      Obs.Histogram.observe h_blockers (float_of_int (List.length dedup));
      Blocked dedup)

let why_not_to_string = function
  | Not_in_cfg -> "the policy is not syntactically valid in the grammar"
  | No_model -> "the grammar's annotations are inconsistent for this policy"
  | Blocked [] -> "no single blocking constraint found"
  | Blocked bs ->
    String.concat "\n" (List.map (fun b -> Fmt.str "%a" pp_blocker b) bs)
