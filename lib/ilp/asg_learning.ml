(** The Figure-1 workflow: initial generative policy model (an ASG) plus
    context-dependent examples go into the learner; out comes a learned
    GPM — the initial grammar extended with the learned ASP hypothesis. *)

type learned = {
  gpm : Asg.Gpm.t;  (** the learned generative policy model *)
  outcome : Learner.outcome;
}

(** Run the workflow. [None] when the task has no inductive solution. *)
let learn_gpm ?pool ?max_witnesses (t : Task.t) : learned option =
  match Learner.learn ?pool ?max_witnesses t with
  | None -> None
  | Some outcome ->
    Some { gpm = Task.apply_hypothesis t.Task.gpm outcome.hypothesis; outcome }

(** Convenience: build the task and learn in one call. *)
let learn ?pool ?max_witnesses ~gpm ~space ~examples () : learned option =
  learn_gpm ?pool ?max_witnesses (Task.make ~gpm ~space ~examples)

(** Accuracy of a GPM against labelled examples: the fraction whose
    membership matches the label — the metric of the paper's CAV
    comparison (Section IV-A). *)
let accuracy (gpm : Asg.Gpm.t) (examples : Example.t list) : float =
  match examples with
  | [] -> 1.0
  | _ ->
    let correct =
      List.length (List.filter (fun e -> Task.covers gpm e) examples)
    in
    float_of_int correct /. float_of_int (List.length examples)

(** The learned rules rendered as text, one per line. *)
let hypothesis_text (l : learned) : string list =
  List.map
    (fun (c : Hypothesis_space.candidate) ->
      Fmt.str "[pr%d] %a" c.prod_id Asg.Annotation.pp_rule c.rule)
    l.outcome.hypothesis
