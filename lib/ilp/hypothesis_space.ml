(** The hypothesis space [S_M]: the finite set of candidate annotation
    rules the learner may add, each tagged with the production rule it
    would extend (Definition 3's ⟨h, pr_id⟩ pairs) and a cost (its number
    of literals — the learner prefers minimal total cost, like ILASP). *)

type candidate = {
  rule : Asg.Annotation.rule;
  prod_id : int;
  cost : int;
}

type t = candidate list

let rule_cost (r : Asg.Annotation.rule) =
  let head_cost =
    match r.Asg.Annotation.head with
    | Asg.Annotation.Falsity | Asg.Annotation.Weak _ -> 0
    | Asg.Annotation.Head _ -> 1
    | Asg.Annotation.Choice (_, elts, _) -> List.length elts
  in
  head_cost + List.length r.Asg.Annotation.body

let candidate ?cost rule prod_id =
  { rule; prod_id; cost = Option.value cost ~default:(rule_cost rule) }

(** Explicit space: each entry is annotation-rule source text plus the
    production ids it may attach to. *)
let of_rules (entries : (string * int list) list) : t =
  List.concat_map
    (fun (src, prods) ->
      let rule = Asg.Annotation.parse_rule_string src in
      List.map (candidate rule) prods)
    entries

(** Safety of an annotation rule, checked by erasing sites into distinct
    predicate names and reusing the plain ASP safety test. *)
let rule_is_safe (r : Asg.Annotation.rule) =
  Asp.Rule.is_safe (Asg.Annotation.instantiate_rule [] r)

let is_constraint_candidate c =
  match c.rule.Asg.Annotation.head with
  | Asg.Annotation.Falsity -> true
  | Asg.Annotation.Head _ | Asg.Annotation.Choice _ | Asg.Annotation.Weak _ ->
    false

(** All subsets of [l] of size between 1 and [k]. *)
let rec subsets_up_to k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> [ [] ]
    | x :: rest ->
      let without = subsets_up_to k rest in
      let with_x = List.map (fun s -> x :: s) (subsets_up_to (k - 1) rest) in
      without @ with_x

(** Generate the hypothesis space described by a mode bias. Unsafe rules
    and duplicate rules (after canonical printing) are dropped. *)
let generate (m : Mode.t) : t =
  Obs.span "ilp.space_generate" @@ fun () ->
  let body_atom_choices : (bool * Asg.Annotation.body_elt list) list =
    List.map
      (fun (ma : Mode.matom) ->
        ( ma.Mode.required,
          List.map
            (fun a ->
              if ma.Mode.negated then Asg.Annotation.Neg a
              else Asg.Annotation.Pos a)
            (Mode.instantiate_matom ma) ))
      m.bodies
  in
  let has_required =
    List.exists (fun (req, _) -> req) body_atom_choices
  in
  (* pick up to max_body mode atoms (each used at most once); when any
     mode atom is marked required, every rule must contain at least one
     required atom (e.g. the decision literal a constraint forbids) *)
  let body_combos =
    subsets_up_to m.max_body body_atom_choices
    |> List.filter (fun s ->
           s <> []
           && ((not has_required) || List.exists (fun (req, _) -> req) s))
    |> List.map (List.map snd)
  in
  let rec cross = function
    | [] -> [ [] ]
    | choices :: rest ->
      let tails = cross rest in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices
  in
  let heads =
    List.concat_map
      (function
        | Mode.Constraint -> [ Asg.Annotation.Falsity ]
        | Mode.WeakHead operand ->
          [ Asg.Annotation.Weak (Mode.operand_to_term operand) ]
        | Mode.HeadAtom ma ->
          List.map
            (fun a -> Asg.Annotation.Head a)
            (Mode.instantiate_matom ma))
      m.heads
  in
  (* comparison literal subsets (each comparison is optional) *)
  let cmp_subsets =
    List.fold_left
      (fun acc cmp ->
        acc @ List.map (fun s -> Mode.cmp_to_body_elt cmp :: s) acc)
      [ [] ] m.cmps
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun head ->
      List.iter
        (fun combo ->
          List.iter
            (fun body ->
              List.iter
                (fun cmps ->
                  let rule = { Asg.Annotation.head; body = body @ cmps } in
                  let key = Asg.Annotation.rule_to_string rule in
                  if (not (Hashtbl.mem seen key)) && rule_is_safe rule then begin
                    Hashtbl.replace seen key ();
                    out := rule :: !out
                  end)
                cmp_subsets)
            (cross combo))
        body_combos)
    heads;
  let rules = List.rev !out in
  let cands =
    List.concat_map
      (fun rule -> List.map (candidate rule) m.target_prods)
      rules
  in
  Obs.set_attr "candidates" (string_of_int (List.length cands));
  cands

let size (t : t) = List.length t

let pp_candidate ppf c =
  Fmt.pf ppf "[pr%d, cost %d] %a" c.prod_id c.cost Asg.Annotation.pp_rule c.rule

let pp ppf (t : t) = Fmt.(list ~sep:(any "@.") pp_candidate) ppf t
