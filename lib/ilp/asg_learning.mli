(** The Figure-1 workflow: initial GPM + examples → learner → learned
    GPM, plus the accuracy metric of the paper's CAV comparison. *)

type learned = {
  gpm : Asg.Gpm.t;  (** the learned generative policy model *)
  outcome : Learner.outcome;
}

(** Solve a learning task and graft the winning hypothesis back into the
    grammar; [None] when the task has no solution. [pool] is forwarded
    to {!Learner.learn_constraints}. *)
val learn_gpm : ?pool:Par.t -> ?max_witnesses:int -> Task.t -> learned option

(** Convenience wrapper around {!learn_gpm} building the task in place. *)
val learn :
  ?pool:Par.t ->
  ?max_witnesses:int ->
  gpm:Asg.Gpm.t ->
  space:Hypothesis_space.t ->
  examples:Example.t list ->
  unit ->
  learned option

(** Fraction of examples whose membership matches their label. *)
val accuracy : Asg.Gpm.t -> Example.t list -> float

(** The learned annotation rules rendered as source text, one per rule. *)
val hypothesis_text : learned -> string list
