(** Context-dependent examples (Definition 3): a policy string paired with
    an ASP context, labelled positive or negative, with an optional
    penalty weight ([None] = hard) for noise-tolerant learning. *)

type label = Positive | Negative

type t = {
  sentence : string;
  context : Asp.Program.t;
  label : label;
  weight : int option;  (** [None] = hard (may not be sacrificed) *)
}

(** [positive sentence] / [negative sentence]: a labelled example with an
    optional context program and penalty weight. *)
val positive : ?weight:int -> ?context:Asp.Program.t -> string -> t

val negative : ?weight:int -> ?context:Asp.Program.t -> string -> t

(** Variants taking the context as ASP source text. *)

val positive_ctx : ?weight:int -> string -> string -> t
val negative_ctx : ?weight:int -> string -> string -> t

val is_positive : t -> bool

(** Has no weight, so it may not be sacrificed during noise-tolerant
    learning. *)
val is_hard : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
