(** The context-dependent ASG learning task (Definition 3) and its
    solution check. *)

type t = {
  gpm : Asg.Gpm.t;
  space : Hypothesis_space.t;
  examples : Example.t list;
}

type hypothesis = Hypothesis_space.candidate list

val make :
  gpm:Asg.Gpm.t -> space:Hypothesis_space.t -> examples:Example.t list -> t

(** The positively / negatively labelled examples of the task. *)
val positives : t -> Example.t list

val negatives : t -> Example.t list

(** Summed candidate costs (the learner's minimization objective). *)
val hypothesis_cost : hypothesis -> int

(** [G : H]. *)
val apply_hypothesis : Asg.Gpm.t -> hypothesis -> Asg.Gpm.t

(** Does the (extended) grammar treat the example as its label demands? *)
val covers : Asg.Gpm.t -> Example.t -> bool

(** Reference (slow) inductive-solution check, used to validate the
    optimized search. *)
val is_solution : t -> hypothesis -> bool

val pp : Format.formatter -> t -> unit
