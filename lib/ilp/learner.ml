(** The inductive learner: finds a minimal-cost hypothesis [H ⊆ S_M]
    solving a context-dependent ASG learning task (Definition 3), like the
    ILASP system the paper builds on.

    Two search engines are provided.

    {b Constraint path} (the common case: every candidate is a constraint).
    Adding constraints never creates answer sets, so an example's possible
    {e witnesses} — (parse tree, answer set) pairs of the base grammar under
    the example's context — are fixed up front. A candidate {e kills} a
    witness when its instantiation at some node of the witness's tree is
    violated by the witness's model. Learning then reduces to a weighted
    set-cover problem: kill every witness of every negative example while
    leaving at least one witness of every positive example alive. A
    branch-and-bound search finds the minimum-cost hypothesis; soft
    examples may instead be sacrificed at their penalty weight, which
    yields ILASP-style noise tolerance.

    {b General path} (candidates may define new atoms): best-first search
    over subsets in cost order, validating each candidate hypothesis with
    full membership checks. Exponential — intended for small spaces. *)

let c_hypothesis_evals = Obs.Counter.make "ilp.hypothesis_evals"
let c_candidate_evals = Obs.Counter.make "ilp.candidate_evals"
let c_search_nodes = Obs.Counter.make "ilp.search_nodes"
let c_witnesses_truncated = Obs.Counter.make "ilp.witnesses_truncated"
let c_candidates = Obs.Counter.make "ilp.candidates"
let c_nodes_pruned = Obs.Counter.make "ilp.nodes_pruned"
let c_kill_cells = Obs.Counter.make "ilp.kill_cells"
let h_kill_density = Obs.Histogram.make "ilp.kill_matrix.density"

type stats = {
  witnesses : int;
  truncated : int;  (** examples whose witness enumeration hit the cap *)
  nodes : int;  (** branch-and-bound nodes explored *)
  duration : float;  (** seconds, wall-clock *)
  candidates : int;  (** hypothesis-space candidates considered *)
  pruned : int;  (** search nodes cut by the cost bound *)
  kill_cells : int;  (** set (candidate, witness) kill-matrix cells *)
  max_depth : int;  (** deepest refinement (chosen-set size) reached *)
}

type outcome = {
  hypothesis : Task.hypothesis;
  cost : int;  (** total cost of hypothesis rules *)
  penalty : int;  (** total weight of sacrificed (uncovered) examples *)
  sacrificed : Example.t list;
  stats : stats;
}

type witness = {
  ex_idx : int;
  model : Asp.Solver.model;
  traces_by_prod : (int * int list list) list;  (** prod id -> node traces *)
}

(* Witness enumeration with exact truncation detection: each solve asks
   for one model more than the remaining budget, so a within-tree cutoff
   is observed (the surplus model is discarded, keeping the returned set
   identical to a plain capped enumeration); a parse tree skipped after
   the budget is exhausted also reports truncation, conservatively — its
   induced program may or may not have had answer sets. *)
let witnesses_of_example_counted ?(max_witnesses = 64) (gpm : Asg.Gpm.t)
    (e : Example.t) : witness list * bool =
  let g = Asg.Gpm.with_context gpm e.Example.context in
  let tokens = Asg.Membership.tokenize e.Example.sentence in
  let trees = Grammar.Earley.parses (Asg.Gpm.cfg g) tokens in
  let out = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  List.iter
    (fun tree ->
      if !count >= max_witnesses then truncated := true
      else begin
        let traces_by_prod =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (trace, (p : Grammar.Production.t), _) ->
              let id = p.Grammar.Production.id in
              let existing = Option.value ~default:[] (Hashtbl.find_opt tbl id) in
              Hashtbl.replace tbl id (trace :: existing))
            (Grammar.Parse_tree.nodes_with_traces tree);
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        in
        Obs.Counter.incr c_hypothesis_evals;
        let remaining = max_witnesses - !count in
        let models =
          Obs.fine_span "ilp.witness_solve" @@ fun () ->
          Asp.Solver.solve ~limit:(remaining + 1)
            (Asg.Tree_program.program g tree)
        in
        List.iteri
          (fun k model ->
            if k < remaining then begin
              incr count;
              out := { ex_idx = -1; model; traces_by_prod } :: !out
            end
            else truncated := true)
          models
      end)
    trees;
  if !truncated then Obs.Counter.incr c_witnesses_truncated;
  (List.rev !out, !truncated)

let witnesses_of_example ?max_witnesses gpm e =
  fst (witnesses_of_example_counted ?max_witnesses gpm e)

(** Does candidate [c] kill witness [w]? True when the candidate's
    constraint, instantiated at some node of the witness's tree carrying
    the candidate's production, is violated by the witness's model. *)
let kills (c : Hypothesis_space.candidate) (w : witness) : bool =
  match List.assoc_opt c.Hypothesis_space.prod_id w.traces_by_prod with
  | None -> false
  | Some traces ->
    List.exists
      (fun trace ->
        let rule = Asg.Annotation.instantiate_rule trace c.Hypothesis_space.rule in
        Asp.Query.violates w.model rule)
      traces

exception Infeasible

(* Greedy preference over (gain, cost, candidate index): higher
   gain-per-cost first, compared exactly by cross-multiplication (costs
   are positive integers), then higher index first. The ratio order used
   to rely on polymorphic [compare] over floats and the tie order on
   sort stability over the ci-descending killer lists; both are now
   pinned explicitly. *)
let greedy_score_compare (g1, c1, i1) (g2, c2, i2) =
  let r = Int.compare (g2 * c1) (g1 * c2) in
  if r <> 0 then r else Int.compare i2 i1

(* ---- Constraint path -------------------------------------------------- *)

let learn_constraints ?pool ?(max_witnesses = 64) ?(max_nodes = 300_000)
    (t : Task.t) : outcome option =
  Obs.span "ilp.learn" @@ fun () ->
  let pool = match pool with Some p -> p | None -> Par.Config.pool () in
  let t0 = Obs.now () in
  let examples = Array.of_list t.Task.examples in
  let n_ex = Array.length examples in
  let candidates = Array.of_list t.Task.space in
  let n_cand = Array.length candidates in
  (* collect witnesses: per-example enumeration fans out across the pool
     (each example is independent); assembly stays sequential in example
     order so witness ids match the sequential run bit for bit *)
  let witnesses = ref [] in
  let n_wit = ref 0 in
  let n_truncated = ref 0 in
  let wit_ids_of_ex = Array.make n_ex [] in
  Obs.span "ilp.witnesses" (fun () ->
      let per_example =
        Par.parallel_map pool
          (fun e -> witnesses_of_example_counted ~max_witnesses t.Task.gpm e)
          examples
      in
      Array.iteri
        (fun i (ws, truncated) ->
          if truncated then incr n_truncated;
          List.iter
            (fun w ->
              let wid = !n_wit in
              incr n_wit;
              witnesses := { w with ex_idx = i } :: !witnesses;
              wit_ids_of_ex.(i) <- wid :: wit_ids_of_ex.(i))
            ws)
        per_example);
  let witnesses = Array.of_list (List.rev !witnesses) in
  let n_wit = !n_wit in
  let n_truncated = !n_truncated in
  if n_truncated > 0 then
    Obs.Log.warn
      "witness enumeration hit the cap; the result may change with a larger \
       cap"
      ~attrs:
        [
          ("cap", string_of_int max_witnesses);
          ("examples_truncated", string_of_int n_truncated);
        ];
  (* kill matrix: one task per candidate row — each task writes only its
     own [kill.(ci)] row and [killed_by_cand.(ci)] cell, so rows race on
     nothing; [killers_of] is rebuilt sequentially afterwards in the same
     ci-ascending order the sequential loop used *)
  let kill = Array.make_matrix n_cand n_wit false in
  let killers_of = Array.make n_wit [] in
  let killed_by_cand = Array.make n_cand [] in
  Obs.span "ilp.kill_matrix" (fun () ->
      Par.parallel_iter pool
        (fun ci ->
          Obs.Counter.incr c_candidate_evals;
          Obs.fine_span "ilp.candidate_eval" (fun () ->
              for wi = 0 to n_wit - 1 do
                if kills candidates.(ci) witnesses.(wi) then begin
                  kill.(ci).(wi) <- true;
                  killed_by_cand.(ci) <- wi :: killed_by_cand.(ci)
                end
              done))
        (Array.init n_cand Fun.id);
      for ci = 0 to n_cand - 1 do
        for wi = 0 to n_wit - 1 do
          if kill.(ci).(wi) then killers_of.(wi) <- ci :: killers_of.(wi)
        done
      done);
  let kill_cells =
    Array.fold_left (fun acc l -> acc + List.length l) 0 killed_by_cand
  in
  Obs.Counter.incr ~by:n_cand c_candidates;
  Obs.Counter.incr ~by:kill_cells c_kill_cells;
  if n_cand > 0 && n_wit > 0 then
    Obs.Histogram.observe h_kill_density
      (float_of_int kill_cells /. float_of_int (n_cand * n_wit));
  (* search state *)
  let kill_count = Array.make n_wit 0 in
  let chosen = Array.make n_cand false in
  let sacrificed = Array.make n_ex false in
  let surviving = Array.make n_ex 0 in
  Array.iteri
    (fun i ids -> surviving.(i) <- List.length ids)
    wit_ids_of_ex;
  let nodes = ref 0 in
  let pruned = ref 0 in
  let search_depth = ref 0 in
  let max_depth = ref 0 in
  let best : (int * int list * int list) option ref = ref None in
  let base_penalty = ref 0 in
  (* Greedy warm start: repeatedly kill the cheapest-per-kill candidate (or
     sacrifice) to seed the branch-and-bound with a tight upper bound —
     without it, soft examples make the sacrifice branching explode. *)
  let greedy_warm_start () =
    let kc = Array.make n_wit 0 in
    let surv = Array.map (fun x -> x) surviving in
    let sac = Array.copy sacrificed in
    let cost = ref 0 in
    let choice = ref [] in
    let ok = ref true in
    let hard_pos_safe ci =
      (* choosing ci must not kill the last witness of a live hard positive *)
      List.for_all
        (fun wid ->
          let ei = witnesses.(wid).ex_idx in
          not
            (kc.(wid) = 0
            && examples.(ei).Example.label = Example.Positive
            && (not sac.(ei))
            && examples.(ei).Example.weight = None
            && surv.(ei) = 1))
        killed_by_cand.(ci)
    in
    let apply ci =
      choice := ci :: !choice;
      cost := !cost + candidates.(ci).Hypothesis_space.cost;
      List.iter
        (fun wid ->
          kc.(wid) <- kc.(wid) + 1;
          if kc.(wid) = 1 then begin
            let ei = witnesses.(wid).ex_idx in
            if examples.(ei).Example.label = Example.Positive then
              surv.(ei) <- surv.(ei) - 1
          end)
        killed_by_cand.(ci)
    in
    let pending () =
      let rec go i =
        if i >= n_ex then None
        else if
          examples.(i).Example.label = Example.Negative
          && (not sac.(i))
          && List.exists (fun wid -> kc.(wid) = 0) wit_ids_of_ex.(i)
        then Some i
        else go (i + 1)
      in
      go 0
    in
    let continue = ref true in
    while !continue && !ok do
      match pending () with
      | None -> continue := false
      | Some ei -> (
        let wid = List.find (fun w -> kc.(w) = 0) wit_ids_of_ex.(ei) in
        let usable =
          List.filter
            (fun ci -> (not (List.mem ci !choice)) && hard_pos_safe ci)
            killers_of.(wid)
        in
        (* prefer the candidate killing the most still-unkilled negatives
           per unit cost *)
        let scored =
          List.map
            (fun ci ->
              let gain =
                List.length
                  (List.filter
                     (fun w ->
                       kc.(w) = 0
                       && examples.(witnesses.(w).ex_idx).Example.label
                          = Example.Negative)
                     killed_by_cand.(ci))
              in
              (gain, candidates.(ci).Hypothesis_space.cost, ci))
            usable
        in
        match List.sort greedy_score_compare scored with
        | (_, _, ci) :: _ -> apply ci
        | [] -> (
          match examples.(ei).Example.weight with
          | Some w ->
            sac.(ei) <- true;
            cost := !cost + w
          | None -> ok := false))
    done;
    if !ok then begin
      (* pay for dead soft positives; fail if a hard positive died *)
      (try
         Array.iteri
           (fun i (e : Example.t) ->
             if
               e.Example.label = Example.Positive
               && (not sac.(i))
               && surv.(i) = 0
             then
               match e.Example.weight with
               | None -> raise Exit
               | Some w -> cost := !cost + w)
           examples;
         let sac_list =
           Array.to_list (Array.mapi (fun i s -> (i, s)) sac)
           |> List.filter_map (fun (i, s) -> if s then Some i else None)
         in
         best := Some (!cost + !base_penalty, !choice, sac_list)
       with Exit -> ())
    end
  in
  (* upfront feasibility and base penalty *)
  (try
     Array.iteri
       (fun i (e : Example.t) ->
         match e.Example.label with
         | Example.Positive ->
           if surviving.(i) = 0 then begin
             match e.Example.weight with
             | None -> raise Infeasible
             | Some w ->
               sacrificed.(i) <- true;
               base_penalty := !base_penalty + w
           end
         | Example.Negative ->
           let unkillable =
             List.exists (fun wid -> killers_of.(wid) = []) wit_ids_of_ex.(i)
           in
           if unkillable then begin
             match e.Example.weight with
             | None -> raise Infeasible
             | Some w ->
               sacrificed.(i) <- true;
               base_penalty := !base_penalty + w
           end)
       examples;
     greedy_warm_start ();
     (* DFS branch and bound. [dead_penalty] tracks the weights of soft
        positive examples whose witnesses are all killed on the current
        branch; killed witnesses never revive deeper in the branch, so it
        is a sound lower bound and makes the pruning tight. *)
     let current_cost = ref !base_penalty in
     let dead_penalty = ref 0 in
     let current_choice = ref [] in
     let rec next_pending () =
       (* first negative example, not sacrificed, with an unkilled witness *)
       let rec go i =
         if i >= n_ex then None
         else if
           examples.(i).Example.label = Example.Negative
           && (not sacrificed.(i))
           && List.exists (fun wid -> kill_count.(wid) = 0) wit_ids_of_ex.(i)
         then Some i
         else go (i + 1)
       in
       go 0
     and leaf_total () = !current_cost + !dead_penalty
     and choose ci k =
       chosen.(ci) <- true;
       current_cost := !current_cost + candidates.(ci).Hypothesis_space.cost;
       current_choice := ci :: !current_choice;
       incr search_depth;
       if !search_depth > !max_depth then max_depth := !search_depth;
       let hard_pos_dead = ref false in
       List.iter
         (fun wid ->
           kill_count.(wid) <- kill_count.(wid) + 1;
           if kill_count.(wid) = 1 then begin
             let ei = witnesses.(wid).ex_idx in
             if examples.(ei).Example.label = Example.Positive then begin
               surviving.(ei) <- surviving.(ei) - 1;
               if surviving.(ei) = 0 && not sacrificed.(ei) then begin
                 match examples.(ei).Example.weight with
                 | None -> hard_pos_dead := true
                 | Some w -> dead_penalty := !dead_penalty + w
               end
             end
           end)
         killed_by_cand.(ci);
       if not !hard_pos_dead then k ();
       List.iter
         (fun wid ->
           kill_count.(wid) <- kill_count.(wid) - 1;
           if kill_count.(wid) = 0 then begin
             let ei = witnesses.(wid).ex_idx in
             if examples.(ei).Example.label = Example.Positive then begin
               surviving.(ei) <- surviving.(ei) + 1;
               if surviving.(ei) = 1 && not sacrificed.(ei) then
                 match examples.(ei).Example.weight with
                 | None -> ()
                 | Some w -> dead_penalty := !dead_penalty - w
             end
           end)
         killed_by_cand.(ci);
       decr search_depth;
       current_choice := List.tl !current_choice;
       current_cost := !current_cost - candidates.(ci).Hypothesis_space.cost;
       chosen.(ci) <- false
     and dfs () =
       incr nodes;
       Obs.Counter.incr c_search_nodes;
       (match !best with
       | _ when !nodes > max_nodes -> ()  (* anytime cutoff: keep best so far *)
       | Some (bcost, _, _) when !current_cost + !dead_penalty >= bcost ->
         incr pruned;
         Obs.Counter.incr c_nodes_pruned
       | _ -> (
         match next_pending () with
         | None ->
           let total = leaf_total () in
           (match !best with
           | Some (bcost, _, _) when total >= bcost -> ()
           | _ ->
             let sac =
               Array.to_list
                 (Array.mapi (fun i s -> if s then Some i else None) sacrificed)
               |> List.filter_map Fun.id
             in
             let pos_dead =
               Array.to_list
                 (Array.mapi
                    (fun i (e : Example.t) ->
                      if
                        e.Example.label = Example.Positive
                        && (not sacrificed.(i))
                        && surviving.(i) = 0
                      then Some i
                      else None)
                    examples)
               |> List.filter_map Fun.id
             in
             if total < max_int / 4 then
               best := Some (total, !current_choice, sac @ pos_dead))
         | Some ei ->
           (* pick its first unkilled witness *)
           let wid =
             List.find (fun wid -> kill_count.(wid) = 0) wit_ids_of_ex.(ei)
           in
           (* branch on each killer, cheapest first *)
           let killers =
             List.sort
               (fun a b ->
                 Int.compare candidates.(a).Hypothesis_space.cost
                   candidates.(b).Hypothesis_space.cost)
               (List.filter (fun ci -> not chosen.(ci)) killers_of.(wid))
           in
           List.iter (fun ci -> choose ci dfs) killers;
           (* branch: sacrifice the example *)
           (match examples.(ei).Example.weight with
           | Some w ->
             sacrificed.(ei) <- true;
             current_cost := !current_cost + w;
             dfs ();
             current_cost := !current_cost - w;
             sacrificed.(ei) <- false
           | None -> ())))
     in
     Obs.span "ilp.search" dfs
   with Infeasible -> ());
  Obs.set_attr "witnesses" (string_of_int n_wit);
  Obs.set_attr "truncated" (string_of_int n_truncated);
  Obs.set_attr "nodes" (string_of_int !nodes);
  Obs.set_attr "candidates" (string_of_int n_cand);
  Obs.set_attr "pruned" (string_of_int !pruned);
  Obs.set_attr "kill_cells" (string_of_int kill_cells);
  Obs.set_attr "max_depth" (string_of_int !max_depth);
  match !best with
  | None -> None
  | Some (total, choice, sac) ->
    let hypothesis = List.map (fun ci -> candidates.(ci)) (List.rev choice) in
    let cost = Task.hypothesis_cost hypothesis in
    Some
      {
        hypothesis;
        cost;
        penalty = total - cost;
        sacrificed = List.map (fun i -> examples.(i)) sac;
        stats =
          {
            witnesses = n_wit;
            truncated = n_truncated;
            nodes = !nodes;
            duration = Obs.now () -. t0;
            candidates = n_cand;
            pruned = !pruned;
            kill_cells;
            max_depth = !max_depth;
          };
      }

(* ---- General path ------------------------------------------------------ *)

(** Best-first search over hypothesis subsets in cost order; sound for any
    hypothesis space but exponential. Soft example weights are ignored
    (all examples are treated as hard). *)
let learn_general ?(max_subsets = 100_000) (t : Task.t) : outcome option =
  Obs.span "ilp.learn" @@ fun () ->
  let t0 = Obs.now () in
  let candidates = Array.of_list t.Task.space in
  let n = Array.length candidates in
  (* priority queue of (cost, next_index, chosen_rev) *)
  let module Pq = struct
    module M = Map.Make (Int)

    let create () = ref M.empty

    let push q cost v =
      q := M.update cost (fun l -> Some (v :: Option.value ~default:[] l)) !q

    let pop q =
      match M.min_binding_opt !q with
      | None -> None
      | Some (cost, vs) -> (
        match vs with
        | [] ->
          q := M.remove cost !q;
          None
        | v :: rest ->
          if rest = [] then q := M.remove cost !q
          else q := M.add cost rest !q;
          Some (cost, v))
  end in
  let q = Pq.create () in
  Pq.push q 0 (0, []);
  Obs.Counter.incr ~by:n c_candidates;
  let explored = ref 0 in
  let max_depth = ref 0 in
  let rec loop () =
    if !explored >= max_subsets then None
    else
      match Pq.pop q with
      | None -> None
      | Some (cost, (next, chosen_rev)) ->
        incr explored;
        Obs.Counter.incr c_candidate_evals;
        let depth = List.length chosen_rev in
        if depth > !max_depth then max_depth := depth;
        let hypothesis = List.rev_map (fun ci -> candidates.(ci)) chosen_rev in
        if
          Obs.fine_span "ilp.candidate_eval" (fun () ->
              Task.is_solution t hypothesis)
        then
          Some
            {
              hypothesis;
              cost;
              penalty = 0;
              sacrificed = [];
              stats =
                {
                  witnesses = 0;
                  truncated = 0;
                  nodes = !explored;
                  duration = Obs.now () -. t0;
                  candidates = n;
                  pruned = 0;
                  kill_cells = 0;
                  max_depth = !max_depth;
                };
            }
        else begin
          for ci = next to n - 1 do
            Pq.push q
              (cost + candidates.(ci).Hypothesis_space.cost)
              (ci + 1, ci :: chosen_rev)
          done;
          loop ()
        end
  in
  loop ()

(** Learn an optimal hypothesis, dispatching on the hypothesis space:
    the set-cover engine when every candidate is a constraint, the
    general subset search otherwise. *)
let learn ?pool ?max_witnesses (t : Task.t) : outcome option =
  if List.for_all Hypothesis_space.is_constraint_candidate t.Task.space then
    learn_constraints ?pool ?max_witnesses t
  else learn_general t

let pp_outcome ppf o =
  Fmt.pf ppf "learned %d rule(s), cost %d, penalty %d (%d witnesses%s, %d nodes, %.3fs)"
    (List.length o.hypothesis) o.cost o.penalty o.stats.witnesses
    (if o.stats.truncated > 0 then
       Fmt.str ", %d truncated" o.stats.truncated
     else "")
    o.stats.nodes o.stats.duration;
  List.iter
    (fun c ->
      Fmt.pf ppf "@.  [pr%d] %a" c.Hypothesis_space.prod_id
        Asg.Annotation.pp_rule c.Hypothesis_space.rule)
    o.hypothesis
