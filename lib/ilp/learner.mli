(** The inductive learner: minimal-cost hypotheses for Definition-3 tasks
    (the role ILASP plays in the paper).

    Constraint-only spaces use an exact witness/set-cover branch-and-bound
    (greedy warm start, penalty-aware bounds, anytime node cap); general
    spaces use best-first subset search with full membership checks. Soft
    example weights buy ILASP-style noise tolerance: an example may be
    left uncovered at its weight's cost. *)

type stats = {
  witnesses : int;
  nodes : int;
  duration : float;  (** seconds *)
}

type outcome = {
  hypothesis : Task.hypothesis;
  cost : int;  (** total cost of hypothesis rules *)
  penalty : int;  (** total weight of sacrificed examples *)
  sacrificed : Example.t list;
  stats : stats;
}

(** A witness: one (parse tree, answer set) pair of an example under the
    base grammar; exposed for testing and diagnostics. *)
type witness = {
  ex_idx : int;
  model : Asp.Solver.model;
  traces_by_prod : (int * int list list) list;
}

(** All witnesses of an example under the base grammar, up to
    [max_witnesses] per parse tree. Each call solves one induced ASP
    program (counted in the [ilp.hypothesis_evals] counter, visible
    through [Asp.Stats.hypothesis_evals]). *)
val witnesses_of_example :
  ?max_witnesses:int -> Asg.Gpm.t -> Example.t -> witness list

(** Does the candidate kill the witness (its constraint fires in the
    witness's model at some node of its production)? *)
val kills : Hypothesis_space.candidate -> witness -> bool

(** Exact engine for constraint-only spaces. *)
val learn_constraints :
  ?max_witnesses:int -> ?max_nodes:int -> Task.t -> outcome option

(** Best-first subset search; sound for any space, exponential. Weights
    are ignored (all examples treated as hard). *)
val learn_general : ?max_subsets:int -> Task.t -> outcome option

(** Dispatch: constraint engine when possible, general search otherwise. *)
val learn : ?max_witnesses:int -> Task.t -> outcome option

val pp_outcome : Format.formatter -> outcome -> unit
