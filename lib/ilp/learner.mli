(** The inductive learner: minimal-cost hypotheses for Definition-3 tasks
    (the role ILASP plays in the paper).

    Constraint-only spaces use an exact witness/set-cover branch-and-bound
    (greedy warm start, penalty-aware bounds, anytime node cap); general
    spaces use best-first subset search with full membership checks. Soft
    example weights buy ILASP-style noise tolerance: an example may be
    left uncovered at its weight's cost. *)

type stats = {
  witnesses : int;
  truncated : int;
      (** examples whose witness enumeration hit the [max_witnesses]
          cap (also counted in the [ilp.witnesses_truncated] counter);
          a non-zero value means the learner reasoned about a strict
          subset of the possible (tree, answer set) pairs and the
          result may change under a larger cap *)
  nodes : int;
  duration : float;  (** seconds, wall-clock *)
  candidates : int;
      (** hypothesis-space candidates considered (also counted in the
          [ilp.candidates] counter) *)
  pruned : int;
      (** branch-and-bound nodes cut by the cost bound (counter
          [ilp.nodes_pruned]); 0 on the general path *)
  kill_cells : int;
      (** set cells of the candidate × witness kill matrix (counter
          [ilp.kill_cells]; the fill ratio lands in the
          [ilp.kill_matrix.density] histogram); 0 on the general path *)
  max_depth : int;
      (** deepest refinement reached: largest chosen-candidate set held
          at once during the search *)
}

type outcome = {
  hypothesis : Task.hypothesis;
  cost : int;  (** total cost of hypothesis rules *)
  penalty : int;  (** total weight of sacrificed examples *)
  sacrificed : Example.t list;
  stats : stats;
}

(** A witness: one (parse tree, answer set) pair of an example under the
    base grammar; exposed for testing and diagnostics. *)
type witness = {
  ex_idx : int;
  model : Asp.Solver.model;
  traces_by_prod : (int * int list list) list;
}

(** All witnesses of an example under the base grammar, up to
    [max_witnesses] per parse tree. Each call solves one induced ASP
    program (counted in the [ilp.hypothesis_evals] counter, visible
    through [Asp.Stats.hypothesis_evals]). *)
val witnesses_of_example :
  ?max_witnesses:int -> Asg.Gpm.t -> Example.t -> witness list

(** Like {!witnesses_of_example}, also reporting whether the cap
    truncated the enumeration (exactly detected within a parse tree by
    over-asking the solver one model; conservatively when whole parse
    trees were left unexplored). A truncated call increments the
    [ilp.witnesses_truncated] counter. *)
val witnesses_of_example_counted :
  ?max_witnesses:int -> Asg.Gpm.t -> Example.t -> witness list * bool

(** Does the candidate kill the witness (its constraint fires in the
    witness's model at some node of its production)? *)
val kills : Hypothesis_space.candidate -> witness -> bool

(** Greedy warm-start preference over [(gain, cost, candidate index)]
    triples: higher gain-per-cost ratio first (compared exactly, by
    integer cross-multiplication), ties broken toward the higher
    candidate index. Exposed so tests can pin the order. *)
val greedy_score_compare : int * int * int -> int * int * int -> int

(** Exact engine for constraint-only spaces. Witness generation and the
    kill matrix fan out across [pool] (default: the process-wide
    {!Par.Config.pool}, sequential unless configured otherwise); the
    outcome is identical for every pool size. *)
val learn_constraints :
  ?pool:Par.t -> ?max_witnesses:int -> ?max_nodes:int -> Task.t -> outcome option

(** Best-first subset search; sound for any space, exponential. Weights
    are ignored (all examples treated as hard). Always sequential. *)
val learn_general : ?max_subsets:int -> Task.t -> outcome option

(** Dispatch: constraint engine when possible, general search otherwise. *)
val learn : ?pool:Par.t -> ?max_witnesses:int -> Task.t -> outcome option

val pp_outcome : Format.formatter -> outcome -> unit
