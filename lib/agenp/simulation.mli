(** A discrete-time coalition simulation: request streams into each
    member's closed loop, with periodic gossip through the shared policy
    repository. *)

type config = {
  ticks : int;
  requests_per_tick : int;
  gossip_every : int option;  (** gossip cadence in ticks; [None] = never *)
  gate : Coalition.gate;
}

val default_config : config

type tick_stats = {
  tick : int;
  compliance : float;
  adaptations : int;  (** cumulative across members *)
  adopted : int;  (** rules adopted at this tick's gossip *)
}

type result = {
  timeline : tick_stats list;
  coalition : Coalition.t;
}

(** [request_stream member tick index] supplies request contexts. With
    [serve_config], each member decides through a caching serving engine
    of that size — identical decisions, lower latency on recurring
    contexts. *)
val run :
  ?serve_config:Serve.Config.t ->
  config ->
  Ams.t list ->
  request_stream:(string -> int -> int -> Asp.Program.t) ->
  result

(** Run several independent scenarios across [pool] (default: the
    process-wide {!Par.Config.pool}). Each thunk builds its own config,
    members, and request stream — members are stateful and must not be
    shared between scenarios — and results are returned in input order
    regardless of scheduling. *)
val run_many :
  ?pool:Par.t ->
  ?serve_config:Serve.Config.t ->
  (unit -> config * Ams.t list * (string -> int -> int -> Asp.Program.t)) list ->
  result list

(** Mean compliance over the last [n] ticks. *)
val recent_compliance : result -> int -> float

val pp_tick : Format.formatter -> tick_stats -> unit
