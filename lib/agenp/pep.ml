(** The Policy Enforcement Point: carries out PDP decisions on the managed
    resources and records what happened, producing the monitoring stream
    the PAdaP learns from. The managed resource is abstracted as an
    [enforce] closure returning whether the action succeeded / complied. *)

type record = {
  tick : int;
  context : Asp.Program.t;
  decision : Pdp.decision;
  compliant : bool;  (** monitoring verdict from the environment *)
}

type t = {
  mutable log : record list;  (** newest first *)
  mutable tick : int;
}

let create () = { log = []; tick = 0 }

(** Enforce a decision; [verdict] is the environment's compliance check
    (ground truth oracle in simulations, human/monitoring in the field). *)
let enforce (t : t) ~(context : Asp.Program.t) (decision : Pdp.decision)
    ~(verdict : bool) : record =
  Obs.span "agenp.pep.enforce" @@ fun () ->
  t.tick <- t.tick + 1;
  let r = { tick = t.tick; context; decision; compliant = verdict } in
  t.log <- r :: t.log;
  if not verdict then
    Obs.Log.info "pep recorded a non-compliant enforcement"
      ~attrs:
        [
          ("tick", string_of_int r.tick); ("chosen", r.decision.Pdp.chosen);
        ];
  r

let log t = t.log
let tick t = t.tick

let compliance_rate t =
  match t.log with
  | [] -> 1.0
  | log ->
    float_of_int (List.length (List.filter (fun r -> r.compliant) log))
    /. float_of_int (List.length log)
