(** The Policy Enforcement Point: carries out PDP decisions on the managed
    resources and records what happened, producing the monitoring stream
    the PAdaP learns from. The managed resource is abstracted as the
    [verdict] of an enforcement: whether the action succeeded / complied.

    A record stores the full request alongside the decision; the verdict
    lives inside the decision's [compliant] field (set here), so the
    record carries exactly one canonical payload. *)

type record = {
  tick : int;
  request : Request.t;
  decision : Decision.t;
      (** [compliant] is [Some verdict] for every enforced record *)
}

type t = {
  mutable log : record list;  (** newest first *)
  mutable tick : int;
}

let create () = { log = []; tick = 0 }

let c_noncompliant = Obs.Counter.make "agenp.pep.noncompliant"
let h_noncompliance = Obs.Health.make "pep.noncompliance"

(** Enforce a decision; [verdict] is the environment's compliance check
    (ground truth oracle in simulations, human/monitoring in the field).
    [gpm_version] attributes the observation to the model that made the
    decision, feeding the per-version [pep.noncompliance] health
    signal. *)
let enforce ?gpm_version (t : t) ~(request : Request.t)
    ~(decision : Decision.t) ~(verdict : bool) : record =
  Obs.span "agenp.pep.enforce" @@ fun () ->
  t.tick <- t.tick + 1;
  let decision = { decision with Serve.Decision.compliant = Some verdict } in
  let r = { tick = t.tick; request; decision } in
  t.log <- r :: t.log;
  Obs.Health.observe ?version:gpm_version h_noncompliance (not verdict);
  if not verdict then Obs.Counter.incr c_noncompliant;
  if not verdict then
    Obs.Log.info "pep recorded a non-compliant enforcement"
      ~attrs:
        [
          ("tick", string_of_int r.tick);
          ("chosen", r.decision.Serve.Decision.chosen);
        ];
  r

let compliant (r : record) =
  match r.decision.Serve.Decision.compliant with Some c -> c | None -> false

let context (r : record) = r.request.Serve.Request.context
let log t = t.log
let tick t = t.tick

let compliance_rate t =
  match t.log with
  | [] -> 1.0
  | log ->
    float_of_int (List.length (List.filter compliant log))
    /. float_of_int (List.length log)
