(** The single decision payload of the AGenP surface: {!Serve.Decision}
    re-exported. Replaces the old [Pdp.decision] shape (which is now an
    alias of this type) and the separate [compliant] field the PEP used
    to keep on its records. *)

type t = Serve.Decision.t = {
  chosen : string;
  valid_options : string list;
      (** every option the model admits, in preference order *)
  fallback_used : bool;  (** the model admitted nothing *)
  compliant : bool option;
      (** monitoring verdict, filled in by {!Pep.enforce}; [None] until
          the decision has been enforced *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
