(** The single decision payload of the AGenP surface: an alias of the
    canonical {!Serve.Decision.t}. Field accesses use the canonical
    record ([d.Serve.Decision.chosen] etc.) — the compatibility record
    equation that re-exported the fields here was removed with the
    multi-tenant serve plane. *)

type t = Serve.Decision.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
