(** A discrete-time coalition simulation: several AMSs receive request
    streams, run their closed loops, and periodically gossip through the
    shared policy repository. This productizes the experiment drivers so
    coalition studies (scaling, Byzantine members, sharing cadence) are
    one function call. *)

type config = {
  ticks : int;  (** simulation length *)
  requests_per_tick : int;  (** requests each member handles per tick *)
  gossip_every : int option;  (** gossip cadence in ticks; [None] = never *)
  gate : Coalition.gate;  (** adoption gate used at gossip rounds *)
}

let default_config =
  { ticks = 10; requests_per_tick = 4; gossip_every = Some 5; gate = `Pcp }

type tick_stats = {
  tick : int;
  compliance : float;  (** mean compliance over this tick's requests *)
  adaptations : int;  (** cumulative adaptations across members *)
  adopted : int;  (** rules adopted at this tick's gossip (0 otherwise) *)
}

type result = {
  timeline : tick_stats list;
  coalition : Coalition.t;
}

(** Run the simulation. [request_stream member_name tick index] supplies
    each request context — deterministic streams give reproducible runs.
    With [serve_config], the coalition shares one {!Serve.Cluster} of
    that shard configuration, one tenant shard per member (keyed by
    member name) — decisions are identical either way (the cluster only
    changes latency), and one member's adaptation invalidates only its
    own shard. *)
let run ?(serve_config : Serve.Config.t option) (config : config)
    (members : Ams.t list)
    ~(request_stream : string -> int -> int -> Asp.Program.t) : result =
  (match serve_config with
  | Some sc when members <> [] ->
    let cluster =
      Serve.Cluster.create ~config:sc
        ~tenants:(List.map (fun m -> (Ams.name m, Ams.gpm m)) members)
        ()
    in
    List.iter
      (fun m -> Ams.attach_engine m (Serve.Tenant (cluster, Ams.name m)))
      members
  | Some _ | None -> ());
  let coalition = Coalition.create () in
  List.iter (Coalition.add_member coalition) members;
  let timeline = ref [] in
  for tick = 1 to config.ticks do
    let compliant = ref 0 and total = ref 0 in
    List.iter
      (fun ams ->
        for i = 0 to config.requests_per_tick - 1 do
          let context = request_stream (Ams.name ams) tick i in
          let record = Ams.handle_request ams context in
          incr total;
          if Pep.compliant record then incr compliant
        done)
      members;
    let adopted =
      match config.gossip_every with
      | Some k when tick mod k = 0 ->
        Coalition.gossip_round ~gate:config.gate coalition
      | Some _ | None -> 0
    in
    let adaptations =
      List.fold_left (fun acc m -> acc + Ams.relearn_count m) 0 members
    in
    timeline :=
      {
        tick;
        compliance =
          (if !total = 0 then 1.0
           else float_of_int !compliant /. float_of_int !total);
        adaptations;
        adopted;
      }
      :: !timeline
  done;
  { timeline = List.rev !timeline; coalition }

(** Run several independent scenarios, one per pool slot. Each thunk
    builds its whole scenario (members are stateful, so they must be
    constructed inside the worker that runs them) and the results come
    back in input order — a pool of size 1 degenerates to [List.map]. *)
let run_many ?pool ?serve_config
    (scenarios :
      (unit -> config * Ams.t list * (string -> int -> int -> Asp.Program.t))
      list) : result list =
  let pool = match pool with Some p -> p | None -> Par.Config.pool () in
  Par.map_list pool
    (fun setup ->
      let config, members, request_stream = setup () in
      run ?serve_config config members ~request_stream)
    scenarios

(** Mean compliance over the last [n] ticks of a result. *)
let recent_compliance (r : result) (n : int) : float =
  let recent = List.filteri (fun i _ -> i >= List.length r.timeline - n) r.timeline in
  match recent with
  | [] -> 1.0
  | _ ->
    List.fold_left (fun acc t -> acc +. t.compliance) 0.0 recent
    /. float_of_int (List.length recent)

let pp_tick ppf t =
  Fmt.pf ppf "tick %3d  compliance %.2f  adaptations %d  adopted %d" t.tick
    t.compliance t.adaptations t.adopted
