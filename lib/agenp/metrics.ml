(** Operational metrics over the PEP's monitoring log: the numbers an
    operator dashboard would show for a running AMS. *)

type summary = {
  requests : int;
  compliance : float;
  fallback_rate : float;  (** decisions where no option was valid *)
  decision_mix : (string * int) list;  (** per chosen option *)
  recent_compliance : float;  (** over the last [window] records *)
}

let summarize ?(window = 20) (pep : Pep.t) : summary =
  let log = Pep.log pep in
  let n = List.length log in
  let count p = List.length (List.filter p log) in
  let compliance =
    if n = 0 then 1.0
    else float_of_int (count Pep.compliant) /. float_of_int n
  in
  let fallback_rate =
    if n = 0 then 0.0
    else
      float_of_int
        (count (fun r -> r.Pep.decision.Serve.Decision.fallback_used))
      /. float_of_int n
  in
  let mix = Hashtbl.create 8 in
  List.iter
    (fun (r : Pep.record) ->
      let k = r.Pep.decision.Serve.Decision.chosen in
      Hashtbl.replace mix k (1 + Option.value ~default:0 (Hashtbl.find_opt mix k)))
    log;
  let decision_mix =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) mix []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let recent = List.filteri (fun i _ -> i < window) log in
  let recent_compliance =
    match recent with
    | [] -> 1.0
    | _ ->
      float_of_int (List.length (List.filter Pep.compliant recent))
      /. float_of_int (List.length recent)
  in
  { requests = n; compliance; fallback_rate; decision_mix; recent_compliance }

let pp ppf s =
  Fmt.pf ppf
    "requests %d | compliance %.2f (recent %.2f) | fallback %.2f | mix %a"
    s.requests s.compliance s.recent_compliance s.fallback_rate
    Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s:%d" k v))
    s.decision_mix
