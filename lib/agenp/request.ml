(** A decision request — {!Serve.Request} re-exported so AGenP call
    sites build the serving layer's canonical request shape. *)

type t = Serve.Request.t = {
  context : Asp.Program.t;
  options : string list;
  priority : int;
  deadline : float option;
}

let make = Serve.Request.make
