(** A decision request — an alias of the serving layer's canonical
    {!Serve.Request.t}; AGenP call sites build requests with
    {!Serve.Request.make} through this module. *)

type t = Serve.Request.t

let make = Serve.Request.make
