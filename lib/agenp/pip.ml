(** The Policy Information Point: acquires external conditions that
    influence local policy generation (Section III-A3). Sources are
    pluggable closures so simulations can model satellites, road-side
    units, partner feeds, etc. *)

type source = { name : string; poll : unit -> Asp.Program.t }

type t = { mutable sources : source list }

let create () = { sources = [] }

let register t name poll = t.sources <- t.sources @ [ { name; poll } ]

(** Poll every source and merge the external facts. *)
let poll_all (t : t) : Asp.Program.t =
  Obs.span "agenp.pip.poll"
    ~attrs:[ ("sources", string_of_int (List.length t.sources)) ]
  @@ fun () ->
  Obs.Log.debug "pip polling external sources"
    ~attrs:[ ("sources", string_of_int (List.length t.sources)) ];
  Asp.Program.concat
    (List.map
       (fun s ->
         Obs.fine_span "agenp.pip.source" ~attrs:[ ("name", s.name) ] s.poll)
       t.sources)

let source_names t = List.map (fun s -> s.name) t.sources
