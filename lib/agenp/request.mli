(** A decision request: an alias of the canonical {!Serve.Request.t}.
    Field accesses use the canonical record
    ([r.Serve.Request.context] etc.); requests carry a tenant id for
    routing through a {!Serve.Cluster}. *)

type t = Serve.Request.t

val make :
  ?priority:int ->
  ?deadline:float ->
  ?tenant:string ->
  context:Asp.Program.t ->
  options:string list ->
  unit ->
  t
