(** A decision request: {!Serve.Request} re-exported. *)

type t = Serve.Request.t = {
  context : Asp.Program.t;  (** the facts/rules the decision is made in *)
  options : string list;
      (** candidate decisions in preference order; last is the fail-safe *)
  priority : int;  (** batch scheduling priority (higher first) *)
  deadline : float option;  (** latency budget in seconds, reporting only *)
}

val make :
  ?priority:int ->
  ?deadline:float ->
  context:Asp.Program.t ->
  options:string list ->
  unit ->
  t
