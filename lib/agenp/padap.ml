(** The Policy Adaptation Point of Figure 2: monitors the effects of
    decisions, accumulates evidence, and relearns the generative policy
    model (via the ASG learner) when the system stops meeting its goals —
    a violation-rate trigger — or when the context shifts. *)

type config = {
  space : Ilp.Hypothesis_space.t;
  relearn_threshold : float;
      (** violation rate over the window that triggers relearning *)
  window : int;  (** number of recent observations considered *)
  memory : int;  (** maximum retained examples (sliding window) *)
  example_weight : int option;
      (** weight given to observation examples; [Some w] tolerates noise *)
  pool : Par.t option;
      (** domain pool for the learner's fan-outs; [None] uses the
          process-wide {!Par.Config.pool} *)
}

let default_config space =
  {
    space;
    relearn_threshold = 0.2;
    window = 20;
    memory = 400;
    example_weight = Some 1;
    pool = None;
  }

type t = {
  config : config;
  gpm0 : Asg.Gpm.t;  (** the PReP-refined initial model *)
  mutable hypothesis : Ilp.Task.hypothesis;
  mutable examples : Ilp.Example.t list;  (** newest first *)
  mutable recent_violations : bool list;  (** newest first, window-capped *)
  mutable relearn_count : int;
  mutable context_changed : bool;
      (** external signal: the operating context has shifted *)
  mutable current : Asg.Gpm.t;
      (** [apply_hypothesis gpm0 hypothesis], cached so the served model
          (and its {!Asg.Gpm.version}) is stable between adaptations —
          recomputing per request would stamp a fresh version each time
          and defeat the serving layer's decision memo *)
}

let create config gpm0 =
  {
    config;
    gpm0;
    hypothesis = [];
    examples = [];
    recent_violations = [];
    relearn_count = 0;
    context_changed = false;
    current = Ilp.Task.apply_hypothesis gpm0 [];
  }

(** The current learned GPM. *)
let gpm (t : t) : Asg.Gpm.t = t.current

let refresh (t : t) =
  t.current <- Ilp.Task.apply_hypothesis t.gpm0 t.hypothesis

let examples t = t.examples
let relearn_count t = t.relearn_count

let add_example (t : t) (e : Ilp.Example.t) =
  t.examples <- e :: t.examples;
  if List.length t.examples > t.config.memory then
    t.examples <- List.filteri (fun i _ -> i < t.config.memory) t.examples

(** Record whether the last decision violated the environment's ground
    truth (as observed by monitoring). *)
let record_violation (t : t) (violated : bool) =
  t.recent_violations <- violated :: t.recent_violations;
  if List.length t.recent_violations > t.config.window then
    t.recent_violations <-
      List.filteri (fun i _ -> i < t.config.window) t.recent_violations

let violation_rate (t : t) =
  match t.recent_violations with
  | [] -> 0.0
  | vs ->
    float_of_int (List.length (List.filter Fun.id vs))
    /. float_of_int (List.length vs)

let c_relearns = Obs.Counter.make "agenp.padap.relearns"

(* fraction of the retained evidence the model covers — the accuracy
   the relearn lifecycle event reports before/after an adaptation *)
let evidence_accuracy (gpm : Asg.Gpm.t) (examples : Ilp.Example.t list) :
    float =
  match examples with
  | [] -> 1.0
  | es ->
    float_of_int (List.length (List.filter (Ilp.Task.covers gpm) es))
    /. float_of_int (List.length es)

(** Unconditional relearning from the accumulated evidence. Keeps the old
    hypothesis when the task has become unsolvable. [reason] labels the
    lifecycle event this emits into the policy-health plane ("manual"
    when called directly; [maybe_adapt] passes its trigger). *)
let relearn ?(reason = "manual") (t : t) : [ `Updated | `Unchanged | `Failed ]
    =
  Obs.span "agenp.padap.relearn" ~attrs:[ ("reason", reason) ] @@ fun () ->
  Obs.Counter.incr c_relearns;
  let examples = List.rev t.examples in
  let old_size = List.length t.hypothesis in
  let old_version = Asg.Gpm.version t.current in
  let old_accuracy = evidence_accuracy t.current examples in
  let task = Ilp.Task.make ~gpm:t.gpm0 ~space:t.config.space ~examples in
  let emit status new_accuracy =
    ignore
      (Obs.Health.emit ~signal:"padap.relearn" ~kind:"relearn"
         ~gpm_version:old_version
         ~observations:(List.length examples)
         ~baseline:old_accuracy ~current:new_accuracy
         ~deviation:(new_accuracy -. old_accuracy)
         ~old_size
         ~new_size:(List.length t.hypothesis)
         ~detail:(reason ^ ":" ^ status) ()
        : Obs.Health.event)
  in
  match Ilp.Learner.learn ?pool:t.config.pool task with
  | None ->
    emit "failed" old_accuracy;
    `Failed
  | Some outcome ->
    t.relearn_count <- t.relearn_count + 1;
    let same =
      List.length outcome.Ilp.Learner.hypothesis = List.length t.hypothesis
      && List.for_all2
           (fun (a : Ilp.Hypothesis_space.candidate)
                (b : Ilp.Hypothesis_space.candidate) ->
             a.prod_id = b.prod_id
             && Asg.Annotation.equal_rule a.rule b.rule)
           outcome.Ilp.Learner.hypothesis t.hypothesis
    in
    t.hypothesis <- outcome.Ilp.Learner.hypothesis;
    refresh t;
    t.recent_violations <- [];
    emit
      (if same then "unchanged" else "updated")
      (evidence_accuracy t.current examples);
    if same then `Unchanged else `Updated

(** Signal a context shift (from the PIP or an operator): the next
    [maybe_adapt] relearns regardless of the violation rate — the paper's
    second adaptation trigger. *)
let signal_context_change (t : t) = t.context_changed <- true

(** Adapt if the monitored violation rate crosses the threshold (and
    there is enough evidence to learn from), or if a context change was
    signalled. *)
let maybe_adapt (t : t) : [ `Updated | `Unchanged | `Failed | `Not_triggered ] =
  let violation_trigger =
    List.length t.recent_violations >= t.config.window
    && violation_rate t >= t.config.relearn_threshold
  in
  if (violation_trigger || t.context_changed) && t.examples <> [] then begin
    let reason =
      if violation_trigger then "violation_rate" else "context_change"
    in
    t.context_changed <- false;
    (relearn ~reason t :> [ `Updated | `Unchanged | `Failed | `Not_triggered ])
  end
  else `Not_triggered

(** Install an externally produced hypothesis (used by coalition policy
    sharing after PCP validation). *)
let install (t : t) (h : Ilp.Task.hypothesis) =
  t.hypothesis <- h;
  refresh t

let hypothesis t = t.hypothesis
