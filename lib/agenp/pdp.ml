(** The Policy Decision Point: answers requests by consulting the policies
    the generative model admits in the current context. Options are tried
    in preference order; the first valid one is the decision. A fallback
    (the last option) applies when the model admits nothing — and the
    event is flagged so the PAdaP can react to the coverage gap.

    The decision core lives in the serving layer ({!Serve}); this module
    is the AGenP-facing wrapper that adds the [agenp.pdp.decide] span and
    fallback logging, and optionally routes through a serving target — a
    private caching engine or one tenant's shard of a cluster. *)

exception No_options = Serve.No_options

let c_fallbacks = Obs.Counter.make "agenp.pdp.fallbacks"
let h_fallbacks = Obs.Health.make "pdp.fallbacks"

let decide ?(engine : Serve.target option) (gpm : Asg.Gpm.t)
    ~(context : Asp.Program.t) ~(options : string list) : Decision.t =
  (* one trace scope per PDP decision: the pdp span, the serve engine
     (or uncached membership) beneath it, and any fallback log line all
     correlate under the same request-scoped ID *)
  Obs.Trace_context.scope @@ fun _trace_id ->
  Obs.span "agenp.pdp.decide"
    ~attrs:[ ("options", string_of_int (List.length options)) ]
  @@ fun () ->
  let d =
    match engine with
    | Some (Serve.Engine e) ->
      Serve.set_gpm e gpm;
      (Serve.decide e (Request.make ~context ~options ())).Serve.Response
        .decision
    | Some (Serve.Tenant (cluster, tenant)) -> (
      Serve.Cluster.set_gpm cluster ~tenant gpm;
      let request = Request.make ~tenant ~context ~options () in
      match Serve.Cluster.decide cluster request with
      | Serve.Cluster.Served r -> r.Serve.Response.decision
      | Serve.Cluster.Rejected _ ->
        (* backpressure never loses a decision: fall back to the
           cache-free reference path, which is outcome-identical *)
        Serve.decide_uncached gpm request)
    | None -> Serve.decide_uncached gpm (Request.make ~context ~options ())
  in
  Obs.set_attr "fallback_used"
    (string_of_bool d.Serve.Decision.fallback_used);
  Obs.Health.observe ~version:(Asg.Gpm.version gpm) h_fallbacks
    d.Serve.Decision.fallback_used;
  if d.Serve.Decision.fallback_used then begin
    Obs.Counter.incr c_fallbacks;
    Obs.Log.info "pdp fell back: model admits no requested option"
      ~attrs:
        [
          ("chosen", d.Serve.Decision.chosen);
          ("options", string_of_int (List.length options));
        ]
  end;
  d
