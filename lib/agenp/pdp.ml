(** The Policy Decision Point: answers requests by consulting the policies
    the generative model admits in the current context. Options are tried
    in preference order; the first valid one is the decision. A fallback
    (the last option) applies when the model admits nothing — and the
    event is flagged so the PAdaP can react to the coverage gap.

    The decision core lives in the serving layer ({!Serve}); this module
    is the AGenP-facing wrapper that adds the [agenp.pdp.decide] span and
    fallback logging, and optionally routes through a caching engine. *)

exception No_options = Serve.No_options

type decision = Decision.t = {
  chosen : string;
  valid_options : string list;
  fallback_used : bool;
  compliant : bool option;
}

let c_fallbacks = Obs.Counter.make "agenp.pdp.fallbacks"
let h_fallbacks = Obs.Health.make "pdp.fallbacks"

let decide ?(engine : Serve.t option) (gpm : Asg.Gpm.t)
    ~(context : Asp.Program.t) ~(options : string list) : decision =
  (* one trace scope per PDP decision: the pdp span, the serve engine
     (or uncached membership) beneath it, and any fallback log line all
     correlate under the same request-scoped ID *)
  Obs.Trace_context.scope @@ fun _trace_id ->
  Obs.span "agenp.pdp.decide"
    ~attrs:[ ("options", string_of_int (List.length options)) ]
  @@ fun () ->
  let request = Request.make ~context ~options () in
  let d =
    match engine with
    | Some e ->
      Serve.set_gpm e gpm;
      (Serve.decide e request).Serve.Response.decision
    | None -> Serve.decide_uncached gpm request
  in
  Obs.set_attr "fallback_used" (string_of_bool d.fallback_used);
  Obs.Health.observe ~version:(Asg.Gpm.version gpm) h_fallbacks
    d.fallback_used;
  if d.fallback_used then Obs.Counter.incr c_fallbacks;
  if d.fallback_used then
    Obs.Log.info "pdp fell back: model admits no requested option"
      ~attrs:
        [
          ("chosen", d.chosen);
          ("options", string_of_int (List.length options));
        ];
  d
