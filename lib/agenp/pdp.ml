(** The Policy Decision Point: answers requests by consulting the policies
    the generative model admits in the current context. Options are tried
    in preference order; the first valid one is the decision. A fallback
    (the last option) applies when the model admits nothing — and the
    event is flagged so the PAdaP can react to the coverage gap. *)

type decision = {
  chosen : string;
  valid_options : string list;
  fallback_used : bool;
}

let decide (gpm : Asg.Gpm.t) ~(context : Asp.Program.t)
    ~(options : string list) : decision =
  Obs.span "agenp.pdp.decide"
    ~attrs:[ ("options", string_of_int (List.length options)) ]
  @@ fun () ->
  let valid_options =
    List.filter
      (fun opt -> Asg.Membership.accepts_in_context gpm ~context opt)
      options
  in
  let d =
    match valid_options with
    | chosen :: _ -> { chosen; valid_options; fallback_used = false }
    | [] -> (
      match List.rev options with
      | fallback :: _ ->
        { chosen = fallback; valid_options; fallback_used = true }
      | [] -> invalid_arg "Pdp.decide: no options")
  in
  Obs.set_attr "fallback_used" (string_of_bool d.fallback_used);
  if d.fallback_used then
    Obs.Log.info "pdp fell back: model admits no requested option"
      ~attrs:
        [
          ("chosen", d.chosen);
          ("options", string_of_int (List.length options));
        ];
  d
