(** The Policy Refinement Point of Figure 2: takes the policy-space
    characterization provided by the policy-based management system (the
    CFG of the policy language, plus high-level constraints) and produces
    the ASG the AMS operates with; on demand it generates the concrete
    policies valid in the current context into the policy repository. *)

(** The PBMS-provided characterization of the policy space. *)
type pbms_spec = {
  grammar_text : string;  (** ASG source: the CFG with seed annotations *)
  global_constraints : string list;
      (** high-level ASP constraints every generated policy must respect;
          attached to every production (they travel with the grammar) *)
}

(** Refine the PBMS spec into the initial generative policy model:
    parse, drop useless productions, attach the global constraints. *)
let refine (spec : pbms_spec) : Asg.Gpm.t =
  Obs.span "agenp.prep.refine" @@ fun () ->
  let gpm = Asg.Gpm.clean (Asg.Asg_parser.parse spec.grammar_text) in
  let constraints =
    List.map Asg.Annotation.parse_rule_string spec.global_constraints
  in
  Obs.Log.debug "prep refined PBMS spec"
    ~attrs:[ ("constraints", string_of_int (List.length constraints)) ];
  List.fold_left
    (fun gpm rule -> Asg.Gpm.add_annotation gpm 0 [ rule ])
    gpm constraints

(** Generate the policies valid in [context] and store them in the
    repository. Returns the stored version. *)
let generate_policies ?(max_depth = 8) (gpm : Asg.Gpm.t)
    ~(context : Asp.Program.t) (repo : Repository.t) : int * string list =
  Obs.span "agenp.prep.generate" @@ fun () ->
  let policies = Asg.Language.sentences_in_context ~max_depth gpm ~context in
  let version = Repository.store_policies repo policies in
  Obs.set_attr "policies" (string_of_int (List.length policies));
  Obs.Log.debug "prep generated policies"
    ~attrs:
      [
        ("policies", string_of_int (List.length policies));
        ("version", string_of_int version);
      ];
  (version, policies)
