(** The single decision payload of the AGenP surface — an alias of the
    serving layer's canonical {!Serve.Decision.t}, so the PDP, PEP,
    simulation, and CLI all speak one type. The record equation that
    used to re-export the fields here (keeping pre-serve paths like
    [d.Agenp.Pdp.chosen] compiling) is gone: field accesses go through
    the canonical record, [d.Serve.Decision.chosen]. *)

type t = Serve.Decision.t

let equal = Serve.Decision.equal
let pp = Serve.Decision.pp
