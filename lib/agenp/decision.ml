(** The single decision payload of the AGenP surface — the serving
    layer's {!Serve.Decision} re-exported, so the PDP, PEP, simulation,
    and CLI all speak one type. The record equation keeps existing field
    accesses ([d.Agenp.Pdp.chosen] etc.) compiling. *)

type t = Serve.Decision.t = {
  chosen : string;
  valid_options : string list;
  fallback_used : bool;
  compliant : bool option;
      (** monitoring verdict, filled in by {!Pep.enforce}; [None] until
          the decision has been enforced *)
}

let equal = Serve.Decision.equal
let pp = Serve.Decision.pp
