(** The Policy Checking Point (Figure 2): quality assessment and
    violation detection for generated or shared policy models. *)

type violation = { example : Ilp.Example.t }

type quality = {
  completeness : float;
  relevance : float;
  minimality : bool;
  consistent : bool;
}

(** Validation examples the GPM fails to cover. Feeds each check into
    the [pcp.violations] {!Obs.Health} signal (keyed by
    {!Asg.Gpm.version}) and the [agenp.pcp.checks]/[agenp.pcp.violations]
    counters. *)
val detect_violations : Asg.Gpm.t -> Ilp.Example.t list -> violation list

val violation_rate : Asg.Gpm.t -> Ilp.Example.t list -> float

(** Section V-A metrics recast for generative models, over probe
    contexts. *)
val assess :
  Asg.Gpm.t ->
  contexts:Asp.Program.t list ->
  options:string list ->
  hypothesis:Ilp.Task.hypothesis ->
  task:Ilp.Task.t option ->
  quality

(** Adoption gate: the candidate must introduce no new violation on local
    evidence. *)
val accept_shared :
  local:Asg.Gpm.t -> candidate:Asg.Gpm.t -> Ilp.Example.t list -> bool

val pp_quality : Format.formatter -> quality -> unit
