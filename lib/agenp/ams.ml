(** The Autonomous Managed System: the composition of every point in
    Figure 2 into one closed loop. A request arrives with a local
    context; the PIP merges external facts; the PDP decides using the
    current learned GPM; the PEP enforces and monitoring compares the
    outcome with the environment; the PAdaP turns observations into
    examples and relearns when violations accumulate; the PReP
    regenerates the concrete policy set into the repository. *)

let log_src = Logs.Src.create "agenp.ams" ~doc:"AMS closed-loop events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type environment = {
  options : string list;
      (** decision strings in preference order; last is the fail-safe *)
  oracle : Asp.Program.t -> string -> bool;
      (** monitoring's ground truth: was this decision valid here? *)
  audit_rate : float;
      (** probability that monitoring audits {e all} options, not just the
          chosen one (models periodic human review) *)
}

type t = {
  name : string;
  env : environment;
  padap : Padap.t;
  pep : Pep.t;
  pip : Pip.t;
  context_repo : Context_repo.t;
  repository : Repository.t;
  rng : Random.State.t;
  mutable serve_engine : Serve.target option;
      (** when attached, the PDP routes decisions through the serving
          target — a private engine or this member's shard of a
          cluster *)
}

let create ~name ~seed ~(spec : Prep.pbms_spec) ~(space : Ilp.Hypothesis_space.t)
    ?(padap_config : Padap.config option) (env : environment) : t =
  let gpm0 = Prep.refine spec in
  let config =
    Option.value padap_config ~default:(Padap.default_config space)
  in
  {
    name;
    env;
    padap = Padap.create config gpm0;
    pep = Pep.create ();
    pip = Pip.create ();
    context_repo = Context_repo.create ();
    repository = Repository.create ();
    rng = Random.State.make [| seed |];
    serve_engine = None;
  }

let gpm t = Padap.gpm t.padap
let attach_engine t engine = t.serve_engine <- Some engine
let engine t = t.serve_engine
let base_gpm t = t.padap.Padap.gpm0
let repository t = t.repository
let pep t = t.pep
let name t = t.name
let compliance_rate t = Pep.compliance_rate t.pep
let relearn_count t = Padap.relearn_count t.padap

(** Feed one labelled observation into the PAdaP. *)
let learn_from t ~context option_ ~valid =
  let e =
    if valid then
      Ilp.Example.positive ?weight:t.padap.Padap.config.Padap.example_weight
        ~context option_
    else
      Ilp.Example.negative ?weight:t.padap.Padap.config.Padap.example_weight
        ~context option_
  in
  Padap.add_example t.padap e

(** The full request loop. Returns the enforcement record. *)
let handle_request (t : t) (local_context : Asp.Program.t) : Pep.record =
  Obs.span "agenp.ams.request" @@ fun () ->
  (* PIP: merge external conditions into the context *)
  let external_facts = Pip.poll_all t.pip in
  let context = Asp.Program.append local_context external_facts in
  Context_repo.update t.context_repo context;
  (* PDP: decide with the current learned model *)
  let request = Request.make ~context ~options:t.env.options () in
  let decision =
    Pdp.decide ?engine:t.serve_engine (gpm t) ~context
      ~options:t.env.options
  in
  (* PEP + monitoring: enforce, compare with ground truth *)
  let verdict = t.env.oracle context decision.Serve.Decision.chosen in
  let record =
    Pep.enforce ~gpm_version:(Asg.Gpm.version (gpm t)) t.pep ~request
      ~decision ~verdict
  in
  (* monitoring feedback: the chosen option's validity is observed *)
  learn_from t ~context decision.Serve.Decision.chosen ~valid:verdict;
  (* periodic audit: label every option *)
  if Random.State.float t.rng 1.0 < t.env.audit_rate then
    List.iter
      (fun opt ->
        if opt <> decision.Serve.Decision.chosen then
          learn_from t ~context opt ~valid:(t.env.oracle context opt))
      t.env.options;
  Padap.record_violation t.padap (not verdict);
  (* PAdaP: adapt when violations accumulate *)
  (match Padap.maybe_adapt t.padap with
  | `Updated ->
    Log.info (fun m ->
        m "%s: adapted policy model (%d rules, %d examples)" t.name
          (List.length (Padap.hypothesis t.padap))
          (List.length (Padap.examples t.padap)));
    ignore (Repository.store_representation t.repository (gpm t))
  | `Failed ->
    Log.warn (fun m -> m "%s: adaptation failed (task unsatisfiable)" t.name)
  | `Unchanged | `Not_triggered -> ());
  if not verdict then
    Log.debug (fun m ->
        m "%s: non-compliant decision %s at tick %d" t.name
          decision.Serve.Decision.chosen record.Pep.tick);
  record

(** PReP policy generation for the current context. *)
let generate_policies ?max_depth (t : t) : string list =
  let context = Context_repo.current t.context_repo in
  let _, policies =
    Prep.generate_policies ?max_depth (gpm t) ~context t.repository
  in
  policies

(** Force relearning now (e.g. after adopting shared knowledge). *)
let relearn t = Padap.relearn t.padap

(** Signal that the operating context has shifted; the PAdaP will relearn
    on the next request regardless of the violation rate. *)
let signal_context_change t = Padap.signal_context_change t.padap

let hypothesis t = Padap.hypothesis t.padap
let examples t = Padap.examples t.padap
let install_hypothesis t h = Padap.install t.padap h
