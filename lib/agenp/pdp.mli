(** The Policy Decision Point: the first preference-ordered option valid
    in the context; the last option as a flagged fail-safe. *)

exception No_options
(** Raised on an empty options list (alias of {!Serve.No_options}) —
    there is nothing to decide and no fail-safe to fall back to. *)

(** Decide; with [engine] the decision is served through a serving
    target (whose model is updated to [gpm] first): either a private
    {!Serve.t} engine or one tenant's shard of a {!Serve.Cluster}.
    Without a target the cache-free reference path decides. All paths
    return identical decisions — a cluster rejection (backpressure)
    falls back to the reference path rather than losing the decision.
    @raise No_options when [options] is empty. *)
val decide :
  ?engine:Serve.target ->
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  options:string list ->
  Decision.t
