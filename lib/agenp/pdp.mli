(** The Policy Decision Point: the first preference-ordered option valid
    in the context; the last option as a flagged fail-safe. *)

exception No_options
(** Raised on an empty options list (alias of {!Serve.No_options}) —
    there is nothing to decide and no fail-safe to fall back to. *)

type decision = Decision.t = {
  chosen : string;
  valid_options : string list;
  fallback_used : bool;
  compliant : bool option;
      (** [None] here; filled in by {!Pep.enforce} *)
}
(** Alias of {!Decision.t}. The bare three-field record of earlier
    versions is gone; this equation keeps field accesses compiling. *)

(** Decide; with [engine] the decision is served through the caching
    engine (whose model is updated to [gpm] first), otherwise through
    the cache-free reference path. Both paths return identical
    decisions. @raise No_options when [options] is empty. *)
val decide :
  ?engine:Serve.t ->
  Asg.Gpm.t ->
  context:Asp.Program.t ->
  options:string list ->
  decision
