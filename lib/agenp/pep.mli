(** The Policy Enforcement Point: carries out decisions and records the
    monitoring stream the PAdaP learns from. *)

type record = {
  tick : int;
  request : Request.t;  (** the request the decision answered *)
  decision : Decision.t;
      (** [compliant] is [Some verdict] for every enforced record *)
}

type t

val create : unit -> t

(** Enforce [decision] for [request]; [verdict] is the monitoring
    verdict, stored into the decision's [compliant] field. Every
    enforcement feeds the [pep.noncompliance] {!Obs.Health} signal —
    pass [gpm_version] ({!Asg.Gpm.version} of the deciding model) to
    attribute it per model version. *)
val enforce :
  ?gpm_version:int ->
  t ->
  request:Request.t ->
  decision:Decision.t ->
  verdict:bool ->
  record

(** The stored monitoring verdict ([false] only for records enforced
    non-compliant). *)
val compliant : record -> bool

val context : record -> Asp.Program.t
val log : t -> record list
val tick : t -> int
val compliance_rate : t -> float
