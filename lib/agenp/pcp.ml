(** The Policy Checking Point of Figure 2: quality assessment and
    violation detection for generated policies — whether produced locally
    by the PReP or received from other AMSs in the coalition. *)

type violation = {
  example : Ilp.Example.t;  (** the evidence the policy set contradicts *)
}

type quality = {
  completeness : float;
      (** fraction of probe contexts with at least one valid policy *)
  relevance : float;
      (** fraction of policy options valid in at least one probe context *)
  minimality : bool;
      (** no hypothesis rule is redundant w.r.t. the validation examples *)
  consistent : bool;  (** no probe context where the language is empty *)
}

let c_checks = Obs.Counter.make "agenp.pcp.checks"
let c_violations = Obs.Counter.make "agenp.pcp.violations"
let h_violations = Obs.Health.make "pcp.violations"

(** Violation detection: validation examples the GPM fails to cover
    (negative examples accepted = policies that should not be generated;
    positive examples rejected = required policies missing). Each check
    feeds the [pcp.violations] health signal, keyed by the model
    version, so a quality regression across adaptations shows up in the
    policy-health plane. *)
let detect_violations (gpm : Asg.Gpm.t) (validation : Ilp.Example.t list) :
    violation list =
  let version = Asg.Gpm.version gpm in
  List.filter_map
    (fun e ->
      let covered = Ilp.Task.covers gpm e in
      Obs.Counter.incr c_checks;
      if not covered then Obs.Counter.incr c_violations;
      Obs.Health.observe ~version h_violations (not covered);
      if covered then None else Some { example = e })
    validation

let violation_rate gpm validation =
  match validation with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (detect_violations gpm validation))
    /. float_of_int (List.length validation)

(** Quality assessment over probe contexts (Section V-A metrics, recast
    for generative policy models). *)
let assess (gpm : Asg.Gpm.t) ~(contexts : Asp.Program.t list)
    ~(options : string list) ~(hypothesis : Ilp.Task.hypothesis)
    ~(task : Ilp.Task.t option) : quality =
  let valid ctx opt = Asg.Membership.accepts_in_context gpm ~context:ctx opt in
  let n_ctx = max 1 (List.length contexts) in
  let covered =
    List.length
      (List.filter (fun ctx -> List.exists (valid ctx) options) contexts)
  in
  let completeness = float_of_int covered /. float_of_int n_ctx in
  let n_opt = max 1 (List.length options) in
  let used =
    List.length
      (List.filter
         (fun opt -> List.exists (fun ctx -> valid ctx opt) contexts)
         options)
  in
  let relevance = float_of_int used /. float_of_int n_opt in
  let minimality =
    match task with
    | None -> true
    | Some task ->
      (* every rule is necessary: dropping any breaks some example *)
      List.for_all
        (fun (c : Ilp.Hypothesis_space.candidate) ->
          let without = List.filter (fun c' -> c' != c) hypothesis in
          not (Ilp.Task.is_solution task without))
        hypothesis
  in
  { completeness; relevance; minimality; consistent = covered = n_ctx }

(** Gate for adopting a policy model shared by another AMS: the candidate
    may not introduce {e any new} violation on local evidence — every
    example it fails must already be failed by the local model. A mere
    rate comparison would let harmful rules through whenever the local
    evidence happens not to witness them. *)
let accept_shared ~(local : Asg.Gpm.t) ~(candidate : Asg.Gpm.t)
    (validation : Ilp.Example.t list) : bool =
  List.for_all
    (fun e -> Ilp.Task.covers candidate e || not (Ilp.Task.covers local e))
    validation

let pp_quality ppf q =
  Fmt.pf ppf "completeness %.2f | relevance %.2f | minimal %b | consistent %b"
    q.completeness q.relevance q.minimality q.consistent
