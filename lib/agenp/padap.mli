(** The Policy Adaptation Point (Figure 2): accumulates monitored
    evidence and relearns the generative policy model when violations
    cross a threshold or the context shifts. *)

type config = {
  space : Ilp.Hypothesis_space.t;
  relearn_threshold : float;
      (** violation rate over the window that triggers relearning *)
  window : int;  (** recent observations considered *)
  memory : int;  (** maximum retained examples (sliding window) *)
  example_weight : int option;
      (** weight of observation examples; [Some w] tolerates noise *)
  pool : Par.t option;
      (** domain pool for the learner's fan-outs; [None] uses the
          process-wide {!Par.Config.pool} *)
}

val default_config : Ilp.Hypothesis_space.t -> config

type t = {
  config : config;
  gpm0 : Asg.Gpm.t;  (** the PReP-refined initial model *)
  mutable hypothesis : Ilp.Task.hypothesis;
  mutable examples : Ilp.Example.t list;
  mutable recent_violations : bool list;
  mutable relearn_count : int;
  mutable context_changed : bool;
  mutable current : Asg.Gpm.t;
      (** cached [apply_hypothesis gpm0 hypothesis]; keeps the served
          model's version stable between adaptations *)
}

val create : config -> Asg.Gpm.t -> t

(** The current learned GPM (initial model + hypothesis). *)
val gpm : t -> Asg.Gpm.t

val examples : t -> Ilp.Example.t list
val relearn_count : t -> int
val add_example : t -> Ilp.Example.t -> unit
val record_violation : t -> bool -> unit
val violation_rate : t -> float

(** Unconditional relearning; keeps the old hypothesis on failure.
    Emits an {!Obs.Health} lifecycle event (signal ["padap.relearn"],
    kind ["relearn"]) carrying the trigger [reason] (default
    ["manual"]), examples consumed, old/new hypothesis size, and the
    accuracy delta over the retained evidence. *)
val relearn : ?reason:string -> t -> [ `Updated | `Unchanged | `Failed ]

(** Signal a context shift: the next [maybe_adapt] relearns regardless of
    the violation rate. *)
val signal_context_change : t -> unit

val maybe_adapt : t -> [ `Updated | `Unchanged | `Failed | `Not_triggered ]

(** Install an externally produced hypothesis (coalition sharing). *)
val install : t -> Ilp.Task.hypothesis -> unit

val hypothesis : t -> Ilp.Task.hypothesis
