(** The Autonomous Managed System: the composition of Figure 2's points
    into one closed request-decide-enforce-monitor-adapt loop. *)

type environment = {
  options : string list;
      (** decision strings in preference order; last is the fail-safe *)
  oracle : Asp.Program.t -> string -> bool;
      (** monitoring's ground truth: was this decision valid here? *)
  audit_rate : float;
      (** probability that monitoring audits all options, not only the
          chosen one *)
}

type t

val create :
  name:string ->
  seed:int ->
  spec:Prep.pbms_spec ->
  space:Ilp.Hypothesis_space.t ->
  ?padap_config:Padap.config ->
  environment ->
  t

val gpm : t -> Asg.Gpm.t

(** Route this member's decisions through a serving target — a private
    caching engine ([Serve.Engine e]) or this member's tenant shard of
    a shared cluster ([Serve.Tenant (cluster, name)]). The PDP keeps
    the target's model in sync with the learned GPM, so adaptations
    invalidate the right shard's decision memo automatically (and only
    that shard's). *)
val attach_engine : t -> Serve.target -> unit

val engine : t -> Serve.target option

(** The PReP-refined initial model (before any learned hypothesis). *)
val base_gpm : t -> Asg.Gpm.t

val repository : t -> Repository.t
val pep : t -> Pep.t
val name : t -> string
val compliance_rate : t -> float
val relearn_count : t -> int

(** Feed one labelled observation into the PAdaP. *)
val learn_from : t -> context:Asp.Program.t -> string -> valid:bool -> unit

(** The full request loop: PIP merge, PDP decision, PEP enforcement with
    monitoring, example accumulation, adaptation. *)
val handle_request : t -> Asp.Program.t -> Pep.record

(** PReP policy generation for the current context. *)
val generate_policies : ?max_depth:int -> t -> string list

val relearn : t -> [ `Updated | `Unchanged | `Failed ]

(** Signal a context shift; the PAdaP relearns on the next request. *)
val signal_context_change : t -> unit

val hypothesis : t -> Ilp.Task.hypothesis
val examples : t -> Ilp.Example.t list
val install_hypothesis : t -> Ilp.Task.hypothesis -> unit
