(** Predicate atoms. *)

type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let prop pred = { pred; args = [] }
let arity a = List.length a.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Term.compare_list a.args b.args

let equal a b = compare a b = 0

let hash_fold h a =
  List.fold_left Term.hash_fold
    (Term.hash_combine (Term.hash_combine h (Hashtbl.hash a.pred))
       (List.length a.args))
    a.args

let hash a = hash_fold 0x811c9dc5 a
let is_ground a = List.for_all Term.is_ground a.args

let vars a =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left (fun acc t -> List.fold_left add acc (Term.vars t)) [] a.args)

let apply s a = { a with args = List.map (Term.apply s) a.args }

(** Evaluate any arithmetic inside the atom's arguments. [None] if some
    argument fails to evaluate (e.g. non-ground or division by zero). *)
let eval a =
  let rec go acc = function
    | [] -> Some { a with args = List.rev acc }
    | t :: rest -> (
      match Term.eval t with Some t' -> go (t' :: acc) rest | None -> None)
  in
  go [] a.args

let match_atom s pattern target =
  if
    String.equal pattern.pred target.pred
    && List.length pattern.args = List.length target.args
  then
    let rec go s = function
      | [], [] -> Some s
      | p :: ps, t :: ts -> (
        match Term.match_term s p t with
        | Some s' -> go s' (ps, ts)
        | None -> None)
      | _ -> None
    in
    go s (pattern.args, target.args)
  else None

let pp ppf a =
  match a.args with
  | [] -> Fmt.string ppf a.pred
  | args -> Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:(any ", ") Term.pp) args

let to_string a = Fmt.str "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
