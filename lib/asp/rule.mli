(** ASP rules: normal rules, constraints, choice rules with cardinality
    bounds, and weak constraints (optimization).

    The paper's framework uses the normal-rule + constraint subset
    (Section II-A); choice rules support policy {e generation} and weak
    constraints support utility-based policies. *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

(** A body element: a positive/negated atom, a comparison builtin, or a
    [#count] aggregate (constraint/weak-constraint bodies only). *)
type body_elt =
  | Pos of Atom.t
  | Neg of Atom.t  (** negation as failure: [not a] *)
  | Cmp of cmp_op * Term.t * Term.t
  | Count of count

(** [#count { tuple : conditions } op bound]. *)
and count = {
  tuple : Term.t list;
  conditions : body_elt list;  (** Pos/Neg/Cmp only (no nesting) *)
  count_op : cmp_op;
  bound : Term.t;
}

(** A choice element [a : cond]: the atom is choosable whenever the
    (positive) condition holds. *)
type choice_elt = { choice_atom : Atom.t; condition : Atom.t list }

type head =
  | Head of Atom.t  (** normal rule *)
  | Falsity  (** constraint; empty head *)
  | Choice of int option * choice_elt list * int option
      (** [l { e1; ...; en } u] with optional bounds *)
  | Weak of Term.t
      (** weak constraint [:~ body. [w]] — violating it costs [w] *)

type t = { head : head; body : body_elt list }

(** {2 Construction} *)

val normal : Atom.t -> body_elt list -> t
val fact : Atom.t -> t
val constraint_ : body_elt list -> t
val weak : Term.t -> body_elt list -> t
val choice : ?lower:int -> ?upper:int -> choice_elt list -> body_elt list -> t

(** {2 Inspection} *)

val is_fact : t -> bool
val is_constraint : t -> bool
val cmp_op_to_string : cmp_op -> string

(** Evaluate a comparison on (preferably ground) terms; integers compare
    numerically, other ground terms structurally. *)
val eval_cmp : cmp_op -> Term.t -> Term.t -> bool

val body_elt_vars : body_elt -> string list
val head_vars : head -> string list
val vars : t -> string list
val positive_body_vars : t -> string list

(** Variables bound during grounding: positive body literals plus
    [V = t] equalities, closed under iteration. *)
val bound_vars : t -> string list

(** Safety: every variable of the rule is bound (choice-element
    conditions may bind the element's local variables). *)
val is_safe : t -> bool

(** {2 Substitution} *)

val apply_body_elt : Term.subst -> body_elt -> body_elt
val apply : Term.subst -> t -> t

(** {2 Comparison and printing} *)

val compare_body_elt : body_elt -> body_elt -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** Structural hash consistent with {!equal}, folding over the whole
    rule (see {!Term.hash}). *)
val hash : t -> int

val hash_fold : int -> t -> int
val pp_body_elt : Format.formatter -> body_elt -> unit
val pp_choice_elt : Format.formatter -> choice_elt -> unit
val pp_head : Format.formatter -> head -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
