(** Stable-model (answer-set) computation.

    The solver grounds the program, narrows the search space with
    well-founded propagation, then runs a DPLL-style search over the
    remaining unknown atoms. Each complete assignment is verified against
    the Gelfond–Lifschitz condition (least model of the reduct equals the
    candidate), so the search is sound and complete for normal rules,
    constraints, and choice rules with cardinality bounds.

    Propagation is {e counter-based} in the style of two-watched-literal
    schemes: every rule keeps a satisfied-literal counter and a
    falsified-literal counter, occurrence lists map each atom to the rules
    watching it, and assignments drain through a queue touching only the
    rules that mention the assigned atom — unit propagation is O(occurrences)
    per flip instead of O(rules). Head support is tracked with {e source
    pointers}: each atom points at one non-blocked rule that can still
    derive it, and only when that rule's body becomes blocked is a
    replacement searched; atoms with no remaining source are forced false
    (or conflict, if already true). *)

type model = Atom.Set.t

let c_solve_calls = Obs.Counter.make "asp.solve.calls"
let c_propagations = Obs.Counter.make "asp.solve.propagations"
let c_decisions = Obs.Counter.make "asp.solve.decisions"
let c_conflicts = Obs.Counter.make "asp.solve.conflicts"
let c_gl_checks = Obs.Counter.make "asp.solve.gl_checks"
let c_models_found = Obs.Counter.make "asp.solve.models"

let pp_model ppf m =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Atom.pp) (Atom.Set.elements m)

let model_to_string m = Fmt.str "%a" pp_model m

type value = True | False | Unknown

exception Conflict
exception Done

(* Integer-indexed view of the ground program. *)
type irule = {
  ihead : ihead;
  ipos : int array;
  ineg : int array;
}

and ihead =
  | IAtom of int
  | IFalse
  | IWeak of int  (** weight of a weak-constraint instance *)
  | IChoice of int option * int array * int option

type search_state = {
  atoms : Atom.t array;
  id_of : (Atom.t, int) Hashtbl.t;
      (** atom ids; never mutated after construction, so {!prepare} can
          share it across extensions *)
  rules_by_head : int list array;  (** rule indices that can derive atom i *)
  rule_arr : irule array;
  assignment : value array;
  count_rules : Grounder.ground_rule list;
      (** aggregate-bearing constraints/weak rules, checked on candidate
          models rather than during propagation *)
  (* -- incremental propagation state -- *)
  pos_occ : int list array;  (** rules with atom i in their positive body *)
  neg_occ : int list array;  (** rules with atom i in their negative body *)
  nbody : int array;  (** body literal count per rule (static) *)
  sat_cnt : int array;  (** body literals currently satisfied, per rule *)
  blk_cnt : int array;  (** body literals currently falsified, per rule *)
  source : int array;  (** supporting rule per atom, or -1 *)
  queue : int array;  (** assignment queue (ring of atom ids) *)
  mutable qhead : int;
  mutable qtail : int;
  (* -- preallocated Gelfond–Lifschitz check buffers -- *)
  gl_derived : bool array;
  gl_rem : int array;
  gl_neg_ok : bool array;
}

let index_program (gp : Grounder.ground_program) =
  let atoms = Array.of_list (Atom.Set.elements gp.base) in
  let id_of = Hashtbl.create (Array.length atoms * 2) in
  Array.iteri (fun i a -> Hashtbl.replace id_of a i) atoms;
  let id a = Hashtbl.find id_of a in
  let count_rules, plain_rules =
    List.partition
      (fun (r : Grounder.ground_rule) -> r.gcounts <> [])
      gp.grules
  in
  let rules =
    List.map
      (fun (r : Grounder.ground_rule) ->
        {
          ihead =
            (match r.ghead with
            | Grounder.GAtom a -> IAtom (id a)
            | Grounder.GFalse -> IFalse
            | Grounder.GWeak w -> IWeak w
            | Grounder.GChoice (l, ats, u) ->
              IChoice (l, Array.of_list (List.map id ats), u));
          ipos = Array.of_list (List.map id r.gpos);
          ineg = Array.of_list (List.map id r.gneg);
        })
      plain_rules
  in
  let rule_arr = Array.of_list rules in
  let n = Array.length atoms in
  let nr = Array.length rule_arr in
  let rules_by_head = Array.make n [] in
  let pos_occ = Array.make n [] in
  let neg_occ = Array.make n [] in
  let nbody = Array.make nr 0 in
  Array.iteri
    (fun ri r ->
      (match r.ihead with
      | IAtom h -> rules_by_head.(h) <- ri :: rules_by_head.(h)
      | IFalse | IWeak _ -> ()
      | IChoice (_, ats, _) ->
        Array.iter (fun a -> rules_by_head.(a) <- ri :: rules_by_head.(a)) ats);
      nbody.(ri) <- Array.length r.ipos + Array.length r.ineg;
      Array.iter (fun a -> pos_occ.(a) <- ri :: pos_occ.(a)) r.ipos;
      Array.iter (fun a -> neg_occ.(a) <- ri :: neg_occ.(a)) r.ineg)
    rule_arr;
  {
    atoms;
    id_of;
    rules_by_head;
    rule_arr;
    assignment = Array.make n Unknown;
    count_rules;
    pos_occ;
    neg_occ;
    nbody;
    sat_cnt = Array.make nr 0;
    blk_cnt = Array.make nr 0;
    source = Array.make n (-1);
    (* n+1 slots: each atom enqueues at most once between drains, so the
       ring can never fill and alias empty *)
    queue = Array.make (n + 1) 0;
    qhead = 0;
    qtail = 0;
    gl_derived = Array.make n false;
    gl_rem = Array.make nr 0;
    gl_neg_ok = Array.make nr false;
  }

(* -- Propagation ------------------------------------------------------- *)

(** Enqueue an assignment. Raises [Conflict] on contradiction; returns
    [true] when the atom was newly assigned. *)
let set st i v =
  match st.assignment.(i) with
  | Unknown ->
    st.assignment.(i) <- v;
    st.queue.(st.qtail) <- i;
    st.qtail <- (st.qtail + 1) mod Array.length st.queue;
    Obs.Counter.incr c_propagations;
    true
  | existing -> if existing = v then false else raise Conflict

let clear_queue st =
  st.qhead <- 0;
  st.qtail <- 0

(** Cardinality propagation for a choice rule whose body is satisfied. *)
let choice_bounds st lower ats upper =
  let n_true = ref 0 and n_unknown = ref 0 in
  Array.iter
    (fun a ->
      match st.assignment.(a) with
      | True -> incr n_true
      | Unknown -> incr n_unknown
      | False -> ())
    ats;
  (match upper with
  | Some u ->
    if !n_true > u then raise Conflict
    else if !n_true = u && !n_unknown > 0 then
      (* remaining elements must be false *)
      Array.iter
        (fun a -> if st.assignment.(a) = Unknown then ignore (set st a False))
        ats
  | None -> ());
  match lower with
  | Some l ->
    if !n_true + !n_unknown < l then raise Conflict
    else if !n_true + !n_unknown = l && !n_unknown > 0 then
      Array.iter
        (fun a -> if st.assignment.(a) = Unknown then ignore (set st a True))
        ats
  | None -> ()

(** Consequences of rule [ri]'s body having just become satisfied. *)
let on_body_sat st ri =
  match st.rule_arr.(ri).ihead with
  | IAtom h -> ignore (set st h True)
  | IFalse -> raise Conflict
  | IWeak _ -> ()
  | IChoice (l, ats, u) -> choice_bounds st l ats u

(** Unit propagation on a constraint: with no falsified literal and a
    single unknown one left, that literal must be falsified. *)
let constraint_unit st ri =
  let r = st.rule_arr.(ri) in
  match r.ihead with
  | IFalse when st.blk_cnt.(ri) = 0 && st.nbody.(ri) - st.sat_cnt.(ri) = 1 ->
    Array.iter
      (fun a -> if st.assignment.(a) = Unknown then ignore (set st a False))
      r.ipos;
    Array.iter
      (fun a -> if st.assignment.(a) = Unknown then ignore (set st a True))
      r.ineg
  | _ -> ()

(** Rule [ri]'s body has just become blocked: atoms whose source pointer
    was [ri] must seek a new non-blocked supporter; an atom with none left
    is false (conflict if already true). *)
let on_body_blocked st ri =
  let reselect a =
    if st.source.(a) = ri && st.assignment.(a) <> False then begin
      let rec seek = function
        | [] -> None
        | cand :: rest -> if st.blk_cnt.(cand) = 0 then Some cand else seek rest
      in
      match seek st.rules_by_head.(a) with
      | Some cand -> st.source.(a) <- cand
      | None ->
        st.source.(a) <- -1;
        if st.assignment.(a) = True then raise Conflict
        else ignore (set st a False)
    end
  in
  match st.rule_arr.(ri).ihead with
  | IAtom h -> reselect h
  | IChoice (_, ats, _) -> Array.iter reselect ats
  | IFalse | IWeak _ -> ()

(** Process one literal of rule [ri] becoming satisfied (pos literal made
    true / neg literal made false). *)
let literal_sat st ri =
  st.sat_cnt.(ri) <- st.sat_cnt.(ri) + 1;
  if st.blk_cnt.(ri) = 0 then
    if st.sat_cnt.(ri) = st.nbody.(ri) then on_body_sat st ri
    else constraint_unit st ri

(** Process one literal of rule [ri] becoming falsified. *)
let literal_blocked st ri =
  st.blk_cnt.(ri) <- st.blk_cnt.(ri) + 1;
  if st.blk_cnt.(ri) = 1 then on_body_blocked st ri

(** Drain the assignment queue, touching only rules that watch each newly
    assigned atom. Raises [Conflict] on contradiction. *)
let propagate st =
  while st.qhead <> st.qtail do
    let i = st.queue.(st.qhead) in
    st.qhead <- (st.qhead + 1) mod Array.length st.queue;
    let v = st.assignment.(i) in
    (match v with
    | True ->
      List.iter (fun ri -> literal_sat st ri) st.pos_occ.(i);
      List.iter (fun ri -> literal_blocked st ri) st.neg_occ.(i)
    | False ->
      List.iter (fun ri -> literal_blocked st ri) st.pos_occ.(i);
      List.iter (fun ri -> literal_sat st ri) st.neg_occ.(i)
    | Unknown -> () (* unreachable: queued atoms are assigned *));
    (* an assigned choice element may tighten its rule's bounds *)
    List.iter
      (fun ri ->
        match st.rule_arr.(ri).ihead with
        | IChoice (l, ats, u)
          when st.blk_cnt.(ri) = 0 && st.sat_cnt.(ri) = st.nbody.(ri) ->
          choice_bounds st l ats u
        | _ -> ())
      st.rules_by_head.(i)
  done

(** One-time initialization after seeding: derive counters from the current
    assignment, pick initial source pointers, and fire all immediately
    available consequences. *)
let init_propagation st =
  let nr = Array.length st.rule_arr in
  for ri = 0 to nr - 1 do
    let r = st.rule_arr.(ri) in
    let sat = ref 0 and blk = ref 0 in
    Array.iter
      (fun a ->
        match st.assignment.(a) with
        | True -> incr sat
        | False -> incr blk
        | Unknown -> ())
      r.ipos;
    Array.iter
      (fun a ->
        match st.assignment.(a) with
        | False -> incr sat
        | True -> incr blk
        | Unknown -> ())
      r.ineg;
    st.sat_cnt.(ri) <- !sat;
    st.blk_cnt.(ri) <- !blk
  done;
  (* initial source pointers; unsupported atoms are false *)
  Array.iteri
    (fun i v ->
      if v <> False then begin
        let rec seek = function
          | [] -> None
          | cand :: rest ->
            if st.blk_cnt.(cand) = 0 then Some cand else seek rest
        in
        match seek st.rules_by_head.(i) with
        | Some cand -> st.source.(i) <- cand
        | None ->
          st.source.(i) <- -1;
          if v = True then raise Conflict else ignore (set st i False)
      end)
    st.assignment;
  (* fire rules already satisfied or unit by the seeded assignment *)
  for ri = 0 to nr - 1 do
    if st.blk_cnt.(ri) = 0 then
      if st.sat_cnt.(ri) = st.nbody.(ri) then on_body_sat st ri
      else constraint_unit st ri
  done;
  propagate st

(* -- Well-founded seeding ---------------------------------------------- *)

(** Alternating-fixpoint well-founded bounds computed directly on the
    indexed rules (the logic mirrors {!Wellfounded.compute}, reusing this
    solver's occurrence lists): atoms in the lower bound are seeded true,
    atoms outside the upper bound false. The result is unchanged, the
    search space shrinks. *)
let wellfounded_seed st =
  let n = Array.length st.atoms in
  let nr = Array.length st.rule_arr in
  let lower = Array.make n false in
  let upper = Array.make n true in
  let lower' = Array.make n false in
  let upper' = Array.make n false in
  let rem_pos = Array.make nr 0 in
  let gamma ~negatives_wrt ~include_choices ~out =
    Array.fill out 0 n false;
    let work = ref [] in
    let derive a =
      if not out.(a) then begin
        out.(a) <- true;
        work := a :: !work
      end
    in
    let fire ri =
      match st.rule_arr.(ri).ihead with
      | IAtom h -> derive h
      | IChoice (_, ats, _) -> if include_choices then Array.iter derive ats
      | IFalse | IWeak _ -> ()
    in
    for ri = 0 to nr - 1 do
      let r = st.rule_arr.(ri) in
      let neg_ok = Array.for_all (fun a -> not negatives_wrt.(a)) r.ineg in
      if not neg_ok then rem_pos.(ri) <- max_int (* can never fire *)
      else begin
        rem_pos.(ri) <- Array.length r.ipos;
        if rem_pos.(ri) = 0 then fire ri
      end
    done;
    while !work <> [] do
      match !work with
      | [] -> ()
      | a :: rest ->
        work := rest;
        List.iter
          (fun ri ->
            if rem_pos.(ri) <> max_int then begin
              rem_pos.(ri) <- rem_pos.(ri) - 1;
              if rem_pos.(ri) = 0 then fire ri
            end)
          st.pos_occ.(a)
    done
  in
  let continue = ref true in
  while !continue do
    gamma ~negatives_wrt:upper ~include_choices:false ~out:lower';
    gamma ~negatives_wrt:lower' ~include_choices:true ~out:upper';
    if lower = lower' (* structural: same contents *) && upper = upper' then
      continue := false
    else begin
      Array.blit lower' 0 lower 0 n;
      Array.blit upper' 0 upper 0 n
    end
  done;
  for i = 0 to n - 1 do
    if lower.(i) then st.assignment.(i) <- True
    else if not upper.(i) then st.assignment.(i) <- False
  done

(* -- Stability check --------------------------------------------------- *)

(** Gelfond–Lifschitz check: the least model of the reduct w.r.t. the
    candidate must equal the candidate; constraints and cardinality bounds
    must hold. Runs in time linear in the program size: a worklist
    derivation with per-rule remaining-positive-literal counters, instead
    of repeated full scans. *)
let is_stable st =
  Obs.Counter.incr c_gl_checks;
  Obs.fine_span "asp.solve.gl_check" @@ fun () ->
  let in_m i = st.assignment.(i) = True in
  let n = Array.length st.atoms in
  let nr = Array.length st.rule_arr in
  let derived = st.gl_derived in
  let rem_pos = st.gl_rem in
  let neg_ok = st.gl_neg_ok in
  Array.fill derived 0 n false;
  let work = ref [] in
  let derive a =
    if not derived.(a) then begin
      derived.(a) <- true;
      work := a :: !work
    end
  in
  let fire ri =
    match st.rule_arr.(ri).ihead with
    | IAtom h -> derive h
    | IFalse | IWeak _ -> ()
    | IChoice (_, ats, _) -> Array.iter (fun a -> if in_m a then derive a) ats
  in
  for ri = 0 to nr - 1 do
    let r = st.rule_arr.(ri) in
    rem_pos.(ri) <- Array.length r.ipos;
    neg_ok.(ri) <- Array.for_all (fun a -> not (in_m a)) r.ineg;
    if neg_ok.(ri) && rem_pos.(ri) = 0 then fire ri
  done;
  while !work <> [] do
    match !work with
    | [] -> ()
    | a :: rest ->
      work := rest;
      List.iter
        (fun ri ->
          rem_pos.(ri) <- rem_pos.(ri) - 1;
          if rem_pos.(ri) = 0 && neg_ok.(ri) then fire ri)
        st.pos_occ.(a)
  done;
  let least_equals_m = ref true in
  for i = 0 to n - 1 do
    if derived.(i) <> in_m i then least_equals_m := false
  done;
  (* constraints and cardinality bounds, using the live body counters: at a
     complete assignment, sat_cnt = nbody iff the body holds in the model *)
  let bounds_ok () =
    let ok = ref true in
    for ri = 0 to nr - 1 do
      if !ok && st.sat_cnt.(ri) = st.nbody.(ri) then
        match st.rule_arr.(ri).ihead with
        | IFalse -> ok := false
        | IAtom _ | IWeak _ -> ()
        | IChoice (lower, ats, upper) ->
          let k =
            Array.fold_left (fun acc a -> if in_m a then acc + 1 else acc) 0 ats
          in
          (match lower with Some l -> if k < l then ok := false | None -> ());
          (match upper with Some u -> if k > u then ok := false | None -> ())
    done;
    !ok
  in
  !least_equals_m && bounds_ok ()

(* -- Search ------------------------------------------------------------ *)

let extract_model st =
  let m = ref Atom.Set.empty in
  Array.iteri
    (fun i v -> if v = True then m := Atom.Set.add st.atoms.(i) !m)
    st.assignment;
  !m

(** Enumerate stable models over a prebuilt search state, up to [limit].
    [wellfounded:false] disables the well-founded narrowing (exposed for
    the ablation benchmark); the result is unchanged, only slower. *)
let solve_state ?limit ?(wellfounded = true) (st : search_state) : model list =
  Obs.Counter.incr c_solve_calls;
  if wellfounded then Obs.fine_span "asp.solve.wellfounded" (fun () -> wellfounded_seed st);
  let found = ref [] in
  let count = ref 0 in
  let aggregate_constraints_ok m =
    List.for_all
      (fun (r : Grounder.ground_rule) ->
        match r.ghead with
        | Grounder.GFalse ->
          let body_sat =
            List.for_all (fun a -> Atom.Set.mem a m) r.gpos
            && List.for_all (fun a -> not (Atom.Set.mem a m)) r.gneg
            && List.for_all (fun c -> Query.count_holds m c) r.gcounts
          in
          not body_sat
        | Grounder.GAtom _ | Grounder.GWeak _ | Grounder.GChoice _ -> true)
      st.count_rules
  in
  let record () =
    if is_stable st then begin
      let m = extract_model st in
      if aggregate_constraints_ok m then begin
        found := m :: !found;
        incr count;
        Obs.Counter.incr c_models_found;
        match limit with Some l when !count >= l -> raise Done | _ -> ()
      end
    end
  in
  let snapshot () =
    ( Array.copy st.assignment,
      Array.copy st.sat_cnt,
      Array.copy st.blk_cnt,
      Array.copy st.source )
  in
  let restore (asg, sat, blk, src) =
    Array.blit asg 0 st.assignment 0 (Array.length asg);
    Array.blit sat 0 st.sat_cnt 0 (Array.length sat);
    Array.blit blk 0 st.blk_cnt 0 (Array.length blk);
    Array.blit src 0 st.source 0 (Array.length src);
    clear_queue st
  in
  (* atoms below [from_i] stay assigned within this subtree, so the scan
     for a branch atom resumes where the parent left off *)
  let rec search from_i =
    let rec find i =
      if i >= Array.length st.assignment then None
      else if st.assignment.(i) = Unknown then Some i
      else find (i + 1)
    in
    match find from_i with
    | None -> record ()
    | Some i ->
      let snap = snapshot () in
      let branch v =
        Obs.Counter.incr c_decisions;
        match
          (try
             ignore (set st i v);
             propagate st;
             `Ok
           with Conflict ->
             Obs.Counter.incr c_conflicts;
             `Conflict)
        with
        | `Ok -> search i
        | `Conflict -> ()
      in
      (* try false first: favours subset-minimal candidates *)
      branch False;
      restore snap;
      branch True;
      restore snap
  in
  (match
     (try
        init_propagation st;
        `Ok
      with Conflict ->
        Obs.Counter.incr c_conflicts;
        `Conflict)
   with
  | `Ok -> ( try search 0 with Done -> ())
  | `Conflict -> ());
  Obs.set_attr "models" (string_of_int !count);
  Obs.Log.debug "solved ground program"
    ~attrs:
      [
        ("models", string_of_int !count);
        ("atoms", string_of_int (Array.length st.assignment));
      ];
  List.rev !found

(** Enumerate stable models of a ground program, up to [limit]. *)
let solve_ground ?limit ?wellfounded (gp : Grounder.ground_program) : model list
    =
  Obs.span "asp.solve" @@ fun () ->
  solve_state ?limit ?wellfounded (index_program gp)

(** Enumerate stable models of a (non-ground) program. *)
let solve ?limit ?wellfounded (p : Program.t) : model list =
  solve_ground ?limit ?wellfounded (Grounder.ground p)

let has_answer_set (p : Program.t) : bool =
  match solve ~limit:1 p with [] -> false | _ -> true

let first_answer_set (p : Program.t) : model option =
  match solve ~limit:1 p with [] -> None | m :: _ -> Some m

(* Entry points over a pre-grounded core: callers holding a cached
   [Grounder.ground_program] (keyed by [Program.fingerprint]) skip
   grounding entirely. Results coincide with the [Program.t] variants on
   [Grounder.ground p] by construction. *)

let has_answer_set_ground (gp : Grounder.ground_program) : bool =
  match solve_ground ~limit:1 gp with [] -> false | _ -> true

let first_answer_set_ground (gp : Grounder.ground_program) : model option =
  match solve_ground ~limit:1 gp with [] -> None | m :: _ -> Some m

(* -- Delta solving over a prepared core --------------------------------- *)

(* The compiled, immutable slice of a ground program: atoms, ids, indexed
   rules, occurrence lists. Everything mutable in [search_state] is
   excluded, so one [prepared] value can back any number of concurrent
   extensions. *)
type prepared = {
  pr_atoms : Atom.t array;
  pr_id_of : (Atom.t, int) Hashtbl.t;  (* never mutated after [prepare] *)
  pr_rule_arr : irule array;
  pr_counts : Grounder.ground_rule list;
  pr_rules_by_head : int list array;
  pr_pos_occ : int list array;
  pr_neg_occ : int list array;
  pr_nbody : int array;
  pr_definite : bool;
      (* every rule has a plain atom head, no negative body, no
         aggregates: the program is definite, so its least model exists
         and equals the grounder's derived base *)
}

let prepare (gp : Grounder.ground_program) : prepared =
  let st = index_program gp in
  {
    pr_atoms = st.atoms;
    pr_id_of = st.id_of;
    pr_rule_arr = st.rule_arr;
    pr_counts = st.count_rules;
    pr_rules_by_head = st.rules_by_head;
    pr_pos_occ = st.pos_occ;
    pr_neg_occ = st.neg_occ;
    pr_nbody = st.nbody;
    pr_definite =
      st.count_rules = []
      && List.for_all
           (fun (r : Grounder.ground_rule) ->
             r.gneg = []
             &&
             match r.ghead with
             | Grounder.GAtom _ -> true
             | Grounder.GFalse | Grounder.GWeak _ | Grounder.GChoice _ ->
               false)
           gp.grules;
  }

(** A fresh search state over [pr]'s program extended with [delta] ground
    rules: the core compilation is shared untouched, only the delta rules
    are compiled (with ids above the core's), and all mutable search
    arrays are freshly allocated. Consing delta occurrences onto the
    copied occurrence slots builds new list cells over the core's
    immutable tails, so the prepared value is never written. *)
let extend (pr : prepared) (delta : Grounder.ground_rule list) : search_state =
  let n0 = Array.length pr.pr_atoms in
  let new_atoms = ref [] in
  let n_new = ref 0 in
  let local = Hashtbl.create 16 in
  let id a =
    match Hashtbl.find_opt pr.pr_id_of a with
    | Some i -> i
    | None -> (
      match Hashtbl.find_opt local a with
      | Some i -> i
      | None ->
        let i = n0 + !n_new in
        Hashtbl.add local a i;
        new_atoms := a :: !new_atoms;
        incr n_new;
        i)
  in
  (* aggregate-bearing delta rules are model-checked like the core's; their
     body atoms need no ids — an atom no plain rule can derive is never
     true in a stable model, so checking it against the extracted model
     coincides with the full-program search *)
  let count_delta, plain_delta =
    List.partition (fun (r : Grounder.ground_rule) -> r.gcounts <> []) delta
  in
  let darr =
    Array.of_list
      (List.map
         (fun (r : Grounder.ground_rule) ->
           {
             ihead =
               (match r.ghead with
               | Grounder.GAtom a -> IAtom (id a)
               | Grounder.GFalse -> IFalse
               | Grounder.GWeak w -> IWeak w
               | Grounder.GChoice (l, ats, u) ->
                 IChoice (l, Array.of_list (List.map id ats), u));
             ipos = Array.of_list (List.map id r.gpos);
             ineg = Array.of_list (List.map id r.gneg);
           })
         plain_delta)
  in
  let n = n0 + !n_new in
  let atoms =
    if !n_new = 0 then pr.pr_atoms
    else begin
      let fill = List.hd !new_atoms in
      let arr = Array.make n fill in
      Array.blit pr.pr_atoms 0 arr 0 n0;
      (* [new_atoms] lists ids in decreasing order *)
      let i = ref (n - 1) in
      List.iter
        (fun a ->
          arr.(!i) <- a;
          decr i)
        !new_atoms;
      arr
    end
  in
  let nr0 = Array.length pr.pr_rule_arr in
  let rule_arr = Array.append pr.pr_rule_arr darr in
  let nr = Array.length rule_arr in
  let rules_by_head = Array.make n [] in
  let pos_occ = Array.make n [] in
  let neg_occ = Array.make n [] in
  Array.blit pr.pr_rules_by_head 0 rules_by_head 0 n0;
  Array.blit pr.pr_pos_occ 0 pos_occ 0 n0;
  Array.blit pr.pr_neg_occ 0 neg_occ 0 n0;
  let nbody = Array.make nr 0 in
  Array.blit pr.pr_nbody 0 nbody 0 nr0;
  Array.iteri
    (fun k r ->
      let ri = nr0 + k in
      (match r.ihead with
      | IAtom h -> rules_by_head.(h) <- ri :: rules_by_head.(h)
      | IFalse | IWeak _ -> ()
      | IChoice (_, ats, _) ->
        Array.iter (fun a -> rules_by_head.(a) <- ri :: rules_by_head.(a)) ats);
      nbody.(ri) <- Array.length r.ipos + Array.length r.ineg;
      Array.iter (fun a -> pos_occ.(a) <- ri :: pos_occ.(a)) r.ipos;
      Array.iter (fun a -> neg_occ.(a) <- ri :: neg_occ.(a)) r.ineg)
    darr;
  {
    atoms;
    id_of = pr.pr_id_of;
    rules_by_head;
    rule_arr;
    assignment = Array.make n Unknown;
    count_rules = (if count_delta = [] then pr.pr_counts
                   else pr.pr_counts @ count_delta);
    pos_occ;
    neg_occ;
    nbody;
    sat_cnt = Array.make nr 0;
    blk_cnt = Array.make nr 0;
    source = Array.make n (-1);
    queue = Array.make (n + 1) 0;
    qhead = 0;
    qtail = 0;
    gl_derived = Array.make n false;
    gl_rem = Array.make nr 0;
    gl_neg_ok = Array.make nr false;
  }

(* When the prepared core is definite, the extension stays decidable in
   one pass over the delta: a definite program always has its least
   model, which equals the grounder's derived base — so a delta
   constraint with a purely positive, aggregate-free body is violated
   outright (the grounder instantiated that body from the base), while
   negation, aggregates or choice heads in the delta force the general
   search. Weak constraints never remove models. *)
let classify_definite_delta (delta : Grounder.ground_rule list) =
  let rec go unsat = function
    | [] -> if unsat then `Unsat else `Sat
    | (r : Grounder.ground_rule) :: rest ->
      if r.gneg <> [] || r.gcounts <> [] then `Unknown
      else (
        match r.ghead with
        | Grounder.GAtom _ | Grounder.GWeak _ -> go unsat rest
        | Grounder.GFalse -> go true rest
        | Grounder.GChoice _ -> `Unknown)
  in
  go false delta

(** [has_answer_set_ground] over a prepared core extended with delta
    rules: coincides with
    [has_answer_set_ground { grules = core.grules @ delta; base }] by
    construction, skipping the per-call recompilation of the core — and
    skipping search entirely on the definite fast path. *)
let has_answer_set_prepared ?wellfounded (pr : prepared)
    ~(delta : Grounder.ground_rule list) : bool =
  match if pr.pr_definite then classify_definite_delta delta else `Unknown with
  | `Sat -> true
  | `Unsat -> false
  | `Unknown -> (
    Obs.span "asp.solve" @@ fun () ->
    match solve_state ~limit:1 ?wellfounded (extend pr delta) with
    | [] -> false
    | _ -> true)

(** Atoms true in at least one answer set (brave consequences), restricted
    to a predicate when [pred] is given. *)
let brave_consequences ?pred (p : Program.t) : Atom.Set.t =
  let models = solve p in
  let all = List.fold_left Atom.Set.union Atom.Set.empty models in
  match pred with
  | None -> all
  | Some name -> Atom.Set.filter (fun a -> String.equal a.Atom.pred name) all

(** Atoms true in every answer set (cautious consequences); empty when the
    program has no answer set. *)
let cautious_consequences ?pred (p : Program.t) : Atom.Set.t =
  match solve p with
  | [] -> Atom.Set.empty
  | first :: rest ->
    let inter = List.fold_left Atom.Set.inter first rest in
    (match pred with
    | None -> inter
    | Some name -> Atom.Set.filter (fun a -> String.equal a.Atom.pred name) inter)

(* -- Optimization (weak constraints) ----------------------------------- *)

(** Cost of a model: the summed weights of the weak-constraint instances
    whose bodies it satisfies. *)
let model_cost (gp : Grounder.ground_program) (m : model) : int =
  List.fold_left
    (fun acc (r : Grounder.ground_rule) ->
      match r.ghead with
      | Grounder.GWeak w ->
        let body_sat =
          List.for_all (fun a -> Atom.Set.mem a m) r.gpos
          && List.for_all (fun a -> not (Atom.Set.mem a m)) r.gneg
          && List.for_all (fun c -> Query.count_holds m c) r.gcounts
        in
        if body_sat then acc + w else acc
      | Grounder.GAtom _ | Grounder.GFalse | Grounder.GChoice _ -> acc)
    0 gp.grules

(** Stable models ranked by weak-constraint cost, cheapest first. *)
let solve_ranked ?limit (p : Program.t) : (model * int) list =
  let gp = Grounder.ground p in
  let models = solve_ground ?limit gp in
  List.map (fun m -> (m, model_cost gp m)) models
  |> List.stable_sort (fun (_, c1) (_, c2) -> Int.compare c1 c2)

(** The optimal stable models (all tied at minimal cost) and their cost.
    [None] when the program has no stable model. *)
let solve_optimal ?limit (p : Program.t) : (model list * int) option =
  match solve_ranked ?limit p with
  | [] -> None
  | (_, best) :: _ as ranked ->
    Some (List.map fst (List.filter (fun (_, c) -> c = best) ranked), best)
