(** ASP rules: normal rules, constraints, and choice rules.

    The paper's framework (Section II-A) uses the subset of ASP consisting
    of normal rules and constraints; choice rules are additionally supported
    because policy *generation* (enumerating the valid decisions of a
    generative policy model) is naturally expressed with them. *)

type cmp_op = Eq | Neq | Lt | Le | Gt | Ge

(** A body element: a positive/negated atom, a comparison builtin, or a
    [#count] aggregate. Aggregates are admitted only in constraint and
    weak-constraint bodies (enforced by the grounder), where their
    model-level evaluation is semantically unambiguous. *)
type body_elt =
  | Pos of Atom.t
  | Neg of Atom.t  (** negation as failure: [not a] *)
  | Cmp of cmp_op * Term.t * Term.t
  | Count of count

(** [#count { tuple : conditions } op bound] — the number of distinct
    ground instantiations of [tuple] under which every condition holds. *)
and count = {
  tuple : Term.t list;
  conditions : body_elt list;  (** Pos/Neg/Cmp only (no nesting) *)
  count_op : cmp_op;
  bound : Term.t;
}

(** A choice element [a : cond] — the atom is choosable whenever the
    (positive-literal) condition holds. *)
type choice_elt = { choice_atom : Atom.t; condition : Atom.t list }

type head =
  | Head of Atom.t  (** normal rule *)
  | Falsity  (** constraint; empty head *)
  | Choice of int option * choice_elt list * int option
      (** [l { e1; ...; en } u] with optional bounds *)
  | Weak of Term.t
      (** weak constraint [:~ body. [w]] — violating it costs [w] *)

type t = { head : head; body : body_elt list }

let normal head body = { head = Head head; body }
let fact atom = { head = Head atom; body = [] }
let constraint_ body = { head = Falsity; body }
let weak weight body = { head = Weak weight; body }
let choice ?lower ?upper elts body = { head = Choice (lower, elts, upper); body }

let is_fact r = match (r.head, r.body) with Head _, [] -> true | _ -> false
let is_constraint r = match r.head with Falsity -> true | _ -> false

let cmp_op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let eval_cmp op (t1 : Term.t) (t2 : Term.t) =
  let c = Term.compare t1 t2 in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> ( match (t1, t2) with Term.Int a, Term.Int b -> a < b | _ -> c < 0)
  | Le -> ( match (t1, t2) with Term.Int a, Term.Int b -> a <= b | _ -> c <= 0)
  | Gt -> ( match (t1, t2) with Term.Int a, Term.Int b -> a > b | _ -> c > 0)
  | Ge -> ( match (t1, t2) with Term.Int a, Term.Int b -> a >= b | _ -> c >= 0)

let rec body_elt_vars = function
  | Pos a | Neg a -> Atom.vars a
  | Cmp (_, t1, t2) -> Term.vars t1 @ Term.vars t2
  | Count c ->
    List.concat_map Term.vars c.tuple
    @ List.concat_map body_elt_vars c.conditions
    @ Term.vars c.bound

let head_vars = function
  | Head a -> Atom.vars a
  | Falsity -> []
  | Weak w -> Term.vars w
  | Choice (_, elts, _) ->
    List.concat_map
      (fun e -> Atom.vars e.choice_atom @ List.concat_map Atom.vars e.condition)
      elts

let vars r =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let all = head_vars r.head @ List.concat_map body_elt_vars r.body in
  List.rev (List.fold_left add [] all)

(** Variables bound by positive body literals (including choice-element
    conditions do not bind; they are local). A rule is safe iff every
    variable appears in some positive body literal — except that choice
    element conditions may bind the element's local variables. *)
let positive_body_vars r =
  let add acc v = if List.mem v acc then acc else v :: acc in
  List.rev
    (List.fold_left
       (fun acc -> function
         | Pos a -> List.fold_left add acc (Atom.vars a)
         | Neg _ | Cmp _ | Count _ -> acc)
       [] r.body)

(** Variables bound during grounding: those of positive body literals, plus
    variables defined by an equality [V = t] (or [t = V]) whose right-hand
    side becomes ground once already-bound variables are substituted. The
    equality closure is iterated to a fixpoint. *)
let bound_vars r =
  let base = positive_body_vars r in
  let step bound =
    List.fold_left
      (fun bound elt ->
        match elt with
        | Cmp (Eq, Term.Var v, t) | Cmp (Eq, t, Term.Var v) ->
          if
            (not (List.mem v bound))
            && List.for_all (fun w -> List.mem w bound) (Term.vars t)
          then v :: bound
          else bound
        | Pos _ | Neg _ | Cmp _ | Count _ -> bound)
      bound r.body
  in
  let rec fix bound =
    let bound' = step bound in
    if List.length bound' = List.length bound then bound else fix bound'
  in
  fix base

let is_safe r =
  let bound = bound_vars r in
  let head_ok =
    match r.head with
    | Head a -> List.for_all (fun v -> List.mem v bound) (Atom.vars a)
    | Falsity -> true
    | Weak w -> List.for_all (fun v -> List.mem v bound) (Term.vars w)
    | Choice (_, elts, _) ->
      List.for_all
        (fun e ->
          let local =
            bound @ List.concat_map Atom.vars e.condition
          in
          List.for_all (fun v -> List.mem v local) (Atom.vars e.choice_atom))
        elts
  in
  let body_ok =
    List.for_all
      (function
        | Pos _ -> true
        | Neg a -> List.for_all (fun v -> List.mem v bound) (Atom.vars a)
        | Cmp (_, t1, t2) ->
          List.for_all (fun v -> List.mem v bound) (Term.vars t1 @ Term.vars t2)
        | Count c ->
          (* local variables must be bound by the count's own positive
             conditions; everything else by the outer body *)
          let local =
            List.concat_map
              (function Pos a -> Atom.vars a | _ -> [])
              c.conditions
          in
          let ok v = List.mem v bound || List.mem v local in
          List.for_all ok (List.concat_map Term.vars c.tuple)
          && List.for_all ok (Term.vars c.bound)
          && List.for_all
               (function
                 | Pos _ -> true
                 | Neg a -> List.for_all ok (Atom.vars a)
                 | Cmp (_, t1, t2) ->
                   List.for_all ok (Term.vars t1 @ Term.vars t2)
                 | Count _ -> false (* no nesting *))
               c.conditions)
      r.body
  in
  head_ok && body_ok

let rec apply_body_elt s = function
  | Pos a -> Pos (Atom.apply s a)
  | Neg a -> Neg (Atom.apply s a)
  | Cmp (op, t1, t2) -> Cmp (op, Term.apply s t1, Term.apply s t2)
  | Count c ->
    Count
      {
        tuple = List.map (Term.apply s) c.tuple;
        conditions = List.map (apply_body_elt s) c.conditions;
        count_op = c.count_op;
        bound = Term.apply s c.bound;
      }

let apply s r =
  let head =
    match r.head with
    | Head a -> Head (Atom.apply s a)
    | Falsity -> Falsity
    | Weak w -> Weak (Term.apply s w)
    | Choice (l, elts, u) ->
      Choice
        ( l,
          List.map
            (fun e ->
              {
                choice_atom = Atom.apply s e.choice_atom;
                condition = List.map (Atom.apply s) e.condition;
              })
            elts,
          u )
  in
  { head; body = List.map (apply_body_elt s) r.body }

let rec compare_body_elt e1 e2 =
  match (e1, e2) with
  | Pos a, Pos b | Neg a, Neg b -> Atom.compare a b
  | Pos _, _ -> -1
  | _, Pos _ -> 1
  | Neg _, _ -> -1
  | _, Neg _ -> 1
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c
    else
      let c = Term.compare a1 a2 in
      if c <> 0 then c else Term.compare b1 b2
  | Cmp _, _ -> -1
  | _, Cmp _ -> 1
  | Count c1, Count c2 ->
    let c = Term.compare_list c1.tuple c2.tuple in
    if c <> 0 then c
    else
      let c = List.compare compare_body_elt c1.conditions c2.conditions in
      if c <> 0 then c
      else
        let c = Stdlib.compare c1.count_op c2.count_op in
        if c <> 0 then c else Term.compare c1.bound c2.bound

let compare r1 r2 =
  let compare_choice_elt e1 e2 =
    let c = Atom.compare e1.choice_atom e2.choice_atom in
    if c <> 0 then c
    else
      List.compare Atom.compare e1.condition e2.condition
  in
  let compare_head h1 h2 =
    match (h1, h2) with
    | Head a, Head b -> Atom.compare a b
    | Head _, _ -> -1
    | _, Head _ -> 1
    | Falsity, Falsity -> 0
    | Falsity, _ -> -1
    | _, Falsity -> 1
    | Weak w1, Weak w2 -> Term.compare w1 w2
    | Weak _, _ -> -1
    | _, Weak _ -> 1
    | Choice (l1, e1, u1), Choice (l2, e2, u2) ->
      let c = Stdlib.compare l1 l2 in
      if c <> 0 then c
      else
        let c = List.compare compare_choice_elt e1 e2 in
        if c <> 0 then c else Stdlib.compare u1 u2
  in
  let c = compare_head r1.head r2.head in
  if c <> 0 then c else List.compare compare_body_elt r1.body r2.body

let equal r1 r2 = compare r1 r2 = 0

let rec hash_fold_body_elt h = function
  | Pos a -> Atom.hash_fold (Term.hash_combine h 1) a
  | Neg a -> Atom.hash_fold (Term.hash_combine h 2) a
  | Cmp (op, t1, t2) ->
    Term.hash_fold
      (Term.hash_fold (Term.hash_combine (Term.hash_combine h 3) (Hashtbl.hash op)) t1)
      t2
  | Count c ->
    let h = Term.hash_combine h 4 in
    let h = List.fold_left Term.hash_fold h c.tuple in
    let h = List.fold_left hash_fold_body_elt h c.conditions in
    Term.hash_fold (Term.hash_combine h (Hashtbl.hash c.count_op)) c.bound

let hash_fold_head h = function
  | Head a -> Atom.hash_fold (Term.hash_combine h 10) a
  | Falsity -> Term.hash_combine h 11
  | Weak w -> Term.hash_fold (Term.hash_combine h 12) w
  | Choice (l, elts, u) ->
    let h = Term.hash_combine (Term.hash_combine h 13) (Hashtbl.hash (l, u)) in
    List.fold_left
      (fun h (e : choice_elt) ->
        List.fold_left Atom.hash_fold (Atom.hash_fold h e.choice_atom) e.condition)
      h elts

let hash_fold h r =
  List.fold_left hash_fold_body_elt (hash_fold_head h r.head) r.body

let hash r = hash_fold 0x811c9dc5 r

let rec pp_body_elt ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Fmt.pf ppf "not %a" Atom.pp a
  | Cmp (op, t1, t2) ->
    Fmt.pf ppf "%a %s %a" Term.pp t1 (cmp_op_to_string op) Term.pp t2
  | Count c ->
    Fmt.pf ppf "#count { %a : %a } %s %a"
      Fmt.(list ~sep:(any ", ") Term.pp)
      c.tuple
      Fmt.(list ~sep:(any ", ") pp_body_elt)
      c.conditions
      (cmp_op_to_string c.count_op)
      Term.pp c.bound

let pp_choice_elt ppf e =
  match e.condition with
  | [] -> Atom.pp ppf e.choice_atom
  | conds ->
    Fmt.pf ppf "%a : %a" Atom.pp e.choice_atom
      Fmt.(list ~sep:(any ", ") Atom.pp)
      conds

let pp_head ppf = function
  | Head a -> Atom.pp ppf a
  | Falsity -> ()
  | Weak _ -> ()
  | Choice (l, elts, u) ->
    let pp_bound ppf = function Some n -> Fmt.pf ppf "%d " n | None -> () in
    let pp_ubound ppf = function Some n -> Fmt.pf ppf " %d" n | None -> () in
    Fmt.pf ppf "%a{ %a }%a" pp_bound l
      Fmt.(list ~sep:(any "; ") pp_choice_elt)
      elts pp_ubound u

let pp ppf r =
  match (r.head, r.body) with
  | Head a, [] -> Fmt.pf ppf "%a." Atom.pp a
  | Choice _, [] -> Fmt.pf ppf "%a." pp_head r.head
  | Falsity, body ->
    Fmt.pf ppf ":- %a." Fmt.(list ~sep:(any ", ") pp_body_elt) body
  | Weak w, body ->
    Fmt.pf ppf ":~ %a. [%a]"
      Fmt.(list ~sep:(any ", ") pp_body_elt)
      body Term.pp w
  | head, body ->
    Fmt.pf ppf "%a :- %a." pp_head head Fmt.(list ~sep:(any ", ") pp_body_elt) body

let to_string r = Fmt.str "%a" pp r
