(** Well-founded propagation by the alternating fixpoint.

    Computes a lower bound [definitely true] and an upper bound
    [possibly true] on every stable model of a ground program. For
    stratified choice-free programs the two bounds meet and describe the
    unique answer-set candidate directly; otherwise the solver branches
    only on the atoms left between the bounds. Choice rules are handled
    conservatively: they contribute to the upper bound but never force an
    atom true.

    Each application of the reduct operator runs as a worklist least-model
    computation over an integer-indexed copy of the program — linear in
    program size — rather than repeated full-program scans. *)

type bounds = { lower : Atom.Set.t; upper : Atom.Set.t }

(* Integer-indexed program view, built once per [compute] call. *)
type indexed = {
  atoms : Atom.t array;
  heads : int array;  (** derived atom per rule, or -1 (constraint/weak) *)
  choices : int array array;  (** choice-element atoms per rule ([||] if none) *)
  ipos : int array array;
  ineg : int array array;
  pos_occ : int list array;  (** rules with atom i in their positive body *)
}

let index (gp : Grounder.ground_program) : indexed =
  let atoms = Array.of_list (Atom.Set.elements gp.base) in
  let id_of = Hashtbl.create (Array.length atoms * 2) in
  Array.iteri (fun i a -> Hashtbl.replace id_of a i) atoms;
  let id a = Hashtbl.find id_of a in
  let rules = Array.of_list gp.grules in
  let nr = Array.length rules in
  let heads = Array.make nr (-1) in
  let choices = Array.make nr [||] in
  let ipos = Array.make nr [||] in
  let ineg = Array.make nr [||] in
  let pos_occ = Array.make (Array.length atoms) [] in
  Array.iteri
    (fun ri (r : Grounder.ground_rule) ->
      (match r.ghead with
      | Grounder.GAtom a -> heads.(ri) <- id a
      | Grounder.GChoice (_, ats, _) ->
        choices.(ri) <- Array.of_list (List.map id ats)
      | Grounder.GFalse | Grounder.GWeak _ -> ());
      ipos.(ri) <- Array.of_list (List.map id r.gpos);
      ineg.(ri) <- Array.of_list (List.map id r.gneg);
      Array.iter (fun a -> pos_occ.(a) <- ri :: pos_occ.(a)) ipos.(ri))
    rules;
  { atoms; heads; choices; ipos; ineg; pos_occ }

(** Least fixpoint of one application of the reduct operator, as a
    worklist derivation with remaining-positive-literal counters.
    [negatives_wrt] decides which negative literals count as satisfied (an
    atom's negation holds iff the atom is outside that set).
    [include_choices] makes choice heads derivable (upper-bound mode).
    Writes the result into [out]. *)
let gamma (ix : indexed) ~negatives_wrt ~include_choices ~out =
  let n = Array.length ix.atoms in
  let nr = Array.length ix.heads in
  Array.fill out 0 n false;
  let rem_pos = Array.make nr 0 in
  let work = ref [] in
  let derive a =
    if not out.(a) then begin
      out.(a) <- true;
      work := a :: !work
    end
  in
  let fire ri =
    if ix.heads.(ri) >= 0 then derive ix.heads.(ri)
    else if include_choices then Array.iter derive ix.choices.(ri)
  in
  for ri = 0 to nr - 1 do
    rem_pos.(ri) <- Array.length ix.ipos.(ri);
    let neg_ok = Array.for_all (fun a -> not negatives_wrt.(a)) ix.ineg.(ri) in
    if not neg_ok then rem_pos.(ri) <- max_int (* can never fire *)
    else if rem_pos.(ri) = 0 then fire ri
  done;
  while !work <> [] do
    match !work with
    | [] -> ()
    | a :: rest ->
      work := rest;
      List.iter
        (fun ri ->
          if rem_pos.(ri) <> max_int then begin
            rem_pos.(ri) <- rem_pos.(ri) - 1;
            if rem_pos.(ri) = 0 then fire ri
          end)
        ix.pos_occ.(a)
  done

(** Alternating fixpoint: returns well-founded lower/upper bounds. *)
let compute (gp : Grounder.ground_program) : bounds =
  let ix = index gp in
  let n = Array.length ix.atoms in
  let lower = Array.make n false in
  let upper = Array.make n true in
  let lower' = Array.make n false in
  let upper' = Array.make n false in
  let continue = ref true in
  while !continue do
    gamma ix ~negatives_wrt:upper ~include_choices:false ~out:lower';
    gamma ix ~negatives_wrt:lower' ~include_choices:true ~out:upper';
    if lower = lower' (* structural: same contents *) && upper = upper' then
      continue := false
    else begin
      Array.blit lower' 0 lower 0 n;
      Array.blit upper' 0 upper 0 n
    end
  done;
  let to_set flags =
    let s = ref Atom.Set.empty in
    Array.iteri (fun i v -> if v then s := Atom.Set.add ix.atoms.(i) !s) flags;
    !s
  in
  { lower = to_set lower; upper = to_set upper }

let is_total b = Atom.Set.equal b.lower b.upper
