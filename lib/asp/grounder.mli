(** Grounding: instantiating a safe program's variables with the constants
    that can matter, via the standard two-phase scheme — a possible-atom
    fixpoint computed by SCC-stratified {e semi-naive evaluation} over
    per-predicate first-argument indexes, then rule instantiation by
    selectivity-ordered indexed joins with builtin evaluation.

    {2 Negative body literals}

    A ground negative literal [not a] whose atom lies outside the
    possible-atom base is trivially true: the literal is dropped and the
    rule instance is {e kept}. Interval arguments inside a negative
    literal denote the conjunction over their expansion ([not q(1..2)]
    grounds to [not q(1), not q(2)]); a negative literal whose arguments
    fail to evaluate once ground (e.g. division by zero) makes that rule
    instance inapplicable. Earlier revisions silently dropped whole rules
    in these cases; the regression tests pin the current semantics. *)

exception Unsafe_rule of Rule.t
(** Raised on rules with variables not bound by the positive body. *)

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

val pp_ground_rule : Format.formatter -> ground_rule -> unit

(** Expand interval arguments: [p(1..3)] to [p(1)], [p(2)], [p(3)]. *)
val expand_atom : Atom.t -> Atom.t list

(** Ground a program. Negative literals over underivable atoms are
    dropped (trivially true); rules that can never fire are omitted.

    Complexity: worst-case O(|rules| * |base|{^ v}) instantiations, for
    [v] the maximum number of variables in any rule body — grounding is
    inherently exponential in rule width. In practice the first-argument
    indexes restrict each join step to candidates matching the bound
    prefix, and semi-naive delta evaluation enumerates each derivation at
    most once across the whole fixpoint instead of once per iteration.

    @raise Unsafe_rule on unsafe input.
    @raise Aggregate_in_rule when an aggregate occurs in a normal or
    choice rule body. *)
val ground : Program.t -> ground_program

(** Ground with a pre-grounded core: [ground_with ~core:(p0, gp0) p]
    returns [gp0] unchanged when [Program.equal p0 p] — the entry point a
    ground-program cache goes through, so a warm hit skips the fixpoint
    and instantiation entirely. Falls back to [ground p] on a core
    mismatch or when no core is given. The caller keys its cache by
    {!Program.fingerprint}; equality is confirmed here because
    fingerprints may collide. *)
val ground_with :
  ?core:Program.t * ground_program -> Program.t -> ground_program

(** Number of ground rules. *)
val size : ground_program -> int

(** Size of the possible-atom base. *)
val atom_count : ground_program -> int
