(** Grounding: instantiating a safe program's variables with the constants
    that can matter, via the standard two-phase scheme — a possible-atom
    fixpoint computed by SCC-stratified {e semi-naive evaluation} over
    per-predicate first-argument indexes, then rule instantiation by
    selectivity-ordered indexed joins with builtin evaluation.

    {2 Negative body literals}

    A ground negative literal [not a] whose atom lies outside the
    possible-atom base is trivially true: the literal is dropped and the
    rule instance is {e kept}. Interval arguments inside a negative
    literal denote the conjunction over their expansion ([not q(1..2)]
    grounds to [not q(1), not q(2)]); a negative literal whose arguments
    fail to evaluate once ground (e.g. division by zero) makes that rule
    instance inapplicable. Earlier revisions silently dropped whole rules
    in these cases; the regression tests pin the current semantics. *)

exception Unsafe_rule of Rule.t
(** Raised on rules with variables not bound by the positive body. *)

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

val pp_ground_rule : Format.formatter -> ground_rule -> unit

(** Expand interval arguments: [p(1..3)] to [p(1)], [p(2)], [p(3)]. *)
val expand_atom : Atom.t -> Atom.t list

(** Ground a program. Negative literals over underivable atoms are
    dropped (trivially true); rules that can never fire are omitted.

    Complexity: worst-case O(|rules| * |base|{^ v}) instantiations, for
    [v] the maximum number of variables in any rule body — grounding is
    inherently exponential in rule width. In practice the first-argument
    indexes restrict each join step to candidates matching the bound
    prefix, and semi-naive delta evaluation enumerates each derivation at
    most once across the whole fixpoint instead of once per iteration.

    @raise Unsafe_rule on unsafe input.
    @raise Aggregate_in_rule when an aggregate occurs in a normal or
    choice rule body. *)
val ground : Program.t -> ground_program

(** Ground with a pre-grounded core: [ground_with ~core:(p0, gp0) p]
    returns [gp0] unchanged when [Program.equal p0 p] — the entry point a
    ground-program cache goes through, so a warm hit skips the fixpoint
    and instantiation entirely. Falls back to [ground p] on a core
    mismatch or when no core is given. The caller keys its cache by
    {!Program.fingerprint}; equality is confirmed here because
    fingerprints may collide. *)
val ground_with :
  ?core:Program.t * ground_program -> Program.t -> ground_program

(** Number of ground rules. *)
val size : ground_program -> int

(** Size of the possible-atom base. *)
val atom_count : ground_program -> int

(** Two-stage incremental grounding: ground a context-free core program
    once with {!Incremental.freeze}, then extend it per request with
    ground context facts — only the delta is grounded. An {!overlay}
    layers a mutable atom base over the frozen core's (which is never
    written through, so one core can back many overlays), continues the
    core's semi-naive fixpoint on the added facts, and instantiates only
    the join plans that can see a new atom, each new combination exactly
    once. Existing core rules are repaired, not re-derived, when the
    grown base changes them (a dropped trivially-true negative literal
    becoming derivable, a choice head gaining elements).

    Truth maintenance is DRed at delta granularity: retracting a fact
    drops the overlay layer and re-derives from the surviving facts, so
    exactly the dependent ground rules disappear while the frozen core is
    untouched. *)
module Incremental : sig
  type core
  (** A frozen grounded program plus the state needed to delta-ground
      against it. Immutable after {!freeze}; safe to share. *)

  (** Ground [p] and freeze the result as an incremental core.
      @raise Unsafe_rule / @raise Aggregate_in_rule as {!ground}. *)
  val freeze : Program.t -> core

  (** The program the core was frozen from. *)
  val core_program : core -> Program.t

  (** The core's own ground program (no context facts). *)
  val core_ground : core -> ground_program

  type overlay
  (** A mutable set of asserted context facts over a core, with the
      incrementally-maintained ground delta. Not thread-safe; use one
      overlay per concurrent request. *)

  val overlay : core -> overlay

  (** Assert ground context facts (duplicates are ignored; intervals
      expand; unevaluable facts are inapplicable and dropped) and extend
      the possible-atom fixpoint by their consequences.
      @raise Invalid_argument on a non-ground fact. *)
  val add_facts : overlay -> Atom.t list -> unit

  (** Retract asserted facts, dropping exactly the dependent ground
      rules. Returns how many ground rules were dropped; facts not
      currently asserted are ignored. *)
  val retract_facts : overlay -> Atom.t list -> int

  (** The currently asserted facts, in assertion order. *)
  val facts : overlay -> Atom.t list

  (** The ground program for core + asserted facts: the core's ground
      rules (repaired where the grown base changed them) followed by the
      delta rules. Equal, as a set of rules, to fully regrounding the
      core program extended with the facts. Cached until the fact set
      changes. *)
  val ground : overlay -> ground_program

  (** The delta rules alone — the overlay's own ground rules, without
      rebuilding the combined program. [Some rules] when every frozen
      core rule is still valid unmodified, so a solver holding
      precompiled state for {!core_ground} can be extended with exactly
      these rules ({!Solver.has_answer_set_prepared}); [None] when an
      asserted fact touched a latent negative literal or choice head of
      the core (the core needs repair) — fall back to {!ground}. *)
  val delta : overlay -> ground_rule list option

  (** One-shot [delta] for a batch of facts over [core], skipping the
      overlay machinery entirely when the core is inert (asserted facts
      can have no consequences — nothing joins on them, nothing latent
      or dormant depends on them), in which case the delta is just the
      normalized facts as ground fact rules. Equivalent to [delta] on a
      fresh overlay with [facts] asserted. *)
  val delta_with : core -> facts:Atom.t list -> ground_rule list option

  (** One-shot convenience: [ground_with core ~facts] is
      [ground (add_facts (overlay core) facts)], and just the core's
      ground program when [facts] is empty. *)
  val ground_with : core -> facts:Atom.t list -> ground_program
end
