(** Predicate dependency analysis: dependency graph, strongly connected
    components (Tarjan), and stratification.

    A program is stratified when no predicate depends on itself through
    negation; stratified programs (without choice rules) have a unique
    answer set computable bottom-up, which the solver exploits. *)

type pred = string * int  (** name, arity *)

type edge_kind = Positive | Negative

module PredMap = Map.Make (struct
  type t = pred

  let compare = Stdlib.compare
end)

type graph = { edges : (pred * edge_kind) list PredMap.t; preds : pred list }

let head_atoms (r : Rule.t) =
  match r.head with
  | Rule.Head a -> [ a ]
  | Rule.Falsity | Rule.Weak _ -> []
  | Rule.Choice (_, elts, _) ->
    List.map (fun (e : Rule.choice_elt) -> e.choice_atom) elts

let pred_of (a : Atom.t) : pred = (a.pred, Atom.arity a)

(** Build the predicate dependency graph of a program. There is an edge
    h -> b (positive or negative) whenever some rule has head predicate h
    and body literal with predicate b; a choice element's atom also
    depends positively on the element's condition predicates. Constraint
    bodies add no edges. *)
let build (p : Program.t) : graph =
  let add_edge map from_ to_ kind =
    let existing = Option.value ~default:[] (PredMap.find_opt from_ map) in
    if List.mem (to_, kind) existing then map
    else PredMap.add from_ ((to_, kind) :: existing) map
  in
  let all_preds = Program.predicates p in
  let add_choice_condition_edges map (r : Rule.t) =
    match r.head with
    | Rule.Choice (_, elts, _) ->
      List.fold_left
        (fun map (e : Rule.choice_elt) ->
          let h = pred_of e.choice_atom in
          List.fold_left
            (fun map c -> add_edge map h (pred_of c) Positive)
            map e.condition)
        map elts
    | _ -> map
  in
  let edges =
    List.fold_left
      (fun map (r : Rule.t) ->
        let map = add_choice_condition_edges map r in
        let heads = List.map pred_of (head_atoms r) in
        List.fold_left
          (fun map h ->
            let add_elt map elt =
              match elt with
              | Rule.Pos a -> add_edge map h (pred_of a) Positive
              | Rule.Neg a -> add_edge map h (pred_of a) Negative
              | Rule.Cmp _ -> map
              | Rule.Count c ->
                (* aggregate dependencies are treated as negative: they
                   are non-monotone *)
                List.fold_left
                  (fun map elt ->
                    match elt with
                    | Rule.Pos a | Rule.Neg a ->
                      add_edge map h (pred_of a) Negative
                    | Rule.Cmp _ | Rule.Count _ -> map)
                  map c.Rule.conditions
            in
            List.fold_left add_elt map r.body)
          map heads)
      PredMap.empty p.rules
  in
  { edges; preds = all_preds }

let successors g p = Option.value ~default:[] (PredMap.find_opt p g.edges)

(** Tarjan's strongly connected components; returned in reverse
    topological order (callees before callers). *)
let sccs (g : graph) : pred list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) g.preds;
  List.rev !components

(** A program is stratified iff no negative edge connects two predicates in
    the same SCC. Programs with choice rules are treated as unstratified
    (they may have several answer sets regardless). *)
let is_stratified (p : Program.t) =
  let has_choice =
    List.exists
      (fun (r : Rule.t) ->
        match r.head with Rule.Choice _ -> true | _ -> false)
      p.rules
  in
  if has_choice then false
  else begin
    let g = build p in
    let components = sccs g in
    let comp_of = Hashtbl.create 16 in
    List.iteri
      (fun i comp -> List.iter (fun pr -> Hashtbl.replace comp_of pr i) comp)
      components;
    List.for_all
      (fun pr ->
        List.for_all
          (fun (succ, kind) ->
            match kind with
            | Positive -> true
            | Negative ->
              Hashtbl.find_opt comp_of pr <> Hashtbl.find_opt comp_of succ
              || not (Hashtbl.mem comp_of succ))
          (successors g pr))
      g.preds
  end

(** Stratum number per predicate (only meaningful for stratified programs):
    the maximum number of negative edges on any path out of the predicate. *)
let strata (p : Program.t) : int PredMap.t =
  let g = build p in
  let components = sccs g in
  (* components arrive callees-first, so one pass suffices *)
  let levels = Hashtbl.create 16 in
  List.iter
    (fun comp ->
      let level =
        List.fold_left
          (fun acc pr ->
            List.fold_left
              (fun acc (succ, kind) ->
                if List.mem succ comp then acc
                else
                  let base =
                    Option.value ~default:0 (Hashtbl.find_opt levels succ)
                  in
                  let inc = match kind with Positive -> 0 | Negative -> 1 in
                  max acc (base + inc))
              acc (successors g pr))
          0 comp
      in
      List.iter (fun pr -> Hashtbl.replace levels pr level) comp)
    components;
  Hashtbl.fold PredMap.add levels PredMap.empty
