(** First-order terms for the ASP substrate.

    A term is a variable, an integer, or a function application. Constants
    are nullary function applications. Arithmetic expressions and intervals
    are kept symbolic until grounding evaluates them. *)

type t =
  | Var of string
  | Int of int
  | Fun of string * t list
  | Binop of binop * t * t
  | Interval of t * t  (** [l..u], expanded during grounding *)

and binop = Add | Sub | Mul | Div | Mod

let var name = Var name
let int n = Int n
let const name = Fun (name, [])
let func name args = Fun (name, args)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "\\"

let rec compare t1 t2 =
  match (t1, t2) with
  | Var a, Var b -> String.compare a b
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Int a, Int b -> Int.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Fun (f, fs), Fun (g, gs) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_list fs gs
  | Fun _, _ -> -1
  | _, Fun _ -> 1
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c
    else
      let c = compare a1 a2 in
      if c <> 0 then c else compare b1 b2
  | Binop _, _ -> -1
  | _, Binop _ -> 1
  | Interval (a1, b1), Interval (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2

and compare_list l1 l2 : int =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs ys

let equal t1 t2 = compare t1 t2 = 0

(* FNV-1a-style mixing: unlike [Hashtbl.hash], which stops after a fixed
   number of meaningful nodes, this folds over the whole term, so two
   programs differing only deep inside a term still get distinct
   fingerprints (with overwhelming probability). *)
let hash_combine h x = ((h * 0x01000193) lxor x) land max_int

let rec hash_fold h = function
  | Var v -> hash_combine (hash_combine h 1) (Hashtbl.hash v)
  | Int n -> hash_combine (hash_combine h 2) n
  | Fun (f, args) ->
    List.fold_left hash_fold
      (hash_combine (hash_combine (hash_combine h 3) (Hashtbl.hash f))
         (List.length args))
      args
  | Binop (op, a, b) ->
    hash_fold (hash_fold (hash_combine (hash_combine h 4) (Hashtbl.hash op)) a) b
  | Interval (a, b) -> hash_fold (hash_fold (hash_combine h 5) a) b

let hash t = hash_fold 0x811c9dc5 t

let rec is_ground = function
  | Var _ -> false
  | Int _ -> true
  | Fun (_, args) -> List.for_all is_ground args
  | Binop (_, a, b) -> is_ground a && is_ground b
  | Interval (a, b) -> is_ground a && is_ground b

(** Free variables of a term, in first-occurrence order without duplicates. *)
let vars term =
  let rec go acc = function
    | Var v -> if List.mem v acc then acc else v :: acc
    | Int _ -> acc
    | Fun (_, args) -> List.fold_left go acc args
    | Binop (_, a, b) -> go (go acc a) b
    | Interval (a, b) -> go (go acc a) b
  in
  List.rev (go [] term)

module Subst = Map.Make (String)

type subst = t Subst.t

let subst_empty : subst = Subst.empty
let subst_bind v t (s : subst) : subst = Subst.add v t s
let subst_find v (s : subst) = Subst.find_opt v s

let rec apply (s : subst) term =
  match term with
  | Var v -> ( match Subst.find_opt v s with Some t -> t | None -> term)
  | Int _ -> term
  | Fun (f, args) -> Fun (f, List.map (apply s) args)
  | Binop (op, a, b) -> Binop (op, apply s a, apply s b)
  | Interval (a, b) -> Interval (apply s a, apply s b)

(** Evaluate ground arithmetic. Returns [None] on non-ground input, on
    division by zero, or when an operand is not an integer. *)
let rec eval term =
  match term with
  | Var _ -> None
  | Int n -> Some (Int n)
  | Fun (f, args) ->
    let rec eval_args acc = function
      | [] -> Some (List.rev acc)
      | a :: rest -> (
        match eval a with
        | Some a' -> eval_args (a' :: acc) rest
        | None -> None)
    in
    Option.map (fun args' -> Fun (f, args')) (eval_args [] args)
  | Binop (op, a, b) -> (
    match (eval a, eval b) with
    | Some (Int x), Some (Int y) -> (
      match op with
      | Add -> Some (Int (x + y))
      | Sub -> Some (Int (x - y))
      | Mul -> Some (Int (x * y))
      | Div -> if y = 0 then None else Some (Int (x / y))
      | Mod -> if y = 0 then None else Some (Int (x mod y)))
    | _ -> None)
  | Interval _ -> None

(** A term already in evaluated form — no variable, arithmetic or
    interval anywhere — so {!eval} returns it unchanged (and it is
    ground). The common case for asserted context facts; checking it is
    allocation-free. *)
let rec is_value = function
  | Int _ -> true
  | Fun (_, args) -> List.for_all is_value args
  | Var _ | Binop _ | Interval _ -> false

(** One-way matching: extend [s] so that [apply s pattern = target].
    [target] must be ground. *)
let rec match_term (s : subst) pattern target =
  match (pattern, target) with
  | Var v, _ -> (
    match Subst.find_opt v s with
    | Some bound -> if equal bound target then Some s else None
    | None -> Some (Subst.add v target s))
  | Int a, Int b -> if a = b then Some s else None
  | Fun (f, fargs), Fun (g, gargs)
    when String.equal f g && List.length fargs = List.length gargs ->
    let rec go s = function
      | [], [] -> Some s
      | p :: ps, t :: ts -> (
        match match_term s p t with Some s' -> go s' (ps, ts) | None -> None)
      | _ -> None
    in
    go s (fargs, gargs)
  | _ -> None

let rec pp ppf = function
  | Var v -> Fmt.string ppf v
  | Int n -> Fmt.int ppf n
  | Fun (f, []) -> Fmt.string ppf f
  | Fun (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_to_string op) pp b
  | Interval (a, b) -> Fmt.pf ppf "%a..%a" pp a pp b

let to_string term = Fmt.str "%a" pp term
