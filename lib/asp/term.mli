(** First-order terms: variables, integers, function applications (with
    nullary applications as constants), symbolic arithmetic, and interval
    terms expanded during grounding. *)

type t =
  | Var of string
  | Int of int
  | Fun of string * t list
  | Binop of binop * t * t
  | Interval of t * t  (** [l..u], expanded during grounding *)

and binop = Add | Sub | Mul | Div | Mod

(** {2 Construction} *)

val var : string -> t
val int : int -> t

(** A constant: a nullary function application. *)
val const : string -> t

val func : string -> t list -> t

(** {2 Inspection} *)

val binop_to_string : binop -> string

(** Total order on terms (structural). *)
val compare : t -> t -> int

val compare_list : t list -> t list -> int
val equal : t -> t -> bool

(** Structural hash consistent with {!equal}. Unlike [Hashtbl.hash] it
    folds over the {e whole} term, so deep differences still produce
    distinct hashes (with overwhelming probability). *)
val hash : t -> int

(** Fold a term into an accumulated hash (building block for the atom,
    rule, and program fingerprints). *)
val hash_fold : int -> t -> int

(** Mix one int into an accumulated hash (FNV-1a style). *)
val hash_combine : int -> int -> int

val is_ground : t -> bool

(** Free variables, in first-occurrence order, without duplicates. *)
val vars : t -> string list

(** {2 Substitutions} *)

module Subst : Map.S with type key = string

type subst = t Subst.t

val subst_empty : subst
val subst_bind : string -> t -> subst -> subst
val subst_find : string -> subst -> t option
val apply : subst -> t -> t

(** Evaluate ground arithmetic. [None] on non-ground input, division by
    zero, or non-integer operands. *)
val eval : t -> t option

(** Already in evaluated form (no variable, arithmetic or interval
    anywhere), so {!eval} is the identity on it and it is ground.
    Allocation-free. *)
val is_value : t -> bool

(** One-way matching: extend the substitution so the pattern equals the
    (ground) target. *)
val match_term : subst -> t -> t -> subst option

(** {2 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
