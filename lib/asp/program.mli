(** ASP programs: ordered rule lists with convenience operations. *)

type t = { rules : Rule.t list }

val empty : t
val of_rules : Rule.t list -> t
val rules : t -> Rule.t list

(** Append one rule at the end (source order is preserved). *)
val add_rule : t -> Rule.t -> t

val append : t -> t -> t
val concat : t list -> t

(** Number of rules. *)
val size : t -> int

val is_empty : t -> bool

(** Ground atoms asserted as facts (head with empty body). *)
val facts : t -> Atom.t list

(** The constraint rules (empty heads), in source order. *)
val constraints : t -> Rule.t list

(** All predicate name/arity pairs appearing anywhere in the program. *)
val predicates : t -> (string * int) list

(** Rule-order-sensitive structural equality: programs are ordered rule
    lists, so this is equality rule by rule. *)
val equal : t -> t -> bool

(** Structural fingerprint consistent with {!equal}: equal programs have
    equal fingerprints. Collisions between distinct programs are possible
    (it is a hash), so caches keyed by fingerprint must confirm hits with
    {!equal}. *)
val fingerprint : t -> int

(** No variables anywhere in the rule. *)
val is_ground_rule : Rule.t -> bool

(** Every rule is ground. *)
val is_ground : t -> bool

(** Add ground atoms as facts (used to inject contexts). *)
val with_facts : t -> Atom.t list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
