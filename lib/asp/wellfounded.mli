(** Well-founded propagation by the alternating fixpoint: a lower bound
    (atoms true in every stable model) and an upper bound (atoms possibly
    true). Stratified choice-free programs yield total bounds; the solver
    branches only between the bounds. *)

type bounds = { lower : Atom.Set.t; upper : Atom.Set.t }

(** The well-founded bounds of a ground program, by iterating the
    alternating fixpoint of the indexed immediate-consequence operator
    until the bounds stabilize. *)
val compute : Grounder.ground_program -> bounds

(** Do the bounds coincide (the well-founded model is total)? *)
val is_total : bounds -> bool
