(** ASP programs: ordered lists of rules with convenience operations. *)

type t = { rules : Rule.t list }

let empty = { rules = [] }
let of_rules rules = { rules }
let rules p = p.rules
let add_rule p r = { rules = p.rules @ [ r ] }
let append p q = { rules = p.rules @ q.rules }
let concat ps = { rules = List.concat_map (fun p -> p.rules) ps }
let size p = List.length p.rules
let is_empty p = p.rules = []

let facts p =
  List.filter_map
    (fun r ->
      match (r.Rule.head, r.Rule.body) with
      | Rule.Head a, [] -> Some a
      | _ -> None)
    p.rules

let constraints p = List.filter Rule.is_constraint p.rules

(** All predicate name/arity pairs appearing anywhere in the program. *)
let predicates p =
  let tbl = Hashtbl.create 16 in
  let add (a : Atom.t) = Hashtbl.replace tbl (a.pred, Atom.arity a) () in
  let rec add_body = function
    | Rule.Pos a | Rule.Neg a -> add a
    | Rule.Cmp _ -> ()
    | Rule.Count c -> List.iter add_body c.Rule.conditions
  in
  List.iter
    (fun (r : Rule.t) ->
      (match r.head with
      | Rule.Head a -> add a
      | Rule.Falsity | Rule.Weak _ -> ()
      | Rule.Choice (_, elts, _) ->
        List.iter
          (fun (e : Rule.choice_elt) ->
            add e.choice_atom;
            List.iter add e.condition)
          elts);
      List.iter add_body r.body)
    p.rules;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort_uniq Stdlib.compare

let is_ground_rule (r : Rule.t) = Rule.vars r = []
let is_ground p = List.for_all is_ground_rule p.rules

(** Rule-order-sensitive structural equality. Programs are ordered rule
    lists, and grounding/solving preserve that order, so two programs are
    interchangeable for caching exactly when they are equal rule by
    rule. *)
let equal p q =
  p == q || List.compare Rule.compare p.rules q.rules = 0

(** Structural fingerprint consistent with {!equal}: equal programs have
    equal fingerprints; distinct programs collide only with hash-collision
    probability, so a cache keyed by fingerprint must confirm with
    {!equal} before trusting a hit. *)
let fingerprint p =
  List.fold_left Rule.hash_fold (Term.hash_combine 0x811c9dc5 (List.length p.rules)) p.rules

(** Add a set of ground atoms as facts (used to inject contexts). *)
let with_facts p atoms =
  { rules = List.map Rule.fact atoms @ p.rules }

let pp ppf p = Fmt.(list ~sep:(any "@.") Rule.pp) ppf p.rules
let to_string p = Fmt.str "%a" pp p
