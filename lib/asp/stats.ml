(** Engine statistics, re-expressed as a thin view over the [Obs]
    registry: the grounder, solver, learner, and ASG membership layer
    maintain named [Obs] counters and span histograms; this module maps
    them back onto the flat record that benchmarks and [BENCH_asp.json]
    have always consumed. *)

let c_ground_calls = Obs.Counter.make "asp.ground.calls"
let c_ground_rules = Obs.Counter.make "asp.ground.rules"
let c_possible_atoms = Obs.Counter.make "asp.ground.possible_atoms"
let c_delta_rounds = Obs.Counter.make "asp.ground.delta_rounds"
let c_join_tuples = Obs.Counter.make "asp.ground.join_tuples"
let c_solve_calls = Obs.Counter.make "asp.solve.calls"
let c_propagations = Obs.Counter.make "asp.solve.propagations"
let c_decisions = Obs.Counter.make "asp.solve.decisions"
let c_conflicts = Obs.Counter.make "asp.solve.conflicts"
let c_gl_checks = Obs.Counter.make "asp.solve.gl_checks"
let c_models_found = Obs.Counter.make "asp.solve.models"
let c_ilp_hypothesis_evals = Obs.Counter.make "ilp.hypothesis_evals"
let c_asg_hypothesis_evals = Obs.Counter.make "asg.hypothesis_evals"

(* Wall-clock comes from the span histograms of the engine's root spans. *)
let h_ground = Obs.Histogram.make "asp.ground"
let h_solve = Obs.Histogram.make "asp.solve"

let counters =
  [
    c_ground_calls;
    c_ground_rules;
    c_possible_atoms;
    c_delta_rounds;
    c_join_tuples;
    c_solve_calls;
    c_propagations;
    c_decisions;
    c_conflicts;
    c_gl_checks;
    c_models_found;
    c_ilp_hypothesis_evals;
    c_asg_hypothesis_evals;
  ]

type t = {
  ground_calls : int;
  ground_rules : int;
  possible_atoms : int;
  delta_rounds : int;
  join_tuples : int;
  solve_calls : int;
  propagations : int;
  decisions : int;
  conflicts : int;
  gl_checks : int;
  models_found : int;
  hypothesis_evals : int;
  ground_seconds : float;
  solve_seconds : float;
}

let snapshot () =
  {
    ground_calls = Obs.Counter.value c_ground_calls;
    ground_rules = Obs.Counter.value c_ground_rules;
    possible_atoms = Obs.Counter.value c_possible_atoms;
    delta_rounds = Obs.Counter.value c_delta_rounds;
    join_tuples = Obs.Counter.value c_join_tuples;
    solve_calls = Obs.Counter.value c_solve_calls;
    propagations = Obs.Counter.value c_propagations;
    decisions = Obs.Counter.value c_decisions;
    conflicts = Obs.Counter.value c_conflicts;
    gl_checks = Obs.Counter.value c_gl_checks;
    models_found = Obs.Counter.value c_models_found;
    hypothesis_evals =
      Obs.Counter.value c_ilp_hypothesis_evals
      + Obs.Counter.value c_asg_hypothesis_evals;
    ground_seconds = Obs.Histogram.total h_ground;
    solve_seconds = Obs.Histogram.total h_solve;
  }

let reset () =
  List.iter Obs.Counter.reset counters;
  Obs.Histogram.reset h_ground;
  Obs.Histogram.reset h_solve

let diff a b =
  {
    ground_calls = a.ground_calls - b.ground_calls;
    ground_rules = a.ground_rules - b.ground_rules;
    possible_atoms = a.possible_atoms - b.possible_atoms;
    delta_rounds = a.delta_rounds - b.delta_rounds;
    join_tuples = a.join_tuples - b.join_tuples;
    solve_calls = a.solve_calls - b.solve_calls;
    propagations = a.propagations - b.propagations;
    decisions = a.decisions - b.decisions;
    conflicts = a.conflicts - b.conflicts;
    gl_checks = a.gl_checks - b.gl_checks;
    models_found = a.models_found - b.models_found;
    hypothesis_evals = a.hypothesis_evals - b.hypothesis_evals;
    ground_seconds = a.ground_seconds -. b.ground_seconds;
    solve_seconds = a.solve_seconds -. b.solve_seconds;
  }

let with_diff f =
  let before = snapshot () in
  let x = f () in
  (x, diff (snapshot ()) before)

let time_ground f = Obs.span "asp.ground" f
let time_solve f = Obs.span "asp.solve" f

let pp ppf s =
  Fmt.pf ppf
    "@[<v>grounder: %d call(s), %d ground rule(s), %d possible atom(s), %d \
     delta round(s), %d join tuple(s), %.4fs@,\
     solver: %d call(s), %d propagation(s), %d decision(s), %d conflict(s), \
     %d GL check(s), %d model(s), %.4fs@,\
     callers: %d hypothesis evaluation(s)@]"
    s.ground_calls s.ground_rules s.possible_atoms s.delta_rounds s.join_tuples
    s.ground_seconds s.solve_calls s.propagations s.decisions s.conflicts
    s.gl_checks s.models_found s.solve_seconds s.hypothesis_evals

let to_json s =
  Printf.sprintf
    "{\"ground_calls\": %d, \"ground_rules\": %d, \"possible_atoms\": %d, \
     \"delta_rounds\": %d, \"join_tuples\": %d, \"solve_calls\": %d, \
     \"propagations\": %d, \"decisions\": %d, \"conflicts\": %d, \
     \"gl_checks\": %d, \"models_found\": %d, \"hypothesis_evals\": %d, \
     \"ground_seconds\": %.6f, \"solve_seconds\": %.6f}"
    s.ground_calls s.ground_rules s.possible_atoms s.delta_rounds s.join_tuples
    s.solve_calls s.propagations s.decisions s.conflicts s.gl_checks
    s.models_found s.hypothesis_evals s.ground_seconds s.solve_seconds
