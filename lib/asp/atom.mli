(** Predicate atoms: a predicate name applied to terms. *)

type t = { pred : string; args : Term.t list }

(** [make p args] is the atom [p(args)]. *)
val make : string -> Term.t list -> t

(** A propositional atom (no arguments). *)
val prop : string -> t

(** Number of arguments. *)
val arity : t -> int

(** Total order: predicate name, then arity, then arguments. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Structural hash consistent with {!equal} (see {!Term.hash}). *)
val hash : t -> int

val hash_fold : int -> t -> int

(** No free variables in any argument. *)
val is_ground : t -> bool

(** Free variables, in first-occurrence order, without duplicates. *)
val vars : t -> string list

(** Apply a substitution to every argument. *)
val apply : Term.subst -> t -> t

(** Evaluate arithmetic inside the arguments; [None] if any argument
    fails to evaluate. *)
val eval : t -> t option

(** One-way matching of a pattern atom against a ground atom. *)
val match_atom : Term.subst -> t -> t -> Term.subst option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Ordering module for functor use, plus atom sets and maps. *)
module Ord : Set.OrderedType with type t = t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
