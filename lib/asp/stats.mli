(** Engine statistics as a thin view over the [Obs] registry.

    The grounder and solver (and the ILP/ASG callers above them)
    maintain named [Obs] counters — [asp.ground.*], [asp.solve.*],
    [ilp.hypothesis_evals], [asg.hypothesis_evals] — and root spans
    [asp.ground] / [asp.solve] whose histogram totals carry the phase
    wall-clock. This module projects those registry entries onto the
    flat record consumed by the benchmarks and persisted in
    [BENCH_asp.json]; the record layout and JSON schema are unchanged
    from the pre-[Obs] implementation.

    Counters are cumulative from the last {!reset}. To measure one
    workload without clobbering surrounding measurements, prefer the
    scoped {!with_diff} over the reset/snapshot pattern:

    {[
      let models, stats = Asp.Stats.with_diff (fun () -> Asp.Solver.solve p) in
      Fmt.pr "%a@." Asp.Stats.pp stats
    ]}

    The underlying counters are plain field increments on preallocated
    [Obs] handles, so their overhead is negligible next to grounding or
    search; they are not thread-safe. *)

type t = {
  ground_calls : int;  (** calls to {!Grounder.ground} *)
  ground_rules : int;  (** ground rule instances emitted *)
  possible_atoms : int;  (** atoms in the possible-atom base *)
  delta_rounds : int;
      (** semi-naive fixpoint rounds (delta iterations) across all
          grounding calls *)
  join_tuples : int;
      (** complete body substitutions enumerated by the rule-body joins *)
  solve_calls : int;  (** calls to {!Solver.solve_ground} *)
  propagations : int;  (** atom assignments made by propagation *)
  decisions : int;  (** DPLL branch decisions *)
  conflicts : int;  (** conflicts raised during search *)
  gl_checks : int;
      (** Gelfond–Lifschitz stability checks on complete assignments *)
  models_found : int;  (** stable models returned *)
  hypothesis_evals : int;
      (** hypothesis/membership evaluations by ILP and ASG callers
          (the sum of the [ilp.hypothesis_evals] and
          [asg.hypothesis_evals] counters) *)
  ground_seconds : float;  (** wall-clock spent grounding *)
  solve_seconds : float;  (** wall-clock spent in stable-model search *)
}

(** Zero the viewed counters and phase timers in the [Obs] registry.
    Other [Obs] entries (fine-grained spans, layer counters outside
    this view) are left untouched; [Obs.reset] clears everything. *)
val reset : unit -> unit

(** The current values of the viewed registry entries. *)
val snapshot : unit -> t

(** Field-wise difference [a - b] of two snapshots. *)
val diff : t -> t -> t

(** [with_diff f] runs [f] and returns its result together with the
    statistics accrued during the call — a scoped measurement that
    needs no global {!reset}, so nested and surrounding measurements
    are unaffected. *)
val with_diff : (unit -> 'a) -> 'a * t

(** Run a thunk inside the [asp.ground] span (adds its duration to
    [ground_seconds]). Exception-safe: elapsed time is recorded even
    when the thunk raises. *)
val time_ground : (unit -> 'a) -> 'a

(** Run a thunk inside the [asp.solve] span (adds its duration to
    [solve_seconds]). Exception-safe. *)
val time_solve : (unit -> 'a) -> 'a

(** Human-readable multi-line rendering of a snapshot. *)
val pp : Format.formatter -> t -> unit

(** One-line JSON object with every counter, as persisted in
    [BENCH_asp.json] (schema documented in [EXPERIMENTS.md]). *)
val to_json : t -> string
