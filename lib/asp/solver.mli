(** Stable-model (answer-set) computation: well-founded narrowing followed
    by DPLL-style search with a Gelfond–Lifschitz stability check at each
    complete assignment. Sound and complete for normal rules, constraints
    and bounded choice rules; weak constraints rank models.

    Unit propagation is {e counter-based} in the style of two-watched
    literals: ground rules are integer-indexed, each keeps satisfied- and
    blocked-literal counters that are updated through per-atom occurrence
    lists, so an assignment touches only the rules it appears in instead
    of rescanning the program. Source pointers track one non-blocked
    supporting rule per true atom and propagate unsupportedness eagerly.
    Search statistics (propagations, decisions, conflicts, GL checks) are
    accumulated in {!Stats}. *)

(** A stable model: the set of atoms assigned true. *)
type model = Atom.Set.t

val pp_model : Format.formatter -> model -> unit
val model_to_string : model -> string

(** Enumerate stable models of a ground program, up to [limit].
    [wellfounded:false] disables the well-founded narrowing (ablation
    knob); results are identical, search is slower.

    Complexity: deciding stable-model existence is NP-complete, so the
    worst case is exponential in the number of unknown atoms after
    propagation. Each unit propagation is amortized O(occurrences of the
    assigned atom); each leaf runs one Gelfond–Lifschitz least-model
    check, linear in the size of the ground program. *)
val solve_ground :
  ?limit:int -> ?wellfounded:bool -> Grounder.ground_program -> model list

(** Ground and solve: [solve p] is
    [solve_ground (Grounder.ground p)] (see {!Grounder.ground} for
    grounding complexity). *)
val solve : ?limit:int -> ?wellfounded:bool -> Program.t -> model list

(** Is there at least one stable model? Stops at the first. *)
val has_answer_set : Program.t -> bool

(** The first stable model found, if any. *)
val first_answer_set : Program.t -> model option

(** {!has_answer_set} over a pre-grounded core: callers holding a cached
    {!Grounder.ground_program} skip grounding entirely. Coincides with
    [has_answer_set p] when the core is [Grounder.ground p]. *)
val has_answer_set_ground : Grounder.ground_program -> bool

(** {!first_answer_set} over a pre-grounded core. *)
val first_answer_set_ground : Grounder.ground_program -> model option

(** {2 Delta solving over a prepared core}

    For the serve hot path: compile a ground core once with {!prepare},
    then decide satisfiability of core + per-request delta rules with
    {!has_answer_set_prepared} — only the delta is compiled per call.
    Pairs with {!Grounder.Incremental.delta}, which produces exactly the
    extension rules when the frozen core needs no repair. *)

type prepared
(** The compiled, immutable slice of a ground program (atom ids, indexed
    rules, occurrence lists). Never mutated after {!prepare}; safe to
    share across threads and extend concurrently. *)

val prepare : Grounder.ground_program -> prepared

(** [has_answer_set_prepared pr ~delta] coincides with
    {!has_answer_set_ground} on the prepared program extended with the
    [delta] ground rules, skipping the per-call recompilation of the
    core. [delta:[]] decides the prepared program itself. *)
val has_answer_set_prepared :
  ?wellfounded:bool -> prepared -> delta:Grounder.ground_rule list -> bool

(** Atoms true in at least one answer set, optionally restricted to a
    predicate. *)
val brave_consequences : ?pred:string -> Program.t -> Atom.Set.t

(** Atoms true in every answer set; empty if there is none. *)
val cautious_consequences : ?pred:string -> Program.t -> Atom.Set.t

(** {2 Optimization (weak constraints)} *)

(** Summed weights of the weak-constraint instances whose bodies the
    model satisfies. *)
val model_cost : Grounder.ground_program -> model -> int

(** Stable models ranked by cost, cheapest first. *)
val solve_ranked : ?limit:int -> Program.t -> (model * int) list

(** The minimal-cost stable models and their cost; [None] if the program
    has no stable model. *)
val solve_optimal : ?limit:int -> Program.t -> (model list * int) option
