(** Grounding: instantiating a safe program's variables with the constants
    that can actually matter.

    The algorithm follows the standard two-phase scheme, evaluated
    bottom-up over the predicate dependency graph:

    1. compute the set of {e possible atoms} — the least fixpoint of the
       positive projection of the program (negation ignored, choice heads
       treated as derivable) — by {e semi-naive evaluation}: predicates are
       processed one dependency SCC at a time (callees first), and within
       an SCC each fixpoint round joins rule bodies against the {e delta}
       (atoms derived in the previous round) rather than re-deriving
       everything from the full base;
    2. instantiate each rule against that base, evaluating arithmetic and
       comparison builtins, dropping rules that can never fire and negative
       literals that can never hold.

    Rule bodies are grounded by {e selectivity-ordered indexed joins}: body
    literals are statically reordered so that comparisons run as soon as
    their variables are bound (each builtin is therefore evaluated once per
    binding prefix instead of once per complete substitution), and
    candidate atoms for each positive literal are fetched from a
    per-predicate index discriminated on the first argument whenever that
    argument is bound. Join plans precompute, per literal, whether interval
    expansion or arithmetic normalization can be needed at all, so the
    common case (plain variables and values) skips both.

    {2 Negative body literals}

    A ground negative literal [not a] whose atom lies outside the
    possible-atom base is trivially true and is dropped from the rule
    instance (the rule is kept). Interval arguments in negative literals
    denote the conjunction over their expansion: [not q(1..2)] grounds to
    [not q(1), not q(2)], each instance subject to the same rule. A
    negative literal whose arguments fail to evaluate once ground (e.g.
    division by zero) makes that rule instance inapplicable: the instance
    is dropped, mirroring the behaviour of positive builtin failure. *)

(* Obs handles (shared with the Stats view, which registers the same
   names): plain field increments, safe in the join hot path. *)
let c_ground_calls = Obs.Counter.make "asp.ground.calls"
let c_ground_rules = Obs.Counter.make "asp.ground.rules"
let c_possible_atoms = Obs.Counter.make "asp.ground.possible_atoms"
let c_delta_rounds = Obs.Counter.make "asp.ground.delta_rounds"
let c_join_tuples = Obs.Counter.make "asp.ground.join_tuples"

exception Unsafe_rule of Rule.t

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

let pp_ground_rule ppf r =
  let pp_head ppf = function
    | GAtom a -> Atom.pp ppf a
    | GFalse -> ()
    | GWeak _ -> ()
    | GChoice (l, atoms, u) ->
      let pp_b ppf = function Some n -> Fmt.pf ppf "%d " n | None -> () in
      let pp_u ppf = function Some n -> Fmt.pf ppf " %d" n | None -> () in
      Fmt.pf ppf "%a{ %a }%a" pp_b l
        Fmt.(list ~sep:(any "; ") Atom.pp)
        atoms pp_u u
  in
  let body =
    List.map (fun a -> Fmt.str "%a" Atom.pp a) r.gpos
    @ List.map (fun a -> Fmt.str "not %a" Atom.pp a) r.gneg
    @ List.map
        (fun c -> Fmt.str "%a" Rule.pp_body_elt (Rule.Count c))
        r.gcounts
  in
  match (r.ghead, body) with
  | GFalse, body -> Fmt.pf ppf ":- %s." (String.concat ", " body)
  | GWeak w, body -> Fmt.pf ppf ":~ %s. [%d]" (String.concat ", " body) w
  | h, [] -> Fmt.pf ppf "%a." pp_head h
  | h, body -> Fmt.pf ppf "%a :- %s." pp_head h (String.concat ", " body)

(* -- Interval expansion ---------------------------------------------- *)

(** Expand interval arguments: [p(1..3)] becomes [p(1)], [p(2)], [p(3)].
    Endpoints must evaluate to integers once ground. *)
let rec expand_intervals_in_term (t : Term.t) : Term.t list =
  match t with
  | Term.Var _ -> [ t ]
  | Term.Int _ -> [ t ]
  | Term.Fun (f, args) ->
    List.map (fun args -> Term.Fun (f, args)) (expand_args args)
  | Term.Binop _ -> [ t ]
  | Term.Interval (a, b) -> (
    match (Term.eval a, Term.eval b) with
    | Some (Term.Int l), Some (Term.Int u) ->
      if l > u then []
      else List.init (u - l + 1) (fun i -> Term.Int (l + i))
    | _ -> [ t ])

and expand_args = function
  | [] -> [ [] ]
  | arg :: rest ->
    let arg_choices = expand_intervals_in_term arg in
    let rest_choices = expand_args rest in
    List.concat_map
      (fun a -> List.map (fun r -> a :: r) rest_choices)
      arg_choices

let expand_atom (a : Atom.t) : Atom.t list =
  List.map (fun args -> { a with Atom.args }) (expand_args a.Atom.args)

let rec term_has_interval : Term.t -> bool = function
  | Term.Var _ | Term.Int _ -> false
  | Term.Fun (_, args) -> List.exists term_has_interval args
  | Term.Binop (_, a, b) -> term_has_interval a || term_has_interval b
  | Term.Interval _ -> true

let atom_has_interval (a : Atom.t) = List.exists term_has_interval a.Atom.args

let rec term_has_binop : Term.t -> bool = function
  | Term.Var _ | Term.Int _ -> false
  | Term.Fun (_, args) -> List.exists term_has_binop args
  | Term.Binop _ -> true
  | Term.Interval (a, b) -> term_has_binop a || term_has_binop b

let atom_has_binop (a : Atom.t) = List.exists term_has_binop a.Atom.args

(* -- Indexed atom base ------------------------------------------------ *)

(** Per-predicate atom store with first-argument discrimination: [all]
    holds every flushed atom of the predicate, [by_first] buckets them by
    first argument, and [delta] holds the atoms added in the most recently
    completed fixpoint round. *)
type pred_index = {
  mutable all : Atom.t list;
  by_first : (Term.t, Atom.t list ref) Hashtbl.t;
  mutable delta : Atom.t list;
}

(** The possible-atom base under construction. [stamp] doubles as the
    membership table: an atom is present iff stamped, and flushed (visible
    to joins) iff its stamp is at most [flushed_round]. A base may layer
    over a frozen [parent] (the incremental grounder's per-request
    overlay): lookups fall through to the parent, writes stay in the
    child, so a frozen core base is never mutated and can be shared by
    concurrent overlays. *)
type base = {
  stamp : (Atom.t, int) Hashtbl.t;
  mutable pending : Atom.t list;  (** derived in the current round *)
  by_pred : (string * int, pred_index) Hashtbl.t;
  mutable flushed_round : int;
  mutable delta_preds : (string * int) list;  (** preds with nonempty delta *)
  expand_memo : (Atom.t, Atom.t list) Hashtbl.t;
  parent : base option;  (** frozen layer below; never written through *)
}

let base_create () =
  {
    stamp = Hashtbl.create 64;
    pending = [];
    by_pred = Hashtbl.create 16;
    flushed_round = -1;
    delta_preds = [];
    expand_memo = Hashtbl.create 16;
    parent = None;
  }

(** A fresh mutable layer over a frozen parent base. Round numbering
    continues from the parent's, so stamps stay globally monotone across
    the layers. *)
let base_child parent =
  {
    stamp = Hashtbl.create 16;
    pending = [];
    by_pred = Hashtbl.create 8;
    flushed_round = parent.flushed_round;
    delta_preds = [];
    expand_memo = Hashtbl.create 16;
    parent = Some parent;
  }

(** Membership among all derived atoms, flushed or pending, in any
    layer. *)
let rec base_mem b a =
  Hashtbl.mem b.stamp a
  || (match b.parent with Some p -> base_mem p a | None -> false)

let rec find_stamp b a =
  match Hashtbl.find_opt b.stamp a with
  | Some _ as s -> s
  | None -> ( match b.parent with Some p -> find_stamp p a | None -> None)

(** Add a ground, evaluated atom to the current round's pending set.
    Returns [true] when the atom is new (in every layer). *)
let base_add b ~round a =
  if base_mem b a then false
  else begin
    b.pending <- a :: b.pending;
    Hashtbl.replace b.stamp a round;
    true
  end

let pred_index_for b key =
  match Hashtbl.find_opt b.by_pred key with
  | Some pi -> pi
  | None ->
    let pi = { all = []; by_first = Hashtbl.create 8; delta = [] } in
    Hashtbl.replace b.by_pred key pi;
    pi

(** Move the current round's pending atoms into the indexes; they become
    the new delta. Returns [true] when the round derived anything. *)
let base_flush b ~round =
  List.iter
    (fun key ->
      match Hashtbl.find_opt b.by_pred key with
      | Some pi -> pi.delta <- []
      | None -> ())
    b.delta_preds;
  b.delta_preds <- [];
  let added = b.pending <> [] in
  List.iter
    (fun (a : Atom.t) ->
      let key = (a.Atom.pred, Atom.arity a) in
      let pi = pred_index_for b key in
      if pi.delta = [] then b.delta_preds <- key :: b.delta_preds;
      pi.all <- a :: pi.all;
      pi.delta <- a :: pi.delta;
      match a.Atom.args with
      | [] -> ()
      | first :: _ -> (
        match Hashtbl.find_opt pi.by_first first with
        | Some l -> l := a :: !l
        | None -> Hashtbl.replace pi.by_first first (ref [ a ])))
    b.pending;
  b.pending <- [];
  b.flushed_round <- round;
  added

(** Which slice of the base a join literal ranges over: the whole flushed
    base, atoms stamped at most [n], the previous round's delta only, or
    atoms stamped at least [n] (the incremental grounder's "new since the
    last instantiation" slice — [From n] with [n] beyond every parent
    stamp, so only the top layer qualifies). *)
type occ = Any | UpTo of int | Delta | From of int

let mem_occ b (a : Atom.t) occ =
  match find_stamp b a with
  | None -> false
  | Some s -> (
    match occ with
    | Any -> s <= b.flushed_round
    | UpTo n -> s <= n && s <= b.flushed_round
    | Delta -> s = b.flushed_round
    | From n -> s >= n && s <= b.flushed_round)

(** Iterate the candidate atoms a (partially bound) pattern may match,
    using the first-argument index when the pattern's first argument is
    ground. [Delta] and [From _] range over the top layer only: parent
    layers are frozen, so their deltas are stale and their stamps lie
    below any [From] threshold the overlay uses. *)
let rec iter_candidates b (a : Atom.t) occ f =
  (match (occ, b.parent) with
  | (Any | UpTo _), Some p -> iter_candidates p a occ f
  | (Delta | From _), Some _ | _, None -> ());
  match Hashtbl.find_opt b.by_pred (a.Atom.pred, Atom.arity a) with
  | None -> ()
  | Some pi -> (
    let indexed () =
      match a.Atom.args with
      | first :: _ when Term.is_ground first -> (
        match Hashtbl.find_opt pi.by_first first with
        | Some l -> Some !l
        | None -> Some [])
      | _ -> None
    in
    match occ with
    | Delta -> List.iter f pi.delta
    | Any -> (
      match indexed () with
      | Some l -> List.iter f l
      | None -> List.iter f pi.all)
    | UpTo n ->
      let src = match indexed () with Some l -> l | None -> pi.all in
      List.iter
        (fun at ->
          match Hashtbl.find_opt b.stamp at with
          | Some s when s <= n -> f at
          | _ -> ())
        src
    | From n ->
      let src = match indexed () with Some l -> l | None -> pi.all in
      List.iter
        (fun at ->
          match Hashtbl.find_opt b.stamp at with
          | Some s when s >= n -> f at
          | _ -> ())
        src)

(* -- Join plans ------------------------------------------------------- *)

(** A body compiled for joining: positive literals interleaved with the
    comparisons that become decidable (or variable-binding) once the
    literals before them are bound. *)
type jelt =
  | JPos of {
      atom : Atom.t;
      ord : int;  (** position in join order (the semi-naive pivot index) *)
      src : int;  (** position in source order, to rebuild bodies *)
      iv : bool;  (** may need interval expansion *)
      ev : bool;  (** may need arithmetic normalization *)
      ground_at : bool;  (** fully bound by the time this literal runs *)
    }
  | JCheck of Rule.cmp_op * Term.t * Term.t
  | JBind of string * Term.t  (** [V = t] with [t] evaluable: bind V *)

(** Compile a body into a selectivity-ordered join plan, assuming the
    [initially_bound] variables are supplied by the caller. Comparisons
    are scheduled as early as their variables allow; positive literals are
    chosen greedily, preferring literals whose arithmetic arguments are
    already evaluable, then literals introducing the fewest unbound
    variables (most selective join), then literals usable through the
    first-argument index. Negative literals and aggregates take no part in
    joining. Returns the plan, the number of positive literals, and the
    variables bound after running it. *)
let make_plan ?(initially_bound = []) (body : Rule.body_elt list) :
    jelt list * int * string list =
  let pos =
    ref
      (List.filter_map (function Rule.Pos a -> Some a | _ -> None) body
      |> List.mapi (fun src a -> (src, a)))
  in
  let cmps =
    ref
      (List.filter_map
         (function Rule.Cmp (o, a, c) -> Some (o, a, c) | _ -> None)
         body)
  in
  let bound = ref initially_bound in
  let is_bound v = List.mem v !bound in
  let plan = ref [] in
  let nord = ref 0 in
  let rec term_ready t =
    match t with
    | Term.Var _ | Term.Int _ -> true
    | Term.Fun (_, args) -> List.for_all term_ready args
    | Term.Binop _ | Term.Interval _ -> List.for_all is_bound (Term.vars t)
  in
  (* Emit every comparison that is decidable now, and bind variables via
     evaluable equalities, to a local fixpoint. *)
  let rec absorb_cmps () =
    let progressed = ref false in
    let keep =
      List.filter
        (fun (op, t1, t2) ->
          let evaluable t = List.for_all is_bound (Term.vars t) in
          if evaluable t1 && evaluable t2 then begin
            plan := JCheck (op, t1, t2) :: !plan;
            progressed := true;
            false
          end
          else
            match (op, t1, t2) with
            | Rule.Eq, Term.Var v, t when (not (is_bound v)) && evaluable t ->
              plan := JBind (v, t) :: !plan;
              bound := v :: !bound;
              progressed := true;
              false
            | Rule.Eq, t, Term.Var v when (not (is_bound v)) && evaluable t ->
              plan := JBind (v, t) :: !plan;
              bound := v :: !bound;
              progressed := true;
              false
            | _ -> true)
        !cmps
    in
    cmps := keep;
    if !progressed then absorb_cmps ()
  in
  absorb_cmps ();
  while !pos <> [] do
    let score (_, (a : Atom.t)) =
      let unbound =
        List.length (List.filter (fun v -> not (is_bound v)) (Atom.vars a))
      in
      let ready = List.for_all term_ready a.Atom.args in
      let indexable =
        match a.Atom.args with
        | first :: _ -> List.for_all is_bound (Term.vars first)
        | [] -> true
      in
      ((if ready then 0 else 1), unbound, if indexable then 0 else 1)
    in
    let best =
      List.fold_left
        (fun acc cand ->
          match acc with
          | None -> Some cand
          | Some cur -> if score cand < score cur then Some cand else Some cur)
        None !pos
    in
    (match best with
    | Some ((src, a) as chosen) ->
      pos := List.filter (fun c -> c != chosen) !pos;
      let ground_at = List.for_all is_bound (Atom.vars a) in
      plan :=
        JPos
          {
            atom = a;
            ord = !nord;
            src;
            iv = atom_has_interval a;
            ev = atom_has_binop a;
            ground_at;
          }
        :: !plan;
      incr nord;
      List.iter
        (fun v -> if not (is_bound v) then bound := v :: !bound)
        (Atom.vars a);
      absorb_cmps ()
    | None -> ());
    ()
  done;
  (* anything left is undecidable even with all literals bound; keep it as
     a trailing check, which fails unless evaluable *)
  List.iter (fun (op, t1, t2) -> plan := JCheck (op, t1, t2) :: !plan) !cmps;
  (List.rev !plan, !nord, !bound)

let expand_atom_memo b (a : Atom.t) =
  match Hashtbl.find_opt b.expand_memo a with
  | Some l -> l
  | None ->
    let l = expand_atom a in
    Hashtbl.add b.expand_memo a l;
    l

(** Evaluate the ground arguments of a partially-bound pattern so that it
    matches the (normalized) stored atoms; [None] when a ground argument
    fails to evaluate (the literal can match nothing). *)
let normalize_pattern (a : Atom.t) : Atom.t option =
  let rec go acc = function
    | [] -> Some { a with Atom.args = List.rev acc }
    | t :: rest ->
      if Term.is_ground t then
        match Term.eval t with
        | Some t' -> go (t' :: acc) rest
        | None -> None
      else go (t :: acc) rest
  in
  go [] a.Atom.args

(** Enumerate the substitutions (and the ground positive-body instances
    they select, tagged by source position) grounding [plan] against [b],
    starting from [init], with each positive literal of join ordinal [o]
    restricted to the base slice [occ_of o]. *)
let run_plan b ~init (plan : jelt list) ~occ_of yield =
  let rec go subst pos_insts = function
    | [] ->
      Obs.Counter.incr c_join_tuples;
      yield subst pos_insts
    | JCheck (op, t1, t2) :: rest -> (
      match
        (Term.eval (Term.apply subst t1), Term.eval (Term.apply subst t2))
      with
      | Some v1, Some v2 ->
        if Rule.eval_cmp op v1 v2 then go subst pos_insts rest
      | _ -> ())
    | JBind (v, t) :: rest -> (
      match Term.eval (Term.apply subst t) with
      | Some value -> go (Term.subst_bind v value subst) pos_insts rest
      | None -> ())
    | JPos { atom; ord; src; iv; ev; ground_at } :: rest ->
      let occ = occ_of ord in
      let a' = Atom.apply subst atom in
      let instances = if iv then expand_atom_memo b a' else [ a' ] in
      List.iter
        (fun a' ->
          if ground_at || Atom.is_ground a' then begin
            let ga = if ev || iv then Atom.eval a' else Some a' in
            match ga with
            | Some ga ->
              if mem_occ b ga occ then go subst ((src, ga) :: pos_insts) rest
            | None -> ()
          end
          else
            let pat = if ev then normalize_pattern a' else Some a' in
            match pat with
            | None -> ()
            | Some pat ->
              iter_candidates b pat occ (fun cand ->
                  match Atom.match_atom subst pat cand with
                  | Some subst' -> go subst' ((src, cand) :: pos_insts) rest
                  | None -> ()))
        instances
  in
  go init [] plan

(* -- Phase 1: possible atoms ------------------------------------------ *)

(** A derivation template: one (head atom, join plan) pair per normal-rule
    head or choice element, with choice-element conditions folded into the
    body so the semi-naive join covers them. *)
type template = {
  t_head : Atom.t;
  t_head_iv : bool;
  t_head_ev : bool;
  t_plan : jelt list;
  t_npos : int;
}

let template_of head body =
  let plan, npos, _ = make_plan body in
  {
    t_head = head;
    t_head_iv = atom_has_interval head;
    t_head_ev = atom_has_binop head;
    t_plan = plan;
    t_npos = npos;
  }

let templates_of_rule (r : Rule.t) : template list =
  match r.head with
  | Rule.Falsity | Rule.Weak _ -> []
  | Rule.Head a -> [ template_of a r.body ]
  | Rule.Choice (_, elts, _) ->
    List.map
      (fun (e : Rule.choice_elt) ->
        template_of e.choice_atom
          (r.body @ List.map (fun c -> Rule.Pos c) e.condition))
      elts

let derive_head b ~round t subst =
  let a = Atom.apply subst t.t_head in
  if t.t_head_iv then
    List.iter
      (fun inst ->
        match Atom.eval inst with
        | Some ga when Atom.is_ground ga -> ignore (base_add b ~round ga)
        | _ -> ())
      (expand_atom_memo b a)
  else if t.t_head_ev then
    match Atom.eval a with
    | Some ga -> ignore (base_add b ~round ga)
    | None -> ()
  else ignore (base_add b ~round a)

(** Compute the possible-atom base by SCC-stratified semi-naive
    evaluation: templates are grouped by the dependency SCC of their head
    predicate and processed callees-first; each group starts with one
    naive pass over the base built so far, then iterates delta rounds
    until its fixpoint. New atoms in round [r] carry stamp [r]; a delta
    round instantiates each template once per pivot position, with
    literals before the pivot ranging over rounds [<= r-2], the pivot over
    exactly [r-1], and literals after it over [<= r-1] — the standard
    non-duplicating scheme, so each combination is enumerated exactly
    once across the whole fixpoint. *)
let compute_possible_atoms (p : Program.t) : base =
  let b = base_create () in
  let graph = Dependency.build p in
  let sccs = Dependency.sccs graph in
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun pr -> Hashtbl.replace comp_of pr i) comp)
    sccs;
  let n_groups = List.length sccs in
  let groups = Array.make (max n_groups 1) [] in
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun t ->
          let key = (t.t_head.Atom.pred, Atom.arity t.t_head) in
          let gi =
            match Hashtbl.find_opt comp_of key with
            | Some i -> i
            | None -> n_groups - 1 (* unreachable: predicates covers heads *)
          in
          groups.(gi) <- t :: groups.(gi))
        (templates_of_rule r))
    p.rules;
  let round = ref 0 in
  let any_occ _ = Any in
  Array.iter
    (fun templates ->
      match templates with
      | [] -> ()
      | templates ->
        (* group round 0: naive pass over everything derived so far *)
        Obs.fine_span "asp.ground.delta" (fun () ->
            List.iter
              (fun t ->
                run_plan b ~init:Term.subst_empty t.t_plan ~occ_of:any_occ
                  (fun subst _ -> derive_head b ~round:!round t subst))
              templates);
        let continue = ref (base_flush b ~round:!round) in
        incr round;
        Obs.Counter.incr c_delta_rounds;
        (* semi-naive delta rounds until the group's fixpoint *)
        while !continue do
          let r = !round in
          Obs.fine_span "asp.ground.delta" (fun () ->
              List.iter
                (fun t ->
                  if t.t_npos > 0 then
                    for pivot = 0 to t.t_npos - 1 do
                      run_plan b ~init:Term.subst_empty t.t_plan
                        ~occ_of:(fun ord ->
                          if ord < pivot then UpTo (r - 2)
                          else if ord = pivot then Delta
                          else UpTo (r - 1))
                        (fun subst _ -> derive_head b ~round:r t subst)
                    done)
                templates);
          continue := base_flush b ~round:r;
          incr round;
          if !continue then Obs.Counter.incr c_delta_rounds
        done)
    groups;
  b

(* -- Phase 2: rule instantiation -------------------------------------- *)

(** Assemble the ground body for one substitution: positive instances come
    from the join (source order restored), negative literals are interval-
    expanded and kept only when their atom is derivable, aggregates are
    instantiated for model-time evaluation. Comparisons were already
    checked by the join plan. Returns [None] when the instance can never
    fire (a negative literal failed to evaluate). The last component of
    the result is {e every} ground negative instance in body order —
    including the trivially-true ones dropped from the second component —
    which the incremental grounder re-filters when delta facts extend the
    base ([gneg] is its restriction to the current base). *)
let ground_body b subst ~pos_insts (body : Rule.body_elt list) :
    (Atom.t list * Atom.t list * Rule.count list * Atom.t list) option =
  let exception Inapplicable in
  let pos_sorted =
    List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) pos_insts
  in
  let next = ref pos_sorted in
  try
    let rec go pos neg counts all_neg = function
      | [] ->
        Some (List.rev pos, List.rev neg, List.rev counts, List.rev all_neg)
      | Rule.Pos _ :: rest ->
        let ga =
          match !next with
          | (_, ga) :: tl ->
            next := tl;
            ga
          | [] -> raise Inapplicable (* join always supplies every slot *)
        in
        go (ga :: pos) neg counts all_neg rest
      | Rule.Neg a :: rest ->
        let a' = Atom.apply subst a in
        let instances =
          if atom_has_interval a' then expand_atom_memo b a' else [ a' ]
        in
        let neg, all_neg =
          List.fold_left
            (fun (neg, all_neg) inst ->
              match Atom.eval inst with
              | Some ga when Atom.is_ground ga ->
                (* a negative literal over an underivable atom is
                   trivially true and drops out *)
                ((if base_mem b ga then ga :: neg else neg), ga :: all_neg)
              | _ -> raise Inapplicable)
            (neg, all_neg) instances
        in
        go pos neg counts all_neg rest
      | Rule.Cmp _ :: rest ->
        go pos neg counts all_neg rest (* checked by the join *)
      | Rule.Count c :: rest -> (
        match Rule.apply_body_elt subst (Rule.Count c) with
        | Rule.Count c' -> go pos neg (c' :: counts) all_neg rest
        | _ -> raise Inapplicable)
    in
    go [] [] [] [] body
  with Inapplicable -> None

(** Per-choice-element compiled condition plan (phase 2): run with the
    outer substitution as initial bindings to enumerate the element's
    instances. *)
type elem_plan = {
  e_atom : Atom.t;
  e_iv : bool;
  e_ev : bool;
  e_plan : jelt list;
}

let head_instances_choice b subst (elems : elem_plan list) : Atom.t list =
  List.concat_map
    (fun e ->
      let results = ref [] in
      run_plan b ~init:subst e.e_plan
        ~occ_of:(fun _ -> Any)
        (fun local_subst _ ->
          let a = Atom.apply local_subst e.e_atom in
          if e.e_iv then
            List.iter
              (fun inst ->
                match Atom.eval inst with
                | Some ga when Atom.is_ground ga -> results := ga :: !results
                | _ -> ())
              (expand_atom_memo b a)
          else if e.e_ev then (
            match Atom.eval a with
            | Some ga -> results := ga :: !results
            | None -> ())
          else results := a :: !results);
      !results)
    elems

(** One phase-2 rule instance, together with the re-grounding hooks the
    incremental layer needs: the full (pre-drop) ordered negative
    instances, and for choice heads the substitution and element plans so
    element enumeration can be repeated against an extended base. *)
type emission = {
  em_rule : ground_rule;
  em_all_negs : Atom.t list;
      (** every ground negative instance in body order; [em_rule.gneg] is
          its restriction to the base *)
  em_choice : (Term.subst * int option * elem_plan list * int option) option;
}

(** A choice-rule body instance whose head had no instantiable element
    and no lower bound: [ground] emits nothing for it, but delta facts
    can make an element condition satisfiable, so the incremental
    grounder keeps it dormant and revives it then. *)
type dormant = {
  d_subst : Term.subst;
  d_l : int option;
  d_u : int option;
  d_elems : elem_plan list;
  d_gpos : Atom.t list;
  d_all_negs : Atom.t list;
  d_gcounts : Rule.count list;
}

(** Context-free compilation of a rule head: everything about emitting it
    that does not depend on the base, so the incremental grounder can
    compile once at freeze time and re-run the action against extended
    bases. *)
type chead =
  | CAtom of Atom.t * bool * bool  (** atom, interval?, binop? *)
  | CFalse
  | CWeak of Term.t
  | CChoice of int option * elem_plan list * int option

let compile_chead (r : Rule.t) ~bound : chead =
  match r.head with
  | Rule.Head a -> CAtom (a, atom_has_interval a, atom_has_binop a)
  | Rule.Falsity -> CFalse
  | Rule.Weak w -> CWeak w
  | Rule.Choice (l, elts, u) ->
    let elems =
      List.map
        (fun (e : Rule.choice_elt) ->
          let e_plan, _, _ =
            make_plan ~initially_bound:bound
              (List.map (fun c -> Rule.Pos c) e.condition)
          in
          {
            e_atom = e.choice_atom;
            e_iv = atom_has_interval e.choice_atom;
            e_ev = atom_has_binop e.choice_atom;
            e_plan;
          })
        elts
    in
    CChoice (l, elems, u)

let emit_head_atom b ~emit_plain a ~iv ~ev subst gpos gneg gcounts ~all_negs =
  let a = Atom.apply subst a in
  if iv then
    List.iter
      (fun inst ->
        match Atom.eval inst with
        | Some ga when Atom.is_ground ga ->
          emit_plain { ghead = GAtom ga; gpos; gneg; gcounts } all_negs
        | _ -> ())
      (expand_atom_memo b a)
  else if ev then (
    match Atom.eval a with
    | Some ga -> emit_plain { ghead = GAtom ga; gpos; gneg; gcounts } all_negs
    | None -> ())
  else emit_plain { ghead = GAtom a; gpos; gneg; gcounts } all_negs

(** Turn a compiled head into the per-substitution emit action against
    base [b]. *)
let head_action b (r : Rule.t) (ch : chead) ~(emit : emission -> unit)
    ~(emit_dormant : dormant -> unit) =
  let emit_plain gr all_negs =
    emit { em_rule = gr; em_all_negs = all_negs; em_choice = None }
  in
  match ch with
  | CAtom (a, iv, ev) ->
    fun subst gpos gneg gcounts all_negs ->
      if gcounts <> [] then raise (Aggregate_in_rule r);
      emit_head_atom b ~emit_plain a ~iv ~ev subst gpos gneg gcounts ~all_negs
  | CFalse ->
    fun _ gpos gneg gcounts all_negs ->
      emit_plain { ghead = GFalse; gpos; gneg; gcounts } all_negs
  | CWeak w ->
    fun subst gpos gneg gcounts all_negs -> (
      match Term.eval (Term.apply subst w) with
      | Some (Term.Int cost) ->
        emit_plain { ghead = GWeak cost; gpos; gneg; gcounts } all_negs
      | Some _ | None -> ())
  | CChoice (l, elems, u) ->
    fun subst gpos gneg gcounts all_negs ->
      if gcounts <> [] then raise (Aggregate_in_rule r);
      let atoms = head_instances_choice b subst elems in
      let atoms = List.sort_uniq Atom.compare atoms in
      if atoms <> [] || l <> None then
        emit
          {
            em_rule = { ghead = GChoice (l, atoms, u); gpos; gneg; gcounts };
            em_all_negs = all_negs;
            em_choice = Some (subst, l, elems, u);
          }
      else
        emit_dormant
          {
            d_subst = subst;
            d_l = l;
            d_u = u;
            d_elems = elems;
            d_gpos = gpos;
            d_all_negs = all_negs;
            d_gcounts = gcounts;
          }

(** Instantiate every rule of [p] against base [b] with selectivity-
    ordered joins, calling [emit] per ground rule (in program order) and
    [emit_dormant] per dormant choice-body instance. *)
let instantiate_emissions b (p : Program.t) ~(emit : emission -> unit)
    ~(emit_dormant : dormant -> unit) =
  let emit_plain gr all_negs =
    emit { em_rule = gr; em_all_negs = all_negs; em_choice = None }
  in
  List.iter
    (fun (r : Rule.t) ->
      match (r.head, r.body) with
      | Rule.Head a, [] ->
        (* fact fast path: no join, no body assembly *)
        emit_head_atom b ~emit_plain a ~iv:(atom_has_interval a)
          ~ev:(atom_has_binop a) Term.subst_empty [] [] [] ~all_negs:[]
      | _ ->
        let plan, _, bound = make_plan r.body in
        let action =
          head_action b r (compile_chead r ~bound) ~emit ~emit_dormant
        in
        run_plan b ~init:Term.subst_empty plan
          ~occ_of:(fun _ -> Any)
          (fun subst pos_insts ->
            match ground_body b subst ~pos_insts r.body with
            | None -> ()
            | Some (gpos, gneg, gcounts, all_negs) ->
              action subst gpos gneg gcounts all_negs))
    p.rules

let base_set_of b =
  Hashtbl.fold (fun a _ acc -> Atom.Set.add a acc) b.stamp Atom.Set.empty

let log_grounded p ~n_out ~base_set =
  Obs.Counter.incr c_ground_rules ~by:n_out;
  Obs.Counter.incr c_possible_atoms ~by:(Atom.Set.cardinal base_set);
  Obs.set_attr "ground_rules" (string_of_int n_out);
  Obs.Log.debug "grounded program"
    ~attrs:
      [
        ("rules", string_of_int (List.length (Program.rules p)));
        ("ground_rules", string_of_int n_out);
        ("possible_atoms", string_of_int (Atom.Set.cardinal base_set));
      ]

(** Ground a program: compute the possible-atom base (semi-naive, indexed),
    then instantiate every rule against it with selectivity-ordered joins.

    Worst-case complexity is O(|rules| * |base|^v) substitutions for v the
    maximum number of body variables of any rule — grounding is inherently
    exponential in rule width — but the index-driven joins visit only
    candidate atoms matching each literal's bound prefix, and semi-naive
    evaluation re-derives nothing: across the whole fixpoint each rule
    instantiation is enumerated once per delta combination rather than once
    per iteration.

    @raise Unsafe_rule on unsafe input.
    @raise Aggregate_in_rule when an aggregate occurs outside a constraint
    or weak-constraint body. *)
let ground (p : Program.t) : ground_program =
  Obs.span "asp.ground" @@ fun () ->
  Obs.Counter.incr c_ground_calls;
  List.iter
    (fun r -> if not (Rule.is_safe r) then raise (Unsafe_rule r))
    p.rules;
  let b =
    Obs.fine_span "asp.ground.possible" (fun () -> compute_possible_atoms p)
  in
  let out = ref [] in
  let n_out = ref 0 in
  Obs.fine_span "asp.ground.instantiate" (fun () ->
      instantiate_emissions b p
        ~emit:(fun em ->
          out := em.em_rule :: !out;
          incr n_out)
        ~emit_dormant:(fun _ -> ()));
  let base_set = base_set_of b in
  log_grounded p ~n_out:!n_out ~base_set;
  { grules = List.rev !out; base = base_set }

let size gp = List.length gp.grules
let atom_count gp = Atom.Set.cardinal gp.base

(** Ground with a pre-grounded core: when [core = (p0, gp0)] was produced
    by [ground p0] and [p] is structurally equal to [p0], the core is
    returned as-is and no grounding work happens — the seam the serving
    layer's fingerprint-keyed ground cache goes through. Fingerprints can
    collide, so equality is confirmed with {!Program.equal} here rather
    than trusted from the cache key; on a mismatch (or without a core)
    this is just [ground p]. *)
let ground_with ?(core : (Program.t * ground_program) option) (p : Program.t) :
    ground_program =
  match core with
  | Some (p0, gp0) when Program.equal p0 p -> gp0
  | Some _ | None -> ground p

(* -- Incremental grounding -------------------------------------------- *)

(** Two-stage incremental grounding. [freeze] grounds a context-free core
    program once and keeps, besides the ground program itself, everything
    needed to extend it by ground context facts without regrounding:

    - the possible-atom base with its indexes (layered over by each
      overlay, never mutated);
    - per emitted rule, its full ordered negative instances (when some
      were dropped as trivially true) and its compiled choice-element
      plans (when new base atoms could enable further elements) — the two
      ways an {e existing} ground rule can change when the base grows;
    - dormant choice-body instances that emitted nothing but could be
      revived;
    - the compiled phase-1 derivation templates and phase-2 join plans,
      each indexed by the predicate at every join position, so a delta
      touches only the plans that can see it.

    An {!overlay} then adds context facts: phase 1 continues the core's
    semi-naive rounds in a child base layer (stamps stay globally
    monotone), and phase 2 runs each affected plan with the new [From]
    occurrence at the pivot — every new rule instance is enumerated
    exactly once, at its first join position holding a new atom. Truth
    maintenance is DRed at delta granularity: retraction drops the whole
    overlay layer and re-derives from the surviving facts; the frozen
    core is never touched. *)
module Incremental = struct
  let jpos_live elems =
    List.exists
      (fun e ->
        List.exists (function JPos _ -> true | _ -> false) e.e_plan)
      elems

  (** Predicate key at each join ordinal of a plan. *)
  let jpos_preds plan npos =
    let arr = Array.make npos ("", 0) in
    List.iter
      (function
        | JPos { atom; ord; _ } -> arr.(ord) <- (atom.Atom.pred, Atom.arity atom)
        | JCheck _ | JBind _ -> ())
      plan;
    arr

  type frozen = {
    fz_rule : ground_rule;
    fz_negs : Atom.t list;
        (** all ground negative instances in body order when at least one
            was dropped as trivially true; [[]] when [gneg] is final *)
    fz_choice : (Term.subst * int option * elem_plan list * int option) option;
        (** present iff new base atoms could enable further elements *)
  }

  type inst_rule = { ir_rule : Rule.t; ir_plan : jelt list; ir_chead : chead }

  type core = {
    k_program : Program.t;
    k_base : base;
    k_next_round : int;
    k_ground : ground_program;
    k_frozen : frozen array;  (** same order as [k_ground.grules] *)
    k_latent : (Atom.t, int list ref) Hashtbl.t;
        (** dropped negative atom -> frozen rules to re-filter if derived *)
    k_choice_deps : (string * int, int list ref) Hashtbl.t;
        (** element-condition predicate -> frozen choice rules to refresh *)
    k_dormant : dormant array;
    k_dormant_deps : (string * int, int list ref) Hashtbl.t;
    k_inst : inst_rule array;  (** phase-2 plans with >= 1 join literal *)
    k_inst_by_pred : (string * int, (int * int) list ref) Hashtbl.t;
        (** body predicate -> (inst rule, pivot ordinal) pairs to re-join *)
    k_templates : (template * (string * int) array) list;
        (** phase-1 templates with >= 1 join literal, with per-ordinal
            predicate keys *)
    k_inert : bool;
        (** asserted facts can have no consequences: nothing to join them
            into (no template, no phase-2 plan) and nothing they could
            repair or revive (no latent negation, choice dependency or
            dormant rule) — the delta is then just the facts themselves *)
  }

  let core_program k = k.k_program
  let core_ground k = k.k_ground

  let add_dep tbl key i =
    match Hashtbl.find_opt tbl key with
    | Some l -> ( match !l with j :: _ when j = i -> () | _ -> l := i :: !l)
    | None -> Hashtbl.replace tbl key (ref [ i ])

  let freeze (p : Program.t) : core =
    Obs.span "asp.ground" @@ fun () ->
    Obs.Counter.incr c_ground_calls;
    List.iter
      (fun r -> if not (Rule.is_safe r) then raise (Unsafe_rule r))
      p.rules;
    let b =
      Obs.fine_span "asp.ground.possible" (fun () -> compute_possible_atoms p)
    in
    let k_latent = Hashtbl.create 16 in
    let k_choice_deps = Hashtbl.create 16 in
    let k_dormant_deps = Hashtbl.create 16 in
    let elem_cond_preds elems =
      List.concat_map
        (fun e ->
          List.filter_map
            (function
              | JPos { atom; _ } -> Some (atom.Atom.pred, Atom.arity atom)
              | JCheck _ | JBind _ -> None)
            e.e_plan)
        elems
      |> List.sort_uniq compare
    in
    let frozen = ref [] and n_frozen = ref 0 in
    let dormants = ref [] and n_dorm = ref 0 in
    Obs.fine_span "asp.ground.instantiate" (fun () ->
        instantiate_emissions b p
          ~emit:(fun em ->
            let i = !n_frozen in
            let dropped =
              List.filter (fun a -> not (base_mem b a)) em.em_all_negs
            in
            let fz_negs = if dropped = [] then [] else em.em_all_negs in
            List.iter (fun a -> add_dep k_latent a i) dropped;
            let fz_choice =
              match em.em_choice with
              | Some (_, _, elems, _) when jpos_live elems ->
                List.iter
                  (fun key -> add_dep k_choice_deps key i)
                  (elem_cond_preds elems);
                em.em_choice
              | Some _ | None -> None
            in
            frozen := { fz_rule = em.em_rule; fz_negs; fz_choice } :: !frozen;
            incr n_frozen)
          ~emit_dormant:(fun d ->
            if jpos_live d.d_elems then begin
              let i = !n_dorm in
              List.iter
                (fun key -> add_dep k_dormant_deps key i)
                (elem_cond_preds d.d_elems);
              dormants := d :: !dormants;
              incr n_dorm
            end));
    let k_frozen = Array.of_list (List.rev !frozen) in
    let k_dormant = Array.of_list (List.rev !dormants) in
    let k_inst_by_pred = Hashtbl.create 16 in
    let insts = ref [] and n_inst = ref 0 in
    List.iter
      (fun (r : Rule.t) ->
        match (r.head, r.body) with
        | Rule.Head _, [] -> ()
        | _ ->
          let plan, nord, bound = make_plan r.body in
          if nord > 0 then begin
            let i = !n_inst in
            insts :=
              { ir_rule = r; ir_plan = plan; ir_chead = compile_chead r ~bound }
              :: !insts;
            incr n_inst;
            Array.iteri
              (fun pivot key -> add_dep k_inst_by_pred key (i, pivot))
              (jpos_preds plan nord)
          end)
      p.rules;
    let k_templates =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun t ->
              if t.t_npos > 0 then Some (t, jpos_preds t.t_plan t.t_npos)
              else None)
            (templates_of_rule r))
        p.rules
    in
    let base_set = base_set_of b in
    log_grounded p ~n_out:!n_frozen ~base_set;
    {
      k_program = p;
      k_base = b;
      k_next_round = b.flushed_round + 1;
      k_ground =
        {
          grules = List.map (fun fz -> fz.fz_rule) (Array.to_list k_frozen);
          base = base_set;
        };
      k_frozen;
      k_latent;
      k_choice_deps;
      k_dormant;
      k_dormant_deps;
      k_inst = Array.of_list (List.rev !insts);
      k_inst_by_pred;
      k_templates;
      k_inert =
        k_templates = [] && !n_inst = 0 && !n_dorm = 0
        && Hashtbl.length k_latent = 0
        && Hashtbl.length k_choice_deps = 0;
    }

  (** A ground rule the overlay emitted, with the same re-grounding hooks
      a frozen rule keeps (later facts can extend it further). *)
  type orule = {
    og : ground_rule;
    og_negs : Atom.t list;
    og_choice : (Term.subst * int option * elem_plan list * int option) option;
  }

  type overlay = {
    o_core : core;
    mutable o_base : base;  (** child layer over [o_core.k_base] *)
    mutable o_round : int;
    mutable o_inst_from : int;
        (** stamps >= this are new since the last phase-2 delta pass *)
    mutable o_facts : Atom.t list;  (** asserted context facts, in order *)
    mutable o_queue : Atom.t list;  (** facts not yet emitted, reversed *)
    mutable o_fresh : Atom.t list;
        (** base atoms derived since the last materialization *)
    mutable o_rules : orule list;  (** delta ground rules, reversed *)
    o_affected : (int, unit) Hashtbl.t;  (** frozen rules needing refresh *)
    o_dormant_live : (int, unit) Hashtbl.t;  (** triggered dormants *)
    mutable o_local_dormant : dormant list;
    mutable o_cached : ground_program option;
  }

  let overlay core =
    {
      o_core = core;
      o_base = base_child core.k_base;
      o_round = core.k_next_round;
      o_inst_from = core.k_next_round;
      o_facts = [];
      o_queue = [];
      o_fresh = [];
      o_rules = [];
      o_affected = Hashtbl.create 8;
      o_dormant_live = Hashtbl.create 8;
      o_local_dormant = [];
      o_cached = None;
    }

  let facts o = o.o_facts

  (** Normalize an asserted fact the way the grounder normalizes emitted
      heads: intervals expand to their conjunctions, arithmetic is
      evaluated, and an unevaluable fact is silently inapplicable.
      @raise Invalid_argument on a non-ground fact. *)
  let normalize_fact (a : Atom.t) : Atom.t list =
    if List.for_all Term.is_value a.Atom.args then [ a ]
    else if not (Atom.is_ground a) then
      invalid_arg "Grounder.Incremental: context facts must be ground"
    else
    if atom_has_interval a then
      List.filter_map
        (fun inst ->
          match Atom.eval inst with
          | Some ga when Atom.is_ground ga -> Some ga
          | _ -> None)
        (expand_atom a)
    else match Atom.eval a with Some ga -> [ ga ] | None -> []

  let add_facts o (atoms : Atom.t list) =
    let rec dedup seen acc = function
      | [] -> List.rev acc
      | a :: rest ->
        if List.exists (fun x -> Atom.compare x a = 0) seen then
          dedup seen acc rest
        else dedup (a :: seen) (a :: acc) rest
    in
    let fresh = dedup o.o_facts [] (List.concat_map normalize_fact atoms) in
    if fresh <> [] then begin
      o.o_cached <- None;
      o.o_facts <- o.o_facts @ fresh;
      o.o_queue <- List.rev_append fresh o.o_queue;
      let b = o.o_base in
      let r0 = o.o_round in
      List.iter (fun a -> ignore (base_add b ~round:r0 a)) fresh;
      o.o_fresh <- List.rev_append b.pending o.o_fresh;
      let continue = ref (base_flush b ~round:r0) in
      o.o_round <- r0 + 1;
      (* continue the core's semi-naive fixpoint in the child layer: the
         pivot ranges over the previous round's delta (top layer only),
         literals before it over rounds the pivot's round has not seen,
         so each new combination is derived exactly once *)
      while !continue do
        let r = o.o_round in
        Obs.fine_span "asp.ground.delta" (fun () ->
            List.iter
              (fun ((t : template), preds) ->
                for pivot = 0 to t.t_npos - 1 do
                  if List.mem preds.(pivot) b.delta_preds then
                    run_plan b ~init:Term.subst_empty t.t_plan
                      ~occ_of:(fun ord ->
                        if ord < pivot then UpTo (r - 2)
                        else if ord = pivot then Delta
                        else UpTo (r - 1))
                      (fun subst _ -> derive_head b ~round:r t subst)
                done)
              o.o_core.k_templates);
        o.o_fresh <- List.rev_append b.pending o.o_fresh;
        continue := base_flush b ~round:r;
        o.o_round <- r + 1;
        if !continue then Obs.Counter.incr c_delta_rounds
      done
    end

  (** Emit the ground consequences of the facts added since the last
      materialization: queued fact rules, refresh triggers for affected
      frozen rules, brand-new phase-2 instances (via the [From] pivot
      scheme), and dormant revivals. *)
  let materialize o =
    let b = o.o_base in
    let core = o.o_core in
    List.iter
      (fun a ->
        o.o_rules <-
          {
            og = { ghead = GAtom a; gpos = []; gneg = []; gcounts = [] };
            og_negs = [];
            og_choice = None;
          }
          :: o.o_rules)
      (List.rev o.o_queue);
    o.o_queue <- [];
    let fresh = o.o_fresh in
    o.o_fresh <- [];
    if fresh <> [] then begin
      let fresh_preds =
        List.sort_uniq compare
          (List.map (fun (a : Atom.t) -> (a.Atom.pred, Atom.arity a)) fresh)
      in
      List.iter
        (fun a ->
          match Hashtbl.find_opt core.k_latent a with
          | Some l -> List.iter (fun i -> Hashtbl.replace o.o_affected i ()) !l
          | None -> ())
        fresh;
      List.iter
        (fun key ->
          (match Hashtbl.find_opt core.k_choice_deps key with
          | Some l -> List.iter (fun i -> Hashtbl.replace o.o_affected i ()) !l
          | None -> ());
          match Hashtbl.find_opt core.k_dormant_deps key with
          | Some l ->
            List.iter (fun i -> Hashtbl.replace o.o_dormant_live i ()) !l
          | None -> ())
        fresh_preds;
      let n0 = o.o_inst_from in
      let emit em =
        let dropped =
          List.exists (fun a -> not (base_mem b a)) em.em_all_negs
        in
        o.o_rules <-
          {
            og = em.em_rule;
            og_negs = (if dropped then em.em_all_negs else []);
            og_choice =
              (match em.em_choice with
              | Some (_, _, elems, _) when jpos_live elems -> em.em_choice
              | Some _ | None -> None);
          }
          :: o.o_rules
      in
      let emit_dormant d =
        if jpos_live d.d_elems then
          o.o_local_dormant <- d :: o.o_local_dormant
      in
      List.iter
        (fun (i, pivot) ->
          let ir = core.k_inst.(i) in
          let action = head_action b ir.ir_rule ir.ir_chead ~emit ~emit_dormant in
          run_plan b ~init:Term.subst_empty ir.ir_plan
            ~occ_of:(fun ord ->
              if ord < pivot then UpTo (n0 - 1)
              else if ord = pivot then From n0
              else Any)
            (fun subst pos_insts ->
              match ground_body b subst ~pos_insts ir.ir_rule.Rule.body with
              | None -> ()
              | Some (gpos, gneg, gcounts, all_negs) ->
                action subst gpos gneg gcounts all_negs))
        (List.concat_map
           (fun key ->
             match Hashtbl.find_opt core.k_inst_by_pred key with
             | Some l -> !l
             | None -> [])
           fresh_preds);
      o.o_inst_from <- o.o_round;
      (* revive dormant choice bodies whose elements became instantiable *)
      let revive (d : dormant) : orule option =
        let atoms = head_instances_choice b d.d_subst d.d_elems in
        let atoms = List.sort_uniq Atom.compare atoms in
        if atoms = [] then None
        else
          Some
            {
              og =
                {
                  ghead = GChoice (d.d_l, atoms, d.d_u);
                  gpos = d.d_gpos;
                  gneg = List.filter (base_mem b) d.d_all_negs;
                  gcounts = d.d_gcounts;
                };
              og_negs =
                (if List.exists (fun a -> not (base_mem b a)) d.d_all_negs then
                   d.d_all_negs
                 else []);
              og_choice = Some (d.d_subst, d.d_l, d.d_elems, d.d_u);
            }
      in
      let live = Hashtbl.fold (fun i () acc -> i :: acc) o.o_dormant_live [] in
      List.iter
        (fun i ->
          match revive core.k_dormant.(i) with
          | Some r ->
            o.o_rules <- r :: o.o_rules;
            Hashtbl.remove o.o_dormant_live i
          | None -> ())
        (List.sort Int.compare live);
      o.o_local_dormant <-
        List.filter
          (fun d ->
            match revive d with
            | Some r ->
              o.o_rules <- r :: o.o_rules;
              false
            | None -> true)
          o.o_local_dormant
    end

  (** Refresh a ground rule against the (possibly grown) base: re-filter
      its negative instances, re-enumerate its choice elements. Shares
      the input when nothing changed. *)
  let refresh_rule b (og : ground_rule) negs choice : ground_rule =
    let gneg = if negs = [] then og.gneg else List.filter (base_mem b) negs in
    let ghead =
      match choice with
      | Some (subst, l, elems, u) ->
        let atoms =
          List.sort_uniq Atom.compare (head_instances_choice b subst elems)
        in
        GChoice (l, atoms, u)
      | None -> og.ghead
    in
    if gneg == og.gneg && ghead == og.ghead then og else { og with gneg; ghead }

  let ground_overlay o : ground_program =
    match o.o_cached with
    | Some gp -> gp
    | None ->
      Obs.span "asp.ground" @@ fun () ->
      Obs.Counter.incr c_ground_calls;
      materialize o;
      let b = o.o_base in
      let core = o.o_core in
      let core_rules =
        if Hashtbl.length o.o_affected = 0 then core.k_ground.grules
        else
          Array.to_list
            (Array.mapi
               (fun i fz ->
                 if Hashtbl.mem o.o_affected i then
                   refresh_rule b fz.fz_rule fz.fz_negs fz.fz_choice
                 else fz.fz_rule)
               core.k_frozen)
      in
      let delta =
        List.rev_map (fun r -> refresh_rule b r.og r.og_negs r.og_choice) o.o_rules
      in
      let base_set =
        Hashtbl.fold
          (fun a _ acc -> Atom.Set.add a acc)
          b.stamp core.k_ground.base
      in
      Obs.Counter.incr c_ground_rules ~by:(List.length delta);
      Obs.set_attr "ground_rules" (string_of_int (List.length delta));
      let gp = { grules = core_rules @ delta; base = base_set } in
      o.o_cached <- Some gp;
      gp

  (** The delta-only product: the overlay's own ground rules, refreshed
      against the grown base, {e without} rebuilding the combined
      program (no frozen-rule scan, no base-set union). Valid only when
      no frozen core rule needs repair — [None] when asserted facts
      touched a latent negative literal or a choice head of the core, in
      which case the caller must fall back to {!ground}. A solver
      holding precompiled state for the unmodified core can extend it
      with exactly these rules. *)
  let delta o : ground_rule list option =
    Obs.span "asp.ground" @@ fun () ->
    Obs.Counter.incr c_ground_calls;
    materialize o;
    if Hashtbl.length o.o_affected <> 0 then None
    else begin
      let b = o.o_base in
      let d =
        List.rev_map (fun r -> refresh_rule b r.og r.og_negs r.og_choice) o.o_rules
      in
      Obs.Counter.incr c_ground_rules ~by:(List.length d);
      Obs.set_attr "ground_rules" (string_of_int (List.length d));
      Some d
    end

  (** One-shot delta product for a batch of facts over [core]. On an
      {e inert} core (nothing joins on, repairs from, or is revived by
      new facts — the common shape of context-free decision cores) the
      overlay machinery is skipped entirely: the delta is the normalized,
      deduplicated facts as ground fact rules, exactly what the overlay
      would emit. Otherwise equivalent to [delta] on a fresh overlay with
      the facts asserted. *)
  let delta_with core ~(facts : Atom.t list) : ground_rule list option =
    if not core.k_inert then begin
      let o = overlay core in
      add_facts o facts;
      delta o
    end
    else
      Obs.span "asp.ground" @@ fun () ->
      Obs.Counter.incr c_ground_calls;
      (* hash-prefiltered, order-preserving dedup: full atom comparison
         only on a hash match *)
      let rec dedup seen acc = function
        | [] -> List.rev acc
        | a :: rest ->
          let h = Atom.hash a in
          if List.exists (fun (h', x) -> h' = h && Atom.compare x a = 0) seen
          then dedup seen acc rest
          else dedup ((h, a) :: seen) (a :: acc) rest
      in
      let fresh = dedup [] [] (List.concat_map normalize_fact facts) in
      let d =
        List.map
          (fun a -> { ghead = GAtom a; gpos = []; gneg = []; gcounts = [] })
          fresh
      in
      Obs.Counter.incr c_ground_rules ~by:(List.length d);
      Obs.set_attr "ground_rules" (string_of_int (List.length d));
      Some d

  (** Retract asserted facts. Truth maintenance is DRed at delta
      granularity: the frozen core is untouched; the overlay layer is
      dropped and re-derived from the surviving facts, so exactly the
      ground rules depending on the retracted facts disappear. Returns
      how many ground rules were dropped. *)
  let retract_facts o (atoms : Atom.t list) : int =
    let victims = List.concat_map normalize_fact atoms in
    let keep =
      List.filter
        (fun f -> not (List.exists (fun v -> Atom.compare v f = 0) victims))
        o.o_facts
    in
    if List.length keep = List.length o.o_facts then 0
    else begin
      let before = List.length (ground_overlay o).grules in
      o.o_base <- base_child o.o_core.k_base;
      o.o_round <- o.o_core.k_next_round;
      o.o_inst_from <- o.o_core.k_next_round;
      o.o_facts <- [];
      o.o_queue <- [];
      o.o_fresh <- [];
      o.o_rules <- [];
      Hashtbl.reset o.o_affected;
      Hashtbl.reset o.o_dormant_live;
      o.o_local_dormant <- [];
      o.o_cached <- None;
      add_facts o keep;
      let after = List.length (ground_overlay o).grules in
      before - after
    end

  let ground = ground_overlay

  let ground_with core ~(facts : Atom.t list) : ground_program =
    match facts with
    | [] -> core.k_ground
    | facts ->
      let o = overlay core in
      add_facts o facts;
      ground_overlay o
end
