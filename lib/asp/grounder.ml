(** Grounding: instantiating a safe program's variables with the constants
    that can actually matter.

    The algorithm follows the standard two-phase scheme, evaluated
    bottom-up over the predicate dependency graph:

    1. compute the set of {e possible atoms} — the least fixpoint of the
       positive projection of the program (negation ignored, choice heads
       treated as derivable) — by {e semi-naive evaluation}: predicates are
       processed one dependency SCC at a time (callees first), and within
       an SCC each fixpoint round joins rule bodies against the {e delta}
       (atoms derived in the previous round) rather than re-deriving
       everything from the full base;
    2. instantiate each rule against that base, evaluating arithmetic and
       comparison builtins, dropping rules that can never fire and negative
       literals that can never hold.

    Rule bodies are grounded by {e selectivity-ordered indexed joins}: body
    literals are statically reordered so that comparisons run as soon as
    their variables are bound (each builtin is therefore evaluated once per
    binding prefix instead of once per complete substitution), and
    candidate atoms for each positive literal are fetched from a
    per-predicate index discriminated on the first argument whenever that
    argument is bound. Join plans precompute, per literal, whether interval
    expansion or arithmetic normalization can be needed at all, so the
    common case (plain variables and values) skips both.

    {2 Negative body literals}

    A ground negative literal [not a] whose atom lies outside the
    possible-atom base is trivially true and is dropped from the rule
    instance (the rule is kept). Interval arguments in negative literals
    denote the conjunction over their expansion: [not q(1..2)] grounds to
    [not q(1), not q(2)], each instance subject to the same rule. A
    negative literal whose arguments fail to evaluate once ground (e.g.
    division by zero) makes that rule instance inapplicable: the instance
    is dropped, mirroring the behaviour of positive builtin failure. *)

(* Obs handles (shared with the Stats view, which registers the same
   names): plain field increments, safe in the join hot path. *)
let c_ground_calls = Obs.Counter.make "asp.ground.calls"
let c_ground_rules = Obs.Counter.make "asp.ground.rules"
let c_possible_atoms = Obs.Counter.make "asp.ground.possible_atoms"
let c_delta_rounds = Obs.Counter.make "asp.ground.delta_rounds"
let c_join_tuples = Obs.Counter.make "asp.ground.join_tuples"

exception Unsafe_rule of Rule.t

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

let pp_ground_rule ppf r =
  let pp_head ppf = function
    | GAtom a -> Atom.pp ppf a
    | GFalse -> ()
    | GWeak _ -> ()
    | GChoice (l, atoms, u) ->
      let pp_b ppf = function Some n -> Fmt.pf ppf "%d " n | None -> () in
      let pp_u ppf = function Some n -> Fmt.pf ppf " %d" n | None -> () in
      Fmt.pf ppf "%a{ %a }%a" pp_b l
        Fmt.(list ~sep:(any "; ") Atom.pp)
        atoms pp_u u
  in
  let body =
    List.map (fun a -> Fmt.str "%a" Atom.pp a) r.gpos
    @ List.map (fun a -> Fmt.str "not %a" Atom.pp a) r.gneg
    @ List.map
        (fun c -> Fmt.str "%a" Rule.pp_body_elt (Rule.Count c))
        r.gcounts
  in
  match (r.ghead, body) with
  | GFalse, body -> Fmt.pf ppf ":- %s." (String.concat ", " body)
  | GWeak w, body -> Fmt.pf ppf ":~ %s. [%d]" (String.concat ", " body) w
  | h, [] -> Fmt.pf ppf "%a." pp_head h
  | h, body -> Fmt.pf ppf "%a :- %s." pp_head h (String.concat ", " body)

(* -- Interval expansion ---------------------------------------------- *)

(** Expand interval arguments: [p(1..3)] becomes [p(1)], [p(2)], [p(3)].
    Endpoints must evaluate to integers once ground. *)
let rec expand_intervals_in_term (t : Term.t) : Term.t list =
  match t with
  | Term.Var _ -> [ t ]
  | Term.Int _ -> [ t ]
  | Term.Fun (f, args) ->
    List.map (fun args -> Term.Fun (f, args)) (expand_args args)
  | Term.Binop _ -> [ t ]
  | Term.Interval (a, b) -> (
    match (Term.eval a, Term.eval b) with
    | Some (Term.Int l), Some (Term.Int u) ->
      if l > u then []
      else List.init (u - l + 1) (fun i -> Term.Int (l + i))
    | _ -> [ t ])

and expand_args = function
  | [] -> [ [] ]
  | arg :: rest ->
    let arg_choices = expand_intervals_in_term arg in
    let rest_choices = expand_args rest in
    List.concat_map
      (fun a -> List.map (fun r -> a :: r) rest_choices)
      arg_choices

let expand_atom (a : Atom.t) : Atom.t list =
  List.map (fun args -> { a with Atom.args }) (expand_args a.Atom.args)

let rec term_has_interval : Term.t -> bool = function
  | Term.Var _ | Term.Int _ -> false
  | Term.Fun (_, args) -> List.exists term_has_interval args
  | Term.Binop (_, a, b) -> term_has_interval a || term_has_interval b
  | Term.Interval _ -> true

let atom_has_interval (a : Atom.t) = List.exists term_has_interval a.Atom.args

let rec term_has_binop : Term.t -> bool = function
  | Term.Var _ | Term.Int _ -> false
  | Term.Fun (_, args) -> List.exists term_has_binop args
  | Term.Binop _ -> true
  | Term.Interval (a, b) -> term_has_binop a || term_has_binop b

let atom_has_binop (a : Atom.t) = List.exists term_has_binop a.Atom.args

(* -- Indexed atom base ------------------------------------------------ *)

(** Per-predicate atom store with first-argument discrimination: [all]
    holds every flushed atom of the predicate, [by_first] buckets them by
    first argument, and [delta] holds the atoms added in the most recently
    completed fixpoint round. *)
type pred_index = {
  mutable all : Atom.t list;
  by_first : (Term.t, Atom.t list ref) Hashtbl.t;
  mutable delta : Atom.t list;
}

(** The possible-atom base under construction. [stamp] doubles as the
    membership table: an atom is present iff stamped, and flushed (visible
    to joins) iff its stamp is at most [flushed_round]. *)
type base = {
  stamp : (Atom.t, int) Hashtbl.t;
  mutable pending : Atom.t list;  (** derived in the current round *)
  by_pred : (string * int, pred_index) Hashtbl.t;
  mutable flushed_round : int;
  mutable delta_preds : (string * int) list;  (** preds with nonempty delta *)
  expand_memo : (Atom.t, Atom.t list) Hashtbl.t;
}

let base_create () =
  {
    stamp = Hashtbl.create 64;
    pending = [];
    by_pred = Hashtbl.create 16;
    flushed_round = -1;
    delta_preds = [];
    expand_memo = Hashtbl.create 16;
  }

(** Membership among all derived atoms, flushed or pending. *)
let base_mem b a = Hashtbl.mem b.stamp a

(** Add a ground, evaluated atom to the current round's pending set.
    Returns [true] when the atom is new. *)
let base_add b ~round a =
  if Hashtbl.mem b.stamp a then false
  else begin
    b.pending <- a :: b.pending;
    Hashtbl.replace b.stamp a round;
    true
  end

let pred_index_for b key =
  match Hashtbl.find_opt b.by_pred key with
  | Some pi -> pi
  | None ->
    let pi = { all = []; by_first = Hashtbl.create 8; delta = [] } in
    Hashtbl.replace b.by_pred key pi;
    pi

(** Move the current round's pending atoms into the indexes; they become
    the new delta. Returns [true] when the round derived anything. *)
let base_flush b ~round =
  List.iter
    (fun key ->
      match Hashtbl.find_opt b.by_pred key with
      | Some pi -> pi.delta <- []
      | None -> ())
    b.delta_preds;
  b.delta_preds <- [];
  let added = b.pending <> [] in
  List.iter
    (fun (a : Atom.t) ->
      let key = (a.Atom.pred, Atom.arity a) in
      let pi = pred_index_for b key in
      if pi.delta = [] then b.delta_preds <- key :: b.delta_preds;
      pi.all <- a :: pi.all;
      pi.delta <- a :: pi.delta;
      match a.Atom.args with
      | [] -> ()
      | first :: _ -> (
        match Hashtbl.find_opt pi.by_first first with
        | Some l -> l := a :: !l
        | None -> Hashtbl.replace pi.by_first first (ref [ a ])))
    b.pending;
  b.pending <- [];
  b.flushed_round <- round;
  added

(** Which slice of the base a join literal ranges over: the whole flushed
    base, atoms stamped at most [n], or the previous round's delta only. *)
type occ = Any | UpTo of int | Delta

let mem_occ b (a : Atom.t) occ =
  match Hashtbl.find_opt b.stamp a with
  | None -> false
  | Some s -> (
    match occ with
    | Any -> s <= b.flushed_round
    | UpTo n -> s <= n && s <= b.flushed_round
    | Delta -> s = b.flushed_round)

(** Iterate the candidate atoms a (partially bound) pattern may match,
    using the first-argument index when the pattern's first argument is
    ground. *)
let iter_candidates b (a : Atom.t) occ f =
  match Hashtbl.find_opt b.by_pred (a.Atom.pred, Atom.arity a) with
  | None -> ()
  | Some pi -> (
    let indexed () =
      match a.Atom.args with
      | first :: _ when Term.is_ground first -> (
        match Hashtbl.find_opt pi.by_first first with
        | Some l -> Some !l
        | None -> Some [])
      | _ -> None
    in
    match occ with
    | Delta -> List.iter f pi.delta
    | Any -> (
      match indexed () with
      | Some l -> List.iter f l
      | None -> List.iter f pi.all)
    | UpTo n ->
      let src = match indexed () with Some l -> l | None -> pi.all in
      List.iter
        (fun at ->
          match Hashtbl.find_opt b.stamp at with
          | Some s when s <= n -> f at
          | _ -> ())
        src)

(* -- Join plans ------------------------------------------------------- *)

(** A body compiled for joining: positive literals interleaved with the
    comparisons that become decidable (or variable-binding) once the
    literals before them are bound. *)
type jelt =
  | JPos of {
      atom : Atom.t;
      ord : int;  (** position in join order (the semi-naive pivot index) *)
      src : int;  (** position in source order, to rebuild bodies *)
      iv : bool;  (** may need interval expansion *)
      ev : bool;  (** may need arithmetic normalization *)
      ground_at : bool;  (** fully bound by the time this literal runs *)
    }
  | JCheck of Rule.cmp_op * Term.t * Term.t
  | JBind of string * Term.t  (** [V = t] with [t] evaluable: bind V *)

(** Compile a body into a selectivity-ordered join plan, assuming the
    [initially_bound] variables are supplied by the caller. Comparisons
    are scheduled as early as their variables allow; positive literals are
    chosen greedily, preferring literals whose arithmetic arguments are
    already evaluable, then literals introducing the fewest unbound
    variables (most selective join), then literals usable through the
    first-argument index. Negative literals and aggregates take no part in
    joining. Returns the plan, the number of positive literals, and the
    variables bound after running it. *)
let make_plan ?(initially_bound = []) (body : Rule.body_elt list) :
    jelt list * int * string list =
  let pos =
    ref
      (List.filter_map (function Rule.Pos a -> Some a | _ -> None) body
      |> List.mapi (fun src a -> (src, a)))
  in
  let cmps =
    ref
      (List.filter_map
         (function Rule.Cmp (o, a, c) -> Some (o, a, c) | _ -> None)
         body)
  in
  let bound = ref initially_bound in
  let is_bound v = List.mem v !bound in
  let plan = ref [] in
  let nord = ref 0 in
  let rec term_ready t =
    match t with
    | Term.Var _ | Term.Int _ -> true
    | Term.Fun (_, args) -> List.for_all term_ready args
    | Term.Binop _ | Term.Interval _ -> List.for_all is_bound (Term.vars t)
  in
  (* Emit every comparison that is decidable now, and bind variables via
     evaluable equalities, to a local fixpoint. *)
  let rec absorb_cmps () =
    let progressed = ref false in
    let keep =
      List.filter
        (fun (op, t1, t2) ->
          let evaluable t = List.for_all is_bound (Term.vars t) in
          if evaluable t1 && evaluable t2 then begin
            plan := JCheck (op, t1, t2) :: !plan;
            progressed := true;
            false
          end
          else
            match (op, t1, t2) with
            | Rule.Eq, Term.Var v, t when (not (is_bound v)) && evaluable t ->
              plan := JBind (v, t) :: !plan;
              bound := v :: !bound;
              progressed := true;
              false
            | Rule.Eq, t, Term.Var v when (not (is_bound v)) && evaluable t ->
              plan := JBind (v, t) :: !plan;
              bound := v :: !bound;
              progressed := true;
              false
            | _ -> true)
        !cmps
    in
    cmps := keep;
    if !progressed then absorb_cmps ()
  in
  absorb_cmps ();
  while !pos <> [] do
    let score (_, (a : Atom.t)) =
      let unbound =
        List.length (List.filter (fun v -> not (is_bound v)) (Atom.vars a))
      in
      let ready = List.for_all term_ready a.Atom.args in
      let indexable =
        match a.Atom.args with
        | first :: _ -> List.for_all is_bound (Term.vars first)
        | [] -> true
      in
      ((if ready then 0 else 1), unbound, if indexable then 0 else 1)
    in
    let best =
      List.fold_left
        (fun acc cand ->
          match acc with
          | None -> Some cand
          | Some cur -> if score cand < score cur then Some cand else Some cur)
        None !pos
    in
    (match best with
    | Some ((src, a) as chosen) ->
      pos := List.filter (fun c -> c != chosen) !pos;
      let ground_at = List.for_all is_bound (Atom.vars a) in
      plan :=
        JPos
          {
            atom = a;
            ord = !nord;
            src;
            iv = atom_has_interval a;
            ev = atom_has_binop a;
            ground_at;
          }
        :: !plan;
      incr nord;
      List.iter
        (fun v -> if not (is_bound v) then bound := v :: !bound)
        (Atom.vars a);
      absorb_cmps ()
    | None -> ());
    ()
  done;
  (* anything left is undecidable even with all literals bound; keep it as
     a trailing check, which fails unless evaluable *)
  List.iter (fun (op, t1, t2) -> plan := JCheck (op, t1, t2) :: !plan) !cmps;
  (List.rev !plan, !nord, !bound)

let expand_atom_memo b (a : Atom.t) =
  match Hashtbl.find_opt b.expand_memo a with
  | Some l -> l
  | None ->
    let l = expand_atom a in
    Hashtbl.add b.expand_memo a l;
    l

(** Evaluate the ground arguments of a partially-bound pattern so that it
    matches the (normalized) stored atoms; [None] when a ground argument
    fails to evaluate (the literal can match nothing). *)
let normalize_pattern (a : Atom.t) : Atom.t option =
  let rec go acc = function
    | [] -> Some { a with Atom.args = List.rev acc }
    | t :: rest ->
      if Term.is_ground t then
        match Term.eval t with
        | Some t' -> go (t' :: acc) rest
        | None -> None
      else go (t :: acc) rest
  in
  go [] a.Atom.args

(** Enumerate the substitutions (and the ground positive-body instances
    they select, tagged by source position) grounding [plan] against [b],
    starting from [init], with each positive literal of join ordinal [o]
    restricted to the base slice [occ_of o]. *)
let run_plan b ~init (plan : jelt list) ~occ_of yield =
  let rec go subst pos_insts = function
    | [] ->
      Obs.Counter.incr c_join_tuples;
      yield subst pos_insts
    | JCheck (op, t1, t2) :: rest -> (
      match
        (Term.eval (Term.apply subst t1), Term.eval (Term.apply subst t2))
      with
      | Some v1, Some v2 ->
        if Rule.eval_cmp op v1 v2 then go subst pos_insts rest
      | _ -> ())
    | JBind (v, t) :: rest -> (
      match Term.eval (Term.apply subst t) with
      | Some value -> go (Term.subst_bind v value subst) pos_insts rest
      | None -> ())
    | JPos { atom; ord; src; iv; ev; ground_at } :: rest ->
      let occ = occ_of ord in
      let a' = Atom.apply subst atom in
      let instances = if iv then expand_atom_memo b a' else [ a' ] in
      List.iter
        (fun a' ->
          if ground_at || Atom.is_ground a' then begin
            let ga = if ev || iv then Atom.eval a' else Some a' in
            match ga with
            | Some ga ->
              if mem_occ b ga occ then go subst ((src, ga) :: pos_insts) rest
            | None -> ()
          end
          else
            let pat = if ev then normalize_pattern a' else Some a' in
            match pat with
            | None -> ()
            | Some pat ->
              iter_candidates b pat occ (fun cand ->
                  match Atom.match_atom subst pat cand with
                  | Some subst' -> go subst' ((src, cand) :: pos_insts) rest
                  | None -> ()))
        instances
  in
  go init [] plan

(* -- Phase 1: possible atoms ------------------------------------------ *)

(** A derivation template: one (head atom, join plan) pair per normal-rule
    head or choice element, with choice-element conditions folded into the
    body so the semi-naive join covers them. *)
type template = {
  t_head : Atom.t;
  t_head_iv : bool;
  t_head_ev : bool;
  t_plan : jelt list;
  t_npos : int;
}

let template_of head body =
  let plan, npos, _ = make_plan body in
  {
    t_head = head;
    t_head_iv = atom_has_interval head;
    t_head_ev = atom_has_binop head;
    t_plan = plan;
    t_npos = npos;
  }

let templates_of_rule (r : Rule.t) : template list =
  match r.head with
  | Rule.Falsity | Rule.Weak _ -> []
  | Rule.Head a -> [ template_of a r.body ]
  | Rule.Choice (_, elts, _) ->
    List.map
      (fun (e : Rule.choice_elt) ->
        template_of e.choice_atom
          (r.body @ List.map (fun c -> Rule.Pos c) e.condition))
      elts

let derive_head b ~round t subst =
  let a = Atom.apply subst t.t_head in
  if t.t_head_iv then
    List.iter
      (fun inst ->
        match Atom.eval inst with
        | Some ga when Atom.is_ground ga -> ignore (base_add b ~round ga)
        | _ -> ())
      (expand_atom_memo b a)
  else if t.t_head_ev then
    match Atom.eval a with
    | Some ga -> ignore (base_add b ~round ga)
    | None -> ()
  else ignore (base_add b ~round a)

(** Compute the possible-atom base by SCC-stratified semi-naive
    evaluation: templates are grouped by the dependency SCC of their head
    predicate and processed callees-first; each group starts with one
    naive pass over the base built so far, then iterates delta rounds
    until its fixpoint. New atoms in round [r] carry stamp [r]; a delta
    round instantiates each template once per pivot position, with
    literals before the pivot ranging over rounds [<= r-2], the pivot over
    exactly [r-1], and literals after it over [<= r-1] — the standard
    non-duplicating scheme, so each combination is enumerated exactly
    once across the whole fixpoint. *)
let compute_possible_atoms (p : Program.t) : base =
  let b = base_create () in
  let graph = Dependency.build p in
  let sccs = Dependency.sccs graph in
  let comp_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun pr -> Hashtbl.replace comp_of pr i) comp)
    sccs;
  let n_groups = List.length sccs in
  let groups = Array.make (max n_groups 1) [] in
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun t ->
          let key = (t.t_head.Atom.pred, Atom.arity t.t_head) in
          let gi =
            match Hashtbl.find_opt comp_of key with
            | Some i -> i
            | None -> n_groups - 1 (* unreachable: predicates covers heads *)
          in
          groups.(gi) <- t :: groups.(gi))
        (templates_of_rule r))
    p.rules;
  let round = ref 0 in
  let any_occ _ = Any in
  Array.iter
    (fun templates ->
      match templates with
      | [] -> ()
      | templates ->
        (* group round 0: naive pass over everything derived so far *)
        Obs.fine_span "asp.ground.delta" (fun () ->
            List.iter
              (fun t ->
                run_plan b ~init:Term.subst_empty t.t_plan ~occ_of:any_occ
                  (fun subst _ -> derive_head b ~round:!round t subst))
              templates);
        let continue = ref (base_flush b ~round:!round) in
        incr round;
        Obs.Counter.incr c_delta_rounds;
        (* semi-naive delta rounds until the group's fixpoint *)
        while !continue do
          let r = !round in
          Obs.fine_span "asp.ground.delta" (fun () ->
              List.iter
                (fun t ->
                  if t.t_npos > 0 then
                    for pivot = 0 to t.t_npos - 1 do
                      run_plan b ~init:Term.subst_empty t.t_plan
                        ~occ_of:(fun ord ->
                          if ord < pivot then UpTo (r - 2)
                          else if ord = pivot then Delta
                          else UpTo (r - 1))
                        (fun subst _ -> derive_head b ~round:r t subst)
                    done)
                templates);
          continue := base_flush b ~round:r;
          incr round;
          if !continue then Obs.Counter.incr c_delta_rounds
        done)
    groups;
  b

(* -- Phase 2: rule instantiation -------------------------------------- *)

(** Assemble the ground body for one substitution: positive instances come
    from the join (source order restored), negative literals are interval-
    expanded and kept only when their atom is derivable, aggregates are
    instantiated for model-time evaluation. Comparisons were already
    checked by the join plan. Returns [None] when the instance can never
    fire (a negative literal failed to evaluate). *)
let ground_body b subst ~pos_insts (body : Rule.body_elt list) :
    (Atom.t list * Atom.t list * Rule.count list) option =
  let exception Inapplicable in
  let pos_sorted =
    List.sort (fun (s1, _) (s2, _) -> Int.compare s1 s2) pos_insts
  in
  let next = ref pos_sorted in
  try
    let rec go pos neg counts = function
      | [] -> Some (List.rev pos, List.rev neg, List.rev counts)
      | Rule.Pos _ :: rest ->
        let ga =
          match !next with
          | (_, ga) :: tl ->
            next := tl;
            ga
          | [] -> raise Inapplicable (* join always supplies every slot *)
        in
        go (ga :: pos) neg counts rest
      | Rule.Neg a :: rest ->
        let a' = Atom.apply subst a in
        let instances =
          if atom_has_interval a' then expand_atom_memo b a' else [ a' ]
        in
        let neg =
          List.fold_left
            (fun neg inst ->
              match Atom.eval inst with
              | Some ga when Atom.is_ground ga ->
                (* a negative literal over an underivable atom is
                   trivially true and drops out *)
                if base_mem b ga then ga :: neg else neg
              | _ -> raise Inapplicable)
            neg instances
        in
        go pos neg counts rest
      | Rule.Cmp _ :: rest -> go pos neg counts rest (* checked by the join *)
      | Rule.Count c :: rest -> (
        match Rule.apply_body_elt subst (Rule.Count c) with
        | Rule.Count c' -> go pos neg (c' :: counts) rest
        | _ -> raise Inapplicable)
    in
    go [] [] [] body
  with Inapplicable -> None

(** Per-choice-element compiled condition plan (phase 2): run with the
    outer substitution as initial bindings to enumerate the element's
    instances. *)
type elem_plan = {
  e_atom : Atom.t;
  e_iv : bool;
  e_ev : bool;
  e_plan : jelt list;
}

let head_instances_choice b subst (elems : elem_plan list) : Atom.t list =
  List.concat_map
    (fun e ->
      let results = ref [] in
      run_plan b ~init:subst e.e_plan
        ~occ_of:(fun _ -> Any)
        (fun local_subst _ ->
          let a = Atom.apply local_subst e.e_atom in
          if e.e_iv then
            List.iter
              (fun inst ->
                match Atom.eval inst with
                | Some ga when Atom.is_ground ga -> results := ga :: !results
                | _ -> ())
              (expand_atom_memo b a)
          else if e.e_ev then (
            match Atom.eval a with
            | Some ga -> results := ga :: !results
            | None -> ())
          else results := a :: !results);
      !results)
    elems

(** Ground a program: compute the possible-atom base (semi-naive, indexed),
    then instantiate every rule against it with selectivity-ordered joins.

    Worst-case complexity is O(|rules| * |base|^v) substitutions for v the
    maximum number of body variables of any rule — grounding is inherently
    exponential in rule width — but the index-driven joins visit only
    candidate atoms matching each literal's bound prefix, and semi-naive
    evaluation re-derives nothing: across the whole fixpoint each rule
    instantiation is enumerated once per delta combination rather than once
    per iteration.

    @raise Unsafe_rule on unsafe input.
    @raise Aggregate_in_rule when an aggregate occurs outside a constraint
    or weak-constraint body. *)
let ground (p : Program.t) : ground_program =
  Obs.span "asp.ground" @@ fun () ->
  Obs.Counter.incr c_ground_calls;
  List.iter
    (fun r -> if not (Rule.is_safe r) then raise (Unsafe_rule r))
    p.rules;
  let b =
    Obs.fine_span "asp.ground.possible" (fun () -> compute_possible_atoms p)
  in
  let out = ref [] in
  let n_out = ref 0 in
  let emit gr =
    out := gr :: !out;
    incr n_out
  in
  let emit_head_atom a ~iv ~ev subst gpos gneg gcounts =
    let a = Atom.apply subst a in
    if iv then
      List.iter
        (fun inst ->
          match Atom.eval inst with
          | Some ga when Atom.is_ground ga ->
            emit { ghead = GAtom ga; gpos; gneg; gcounts }
          | _ -> ())
        (expand_atom_memo b a)
    else if ev then (
      match Atom.eval a with
      | Some ga -> emit { ghead = GAtom ga; gpos; gneg; gcounts }
      | None -> ())
    else emit { ghead = GAtom a; gpos; gneg; gcounts }
  in
  let instantiate () =
    List.iter
    (fun (r : Rule.t) ->
      match (r.head, r.body) with
      | Rule.Head a, [] ->
        (* fact fast path: no join, no body assembly *)
        emit_head_atom a ~iv:(atom_has_interval a) ~ev:(atom_has_binop a)
          Term.subst_empty [] [] []
      | _ ->
        let plan, _, bound = make_plan r.body in
        let head_action =
          match r.head with
          | Rule.Head a ->
            let iv = atom_has_interval a and ev = atom_has_binop a in
            fun subst gpos gneg gcounts ->
              if gcounts <> [] then raise (Aggregate_in_rule r);
              emit_head_atom a ~iv ~ev subst gpos gneg gcounts
          | Rule.Falsity ->
            fun _ gpos gneg gcounts ->
              emit { ghead = GFalse; gpos; gneg; gcounts }
          | Rule.Weak w ->
            fun subst gpos gneg gcounts -> (
              match Term.eval (Term.apply subst w) with
              | Some (Term.Int cost) ->
                emit { ghead = GWeak cost; gpos; gneg; gcounts }
              | Some _ | None -> ())
          | Rule.Choice (l, elts, u) ->
            let elems =
              List.map
                (fun (e : Rule.choice_elt) ->
                  let e_plan, _, _ =
                    make_plan ~initially_bound:bound
                      (List.map (fun c -> Rule.Pos c) e.condition)
                  in
                  {
                    e_atom = e.choice_atom;
                    e_iv = atom_has_interval e.choice_atom;
                    e_ev = atom_has_binop e.choice_atom;
                    e_plan;
                  })
                elts
            in
            fun subst gpos gneg gcounts ->
              if gcounts <> [] then raise (Aggregate_in_rule r);
              let atoms = head_instances_choice b subst elems in
              let atoms = List.sort_uniq Atom.compare atoms in
              if atoms <> [] || l <> None then
                emit { ghead = GChoice (l, atoms, u); gpos; gneg; gcounts }
        in
        run_plan b ~init:Term.subst_empty plan
          ~occ_of:(fun _ -> Any)
          (fun subst pos_insts ->
            match ground_body b subst ~pos_insts r.body with
            | None -> ()
            | Some (gpos, gneg, gcounts) ->
              head_action subst gpos gneg gcounts))
      p.rules
  in
  Obs.fine_span "asp.ground.instantiate" instantiate;
  Obs.Counter.incr c_ground_rules ~by:!n_out;
  let base_set =
    Hashtbl.fold (fun a _ acc -> Atom.Set.add a acc) b.stamp Atom.Set.empty
  in
  Obs.Counter.incr c_possible_atoms ~by:(Atom.Set.cardinal base_set);
  Obs.set_attr "ground_rules" (string_of_int !n_out);
  Obs.Log.debug "grounded program"
    ~attrs:
      [
        ("rules", string_of_int (List.length p.rules));
        ("ground_rules", string_of_int !n_out);
        ("possible_atoms", string_of_int (Atom.Set.cardinal base_set));
      ];
  { grules = List.rev !out; base = base_set }

let size gp = List.length gp.grules
let atom_count gp = Atom.Set.cardinal gp.base

(** Ground with a pre-grounded core: when [core = (p0, gp0)] was produced
    by [ground p0] and [p] is structurally equal to [p0], the core is
    returned as-is and no grounding work happens — the seam the serving
    layer's fingerprint-keyed ground cache goes through. Fingerprints can
    collide, so equality is confirmed with {!Program.equal} here rather
    than trusted from the cache key; on a mismatch (or without a core)
    this is just [ground p]. *)
let ground_with ?(core : (Program.t * ground_program) option) (p : Program.t) :
    ground_program =
  match core with
  | Some (p0, gp0) when Program.equal p0 p -> gp0
  | Some _ | None -> ground p
