(* A fixed-size domain pool over one shared task queue. See par.mli for
   the determinism contract; the short version is that [parallel_map]
   must be observationally identical to [Array.map], including which
   exception escapes, no matter how chunks are scheduled. *)

type task = unit -> unit

type t = {
  size : int;  (* total parallelism, caller included *)
  queue : task Queue.t;
  lock : Mutex.t;  (* guards [queue] and [stopped] *)
  work : Condition.t;  (* signalled when tasks arrive or on shutdown *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

(* Workers block on [work] until a task is queued or the pool stops.
   Tasks are closures that never raise (chunk bodies capture their own
   exceptions), but a stray exception must not kill the domain. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec await () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if pool.stopped then None
    else begin
      Condition.wait pool.work pool.lock;
      await ()
    end
  in
  match await () with
  | None -> Mutex.unlock pool.lock
  | Some task ->
    Mutex.unlock pool.lock;
    (try task () with _ -> ());
    worker_loop pool

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 requested in
  let pool =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.lock;
  let already = pool.stopped in
  pool.stopped <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  if not already then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

(* One submitted fan-out: chunk completions are counted down under the
   batch's own lock, and every chunk that raised records (chunk index,
   exception, backtrace) so the caller can re-raise the lowest-index
   one — the exception sequential iteration would have produced. *)
type batch = {
  b_lock : Mutex.t;
  b_done : Condition.t;
  mutable b_remaining : int;
  mutable b_failures : (int * exn * Printexc.raw_backtrace) list;
}

let finish_chunk batch failure =
  Mutex.lock batch.b_lock;
  (match failure with
  | Some f -> batch.b_failures <- f :: batch.b_failures
  | None -> ());
  batch.b_remaining <- batch.b_remaining - 1;
  if batch.b_remaining = 0 then Condition.broadcast batch.b_done;
  Mutex.unlock batch.b_lock

(* The submitting domain drains the queue while its batch is pending.
   It may well execute chunks of other batches (nested or concurrent
   submissions); that is what makes nesting deadlock-free — whoever
   waits also works. *)
let rec help pool =
  Mutex.lock pool.lock;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    (try task () with _ -> ());
    help pool
  end

let sequential_map f arr = Array.map f arr

(* Chunks per participating domain: >1 so an unlucky expensive chunk
   does not serialize the tail of the batch, small enough that queue
   traffic stays negligible next to real work. *)
let chunks_per_domain = 4

let parallel_map pool f arr =
  let n = Array.length arr in
  if pool.size <= 1 || pool.stopped || n <= 1 then sequential_map f arr
  else begin
    let out = Array.make n None in
    let nchunks = min n (pool.size * chunks_per_domain) in
    let batch =
      {
        b_lock = Mutex.create ();
        b_done = Condition.create ();
        b_remaining = nchunks;
        b_failures = [];
      }
    in
    (* captured once at submission: chunks re-install the submitter's
       trace context on whichever domain runs them, so request-scoped
       IDs survive the fan-out (and a context-free submission masks any
       leftover context on a helping domain) *)
    let ctx = Obs.Trace_context.current () in
    let chunk ci () =
      Obs.Trace_context.with_opt ctx @@ fun () ->
      let lo = ci * n / nchunks and hi = (ci + 1) * n / nchunks in
      match
        for j = lo to hi - 1 do
          out.(j) <- Some (f arr.(j))
        done
      with
      | () -> finish_chunk batch None
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish_chunk batch (Some (ci, e, bt))
    in
    Mutex.lock pool.lock;
    for ci = 0 to nchunks - 1 do
      Queue.push (chunk ci) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    help pool;
    Mutex.lock batch.b_lock;
    while batch.b_remaining > 0 do
      Condition.wait batch.b_done batch.b_lock
    done;
    let failures = batch.b_failures in
    Mutex.unlock batch.b_lock;
    match
      List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) failures
    with
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    | [] ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every chunk completed exception-free *))
        out
  end

let parallel_iter pool f arr = ignore (parallel_map pool f arr)

let map_list pool f l =
  Array.to_list (parallel_map pool f (Array.of_list l))

module Config = struct
  let degree = Atomic.make 1
  let current : t option ref = ref None
  let cfg_lock = Mutex.create ()

  let set_domains d =
    Mutex.lock cfg_lock;
    Atomic.set degree (max 1 d);
    let old = !current in
    current := None;
    Mutex.unlock cfg_lock;
    Option.iter shutdown old

  let domains () = Atomic.get degree

  let pool () =
    Mutex.lock cfg_lock;
    let p =
      match !current with
      | Some p -> p
      | None ->
        let p = create ~domains:(Atomic.get degree) () in
        current := Some p;
        p
    in
    Mutex.unlock cfg_lock;
    p
end
