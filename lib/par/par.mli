(** A small domain pool for data-parallel fan-outs (linking only
    [lib/obs], whose trace context it propagates).

    The learner's hot loops — per-example witness generation, the
    candidate×witness kill matrix, multi-seed experiment sweeps — are
    embarrassingly parallel: many independent pure computations whose
    results are combined positionally. This module runs them across a
    {e fixed} set of OCaml 5 domains with a strict determinism contract:

    {b parallelism only reorders work, never the outcome.}

    Concretely, for a function [f] whose result depends only on its
    argument:

    - {!parallel_map}[ pool f arr] returns exactly [Array.map f arr] —
      results land at their input's index, independent of scheduling;
    - if some [f arr.(i)] raises, the call raises the {e same} exception
      the sequential [Array.map] would have raised: the one from the
      lowest failing index (later elements may or may not have been
      evaluated, exactly as if iteration had stopped there);
    - a pool of size 1 (or an absent pool) runs the plain sequential
      loop on the calling domain — zero scheduling overhead, bitwise
      the seed behaviour.

    Work is submitted in index-order chunks to a shared queue served by
    [size - 1] worker domains; the submitting domain also drains the
    queue while waiting, so a pool of size [n] applies [n] domains to
    the batch and nested submissions from inside a task cannot
    deadlock (the waiter helps run whatever is queued).

    Pools are cheap to keep around and expensive to create (one
    [Domain.spawn] per worker), so create one per process — normally
    via {!Config} at the entry point — and reuse it. *)

type t
(** A pool: a fixed worker set plus a shared task queue. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool applying [domains] domains in
    total (the caller counts as one, so [domains - 1] workers are
    spawned). [domains] defaults to {!Domain.recommended_domain_count};
    values [<= 1] — including on a single-core machine — yield a
    sequential pool with no workers. *)

val size : t -> int
(** Total parallelism of the pool (workers + the submitting domain);
    [1] for a sequential pool. *)

val shutdown : t -> unit
(** Stop the workers and join them (idempotent). Outstanding tasks are
    completed first. Using the pool after shutdown falls back to
    sequential execution. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr], evaluated across
    the pool in index-order chunks. See the determinism contract
    above. [f] must not depend on evaluation order; shared mutable
    state it touches must be domain-safe (e.g. [Obs] counters).

    The submitting domain's [Obs.Trace_context] (captured once at
    submission) is re-installed around every chunk, so request-scoped
    trace IDs propagate across the fan-out no matter which domain runs
    which chunk. *)

val parallel_iter : t -> ('a -> unit) -> 'a array -> unit
(** [parallel_iter pool f arr] runs [f] on every element, in parallel.
    Same exception contract as {!parallel_map}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over a list, preserving order. *)

(** Process-wide parallelism configuration.

    Entry points (the CLI's [--domains N], the bench driver) set the
    degree once; libraries default their [?pool] argument to
    {!Config.pool}. The default degree is [1] — sequential — so
    parallelism is always an explicit opt-in and the seed behaviour is
    preserved everywhere else. *)
module Config : sig
  val set_domains : int -> unit
  (** Set the process-wide parallelism degree and shut down any
      previously built global pool (a new one is built lazily at the
      next {!pool} call). [n <= 1] means sequential. *)

  val domains : unit -> int
  (** The configured degree (default [1]). *)

  val pool : unit -> t
  (** The lazily created process-wide pool, sized to {!domains}. *)
end
