(* Coalition policy sharing (paper Section III-A3, CASWiki).

   Two autonomous managed systems run the full AGENP loop (Figure 2) on
   CAV requests. AMS "alpha" operates long enough for its Policy
   Adaptation Point to learn a policy model; AMS "bravo" is freshly
   deployed. One gossip round through the shared policy repository
   transfers alpha's learned rules to bravo — after bravo's Policy
   Checking Point validates them against local evidence.

   Run with: dune exec examples/coalition_sharing.exe *)

let oracle context opt =
  let facts = Asp.Program.facts context in
  let find pred =
    List.find_map
      (fun (a : Asp.Atom.t) ->
        if a.Asp.Atom.pred = pred then
          match a.Asp.Atom.args with
          | [ Asp.Term.Fun (v, []) ] -> Some (`S v)
          | [ Asp.Term.Int v ] -> Some (`I v)
          | _ -> None
        else None)
      facts
  in
  let s = function Some (`S v) -> v | _ -> "" in
  let i = function Some (`I v) -> v | _ -> 0 in
  let scenario =
    { Workloads.Cav.task = s (find "task"); vehicle_loa = i (find "vehicle_loa");
      region_loa = i (find "region_loa"); weather = s (find "weather");
      time = s (find "time") }
  in
  let ok = Workloads.Cav.ground_truth scenario in
  match opt with "accept" -> ok | _ -> not ok

let spec : Agenp.Prep.pbms_spec =
  {
    Agenp.Prep.grammar_text =
      {| start -> decision {
           task_req(turn, 2). task_req(straight, 1).
           task_req(overtake, 4). task_req(park, 3).
           needed_loa(R) :- task(T), task_req(T, R).
         }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |};
    global_constraints = [];
  }

let make name seed =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  Agenp.Ams.create ~name ~seed ~spec ~space
    { Agenp.Ams.options = [ "accept"; "reject" ]; oracle; audit_rate = 0.3 }

let accuracy ams scenarios =
  let correct =
    List.length
      (List.filter
         (fun s ->
           let d =
             Agenp.Pdp.decide (Agenp.Ams.gpm ams)
               ~context:(Workloads.Cav.to_context s)
               ~options:[ "accept"; "reject" ]
           in
           (d.Serve.Decision.chosen = "accept") = Workloads.Cav.ground_truth s)
         scenarios)
  in
  float_of_int correct /. float_of_int (List.length scenarios)

let () =
  let alpha = make "alpha" 1 in
  let bravo = make "bravo" 2 in
  (* alpha operates: the closed loop observes, adapts, regenerates *)
  List.iter
    (fun s -> ignore (Agenp.Ams.handle_request alpha (Workloads.Cav.to_context s)))
    (Workloads.Cav.sample ~seed:100 40);
  Fmt.pr "alpha: %d adaptations, compliance %.2f, %d learned rules@."
    (Agenp.Ams.relearn_count alpha)
    (Agenp.Ams.compliance_rate alpha)
    (List.length (Agenp.Ams.hypothesis alpha));
  (* bravo gathers a little local evidence (needed to vet shared rules) *)
  List.iter
    (fun s ->
      Agenp.Ams.learn_from bravo ~context:(Workloads.Cav.to_context s) "accept"
        ~valid:(Workloads.Cav.ground_truth s))
    (Workloads.Cav.sample ~seed:300 10);
  let fresh = Workloads.Cav.sample ~seed:400 100 in
  Fmt.pr "bravo before sharing: accuracy %.2f@." (accuracy bravo fresh);
  let coalition = Agenp.Coalition.create () in
  Agenp.Coalition.add_member coalition alpha;
  Agenp.Coalition.add_member coalition bravo;
  let adopted = Agenp.Coalition.gossip_round coalition in
  Fmt.pr "gossip round: %d rules adopted across the coalition@." adopted;
  Fmt.pr "bravo after sharing:  accuracy %.2f@." (accuracy bravo fresh)
