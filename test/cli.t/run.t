The agenp command-line tool end to end: write a grammar, a context, an
example set and a hypothesis space, then solve / learn / save / check /
generate / explain.

  $ cat > prog.lp <<'ASP'
  > 1 { pick(a); pick(b) } 1. cost(a, 3). cost(b, 1).
  > :~ pick(X), cost(X, C). [C]
  > ASP
  $ agenp solve prog.lp --optimal
  Optimal (cost 1): {cost(a, 3), cost(b, 1), pick(b)}

  $ cat > g.asg <<'ASG'
  > start -> decision
  > decision -> "accept" { result(accept). } | "reject" { result(reject). }
  > ASG
  $ cat > ctx.lp <<'ASP'
  > weather(snow).
  > ASP
  $ cat > examples.txt <<'EX'
  > + accept | weather(sun).
  > - accept | weather(snow).
  > + reject | weather(snow).
  > EX
  $ cat > space.txt <<'SP'
  > 0 | :- result(accept)@1, weather(snow).
  > 0 | :- result(accept)@1, weather(sun).
  > 0 | :- result(reject)@1, weather(snow).
  > SP

  $ agenp learn g.asg examples.txt space.txt --save learned.asg
  [pr0] :- result(accept)@1, weather(snow).
  % cost 2, penalty 0
  % learned grammar written to learned.asg
  $ cat learned.asg
  start -> decision { :- result(accept)@1, weather(snow). }
  decision -> "accept" { result(accept). }
  decision -> "reject" { result(reject). }

  $ agenp check learned.asg accept -c ctx.lp
  INVALID
  [1]
  $ agenp check learned.asg reject -c ctx.lp
  VALID
  $ agenp generate learned.asg -c ctx.lp
  reject
  $ agenp explain learned.asg accept -c ctx.lp
  INVALID: at node []: :- result@1(accept), weather(snow). fired with result@1(accept), weather(snow)
  [1]

The interactive ASP session:

  $ printf 'p :- not q.\nq :- not p.\n:solve\n:quit\n' | agenp repl | grep -o 'Answer.*'
  Answer 1: {q}
  Answer 2: {p}

Ranked generation uses weak-constraint costs:

  $ cat > pref.asg <<'ASG'
  > start -> decision { :~ result(reject)@1. [1] }
  > decision -> "accept" { result(accept). } | "reject" { result(reject). }
  > ASG
  $ agenp generate pref.asg --ranked
  accept [cost 0]
  reject [cost 1]

Grounding is inspectable:

  $ cat > small.lp <<'ASP'
  > n(1..2). d(X + X) :- n(X).
  > ASP
  $ agenp ground small.lp
  n(1).
  n(2).
  d(2) :- n(1).
  d(4) :- n(2).
  % 4 atoms, 4 ground rules

Malformed input files are reported with their position, not a backtrace:

  $ cat > bad-examples.txt <<'EX'
  > + accept | weather(sun).
  > accept | weather(snow).
  > EX
  $ agenp learn g.asg bad-examples.txt space.txt
  agenp: bad-examples.txt:2: example line must start with '+' or '-': accept | weather(snow).
  [2]
  $ cat > bad-space.txt <<'SP'
  > 0 | :- result(accept)@1, weather(snow).
  > # comments and blank lines are fine
  > 
  > 0 : not a space line
  > SP
  $ agenp learn g.asg examples.txt bad-space.txt
  agenp: bad-space.txt:4: space line must be 'prods | rule': 0 : not a space line
  [2]

Every command takes --report (aggregate span/counter table) and --trace
(Chrome trace_event JSON). Timings vary run to run, so normalize numbers:

  $ agenp solve prog.lp --optimal --report | sed -E 's/ +[0-9]+\.[0-9]+//g; s/ +[0-9]+/ N/g'
  Optimal (cost N): {cost(a, N), cost(b, N), pick(b)}
  span                                    count    total(s)     mean(s)      p50(s)      p90(s)      p99(s)      max(s)
  asp.ground N
  asp.solve N
  
  counter                                   value
  agenp.padap.relearns N
  agenp.pdp.fallbacks N
  agenp.pep.noncompliant N
  asg.hypothesis_evals N
  asp.ground.calls N
  asp.ground.delta_rounds N
  asp.ground.join_tuples N
  asp.ground.possible_atoms N
  asp.ground.rules N
  asp.solve.calls N
  asp.solve.conflicts N
  asp.solve.decisions N
  asp.solve.gl_checks N
  asp.solve.models N
  asp.solve.propagations N
  explain.derivation_calls N
  explain.why_calls N
  explain.why_not_calls N
  ilp.candidate_evals N
  ilp.candidates N
  ilp.hypothesis_evals N
  ilp.kill_cells N
  ilp.nodes_pruned N
  ilp.search_nodes N
  ilp.witnesses_truncated N

The pipeline subcommand drives the XACML closed loop; its trace covers
all three layers (asp.*, ilp.*, agenp.*):

  $ agenp pipeline --requests 20 --trace trace.json 2>/dev/null
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned
  $ grep -c '"cat":"asp"' trace.json > /dev/null && echo asp-spans
  asp-spans
  $ grep -c '"cat":"ilp"' trace.json > /dev/null && echo ilp-spans
  ilp-spans
  $ grep -c '"cat":"agenp"' trace.json > /dev/null && echo agenp-spans
  agenp-spans

Profiling flags: --gc-stats grows the report with allocation columns,
--flamegraph exports folded stacks (or speedscope JSON when the file
ends in .json), and --log captures leveled JSONL records that carry the
enclosing span's context:

  $ agenp pipeline --requests 20 --report --gc-stats 2>/dev/null | sed -E 's/ +-?[0-9]+\.[0-9]+//g; s/ +-?[0-9]+/ N/g' | head -8
  20 request(s), compliance, N adaptation(s), N rule(s) learned
  span                                    count    total(s)     mean(s)      p50(s)      p90(s)      p99(s)      max(s)       minor(w)  promoted(w)  majgc
  agenp.ams.request N N N N
  agenp.padap.relearn N N N N
  agenp.pdp.decide N N N N
  agenp.pep.enforce N N N N
  agenp.pip.poll N N N N
  agenp.prep.refine N N N N

  $ agenp pipeline --requests 20 --flamegraph profile.folded 2>/dev/null
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned
  $ cut -d ' ' -f 1 profile.folded | sort -u | head -4
  agenp.ams.request
  agenp.ams.request;agenp.padap.relearn
  agenp.ams.request;agenp.padap.relearn;asg.membership
  agenp.ams.request;agenp.padap.relearn;asg.membership;asg.tree_eval

  $ agenp pipeline --requests 20 --flamegraph profile.json 2>/dev/null
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned
  $ grep -c 'speedscope.app/file-format-schema.json' profile.json
  1

  $ agenp pipeline --requests 20 --log run.log 2>/dev/null
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned
  $ grep -o '"msg": "grounded program"' run.log | sort -u
  "msg": "grounded program"

Unwritable output paths are reported as errors, not backtraces:

  $ agenp pipeline --requests 2 --flamegraph /nonexistent/x.folded 2>&1 >/dev/null
  agenp: /nonexistent/x.folded: No such file or directory
  [2]
  $ agenp pipeline --requests 2 --log /nonexistent/x.jsonl 2>&1 >/dev/null
  agenp: /nonexistent/x.jsonl: No such file or directory
  [2]

The serve subcommand answers decision requests through the two-tier
caching engine: requests are 'options | context' lines, repeats come
back from the decision memo, and --stats shows both tiers. The engine's
span and counters flow through the observability report like everything
else:

  $ cat > requests.txt <<'REQ'
  > accept reject | weather(snow).
  > accept reject | weather(sun).
  > accept reject | weather(snow).
  > REQ
  $ agenp serve learned.asg requests.txt --repeat 2 --stats
  reject [cold]
  accept [ground]
  reject [memo]
  reject [memo]
  accept [memo]
  reject [memo]
  decisions: 2/256 entries, 4 hit(s), 2 miss(es), 0 eviction(s), 0 collision(s), rate 0.67
  grounds:   2/512 entries, 2 hit(s), 2 miss(es), 0 eviction(s), 0 collision(s), rate 0.50
  delta:     4 ground(s), 8 fact(s), 9 rule(s) added, 0 fallback(s)
  $ agenp serve learned.asg requests.txt --report | sed -E 's/ +[0-9]+\.[0-9]+//g; s/ +[0-9]+/ N/g'
  reject [cold]
  accept [ground]
  reject [memo]
  span                                    count    total(s)     mean(s)      p50(s)      p90(s)      p99(s)      max(s)
  asp.ground N
  serve.decide N
  
  window                                last(s)    count   rate(/s)      p50(s)      p90(s)      p99(s)
  serve.decide N N
  
  counter                                   value
  agenp.padap.relearns N
  agenp.pdp.fallbacks N
  agenp.pep.noncompliant N
  asg.hypothesis_evals N
  asp.ground.calls N
  asp.ground.delta_rounds N
  asp.ground.join_tuples N
  asp.ground.possible_atoms N
  asp.ground.rules N
  asp.solve.calls N
  asp.solve.conflicts N
  asp.solve.decisions N
  asp.solve.gl_checks N
  asp.solve.models N
  asp.solve.propagations N
  explain.derivation_calls N
  explain.why_calls N
  explain.why_not_calls N
  ilp.candidate_evals N
  ilp.candidates N
  ilp.hypothesis_evals N
  ilp.kill_cells N
  ilp.nodes_pruned N
  ilp.search_nodes N
  ilp.witnesses_truncated N
  serve.cluster.coalesced N
  serve.cluster.rejected N
  serve.decision_cache.collisions N
  serve.decision_cache.evictions N
  serve.decision_cache.hits N
  serve.decision_cache.misses N
  serve.delta.facts N
  serve.delta.fallbacks N
  serve.delta.grounds N
  serve.delta.rules N
  serve.ground_cache.collisions N
  serve.ground_cache.evictions N
  serve.ground_cache.hits N
  serve.ground_cache.misses N
  serve.requests N



Batched serving fans across the domain pool but still prints decisions
in input order:

  $ agenp serve learned.asg requests.txt --batch --domains 2
  reject
  accept
  reject

A request line without options is a positioned input error:

  $ echo ' | weather(snow).' > bad-requests.txt
  $ agenp serve learned.asg bad-requests.txt
  agenp: bad-requests.txt:1: no options on line
  [2]

Multi-tenant serving: --tenants N shards the engine per simulated
tenant (t0..tN-1), round-robining the request stream through the
cluster's bounded ingestion queue. Responses carry shard provenance;
the two identical t0 requests in each pass coalesce into one
computation; --stats shows each shard's isolated tiers plus the
cluster counters:

  $ agenp serve learned.asg requests.txt --tenants 2 --repeat 2 --stats
  reject [t0 cold]
  accept [t1 cold]
  reject [t0 cold]
  reject [t0 memo]
  accept [t1 memo]
  reject [t0 memo]
  shard t0:
  decisions: 1/256 entries, 1 hit(s), 1 miss(es), 0 eviction(s), 0 collision(s), rate 0.50
  grounds:   2/512 entries, 0 hit(s), 2 miss(es), 0 eviction(s), 0 collision(s), rate 0.00
  delta:     2 ground(s), 4 fact(s), 5 rule(s) added, 0 fallback(s)
  shard t1:
  decisions: 1/256 entries, 1 hit(s), 1 miss(es), 0 eviction(s), 0 collision(s), rate 0.50
  grounds:   2/512 entries, 0 hit(s), 2 miss(es), 0 eviction(s), 0 collision(s), rate 0.00
  delta:     2 ground(s), 4 fact(s), 4 rule(s) added, 0 fallback(s)
  cluster: 6 submitted, 2 coalesced, 0 rejected

--metrics-once with --tenants renders the cluster exposition with
per-shard gauges labeled by tenant:

  $ agenp serve learned.asg requests.txt --tenants 2 --metrics-once 2>/dev/null | grep -E '^agenp_serve_shard_requests|^agenp_serve_cluster_queue_depth'
  agenp_serve_cluster_queue_depth 64
  agenp_serve_shard_requests{tenant="t0"} 1
  agenp_serve_shard_requests{tenant="t1"} 1

Tenant-path input errors are reported, not crashed on; flags that need
a single engine's view are rejected:

  $ agenp serve learned.asg requests.txt --tenants 0
  agenp: --tenants must be at least 1
  [2]
  $ agenp serve learned.asg requests.txt --tenants 2 --queue-depth 0
  agenp: --queue-depth must be at least 1
  [2]
  $ agenp serve learned.asg requests.txt --tenants 2 --batch
  agenp: --batch is not supported with --tenants (per-shard state has no single-engine view)
  [2]
  $ agenp serve learned.asg requests.txt --tenants 2 --stats-json s.json
  agenp: --stats-json is not supported with --tenants (per-shard state has no single-engine view)
  [2]
  $ agenp serve learned.asg requests.txt --tenants 2 --audit a.jsonl
  agenp: --audit is not supported with --tenants (per-shard state has no single-engine view)
  [2]

The ops plane. --stats-json writes the schema'd engine statistics and
--audit exports the per-decision audit trail as JSONL; every record
carries a distinct trace ID (the one on the request's spans and logs):

  $ agenp serve learned.asg requests.txt --stats-json stats.json --audit audit.jsonl 2>/dev/null
  reject [cold]
  accept [ground]
  reject [memo]
  $ grep -o '"schema": "serve-stats/4"' stats.json
  "schema": "serve-stats/4"
  $ grep -c '"health":' stats.json
  1
  $ grep -oE '"trace": "[^"]*"' audit.jsonl | sort -u | wc -l
  3

The audit subcommand queries an exported trail — human table or JSONL
re-emission, tailed with --last (sequence numbers, trace IDs and
latencies vary, so normalize them):

  $ agenp audit audit.jsonl --last 2 | sed -E 's/^ +[0-9]+ [^ ]+/N ID/; s/[0-9]+\.[0-9]+s/T/'
  N ID accept [ground] T
  N ID reject [memo] T
  % 2 record(s)
  $ agenp audit audit.jsonl --json | wc -l
  3

The monitor subcommand replays requests and prints the rolling-window /
SLO ops view:

  $ agenp monitor learned.asg requests.txt --repeat 2 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g'
  served N request(s): memo rate N, ground rate N
  window serve.decide (last Ns): count N, rate N/s, pN Ns, pN Ns, pN Ns
  slo serve.decide: target Ns, objective N over Ns
      seen N, breach(es) N, compliance N, burn N, budget N

--metrics-once prints the OpenMetrics exposition that --metrics-port
serves over HTTP, counters and per-tier cache gauges included:

  $ agenp serve learned.asg requests.txt --metrics-once 2>/dev/null | grep -E '^(# TYPE agenp_serve_requests |agenp_serve_requests_total|agenp_serve_cache_entries|# EOF)'
  # TYPE agenp_serve_requests counter
  agenp_serve_requests_total 3
  agenp_serve_cache_entries{tier="decision"} 2
  agenp_serve_cache_entries{tier="ground"} 2
  # EOF

The pipeline routed through the serving engine (--serve) is
output-identical to the uncached run — caches change latency, never
decisions:

  $ agenp pipeline --requests 20 --serve
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned

The policy-health plane. --health exports the process-wide health-event
ring (detector rate-shift alarms, PAdaP relearn lifecycle events) as
JSONL; the pipeline's adaptation shows up as a relearn event carrying
the trigger reason, the examples consumed, and the accuracy delta:

  $ agenp pipeline --requests 20 --serve --health health.jsonl
  20 request(s), compliance 0.650, 1 adaptation(s), 1 rule(s) learned
  % health: 1 event(s) -> health.jsonl

The health subcommand renders the trail as a table (seq, signal, kind,
GPM version, observations, baseline->current with the delta, detail):

  $ agenp health health.jsonl
       0 padap.relearn      relearn    v3   n=20   0.650->0.800 (+0.150) violation_rate:updated
  % 1 event(s)
  $ agenp health health.jsonl --last 1
       0 padap.relearn      relearn    v3   n=20   0.650->0.800 (+0.150) violation_rate:updated
  % 1 event(s)

--json re-emits the events under the health/1 schema (timestamps vary,
so normalize them):

  $ agenp health health.jsonl --json | sed -E 's/"ts": [0-9.]+/"ts": T/'
  {"schema": "health/1", "events": [{"seq": 0, "ts": T, "signal": "padap.relearn", "kind": "relearn", "gpm_version": 3, "observations": 20, "baseline": 0.650000, "current": 0.800000, "deviation": 0.150000, "old_size": 0, "new_size": 1, "detail": "violation_rate:updated"}]}

--since-version filters by the GPM version on the event; an empty
selection still prints the trailer:

  $ agenp health health.jsonl --since-version 3
       0 padap.relearn      relearn    v3   n=20   0.650->0.800 (+0.150) violation_rate:updated
  % 1 event(s)
  $ agenp health health.jsonl --since-version 999
  % 0 event(s)

A healthy serve run exports an empty ring:

  $ agenp serve learned.asg requests.txt --health quiet.jsonl >/dev/null
  % health: 0 event(s) -> quiet.jsonl
  $ agenp health quiet.jsonl
  % 0 event(s)

Bad flags and malformed trails are input errors, not crashes:

  $ agenp health health.jsonl --bogus
  agenp: unknown option '--bogus'.
  Usage: agenp health [OPTION]… FILE
  Try 'agenp health --help' or 'agenp --help' for more information.
  [124]
  $ echo 'not json' > bad.jsonl
  $ agenp health bad.jsonl
  agenp: bad.jsonl: bad health JSONL: expected 'u' at 1
  [2]
