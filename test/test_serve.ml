(* Tests for the decision-serving layer: the LRU eviction policy, the
   typed No_options error, cache provenance and invalidation, the
   cached-equals-uncached differential property, and batch determinism
   across pool sizes. *)

(* ---- fixtures --------------------------------------------------------- *)

(* the weather grammar of the CLI cram test: accept is forbidden in snow *)
let snow_grammar =
  {| start -> decision { :- result(accept)@1, weather(snow). }
     decision -> "accept" { result(accept). }
     decision -> "reject" { result(reject). } |}

(* a stricter variant: accept is only admitted in sun *)
let sun_only_grammar =
  {| start -> decision { :- result(accept)@1, not weather(sun). }
     decision -> "accept" { result(accept). }
     decision -> "reject" { result(reject). } |}

(* no constraints at all: everything is admitted *)
let free_grammar =
  {| start -> decision
     decision -> "accept" { result(accept). }
     decision -> "reject" { result(reject). } |}

let gpm_of text = Asg.Asg_parser.parse text
let ctx text = Asp.Parser.parse_program text

let snow = ctx "weather(snow)."
let sun = ctx "weather(sun)."
let fog = ctx "weather(fog)."

let request ?priority ?deadline context options =
  Serve.Request.make ?priority ?deadline ~context ~options ()

let decision_t =
  Alcotest.testable Serve.Decision.pp Serve.Decision.equal

(* ---- LRU -------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let l = Serve.Lru.create ~capacity:3 () in
  Alcotest.(check (option string)) "no eviction" None (Serve.Lru.add l "a" 1);
  ignore (Serve.Lru.add l "b" 2);
  ignore (Serve.Lru.add l "c" 3);
  Alcotest.(check (list string))
    "newest first" [ "c"; "b"; "a" ]
    (Serve.Lru.keys_newest_first l);
  (* a hit promotes: "a" becomes newest, "b" becomes the LRU *)
  Alcotest.(check (option int)) "find a" (Some 1) (Serve.Lru.find l "a");
  Alcotest.(check (option string))
    "b evicted, not a" (Some "b")
    (Serve.Lru.add l "d" 4);
  Alcotest.(check (list string))
    "order after eviction" [ "d"; "a"; "c" ]
    (Serve.Lru.keys_newest_first l);
  Alcotest.(check int) "one eviction" 1 (Serve.Lru.evictions l);
  Alcotest.(check bool) "b gone" false (Serve.Lru.mem l "b")

let test_lru_replace_promotes () =
  let l = Serve.Lru.create ~capacity:2 () in
  ignore (Serve.Lru.add l "a" 1);
  ignore (Serve.Lru.add l "b" 2);
  (* replacing "a" promotes it, so the next eviction takes "b" *)
  Alcotest.(check (option string)) "replace, no eviction" None
    (Serve.Lru.add l "a" 10);
  Alcotest.(check (option int)) "replaced value" (Some 10)
    (Serve.Lru.find l "a");
  Alcotest.(check (option string)) "b evicted" (Some "b")
    (Serve.Lru.add l "c" 3)

let test_lru_clear () =
  let l = Serve.Lru.create ~capacity:1 () in
  ignore (Serve.Lru.add l 1 "x");
  ignore (Serve.Lru.add l 2 "y");
  Alcotest.(check int) "eviction counted" 1 (Serve.Lru.evictions l);
  Serve.Lru.clear l;
  Alcotest.(check int) "empty" 0 (Serve.Lru.length l);
  Alcotest.(check int) "evictions reset" 0 (Serve.Lru.evictions l);
  Alcotest.(check (list int)) "no keys" [] (Serve.Lru.keys_newest_first l);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Serve.Lru.create ~capacity:0 ()))

(* ---- structural hashing / pre-grounded cores -------------------------- *)

let test_fingerprint () =
  let p1 = ctx "p(1). q(X) :- p(X)." in
  let p2 = ctx "p(1). q(X) :- p(X)." in
  let p3 = ctx "p(2). q(X) :- p(X)." in
  Alcotest.(check bool) "equal programs" true (Asp.Program.equal p1 p2);
  Alcotest.(check bool)
    "equal fingerprints" true
    (Asp.Program.fingerprint p1 = Asp.Program.fingerprint p2);
  Alcotest.(check bool) "different programs" false (Asp.Program.equal p1 p3);
  Alcotest.(check bool)
    "different fingerprints" false
    (Asp.Program.fingerprint p1 = Asp.Program.fingerprint p3)

let test_ground_with () =
  let p = ctx "p(1). p(2). q(X) :- p(X)." in
  let gp = Asp.Grounder.ground p in
  (* matching core: returned unchanged, no regrounding *)
  let gp' = Asp.Grounder.ground_with ~core:(p, gp) p in
  Alcotest.(check bool) "core reused" true (gp == gp');
  (* mismatched core: falls back to grounding the real program *)
  let q = ctx "p(3). q(X) :- p(X)." in
  let gq = Asp.Grounder.ground_with ~core:(p, gp) q in
  Alcotest.(check bool) "mismatch reground" false (gq == gp);
  Alcotest.(check int)
    "same as direct grounding"
    (Asp.Grounder.size (Asp.Grounder.ground q))
    (Asp.Grounder.size gq)

(* ---- No_options ------------------------------------------------------- *)

let test_no_options () =
  let gpm = gpm_of snow_grammar in
  Alcotest.check_raises "uncached" Serve.No_options (fun () ->
      ignore (Serve.decide_uncached gpm (request sun [])));
  let engine = Serve.create gpm in
  Alcotest.check_raises "engine" Serve.No_options (fun () ->
      ignore (Serve.decide engine (request sun [])));
  (* the PDP surfaces the same typed error (regression: this used to be
     an untyped Invalid_argument) *)
  Alcotest.check_raises "pdp" Agenp.Pdp.No_options (fun () ->
      ignore (Agenp.Pdp.decide gpm ~context:sun ~options:[]))

(* ---- provenance and invalidation -------------------------------------- *)

let prov = function
  | Serve.Cold -> "cold"
  | Serve.Ground_hit -> "ground"
  | Serve.Memo_hit -> "memo"

let test_provenance () =
  let engine = Serve.create (gpm_of snow_grammar) in
  let req = request snow [ "accept"; "reject" ] in
  let r1 = Serve.decide engine req in
  Alcotest.(check string) "first is cold" "cold" (prov r1.Serve.Response.provenance);
  Alcotest.(check string) "snow rejects" "reject"
    r1.Serve.Response.decision.Serve.Decision.chosen;
  let r2 = Serve.decide engine req in
  Alcotest.(check string) "second is memo" "memo" (prov r2.Serve.Response.provenance);
  Alcotest.check decision_t "identical decision" r1.Serve.Response.decision
    r2.Serve.Response.decision;
  (* a different options list misses the memo but reuses the ground
     programs induced for the shared options *)
  let r3 = Serve.decide engine (request snow [ "accept" ]) in
  Alcotest.(check string) "ground tier hit" "ground"
    (prov r3.Serve.Response.provenance);
  Alcotest.(check bool) "accept is the fail-safe here" true
    r3.Serve.Response.decision.Serve.Decision.fallback_used;
  let st = Serve.stats engine in
  Alcotest.(check bool) "memo hits counted" true
    (st.Serve.decisions.Serve.hits > 0);
  Alcotest.(check bool) "ground hits counted" true
    (st.Serve.grounds.Serve.hits > 0);
  (* invalidate drops both tiers: the same request is cold again *)
  Serve.invalidate engine;
  let r4 = Serve.decide engine req in
  Alcotest.(check string) "cold after invalidate" "cold"
    (prov r4.Serve.Response.provenance);
  Alcotest.check decision_t "still the same decision" r1.Serve.Response.decision
    r4.Serve.Response.decision

let test_set_gpm_invalidates () =
  let g_snow = gpm_of snow_grammar in
  let g_free = gpm_of free_grammar in
  let engine = Serve.create g_snow in
  let req = request snow [ "accept"; "reject" ] in
  Alcotest.(check string) "snow model rejects" "reject"
    (Serve.decide engine req).Serve.Response.decision.Serve.Decision.chosen;
  Serve.set_gpm engine g_free;
  let r = Serve.decide engine req in
  Alcotest.(check string) "fresh model's decision, not the memo's" "accept"
    r.Serve.Response.decision.Serve.Decision.chosen;
  Alcotest.(check bool) "new model version reported" true
    (r.Serve.Response.gpm_version = Asg.Gpm.version g_free);
  (* versions also change through derivation: with_hypothesis on the
     served model must never replay its memo entries *)
  Alcotest.(check bool) "derivations bump versions" false
    (Asg.Gpm.version g_snow = Asg.Gpm.version (Asg.Gpm.with_context g_snow snow))

(* ---- the differential property ---------------------------------------- *)

(* Random op sequences against one engine with deliberately tiny caches
   (so evictions happen constantly), with every decision checked against
   the cache-free reference on the same model. Ops: decide on a random
   (context, options), swap the served model, drop the caches. *)
let differential_prop =
  let models =
    [| gpm_of snow_grammar; gpm_of sun_only_grammar; gpm_of free_grammar |]
  in
  let contexts = [| snow; sun; fog; Asp.Program.empty |] in
  let option_sets =
    [| [ "accept"; "reject" ]; [ "reject"; "accept" ]; [ "accept" ]; [ "reject" ] |]
  in
  let gen_op =
    QCheck2.Gen.(
      frequency
        [
          ( 6,
            map2
              (fun c o -> `Decide (c, o))
              (int_bound (Array.length contexts - 1))
              (int_bound (Array.length option_sets - 1)) );
          (1, map (fun m -> `Set_gpm m) (int_bound (Array.length models - 1)));
          (1, return `Invalidate);
        ])
  in
  QCheck2.Test.make ~name:"cached decisions = uncached, under churn" ~count:40
    QCheck2.Gen.(list_size (int_range 5 25) gen_op)
    (fun ops ->
      let engine =
        Serve.create
          ~config:
            {
              Serve.Config.default with
              Serve.Config.caching =
                { Serve.Config.decision_cache = 4; ground_cache = 4 };
            }
          models.(0)
      in
      List.for_all
        (fun op ->
          match op with
          | `Set_gpm m ->
            Serve.set_gpm engine models.(m);
            true
          | `Invalidate ->
            Serve.invalidate engine;
            true
          | `Decide (c, o) ->
            let req = request contexts.(c) option_sets.(o) in
            let cached = (Serve.decide engine req).Serve.Response.decision in
            let reference = Serve.decide_uncached (Serve.gpm engine) req in
            Serve.Decision.equal cached reference)
        ops)

(* ---- batch determinism ------------------------------------------------ *)

let batch_requests () =
  (* priorities deliberately shuffled; decisions must come back in input
     order at every pool size *)
  [
    request ~priority:1 snow [ "accept"; "reject" ];
    request ~priority:5 sun [ "accept"; "reject" ];
    request ~priority:3 fog [ "accept"; "reject" ];
    request ~priority:5 snow [ "reject"; "accept" ];
    request ~priority:0 sun [ "reject" ];
    request ~priority:2 snow [ "accept"; "reject" ];
  ]

(* the dispatch order itself: priority first, then earliest deadline
   (requests without one go last), then input position *)
let test_batch_schedule_deadlines () =
  let reqs =
    [|
      request ~priority:1 snow [ "accept" ];
      (* 0 *)
      request ~priority:5 ~deadline:0.9 sun [ "accept" ];
      (* 1 *)
      request ~priority:5 ~deadline:0.1 fog [ "accept" ];
      (* 2 *)
      request ~priority:5 snow [ "accept" ];
      (* 3: no deadline, last in its class *)
      request ~priority:5 ~deadline:0.1 sun [ "accept" ];
      (* 4: ties with 2 on (priority, deadline); input order breaks it *)
      request ~priority:1 ~deadline:0.5 fog [ "accept" ];
      (* 5 *)
    |]
  in
  Alcotest.(check (array int))
    "priority desc, deadline asc, index asc" [| 2; 4; 1; 3; 5; 0 |]
    (Serve.Batch.schedule reqs)

let batch_deadline_requests () =
  [
    request ~priority:1 ~deadline:0.2 snow [ "accept"; "reject" ];
    request ~priority:5 sun [ "accept"; "reject" ];
    request ~priority:5 ~deadline:0.1 fog [ "accept"; "reject" ];
    request ~priority:5 ~deadline:0.4 snow [ "reject"; "accept" ];
    request ~priority:1 sun [ "reject" ];
    request ~priority:1 ~deadline:0.2 snow [ "accept"; "reject" ];
  ]

(* deadline-aware scheduling must not disturb input-order responses or
   decisions at any pool size *)
let test_batch_deadline_determinism () =
  let gpm = gpm_of sun_only_grammar in
  let reqs = batch_deadline_requests () in
  let reference = List.map (Serve.decide_uncached gpm) reqs in
  List.iter
    (fun domains ->
      let pool = Par.create ~domains () in
      let engine = Serve.create gpm in
      let batched =
        List.map
          (fun (r : Serve.Response.t) -> r.Serve.Response.decision)
          (Serve.Batch.run ~pool engine reqs)
      in
      Par.shutdown pool;
      Alcotest.(check (list decision_t))
        (Printf.sprintf "deadlines don't reorder responses at %d domain(s)"
           domains)
        reference batched)
    [ 1; 2; 4 ]

let test_batch_determinism () =
  let gpm = gpm_of sun_only_grammar in
  let reqs = batch_requests () in
  let reference = List.map (Serve.decide_uncached gpm) reqs in
  List.iter
    (fun domains ->
      let pool = Par.create ~domains () in
      let engine = Serve.create gpm in
      let batched =
        List.map
          (fun (r : Serve.Response.t) -> r.Serve.Response.decision)
          (Serve.Batch.run ~pool engine reqs)
      in
      Par.shutdown pool;
      Alcotest.(check (list decision_t))
        (Printf.sprintf "input order preserved at %d domain(s)" domains)
        reference batched)
    [ 1; 2; 4 ];
  (* an empty batch is a no-op, not a pool round-trip *)
  let engine = Serve.create gpm in
  Alcotest.(check int) "empty batch" 0
    (List.length (Serve.Batch.run engine []))

(* ---- the ops plane: trace IDs, audit ring, stats JSON, /metrics ------- *)

(* every response carries a trace ID, and the engine's audit ring
   records the same ID alongside the decision *)
let test_audit_records_decisions () =
  let engine = Serve.create (gpm_of snow_grammar) in
  let r1 = Serve.decide engine (request snow [ "accept"; "reject" ]) in
  let r2 = Serve.decide engine (request sun [ "accept"; "reject" ]) in
  Alcotest.(check bool) "trace ids non-empty" true
    (r1.Serve.Response.trace_id <> "" && r2.Serve.Response.trace_id <> "");
  Alcotest.(check bool) "trace ids unique" true
    (r1.Serve.Response.trace_id <> r2.Serve.Response.trace_id);
  match Serve.audit engine with
  | None -> Alcotest.fail "default config keeps an audit ring"
  | Some ring ->
    let records = Serve.Audit.to_list ring in
    Alcotest.(check int) "one record per decision" 2 (List.length records);
    Alcotest.(check (list string))
      "audit trace ids match the responses"
      [ r1.Serve.Response.trace_id; r2.Serve.Response.trace_id ]
      (List.map (fun (r : Serve.Audit.record) -> r.trace_id) records);
    Alcotest.(check (list string))
      "decisions recorded" [ "reject"; "accept" ]
      (List.map (fun (r : Serve.Audit.record) -> r.chosen) records);
    let r = List.hd records in
    Alcotest.(check int) "context fingerprint recorded"
      (Asp.Program.fingerprint snow) r.Serve.Audit.context_fp;
    Alcotest.(check string) "provenance recorded" "cold"
      r.Serve.Audit.provenance;
    (* a cold decision missed the ground cache at least once; the
       per-request counts land in the audit record *)
    Alcotest.(check bool) "ground misses recorded" true
      (r.Serve.Audit.ground_misses > 0)

(* wraparound: a ring of capacity n keeps exactly the newest n records,
   oldest first, with seq/total still counting everything ever added *)
let test_audit_wraparound () =
  let ring = Serve.Audit.create ~capacity:4 in
  let add i =
    ignore
      (Serve.Audit.add ring ~ts:(float_of_int i) ~trace_id:(string_of_int i)
         ~context_fp:i ~gpm_version:0 ~options:[ "a" ] ~chosen:"a"
         ~fallback_used:false ~compliant:None ~provenance:"cold"
         ~ground_hits:0 ~ground_misses:0 ~latency:0.0)
  in
  for i = 0 to 9 do
    add i
  done;
  Alcotest.(check int) "total counts everything" 10 (Serve.Audit.total ring);
  Alcotest.(check int) "length is the capacity" 4 (Serve.Audit.length ring);
  Alcotest.(check (list int))
    "newest 4 in order" [ 6; 7; 8; 9 ]
    (List.map
       (fun (r : Serve.Audit.record) -> r.seq)
       (Serve.Audit.to_list ring));
  Alcotest.(check (list int))
    "to_list ~last tails further" [ 8; 9 ]
    (List.map
       (fun (r : Serve.Audit.record) -> r.seq)
       (Serve.Audit.to_list ~last:2 ring))

(* the JSONL export round-trips every field, including the hex-encoded
   fingerprint and the three-valued compliance verdict *)
let test_audit_jsonl_roundtrip () =
  let mk seq compliant =
    {
      Serve.Audit.seq;
      ts = 12.5;
      trace_id = Printf.sprintf "abc-%06d" seq;
      context_fp = Asp.Program.fingerprint snow;
      gpm_version = 3;
      options = [ "accept"; "reject" ];
      chosen = "reject";
      fallback_used = seq = 1;
      compliant;
      provenance = "memo";
      ground_hits = seq;
      ground_misses = 2 - seq;
      latency = 0.25;
    }
  in
  let records = [ mk 0 None; mk 1 (Some true); mk 2 (Some false) ] in
  let path = Filename.temp_file "serve_audit" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Serve.Audit.write_jsonl path records;
  let back = Serve.Audit.read_jsonl path in
  Alcotest.(check int) "all lines parsed" 3 (List.length back);
  List.iter2
    (fun (a : Serve.Audit.record) (b : Serve.Audit.record) ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d round-trips" a.seq)
        true (a = b))
    records back

(* batch fan-out: every response gets its own child trace ID, unique
   across the batch and recorded in the audit trail, at every pool size *)
let test_batch_trace_ids () =
  let gpm = gpm_of sun_only_grammar in
  let reqs = batch_requests () in
  List.iter
    (fun domains ->
      let pool = Par.create ~domains () in
      let engine = Serve.create gpm in
      let responses = Serve.Batch.run ~pool engine reqs in
      Par.shutdown pool;
      let ids =
        List.map (fun (r : Serve.Response.t) -> r.Serve.Response.trace_id)
          responses
      in
      Alcotest.(check bool)
        (Printf.sprintf "no empty ids at %d domain(s)" domains)
        true
        (List.for_all (fun id -> id <> "") ids);
      Alcotest.(check int)
        (Printf.sprintf "ids unique across the batch at %d domain(s)" domains)
        (List.length ids)
        (List.length (List.sort_uniq String.compare ids));
      match Serve.audit engine with
      | None -> Alcotest.fail "audit ring expected"
      | Some ring ->
        let audited =
          List.map
            (fun (r : Serve.Audit.record) -> r.trace_id)
            (Serve.Audit.to_list ring)
        in
        Alcotest.(check (list string))
          (Printf.sprintf "audit ids = response ids at %d domain(s)" domains)
          (List.sort String.compare ids)
          (List.sort String.compare audited))
    [ 1; 2; 4 ]

let test_stats_json () =
  let engine = Serve.create (gpm_of snow_grammar) in
  let req = request snow [ "accept"; "reject" ] in
  ignore (Serve.decide engine req);
  ignore (Serve.decide engine req);
  let j = Obs.Json.parse (Serve.stats_to_json engine) in
  Alcotest.(check string) "schema" "serve-stats/4"
    Obs.Json.(to_str (member "schema" j));
  Alcotest.(check (float 1e-9)) "requests" 2.0
    Obs.Json.(to_num (member "requests" j));
  let d = Obs.Json.member "decision_cache" j in
  Alcotest.(check (float 1e-9)) "memo hits" 1.0
    Obs.Json.(to_num (member "hits" d));
  Alcotest.(check (float 1e-9)) "memo hit rate" 0.5
    Obs.Json.(to_num (member "hit_rate" d));
  Alcotest.(check (float 1e-9)) "ground capacity" 512.0
    Obs.Json.(to_num (member "capacity" (member "ground_cache" j)));
  (* serve-stats/4: collisions are their own field, not folded into
     evictions *)
  Alcotest.(check (float 1e-9)) "no memo collisions" 0.0
    Obs.Json.(to_num (member "collisions" d));
  Alcotest.(check (float 1e-9)) "no ground collisions" 0.0
    Obs.Json.(to_num (member "collisions" (member "ground_cache" j)));
  (* the snow context is fact-only, so the one cold decision ran as
     delta grounds over frozen cores, never a fallback *)
  let delta = Obs.Json.member "delta" j in
  Alcotest.(check bool) "delta grounds counted" true
    Obs.Json.(to_num (member "grounds" delta) > 0.0);
  Alcotest.(check bool) "delta facts counted" true
    Obs.Json.(to_num (member "facts" delta) > 0.0);
  Alcotest.(check (float 1e-9)) "no fallbacks" 0.0
    Obs.Json.(to_num (member "fallbacks" delta));
  Alcotest.(check (float 1e-9)) "audit retained" 2.0
    Obs.Json.(to_num (member "retained" (member "audit" j)));
  (* the serve-stats/4 health section: the process-wide signal list and
     the total event count are always present *)
  let health = Obs.Json.member "health" j in
  Alcotest.(check bool) "health signals is a list" true
    (match Obs.Json.member "signals" health with
    | Obs.Json.List _ -> true
    | _ -> false);
  Alcotest.(check bool) "health events counted" true
    Obs.Json.(to_num (member "events" health) >= 0.0)

(* an engine with the trail disabled serves fine and reports it as null *)
let test_audit_disabled () =
  let engine =
    Serve.create
      ~config:
        { Serve.Config.default with Serve.Config.audit = { Serve.Config.capacity = 0 } }
      (gpm_of snow_grammar)
  in
  ignore (Serve.decide engine (request snow [ "accept"; "reject" ]));
  Alcotest.(check bool) "no ring" true (Serve.audit engine = None);
  let j = Obs.Json.parse (Serve.stats_to_json engine) in
  Alcotest.(check bool) "audit is null" true
    (Obs.Json.member "audit" j = Obs.Json.Null)

(* a live scrape: start the exposition server on an ephemeral port,
   fetch /metrics over a raw socket, and check the document shape *)
let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close sock) @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
  ignore (Unix.write_substring sock req 0 (String.length req));
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read sock chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      drain ()
  in
  drain ();
  Buffer.contents b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_metrics_scrape () =
  (* counters are process-wide; zero them so sample values are exact *)
  Obs.reset ();
  let engine = Serve.create (gpm_of snow_grammar) in
  ignore (Serve.decide engine (request snow [ "accept"; "reject" ]));
  let server =
    Serve.Metrics.start ~port:0 ~render:(fun () -> Serve.openmetrics engine) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Metrics.stop server) @@ fun () ->
  let port = Serve.Metrics.port server in
  Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
  let resp = http_get ~port "/metrics" in
  Alcotest.(check bool) "200" true (contains resp "HTTP/1.1 200 OK");
  Alcotest.(check bool) "content type" true
    (contains resp Obs.Openmetrics.content_type);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("body has " ^ needle) true (contains resp needle))
    [
      "agenp_serve_requests_total 1";
      "agenp_serve_decide_seconds{quantile=\"0.5\"}";
      "agenp_serve_decide_window_count";
      "agenp_serve_cache_hit_rate{tier=\"decision\"}";
      "agenp_serve_cache_entries{tier=\"ground\"}";
      "# EOF";
    ];
  (* consecutive scrapes work (connection-per-request) and other paths
     are 404s *)
  Alcotest.(check bool) "second scrape" true
    (contains (http_get ~port "/metrics") "# EOF");
  Alcotest.(check bool) "404 elsewhere" true
    (contains (http_get ~port "/nope") "404")

(* ---- the multi-tenant cluster ----------------------------------------- *)

let treq ?priority tenant context options =
  Serve.Request.make ?priority ~tenant ~context ~options ()

let served_exn = function
  | Serve.Cluster.Served r -> r
  | Serve.Cluster.Rejected reason ->
    Alcotest.failf "unexpected rejection: %s"
      (Serve.Cluster.reject_reason_to_string reason)

(* construction is strict: no tenants, duplicate tenants, and a
   zero-depth queue are caller bugs, not runtime states *)
let test_cluster_create_validation () =
  let gpm = gpm_of free_grammar in
  Alcotest.check_raises "empty tenants"
    (Invalid_argument "Serve.Cluster.create: at least one tenant required")
    (fun () -> ignore (Serve.Cluster.create ~tenants:[] ()));
  Alcotest.check_raises "duplicate tenant"
    (Invalid_argument "Serve.Cluster.create: duplicate tenant a") (fun () ->
      ignore (Serve.Cluster.create ~tenants:[ ("a", gpm); ("a", gpm) ] ()));
  Alcotest.check_raises "queue depth"
    (Invalid_argument "Serve.Cluster.create: queue_depth must be >= 1")
    (fun () ->
      ignore (Serve.Cluster.create ~queue_depth:0 ~tenants:[ ("a", gpm) ] ()))

(* an unowned tenant id is rejected on the spot, on both the queued and
   the synchronous path *)
let test_cluster_unknown_tenant () =
  let cluster =
    Serve.Cluster.create ~tenants:[ ("a", gpm_of free_grammar) ] ()
  in
  let req = treq "ghost" snow [ "accept"; "reject" ] in
  (match Serve.Cluster.poll (Serve.Cluster.submit cluster req) with
  | Some (Serve.Cluster.Rejected Serve.Cluster.Unknown_tenant) -> ()
  | _ -> Alcotest.fail "submit should resolve to Rejected Unknown_tenant");
  (match Serve.Cluster.decide cluster req with
  | Serve.Cluster.Rejected Serve.Cluster.Unknown_tenant -> ()
  | _ -> Alcotest.fail "decide should reject an unknown tenant");
  Alcotest.(check int) "rejections counted" 2 (Serve.Cluster.rejected cluster);
  Alcotest.(check int) "nothing queued" 0 (Serve.Cluster.queue_length cluster)

(* a full queue answers Rejected Queue_full immediately; what was
   accepted still drains to served outcomes *)
let test_cluster_backpressure () =
  let cluster =
    Serve.Cluster.create ~queue_depth:2
      ~tenants:[ ("a", gpm_of snow_grammar) ]
      ()
  in
  let req = treq "a" snow [ "accept"; "reject" ] in
  let accepted = [ Serve.Cluster.submit cluster req;
                   Serve.Cluster.submit cluster req ] in
  let overflow = [ Serve.Cluster.submit cluster req;
                   Serve.Cluster.submit cluster req ] in
  List.iter
    (fun tk ->
      match Serve.Cluster.poll tk with
      | Some (Serve.Cluster.Rejected Serve.Cluster.Queue_full) -> ()
      | _ -> Alcotest.fail "overflow must reject immediately")
    overflow;
  List.iter
    (fun tk ->
      Alcotest.(check bool) "accepted still pending" true
        (Serve.Cluster.poll tk = None))
    accepted;
  Alcotest.(check int) "queue at capacity" 2
    (Serve.Cluster.queue_length cluster);
  Alcotest.(check int) "drained" 2 (Serve.Cluster.drain cluster);
  List.iter
    (fun tk ->
      let r = served_exn (Serve.Cluster.await cluster tk) in
      Alcotest.(check string) "snow rejects" "reject"
        r.Serve.Response.decision.Serve.Decision.chosen;
      Alcotest.(check string) "shard provenance" "a" r.Serve.Response.shard)
    accepted;
  Alcotest.(check int) "rejections counted" 2 (Serve.Cluster.rejected cluster);
  Alcotest.(check int) "submissions counted" 2
    (Serve.Cluster.submitted cluster)

(* identical (tenant, context, options) submissions in one drain window
   resolve from a single computation; distinct tenants never coalesce *)
let test_cluster_coalescing () =
  let gpm = gpm_of snow_grammar in
  let cluster = Serve.Cluster.create ~tenants:[ ("a", gpm); ("b", gpm) ] () in
  let submit tenant = Serve.Cluster.submit cluster (treq tenant snow [ "accept"; "reject" ]) in
  let a_tks = List.init 3 (fun _ -> submit "a") in
  let b_tk = submit "b" in
  ignore (Serve.Cluster.drain cluster);
  (* 3 identical "a" submissions -> 1 computation; "b" is a different
     tenant so it computes on its own shard *)
  Alcotest.(check int) "two duplicates coalesced" 2
    (Serve.Cluster.coalesced cluster);
  let a_rs = List.map (fun tk -> served_exn (Serve.Cluster.await cluster tk)) a_tks in
  let b_r = served_exn (Serve.Cluster.await cluster b_tk) in
  let first = List.hd a_rs in
  List.iter
    (fun (r : Serve.Response.t) ->
      Alcotest.check decision_t "coalesced decisions equal"
        first.Serve.Response.decision r.Serve.Response.decision;
      Alcotest.(check string) "coalesced share one trace"
        first.Serve.Response.trace_id r.Serve.Response.trace_id)
    a_rs;
  Alcotest.(check bool) "b computed separately" true
    (b_r.Serve.Response.trace_id <> first.Serve.Response.trace_id);
  Alcotest.(check string) "b's shard" "b" b_r.Serve.Response.shard;
  (* only a's shard holds a's memo entry *)
  match Serve.Cluster.stats cluster with
  | [ ("a", a_st); ("b", b_st) ] ->
    Alcotest.(check int) "one memo entry per shard" 1
      a_st.Serve.decisions.Serve.entries;
    Alcotest.(check int) "b has its own entry" 1
      b_st.Serve.decisions.Serve.entries
  | _ -> Alcotest.fail "stats must list tenants in declaration order"

(* swapping one tenant's model touches only that shard: the other
   tenant's memo entries survive and still hit *)
let test_cluster_isolated_invalidation () =
  let g_snow = gpm_of snow_grammar in
  let cluster =
    Serve.Cluster.create ~tenants:[ ("a", g_snow); ("b", g_snow) ] ()
  in
  let warm tenant =
    served_exn (Serve.Cluster.decide cluster (treq tenant snow [ "accept"; "reject" ]))
  in
  ignore (warm "a");
  ignore (warm "b");
  let b_entries () =
    (List.assoc "b" (Serve.Cluster.stats cluster)).Serve.decisions.Serve.entries
  in
  Alcotest.(check int) "b's memo warmed" 1 (b_entries ());
  (* a version-bumped model for a: clears a's memo, must not touch b *)
  Serve.Cluster.set_gpm cluster ~tenant:"a"
    (Asg.Gpm.with_context g_snow Asp.Program.empty);
  Alcotest.(check int) "b's memo untouched" 1 (b_entries ());
  Alcotest.(check int) "a's memo cleared" 0
    (List.assoc "a" (Serve.Cluster.stats cluster)).Serve.decisions.Serve.entries;
  let rb = warm "b" in
  Alcotest.(check string) "b still served from its memo" "memo"
    (prov rb.Serve.Response.provenance);
  Alcotest.check_raises "unknown tenant"
    (Invalid_argument "Serve.Cluster.set_gpm: unknown tenant ghost")
    (fun () -> Serve.Cluster.set_gpm cluster ~tenant:"ghost" g_snow)

(* the tenant-isolation differential: random multi-tenant streams over
   shards running *different* models must, at every pool size, return
   exactly what each tenant's own model returns uncached — shard state
   never leaks across tenants, and outcomes never depend on domains *)
let cluster_differential_prop =
  let grammars = [| snow_grammar; sun_only_grammar; free_grammar |] in
  let tenant_names = [| "t0"; "t1"; "t2" |] in
  let contexts = [| snow; sun; fog; Asp.Program.empty |] in
  let option_sets =
    [| [ "accept"; "reject" ]; [ "reject"; "accept" ]; [ "accept" ] |]
  in
  let gen_req =
    QCheck2.Gen.(
      map2
        (fun t (c, o) -> (t, c, o))
        (int_bound (Array.length tenant_names - 1))
        (pair
           (int_bound (Array.length contexts - 1))
           (int_bound (Array.length option_sets - 1))))
  in
  QCheck2.Test.make
    ~name:"cluster decisions = each tenant's uncached model, at 1/2/4 domains"
    ~count:15
    QCheck2.Gen.(list_size (int_range 4 20) gen_req)
    (fun stream ->
      let models = Array.map gpm_of grammars in
      let reqs =
        List.map
          (fun (t, c, o) ->
            treq tenant_names.(t) contexts.(c) option_sets.(o))
          stream
      in
      let reference =
        List.map
          (fun (t, c, o) ->
            Serve.decide_uncached models.(t)
              (request contexts.(c) option_sets.(o)))
          stream
      in
      List.for_all
        (fun domains ->
          let pool = Par.create ~domains () in
          let cluster =
            Serve.Cluster.create ~queue_depth:4
              ~tenants:
                (Array.to_list
                   (Array.map2 (fun n m -> (n, m)) tenant_names models))
              ()
          in
          let outcomes = Serve.Cluster.run ~pool cluster reqs in
          Par.shutdown pool;
          List.for_all2
            (fun (t, _, _) (reference, outcome) ->
              match outcome with
              | Serve.Cluster.Rejected _ -> false
              | Serve.Cluster.Served r ->
                Serve.Decision.equal reference r.Serve.Response.decision
                && r.Serve.Response.shard = tenant_names.(t))
            stream
            (List.combine reference outcomes))
        [ 1; 2; 4 ])

(* ---- the simulation opt-in -------------------------------------------- *)

(* Reuses the CAV closed-loop fixture of test_agenp: the simulation with
   a serving engine attached must trace the exact same timeline as the
   uncached run (decisions, adaptations, everything). *)
let test_simulation_serve_config () =
  let spec : Agenp.Prep.pbms_spec =
    {
      Agenp.Prep.grammar_text = snow_grammar;
      global_constraints = [];
    }
  in
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let env : Agenp.Ams.environment =
    {
      Agenp.Ams.options = [ "accept"; "reject" ];
      oracle = (fun context _opt -> Asp.Program.equal context snow);
      audit_rate = 0.0;
    }
  in
  let stream _name tick i = if (tick + i) mod 2 = 0 then snow else sun in
  let config =
    { Agenp.Simulation.default_config with ticks = 4; gossip_every = None }
  in
  let timeline serve_config =
    let ams = Agenp.Ams.create ~name:"m" ~seed:3 ~spec ~space env in
    let r =
      Agenp.Simulation.run ?serve_config config [ ams ]
        ~request_stream:stream
    in
    List.map
      (fun (t : Agenp.Simulation.tick_stats) -> (t.tick, t.compliance))
      r.Agenp.Simulation.timeline
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "same timeline with and without the engine" (timeline None)
    (timeline (Some Serve.Config.default))

let () =
  Alcotest.run "serve"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace promotes" `Quick test_lru_replace_promotes;
          Alcotest.test_case "clear" `Quick test_lru_clear;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "program fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "ground_with core" `Quick test_ground_with;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no options" `Quick test_no_options;
          Alcotest.test_case "provenance" `Quick test_provenance;
          Alcotest.test_case "set_gpm invalidates" `Quick test_set_gpm_invalidates;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest differential_prop ]);
      ( "batch",
        [
          Alcotest.test_case "determinism" `Quick test_batch_determinism;
          Alcotest.test_case "deadline schedule" `Quick
            test_batch_schedule_deadlines;
          Alcotest.test_case "deadline determinism" `Quick
            test_batch_deadline_determinism;
        ] );
      ( "ops",
        [
          Alcotest.test_case "audit records decisions" `Quick
            test_audit_records_decisions;
          Alcotest.test_case "audit wraparound" `Quick test_audit_wraparound;
          Alcotest.test_case "audit JSONL round-trip" `Quick
            test_audit_jsonl_roundtrip;
          Alcotest.test_case "batch trace ids" `Quick test_batch_trace_ids;
          Alcotest.test_case "stats JSON" `Quick test_stats_json;
          Alcotest.test_case "audit disabled" `Quick test_audit_disabled;
          Alcotest.test_case "live /metrics scrape" `Quick test_metrics_scrape;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "create validation" `Quick
            test_cluster_create_validation;
          Alcotest.test_case "unknown tenant" `Quick
            test_cluster_unknown_tenant;
          Alcotest.test_case "backpressure" `Quick test_cluster_backpressure;
          Alcotest.test_case "coalescing" `Quick test_cluster_coalescing;
          Alcotest.test_case "isolated invalidation" `Quick
            test_cluster_isolated_invalidation;
          QCheck_alcotest.to_alcotest cluster_differential_prop;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "serve_config opt-in" `Quick
            test_simulation_serve_config;
        ] );
    ]
