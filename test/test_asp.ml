(* Tests for the ASP substrate: terms, parsing, grounding, solving. *)

let parse = Asp.Parser.parse_program
let solve = Asp.Solver.solve
let atom = Asp.Parser.parse_atom_string

let model_strings (m : Asp.Solver.model) =
  List.map Asp.Atom.to_string (Asp.Atom.Set.elements m)

let sorted_models p =
  solve (parse p)
  |> List.map model_strings
  |> List.sort compare

let check_models name program expected =
  Alcotest.(check (list (list string))) name (List.sort compare expected)
    (sorted_models program)

(* ---- Term tests ---- *)

let test_term_eval () =
  let t = Asp.Term.(Binop (Add, Int 2, Binop (Mul, Int 3, Int 4))) in
  Alcotest.(check bool) "2+3*4 = 14" true
    (Asp.Term.eval t = Some (Asp.Term.Int 14));
  Alcotest.(check bool) "div by zero" true
    (Asp.Term.eval Asp.Term.(Binop (Div, Int 1, Int 0)) = None);
  Alcotest.(check bool) "var not evaluable" true
    (Asp.Term.eval (Asp.Term.Var "X") = None)

let test_term_match () =
  let open Asp.Term in
  let p = Fun ("f", [ Var "X"; Var "X" ]) in
  Alcotest.(check bool) "f(X,X) matches f(a,a)" true
    (match_term subst_empty p (Fun ("f", [ const "a"; const "a" ])) <> None);
  Alcotest.(check bool) "f(X,X) rejects f(a,b)" true
    (match_term subst_empty p (Fun ("f", [ const "a"; const "b" ])) = None)

let test_term_vars () =
  let open Asp.Term in
  let t = Fun ("f", [ Var "X"; Fun ("g", [ Var "Y"; Var "X" ]) ]) in
  Alcotest.(check (list string)) "vars order, no dups" [ "X"; "Y" ] (vars t)

(* ---- Parser tests ---- *)

let test_parse_fact () =
  let p = parse "p(a, 1)." in
  Alcotest.(check int) "one rule" 1 (Asp.Program.size p);
  Alcotest.(check string) "roundtrip" "p(a, 1)."
    (Asp.Rule.to_string (List.hd (Asp.Program.rules p)))

let test_parse_rule () =
  let r = Asp.Parser.parse_rule_string "q(X) :- p(X, Y), not r(Y), X > 3." in
  Alcotest.(check bool) "safe" true (Asp.Rule.is_safe r);
  Alcotest.(check string) "roundtrip" "q(X) :- p(X, Y), not r(Y), X > 3."
    (Asp.Rule.to_string r)

let test_parse_constraint () =
  let r = Asp.Parser.parse_rule_string ":- p(X), q(X)." in
  Alcotest.(check bool) "is constraint" true (Asp.Rule.is_constraint r)

let test_parse_choice () =
  let r = Asp.Parser.parse_rule_string "1 { sel(X) : opt(X) } 1 :- go." in
  match r.Asp.Rule.head with
  | Asp.Rule.Choice (Some 1, [ e ], Some 1) ->
    Alcotest.(check string) "element" "sel(X)"
      (Asp.Atom.to_string e.Asp.Rule.choice_atom)
  | _ -> Alcotest.fail "expected a bounded choice head"

let test_parse_interval () =
  let p = parse "num(1..3)." in
  let gp = Asp.Grounder.ground p in
  Alcotest.(check int) "three atoms" 3 (Asp.Grounder.atom_count gp)

let test_parse_errors () =
  (try
     ignore (parse "p(a)");
     Alcotest.fail "expected parse error"
   with Asp.Parser.Parse_error _ -> ());
  match parse "" with
  | p -> Alcotest.(check int) "empty program ok" 0 (Asp.Program.size p)

let test_parse_string_constant () =
  let a = atom "label(\"hello world\")" in
  Alcotest.(check string) "string const kept" "label(\"hello world\")"
    (Asp.Atom.to_string a)

(* ---- Grounder tests ---- *)

let test_ground_simple () =
  let p = parse "p(a). p(b). q(X) :- p(X)." in
  let gp = Asp.Grounder.ground p in
  Alcotest.(check int) "4 atoms" 4 (Asp.Grounder.atom_count gp);
  Alcotest.(check int) "4 rules" 4 (Asp.Grounder.size gp)

let test_ground_join () =
  let p = parse "e(a,b). e(b,c). path(X,Y) :- e(X,Y). path(X,Z) :- e(X,Y), path(Y,Z)." in
  let models = solve p in
  Alcotest.(check int) "unique model" 1 (List.length models);
  let m = List.hd models in
  Alcotest.(check bool) "path(a,c)" true (Asp.Atom.Set.mem (atom "path(a,c)") m)

let test_ground_unsafe () =
  let p = parse "p(X)." in
  Alcotest.(check bool) "unsafe raises" true
    (try
       ignore (Asp.Grounder.ground p);
       false
     with Asp.Grounder.Unsafe_rule _ -> true)

let test_ground_arith () =
  let p = parse "n(1). n(2). m(X + 1) :- n(X)." in
  let m = List.hd (solve p) in
  Alcotest.(check bool) "m(3)" true (Asp.Atom.Set.mem (atom "m(3)") m);
  Alcotest.(check bool) "m(2)" true (Asp.Atom.Set.mem (atom "m(2)") m)

let test_ground_comparison () =
  let p = parse "n(1..5). big(X) :- n(X), X >= 4." in
  let m = List.hd (solve p) in
  let bigs = Asp.Atom.Set.filter (fun a -> a.Asp.Atom.pred = "big") m in
  Alcotest.(check int) "two bigs" 2 (Asp.Atom.Set.cardinal bigs)

let test_ground_eq_binding () =
  let p = parse "n(2). m(Y) :- n(X), Y = X * 10." in
  let m = List.hd (solve p) in
  Alcotest.(check bool) "m(20)" true (Asp.Atom.Set.mem (atom "m(20)") m)

let test_ground_neg_underivable () =
  (* not q is trivially true when q can never be derived *)
  let p = parse "p :- not q." in
  check_models "derives p" "p :- not q." [ [ "p" ] ];
  ignore p

(* Regression tests for negative body literals mentioning atoms outside
   the possible-atom base. Earlier grounder revisions silently dropped
   the whole rule; the documented semantics (grounder.mli) is that each
   underivable conjunct is vacuously true and removed, keeping the
   instance. Interval arguments in a negative literal denote the
   conjunction over the expansion. *)

let test_neg_interval_underivable () =
  check_models "whole interval underivable" "p :- not q(1..2)." [ [ "p" ] ]

let test_neg_interval_partial_base () =
  (* q(2) is underivable so its conjunct drops; not q(1) remains and
     fails, blocking p *)
  check_models "interval partially in base" "q(1). p :- not q(1..2)."
    [ [ "q(1)" ] ]

let test_neg_interval_full_base () =
  check_models "interval fully in base" "q(1). q(2). p :- not q(1..2)."
    [ [ "q(1)"; "q(2)" ] ]

let test_neg_interval_conjunction_choice () =
  (* conjunction semantics: p holds iff no expansion member does *)
  check_models "conjunction under choice" "{ q(1) }. p :- not q(1..2)."
    [ [ "p" ]; [ "q(1)" ] ]

let test_neg_nonground_outside_base () =
  check_models "non-ground neg literal never derivable"
    "n(1..2). p(X) :- n(X), not q(X)."
    [ [ "n(1)"; "n(2)"; "p(1)"; "p(2)" ] ]

(* ---- Dependency tests ---- *)

let test_stratified () =
  let p = parse "p(a). q(X) :- p(X), not r(X). r(b)." in
  Alcotest.(check bool) "stratified" true (Asp.Dependency.is_stratified p)

let test_not_stratified () =
  let p = parse "p :- not q. q :- not p." in
  Alcotest.(check bool) "unstratified" false (Asp.Dependency.is_stratified p)

let test_sccs () =
  let p = parse "a :- b. b :- a. c :- a." in
  let g = Asp.Dependency.build p in
  let comps = Asp.Dependency.sccs g in
  let sizes = List.sort compare (List.map List.length comps) in
  Alcotest.(check (list int)) "one 2-scc" [ 1; 2 ] sizes

(* ---- Solver tests ---- *)

let test_solve_definite () =
  check_models "facts and rules" "p(a). q(X) :- p(X)." [ [ "p(a)"; "q(a)" ] ]

let test_solve_negation_two_models () =
  check_models "even loop" "p :- not q. q :- not p." [ [ "p" ]; [ "q" ] ]

let test_solve_odd_loop_unsat () =
  check_models "odd loop has no model" "p :- not p." []

let test_solve_constraint () =
  check_models "constraint filters" "p :- not q. q :- not p. :- q." [ [ "p" ] ]

let test_solve_unsupported_false () =
  check_models "positive loop unfounded" "a :- b. b :- a." [ [] ]

let test_solve_choice () =
  let ms = sorted_models "{ a; b }." in
  Alcotest.(check int) "4 models" 4 (List.length ms)

let test_solve_choice_bounds () =
  let ms = sorted_models "1 { a; b } 1." in
  Alcotest.(check (list (list string))) "exactly-one" [ [ "a" ]; [ "b" ] ] ms

let test_solve_choice_conditional () =
  let ms = sorted_models "opt(x). opt(y). 1 { sel(V) : opt(V) } 1." in
  Alcotest.(check int) "two models" 2 (List.length ms);
  List.iter
    (fun m ->
      let sels =
        List.filter (fun s -> String.length s >= 3 && String.sub s 0 3 = "sel") m
      in
      Alcotest.(check int) "one sel each" 1 (List.length sels))
    ms

let test_solve_choice_body () =
  check_models "choice body blocked" "{ a } :- go." [ [] ];
  let ms = sorted_models "go. { a } :- go." in
  Alcotest.(check int) "go enables choice" 2 (List.length ms)

let test_solve_limit () =
  let ms = Asp.Solver.solve ~limit:2 (parse "{ a; b; c }.") in
  Alcotest.(check int) "limit respected" 2 (List.length ms)

let test_has_answer_set () =
  Alcotest.(check bool) "sat" true (Asp.Solver.has_answer_set (parse "p."));
  Alcotest.(check bool) "unsat" false
    (Asp.Solver.has_answer_set (parse "p. :- p."))

let test_brave_cautious () =
  let p = parse "a :- not b. b :- not a. c." in
  let brave = Asp.Solver.brave_consequences p in
  let cautious = Asp.Solver.cautious_consequences p in
  Alcotest.(check int) "brave has a,b,c" 3 (Asp.Atom.Set.cardinal brave);
  Alcotest.(check (list string)) "cautious only c" [ "c" ]
    (List.map Asp.Atom.to_string (Asp.Atom.Set.elements cautious))

let test_solver_stability_subtle () =
  (* {p,q} is a supported model of this program but not stable *)
  check_models "unfounded set rejected" "p :- q. q :- p. r :- not p."
    [ [ "r" ] ]

let test_double_negation_choice_equiv () =
  let via_choice = sorted_models "{ a }." in
  Alcotest.(check (list (list string))) "two models" [ []; [ "a" ] ] via_choice

let test_wellfounded_bounds () =
  let gp = Asp.Grounder.ground (parse "p. q :- not r. r :- not q.") in
  let b = Asp.Wellfounded.compute gp in
  Alcotest.(check bool) "p definitely true" true
    (Asp.Atom.Set.mem (atom "p") b.Asp.Wellfounded.lower);
  Alcotest.(check bool) "q possible" true
    (Asp.Atom.Set.mem (atom "q") b.Asp.Wellfounded.upper);
  Alcotest.(check bool) "not total" false (Asp.Wellfounded.is_total b)

let test_graph_coloring () =
  let prog =
    "node(1..3). edge(1,2). edge(2,3). edge(1,3). col(r). col(g). col(b). \
     1 { color(N,C) : col(C) } 1 :- node(N). \
     :- edge(X,Y), color(X,C), color(Y,C)."
  in
  let ms = solve (parse prog) in
  Alcotest.(check int) "6 colorings" 6 (List.length ms)

let test_context_facts () =
  let p = parse "ok :- ctx(good)." in
  let with_ctx = Asp.Program.with_facts p [ atom "ctx(good)" ] in
  Alcotest.(check bool) "context activates" true
    (Asp.Atom.Set.mem (atom "ok") (List.hd (solve with_ctx)))

(* ---- Weak constraints / optimization ---- *)

let test_weak_parse_roundtrip () =
  let r = Asp.Parser.parse_rule_string ":~ pick(X), cost(X, C). [C]" in
  Alcotest.(check bool) "safe" true (Asp.Rule.is_safe r);
  Alcotest.(check string) "roundtrip" ":~ pick(X), cost(X, C). [C]"
    (Asp.Rule.to_string r)

let test_weak_optimal () =
  let p =
    parse
      "1 { pick(a); pick(b); pick(c) } 1. cost(a, 3). cost(b, 1). cost(c, 2).        :~ pick(X), cost(X, C). [C]"
  in
  match Asp.Solver.solve_optimal p with
  | None -> Alcotest.fail "expected models"
  | Some (models, cost) ->
    Alcotest.(check int) "minimal cost 1" 1 cost;
    Alcotest.(check int) "unique optimum" 1 (List.length models);
    Alcotest.(check bool) "picks b" true
      (Asp.Atom.Set.mem (atom "pick(b)") (List.hd models))

let test_weak_no_weak_constraints_cost_zero () =
  let p = parse "p." in
  match Asp.Solver.solve_optimal p with
  | Some ([ _ ], 0) -> ()
  | _ -> Alcotest.fail "expected single zero-cost model"

let test_weak_ranked_order () =
  let p = parse "{ a }. :~ not a. [5]" in
  match Asp.Solver.solve_ranked p with
  | [ (m1, 0); (_, 5) ] ->
    Alcotest.(check bool) "cheapest has a" true
      (Asp.Atom.Set.mem (atom "a") m1)
  | _ -> Alcotest.fail "expected two ranked models"

let test_weak_ties () =
  let p = parse "1 { pick(a); pick(b) } 1. :~ pick(X). [1]" in
  match Asp.Solver.solve_optimal p with
  | Some (models, 1) -> Alcotest.(check int) "two tied optima" 2 (List.length models)
  | _ -> Alcotest.fail "expected cost-1 optima"

let test_weak_does_not_affect_satisfiability () =
  let p = parse "p. :~ p. [100]" in
  Alcotest.(check bool) "still satisfiable" true (Asp.Solver.has_answer_set p)

(* ---- Property-based tests ---- *)

let gen_small_term =
  QCheck2.Gen.(
    sized_size (int_bound 3) @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Asp.Term.Int i) (int_bound 20);
              map (fun s -> Asp.Term.const ("c" ^ string_of_int s)) (int_bound 5);
              map (fun s -> Asp.Term.Var ("V" ^ string_of_int s)) (int_bound 3) ]
        else
          oneof
            [ map (fun i -> Asp.Term.Int i) (int_bound 20);
              map2
                (fun f args -> Asp.Term.Fun ("f" ^ string_of_int f, args))
                (int_bound 3)
                (list_size (int_bound 3) (self (n - 1))) ]))

let prop_term_compare_refl =
  QCheck2.Test.make ~name:"term compare is reflexive" ~count:200 gen_small_term
    (fun t -> Asp.Term.compare t t = 0)

let prop_term_subst_ground =
  QCheck2.Test.make ~name:"substituting all vars grounds the term" ~count:200
    gen_small_term (fun t ->
      let s =
        List.fold_left
          (fun s v -> Asp.Term.subst_bind v (Asp.Term.int 0) s)
          Asp.Term.subst_empty (Asp.Term.vars t)
      in
      Asp.Term.is_ground (Asp.Term.apply s t))

let prop_term_match_sound =
  QCheck2.Test.make ~name:"match then apply reproduces target" ~count:200
    gen_small_term (fun pat ->
      let s0 =
        List.fold_left
          (fun s v -> Asp.Term.subst_bind v (Asp.Term.const "k") s)
          Asp.Term.subst_empty (Asp.Term.vars pat)
      in
      let target = Asp.Term.apply s0 pat in
      match Asp.Term.match_term Asp.Term.subst_empty pat target with
      | Some s -> Asp.Term.equal (Asp.Term.apply s pat) target
      | None -> false)

let prop_choice_models_within_bounds =
  QCheck2.Test.make ~name:"choice bounds hold in every model" ~count:50
    QCheck2.Gen.(pair (int_range 0 2) (int_range 2 3))
    (fun (l, u) ->
      let prog = Printf.sprintf "%d { a; b; c } %d." l u in
      let ms = solve (parse prog) in
      List.for_all
        (fun m ->
          let k = Asp.Atom.Set.cardinal m in
          k >= l && k <= u)
        ms)

let prop_models_satisfy_constraints =
  QCheck2.Test.make ~name:"no model satisfies a constraint body" ~count:30
    QCheck2.Gen.(int_range 1 3)
    (fun n ->
      let prog =
        Printf.sprintf "{ a; b; c }. :- a, b. p(1..%d). q(X) :- p(X), not a." n
      in
      let ms = solve (parse prog) in
      List.for_all
        (fun m ->
          not (Asp.Atom.Set.mem (atom "a") m && Asp.Atom.Set.mem (atom "b") m))
        ms)

(* ---- Edge cases ---- *)

let test_interval_reversed () =
  (* 5..1 denotes the empty range *)
  let p = parse "n(5..1). ok :- not n(3)." in
  check_models "empty interval" "n(5..1). ok :- not n(3)." [ [ "ok" ] ];
  ignore p

let test_negative_integers () =
  let p = parse "t(-3). u(X + 5) :- t(X)." in
  let m = List.hd (solve p) in
  Alcotest.(check bool) "u(2)" true (Asp.Atom.Set.mem (atom "u(2)") m)

let test_arithmetic_mod_div () =
  let m = List.hd (solve (parse "n(7). q(X / 2, X \\ 2) :- n(X).")) in
  Alcotest.(check bool) "q(3,1)" true (Asp.Atom.Set.mem (atom "q(3, 1)") m)

let test_empty_choice () =
  check_models "empty choice is vacuous" "{ }. p." [ [ "p" ] ]

let test_choice_zero_bounds () =
  (* 0 { a } 0 forbids a *)
  check_models "zero-zero bounds" "0 { a } 0." [ [] ]

let test_contradictory_facts_constraint () =
  check_models "fact killed by constraint" "p. :- p." []

let test_deep_function_nesting () =
  let p = parse "v(f(g(h(a)))). w(X) :- v(f(X))." in
  let m = List.hd (solve p) in
  Alcotest.(check bool) "w(g(h(a)))" true
    (Asp.Atom.Set.mem (atom "w(g(h(a)))") m)

let test_constraint_only_program () =
  (* constraints over underivable atoms are vacuous *)
  check_models "vacuous constraint" ":- ghost." [ [] ]

let test_solver_many_models_limit_order () =
  let ms = Asp.Solver.solve ~limit:3 (parse "{ a; b; c; d }.") in
  Alcotest.(check int) "exactly 3" 3 (List.length ms)

let test_cautious_on_unsat () =
  Alcotest.(check int) "cautious of unsat program is empty" 0
    (Asp.Atom.Set.cardinal
       (Asp.Solver.cautious_consequences (parse "p. :- p.")))

(* ---- Aggregates (#count) ---- *)

let test_count_constraint () =
  check_models "count cap violated" "in(a). in(b). in(c). :- #count { X : in(X) } > 2." [];
  check_models "count cap respected"
    "in(a). in(b). :- #count { X : in(X) } > 2."
    [ [ "in(a)"; "in(b)" ] ]

let test_count_with_choice () =
  (* choose any subset of 4 options but at most 2 *)
  let ms =
    solve
      (parse
         "opt(1..4). { pick(X) : opt(X) }. :- #count { X : pick(X) } > 2.")
  in
  (* 1 empty + 4 singletons + 6 pairs = 11 *)
  Alcotest.(check int) "11 models" 11 (List.length ms)

let test_count_lower_bound () =
  let ms =
    solve
      (parse
         "opt(1..3). { pick(X) : opt(X) }. :- #count { X : pick(X) } < 2.")
  in
  (* 3 pairs + 1 triple = 4 *)
  Alcotest.(check int) "4 models" 4 (List.length ms)

let test_count_outer_variable () =
  (* per-group cap: no group may have 2 or more members picked *)
  let prog =
    "group(g1). group(g2). member(g1, a). member(g1, b). member(g2, c).      { pick(X) : member(G, X) }.      :- group(G), #count { X : pick(X), member(G, X) } >= 2."
  in
  let ms = solve (parse prog) in
  (* a,b cannot be together: subsets of {a,b,c} minus {ab, abc} = 6 *)
  Alcotest.(check int) "6 models" 6 (List.length ms);
  List.iter
    (fun m ->
      Alcotest.(check bool) "a and b never together" false
        (Asp.Atom.Set.mem (atom "pick(a)") m
        && Asp.Atom.Set.mem (atom "pick(b)") m))
    ms

let test_count_in_weak () =
  (* prefer fewer picks: minimal model has exactly the forced pick *)
  let prog =
    "opt(1..3). { pick(X) : opt(X) }. :- #count { X : pick(X) } < 1.      :~ pick(X). [1]"
  in
  match Asp.Solver.solve_optimal (parse prog) with
  | Some (ms, 1) -> Alcotest.(check int) "three minimal singletons" 3 (List.length ms)
  | _ -> Alcotest.fail "expected cost-1 optima"

let test_count_in_normal_rule_rejected () =
  let p = parse "in(a). big :- #count { X : in(X) } > 0." in
  Alcotest.(check bool) "aggregate in normal rule rejected" true
    (try
       ignore (Asp.Grounder.ground p);
       false
     with Asp.Grounder.Aggregate_in_rule _ -> true)

let test_count_pp_roundtrip () =
  let text = ":- group(G), #count { X : pick(X), member(G, X) } >= 2." in
  let r = Asp.Parser.parse_rule_string text in
  Alcotest.(check string) "roundtrip" text (Asp.Rule.to_string r);
  Alcotest.(check bool) "safe" true (Asp.Rule.is_safe r)

let test_count_value_api () =
  let m =
    List.hd (solve (parse "in(a). in(b). tag(a, x). tag(b, x)."))
  in
  let c =
    match
      Asp.Parser.parse_rule_string ":- #count { X : in(X) } > 0."
    with
    | { Asp.Rule.body = [ Asp.Rule.Count c ]; _ } -> c
    | _ -> Alcotest.fail "unexpected parse"
  in
  Alcotest.(check int) "two members" 2 (Asp.Query.count_value m c)

(* ---- Justifications ---- *)

let test_justify_chain () =
  (* d is derivable in principle (choice) but forbidden, so the negative
     literal survives grounding and shows up in the justification *)
  let p = parse "a. b :- a. { d }. :- d. c :- b, not d." in
  let gp = Asp.Grounder.ground p in
  let m = List.hd (Asp.Solver.solve_ground gp) in
  match Asp.Justification.justify gp m (atom "c") with
  | Some j ->
    Alcotest.(check int) "depth 3 chain" 3 (Asp.Justification.depth j);
    (match j with
    | Asp.Justification.Derived { absent = [ d ]; _ } ->
      Alcotest.(check string) "absence of d recorded" "d" (Asp.Atom.to_string d)
    | _ -> Alcotest.fail "expected a derived node with one absent atom")
  | None -> Alcotest.fail "expected justification for c"

let test_justify_fact () =
  let p = parse "a." in
  let gp = Asp.Grounder.ground p in
  let m = List.hd (Asp.Solver.solve_ground gp) in
  match Asp.Justification.justify gp m (atom "a") with
  | Some (Asp.Justification.Fact _) -> ()
  | _ -> Alcotest.fail "expected a fact justification"

let test_justify_choice () =
  let p = parse "go. 1 { pick(a); pick(b) } 1 :- go." in
  let gp = Asp.Grounder.ground p in
  let m = List.hd (Asp.Solver.solve_ground gp) in
  let chosen =
    Asp.Atom.Set.elements m
    |> List.find (fun (a : Asp.Atom.t) -> a.Asp.Atom.pred = "pick")
  in
  match Asp.Justification.justify gp m chosen with
  | Some (Asp.Justification.Chosen { premises = [ _go ]; _ }) -> ()
  | _ -> Alcotest.fail "expected a chosen justification with the go premise"

let test_justify_not_in_model () =
  let p = parse "a :- not b." in
  let gp = Asp.Grounder.ground p in
  let m = List.hd (Asp.Solver.solve_ground gp) in
  Alcotest.(check bool) "b has no justification" true
    (Asp.Justification.justify gp m (atom "b") = None)

let test_justify_all_covers_model () =
  let p = parse "n(1..3). d(X + X) :- n(X). { extra }." in
  let gp = Asp.Grounder.ground p in
  List.iter
    (fun m ->
      let table = Asp.Justification.justify_all gp m in
      Asp.Atom.Set.iter
        (fun a ->
          Alcotest.(check bool)
            (Asp.Atom.to_string a ^ " justified")
            true
            (Asp.Atom.Map.mem a table))
        m)
    (Asp.Solver.solve_ground gp)

(* ---- Differential testing against a brute-force reference ---- *)

(* An independent stable-model checker for propositional normal programs
   with constraints: enumerate all interpretations; M is stable iff the
   least model of the Gelfond-Lifschitz reduct equals M and no constraint
   body holds in M. Kept deliberately naive and separate from the solver
   implementation. *)
let reference_stable_models (rules : (string option * string list * string list) list)
    (atoms : string list) : string list list =
  let subsets =
    List.fold_left
      (fun acc a -> acc @ List.map (fun s -> a :: s) acc)
      [ [] ] atoms
  in
  let stable m =
    let in_m a = List.mem a m in
    (* constraints: no body may hold *)
    let constraint_ok =
      List.for_all
        (fun (head, pos, neg) ->
          match head with
          | Some _ -> true
          | None ->
            not
              (List.for_all in_m pos
              && List.for_all (fun a -> not (in_m a)) neg))
        rules
    in
    if not constraint_ok then false
    else begin
      (* least model of the reduct *)
      let reduct =
        List.filter_map
          (fun (head, pos, neg) ->
            match head with
            | Some h when List.for_all (fun a -> not (in_m a)) neg ->
              Some (h, pos)
            | _ -> None)
          rules
      in
      let derived = ref [] in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (h, pos) ->
            if
              (not (List.mem h !derived))
              && List.for_all (fun a -> List.mem a !derived) pos
            then begin
              derived := h :: !derived;
              changed := true
            end)
          reduct
      done;
      List.sort compare !derived = List.sort compare m
    end
  in
  List.filter stable subsets |> List.map (List.sort compare) |> List.sort compare

let random_propositional_program =
  QCheck2.Gen.(
    let atom_g = oneofl [ "a"; "b"; "c"; "d" ] in
    let lit_list = list_size (int_range 0 2) atom_g in
    let rule_g =
      map3
        (fun head pos neg -> (head, pos, neg))
        (oneof [ map Option.some atom_g; return None ])
        lit_list lit_list
    in
    list_size (int_range 1 6) rule_g)

let rules_to_source rules =
  String.concat " "
    (List.map
       (fun (head, pos, neg) ->
         let body =
           List.map (fun a -> a) pos @ List.map (fun a -> "not " ^ a) neg
         in
         match (head, body) with
         | Some h, [] -> h ^ "."
         | Some h, body -> h ^ " :- " ^ String.concat ", " body ^ "."
         | None, [] -> ":- ." (* never generated: constraints need a body *)
         | None, body -> ":- " ^ String.concat ", " body ^ ".")
       rules)

let prop_solver_matches_reference =
  QCheck2.Test.make ~name:"solver agrees with brute-force reference" ~count:300
    random_propositional_program (fun rules ->
      (* drop degenerate empty-body constraints *)
      let rules =
        List.filter (fun (h, p, n) -> h <> None || p <> [] || n <> []) rules
      in
      QCheck2.assume (rules <> []);
      let source = rules_to_source rules in
      let solver_models =
        Asp.Solver.solve (parse source)
        |> List.map (fun m ->
               List.map Asp.Atom.to_string (Asp.Atom.Set.elements m)
               |> List.sort compare)
        |> List.sort compare
      in
      let reference = reference_stable_models rules [ "a"; "b"; "c"; "d" ] in
      solver_models = reference)

(* ---- Differential testing of the grounder itself ---- *)

(* An independent naive reference grounder for function-free,
   interval-free normal programs: enumerate every substitution against
   the possible-atom base, iterate to fixpoint, then instantiate. It is
   deliberately quadratic and shares no code with the semi-naive indexed
   implementation in Asp.Grounder. *)
let reference_ground (p : Asp.Program.t) :
    Asp.Grounder.ground_rule list * Asp.Atom.Set.t =
  let open Asp in
  let rules = Program.rules p in
  let split r =
    List.fold_left
      (fun (pos, neg, cmps) -> function
        | Rule.Pos a -> (a :: pos, neg, cmps)
        | Rule.Neg a -> (pos, a :: neg, cmps)
        | Rule.Cmp (op, t1, t2) -> (pos, neg, (op, t1, t2) :: cmps)
        | Rule.Count _ -> (pos, neg, cmps))
      ([], [], []) r.Rule.body
    |> fun (pos, neg, cmps) -> (List.rev pos, List.rev neg, List.rev cmps)
  in
  (* all substitutions matching the positive literals against [base] *)
  let rec enum base subst pos k =
    match pos with
    | [] -> k subst
    | a :: rest ->
      Atom.Set.iter
        (fun b ->
          match Atom.match_atom subst a b with
          | Some s -> enum base s rest k
          | None -> ())
        base
  in
  let cmp_ok s (op, t1, t2) =
    Rule.eval_cmp op (Term.apply s t1) (Term.apply s t2)
  in
  let base = ref Atom.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        match r.Rule.head with
        | Rule.Head h ->
          let pos, _, cmps = split r in
          enum !base Term.subst_empty pos (fun s ->
              if List.for_all (cmp_ok s) cmps then begin
                let hg = Atom.apply s h in
                if not (Atom.Set.mem hg !base) then begin
                  base := Atom.Set.add hg !base;
                  changed := true
                end
              end)
        | _ -> ())
      rules
  done;
  let grules = ref [] in
  List.iter
    (fun r ->
      match r.Rule.head with
      | Rule.Head h ->
        let pos, neg, cmps = split r in
        enum !base Term.subst_empty pos (fun s ->
            if List.for_all (cmp_ok s) cmps then begin
              let gneg =
                List.map (Atom.apply s) neg
                |> List.filter (fun a -> Atom.Set.mem a !base)
              in
              grules :=
                {
                  Grounder.ghead = Grounder.GAtom (Atom.apply s h);
                  gpos = List.map (Atom.apply s) pos;
                  gneg;
                  gcounts = [];
                }
                :: !grules
            end)
      | _ -> ())
    rules;
  (!grules, !base)

(* Compare ground programs modulo rule order, literal order within a
   body, and duplicate instances. *)
let normalized_rule_strings (grules : Asp.Grounder.ground_rule list) =
  grules
  |> List.map (fun (gr : Asp.Grounder.ground_rule) ->
         let s = List.sort_uniq Asp.Atom.compare in
         Fmt.str "%a" Asp.Grounder.pp_ground_rule
           { gr with Asp.Grounder.gpos = s gr.Asp.Grounder.gpos; gneg = s gr.Asp.Grounder.gneg })
  |> List.sort_uniq compare

(* Random safe function-free programs: facts over p/1 and q/2, rules
   whose heads are h/1 or r/1, positive bodies over all four predicates,
   optional negative literal (h or r) and comparison over bound
   variables. Safety holds by construction: head, negative, and
   comparison arguments only use variables bound by the positive body. *)
let gen_fo_program_source =
  QCheck2.Gen.(
    let rterm = function `C i -> string_of_int i | `V v -> v in
    let rlit (p, args) =
      p ^ "(" ^ String.concat ", " (List.map rterm args) ^ ")"
    in
    let gconst = map (fun i -> `C i) (int_range 1 2) in
    let gterm = oneof [ gconst; map (fun v -> `V v) (oneofl [ "X"; "Y" ]) ] in
    let lit1 name = map (fun t -> (name, [ t ])) gterm in
    let lit2 name = map2 (fun a b -> (name, [ a; b ])) gterm gterm in
    let pos_lit = oneof [ lit1 "p"; lit2 "q"; lit1 "h"; lit1 "r" ] in
    let fact =
      oneof
        [ map (fun i -> ("p", [ `C i ])) (int_range 1 2);
          map2 (fun i j -> ("q", [ `C i; `C j ])) (int_range 1 2) (int_range 1 2) ]
    in
    let rule =
      let* pos = list_size (int_range 1 2) pos_lit in
      let bound =
        List.concat_map
          (fun (_, args) ->
            List.filter_map (function `V v -> Some v | `C _ -> None) args)
          pos
      in
      let bound_term =
        match bound with
        | [] -> gconst
        | vs -> oneof [ gconst; map (fun v -> `V v) (oneofl vs) ]
      in
      let* head_pred = oneofl [ "h"; "r" ] in
      let* head_arg = bound_term in
      let* neg =
        option (map2 (fun p t -> (p, [ t ])) (oneofl [ "h"; "r" ]) bound_term)
      in
      let* cmp =
        match bound with
        | [] -> return None
        | vs ->
          option
            (map3
               (fun v op b -> Printf.sprintf "%s %s %d" v op b)
               (oneofl vs) (oneofl [ "<"; ">=" ]) (int_range 1 2))
      in
      let body =
        List.map rlit pos
        @ (match neg with Some l -> [ "not " ^ rlit l ] | None -> [])
        @ match cmp with Some c -> [ c ] | None -> []
      in
      return
        (Printf.sprintf "%s :- %s." (rlit (head_pred, [ head_arg ]))
           (String.concat ", " body))
    in
    let* facts = list_size (int_range 1 4) fact in
    let* rules = list_size (int_range 1 3) rule in
    return (String.concat " " (List.map (fun f -> rlit f ^ ".") facts @ rules)))

let prop_grounder_matches_naive_reference =
  QCheck2.Test.make
    ~name:"semi-naive grounder agrees with naive reference" ~count:300
    gen_fo_program_source (fun src ->
      let p = parse src in
      QCheck2.assume (List.for_all Asp.Rule.is_safe (Asp.Program.rules p));
      let gp = Asp.Grounder.ground p in
      let ref_rules, ref_base = reference_ground p in
      Asp.Atom.Set.equal gp.Asp.Grounder.base ref_base
      && normalized_rule_strings gp.Asp.Grounder.grules
         = normalized_rule_strings ref_rules)

let prop_solver_models_match_ground_reference =
  (* first-order pipeline check: models of the solver on the original
     program equal the brute-force stable models of the independently
     grounded program *)
  QCheck2.Test.make
    ~name:"solver models agree with reference grounding + brute force"
    ~count:150 gen_fo_program_source (fun src ->
      let p = parse src in
      let ref_rules, ref_base = reference_ground p in
      QCheck2.assume (Asp.Atom.Set.cardinal ref_base <= 10);
      let atoms = List.map Asp.Atom.to_string (Asp.Atom.Set.elements ref_base) in
      let prop_rules =
        List.map
          (fun (gr : Asp.Grounder.ground_rule) ->
            let head =
              match gr.Asp.Grounder.ghead with
              | Asp.Grounder.GAtom a -> Some (Asp.Atom.to_string a)
              | _ -> None
            in
            ( head,
              List.map Asp.Atom.to_string gr.Asp.Grounder.gpos,
              List.map Asp.Atom.to_string gr.Asp.Grounder.gneg ))
          ref_rules
      in
      let reference = reference_stable_models prop_rules atoms in
      let solver_models =
        Asp.Solver.solve p
        |> List.map (fun m ->
               List.map Asp.Atom.to_string (Asp.Atom.Set.elements m)
               |> List.sort compare)
        |> List.sort compare
      in
      solver_models = reference)

(* ---- incremental grounding: core + delta vs full reground ------------- *)

(* canonical form of a whole ground program: base atoms plus rule
   strings, both sorted — incremental grounding orders rules core-major
   then delta, a full reground puts the facts first, so equality is up
   to rule order *)
let canonical_ground (gp : Asp.Grounder.ground_program) =
  ( List.map Asp.Atom.to_string (Asp.Atom.Set.elements gp.Asp.Grounder.base),
    normalized_rule_strings gp.Asp.Grounder.grules )

let sorted_ground_models gp =
  Asp.Solver.solve_ground gp
  |> List.map (fun m -> List.sort compare (model_strings m))
  |> List.sort compare

(* the context facts churned against a random core: EDB atoms (p/1,
   q/2) and IDB atoms (h/1, r/1) alike — asserting an atom the core
   can also derive, or one feeding a dropped trivially-true negative
   literal, must both be handled *)
let churn_pool =
  Array.map atom
    [|
      "p(1)"; "p(2)"; "p(3)"; "q(1, 2)"; "q(2, 1)"; "q(3, 3)";
      "h(1)"; "h(2)"; "r(1)"; "r(3)";
    |]

(* Random (core, op sequence) pairs: each op asserts or retracts a
   batch from the pool. After every op the overlay's ground program
   must equal — as a set of rules over the same possible-atom base —
   a from-scratch reground of the core program extended with the
   currently asserted facts, and both must have identical stable
   models (the decisions downstream solvers would make). *)
let prop_incremental_matches_full_reground =
  QCheck2.Test.make
    ~name:"incremental core+delta = full reground, under add/retract churn"
    ~count:120
    QCheck2.Gen.(
      pair gen_fo_program_source
        (list_size (int_range 1 8)
           (pair bool
              (list_size (int_range 1 4)
                 (int_bound (Array.length churn_pool - 1))))))
    (fun (src, ops) ->
      let p = parse src in
      QCheck2.assume (List.for_all Asp.Rule.is_safe (Asp.Program.rules p));
      let core = Asp.Grounder.Incremental.freeze p in
      let ov = Asp.Grounder.Incremental.overlay core in
      List.for_all
        (fun (add, idxs) ->
          let batch = List.map (fun i -> churn_pool.(i)) idxs in
          if add then Asp.Grounder.Incremental.add_facts ov batch
          else ignore (Asp.Grounder.Incremental.retract_facts ov batch);
          let inc = Asp.Grounder.Incremental.ground ov in
          let full =
            Asp.Grounder.ground
              (Asp.Program.with_facts p (Asp.Grounder.Incremental.facts ov))
          in
          canonical_ground inc = canonical_ground full
          && sorted_ground_models inc = sorted_ground_models full)
        ops)

(* truth maintenance: retraction drops exactly the dependent ground
   rules and leaves the frozen core untouched *)
let test_incremental_retraction () =
  let p = parse "q(X) :- p(X). r :- q(1). s :- r, p(2)." in
  let core = Asp.Grounder.Incremental.freeze p in
  Alcotest.(check int) "factless core fires nothing" 0
    (Asp.Grounder.size (Asp.Grounder.Incremental.core_ground core));
  let ov = Asp.Grounder.Incremental.overlay core in
  Asp.Grounder.Incremental.add_facts ov [ atom "p(1)"; atom "p(2)" ];
  (* p(1). p(2). q(1). q(2). r. s. — six dependent ground rules *)
  Alcotest.(check int) "both chains grounded" 6
    (Asp.Grounder.size (Asp.Grounder.Incremental.ground ov));
  let dropped =
    Asp.Grounder.Incremental.retract_facts ov [ atom "p(1)" ]
  in
  Alcotest.(check int) "p(1), q(1), r, s dropped" 4 dropped;
  Alcotest.(check (list string)) "p(2) survives" [ "p(2)" ]
    (List.map Asp.Atom.to_string (Asp.Grounder.Incremental.facts ov));
  Alcotest.(check (pair (list string) (list string)))
    "survivors equal a fresh reground"
    (canonical_ground
       (Asp.Grounder.ground (Asp.Program.with_facts p [ atom "p(2)" ])))
    (canonical_ground (Asp.Grounder.Incremental.ground ov));
  Alcotest.(check int) "retracting the unasserted is a no-op" 0
    (Asp.Grounder.Incremental.retract_facts ov [ atom "p(1)" ]);
  (* the frozen core was never written through *)
  Alcotest.(check int) "core still factless" 0
    (Asp.Grounder.size (Asp.Grounder.Incremental.core_ground core));
  (* re-assertion restores the full delta *)
  Asp.Grounder.Incremental.add_facts ov [ atom "p(1)" ];
  Alcotest.(check int) "re-add restores all six" 6
    (Asp.Grounder.size (Asp.Grounder.Incremental.ground ov))

(* a latent negative literal: [not h(1)] is dropped as trivially true
   in the factless core, then h(1) is asserted — the core rule must be
   repaired, not duplicated *)
let test_incremental_latent_negation () =
  let p = parse "p(1). s :- p(1), not h(1)." in
  let core = Asp.Grounder.Incremental.freeze p in
  let ov = Asp.Grounder.Incremental.overlay core in
  let before = sorted_ground_models (Asp.Grounder.Incremental.ground ov) in
  Alcotest.(check (list (list string))) "s holds while h(1) is underivable"
    [ [ "p(1)"; "s" ] ] before;
  Asp.Grounder.Incremental.add_facts ov [ atom "h(1)" ];
  Alcotest.(check (pair (list string) (list string)))
    "repaired rule equals a fresh reground"
    (canonical_ground
       (Asp.Grounder.ground (Asp.Program.with_facts p [ atom "h(1)" ])))
    (canonical_ground (Asp.Grounder.Incremental.ground ov));
  Alcotest.(check (list (list string))) "asserting h(1) defeats s"
    [ [ "h(1)"; "p(1)" ] ]
    (sorted_ground_models (Asp.Grounder.Incremental.ground ov));
  ignore (Asp.Grounder.Incremental.retract_facts ov [ atom "h(1)" ]);
  Alcotest.(check (list (list string))) "retraction restores s" before
    (sorted_ground_models (Asp.Grounder.Incremental.ground ov))

(* pretty-print / parse roundtrip over random rule ASTs *)
let gen_rule =
  QCheck2.Gen.(
    let const_g = map (fun i -> Asp.Term.const ("c" ^ string_of_int i)) (int_bound 3) in
    let var_g = map (fun i -> Asp.Term.var ("X" ^ string_of_int i)) (int_bound 2) in
    let term_g =
      oneof
        [ const_g; var_g; map (fun i -> Asp.Term.int i) (int_bound 9);
          map2 (fun a b -> Asp.Term.Binop (Asp.Term.Add, a, b)) var_g
            (map (fun i -> Asp.Term.int i) (int_bound 5)) ]
    in
    let atom_g =
      map2
        (fun p args -> Asp.Atom.make ("p" ^ string_of_int p) args)
        (int_bound 3)
        (list_size (int_bound 2) term_g)
    in
    let body_elt_g =
      oneof
        [ map (fun a -> Asp.Rule.Pos a) atom_g;
          map (fun a -> Asp.Rule.Neg a) atom_g;
          map2 (fun t1 t2 -> Asp.Rule.Cmp (Asp.Rule.Lt, t1, t2)) term_g term_g ]
    in
    let body_g = list_size (int_bound 3) body_elt_g in
    oneof
      [ map2 (fun h b -> { Asp.Rule.head = Asp.Rule.Head h; body = b }) atom_g body_g;
        map
          (fun b -> { Asp.Rule.head = Asp.Rule.Falsity; body = b })
          (list_size (int_range 1 3) body_elt_g);
        map2
          (fun w b -> { Asp.Rule.head = Asp.Rule.Weak w; body = b })
          term_g
          (list_size (int_range 1 3) body_elt_g) ])

let prop_rule_pp_parse_roundtrip =
  QCheck2.Test.make ~name:"rule pretty-print/parse roundtrip" ~count:300
    gen_rule (fun r ->
      let text = Asp.Rule.to_string r in
      match Asp.Parser.parse_rule_string text with
      | r' -> Asp.Rule.equal r r'
      | exception _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_term_compare_refl;
      prop_term_subst_ground;
      prop_term_match_sound;
      prop_choice_models_within_bounds;
      prop_models_satisfy_constraints;
      prop_solver_matches_reference;
      prop_grounder_matches_naive_reference;
      prop_solver_models_match_ground_reference;
      prop_incremental_matches_full_reground;
      prop_rule_pp_parse_roundtrip ]

let () =
  Alcotest.run "asp"
    [
      ( "term",
        [
          Alcotest.test_case "eval" `Quick test_term_eval;
          Alcotest.test_case "match" `Quick test_term_match;
          Alcotest.test_case "vars" `Quick test_term_vars;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fact" `Quick test_parse_fact;
          Alcotest.test_case "rule" `Quick test_parse_rule;
          Alcotest.test_case "constraint" `Quick test_parse_constraint;
          Alcotest.test_case "choice" `Quick test_parse_choice;
          Alcotest.test_case "interval" `Quick test_parse_interval;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "string constant" `Quick test_parse_string_constant;
        ] );
      ( "grounder",
        [
          Alcotest.test_case "simple" `Quick test_ground_simple;
          Alcotest.test_case "join" `Quick test_ground_join;
          Alcotest.test_case "unsafe" `Quick test_ground_unsafe;
          Alcotest.test_case "arith" `Quick test_ground_arith;
          Alcotest.test_case "comparison" `Quick test_ground_comparison;
          Alcotest.test_case "eq binding" `Quick test_ground_eq_binding;
          Alcotest.test_case "neg underivable" `Quick test_ground_neg_underivable;
          Alcotest.test_case "neg interval underivable" `Quick
            test_neg_interval_underivable;
          Alcotest.test_case "neg interval partial base" `Quick
            test_neg_interval_partial_base;
          Alcotest.test_case "neg interval full base" `Quick
            test_neg_interval_full_base;
          Alcotest.test_case "neg interval conjunction" `Quick
            test_neg_interval_conjunction_choice;
          Alcotest.test_case "neg nonground outside base" `Quick
            test_neg_nonground_outside_base;
          Alcotest.test_case "incremental retraction" `Quick
            test_incremental_retraction;
          Alcotest.test_case "incremental latent negation" `Quick
            test_incremental_latent_negation;
        ] );
      ( "dependency",
        [
          Alcotest.test_case "stratified" `Quick test_stratified;
          Alcotest.test_case "not stratified" `Quick test_not_stratified;
          Alcotest.test_case "sccs" `Quick test_sccs;
        ] );
      ( "solver",
        [
          Alcotest.test_case "definite" `Quick test_solve_definite;
          Alcotest.test_case "negation two models" `Quick test_solve_negation_two_models;
          Alcotest.test_case "odd loop unsat" `Quick test_solve_odd_loop_unsat;
          Alcotest.test_case "constraint" `Quick test_solve_constraint;
          Alcotest.test_case "unfounded false" `Quick test_solve_unsupported_false;
          Alcotest.test_case "choice" `Quick test_solve_choice;
          Alcotest.test_case "choice bounds" `Quick test_solve_choice_bounds;
          Alcotest.test_case "choice conditional" `Quick test_solve_choice_conditional;
          Alcotest.test_case "choice body" `Quick test_solve_choice_body;
          Alcotest.test_case "limit" `Quick test_solve_limit;
          Alcotest.test_case "has answer set" `Quick test_has_answer_set;
          Alcotest.test_case "brave cautious" `Quick test_brave_cautious;
          Alcotest.test_case "stability subtle" `Quick test_solver_stability_subtle;
          Alcotest.test_case "choice vs double negation" `Quick test_double_negation_choice_equiv;
          Alcotest.test_case "wellfounded bounds" `Quick test_wellfounded_bounds;
          Alcotest.test_case "graph coloring" `Quick test_graph_coloring;
          Alcotest.test_case "context facts" `Quick test_context_facts;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "reversed interval" `Quick test_interval_reversed;
          Alcotest.test_case "negative integers" `Quick test_negative_integers;
          Alcotest.test_case "mod and div" `Quick test_arithmetic_mod_div;
          Alcotest.test_case "empty choice" `Quick test_empty_choice;
          Alcotest.test_case "zero bounds" `Quick test_choice_zero_bounds;
          Alcotest.test_case "contradictory facts" `Quick test_contradictory_facts_constraint;
          Alcotest.test_case "deep nesting" `Quick test_deep_function_nesting;
          Alcotest.test_case "constraint only" `Quick test_constraint_only_program;
          Alcotest.test_case "limit order" `Quick test_solver_many_models_limit_order;
          Alcotest.test_case "cautious unsat" `Quick test_cautious_on_unsat;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "constraint" `Quick test_count_constraint;
          Alcotest.test_case "with choice" `Quick test_count_with_choice;
          Alcotest.test_case "lower bound" `Quick test_count_lower_bound;
          Alcotest.test_case "outer variable" `Quick test_count_outer_variable;
          Alcotest.test_case "in weak constraint" `Quick test_count_in_weak;
          Alcotest.test_case "rejected in normal rule" `Quick test_count_in_normal_rule_rejected;
          Alcotest.test_case "pp roundtrip" `Quick test_count_pp_roundtrip;
          Alcotest.test_case "count_value" `Quick test_count_value_api;
        ] );
      ( "justification",
        [
          Alcotest.test_case "chain" `Quick test_justify_chain;
          Alcotest.test_case "fact" `Quick test_justify_fact;
          Alcotest.test_case "choice" `Quick test_justify_choice;
          Alcotest.test_case "not in model" `Quick test_justify_not_in_model;
          Alcotest.test_case "covers model" `Quick test_justify_all_covers_model;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "weak parse" `Quick test_weak_parse_roundtrip;
          Alcotest.test_case "optimal model" `Quick test_weak_optimal;
          Alcotest.test_case "no weak = zero cost" `Quick test_weak_no_weak_constraints_cost_zero;
          Alcotest.test_case "ranked order" `Quick test_weak_ranked_order;
          Alcotest.test_case "ties" `Quick test_weak_ties;
          Alcotest.test_case "weak keeps satisfiability" `Quick test_weak_does_not_affect_satisfiability;
        ] );
      ("properties", qcheck_cases);
    ]
