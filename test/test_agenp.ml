(* Tests for the AGENP architecture (Figure 2): refinement, decision
   points, the closed adaptation loop, and coalition policy sharing. *)

let cav_spec : Agenp.Prep.pbms_spec =
  {
    Agenp.Prep.grammar_text =
      {| start -> decision {
           task_req(turn, 2). task_req(straight, 1).
           task_req(overtake, 4). task_req(park, 3).
           needed_loa(R) :- task(T), task_req(T, R).
         }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |};
    global_constraints = [];
  }

let cav_env : Agenp.Ams.environment =
  {
    Agenp.Ams.options = [ "accept"; "reject" ];
    oracle =
      (fun context opt ->
        (* parse the scenario back from the context program facts *)
        let facts = Asp.Program.facts context in
        let find pred =
          List.find_map
            (fun (a : Asp.Atom.t) ->
              if a.Asp.Atom.pred = pred then
                match a.Asp.Atom.args with
                | [ Asp.Term.Fun (v, []) ] -> Some (`S v)
                | [ Asp.Term.Int v ] -> Some (`I v)
                | _ -> None
              else None)
            facts
        in
        let s = function Some (`S v) -> v | _ -> "" in
        let i = function Some (`I v) -> v | _ -> 0 in
        let scenario =
          {
            Workloads.Cav.task = s (find "task");
            vehicle_loa = i (find "vehicle_loa");
            region_loa = i (find "region_loa");
            weather = s (find "weather");
            time = s (find "time");
          }
        in
        let accept_ok = Workloads.Cav.ground_truth scenario in
        match opt with
        | "accept" -> accept_ok
        | "reject" -> not accept_ok (* rejecting a valid task is a violation *)
        | _ -> false);
    audit_rate = 0.3;
  }

let make_cav_ams ?(seed = 1) ?(name = "cav-1") () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  Agenp.Ams.create ~name ~seed ~spec:cav_spec ~space cav_env

let test_prep_refine () =
  let gpm = Agenp.Prep.refine cav_spec in
  Alcotest.(check int) "three productions" 3
    (List.length (Grammar.Cfg.productions (Asg.Gpm.cfg gpm)));
  let spec' =
    { cav_spec with Agenp.Prep.global_constraints = [ ":- result(accept)@1." ] }
  in
  let restricted = Agenp.Prep.refine spec' in
  Alcotest.(check bool) "global constraint applies" false
    (Asg.Membership.accepts restricted "accept")

let test_prep_generate () =
  let gpm = Agenp.Prep.refine cav_spec in
  let repo = Agenp.Repository.create () in
  let context = Asp.Parser.parse_program "task(turn). vehicle_loa(3)." in
  let version, policies = Agenp.Prep.generate_policies gpm ~context repo in
  Alcotest.(check int) "version 1" 1 version;
  Alcotest.(check (list string)) "both decisions initially"
    [ "accept"; "reject" ] (List.sort compare policies);
  Alcotest.(check (list string)) "repo stores them"
    policies (Agenp.Repository.latest_policies repo)

let test_pdp_fallback () =
  let gpm =
    Asg.Asg_parser.parse
      {| start -> decision { :- result(accept)@1. }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  let d =
    Agenp.Pdp.decide gpm ~context:Asp.Program.empty
      ~options:[ "accept"; "reject" ]
  in
  Alcotest.(check string) "falls to reject" "reject" d.Serve.Decision.chosen;
  Alcotest.(check bool) "not a fallback (reject was valid)" false
    d.Serve.Decision.fallback_used

let test_pdp_fallback_used () =
  let gpm =
    Asg.Asg_parser.parse
      {| start -> decision { :- result(accept)@1. :- result(reject)@1. }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  let d =
    Agenp.Pdp.decide gpm ~context:Asp.Program.empty
      ~options:[ "accept"; "reject" ]
  in
  Alcotest.(check bool) "fallback flagged" true d.Serve.Decision.fallback_used

let test_context_repo () =
  let repo = Agenp.Context_repo.create () in
  Agenp.Context_repo.update repo (Asp.Parser.parse_program "a.");
  Agenp.Context_repo.update repo (Asp.Parser.parse_program "b.");
  Alcotest.(check bool) "change detected" true (Agenp.Context_repo.changed repo);
  Agenp.Context_repo.update repo (Asp.Parser.parse_program "b.");
  Alcotest.(check bool) "no change" false (Agenp.Context_repo.changed repo)

let test_pip_merge () =
  let pip = Agenp.Pip.create () in
  Agenp.Pip.register pip "satellite" (fun () ->
      Asp.Parser.parse_program "weather(snow).");
  Agenp.Pip.register pip "roadside" (fun () ->
      Asp.Parser.parse_program "congestion(high).");
  let facts = Agenp.Pip.poll_all pip in
  Alcotest.(check int) "both sources merged" 2 (Asp.Program.size facts);
  Alcotest.(check (list string)) "names" [ "satellite"; "roadside" ]
    (Agenp.Pip.source_names pip)

let test_pcp_violations () =
  let gpm = Agenp.Prep.refine cav_spec in
  let validation =
    [
      Ilp.Example.positive_ctx "accept" "task(straight). vehicle_loa(5).";
      Ilp.Example.negative_ctx "accept" "task(overtake). vehicle_loa(1).";
    ]
  in
  (* the unlearned model accepts everything: one violation (the negative) *)
  let vs = Agenp.Pcp.detect_violations gpm validation in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  Alcotest.(check (float 0.001)) "rate" 0.5
    (Agenp.Pcp.violation_rate gpm validation)

let test_pcp_quality () =
  let gpm = Agenp.Prep.refine cav_spec in
  let contexts =
    [
      Asp.Parser.parse_program "task(turn). vehicle_loa(3).";
      Asp.Parser.parse_program "task(park). vehicle_loa(1).";
    ]
  in
  let q =
    Agenp.Pcp.assess gpm ~contexts ~options:[ "accept"; "reject" ]
      ~hypothesis:[] ~task:None
  in
  Alcotest.(check (float 0.001)) "complete" 1.0 q.Agenp.Pcp.completeness;
  Alcotest.(check (float 0.001)) "all options relevant" 1.0 q.Agenp.Pcp.relevance;
  Alcotest.(check bool) "consistent" true q.Agenp.Pcp.consistent

let run_requests ams scenarios =
  List.iter
    (fun s -> ignore (Agenp.Ams.handle_request ams (Workloads.Cav.to_context s)))
    scenarios

let test_ams_closed_loop_improves () =
  let ams = make_cav_ams () in
  let phase1 = Workloads.Cav.sample ~seed:100 40 in
  run_requests ams phase1;
  Alcotest.(check bool) "adaptation happened" true
    (Agenp.Ams.relearn_count ams >= 1);
  (* after adaptation, decisions on fresh scenarios should be near-perfect *)
  let fresh = Workloads.Cav.sample ~seed:200 60 in
  let correct =
    List.length
      (List.filter
         (fun s ->
           let d =
             Agenp.Pdp.decide (Agenp.Ams.gpm ams)
               ~context:(Workloads.Cav.to_context s)
               ~options:[ "accept"; "reject" ]
           in
           (d.Serve.Decision.chosen = "accept") = Workloads.Cav.ground_truth s)
         fresh)
  in
  let acc = float_of_int correct /. 60.0 in
  Alcotest.(check bool) (Printf.sprintf "post-adaptation accuracy %.2f" acc)
    true (acc >= 0.9)

let test_ams_policy_generation () =
  let ams = make_cav_ams () in
  run_requests ams (Workloads.Cav.sample ~seed:100 40);
  (* an overtake request far below the required LOA: the loop has seen
     plenty of LOA violations, so the learned model must exclude accept *)
  let s =
    { Workloads.Cav.task = "overtake"; vehicle_loa = 1; region_loa = 3;
      weather = "clear"; time = "day" }
  in
  ignore (Agenp.Ams.handle_request ams (Workloads.Cav.to_context s));
  let policies = Agenp.Ams.generate_policies ams in
  Alcotest.(check bool) "low-LOA overtake: accept not generated" true
    (not (List.mem "accept" policies) && List.mem "reject" policies)

let test_coalition_sharing_transfers_knowledge () =
  (* member A experiences many requests and learns; member B is fresh.
     After a gossip round B should behave like A without local learning. *)
  let a = make_cav_ams ~seed:1 ~name:"ams-a" () in
  let b = make_cav_ams ~seed:2 ~name:"ams-b" () in
  run_requests a (Workloads.Cav.sample ~seed:100 40);
  Alcotest.(check bool) "A learned" true (Agenp.Ams.hypothesis a <> []);
  Alcotest.(check bool) "B unlearned" true (Agenp.Ams.hypothesis b = []);
  (* give B a little local evidence so the PCP gate has something to check *)
  List.iter
    (fun s ->
      Agenp.Ams.learn_from b ~context:(Workloads.Cav.to_context s) "accept"
        ~valid:(Workloads.Cav.ground_truth s))
    (Workloads.Cav.sample ~seed:300 10);
  let coalition = Agenp.Coalition.create () in
  Agenp.Coalition.add_member coalition a;
  Agenp.Coalition.add_member coalition b;
  let adopted = Agenp.Coalition.gossip_round coalition in
  Alcotest.(check bool) "B adopted rules" true (adopted >= 1);
  let fresh = Workloads.Cav.sample ~seed:400 50 in
  let acc =
    float_of_int
      (List.length
         (List.filter
            (fun s ->
              let d =
                Agenp.Pdp.decide (Agenp.Ams.gpm b)
                  ~context:(Workloads.Cav.to_context s)
                  ~options:[ "accept"; "reject" ]
              in
              (d.Serve.Decision.chosen = "accept") = Workloads.Cav.ground_truth s)
            fresh))
    /. 50.0
  in
  Alcotest.(check bool) (Printf.sprintf "B accuracy after sharing %.2f" acc)
    true (acc >= 0.85)

let test_pcp_rejects_bad_shared_policy () =
  let b = make_cav_ams ~seed:5 ~name:"ams-b" () in
  (* local evidence: accepting straight with loa 5 is valid *)
  List.iter
    (fun s ->
      Agenp.Ams.learn_from b ~context:(Workloads.Cav.to_context s) "accept"
        ~valid:(Workloads.Cav.ground_truth s))
    (List.filter
       (fun s -> Workloads.Cav.ground_truth s)
       (Workloads.Cav.sample ~seed:600 40));
  (* a malicious/broken shared rule forbidding all accepts *)
  let bad =
    Ilp.Hypothesis_space.of_rules [ (":- result(accept)@1.", [ 0 ]) ]
  in
  let a = make_cav_ams ~seed:6 ~name:"ams-a" () in
  Agenp.Ams.install_hypothesis a bad;
  let coalition = Agenp.Coalition.create () in
  Agenp.Coalition.add_member coalition a;
  Agenp.Coalition.add_member coalition b;
  ignore (Agenp.Coalition.gossip_round coalition);
  Alcotest.(check bool) "B rejected the harmful rule" true
    (Agenp.Ams.hypothesis b = [])

let test_context_change_trigger () =
  let ams = make_cav_ams () in
  (* feed a few consistent observations, below the violation threshold *)
  List.iter
    (fun s ->
      Agenp.Ams.learn_from ams ~context:(Workloads.Cav.to_context s) "accept"
        ~valid:(Workloads.Cav.ground_truth s))
    (Workloads.Cav.sample ~seed:900 8);
  Alcotest.(check int) "no adaptation yet" 0 (Agenp.Ams.relearn_count ams);
  Agenp.Ams.signal_context_change ams;
  (* next request triggers relearning despite a clean violation window *)
  let s = List.hd (Workloads.Cav.sample ~seed:901 1) in
  ignore (Agenp.Ams.handle_request ams (Workloads.Cav.to_context s));
  Alcotest.(check int) "context change forced relearn" 1
    (Agenp.Ams.relearn_count ams)

let test_byzantine_gate_comparison () =
  let bad =
    Ilp.Hypothesis_space.of_rules [ (":- result(accept)@1.", [ 0 ]) ]
  in
  let newcomer gate =
    let b = make_cav_ams ~seed:5 ~name:"b" () in
    List.iter
      (fun s ->
        let gt = Workloads.Cav.ground_truth s in
        Agenp.Ams.learn_from b ~context:(Workloads.Cav.to_context s) "accept"
          ~valid:gt)
      (Workloads.Cav.sample ~seed:600 20);
    let coalition = Agenp.Coalition.create () in
    Agenp.Coalition.add_member coalition b;
    Agenp.Coalition.publish_raw coalition ~author:"mallory" bad;
    ignore (Agenp.Coalition.gossip_round ~gate coalition);
    Agenp.Ams.hypothesis b
  in
  Alcotest.(check bool) "pcp rejects the attack" true (newcomer `Pcp = []);
  Alcotest.(check int) "trust-all swallows it" 1
    (List.length (newcomer `Trust_all))

let test_padap_memory_cap () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let config = { (Agenp.Padap.default_config space) with Agenp.Padap.memory = 5 } in
  let padap = Agenp.Padap.create config (Agenp.Prep.refine cav_spec) in
  List.iter
    (fun s ->
      Agenp.Padap.add_example padap
        (Ilp.Example.positive ~context:(Workloads.Cav.to_context s) "accept"))
    (Workloads.Cav.sample ~seed:42 12);
  Alcotest.(check int) "sliding window caps memory" 5
    (List.length (Agenp.Padap.examples padap))

let test_repository_representation () =
  let repo = Agenp.Repository.create () in
  Alcotest.(check bool) "no representation yet" true
    (Agenp.Repository.latest_representation repo = None);
  ignore (Agenp.Repository.store_representation repo (Agenp.Prep.refine cav_spec));
  Alcotest.(check int) "one representation" 1
    (Agenp.Repository.representation_count repo);
  Alcotest.(check bool) "latest available" true
    (Agenp.Repository.latest_representation repo <> None)

let test_prep_cleans_operator_grammar () =
  let messy =
    { Agenp.Prep.grammar_text =
        {| start -> decision
           decision -> "accept" { result(accept). } | "reject" { result(reject). }
           orphan -> "zzz" |};
      global_constraints = [] }
  in
  let gpm = Agenp.Prep.refine messy in
  Alcotest.(check int) "orphan production dropped" 3
    (List.length (Grammar.Cfg.productions (Asg.Gpm.cfg gpm)))

let test_repository_versions () =
  let repo = Agenp.Repository.create () in
  ignore (Agenp.Repository.store_policies repo [ "a" ]);
  ignore (Agenp.Repository.store_policies repo [ "b" ]);
  Alcotest.(check int) "two versions" 2 (Agenp.Repository.version_count repo);
  Alcotest.(check (list string)) "latest" [ "b" ]
    (Agenp.Repository.latest_policies repo)

let test_metrics_summary () =
  let ams = make_cav_ams () in
  run_requests ams (Workloads.Cav.sample ~seed:100 30);
  let m = Agenp.Metrics.summarize (Agenp.Ams.pep ams) in
  Alcotest.(check int) "30 requests" 30 m.Agenp.Metrics.requests;
  Alcotest.(check bool) "compliance sane" true
    (m.Agenp.Metrics.compliance >= 0.0 && m.Agenp.Metrics.compliance <= 1.0);
  Alcotest.(check bool) "mix covers decisions" true
    (List.fold_left (fun acc (_, v) -> acc + v) 0 m.Agenp.Metrics.decision_mix
    = 30);
  Alcotest.(check bool) "recent >= overall (loop improves)" true
    (m.Agenp.Metrics.recent_compliance >= m.Agenp.Metrics.compliance -. 0.01)

let test_simulation_improves () =
  let members = [ make_cav_ams ~seed:1 ~name:"sim-a" (); make_cav_ams ~seed:2 ~name:"sim-b" () ] in
  let request_stream name tick i =
    let seed = Hashtbl.hash (name, tick, i) land 0xFFFF in
    Workloads.Cav.to_context (List.hd (Workloads.Cav.sample ~seed 1))
  in
  let config =
    { Agenp.Simulation.ticks = 12; requests_per_tick = 4;
      gossip_every = Some 4; gate = `Pcp }
  in
  let result = Agenp.Simulation.run config members ~request_stream in
  Alcotest.(check int) "12 ticks recorded" 12
    (List.length result.Agenp.Simulation.timeline);
  let early =
    match result.Agenp.Simulation.timeline with
    | t :: _ -> t.Agenp.Simulation.compliance
    | [] -> 0.0
  in
  let late = Agenp.Simulation.recent_compliance result 3 in
  Alcotest.(check bool)
    (Printf.sprintf "compliance improves (%.2f -> %.2f)" early late)
    true
    (late >= early && late >= 0.85);
  Alcotest.(check bool) "someone adapted" true
    (List.exists
       (fun (t : Agenp.Simulation.tick_stats) -> t.Agenp.Simulation.adaptations > 0)
       result.Agenp.Simulation.timeline)

let () =
  Alcotest.run "agenp"
    [
      ( "points",
        [
          Alcotest.test_case "prep refine" `Quick test_prep_refine;
          Alcotest.test_case "prep generate" `Quick test_prep_generate;
          Alcotest.test_case "pdp valid option" `Quick test_pdp_fallback;
          Alcotest.test_case "pdp fallback" `Quick test_pdp_fallback_used;
          Alcotest.test_case "context repo" `Quick test_context_repo;
          Alcotest.test_case "pip merge" `Quick test_pip_merge;
          Alcotest.test_case "pcp violations" `Quick test_pcp_violations;
          Alcotest.test_case "pcp quality" `Quick test_pcp_quality;
          Alcotest.test_case "repository versions" `Quick test_repository_versions;
          Alcotest.test_case "context-change trigger" `Quick test_context_change_trigger;
          Alcotest.test_case "padap memory cap" `Quick test_padap_memory_cap;
          Alcotest.test_case "repository representation" `Quick test_repository_representation;
          Alcotest.test_case "prep cleans grammar" `Quick test_prep_cleans_operator_grammar;
        ] );
      ( "closed-loop",
        [
          Alcotest.test_case "loop improves" `Slow test_ams_closed_loop_improves;
          Alcotest.test_case "policy generation" `Slow test_ams_policy_generation;
        ] );
      ( "coalition",
        [
          Alcotest.test_case "sharing transfers knowledge" `Slow
            test_coalition_sharing_transfers_knowledge;
          Alcotest.test_case "pcp gates harmful rules" `Slow
            test_pcp_rejects_bad_shared_policy;
          Alcotest.test_case "byzantine gate comparison" `Slow
            test_byzantine_gate_comparison;
          Alcotest.test_case "simulation improves" `Slow test_simulation_improves;
          Alcotest.test_case "metrics summary" `Slow test_metrics_summary;
        ] );
    ]
