(* Tests for the observability substrate: span nesting and ordering,
   counter/histogram aggregation, sink delivery, Chrome trace export
   (emitted JSON is parsed back with a small JSON reader), and a qcheck
   property tying the aggregate report to the raw span durations. *)

(* ---- deterministic clock ---------------------------------------------- *)

(* A fake clock the tests advance by hand; [tick] moves time forward. *)
let time = ref 0.0
let tick dt = time := !time +. dt

let with_fake_clock f =
  Obs.reset ();
  Obs.set_detailed false;
  time := 0.0;
  Obs.set_clock (fun () -> !time);
  Fun.protect ~finally:Obs.use_default_clock f

(* The JSON reader used to live here; it moved into the library as
   [Obs.Json] so the bench gate can load baselines with it. The export
   round-trip tests below double as its parser tests. *)
module Json = Obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  with_fake_clock @@ fun () ->
  let finished = ref [] in
  let sink = { Obs.on_span = (fun sp -> finished := sp :: !finished) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  Obs.span "outer" (fun () ->
      tick 1.0;
      Obs.span "inner" (fun () -> tick 0.25);
      tick 0.5);
  let spans = List.rev !finished in
  Alcotest.(check (list string))
    "children finish first" [ "inner"; "outer" ]
    (List.map (fun sp -> sp.Obs.sp_name) spans);
  let inner = List.hd spans and outer = List.nth spans 1 in
  Alcotest.(check int) "inner depth" 1 inner.Obs.sp_depth;
  Alcotest.(check int) "outer depth" 0 outer.Obs.sp_depth;
  Alcotest.(check (float 1e-9)) "inner duration" 0.25 inner.Obs.sp_dur;
  Alcotest.(check (float 1e-9)) "outer duration" 1.75 outer.Obs.sp_dur;
  Alcotest.(check (float 1e-9)) "inner start" 1.0 inner.Obs.sp_start

let test_span_exception_safety () =
  with_fake_clock @@ fun () ->
  (try
     Obs.span "boom" (fun () ->
         tick 2.0;
         failwith "boom")
   with Failure _ -> ());
  match Obs.Histogram.find "boom" with
  | None -> Alcotest.fail "span not recorded"
  | Some h ->
    Alcotest.(check int) "recorded once" 1 (Obs.Histogram.count h);
    Alcotest.(check (float 1e-9)) "duration recorded" 2.0
      (Obs.Histogram.total h)

let test_span_attrs () =
  with_fake_clock @@ fun () ->
  let captured = ref None in
  let sink = { Obs.on_span = (fun sp -> captured := Some sp) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  Obs.span ~attrs:[ ("a", "1") ] "with-attrs" (fun () ->
      Obs.set_attr "b" "2");
  match !captured with
  | None -> Alcotest.fail "no span delivered"
  | Some sp ->
    Alcotest.(check (list (pair string string)))
      "attrs in order"
      [ ("a", "1"); ("b", "2") ]
      sp.Obs.sp_attrs

let test_fine_span_gating () =
  with_fake_clock @@ fun () ->
  Obs.set_detailed false;
  Obs.fine_span "gated" (fun () -> tick 1.0);
  Alcotest.(check bool) "no histogram when disabled" true
    (match Obs.Histogram.find "gated" with
    | None -> true
    | Some h -> Obs.Histogram.count h = 0);
  Obs.set_detailed true;
  Fun.protect ~finally:(fun () -> Obs.set_detailed false) @@ fun () ->
  Obs.fine_span "gated" (fun () -> tick 1.0);
  match Obs.Histogram.find "gated" with
  | None -> Alcotest.fail "fine span not recorded when enabled"
  | Some h ->
    Alcotest.(check int) "recorded when enabled" 1 (Obs.Histogram.count h)

(* ---- counters and histograms ------------------------------------------ *)

let test_counters () =
  Obs.reset ();
  let c = Obs.Counter.make "test.counter" in
  Obs.Counter.incr c;
  Obs.Counter.incr c ~by:41;
  Alcotest.(check int) "accumulated" 42 (Obs.Counter.value c);
  (* find-or-create returns the same handle *)
  let c' = Obs.Counter.make "test.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "shared handle" 43 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c')

let test_histograms () =
  Obs.reset ();
  let h = Obs.Histogram.make "test.histogram" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Obs.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Obs.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histogram.min_value h);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "reset mean" 0.0 (Obs.Histogram.mean h)

(* ---- quantiles --------------------------------------------------------- *)

let alpha = Obs.Histogram.quantile_relative_error

let test_quantiles_basic () =
  Obs.reset ();
  let h = Obs.Histogram.make "test.quantiles" in
  (* 1..100 ms: the q-quantile's exact answer is ceil(q*100)/1000 s *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (float_of_int i /. 1000.0)
  done;
  List.iter
    (fun q ->
      let exact = Float.ceil (q *. 100.0) /. 1000.0 in
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f %.6f within %.1f%% of %.6f" (q *. 100.0) est
           (alpha *. 100.0) exact)
        true
        (Float.abs (est -. exact) <= (alpha +. 1e-6) *. exact))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.(check (float 1e-9)) "empty histogram quantile" 0.0
    (Obs.Histogram.quantile (Obs.Histogram.make "test.quantiles.empty") 0.5);
  (* non-positive observations land in the zero bucket *)
  let z = Obs.Histogram.make "test.quantiles.zero" in
  Obs.Histogram.observe z 0.0;
  Obs.Histogram.observe z 5.0;
  Alcotest.(check (float 1e-9)) "p25 of {0,5} is the zero bucket" 0.0
    (Obs.Histogram.quantile z 0.25)

(* The satellite property: quantile estimates stay within the log-bucket
   error bound of an exact sorted-list oracle, for arbitrary value sets
   spanning six orders of magnitude. *)
let quantile_bound_prop =
  QCheck.Test.make ~count:200
    ~name:"histogram quantiles within log-bucket error bound"
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 1_000_000))
    (fun raw ->
      QCheck.assume (raw <> []);
      Obs.Histogram.reset (Obs.Histogram.make "prop.quantile");
      let h = Obs.Histogram.make "prop.quantile" in
      let values = List.map (fun i -> float_of_int i /. 1000.0) raw in
      List.iter (Obs.Histogram.observe h) values;
      let sorted = List.sort Float.compare values in
      let n = List.length sorted in
      List.for_all
        (fun q ->
          let rank =
            let r = int_of_float (Float.ceil (q *. float_of_int n)) in
            if r < 1 then 1 else if r > n then n else r
          in
          let oracle = List.nth sorted (rank - 1) in
          let est = Obs.Histogram.quantile h q in
          Float.abs (est -. oracle) <= (alpha +. 1e-6) *. oracle)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

(* Satellite fix: observes on the same histogram from several domains
   must serialize on the handle's own lock and lose nothing. *)
let test_histogram_domain_safety () =
  Obs.reset ();
  Obs.use_default_clock ();
  let h = Obs.Histogram.make "test.par_observe" in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Obs.Histogram.observe h 1.0
    done
  in
  let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost observations" (4 * per_domain)
    (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "exact total" (float_of_int (4 * per_domain))
    (Obs.Histogram.total h);
  Alcotest.(check bool) "quantile of constant stream" true
    (Float.abs (Obs.Histogram.quantile h 0.5 -. 1.0) <= alpha +. 1e-6)

(* ---- GC accounting ------------------------------------------------------ *)

let test_gc_accounting () =
  Obs.reset ();
  Obs.use_default_clock ();
  Obs.set_gc_stats true;
  Fun.protect ~finally:(fun () -> Obs.set_gc_stats false) @@ fun () ->
  let captured = ref None in
  let sink = { Obs.on_span = (fun sp -> captured := Some sp) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  let sum = ref 0.0 in
  Obs.span "test.gc_span" (fun () ->
      (* enough boxed-float allocation to be unmissable on the minor heap *)
      let a = Array.init 50_000 (fun i -> float_of_int i +. 0.5) in
      Array.iter (fun x -> sum := !sum +. x) a);
  (match Obs.Alloc.find "test.gc_span" with
  | None -> Alcotest.fail "no allocation aggregate recorded"
  | Some a ->
    Alcotest.(check int) "one contributing span" 1 (Obs.Alloc.count a);
    Alcotest.(check bool) "minor words counted" true
      (Obs.Alloc.minor_words a > 10_000.0));
  (match !captured with
  | None -> Alcotest.fail "no span delivered"
  | Some sp ->
    Alcotest.(check bool) "gc.minor_words attr present" true
      (List.mem_assoc "gc.minor_words" sp.Obs.sp_attrs);
    Alcotest.(check bool) "gc.major_collections attr present" true
      (List.mem_assoc "gc.major_collections" sp.Obs.sp_attrs));
  (* gate closed: no aggregate, no attrs *)
  Obs.set_gc_stats false;
  Obs.span "test.gc_off" (fun () -> ignore (Array.init 1000 Fun.id));
  Alcotest.(check bool) "no aggregate when disabled" true
    (match Obs.Alloc.find "test.gc_off" with
    | None -> true
    | Some a -> Obs.Alloc.count a = 0)

(* the report surfaces allocation aggregates next to the quantiles *)
let test_report_gc_columns () =
  Obs.reset ();
  Obs.use_default_clock ();
  Obs.set_gc_stats true;
  Fun.protect ~finally:(fun () -> Obs.set_gc_stats false) @@ fun () ->
  Obs.span "test.gc_report" (fun () ->
      ignore (Array.init 50_000 (fun i -> float_of_int i +. 0.5)));
  let r = Obs.report () in
  match
    List.find_opt (fun a -> a.Obs.agg_name = "test.gc_report") r.Obs.r_spans
  with
  | None -> Alcotest.fail "span missing from report"
  | Some a ->
    Alcotest.(check bool) "agg minor words" true (a.Obs.agg_minor_words > 0.0);
    let json = Json.parse (Obs.report_to_json r) in
    let gc =
      Json.(member "gc" (member "test.gc_report" (member "spans" json)))
    in
    Alcotest.(check bool) "json minor words" true
      (Json.(to_num (member "minor_words" gc)) > 0.0);
    let text = Obs.report_to_string r in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i =
        i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
      in
      at 0
    in
    Alcotest.(check bool) "table grows alloc columns" true
      (contains text "minor(w)")

(* ---- structured logging ------------------------------------------------- *)

let test_log_jsonl () =
  with_fake_clock @@ fun () ->
  let path = Filename.temp_file "obs_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.close_file ();
      Obs.Log.set_level Obs.Log.Warn;
      Obs.Log.set_stderr_threshold (Some Obs.Log.Warn);
      Sys.remove path)
  @@ fun () ->
  Obs.Log.set_stderr_threshold None;
  Obs.Log.open_file path;
  Obs.Log.set_level Obs.Log.Debug;
  tick 1.5;
  Obs.span "test.logged_span" (fun () ->
      Obs.Log.warn ~attrs:[ ("k", "v \"q\"") ] "inside");
  Obs.Log.set_level Obs.Log.Warn;
  Obs.Log.info "filtered out";
  Obs.Log.error "outside";
  Obs.Log.close_file ();
  let lines =
    String.split_on_char '\n' (String.trim (read_file path))
    |> List.map Json.parse
  in
  Alcotest.(check int) "info below threshold dropped" 2 (List.length lines);
  let first = List.hd lines in
  Alcotest.(check string) "level" "warn" Json.(to_str (member "level" first));
  Alcotest.(check string) "msg" "inside" Json.(to_str (member "msg" first));
  Alcotest.(check string) "span context" "test.logged_span"
    Json.(to_str (member "span" first));
  Alcotest.(check (float 1e-9)) "depth" 1.0
    Json.(to_num (member "depth" first));
  Alcotest.(check (float 1e-9)) "fake-clock timestamp" 1.5
    Json.(to_num (member "ts" first));
  Alcotest.(check string) "attr escaped" "v \"q\""
    Json.(to_str (member "k" (member "attrs" first)));
  let second = List.nth lines 1 in
  Alcotest.(check string) "error kept" "error"
    Json.(to_str (member "level" second));
  (* outside any span the context is null *)
  Alcotest.(check bool) "span null outside spans" true
    (Json.member "span" second = Json.Null)

let test_log_levels () =
  Obs.Log.set_level Obs.Log.Warn;
  Alcotest.(check bool) "debug disabled at warn" false
    (Obs.Log.enabled Obs.Log.Debug);
  Alcotest.(check bool) "error enabled at warn" true
    (Obs.Log.enabled Obs.Log.Error);
  Obs.Log.set_level Obs.Log.Debug;
  Alcotest.(check bool) "debug enabled at debug" true
    (Obs.Log.enabled Obs.Log.Debug);
  Obs.Log.set_level Obs.Log.Warn

(* ---- trace collection and Chrome export ------------------------------- *)

let test_chrome_trace_roundtrip () =
  with_fake_clock @@ fun () ->
  Obs.Trace.clear ();
  Obs.Trace.start ();
  Obs.span "asp.ground" (fun () ->
      tick 0.001;
      Obs.span ~attrs:[ ("k", "v \"quoted\"") ] "asp.ground.delta" (fun () ->
          tick 0.002));
  Obs.span "ilp.learn" (fun () -> tick 0.003);
  let spans = Obs.Trace.stop () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.write_chrome path spans;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let json = Json.parse (String.trim text) in
  let events = Json.(to_list (member "traceEvents" json)) in
  (* one metadata event + one complete event per span *)
  Alcotest.(check int) "event count" 4 (List.length events);
  let complete =
    List.filter (fun e -> Json.(to_str (member "ph" e)) = "X") events
  in
  let names = List.map (fun e -> Json.(to_str (member "name" e))) complete in
  Alcotest.(check (list string))
    "names in start order"
    [ "asp.ground"; "asp.ground.delta"; "ilp.learn" ]
    names;
  let cats = List.map (fun e -> Json.(to_str (member "cat" e))) complete in
  Alcotest.(check (list string)) "layer categories" [ "asp"; "asp"; "ilp" ] cats;
  let delta = List.nth complete 1 in
  Alcotest.(check (float 1e-6)) "ts is relative microseconds" 1000.0
    Json.(to_num (member "ts" delta));
  Alcotest.(check (float 1e-6)) "dur in microseconds" 2000.0
    Json.(to_num (member "dur" delta));
  (* the escaped attribute survives the round-trip *)
  Alcotest.(check string) "attr escaped" "v \"quoted\""
    Json.(to_str (member "k" (member "args" delta)))

let test_trace_limit () =
  with_fake_clock @@ fun () ->
  Obs.Trace.clear ();
  Obs.Trace.set_limit 2;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_limit 1_000_000) @@ fun () ->
  Obs.Trace.start ();
  for _ = 1 to 5 do
    Obs.span "tiny" (fun () -> tick 0.1)
  done;
  let spans = Obs.Trace.stop () in
  Alcotest.(check int) "capped" 2 (List.length spans);
  Alcotest.(check int) "dropped counted" 3 (Obs.Trace.dropped ())

(* ---- flamegraph exporters ---------------------------------------------- *)

(* A small two-root trace with known self-times:
     a (4ms total: 1ms self before b, then b for 2ms, then 1ms self)
     a;b (2ms)
     a again (1ms)
   Folded self-times: "a" 1+1+1 = 3ms, "a;b" 2ms. *)
let sample_trace () =
  Obs.Trace.clear ();
  Obs.Trace.start ();
  Obs.span "a" (fun () ->
      tick 0.001;
      Obs.span "b" (fun () -> tick 0.002);
      tick 0.001);
  Obs.span "a" (fun () -> tick 0.001);
  Obs.Trace.stop ()

let test_folded_export () =
  with_fake_clock @@ fun () ->
  let spans = sample_trace () in
  Alcotest.(check string) "folded self-time stacks" "a 3000\na;b 2000\n"
    (Obs.Trace.to_folded spans);
  let path = Filename.temp_file "obs_folded" ".folded" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.write_folded path spans;
  Alcotest.(check string) "file matches in-memory form"
    (Obs.Trace.to_folded spans) (read_file path)

let test_speedscope_export () =
  with_fake_clock @@ fun () ->
  let spans = sample_trace () in
  let json = Json.parse (Obs.Trace.to_speedscope_json spans) in
  Alcotest.(check string) "schema"
    "https://www.speedscope.app/file-format-schema.json"
    Json.(to_str (member "$schema" json));
  let frames = Json.(to_list (member "frames" (member "shared" json))) in
  let frame_names =
    List.map (fun f -> Json.(to_str (member "name" f))) frames
  in
  Alcotest.(check (list string)) "frames deduplicated" [ "a"; "b" ] frame_names;
  let profiles = Json.(to_list (member "profiles" json)) in
  Alcotest.(check int) "single-domain trace, one profile" 1
    (List.length profiles);
  let p = List.hd profiles in
  Alcotest.(check string) "evented profile" "evented"
    Json.(to_str (member "type" p));
  Alcotest.(check string) "unit seconds" "seconds"
    Json.(to_str (member "unit" p));
  let events = Json.(to_list (member "events" p)) in
  (* three spans -> three O/C pairs, balanced and non-decreasing in time *)
  Alcotest.(check int) "event count" 6 (List.length events);
  let depth = ref 0 and last_at = ref neg_infinity and ok = ref true in
  List.iter
    (fun e ->
      let at = Json.(to_num (member "at" e)) in
      if at < !last_at then ok := false;
      last_at := at;
      (match Json.(to_str (member "type" e)) with
      | "O" -> incr depth
      | "C" -> decr depth
      | _ -> ok := false);
      if !depth < 0 then ok := false)
    events;
  Alcotest.(check bool) "events balanced and monotone" true
    (!ok && !depth = 0);
  Alcotest.(check (float 1e-9)) "profile spans the whole trace" 0.005
    Json.(to_num (member "endValue" p))

(* ---- aggregate report -------------------------------------------------- *)

let test_report () =
  with_fake_clock @@ fun () ->
  Obs.span "w.a" (fun () -> tick 1.0);
  Obs.span "w.a" (fun () -> tick 3.0);
  Obs.Counter.incr (Obs.Counter.make "w.count") ~by:7;
  let r = Obs.report () in
  (match List.find_opt (fun a -> a.Obs.agg_name = "w.a") r.Obs.r_spans with
  | None -> Alcotest.fail "span missing from report"
  | Some a ->
    Alcotest.(check int) "count" 2 a.Obs.agg_count;
    Alcotest.(check (float 1e-9)) "total" 4.0 a.Obs.agg_total;
    Alcotest.(check (float 1e-9)) "mean" 2.0 a.Obs.agg_mean;
    Alcotest.(check (float 1e-9)) "max" 3.0 a.Obs.agg_max);
  Alcotest.(check (option int)) "counter present" (Some 7)
    (List.assoc_opt "w.count" r.Obs.r_counters);
  (* the rendered report and its JSON form mention both entries *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let text = Obs.report_to_string r in
  Alcotest.(check bool) "text has span" true (contains text "w.a");
  Alcotest.(check bool) "text has counter" true (contains text "w.count");
  let json = Json.parse (Obs.report_to_json r) in
  Alcotest.(check (float 1e-9)) "json total" 4.0
    Json.(to_num (member "total_s" (member "w.a" (member "spans" json))));
  Alcotest.(check (float 1e-9)) "json counter" 7.0
    Json.(to_num (member "w.count" (member "counters" json)))

let test_stats_view () =
  Obs.reset ();
  let p = Asp.Parser.parse_program "a :- not b. b :- not a." in
  let models, stats = Asp.Stats.with_diff (fun () -> Asp.Solver.solve p) in
  Alcotest.(check int) "two models" 2 (List.length models);
  Alcotest.(check int) "one ground call" 1 stats.Asp.Stats.ground_calls;
  Alcotest.(check int) "one solve call" 1 stats.Asp.Stats.solve_calls;
  Alcotest.(check int) "models counted" 2 stats.Asp.Stats.models_found;
  Alcotest.(check bool) "ground time measured" true
    (stats.Asp.Stats.ground_seconds >= 0.0);
  (* the same numbers are visible through the Obs registry *)
  Alcotest.(check int) "registry agrees"
    (Obs.Counter.value (Obs.Counter.make "asp.solve.calls"))
    stats.Asp.Stats.solve_calls;
  (* a second scoped measurement starts from zero *)
  let _, stats2 = Asp.Stats.with_diff (fun () -> Asp.Solver.solve p) in
  Alcotest.(check int) "diff is scoped" 1 stats2.Asp.Stats.solve_calls

(* ---- qcheck: report totals equal the sum of span durations ------------ *)

let report_totals_prop =
  QCheck.Test.make ~count:100
    ~name:"report per-span totals = sum of span durations"
    QCheck.(small_list (pair (int_bound 3) (int_range 1 1000)))
    (fun spans ->
      with_fake_clock @@ fun () ->
      let name_of i = Printf.sprintf "prop.s%d" i in
      List.iter
        (fun (name_idx, dur_ms) ->
          Obs.span (name_of name_idx) (fun () ->
              tick (float_of_int dur_ms /. 1000.0)))
        spans;
      let r = Obs.report () in
      List.for_all
        (fun idx ->
          let expected =
            List.fold_left
              (fun acc (i, d) ->
                if i = idx then acc +. (float_of_int d /. 1000.0) else acc)
              0.0 spans
          and count = List.length (List.filter (fun (i, _) -> i = idx) spans) in
          match
            List.find_opt (fun a -> a.Obs.agg_name = name_of idx) r.Obs.r_spans
          with
          | None -> count = 0
          | Some a ->
            a.Obs.agg_count = count
            && Float.abs (a.Obs.agg_total -. expected) < 1e-9)
        [ 0; 1; 2; 3 ])

(* Regression for the default clock: a span around a real sleep must
   measure elapsed wall-clock time. The old [Sys.time] default counted
   CPU time, under which a sleeping span reads ~0. *)
let test_default_clock_is_wall_clock () =
  Obs.reset ();
  Obs.use_default_clock ();
  let seen = ref None in
  let sink = { Obs.on_span = (fun s -> seen := Some s) } in
  Obs.register_sink sink;
  Fun.protect
    ~finally:(fun () -> Obs.unregister_sink sink)
    (fun () -> Obs.span "test.sleep" (fun () -> Unix.sleepf 0.05));
  match !seen with
  | None -> Alcotest.fail "span not delivered"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "sleep of 0.05s measured as %.4fs" s.Obs.sp_dur)
      true
      (s.Obs.sp_dur >= 0.04)

(* ---- rolling windows ---------------------------------------------------- *)

(* Slot-granular expiry under a hand-advanced clock: window 10 s in
   5 slots of 2 s, so an observation expires once its slot's epoch
   falls out of the last 5. *)
let test_window_expiry () =
  with_fake_clock @@ fun () ->
  let w = Obs.Window.make ~slots:5 ~window:10.0 "test.window" in
  Obs.Window.observe w 1.0;
  tick 4.0;
  Obs.Window.observe w 2.0;
  Alcotest.(check int) "both inside the window" 2 (Obs.Window.count w);
  Alcotest.(check (float 1e-9)) "total over live slots" 3.0
    (Obs.Window.total w);
  Alcotest.(check (float 1e-9)) "rate = count / window" 0.2
    (Obs.Window.rate w);
  tick 7.0;
  (* t = 11: the t = 0 slot is 5 epochs old and gone, t = 4 is live *)
  Alcotest.(check int) "old slot expired" 1 (Obs.Window.count w);
  Alcotest.(check (float 1e-9)) "expired value left the total" 2.0
    (Obs.Window.total w);
  tick 20.0;
  Alcotest.(check int) "everything expired" 0 (Obs.Window.count w);
  Alcotest.(check (float 1e-9)) "empty window quantile" 0.0
    (Obs.Window.quantile w 0.5)

(* The satellite property: windowed quantiles match an exact sorted
   oracle (within the shared log-bucket error bound) when every
   observation is still inside the window — the fake clock advances
   less than the window span in total. *)
let window_oracle_prop =
  QCheck.Test.make ~count:100
    ~name:"window quantiles match a sorted oracle on a synthetic clock"
    QCheck.(
      list_of_size Gen.(1 -- 100)
        (pair (int_range 1 1_000_000) (int_bound 300)))
    (fun raw ->
      QCheck.assume (raw <> []);
      with_fake_clock @@ fun () ->
      let w = Obs.Window.make ~window:60.0 "prop.window" in
      let values =
        List.map
          (fun (v, dt_ms) ->
            tick (float_of_int dt_ms /. 1000.0);
            let v = float_of_int v /. 1000.0 in
            Obs.Window.observe w v;
            v)
          raw
      in
      let sorted = List.sort Float.compare values in
      let n = List.length sorted in
      Obs.Window.count w = n
      && List.for_all
           (fun q ->
             let rank =
               let r = int_of_float (Float.ceil (q *. float_of_int n)) in
               if r < 1 then 1 else if r > n then n else r
             in
             let oracle = List.nth sorted (rank - 1) in
             let est = Obs.Window.quantile w q in
             Float.abs (est -. oracle) <= (alpha +. 1e-6) *. oracle)
           [ 0.25; 0.5; 0.9; 0.99 ])

let test_slo_burn () =
  with_fake_clock @@ fun () ->
  let slo = Obs.Slo.make ~objective:0.9 ~window:60.0 ~target:0.1 "test.slo" in
  (* idle: fully compliant, nothing burned *)
  let idle = Obs.Slo.status slo in
  Alcotest.(check (float 1e-9)) "idle compliance" 1.0 idle.Obs.Slo.compliance;
  Alcotest.(check (float 1e-9)) "idle burn" 0.0 idle.Obs.Slo.burn_rate;
  (* 18 in-target + 2 breaches with a 10% budget = burning at exactly
     the sustainable pace *)
  for _ = 1 to 18 do
    Obs.Slo.record slo 0.05
  done;
  for _ = 1 to 2 do
    Obs.Slo.record slo 0.5
  done;
  let st = Obs.Slo.status slo in
  Alcotest.(check int) "total" 20 st.Obs.Slo.total;
  Alcotest.(check int) "breaches" 2 st.Obs.Slo.breaches;
  Alcotest.(check int) "windowed total" 20 st.Obs.Slo.window_total;
  Alcotest.(check (float 1e-6)) "compliance" 0.9 st.Obs.Slo.compliance;
  Alcotest.(check (float 1e-6)) "burn rate" 1.0 st.Obs.Slo.burn_rate;
  Alcotest.(check (float 1e-6)) "budget spent exactly" 0.0
    st.Obs.Slo.budget_remaining;
  (* the window forgets; cumulative totals do not *)
  tick 120.0;
  let later = Obs.Slo.status slo in
  Alcotest.(check int) "window empty after expiry" 0
    later.Obs.Slo.window_total;
  Alcotest.(check (float 1e-9)) "compliant when idle again" 1.0
    later.Obs.Slo.compliance;
  Alcotest.(check int) "cumulative breaches survive" 2 later.Obs.Slo.breaches

(* ---- trace context ------------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_trace_context () =
  Alcotest.(check bool) "roots unique" true
    (Obs.Trace_context.new_root_id () <> Obs.Trace_context.new_root_id ());
  Alcotest.(check (option string)) "no ambient context" None
    (Obs.Trace_context.current ());
  Obs.Trace_context.with_id "t-1" (fun () ->
      Alcotest.(check (option string)) "installed" (Some "t-1")
        (Obs.Trace_context.current ());
      let child = Obs.Trace_context.child_id () in
      Alcotest.(check bool)
        (Printf.sprintf "child %s extends parent" child)
        true
        (starts_with ~prefix:"t-1." child);
      Obs.Trace_context.with_opt None (fun () ->
          Alcotest.(check (option string)) "with_opt None masks" None
            (Obs.Trace_context.current ())));
  Alcotest.(check (option string)) "restored after with_id" None
    (Obs.Trace_context.current ());
  (* scope: fresh root at an entry point, reused inside one *)
  Obs.Trace_context.scope (fun id ->
      Alcotest.(check bool) "scope roots an id" true (id <> "");
      Alcotest.(check (option string)) "scope installs it" (Some id)
        (Obs.Trace_context.current ());
      Obs.Trace_context.scope (fun inner ->
          Alcotest.(check string) "nested scope reuses the ambient id" id
            inner));
  (* a child without any context is itself a root *)
  Alcotest.(check bool) "orphan child is a root" true
    (Obs.Trace_context.child_id () <> "")

(* spans finished under a context carry it as a "trace" attribute; spans
   outside any context stay attribute-free *)
let test_span_trace_attr () =
  with_fake_clock @@ fun () ->
  let captured = ref None in
  let sink = { Obs.on_span = (fun sp -> captured := Some sp) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  Obs.Trace_context.with_id "t-attr" (fun () ->
      Obs.span "test.traced" (fun () -> ()));
  (match !captured with
  | None -> Alcotest.fail "no span delivered"
  | Some sp ->
    Alcotest.(check (option string)) "trace attr carries the id"
      (Some "t-attr")
      (List.assoc_opt "trace" sp.Obs.sp_attrs));
  Obs.span "test.untraced" (fun () -> ());
  match !captured with
  | None -> Alcotest.fail "no span delivered"
  | Some sp ->
    Alcotest.(check (option string)) "no trace attr outside a context" None
      (List.assoc_opt "trace" sp.Obs.sp_attrs)

(* ---- OpenMetrics exposition --------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_openmetrics_render () =
  with_fake_clock @@ fun () ->
  Obs.Counter.incr (Obs.Counter.make "om.count") ~by:3;
  Obs.span "om.span" (fun () -> tick 0.25);
  let w = Obs.Window.make "om.window" in
  Obs.Window.observe w 0.5;
  let slo = Obs.Slo.make ~target:0.1 "om.slo" in
  Obs.Slo.record slo 0.2;
  let text =
    Obs.Openmetrics.render ~extra:[ ("om.gauge", [ ("k", "v") ], 7.0) ] ()
  in
  List.iter
    (fun (what, needle) ->
      Alcotest.(check bool) (what ^ ": " ^ needle) true (contains text needle))
    [
      ("counter type", "# TYPE agenp_om_count counter");
      ("counter sample", "agenp_om_count_total 3");
      ("summary type", "# TYPE agenp_om_span_seconds summary");
      ("summary quantile", "agenp_om_span_seconds{quantile=\"0.5\"}");
      ("summary count", "agenp_om_span_seconds_count 1");
      ( "window quantile gauge",
        "agenp_om_window_window_seconds{quantile=\"0.5\",window=\"30s\"}" );
      ("window count gauge", "agenp_om_window_window_count{window=\"30s\"} 1");
      ( "slo compliance",
        "agenp_slo_om_slo_compliance{target=\"0.1\",objective=\"0.99\"}" );
      ( "slo breach counter",
        "agenp_slo_om_slo_breaches_total{target=\"0.1\",objective=\"0.99\"} 1" );
      ("gc gauge", "# TYPE agenp_gc_minor_words gauge");
      ("extra gauge", "agenp_om_gauge{k=\"v\"} 7");
    ];
  let eof = "# EOF\n" in
  Alcotest.(check string) "terminated by # EOF" eof
    (String.sub text (String.length text - String.length eof)
       (String.length eof));
  Alcotest.(check string) "names sanitized"
    "agenp_serve_cache_hit_rate"
    (Obs.Openmetrics.metric "serve.cache-hit rate")

(* ---- policy-health detectors -------------------------------------------- *)

(* Rolling and overall rates, per-version tallies, and reset. *)
let test_health_rates () =
  with_fake_clock @@ fun () ->
  let h = Obs.Health.make "health.rates" in
  (* 20 observations: versions 1 and 2, half positive under v2 *)
  for i = 1 to 10 do
    Obs.Health.observe ~version:1 h false;
    Obs.Health.observe ~version:2 h (i mod 2 = 0)
  done;
  Alcotest.(check int) "observations" 20 (Obs.Health.observations h);
  Alcotest.(check int) "positives" 5 (Obs.Health.positives h);
  Alcotest.(check (float 1e-9)) "overall rate" 0.25 (Obs.Health.overall_rate h);
  Alcotest.(check (float 1e-9)) "rolling rate" 0.25 (Obs.Health.rate h);
  (match Obs.Health.version_rates h with
  | [ (1, n1, r1); (2, n2, r2) ] ->
    Alcotest.(check int) "v1 observations" 10 n1;
    Alcotest.(check (float 1e-9)) "v1 rate" 0.0 r1;
    Alcotest.(check int) "v2 observations" 10 n2;
    Alcotest.(check (float 1e-9)) "v2 rate" 0.5 r2
  | other ->
    Alcotest.failf "expected two version rows, got %d" (List.length other));
  Alcotest.(check bool) "find" true (Obs.Health.find "health.rates" <> None);
  Obs.Health.reset h;
  Alcotest.(check int) "reset observations" 0 (Obs.Health.observations h);
  Alcotest.(check (float 1e-9)) "reset rate" 0.0 (Obs.Health.rate h);
  Alcotest.(check int) "reset versions" 0
    (List.length (Obs.Health.version_rates h))

(* The rolling window forgets old observations: 50 positives then 50
   negatives leaves a window-rate of 0 while the overall rate is 0.5. *)
let test_health_window_forgets () =
  with_fake_clock @@ fun () ->
  let h = Obs.Health.make "health.window" in
  for _ = 1 to 50 do
    Obs.Health.observe h true
  done;
  for _ = 1 to 50 do
    Obs.Health.observe h false
  done;
  Alcotest.(check (float 1e-9)) "window rate" 0.0 (Obs.Health.rate h);
  Alcotest.(check (float 1e-9)) "overall rate" 0.5 (Obs.Health.overall_rate h)

(* The bounded event ring: capacity caps retention, [last] trims, the
   total counts expired events, and sequence numbers stay global. *)
let test_health_ring () =
  with_fake_clock @@ fun () ->
  Fun.protect ~finally:(fun () -> Obs.Health.set_ring_capacity 256)
  @@ fun () ->
  Obs.Health.set_ring_capacity 4;
  let seqs evs = List.map (fun e -> e.Obs.Health.ev_seq) evs in
  for i = 0 to 5 do
    ignore
      (Obs.Health.emit ~signal:"ring.sig" ~kind:"relearn"
         ~detail:(string_of_int i) ()
        : Obs.Health.event)
  done;
  Alcotest.(check int) "events_total" 6 (Obs.Health.events_total ());
  Alcotest.(check (list int))
    "ring keeps newest, oldest first" [ 2; 3; 4; 5 ]
    (seqs (Obs.Health.events ()));
  Alcotest.(check (list int))
    "last trims" [ 4; 5 ]
    (seqs (Obs.Health.events ~last:2 ()));
  Obs.Health.clear_events ();
  Alcotest.(check int) "cleared" 0 (List.length (Obs.Health.events ()))

(* Events survive the JSON line format: to_json |> of_json is the
   identity, and write_jsonl/read_jsonl round-trips a whole ring. *)
let test_health_jsonl_roundtrip () =
  with_fake_clock @@ fun () ->
  tick 12.5;
  ignore
    (Obs.Health.emit ~gpm_version:3 ~observations:42 ~baseline:0.1
       ~current:0.65 ~deviation:2.31 ~old_size:4 ~new_size:6
       ~detail:"violation_rate:updated" ~signal:"padap.relearn"
       ~kind:"relearn" ()
      : Obs.Health.event);
  ignore
    (Obs.Health.emit ~signal:"pep.noncompliance" ~kind:"rate_shift" ()
      : Obs.Health.event);
  let evs = Obs.Health.events () in
  List.iter
    (fun e ->
      Alcotest.(check bool) "to_json |> of_json is the identity" true
        (Obs.Health.event_of_json (Obs.Health.event_to_json e) = e))
    evs;
  let path = Filename.temp_file "obs_health" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Health.write_jsonl path evs;
  Alcotest.(check bool) "file round-trip" true (Obs.Health.read_jsonl path = evs)

(* A hard 0 -> 1 rate shift alarms within a handful of observations,
   and the alarm carries a structured rate_shift event. *)
let test_health_detects_shift () =
  with_fake_clock @@ fun () ->
  let h = Obs.Health.make "health.shift" in
  for _ = 1 to 40 do
    Obs.Health.observe ~version:7 h false
  done;
  Alcotest.(check int) "quiet before the shift" 0 (Obs.Health.alarms h);
  let detected_after = ref 0 in
  (try
     for i = 1 to 10 do
       Obs.Health.observe ~version:7 h true;
       if Obs.Health.alarms h > 0 then begin
         detected_after := i;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Printf.sprintf "alarm within 10 observations (fired after %d)"
       !detected_after)
    true
    (!detected_after >= 1 && !detected_after <= 10);
  match
    List.find_opt
      (fun e -> e.Obs.Health.ev_signal = "health.shift")
      (Obs.Health.events ())
  with
  | None -> Alcotest.fail "no rate_shift event in the ring"
  | Some e ->
    Alcotest.(check string) "kind" "rate_shift" e.Obs.Health.ev_kind;
    Alcotest.(check int) "gpm version" 7 e.Obs.Health.ev_gpm_version;
    Alcotest.(check bool) "PH statistic above lambda" true
      (e.Obs.Health.ev_deviation > Obs.Health.default_config.ph_lambda);
    Alcotest.(check int) "observation count on the event"
      (40 + !detected_after) e.Obs.Health.ev_observations

(* qcheck: a periodic stationary stream (one positive every k) never
   alarms, whatever the period or length. *)
let health_stationary_prop =
  QCheck.Test.make ~count:100 ~name:"health: no alarm on stationary stream"
    QCheck.(pair (int_range 2 20) (int_range 50 300))
    (fun (period, len) ->
      with_fake_clock @@ fun () ->
      let h = Obs.Health.make "prop.stationary" in
      for i = 0 to len - 1 do
        Obs.Health.observe h (i mod period = 0)
      done;
      Obs.Health.alarms h = 0)

(* qcheck: after any quiet prefix, a sustained 0 -> 1 shift is caught
   within 10 observations. *)
let health_detection_delay_prop =
  QCheck.Test.make ~count:100 ~name:"health: bounded detection delay"
    QCheck.(int_range 10 100)
    (fun quiet ->
      with_fake_clock @@ fun () ->
      let h = Obs.Health.make "prop.delay" in
      for _ = 1 to quiet do
        Obs.Health.observe h false
      done;
      let delay = ref 0 in
      (try
         for i = 1 to 10 do
           Obs.Health.observe h true;
           if Obs.Health.alarms h > 0 then begin
             delay := i;
             raise Exit
           end
         done
       with Exit -> ());
      !delay >= 1 && !delay <= 10)

(* qcheck: determinism under [set_clock] across pool sizes. Four
   signals each consume the same observation stream; whether the
   streams run on 1, 2, or 4 domains, every signal's final rates,
   alarm count, and ring events are identical. *)
let health_domain_determinism_prop =
  let snapshot names =
    let signal name =
      match Obs.Health.find name with
      | None -> Alcotest.failf "signal %s vanished" name
      | Some h ->
        ( name,
          Obs.Health.observations h,
          Obs.Health.positives h,
          Obs.Health.alarms h,
          Obs.Health.rate h )
    in
    let events =
      Obs.Health.events ()
      |> List.map (fun e ->
             Obs.Health.
               ( e.ev_signal,
                 e.ev_kind,
                 e.ev_observations,
                 e.ev_ts,
                 e.ev_current ))
      |> List.sort compare
    in
    (List.map signal names, events)
  in
  QCheck.Test.make ~count:15
    ~name:"health: deterministic across domains 1/2/4"
    QCheck.(list_of_size (QCheck.Gen.int_range 20 120) bool)
    (fun stream ->
      let names = List.init 4 (fun i -> Printf.sprintf "det.s%d" i) in
      let run degree =
        with_fake_clock @@ fun () ->
        let feed name =
          let h = Obs.Health.make name in
          List.iter (fun b -> Obs.Health.observe h b) stream
        in
        let chunks =
          (* partition the 4 signals round-robin over [degree] domains *)
          List.init degree (fun d ->
              List.filteri (fun i _ -> i mod degree = d) names)
        in
        (match chunks with
        | [] -> ()
        | mine :: others ->
          let spawned =
            List.map
              (fun chunk -> Domain.spawn (fun () -> List.iter feed chunk))
              others
          in
          List.iter feed mine;
          List.iter Domain.join spawned);
        snapshot names
      in
      let s1 = run 1 in
      run 2 = s1 && run 4 = s1)

(* Parallel spans: counters from many domains aggregate exactly, and
   each span records the domain it ran on. *)
let test_domain_safety () =
  Obs.reset ();
  Obs.use_default_clock ();
  let c = Obs.Counter.make "test.par_incrs" in
  let domains = ref [] in
  let sink =
    { Obs.on_span = (fun s -> domains := s.Obs.sp_domain :: !domains) }
  in
  Obs.register_sink sink;
  Fun.protect
    ~finally:(fun () -> Obs.unregister_sink sink)
    (fun () ->
      let worker () =
        for _ = 1 to 1000 do
          Obs.Counter.incr c
        done;
        Obs.span "test.par_span" (fun () -> ())
      in
      let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned);
  Alcotest.(check int) "atomic increments" 4000 (Obs.Counter.value c);
  Alcotest.(check int) "one span per domain" 4 (List.length !domains);
  Alcotest.(check bool) "main domain recorded" true (List.mem 0 !domains)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "fine span gating" `Quick test_fine_span_gating;
          Alcotest.test_case "wall clock" `Quick test_default_clock_is_wall_clock;
          Alcotest.test_case "domain safety" `Quick test_domain_safety;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "quantiles" `Quick test_quantiles_basic;
          Alcotest.test_case "concurrent observes" `Quick
            test_histogram_domain_safety;
          QCheck_alcotest.to_alcotest quantile_bound_prop;
        ] );
      ( "gc",
        [
          Alcotest.test_case "span accounting" `Quick test_gc_accounting;
          Alcotest.test_case "report columns" `Quick test_report_gc_columns;
        ] );
      ( "log",
        [
          Alcotest.test_case "jsonl sink" `Quick test_log_jsonl;
          Alcotest.test_case "level thresholds" `Quick test_log_levels;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome JSON round-trip" `Quick
            test_chrome_trace_roundtrip;
          Alcotest.test_case "span cap" `Quick test_trace_limit;
          Alcotest.test_case "folded stacks" `Quick test_folded_export;
          Alcotest.test_case "speedscope JSON" `Quick test_speedscope_export;
        ] );
      ( "report",
        [
          Alcotest.test_case "aggregation" `Quick test_report;
          Alcotest.test_case "stats view" `Quick test_stats_view;
          QCheck_alcotest.to_alcotest report_totals_prop;
        ] );
      ( "windows",
        [
          Alcotest.test_case "slot expiry" `Quick test_window_expiry;
          QCheck_alcotest.to_alcotest window_oracle_prop;
          Alcotest.test_case "slo burn accounting" `Quick test_slo_burn;
        ] );
      ( "trace-context",
        [
          Alcotest.test_case "ids, nesting, masking" `Quick test_trace_context;
          Alcotest.test_case "span trace attribute" `Quick
            test_span_trace_attr;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "exposition shapes" `Quick
            test_openmetrics_render;
        ] );
      ( "health",
        [
          Alcotest.test_case "rates and versions" `Quick test_health_rates;
          Alcotest.test_case "window forgets" `Quick
            test_health_window_forgets;
          Alcotest.test_case "event ring" `Quick test_health_ring;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_health_jsonl_roundtrip;
          Alcotest.test_case "detects rate shift" `Quick
            test_health_detects_shift;
          QCheck_alcotest.to_alcotest health_stationary_prop;
          QCheck_alcotest.to_alcotest health_detection_delay_prop;
          QCheck_alcotest.to_alcotest health_domain_determinism_prop;
        ] );
    ]
