(* Tests for the observability substrate: span nesting and ordering,
   counter/histogram aggregation, sink delivery, Chrome trace export
   (emitted JSON is parsed back with a small JSON reader), and a qcheck
   property tying the aggregate report to the raw span durations. *)

(* ---- deterministic clock ---------------------------------------------- *)

(* A fake clock the tests advance by hand; [tick] moves time forward. *)
let time = ref 0.0
let tick dt = time := !time +. dt

let with_fake_clock f =
  Obs.reset ();
  Obs.set_detailed false;
  time := 0.0;
  Obs.set_clock (fun () -> !time);
  Fun.protect ~finally:Obs.use_default_clock f

(* ---- a minimal JSON reader (no JSON library in the dependency set) ---- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
            Buffer.add_char b '\n';
            advance ();
            go ()
          | Some 't' ->
            Buffer.add_char b '\t';
            advance ();
            go ()
          | Some 'r' ->
            Buffer.add_char b '\r';
            advance ();
            go ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              advance ()
            done;
            Buffer.add_char b '?';
            go ()
          | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
          | None -> fail "bad escape")
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> list ()
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end"
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    and list () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let member k = function
    | Obj kvs -> List.assoc k kvs
    | _ -> raise (Bad ("no member " ^ k))

  let to_list = function List l -> l | _ -> raise (Bad "not a list")
  let to_str = function Str s -> s | _ -> raise (Bad "not a string")
  let to_num = function Num f -> f | _ -> raise (Bad "not a number")
end

(* ---- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  with_fake_clock @@ fun () ->
  let finished = ref [] in
  let sink = { Obs.on_span = (fun sp -> finished := sp :: !finished) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  Obs.span "outer" (fun () ->
      tick 1.0;
      Obs.span "inner" (fun () -> tick 0.25);
      tick 0.5);
  let spans = List.rev !finished in
  Alcotest.(check (list string))
    "children finish first" [ "inner"; "outer" ]
    (List.map (fun sp -> sp.Obs.sp_name) spans);
  let inner = List.hd spans and outer = List.nth spans 1 in
  Alcotest.(check int) "inner depth" 1 inner.Obs.sp_depth;
  Alcotest.(check int) "outer depth" 0 outer.Obs.sp_depth;
  Alcotest.(check (float 1e-9)) "inner duration" 0.25 inner.Obs.sp_dur;
  Alcotest.(check (float 1e-9)) "outer duration" 1.75 outer.Obs.sp_dur;
  Alcotest.(check (float 1e-9)) "inner start" 1.0 inner.Obs.sp_start

let test_span_exception_safety () =
  with_fake_clock @@ fun () ->
  (try
     Obs.span "boom" (fun () ->
         tick 2.0;
         failwith "boom")
   with Failure _ -> ());
  match Obs.Histogram.find "boom" with
  | None -> Alcotest.fail "span not recorded"
  | Some h ->
    Alcotest.(check int) "recorded once" 1 (Obs.Histogram.count h);
    Alcotest.(check (float 1e-9)) "duration recorded" 2.0
      (Obs.Histogram.total h)

let test_span_attrs () =
  with_fake_clock @@ fun () ->
  let captured = ref None in
  let sink = { Obs.on_span = (fun sp -> captured := Some sp) } in
  Obs.register_sink sink;
  Fun.protect ~finally:(fun () -> Obs.unregister_sink sink) @@ fun () ->
  Obs.span ~attrs:[ ("a", "1") ] "with-attrs" (fun () ->
      Obs.set_attr "b" "2");
  match !captured with
  | None -> Alcotest.fail "no span delivered"
  | Some sp ->
    Alcotest.(check (list (pair string string)))
      "attrs in order"
      [ ("a", "1"); ("b", "2") ]
      sp.Obs.sp_attrs

let test_fine_span_gating () =
  with_fake_clock @@ fun () ->
  Obs.set_detailed false;
  Obs.fine_span "gated" (fun () -> tick 1.0);
  Alcotest.(check bool) "no histogram when disabled" true
    (match Obs.Histogram.find "gated" with
    | None -> true
    | Some h -> Obs.Histogram.count h = 0);
  Obs.set_detailed true;
  Fun.protect ~finally:(fun () -> Obs.set_detailed false) @@ fun () ->
  Obs.fine_span "gated" (fun () -> tick 1.0);
  match Obs.Histogram.find "gated" with
  | None -> Alcotest.fail "fine span not recorded when enabled"
  | Some h ->
    Alcotest.(check int) "recorded when enabled" 1 (Obs.Histogram.count h)

(* ---- counters and histograms ------------------------------------------ *)

let test_counters () =
  Obs.reset ();
  let c = Obs.Counter.make "test.counter" in
  Obs.Counter.incr c;
  Obs.Counter.incr c ~by:41;
  Alcotest.(check int) "accumulated" 42 (Obs.Counter.value c);
  (* find-or-create returns the same handle *)
  let c' = Obs.Counter.make "test.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "shared handle" 43 (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c')

let test_histograms () =
  Obs.reset ();
  let h = Obs.Histogram.make "test.histogram" in
  List.iter (Obs.Histogram.observe h) [ 1.0; 3.0; 2.0 ];
  Alcotest.(check int) "count" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Obs.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Obs.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Obs.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Histogram.min_value h);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "reset mean" 0.0 (Obs.Histogram.mean h)

(* ---- trace collection and Chrome export ------------------------------- *)

let test_chrome_trace_roundtrip () =
  with_fake_clock @@ fun () ->
  Obs.Trace.clear ();
  Obs.Trace.start ();
  Obs.span "asp.ground" (fun () ->
      tick 0.001;
      Obs.span ~attrs:[ ("k", "v \"quoted\"") ] "asp.ground.delta" (fun () ->
          tick 0.002));
  Obs.span "ilp.learn" (fun () -> tick 0.003);
  let spans = Obs.Trace.stop () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.write_chrome path spans;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let json = Json.parse (String.trim text) in
  let events = Json.(to_list (member "traceEvents" json)) in
  (* one metadata event + one complete event per span *)
  Alcotest.(check int) "event count" 4 (List.length events);
  let complete =
    List.filter (fun e -> Json.(to_str (member "ph" e)) = "X") events
  in
  let names = List.map (fun e -> Json.(to_str (member "name" e))) complete in
  Alcotest.(check (list string))
    "names in start order"
    [ "asp.ground"; "asp.ground.delta"; "ilp.learn" ]
    names;
  let cats = List.map (fun e -> Json.(to_str (member "cat" e))) complete in
  Alcotest.(check (list string)) "layer categories" [ "asp"; "asp"; "ilp" ] cats;
  let delta = List.nth complete 1 in
  Alcotest.(check (float 1e-6)) "ts is relative microseconds" 1000.0
    Json.(to_num (member "ts" delta));
  Alcotest.(check (float 1e-6)) "dur in microseconds" 2000.0
    Json.(to_num (member "dur" delta));
  (* the escaped attribute survives the round-trip *)
  Alcotest.(check string) "attr escaped" "v \"quoted\""
    Json.(to_str (member "k" (member "args" delta)))

let test_trace_limit () =
  with_fake_clock @@ fun () ->
  Obs.Trace.clear ();
  Obs.Trace.set_limit 2;
  Fun.protect ~finally:(fun () -> Obs.Trace.set_limit 1_000_000) @@ fun () ->
  Obs.Trace.start ();
  for _ = 1 to 5 do
    Obs.span "tiny" (fun () -> tick 0.1)
  done;
  let spans = Obs.Trace.stop () in
  Alcotest.(check int) "capped" 2 (List.length spans);
  Alcotest.(check int) "dropped counted" 3 (Obs.Trace.dropped ())

(* ---- aggregate report -------------------------------------------------- *)

let test_report () =
  with_fake_clock @@ fun () ->
  Obs.span "w.a" (fun () -> tick 1.0);
  Obs.span "w.a" (fun () -> tick 3.0);
  Obs.Counter.incr (Obs.Counter.make "w.count") ~by:7;
  let r = Obs.report () in
  (match List.find_opt (fun a -> a.Obs.agg_name = "w.a") r.Obs.r_spans with
  | None -> Alcotest.fail "span missing from report"
  | Some a ->
    Alcotest.(check int) "count" 2 a.Obs.agg_count;
    Alcotest.(check (float 1e-9)) "total" 4.0 a.Obs.agg_total;
    Alcotest.(check (float 1e-9)) "mean" 2.0 a.Obs.agg_mean;
    Alcotest.(check (float 1e-9)) "max" 3.0 a.Obs.agg_max);
  Alcotest.(check (option int)) "counter present" (Some 7)
    (List.assoc_opt "w.count" r.Obs.r_counters);
  (* the rendered report and its JSON form mention both entries *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let text = Obs.report_to_string r in
  Alcotest.(check bool) "text has span" true (contains text "w.a");
  Alcotest.(check bool) "text has counter" true (contains text "w.count");
  let json = Json.parse (Obs.report_to_json r) in
  Alcotest.(check (float 1e-9)) "json total" 4.0
    Json.(to_num (member "total_s" (member "w.a" (member "spans" json))));
  Alcotest.(check (float 1e-9)) "json counter" 7.0
    Json.(to_num (member "w.count" (member "counters" json)))

let test_stats_view () =
  Obs.reset ();
  let p = Asp.Parser.parse_program "a :- not b. b :- not a." in
  let models, stats = Asp.Stats.with_diff (fun () -> Asp.Solver.solve p) in
  Alcotest.(check int) "two models" 2 (List.length models);
  Alcotest.(check int) "one ground call" 1 stats.Asp.Stats.ground_calls;
  Alcotest.(check int) "one solve call" 1 stats.Asp.Stats.solve_calls;
  Alcotest.(check int) "models counted" 2 stats.Asp.Stats.models_found;
  Alcotest.(check bool) "ground time measured" true
    (stats.Asp.Stats.ground_seconds >= 0.0);
  (* the same numbers are visible through the Obs registry *)
  Alcotest.(check int) "registry agrees"
    (Obs.Counter.value (Obs.Counter.make "asp.solve.calls"))
    stats.Asp.Stats.solve_calls;
  (* a second scoped measurement starts from zero *)
  let _, stats2 = Asp.Stats.with_diff (fun () -> Asp.Solver.solve p) in
  Alcotest.(check int) "diff is scoped" 1 stats2.Asp.Stats.solve_calls

(* ---- qcheck: report totals equal the sum of span durations ------------ *)

let report_totals_prop =
  QCheck.Test.make ~count:100
    ~name:"report per-span totals = sum of span durations"
    QCheck.(small_list (pair (int_bound 3) (int_range 1 1000)))
    (fun spans ->
      with_fake_clock @@ fun () ->
      let name_of i = Printf.sprintf "prop.s%d" i in
      List.iter
        (fun (name_idx, dur_ms) ->
          Obs.span (name_of name_idx) (fun () ->
              tick (float_of_int dur_ms /. 1000.0)))
        spans;
      let r = Obs.report () in
      List.for_all
        (fun idx ->
          let expected =
            List.fold_left
              (fun acc (i, d) ->
                if i = idx then acc +. (float_of_int d /. 1000.0) else acc)
              0.0 spans
          and count = List.length (List.filter (fun (i, _) -> i = idx) spans) in
          match
            List.find_opt (fun a -> a.Obs.agg_name = name_of idx) r.Obs.r_spans
          with
          | None -> count = 0
          | Some a ->
            a.Obs.agg_count = count
            && Float.abs (a.Obs.agg_total -. expected) < 1e-9)
        [ 0; 1; 2; 3 ])

(* Regression for the default clock: a span around a real sleep must
   measure elapsed wall-clock time. The old [Sys.time] default counted
   CPU time, under which a sleeping span reads ~0. *)
let test_default_clock_is_wall_clock () =
  Obs.reset ();
  Obs.use_default_clock ();
  let seen = ref None in
  let sink = { Obs.on_span = (fun s -> seen := Some s) } in
  Obs.register_sink sink;
  Fun.protect
    ~finally:(fun () -> Obs.unregister_sink sink)
    (fun () -> Obs.span "test.sleep" (fun () -> Unix.sleepf 0.05));
  match !seen with
  | None -> Alcotest.fail "span not delivered"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "sleep of 0.05s measured as %.4fs" s.Obs.sp_dur)
      true
      (s.Obs.sp_dur >= 0.04)

(* Parallel spans: counters from many domains aggregate exactly, and
   each span records the domain it ran on. *)
let test_domain_safety () =
  Obs.reset ();
  Obs.use_default_clock ();
  let c = Obs.Counter.make "test.par_incrs" in
  let domains = ref [] in
  let sink =
    { Obs.on_span = (fun s -> domains := s.Obs.sp_domain :: !domains) }
  in
  Obs.register_sink sink;
  Fun.protect
    ~finally:(fun () -> Obs.unregister_sink sink)
    (fun () ->
      let worker () =
        for _ = 1 to 1000 do
          Obs.Counter.incr c
        done;
        Obs.span "test.par_span" (fun () -> ())
      in
      let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned);
  Alcotest.(check int) "atomic increments" 4000 (Obs.Counter.value c);
  Alcotest.(check int) "one span per domain" 4 (List.length !domains);
  Alcotest.(check bool) "main domain recorded" true (List.mem 0 !domains)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "fine span gating" `Quick test_fine_span_gating;
          Alcotest.test_case "wall clock" `Quick test_default_clock_is_wall_clock;
          Alcotest.test_case "domain safety" `Quick test_domain_safety;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome JSON round-trip" `Quick
            test_chrome_trace_roundtrip;
          Alcotest.test_case "span cap" `Quick test_trace_limit;
        ] );
      ( "report",
        [
          Alcotest.test_case "aggregation" `Quick test_report;
          Alcotest.test_case "stats view" `Quick test_stats_view;
          QCheck_alcotest.to_alcotest report_totals_prop;
        ] );
    ]
