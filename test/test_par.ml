(* Tests for the lib/par domain pool: ordering, exception propagation,
   nesting, and the differential properties backing the determinism
   contract — parallel execution must be observationally identical to
   sequential, for plain maps, witness generation, and full learner
   runs alike. *)

open Ilp

(* Shared pools: Domain.spawn is expensive, so the parallel suites reuse
   one pool per degree instead of spawning per test case. *)
let pool2 = Par.create ~domains:2 ()
let pool4 = Par.create ~domains:4 ()
let all_pools () = [ (1, Par.create ~domains:1 ()); (2, pool2); (4, pool4) ]

(* ---- pool basics ---- *)

let test_size () =
  Alcotest.(check int) "size 2" 2 (Par.size pool2);
  Alcotest.(check int) "size 4" 4 (Par.size pool4);
  Alcotest.(check int) "size clamps to 1" 1 (Par.size (Par.create ~domains:0 ()))

let test_map_ordering () =
  let arr = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let expected = Array.map f arr in
  List.iter
    (fun (d, pool) ->
      Alcotest.(check (array int))
        (Printf.sprintf "map at %d domains" d)
        expected (Par.parallel_map pool f arr))
    (all_pools ())

let test_map_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Par.parallel_map pool4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |]
    (Par.parallel_map pool4 succ [| 1 |])

let test_map_list_ordering () =
  let l = List.init 57 (fun i -> i) in
  Alcotest.(check (list int)) "map_list preserves order" (List.map succ l)
    (Par.map_list pool4 succ l)

let test_iter_covers_all () =
  let n = 200 in
  let hit = Array.make n false in
  Par.parallel_iter pool4 (fun i -> hit.(i) <- true) (Array.init n (fun i -> i));
  Alcotest.(check bool) "every index visited" true (Array.for_all Fun.id hit)

(* The sequential map raises the exception of the lowest failing index;
   the pool must raise the same one no matter which chunk fails first. *)
let test_exception_propagation () =
  let arr = Array.init 100 (fun i -> i) in
  let f i = if i = 37 || i = 73 then failwith (string_of_int i) else i in
  List.iter
    (fun (d, pool) ->
      match Par.parallel_map pool f arr with
      | _ -> Alcotest.failf "expected an exception at %d domains" d
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "lowest failing index at %d domains" d)
          "37" msg)
    (all_pools ())

(* A waiting submitter helps drain the queue, so a task that itself
   submits a batch must complete rather than deadlock. *)
let test_nested_submission () =
  let inner outer_i =
    Par.parallel_map pool2 (fun j -> (outer_i * 10) + j) (Array.init 8 Fun.id)
  in
  let result = Par.parallel_map pool2 inner (Array.init 4 Fun.id) in
  Alcotest.(check (array (array int)))
    "nested maps complete and order"
    (Array.init 4 (fun i -> Array.init 8 (fun j -> (i * 10) + j)))
    result

let test_shutdown_idempotent_and_fallback () =
  let p = Par.create ~domains:3 () in
  Par.shutdown p;
  Par.shutdown p;
  (* after shutdown the pool degrades to the sequential path *)
  Alcotest.(check (array int)) "post-shutdown map" [| 1; 2; 3 |]
    (Par.parallel_map p succ [| 0; 1; 2 |])

let test_config_defaults_sequential () =
  Alcotest.(check int) "default degree" 1 (Par.Config.domains ())

(* The submitter's trace context must reach every chunk, on every pool
   domain — and a context-free submitter must stay context-free even
   when worker domains carry stale contexts from earlier batches. *)
let test_trace_context_propagation () =
  let arr = Array.init 64 (fun i -> i) in
  List.iter
    (fun (d, pool) ->
      let seen =
        Obs.Trace_context.with_id "batch-ctx" (fun () ->
            Par.parallel_map pool
              (fun _ -> Obs.Trace_context.current ())
              arr)
      in
      Alcotest.(check bool)
        (Printf.sprintf "context inherited by every task at %d domain(s)" d)
        true
        (Array.for_all (fun c -> c = Some "batch-ctx") seen);
      let unscoped =
        Par.parallel_map pool (fun _ -> Obs.Trace_context.current ()) arr
      in
      Alcotest.(check bool)
        (Printf.sprintf "no context leaks into a bare submission at %d \
                         domain(s)"
           d)
        true
        (Array.for_all (fun c -> c = None) unscoped))
    (all_pools ())

(* ---- differential properties: parallel = sequential ---- *)

let prop_map_differential =
  QCheck2.Test.make ~name:"parallel_map = Array.map (domains 1/2/4)"
    ~count:30
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun l ->
      let arr = Array.of_list l in
      let f x =
        (* enough work to spread across chunks, still deterministic *)
        let rec go acc n = if n = 0 then acc else go ((acc * 31) + x) (n - 1) in
        go x 50
      in
      let expected = Array.map f arr in
      List.for_all
        (fun (_, pool) -> Par.parallel_map pool f arr = expected)
        (all_pools ()))

(* Learning-task generator shared by the witness and learner
   differentials: contexts over snow/sun, sentences over accept/reject,
   labelled by the hidden "no accepting in snow" rule with occasional
   soft mislabels — the same family test_ilp uses. *)
let task_gen =
  QCheck2.Gen.(list_size (int_range 1 8) (triple bool bool (int_range 0 2)))

let decision_gpm () =
  Asg.Asg_parser.parse
    {| start -> decision
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

let weather_space () =
  Ilp.Hypothesis_space.generate
    (Mode.make ~target_prods:[ 0 ] ~heads:[ Mode.Constraint ]
       ~bodies:
         [
           Mode.matom ~site:(Some 1) "result"
             [ Mode.Constants [ "accept"; "reject" ] ];
           Mode.matom "weather" [ Mode.Constants [ "snow"; "sun"; "rain" ] ];
         ]
       ~max_body:2 ())

let examples_of_flags flags =
  List.map
    (fun (snowing, accepting, noise) ->
      let ctx = if snowing then "weather(snow)." else "weather(sun)." in
      let s = if accepting then "accept" else "reject" in
      let valid = (not snowing) || not accepting in
      let weight = if noise = 0 then Some 1 else None in
      if valid then Ilp.Example.positive_ctx ?weight s ctx
      else Ilp.Example.negative_ctx ?weight s ctx)
    flags

let witness_fingerprint (w : Learner.witness) =
  ( w.Learner.ex_idx,
    List.sort compare w.Learner.traces_by_prod,
    Asp.Solver.model_to_string w.Learner.model )

let prop_witnesses_differential =
  QCheck2.Test.make
    ~name:"pooled witness generation = sequential (domains 1/2/4)" ~count:15
    task_gen
    (fun flags ->
      let gpm = decision_gpm () in
      let examples = examples_of_flags flags in
      let sequential =
        List.map
          (fun e ->
            let ws, truncated =
              Learner.witnesses_of_example_counted ~max_witnesses:4 gpm e
            in
            (List.map witness_fingerprint ws, truncated))
          examples
      in
      List.for_all
        (fun (_, pool) ->
          Par.map_list pool
            (fun e ->
              let ws, truncated =
                Learner.witnesses_of_example_counted ~max_witnesses:4 gpm e
              in
              (List.map witness_fingerprint ws, truncated))
            examples
          = sequential)
        (all_pools ()))

let outcome_fingerprint = function
  | None -> "unsat"
  | Some (o : Learner.outcome) ->
    Printf.sprintf "cost=%d penalty=%d sac=%d wit=%d trunc=%d nodes=%d [%s]"
      o.Learner.cost o.Learner.penalty
      (List.length o.Learner.sacrificed)
      o.Learner.stats.Learner.witnesses o.Learner.stats.Learner.truncated
      o.Learner.stats.Learner.nodes
      (String.concat "; "
         (List.map
            (fun (c : Ilp.Hypothesis_space.candidate) ->
              Printf.sprintf "pr%d %s" c.prod_id
                (Asg.Annotation.rule_to_string c.rule))
            o.Learner.hypothesis))

let prop_learn_differential =
  QCheck2.Test.make
    ~name:"learn_constraints outcome identical at domains 1/2/4" ~count:12
    task_gen
    (fun flags ->
      let task =
        Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
          ~examples:(examples_of_flags flags)
      in
      let fingerprints =
        List.map
          (fun (_, pool) ->
            outcome_fingerprint (Learner.learn_constraints ~pool task))
          (all_pools ())
      in
      match fingerprints with
      | [] -> true
      | fp :: rest -> List.for_all (( = ) fp) rest)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_map_differential; prop_witnesses_differential;
      prop_learn_differential ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "map_list ordering" `Quick test_map_list_ordering;
          Alcotest.test_case "iter coverage" `Quick test_iter_covers_all;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested submission" `Quick test_nested_submission;
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_fallback;
          Alcotest.test_case "config default" `Quick test_config_defaults_sequential;
          Alcotest.test_case "trace context propagation" `Quick
            test_trace_context_propagation;
        ] );
      ("differential", qcheck_cases);
    ]
