The bench regression gate: it validates the committed baseline before
spending any time measuring, so malformed input fails fast with exit 2.

  $ agenp-bench gate --frobnicate
  bench gate: unknown argument: --frobnicate
  usage: bench gate [--tolerance F] [--quota SEC] [--runs N] [--baseline-asp FILE] [--baseline-par FILE] [--baseline-serve FILE] [--baseline-serve2 FILE] [--baseline-drift FILE] [--skip-par] [--skip-serve] [--skip-serve2] [--skip-drift] [--rebaseline]
  [2]
  $ agenp-bench gate --tolerance nope
  bench gate: bad --tolerance: nope
  usage: bench gate [--tolerance F] [--quota SEC] [--runs N] [--baseline-asp FILE] [--baseline-par FILE] [--baseline-serve FILE] [--baseline-serve2 FILE] [--baseline-drift FILE] [--skip-par] [--skip-serve] [--skip-serve2] [--skip-drift] [--rebaseline]
  [2]
  $ agenp-bench gate --baseline-asp missing.json
  bench gate: missing.json: No such file or directory
  [2]
  $ cat > wrong-schema.json <<'JSON'
  > {"schema": "bench-par/1", "current_ns_per_run": {}}
  > JSON
  $ agenp-bench gate --baseline-asp wrong-schema.json
  bench gate: bad baseline: unexpected schema "bench-par/1"
  [2]
  $ echo 'not json' > garbage.json
  $ agenp-bench gate --baseline-asp garbage.json 2>&1 | head -1
  bench gate: bad baseline: expected 'u' at 1

A generous baseline passes. Measured numbers vary run to run, so
normalize every number and collapse the column padding:

  $ cat > loose.json <<'JSON'
  > {"schema": "bench-asp/1", "current_ns_per_run": {"asp-parse": 1000000000000}}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-serve --skip-drift --quota 0.05 --runs 1 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g'
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: skipped
  serveN: skipped
  drift: skipped
  bench gate: PASS

An artificially tightened baseline demonstrably fails with exit 1:

  $ cat > tight.json <<'JSON'
  > {"schema": "bench-asp/1", "current_ns_per_run": {"asp-parse": 1}}
  > JSON
  $ agenp-bench gate --baseline-asp tight.json --skip-par --skip-serve2 --skip-serve --skip-drift --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) REGRESSION
  par: skipped
  serve: skipped
  serveN: skipped
  drift: skipped
  bench gate: FAIL (N regression(s) beyond N%)

A baseline naming a bench that no longer exists means the snapshot is
stale, which is neither a pass nor a regression:

  $ cat > stale.json <<'JSON'
  > {"schema": "bench-asp/1", "current_ns_per_run": {"no-such-bench": 5}}
  > JSON
  $ agenp-bench gate --baseline-asp stale.json --skip-par --skip-serve2 --skip-serve --skip-drift --quota 0.05 --runs 1 > out.txt 2>&1
  [2]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  no-such-bench N ns baseline, no current measurement MISSING
  par: skipped
  serve: skipped
  serveN: skipped
  drift: skipped
  bench gate: N baseline bench(es) have no current counterpart — stale baseline?

The serve baseline is validated the same way: a wrong schema or an
unsound committed snapshot fails before any measurement.

  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --baseline-serve wrong-schema.json
  bench gate: bad baseline: unexpected schema "bench-par/1"
  [2]
  $ cat > serve-bad.json <<'JSON'
  > {"schema": "bench-serve/1", "decision_cache": {"hit_rate": 0.5}, "identical_outcome": false}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-drift --baseline-serve serve-bad.json --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: committed snapshot has identical_outcome=false FAIL
  serveN: skipped
  drift: skipped
  bench gate: FAIL (N regression(s) beyond N%; serve caches unsound)

A committed snapshot whose caches never hit measured nothing:

  $ cat > serve-nohit.json <<'JSON'
  > {"schema": "bench-serve/1", "decision_cache": {"hit_rate": 0.0}, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-drift --baseline-serve serve-nohit.json --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: committed snapshot has warm hit rate N — caches never engaged FAIL
  serveN: skipped
  drift: skipped
  bench gate: FAIL (N regression(s) beyond N%; serve caches unsound)

Since the incremental grounder landed, a zero-hit tier is fatal: the
cores are context-free, so even the quick differential's distinct
contexts must hit the ground tier, and the memo must absorb its
repeats. A committed snapshot whose ground tier never hit fails before
any measurement:

  $ cat > serve-ground0.json <<'JSON'
  > {"schema": "bench-serve/2", "decision_cache": {"hit_rate": 0.5}, "ground_cache": {"hit_rate": 0.0}, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-drift --baseline-serve serve-ground0.json --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: committed snapshot has ground tier rate N — the core cache never engaged FAIL
  serve: cached vs uncached decisions: identical (decision tier N, ground tier N)
  serve: committed snapshot predates the delta section (ns_per_ground not gated)
  serveN: skipped
  drift: skipped
  bench gate: FAIL (N regression(s) beyond N%; serve caches unsound)

A sound snapshot passes the live cached-vs-uncached re-check, which now
asserts both tiers hit. A snapshot written before per-tier reporting
(no "ground_cache" member) is still accepted:

  $ cat > serve-ok.json <<'JSON'
  > {"schema": "bench-serve/1", "decision_cache": {"hit_rate": 0.5}, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-drift --baseline-serve serve-ok.json --quota 0.05 --runs 1 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g'
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: committed snapshot predates per-tier rates (decision N only)
  serve: cached vs uncached decisions: identical (decision tier N, ground tier N)
  serve: committed snapshot predates the delta section (ns_per_ground not gated)
  serveN: skipped
  drift: skipped
  bench gate: PASS

A current snapshot carries both tiers' rates and the incremental
grounder's ns_per_ground, which the gate re-measures and holds to the
same tolerance as the asp benches:

  $ cat > serve-tiers.json <<'JSON'
  > {"schema": "bench-serve/2", "decision_cache": {"hit_rate": 0.5}, "ground_cache": {"hit_rate": 0.25}, "delta": {"ns_per_ground": 1000000000000}, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-drift --baseline-serve serve-tiers.json --quota 0.05 --runs 1 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g'
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: committed snapshot tier rates: decision N, ground N
  serve: cached vs uncached decisions: identical (decision tier N, ground tier N)
  serve: ns_per_ground N ns -> N ns (Nx) ok
  serveN: skipped
  drift: skipped
  bench gate: PASS

The multi-tenant baseline (BENCH_serve2.json, from the serve2
experiment) is validated statically: the cluster must have been
outcome-identical to the sequential single-shard path, routed every
response to its tenant's shard, coalesced duplicate work, rejected the
backpressure overfill, and never invalidated across tenants. A wrong
schema fails fast:

  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve --skip-drift --baseline-serve2 wrong-schema.json
  bench gate: bad baseline: unexpected schema "bench-par/1"
  [2]

An unsound snapshot names each problem and fails:

  $ cat > serve2-bad.json <<'JSON'
  > {"schema": "bench-serve2/1", "shards": {"t0": {"decision_hit_rate": 0.5, "ground_hit_rate": 0.0}}, "coalesced": 0, "rejected_on_overfill": 0, "cross_tenant_invalidations": 3, "shard_provenance": false, "identical_outcome": false}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve --skip-drift --baseline-serve2 serve2-bad.json --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: skipped
  serveN: cluster not outcome-identical to the single-shard path FAIL
  serveN: responses misrouted (shard_provenance=false) FAIL
  serveN: no duplicate work coalesced (coalesced=N) FAIL
  serveN: backpressure overfill produced no rejection (rejected_on_overfill=N) FAIL
  serveN: N cross-tenant invalidation(s) FAIL
  serveN: shard tN has a zero-hit tier (decision N, ground N) FAIL
  drift: skipped
  bench gate: FAIL (N regression(s) beyond N%; multi-tenant serving unsound)

A sound snapshot passes:

  $ cat > serve2-ok.json <<'JSON'
  > {"schema": "bench-serve2/1", "shards": {"t0": {"decision_hit_rate": 0.5, "ground_hit_rate": 0.8}, "t1": {"decision_hit_rate": 0.4, "ground_hit_rate": 0.9}}, "coalesced": 12, "rejected_on_overfill": 2, "cross_tenant_invalidations": 0, "shard_provenance": true, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve --skip-drift --baseline-serve2 serve2-ok.json --quota 0.05 --runs 1 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g'
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: skipped
  serveN: committed snapshot: N shard(s) outcome-identical, N coalesced, overfill rejected, N cross-tenant invalidations
  drift: skipped
  bench gate: PASS

The drift baseline (BENCH_drift.json, from the drift-replay experiment)
is validated statically: the detector must have caught the injected
mutation, raised nothing on the stationary control, and the serve path
must have stayed outcome-identical. A wrong schema fails fast:

  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-serve --baseline-drift wrong-schema.json
  bench gate: bad baseline: unexpected schema "bench-par/1"
  [2]

An unsound drift snapshot names each problem and fails:

  $ cat > drift-bad.json <<'JSON'
  > {"schema": "bench-drift/1", "detected": false, "false_alarms_on_stationary": 2, "detection_latency_requests": -1, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-serve --baseline-drift drift-bad.json --quota 0.05 --runs 1 > out.txt
  [1]
  $ sed -E 's/-?[0-9]+\.[0-9]+/N/g; s/-?[0-9]+/N/g; s/ +/ /g' out.txt
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: skipped
  serveN: skipped
  drift: mutation not detected (detected=false) FAIL
  drift: N false alarm(s) on the stationary control FAIL
  drift: detection latency missing or non-positive FAIL
  bench gate: FAIL (N regression(s) beyond N%; drift detection unsound)

A sound drift snapshot passes:

  $ cat > drift-ok.json <<'JSON'
  > {"schema": "bench-drift/1", "detected": true, "false_alarms_on_stationary": 0, "detection_latency_requests": 3, "identical_outcome": true}
  > JSON
  $ agenp-bench gate --baseline-asp loose.json --skip-par --skip-serve2 --skip-serve --baseline-drift drift-ok.json --quota 0.05 --runs 1 | sed -E 's/[0-9]+\.[0-9]+/N/g; s/[0-9]+/N/g; s/ +/ /g'
  bench gate: N bench(es), tolerance N%, quota Ns, min of N run(s)
  asp-parse N ns -> N ns (Nx) ok
  par: skipped
  serve: skipped
  serveN: skipped
  drift: committed snapshot: detected at latency N, N false alarms, outcomes identical
  bench gate: PASS
