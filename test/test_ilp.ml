(* Tests for the inductive learner: hypothesis-space generation, optimal
   constraint learning, noise tolerance, and the general search engine. *)

open Ilp

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let decision_gpm () =
  Asg.Asg_parser.parse
    {| start -> decision
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

(* Mode bias: constraints on the start production mentioning the decision
   (child 1) and weather context atoms. *)
let weather_modes () =
  Mode.make ~target_prods:[ 0 ] ~heads:[ Mode.Constraint ]
    ~bodies:
      [
        Mode.matom ~site:(Some 1) "result" [ Mode.Constants [ "accept"; "reject" ] ];
        Mode.matom "weather" [ Mode.Constants [ "snow"; "sun"; "rain" ] ];
      ]
    ~max_body:2 ()

let weather_space () = Ilp.Hypothesis_space.generate (weather_modes ())

let base_examples () =
  [
    Ilp.Example.positive_ctx "accept" "weather(sun).";
    Ilp.Example.positive_ctx "reject" "weather(snow).";
    Ilp.Example.positive_ctx "reject" "weather(sun).";
    Ilp.Example.negative_ctx "accept" "weather(snow).";
  ]

let test_space_generation () =
  let space = weather_space () in
  (* bodies: 2 result atoms, 3 weather atoms, and 2x3 pairs = 11 rules *)
  Alcotest.(check int) "11 candidates" 11 (Ilp.Hypothesis_space.size space);
  Alcotest.(check bool) "all constraints" true
    (List.for_all Ilp.Hypothesis_space.is_constraint_candidate space)

let test_space_of_rules () =
  let space =
    Ilp.Hypothesis_space.of_rules
      [ (":- result(accept)@1, weather(snow).", [ 0; 1 ]) ]
  in
  Alcotest.(check int) "expanded per production" 2
    (Ilp.Hypothesis_space.size space);
  Alcotest.(check int) "cost = literals" 2
    (List.hd space).Ilp.Hypothesis_space.cost

let test_space_safety_filter () =
  (* a negated-only variable is unsafe and must be filtered out *)
  let m =
    Mode.make ~target_prods:[ 0 ] ~heads:[ Mode.Constraint ]
      ~bodies:[ Mode.matom ~negated:true "role" [ Mode.Variable "r" ] ]
      ~max_body:1 ()
  in
  Alcotest.(check int) "unsafe rules dropped" 0
    (Ilp.Hypothesis_space.size (Ilp.Hypothesis_space.generate m))

let test_learn_snow_constraint () =
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
      ~examples:(base_examples ())
  in
  match Learner.learn task with
  | None -> Alcotest.fail "expected a solution"
  | Some o ->
    Alcotest.(check int) "one rule" 1 (List.length o.Learner.hypothesis);
    Alcotest.(check int) "cost 2" 2 o.Learner.cost;
    Alcotest.(check int) "no penalty" 0 o.Learner.penalty;
    let rule_text =
      Asg.Annotation.rule_to_string
        (List.hd o.Learner.hypothesis).Ilp.Hypothesis_space.rule
    in
    Alcotest.(check bool) "mentions accept and snow" true
      (contains "result(accept)@1" rule_text
       && contains "weather(snow)" rule_text);
    Alcotest.(check bool) "verified solution" true
      (Task.is_solution task o.Learner.hypothesis)

let test_learned_gpm_behaviour () =
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
      ~examples:(base_examples ())
  in
  match Ilp.Asg_learning.learn_gpm task with
  | None -> Alcotest.fail "expected a solution"
  | Some l ->
    let snow = Asp.Parser.parse_program "weather(snow)." in
    let sun = Asp.Parser.parse_program "weather(sun)." in
    Alcotest.(check bool) "accept blocked in snow" false
      (Asg.Membership.accepts_in_context l.Ilp.Asg_learning.gpm ~context:snow
         "accept");
    Alcotest.(check bool) "accept allowed in sun" true
      (Asg.Membership.accepts_in_context l.Ilp.Asg_learning.gpm ~context:sun
         "accept");
    (* generation: valid policies under snow are exactly {reject} *)
    Alcotest.(check (list string)) "generation under snow" [ "reject" ]
      (Asg.Language.sentences_in_context ~max_depth:4 l.Ilp.Asg_learning.gpm
         ~context:snow)

let test_unsat_task () =
  (* same sentence+context both positive and negative: no solution *)
  let examples =
    [
      Ilp.Example.positive_ctx "accept" "weather(sun).";
      Ilp.Example.negative_ctx "accept" "weather(sun).";
    ]
  in
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ()) ~examples
  in
  Alcotest.(check bool) "no solution" true (Learner.learn task = None)

let test_noise_sacrifice () =
  (* a mislabeled soft example should be sacrificed, not fitted *)
  let examples =
    base_examples ()
    @ [ Ilp.Example.negative_ctx ~weight:1 "accept" "weather(sun)." ]
  in
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ()) ~examples
  in
  match Learner.learn task with
  | None -> Alcotest.fail "expected a (noisy) solution"
  | Some o ->
    Alcotest.(check int) "penalty 1" 1 o.Learner.penalty;
    Alcotest.(check int) "one sacrificed" 1 (List.length o.Learner.sacrificed);
    Alcotest.(check int) "still learns the snow rule" 2 o.Learner.cost

let test_hard_conflict_infeasible_vs_soft () =
  (* hard contradictory examples -> None; making one soft -> solvable *)
  let hard =
    [
      Ilp.Example.positive_ctx "accept" "weather(snow).";
      Ilp.Example.negative_ctx "accept" "weather(snow).";
    ]
  in
  let task = Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ()) ~examples:hard in
  Alcotest.(check bool) "hard conflict unsat" true (Learner.learn task = None);
  let soft =
    [
      Ilp.Example.positive_ctx ~weight:5 "accept" "weather(snow).";
      Ilp.Example.negative_ctx "accept" "weather(snow).";
    ]
  in
  let task = Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ()) ~examples:soft in
  match Learner.learn task with
  | None -> Alcotest.fail "soft conflict should be solvable"
  | Some o -> Alcotest.(check int) "pays the positive's weight" 5 o.Learner.penalty

let test_learn_general_with_defined_atom () =
  (* the hypothesis must chain a defined atom into a constraint *)
  let space =
    Ilp.Hypothesis_space.of_rules
      [
        ("bad :- weather(snow).", [ 0 ]);
        (":- result(accept)@1, bad.", [ 0 ]);
        (":- result(reject)@1, bad.", [ 0 ]);
      ]
  in
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space ~examples:(base_examples ())
  in
  match Learner.learn task with
  | None -> Alcotest.fail "expected general-path solution"
  | Some o ->
    Alcotest.(check int) "two rules" 2 (List.length o.Learner.hypothesis);
    Alcotest.(check bool) "verified" true (Task.is_solution task o.Learner.hypothesis)

let test_multiple_witnesses () =
  (* an annotation with a choice gives several answer sets per tree; the
     learner must keep one witness alive per positive example *)
  let gpm =
    Asg.Asg_parser.parse
      {| start -> decision { 1 { mode(fast); mode(slow) } 1. }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  let space =
    Ilp.Hypothesis_space.of_rules
      [
        (":- mode(fast).", [ 0 ]);
        (":- result(accept)@1, weather(snow).", [ 0 ]);
      ]
  in
  let examples =
    [
      Ilp.Example.positive_ctx "accept" "weather(sun).";
      Ilp.Example.negative_ctx "accept" "weather(snow).";
    ]
  in
  let task = Task.make ~gpm ~space ~examples in
  match Learner.learn task with
  | None -> Alcotest.fail "expected solution"
  | Some o ->
    Alcotest.(check bool) "verified" true (Task.is_solution task o.Learner.hypothesis);
    Alcotest.(check int) "only the snow rule" 1 (List.length o.Learner.hypothesis)

(* The choice grammar gives every example two witnesses (mode fast/slow),
   so a cap of 1 must truncate — and say so, instead of the old silent
   drop — while a cap of exactly 2 must not (the detection over-asks the
   solver by one model, which must not misfire at the boundary). *)
let choice_gpm () =
  Asg.Asg_parser.parse
    {| start -> decision { 1 { mode(fast); mode(slow) } 1. }
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

let test_witness_truncation_flag () =
  let gpm = choice_gpm () in
  let e = Ilp.Example.positive_ctx "accept" "weather(sun)." in
  let counter_value () =
    match Obs.Counter.find "ilp.witnesses_truncated" with
    | Some c -> Obs.Counter.value c
    | None -> 0
  in
  let before = counter_value () in
  let ws, truncated = Learner.witnesses_of_example_counted ~max_witnesses:1 gpm e in
  Alcotest.(check int) "cap 1 keeps one witness" 1 (List.length ws);
  Alcotest.(check bool) "cap 1 reports truncation" true truncated;
  Alcotest.(check int) "counter incremented" (before + 1) (counter_value ());
  let ws2, truncated2 =
    Learner.witnesses_of_example_counted ~max_witnesses:2 gpm e
  in
  Alcotest.(check int) "cap 2 keeps both" 2 (List.length ws2);
  Alcotest.(check bool) "exact cap is not truncation" false truncated2;
  let ws_default = Learner.witnesses_of_example gpm e in
  Alcotest.(check int) "default cap keeps both" 2 (List.length ws_default)

let test_learn_surfaces_truncation () =
  let space =
    Ilp.Hypothesis_space.of_rules [ (":- result(accept)@1, weather(snow).", [ 0 ]) ]
  in
  let examples =
    [
      Ilp.Example.positive_ctx "accept" "weather(sun).";
      Ilp.Example.negative_ctx "accept" "weather(snow).";
    ]
  in
  let task = Task.make ~gpm:(choice_gpm ()) ~space ~examples in
  (match Learner.learn_constraints ~max_witnesses:1 task with
  | None -> Alcotest.fail "capped task should still solve"
  | Some o ->
    Alcotest.(check int) "both examples truncated" 2 o.Learner.stats.Learner.truncated);
  match Learner.learn_constraints task with
  | None -> Alcotest.fail "uncapped task should solve"
  | Some o ->
    Alcotest.(check int) "no truncation at default cap" 0
      o.Learner.stats.Learner.truncated

(* Pin the greedy warm-start order: exact gain-per-cost descending,
   ties toward the higher candidate index. *)
let test_greedy_score_compare () =
  Alcotest.(check bool) "higher ratio first" true
    (Learner.greedy_score_compare (3, 1, 0) (2, 1, 9) < 0);
  (* 2/5 > 1/3 exactly; float rounding must not be involved *)
  Alcotest.(check bool) "exact rational comparison" true
    (Learner.greedy_score_compare (2, 5, 0) (1, 3, 1) < 0);
  Alcotest.(check bool) "equal ratios tie-break to higher index" true
    (Learner.greedy_score_compare (2, 2, 5) (1, 1, 3) < 0);
  let show (g, c, i) = Printf.sprintf "%d/%d@%d" g c i in
  Alcotest.(check (list string)) "full pinned order"
    [ "4/1@0"; "2/1@7"; "2/1@3"; "1/2@2" ]
    (List.map show
       (List.sort Learner.greedy_score_compare
          [ (1, 2, 2); (2, 1, 3); (4, 1, 0); (2, 1, 7) ]))

let test_accuracy () =
  let gpm = decision_gpm () in
  let h = Asg.Annotation.parse_rule_string ":- result(accept)@1, weather(snow)." in
  let learned = Asg.Gpm.with_hypothesis gpm [ (0, h) ] in
  let examples = base_examples () in
  Alcotest.(check (float 0.001)) "perfect accuracy" 1.0
    (Ilp.Asg_learning.accuracy learned examples);
  Alcotest.(check (float 0.001)) "initial gpm gets 3/4" 0.75
    (Ilp.Asg_learning.accuracy gpm examples)

let test_minimality_prefers_one_general_rule () =
  (* two negatives in snow: one general rule should beat two specific *)
  let space =
    Ilp.Hypothesis_space.of_rules
      [
        (":- result(accept)@1, weather(snow).", [ 0 ]);
        (":- result(accept)@1, weather(snow), time(day).", [ 0 ]);
        (":- result(accept)@1, weather(snow), time(night).", [ 0 ]);
      ]
  in
  let examples =
    [
      Ilp.Example.negative_ctx "accept" "weather(snow). time(day).";
      Ilp.Example.negative_ctx "accept" "weather(snow). time(night).";
      Ilp.Example.positive_ctx "accept" "weather(sun). time(day).";
    ]
  in
  let task = Task.make ~gpm:(decision_gpm ()) ~space ~examples in
  match Learner.learn task with
  | None -> Alcotest.fail "expected solution"
  | Some o ->
    Alcotest.(check int) "single general rule" 1 (List.length o.Learner.hypothesis);
    Alcotest.(check int) "cost 2" 2 o.Learner.cost

let test_guidance_rank_preserves_solution () =
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
      ~examples:(base_examples ())
  in
  let ranked = Ilp.Guidance.rank task in
  Alcotest.(check int) "same space size"
    (Ilp.Hypothesis_space.size task.Task.space)
    (Ilp.Hypothesis_space.size ranked.Task.space);
  match (Learner.learn task, Learner.learn ranked) with
  | Some a, Some b -> Alcotest.(check int) "same optimum" a.Learner.cost b.Learner.cost
  | _ -> Alcotest.fail "both should solve"

let test_guidance_ranks_discriminative_first () =
  let task =
    Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
      ~examples:(base_examples ())
  in
  let ranked = Ilp.Guidance.rank task in
  (* snow appears in every negative context and few positive ones, so a
     snow-mentioning candidate must rank above rain (never observed) *)
  let index_of pred =
    let rec go i = function
      | [] -> max_int
      | (c : Ilp.Hypothesis_space.candidate) :: rest ->
        let text = Asg.Annotation.rule_to_string c.rule in
        let nl = String.length pred and hl = String.length text in
        let rec mem j =
          j + nl <= hl && (String.sub text j nl = pred || mem (j + 1))
        in
        if mem 0 then i else go (i + 1) rest
    in
    go 0 ranked.Task.space
  in
  Alcotest.(check bool) "snow before rain" true
    (index_of "weather(snow)" < index_of "weather(rain)")

let test_guidance_prune_keeps_enough () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let examples = Workloads.Cav.examples_of (Workloads.Cav.sample ~seed:42 40) in
  let task = Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples in
  let pruned = Ilp.Guidance.prune ~fraction:0.5 task in
  Alcotest.(check bool) "space halved" true
    (Ilp.Hypothesis_space.size pruned.Task.space
    <= (Ilp.Hypothesis_space.size task.Task.space + 1) / 2 + 1);
  match Learner.learn pruned with
  | Some o ->
    Alcotest.(check bool) "pruned task still solvable" true
      (Task.is_solution pruned o.Learner.hypothesis)
  | None -> Alcotest.fail "pruned task unsolvable"

(* ---- Preference learning (ordering examples) ---- *)

let pref_gpm () =
  Asg.Asg_parser.parse
    {| start -> decision
       decision -> "fast" { picked(fast). } | "safe" { picked(safe). } |}

let pref_space () =
  Ilp.Hypothesis_space.generate
    (Mode.make ~target_prods:[ 0 ]
       ~heads:[ Mode.WeakHead (Mode.IntOperand 1); Mode.WeakHead (Mode.VarOperand "r") ]
       ~bodies:
         [ Mode.matom ~required:true ~site:(Some 1) "picked"
             [ Mode.Constants [ "fast"; "safe" ] ];
           Mode.matom "risk" [ Mode.Variable "r" ] ]
       ~max_body:2 ())

let test_preference_learns_constant_penalty () =
  (* "safe" preferred everywhere: learner should penalize "fast" *)
  let orderings =
    [ Ilp.Preference.prefer_ctx "safe" "fast" "";
      Ilp.Preference.prefer_ctx "safe" "fast" "risk(3)." ]
  in
  match
    Ilp.Preference.learn ~gpm:(pref_gpm ()) ~space:(pref_space ()) ~orderings ()
  with
  | None -> Alcotest.fail "expected a preference hypothesis"
  | Some o ->
    Alcotest.(check int) "one weak rule" 1 (List.length o.Ilp.Preference.hypothesis);
    let text =
      Asg.Annotation.rule_to_string
        (List.hd o.Ilp.Preference.hypothesis).Ilp.Hypothesis_space.rule
    in
    Alcotest.(check bool) "penalizes fast" true (contains "picked(fast)" text)

let test_preference_learns_variable_weight () =
  (* fast costs the context's risk level: fast wins at risk 0, loses at 5 *)
  let orderings =
    [ Ilp.Preference.prefer_ctx "safe" "fast" "risk(5). calm(0).";
      Ilp.Preference.prefer_ctx "safe" "fast" "risk(3). calm(0).";
      (* non-strict the other way at zero risk *)
      Ilp.Preference.prefer_ctx ~strict:false "fast" "safe" "risk(0). calm(0)." ]
  in
  match
    Ilp.Preference.learn ~gpm:(pref_gpm ()) ~space:(pref_space ()) ~orderings ()
  with
  | None -> Alcotest.fail "expected a hypothesis"
  | Some o ->
    let texts =
      List.map
        (fun (c : Ilp.Hypothesis_space.candidate) ->
          Asg.Annotation.rule_to_string c.Ilp.Hypothesis_space.rule)
        o.Ilp.Preference.hypothesis
    in
    Alcotest.(check bool) "uses the risk variable weight" true
      (List.exists (fun t -> contains "[V_r]" t && contains "picked(fast)" t) texts)

let test_preference_unsat () =
  (* contradictory strict orderings cannot be satisfied *)
  let orderings =
    [ Ilp.Preference.prefer_ctx "safe" "fast" "";
      Ilp.Preference.prefer_ctx "fast" "safe" "" ]
  in
  Alcotest.(check bool) "unsat" true
    (Ilp.Preference.learn ~gpm:(pref_gpm ()) ~space:(pref_space ()) ~orderings ()
    = None)

let test_preference_invalid_sentence_unsat () =
  let orderings = [ Ilp.Preference.prefer_ctx "fly" "safe" "" ] in
  Alcotest.(check bool) "invalid sentence cannot be preferred" true
    (Ilp.Preference.learn ~gpm:(pref_gpm ()) ~space:(pref_space ()) ~orderings ()
    = None)

let test_preference_resupply_value_function () =
  let modes =
    Mode.make ~target_prods:[ 0 ]
      ~heads:[ Mode.WeakHead (Mode.VarOperand "t"); Mode.WeakHead (Mode.IntOperand 1) ]
      ~bodies:
        [ Mode.matom ~required:true ~site:(Some 1) "chosen" [ Mode.Variable "rt" ];
          Mode.matom ~required:true ~site:(Some 1) "chosen"
            [ Mode.Constants Workloads.Resupply.routes ];
          Mode.matom "threat" [ Mode.Variable "rt"; Mode.Variable "t" ];
          Mode.matom "weather" [ Mode.Constants Workloads.Resupply.weathers ] ]
      ~max_body:2 ()
  in
  let space = Ilp.Hypothesis_space.generate modes in
  let missions = Workloads.Resupply.campaign ~seed:5 ~n:12 () in
  let orderings =
    List.concat_map
      (fun m ->
        let ctx = Workloads.Resupply.to_context m in
        let valid =
          List.filter (Workloads.Resupply.route_valid m) Workloads.Resupply.routes
        in
        List.concat_map
          (fun r1 ->
            List.filter_map
              (fun r2 ->
                if
                  r1 <> r2
                  && Workloads.Resupply.route_cost m r1
                     < Workloads.Resupply.route_cost m r2
                then Some (Ilp.Preference.prefer ~context:ctx r1 r2)
                else None)
              valid)
          valid)
      missions
  in
  match
    Ilp.Preference.learn ~gpm:(Workloads.Resupply.gpm ()) ~space ~orderings ()
  with
  | None -> Alcotest.fail "expected the threat value function"
  | Some o ->
    let text =
      String.concat " "
        (List.map
           (fun (c : Ilp.Hypothesis_space.candidate) ->
             Asg.Annotation.rule_to_string c.Ilp.Hypothesis_space.rule)
           o.Ilp.Preference.hypothesis)
    in
    Alcotest.(check bool) "threat-weighted rule found" true
      (contains "threat(V_rt, V_t)" text && contains "[V_t]" text)

(* property: on random consistent tasks, the learner's output verifies *)
let prop_learner_sound =
  QCheck2.Test.make ~name:"learned hypotheses are inductive solutions" ~count:25
    QCheck2.Gen.(list_size (int_range 1 6) (pair bool bool))
    (fun flags ->
      (* hidden rule: accept invalid iff snowing *)
      let examples =
        List.map
          (fun (snowing, accepting) ->
            let ctx = if snowing then "weather(snow)." else "weather(sun)." in
            let s = if accepting then "accept" else "reject" in
            let valid = (not snowing) || not accepting in
            if valid then Ilp.Example.positive_ctx s ctx
            else Ilp.Example.negative_ctx s ctx)
          flags
      in
      let task =
        Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ()) ~examples
      in
      match Learner.learn task with
      | None -> false (* consistent tasks always have a solution *)
      | Some o -> Task.is_solution task o.Learner.hypothesis)

let prop_optimality_cost_bound =
  QCheck2.Test.make ~name:"learner never beats brute-force optimum" ~count:10
    QCheck2.Gen.(int_range 1 3)
    (fun _seed ->
      let task =
        Task.make ~gpm:(decision_gpm ()) ~space:(weather_space ())
          ~examples:(base_examples ())
      in
      match (Learner.learn task, Learner.learn_general task) with
      | Some fast, Some general -> fast.Learner.cost = general.Learner.cost
      | _ -> false)

let prop_generated_spaces_are_safe_and_unique =
  QCheck2.Test.make ~name:"mode-generated rules are safe and unique" ~count:20
    QCheck2.Gen.(int_range 1 3)
    (fun max_body ->
      let space =
        Ilp.Hypothesis_space.generate (Workloads.Cav.modes ~max_body ())
      in
      let texts =
        List.map
          (fun (c : Ilp.Hypothesis_space.candidate) ->
            Asg.Annotation.rule_to_string c.rule)
          space
      in
      List.length (List.sort_uniq compare texts) = List.length texts
      && List.for_all
           (fun (c : Ilp.Hypothesis_space.candidate) ->
             Ilp.Hypothesis_space.rule_is_safe c.rule)
           space)

let prop_candidate_costs_positive =
  QCheck2.Test.make ~name:"candidate costs are positive" ~count:10
    QCheck2.Gen.(int_range 1 3)
    (fun max_body ->
      List.for_all
        (fun (c : Ilp.Hypothesis_space.candidate) -> c.cost >= 1)
        (Ilp.Hypothesis_space.generate (Workloads.Cav.modes ~max_body ())))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_learner_sound; prop_optimality_cost_bound;
      prop_generated_spaces_are_safe_and_unique; prop_candidate_costs_positive ]

let () =
  (* the truncation tests deliberately trip the learner's witness-cap
     warning; keep it out of the test output *)
  Obs.Log.set_stderr_threshold None;
  Alcotest.run "ilp"
    [
      ( "space",
        [
          Alcotest.test_case "generation" `Quick test_space_generation;
          Alcotest.test_case "of_rules" `Quick test_space_of_rules;
          Alcotest.test_case "safety filter" `Quick test_space_safety_filter;
        ] );
      ( "learning",
        [
          Alcotest.test_case "snow constraint" `Quick test_learn_snow_constraint;
          Alcotest.test_case "learned gpm behaviour" `Quick test_learned_gpm_behaviour;
          Alcotest.test_case "unsat task" `Quick test_unsat_task;
          Alcotest.test_case "noise sacrifice" `Quick test_noise_sacrifice;
          Alcotest.test_case "hard vs soft conflict" `Quick test_hard_conflict_infeasible_vs_soft;
          Alcotest.test_case "general path" `Quick test_learn_general_with_defined_atom;
          Alcotest.test_case "multiple witnesses" `Quick test_multiple_witnesses;
          Alcotest.test_case "witness truncation flag" `Quick test_witness_truncation_flag;
          Alcotest.test_case "truncation in stats" `Quick test_learn_surfaces_truncation;
          Alcotest.test_case "greedy tie-break" `Quick test_greedy_score_compare;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
          Alcotest.test_case "minimality" `Quick test_minimality_prefers_one_general_rule;
        ] );
      ( "preference",
        [
          Alcotest.test_case "constant penalty" `Quick test_preference_learns_constant_penalty;
          Alcotest.test_case "variable weight" `Quick test_preference_learns_variable_weight;
          Alcotest.test_case "unsat" `Quick test_preference_unsat;
          Alcotest.test_case "invalid sentence" `Quick test_preference_invalid_sentence_unsat;
          Alcotest.test_case "resupply value function" `Slow test_preference_resupply_value_function;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "rank preserves optimum" `Quick test_guidance_rank_preserves_solution;
          Alcotest.test_case "discriminative first" `Quick test_guidance_ranks_discriminative_first;
          Alcotest.test_case "prune" `Slow test_guidance_prune_keeps_enough;
        ] );
      ("properties", qcheck_cases);
    ]
