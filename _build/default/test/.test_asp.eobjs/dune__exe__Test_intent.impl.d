test/test_intent.ml: Alcotest Asg Asp Intent List Printf
