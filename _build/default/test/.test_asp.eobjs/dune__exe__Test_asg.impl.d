test/test_asg.ml: Alcotest Asg Asp Grammar List Printf QCheck2 QCheck_alcotest String
