test/test_policy.ml: Alcotest Asg Asp Attribute Conflict Decision Expr Fmt List Policy Policy_set Printf QCheck2 QCheck_alcotest Quality Request Rule_policy String Xacml Xacml_xml
