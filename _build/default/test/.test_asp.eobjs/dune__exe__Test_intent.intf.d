test/test_intent.mli:
