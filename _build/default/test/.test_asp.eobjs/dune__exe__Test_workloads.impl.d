test/test_workloads.ml: Alcotest Array Asg Ilp List Ml Policy Printf QCheck2 QCheck_alcotest String Workloads
