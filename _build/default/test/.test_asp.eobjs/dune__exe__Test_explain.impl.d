test/test_explain.ml: Alcotest Asg Asp Explain Fmt Ilp List Printf QCheck2 QCheck_alcotest String Workloads
