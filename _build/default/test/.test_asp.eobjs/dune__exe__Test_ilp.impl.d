test/test_ilp.ml: Alcotest Asg Asp Ilp Learner List Mode QCheck2 QCheck_alcotest String Task Workloads
