test/test_agenp.ml: Agenp Alcotest Asg Asp Grammar Hashtbl Ilp List Printf Workloads
