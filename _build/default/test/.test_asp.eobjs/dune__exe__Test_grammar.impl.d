test/test_grammar.ml: Alcotest Cfg Earley Generator Grammar List Parse_tree Production QCheck2 QCheck_alcotest String Symbol Transform
