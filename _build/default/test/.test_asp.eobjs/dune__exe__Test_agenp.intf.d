test/test_agenp.mli:
