test/test_ml.ml: Alcotest List Ml QCheck2 QCheck_alcotest Workloads
