test/test_asg.mli:
