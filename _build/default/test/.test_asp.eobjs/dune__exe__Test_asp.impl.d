test/test_asp.ml: Alcotest Asp List Option Printf QCheck2 QCheck_alcotest String
