test/test_asp.ml: Alcotest Asp Atom Fmt Grounder List Option Printf Program QCheck2 QCheck_alcotest Rule String Term
