(* Tests for the policy substrate: expressions, rule/policy evaluation,
   combining algorithms, quality metrics, conflicts, and the XACML-ASG
   bridge. *)

open Policy

let role = Attribute.subject "role"
let res = Attribute.resource "type"
let act = Attribute.action "id"
let level = Attribute.subject "level"

let req ?(r = "admin") ?(t = "database") ?(a = "read") () =
  Request.of_list
    [
      (role, Attribute.Str r); (res, Attribute.Str t); (act, Attribute.Str a);
    ]

(* ---- Expr ---- *)

let test_expr_equals () =
  let e = Expr.Equals (role, Attribute.Str "admin") in
  Alcotest.(check bool) "matches" true (Expr.matches (req ()) e);
  Alcotest.(check bool) "no match" false (Expr.matches (req ~r:"intern" ()) e)

let test_expr_missing () =
  let e = Expr.Equals (level, Attribute.Int 3) in
  Alcotest.(check bool) "missing attr" true (Expr.eval (req ()) e = `Missing)

let test_expr_compare () =
  let r = Request.bind level (Attribute.Int 3) (req ()) in
  Alcotest.(check bool) "3 >= 2" true (Expr.matches r (Expr.Compare (Expr.Ge, level, 2)));
  Alcotest.(check bool) "3 < 2 fails" false
    (Expr.matches r (Expr.Compare (Expr.Lt, level, 2)))

let test_expr_boolean () =
  let e =
    Expr.And
      [
        Expr.Equals (role, Attribute.Str "admin");
        Expr.Not (Expr.Equals (act, Attribute.Str "delete"));
      ]
  in
  Alcotest.(check bool) "admin read ok" true (Expr.matches (req ()) e);
  Alcotest.(check bool) "admin delete no" false
    (Expr.matches (req ~a:"delete" ()) e);
  let o =
    Expr.Or
      [ Expr.Equals (role, Attribute.Str "x"); Expr.Equals (act, Attribute.Str "read") ]
  in
  Alcotest.(check bool) "or" true (Expr.matches (req ()) o)

let test_expr_one_of () =
  let e = Expr.One_of (role, [ Attribute.Str "admin"; Attribute.Str "manager" ]) in
  Alcotest.(check bool) "in set" true (Expr.matches (req ()) e);
  Alcotest.(check bool) "not in set" false (Expr.matches (req ~r:"intern" ()) e)

(* ---- Rule / policy evaluation ---- *)

let deny_delete =
  Rule_policy.rule ~effect:Rule_policy.Deny "deny-delete"
    ~condition:(Expr.Equals (act, Attribute.Str "delete"))

let permit_all = Rule_policy.rule ~effect:Rule_policy.Permit "permit-all"

let test_rule_eval () =
  Alcotest.(check string) "deny fires" "Deny"
    (Decision.to_string (Rule_policy.eval_rule (req ~a:"delete" ()) deny_delete));
  Alcotest.(check string) "not applicable" "NotApplicable"
    (Decision.to_string (Rule_policy.eval_rule (req ()) deny_delete))

let test_first_applicable () =
  let p = Rule_policy.make "p" [ deny_delete; permit_all ] in
  Alcotest.(check string) "delete denied" "Deny"
    (Decision.to_string (Rule_policy.evaluate p (req ~a:"delete" ())));
  Alcotest.(check string) "read permitted" "Permit"
    (Decision.to_string (Rule_policy.evaluate p (req ())))

let test_deny_overrides () =
  let p =
    Rule_policy.make ~alg:Rule_policy.Deny_overrides "p"
      [ permit_all; deny_delete ]
  in
  Alcotest.(check string) "deny wins" "Deny"
    (Decision.to_string (Rule_policy.evaluate p (req ~a:"delete" ())))

let test_permit_overrides () =
  let p =
    Rule_policy.make ~alg:Rule_policy.Permit_overrides "p"
      [ deny_delete; permit_all ]
  in
  Alcotest.(check string) "permit wins" "Permit"
    (Decision.to_string (Rule_policy.evaluate p (req ~a:"delete" ())))

let test_deny_unless_permit () =
  let p =
    Rule_policy.make ~alg:Rule_policy.Deny_unless_permit "p" [ deny_delete ]
  in
  Alcotest.(check string) "no permit -> deny" "Deny"
    (Decision.to_string (Rule_policy.evaluate p (req ())))

let test_policy_target () =
  let p =
    Rule_policy.make ~target:(Expr.Equals (res, Attribute.Str "config")) "p"
      [ permit_all ]
  in
  Alcotest.(check string) "target gates" "NotApplicable"
    (Decision.to_string (Rule_policy.evaluate p (req ())))

(* ---- Quality ---- *)

let small_space =
  List.concat_map
    (fun r ->
      List.map (fun a -> req ~r ~a ()) [ "read"; "write"; "delete" ])
    [ "admin"; "intern" ]

let permit_non_delete =
  Rule_policy.rule ~effect:Rule_policy.Permit "permit-non-delete"
    ~condition:(Expr.Not (Expr.Equals (act, Attribute.Str "delete")))

let test_quality_perfect () =
  (* non-overlapping rules: no conflicts, nothing redundant, full cover *)
  let p = Rule_policy.make "p" [ deny_delete; permit_non_delete ] in
  let q = Quality.assess p small_space in
  Alcotest.(check bool) "high quality" true (Quality.is_high_quality q)

let test_quality_incomplete () =
  let p = Rule_policy.make "p" [ deny_delete ] in
  let q = Quality.assess p small_space in
  Alcotest.(check bool) "incomplete" true (q.Quality.completeness < 1.0);
  Alcotest.(check int) "uncovered count" 4 (List.length q.Quality.uncovered)

let test_quality_redundant () =
  let clone = Rule_policy.rule ~effect:Rule_policy.Deny "deny-delete-2"
      ~condition:(Expr.Equals (act, Attribute.Str "delete")) in
  let p = Rule_policy.make "p" [ deny_delete; clone; permit_all ] in
  let q = Quality.assess p small_space in
  Alcotest.(check bool) "redundancy found" true (q.Quality.minimality < 1.0)

let test_quality_irrelevant () =
  let ghost =
    Rule_policy.rule ~effect:Rule_policy.Deny "ghost"
      ~condition:(Expr.Equals (role, Attribute.Str "nobody"))
  in
  let p = Rule_policy.make "p" [ ghost; permit_all ] in
  let q = Quality.assess p small_space in
  Alcotest.(check int) "one irrelevant" 1 (List.length q.Quality.irrelevant_rules)

let test_quality_conflict () =
  let permit_delete =
    Rule_policy.rule ~effect:Rule_policy.Permit "permit-delete"
      ~condition:(Expr.Equals (act, Attribute.Str "delete"))
  in
  let p = Rule_policy.make ~alg:Rule_policy.Deny_overrides "p"
      [ deny_delete; permit_delete; permit_all ] in
  let q = Quality.assess p small_space in
  Alcotest.(check bool) "conflicts detected" true (q.Quality.consistency < 1.0);
  Alcotest.(check bool) "witnesses exist" true (q.Quality.conflicts <> [])

(* ---- Conflict ---- *)

let test_static_conflicts () =
  let permit_delete =
    Rule_policy.rule ~effect:Rule_policy.Permit "permit-delete"
      ~condition:(Expr.Equals (act, Attribute.Str "delete"))
  in
  let found = Conflict.static_conflicts [ deny_delete; permit_delete ] small_space in
  Alcotest.(check int) "one conflicting pair" 1 (List.length found)

let test_context_dependent_conflict () =
  (* the paper's example: conflicts depend on whether a subject matches
     both policies' conditions in the given context *)
  let deny_intern =
    Rule_policy.rule ~effect:Rule_policy.Deny "deny-intern"
      ~condition:(Expr.Equals (role, Attribute.Str "intern"))
  in
  let permit_read =
    Rule_policy.rule ~effect:Rule_policy.Permit "permit-read"
      ~condition:(Expr.Equals (act, Attribute.Str "read"))
  in
  Alcotest.(check bool) "conflict for intern read" true
    (Conflict.conflicts_on deny_intern permit_read (req ~r:"intern" ()));
  Alcotest.(check bool) "no conflict for admin read" false
    (Conflict.conflicts_on deny_intern permit_read (req ()))

let test_resolution_strategies () =
  let permit_delete =
    Rule_policy.rule ~effect:Rule_policy.Permit "permit-delete"
      ~condition:(Expr.Equals (act, Attribute.Str "delete"))
  in
  let rules = [ deny_delete; permit_delete ] in
  let r = req ~a:"delete" () in
  Alcotest.(check string) "prefer deny" "Deny"
    (Decision.to_string (Conflict.evaluate_with Conflict.Prefer_deny rules r));
  Alcotest.(check string) "prefer permit" "Permit"
    (Decision.to_string (Conflict.evaluate_with Conflict.Prefer_permit rules r));
  let rank = function "permit-delete" -> 10 | _ -> 1 in
  Alcotest.(check string) "priority" "Permit"
    (Decision.to_string
       (Conflict.evaluate_with (Conflict.Priority rank) rules r))

let test_most_specific () =
  let specific =
    Rule_policy.rule ~effect:Rule_policy.Permit "specific"
      ~condition:
        (Expr.And
           [
             Expr.Equals (act, Attribute.Str "delete");
             Expr.Equals (role, Attribute.Str "admin");
           ])
  in
  let r = req ~a:"delete" () in
  Alcotest.(check string) "specific wins" "Permit"
    (Decision.to_string
       (Conflict.evaluate_with Conflict.Most_specific [ deny_delete; specific ] r))

(* ---- Policy sets ---- *)

let test_policy_set_nested () =
  let member_a =
    Rule_policy.make "member-a" [ deny_delete ]
  in
  let member_b = Rule_policy.make "member-b" [ permit_non_delete ] in
  let tree =
    Policy_set.set ~alg:Rule_policy.Deny_overrides "coalition"
      [ Policy_set.policy member_a; Policy_set.policy member_b ]
  in
  Alcotest.(check string) "deny wins across members" "Deny"
    (Decision.to_string (Policy_set.evaluate tree (req ~a:"delete" ())));
  Alcotest.(check string) "permit elsewhere" "Permit"
    (Decision.to_string (Policy_set.evaluate tree (req ())));
  Alcotest.(check int) "two leaf policies" 2
    (List.length (Policy_set.policies tree));
  Alcotest.(check int) "depth 2" 2 (Policy_set.depth tree)

let test_policy_set_target_gates () =
  let inner = Rule_policy.make "p" [ permit_all ] in
  let tree =
    Policy_set.set ~alg:Rule_policy.First_applicable
      ~target:(Expr.Equals (res, Attribute.Str "config"))
      "config-only"
      [ Policy_set.policy inner ]
  in
  Alcotest.(check string) "outside target" "NotApplicable"
    (Decision.to_string (Policy_set.evaluate tree (req ())));
  Alcotest.(check string) "inside target" "Permit"
    (Decision.to_string (Policy_set.evaluate tree (req ~t:"config" ())))

let test_policy_set_deciding_policy () =
  let member_a = Rule_policy.make "member-a" [ deny_delete ] in
  let member_b = Rule_policy.make "member-b" [ permit_non_delete ] in
  let tree =
    Policy_set.set ~alg:Rule_policy.First_applicable "coalition"
      [ Policy_set.policy member_a; Policy_set.policy member_b ]
  in
  (match Policy_set.deciding_policy tree (req ~a:"delete" ()) with
  | Some p -> Alcotest.(check string) "member-a decided" "member-a" p.Rule_policy.pid
  | None -> Alcotest.fail "expected a deciding policy");
  match Policy_set.deciding_policy tree (req ()) with
  | Some p -> Alcotest.(check string) "member-b decided" "member-b" p.Rule_policy.pid
  | None -> Alcotest.fail "expected a deciding policy"

let test_policy_set_three_levels () =
  let leaf = Rule_policy.make "leaf" [ permit_all ] in
  let tree =
    Policy_set.set ~alg:Rule_policy.Deny_overrides "root"
      [ Policy_set.set ~alg:Rule_policy.First_applicable "mid"
          [ Policy_set.policy leaf ] ]
  in
  Alcotest.(check int) "depth 3" 3 (Policy_set.depth tree);
  Alcotest.(check string) "decision flows up" "Permit"
    (Decision.to_string (Policy_set.evaluate tree (req ())))

(* ---- XACML-ASG bridge ---- *)

let test_xacml_decide () =
  let gpm = Xacml.decision_gpm () in
  let h =
    Asg.Annotation.parse_rule_string
      ":- result(permit)@1, attr(action, id, delete)."
  in
  let learned = Asg.Gpm.with_hypothesis gpm [ (0, h) ] in
  Alcotest.(check string) "delete denied" "Deny"
    (Decision.to_string (Xacml.decide learned (req ~a:"delete" ())));
  Alcotest.(check string) "read permitted (default)" "Permit"
    (Decision.to_string (Xacml.decide learned (req ())))

let test_request_to_context () =
  let ctx = Request.to_context (req ()) in
  Alcotest.(check int) "three facts" 3 (Asp.Program.size ctx);
  let text = Asp.Program.to_string ctx in
  Alcotest.(check bool) "role fact present" true
    (let needle = "attr(subject, role, admin)" in
     let rec go i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_rule_of_constraint () =
  let c =
    Asg.Annotation.parse_rule_string
      ":- result(permit)@1, attr(subject, role, intern), attr(action, id, write)."
  in
  match Xacml.rule_of_constraint ~rid:"r1" c with
  | None -> Alcotest.fail "expected a rendered rule"
  | Some rule ->
    Alcotest.(check bool) "deny effect" true (rule.Rule_policy.effect = Rule_policy.Deny);
    Alcotest.(check string) "renders conditions"
      "rule r1: Deny if (subject.role = intern and action.id = write)"
      (Fmt.str "%a" Rule_policy.pp_rule rule)

let test_rule_of_constraint_rejects_vars () =
  let c =
    Asg.Annotation.parse_rule_string
      ":- result(permit)@1, role_level(S), S < 2."
  in
  Alcotest.(check bool) "variable rule not renderable" true
    (Xacml.rule_of_constraint ~rid:"r" c = None)

let test_examples_of_log () =
  let log =
    [ (req (), Decision.Permit); (req ~a:"delete" (), Decision.Deny) ]
  in
  let examples = Xacml.examples_of_log log in
  Alcotest.(check int) "two per entry" 4 (List.length examples);
  let na_log = [ (req (), Decision.Not_applicable) ] in
  Alcotest.(check int) "irrelevant dropped" 0
    (List.length (Xacml.examples_of_log na_log));
  Alcotest.(check int) "irrelevant kept when asked" 1
    (List.length (Xacml.examples_of_log ~keep_irrelevant:true na_log))

(* ---- XACML XML serialization ---- *)

let sample_policy () =
  Rule_policy.make ~alg:Rule_policy.Deny_overrides "coalition-policy"
    ~target:(Expr.Equals (res, Attribute.Str "database"))
    [
      Rule_policy.rule ~effect:Rule_policy.Deny "deny-delete"
        ~condition:
          (Expr.And
             [ Expr.Equals (act, Attribute.Str "delete");
               Expr.Not (Expr.Equals (role, Attribute.Str "admin")) ]);
      Rule_policy.rule ~effect:Rule_policy.Permit "permit-some"
        ~target:(Expr.One_of (role, [ Attribute.Str "admin"; Attribute.Str "manager" ]))
        ~condition:(Expr.Compare (Expr.Ge, level, 2));
      Rule_policy.rule ~effect:Rule_policy.Permit "default";
    ]

let test_xml_roundtrip () =
  let p = sample_policy () in
  let xml = Xacml_xml.to_string p in
  let p' = Xacml_xml.of_string xml in
  Alcotest.(check string) "same id" p.Rule_policy.pid p'.Rule_policy.pid;
  Alcotest.(check int) "same rule count"
    (List.length p.Rule_policy.rules)
    (List.length p'.Rule_policy.rules);
  (* behavioural equality over a request sample *)
  let space =
    req () :: req ~r:"intern" ~a:"delete" ()
    :: req ~r:"manager" ~t:"database" ()
    :: Request.bind level (Attribute.Int 3) (req ~r:"manager" ())
    :: small_space
  in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Request.to_string r)
        (Decision.to_string (Rule_policy.evaluate p r))
        (Decision.to_string (Rule_policy.evaluate p' r)))
    space

let test_xml_escaping () =
  let p =
    Rule_policy.make "q<&>\"uote"
      [ Rule_policy.rule ~effect:Rule_policy.Permit "r"
          ~condition:(Expr.Equals (role, Attribute.Str "a\"b&c")) ]
  in
  let p' = Xacml_xml.of_string (Xacml_xml.to_string p) in
  Alcotest.(check string) "id escaped and restored" p.Rule_policy.pid
    p'.Rule_policy.pid;
  match (List.hd p'.Rule_policy.rules).Rule_policy.condition with
  | Expr.Equals (_, Attribute.Str v) ->
    Alcotest.(check string) "value restored" "a\"b&c" v
  | _ -> Alcotest.fail "expected equals condition"

let test_xml_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Xacml_xml.of_string "<NotAPolicy/>");
       false
     with Xacml_xml.Xml_error _ -> true)

let test_xml_learned_policy_roundtrip () =
  (* the Fig-3a pipeline output survives serialization *)
  let c =
    Asg.Annotation.parse_rule_string
      ":- result(permit)@1, attr(subject, role, intern), attr(action, id, write)."
  in
  match Xacml.rule_of_constraint ~rid:"r1" c with
  | None -> Alcotest.fail "render failed"
  | Some rule ->
    let p = Rule_policy.make "learned" [ rule ] in
    let p' = Xacml_xml.of_string (Xacml_xml.to_string p) in
    Alcotest.(check string) "conditions preserved"
      (Fmt.str "%a" Rule_policy.pp p)
      (Fmt.str "%a" Rule_policy.pp p')

(* random policies for the XML roundtrip property *)
let gen_expr =
  QCheck2.Gen.(
    sized_size (int_bound 2) @@ fix (fun self n ->
        let leaf =
          oneof
            [ return Expr.True;
              map
                (fun r -> Expr.Equals (role, Attribute.Str r))
                (oneofl [ "admin"; "intern"; "man&ager" ]);
              map (fun k -> Expr.Compare (Expr.Ge, level, k)) (int_bound 5);
              map
                (fun vs -> Expr.One_of (act, List.map (fun v -> Attribute.Str v) vs))
                (list_size (int_range 1 3) (oneofl [ "read"; "write" ])) ]
        in
        if n <= 0 then leaf
        else
          oneof
            [ leaf;
              map (fun e -> Expr.Not e) (self (n - 1));
              map (fun es -> Expr.And es) (list_size (int_range 1 3) (self (n - 1)));
              map (fun es -> Expr.Or es) (list_size (int_range 1 3) (self (n - 1))) ]))

let gen_policy =
  QCheck2.Gen.(
    let gen_rule i =
      map2
        (fun target condition ->
          Rule_policy.rule ~target ~condition
            ~effect:(if i mod 2 = 0 then Rule_policy.Deny else Rule_policy.Permit)
            (Printf.sprintf "r%d" i))
        gen_expr gen_expr
    in
    let* n = int_range 1 4 in
    let* rules = flatten_l (List.init n gen_rule) in
    let* alg =
      oneofl
        Rule_policy.
          [ First_applicable; Deny_overrides; Permit_overrides;
            Deny_unless_permit; Permit_unless_deny ]
    in
    let+ target = gen_expr in
    Rule_policy.make ~target ~alg "random-policy" rules)

let prop_xml_roundtrip_behaviour =
  QCheck2.Test.make ~name:"XML roundtrip preserves decisions" ~count:100
    gen_policy (fun p ->
      let p' = Xacml_xml.of_string (Xacml_xml.to_string p) in
      let probe =
        Request.bind level (Attribute.Int 3) (req ())
        :: req ~r:"intern" ~a:"write" ()
        :: req ~r:"man&ager" ~a:"read" ()
        :: small_space
      in
      List.for_all
        (fun r ->
          Decision.equal (Rule_policy.evaluate p r) (Rule_policy.evaluate p' r))
        probe)

(* property: combining algorithms agree on conflict-free inputs *)
let prop_combining_agree_no_conflict =
  QCheck2.Test.make ~name:"deny/permit-overrides agree without conflicts"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 6) (oneofl [ "permit"; "deny"; "na" ]))
    (fun raw ->
      let ds =
        List.map
          (function
            | "permit" -> Decision.Permit
            | "deny" -> Decision.Deny
            | _ -> Decision.Not_applicable)
          raw
      in
      let has d = List.mem d ds in
      if has Decision.Permit && has Decision.Deny then true
      else
        Decision.equal
          (Rule_policy.combine Rule_policy.Deny_overrides ds)
          (Rule_policy.combine Rule_policy.Permit_overrides ds))

let prop_first_applicable_prefix =
  QCheck2.Test.make ~name:"first-applicable ignores later rules" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 4) (oneofl [ "permit"; "deny"; "na" ]))
        (list_size (int_range 0 4) (oneofl [ "permit"; "deny"; "na" ])))
    (fun (prefix, suffix) ->
      let to_d = function
        | "permit" -> Decision.Permit
        | "deny" -> Decision.Deny
        | _ -> Decision.Not_applicable
      in
      let ds = List.map to_d prefix in
      let fa = Rule_policy.combine Rule_policy.First_applicable in
      if fa ds = Decision.Not_applicable then true
      else Decision.equal (fa ds) (fa (ds @ List.map to_d suffix)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_combining_agree_no_conflict; prop_first_applicable_prefix;
      prop_xml_roundtrip_behaviour ]

let () =
  Alcotest.run "policy"
    [
      ( "expr",
        [
          Alcotest.test_case "equals" `Quick test_expr_equals;
          Alcotest.test_case "missing" `Quick test_expr_missing;
          Alcotest.test_case "compare" `Quick test_expr_compare;
          Alcotest.test_case "boolean" `Quick test_expr_boolean;
          Alcotest.test_case "one_of" `Quick test_expr_one_of;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "rule" `Quick test_rule_eval;
          Alcotest.test_case "first-applicable" `Quick test_first_applicable;
          Alcotest.test_case "deny-overrides" `Quick test_deny_overrides;
          Alcotest.test_case "permit-overrides" `Quick test_permit_overrides;
          Alcotest.test_case "deny-unless-permit" `Quick test_deny_unless_permit;
          Alcotest.test_case "policy target" `Quick test_policy_target;
        ] );
      ( "quality",
        [
          Alcotest.test_case "perfect" `Quick test_quality_perfect;
          Alcotest.test_case "incomplete" `Quick test_quality_incomplete;
          Alcotest.test_case "redundant" `Quick test_quality_redundant;
          Alcotest.test_case "irrelevant" `Quick test_quality_irrelevant;
          Alcotest.test_case "conflict" `Quick test_quality_conflict;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "static" `Quick test_static_conflicts;
          Alcotest.test_case "context-dependent" `Quick test_context_dependent_conflict;
          Alcotest.test_case "strategies" `Quick test_resolution_strategies;
          Alcotest.test_case "most specific" `Quick test_most_specific;
        ] );
      ( "policy-set",
        [
          Alcotest.test_case "nested" `Quick test_policy_set_nested;
          Alcotest.test_case "target gates" `Quick test_policy_set_target_gates;
          Alcotest.test_case "deciding policy" `Quick test_policy_set_deciding_policy;
          Alcotest.test_case "three levels" `Quick test_policy_set_three_levels;
        ] );
      ( "xacml",
        [
          Alcotest.test_case "decide" `Quick test_xacml_decide;
          Alcotest.test_case "request context" `Quick test_request_to_context;
          Alcotest.test_case "rule rendering" `Quick test_rule_of_constraint;
          Alcotest.test_case "variable rules unrendered" `Quick test_rule_of_constraint_rejects_vars;
          Alcotest.test_case "examples of log" `Quick test_examples_of_log;
        ] );
      ( "xml",
        [
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
          Alcotest.test_case "escaping" `Quick test_xml_escaping;
          Alcotest.test_case "garbage" `Quick test_xml_rejects_garbage;
          Alcotest.test_case "learned policy" `Quick test_xml_learned_policy_roundtrip;
        ] );
      ("properties", qcheck_cases);
    ]
