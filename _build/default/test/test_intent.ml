(* Tests for the controlled-English intent compiler (Section III-B's
   natural-language-to-grammar research direction). *)

let ctx = Asp.Parser.parse_program

let cav_intents =
  "the options are accept or reject. \
   never accept when weather is snow and task is overtake. \
   never accept when vehicle_loa is below needed_loa. \
   penalize reject by 1."

let test_parse_options () =
  match Intent.parse "the options are accept, reject or defer." with
  | [ Intent.Options [ "accept"; "reject"; "defer" ] ] -> ()
  | _ -> Alcotest.fail "expected three options"

let test_parse_forbid () =
  match Intent.parse "never accept when weather is snow." with
  | [ Intent.Forbid ("accept", [ _cond ]) ] -> ()
  | _ -> Alcotest.fail "expected a forbid statement"

let test_parse_penalize_and_prefer () =
  (match Intent.parse "penalize reject by 2." with
  | [ Intent.Penalize ("reject", 2, []) ] -> ()
  | _ -> Alcotest.fail "expected penalize");
  match Intent.parse "prefer accept over reject." with
  | [ Intent.Penalize ("reject", 1, []) ] -> ()
  | _ -> Alcotest.fail "prefer should compile to penalize"

let test_parse_errors () =
  let bad s =
    try
      ignore (Intent.parse s);
      false
    with Intent.Intent_error _ -> true
  in
  Alcotest.(check bool) "unknown verb" true (bad "frobnicate accept.");
  Alcotest.(check bool) "bad condition" true
    (bad "never accept when weather snow.");
  Alcotest.(check bool) "missing number" true (bad "penalize reject by much.")

let test_compile_membership () =
  let gpm = Intent.compile cav_intents in
  Alcotest.(check bool) "accept ok in clear" true
    (Asg.Membership.accepts_in_context gpm
       ~context:(ctx "weather(clear). task(turn).") "accept");
  Alcotest.(check bool) "snow overtake blocked" false
    (Asg.Membership.accepts_in_context gpm
       ~context:(ctx "weather(snow). task(overtake).") "accept");
  Alcotest.(check bool) "snow turn still ok" true
    (Asg.Membership.accepts_in_context gpm
       ~context:(ctx "weather(snow). task(turn).") "accept");
  Alcotest.(check bool) "loa threshold blocked" false
    (Asg.Membership.accepts_in_context gpm
       ~context:(ctx "vehicle_loa(2). needed_loa(4).") "accept")

let test_compile_preference () =
  let gpm = Intent.compile cav_intents in
  match
    Asg.Language.best_sentence gpm ~context:(ctx "weather(clear). task(turn).")
  with
  | Some ("accept", 0) -> ()
  | other ->
    Alcotest.fail
      (match other with
      | Some (s, c) -> Printf.sprintf "expected accept[0], got %s[%d]" s c
      | None -> "expected accept[0], got none")

let test_compile_fallback_choice () =
  let gpm = Intent.compile cav_intents in
  match
    Asg.Language.best_sentence gpm
      ~context:(ctx "weather(snow). task(overtake).")
  with
  | Some ("reject", 1) -> ()
  | _ -> Alcotest.fail "expected reject as the only (penalized) option"

let test_compile_unknown_option_rejected () =
  Alcotest.(check bool) "forbidding an undeclared option fails" true
    (try
       ignore
         (Intent.compile "the options are accept. never launch when x is y.");
       false
     with Intent.Intent_error _ -> true)

let test_conditions_at_least_most () =
  let gpm =
    Intent.compile
      "the options are share or refuse. never share when trust is at most 2. \
       never share when value is at least 9."
  in
  Alcotest.(check bool) "low trust blocked" false
    (Asg.Membership.accepts_in_context gpm ~context:(ctx "trust(2). value(1).")
       "share");
  Alcotest.(check bool) "high value blocked" false
    (Asg.Membership.accepts_in_context gpm ~context:(ctx "trust(5). value(9).")
       "share");
  Alcotest.(check bool) "mid range shared" true
    (Asg.Membership.accepts_in_context gpm ~context:(ctx "trust(5). value(3).")
       "share")

let test_condition_negation () =
  let gpm =
    Intent.compile
      "the options are permit or deny. never permit when clearance is not granted."
  in
  Alcotest.(check bool) "no clearance blocked" false
    (Asg.Membership.accepts_in_context gpm ~context:(ctx "") "permit");
  Alcotest.(check bool) "clearance ok" true
    (Asg.Membership.accepts_in_context gpm
       ~context:(ctx "clearance(granted).") "permit")

let test_multiple_options_rejected () =
  Alcotest.(check bool) "two options statements rejected" true
    (try
       ignore
         (Intent.compile "the options are a. the options are b.");
       false
     with Intent.Intent_error _ -> true);
  Alcotest.(check bool) "no options statement rejected" true
    (try
       ignore (Intent.compile "never a when x is y.");
       false
     with Intent.Intent_error _ -> true)

let test_describe () =
  let gpm = Intent.compile cav_intents in
  let rules = Intent.describe gpm in
  Alcotest.(check int) "three compiled rules" 3 (List.length rules)

let () =
  Alcotest.run "intent"
    [
      ( "parsing",
        [
          Alcotest.test_case "options" `Quick test_parse_options;
          Alcotest.test_case "forbid" `Quick test_parse_forbid;
          Alcotest.test_case "penalize/prefer" `Quick test_parse_penalize_and_prefer;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "compilation",
        [
          Alcotest.test_case "membership" `Quick test_compile_membership;
          Alcotest.test_case "preference" `Quick test_compile_preference;
          Alcotest.test_case "fallback" `Quick test_compile_fallback_choice;
          Alcotest.test_case "unknown option" `Quick test_compile_unknown_option_rejected;
          Alcotest.test_case "at least/most" `Quick test_conditions_at_least_most;
          Alcotest.test_case "negation" `Quick test_condition_negation;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "options statement arity" `Quick test_multiple_options_rejected;
        ] );
    ]
