  $ cat > prog.lp <<'ASP'
  > 1 { pick(a); pick(b) } 1. cost(a, 3). cost(b, 1).
  > :~ pick(X), cost(X, C). [C]
  > ASP
  $ agenp solve prog.lp --optimal
  $ cat > g.asg <<'ASG'
  > start -> decision
  > decision -> "accept" { result(accept). } | "reject" { result(reject). }
  > ASG
  $ cat > ctx.lp <<'ASP'
  > weather(snow).
  > ASP
  $ cat > examples.txt <<'EX'
  > + accept | weather(sun).
  > - accept | weather(snow).
  > + reject | weather(snow).
  > EX
  $ cat > space.txt <<'SP'
  > 0 | :- result(accept)@1, weather(snow).
  > 0 | :- result(accept)@1, weather(sun).
  > 0 | :- result(reject)@1, weather(snow).
  > SP
  $ agenp learn g.asg examples.txt space.txt --save learned.asg
  $ cat learned.asg
  $ agenp check learned.asg accept -c ctx.lp
  $ agenp check learned.asg reject -c ctx.lp
  $ agenp generate learned.asg -c ctx.lp
  $ agenp explain learned.asg accept -c ctx.lp
  $ printf 'p :- not q.\nq :- not p.\n:solve\n:quit\n' | agenp repl | grep -o 'Answer.*'
  $ cat > pref.asg <<'ASG'
  > start -> decision { :~ result(reject)@1. [1] }
  > decision -> "accept" { result(accept). } | "reject" { result(reject). }
  > ASG
  $ agenp generate pref.asg --ranked
  $ cat > small.lp <<'ASP'
  > n(1..2). d(X + X) :- n(X).
  > ASP
  $ agenp ground small.lp
