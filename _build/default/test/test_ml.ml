(* Tests for the shallow-ML baselines. *)

let xor_dataset =
  (* label = "t" iff features differ: needs both features *)
  Ml.Dataset.make ~feature_names:[| "a"; "b" |]
    [
      { Ml.Dataset.features = [| "0"; "0" |]; label = "f" };
      { Ml.Dataset.features = [| "0"; "1" |]; label = "t" };
      { Ml.Dataset.features = [| "1"; "0" |]; label = "t" };
      { Ml.Dataset.features = [| "1"; "1" |]; label = "f" };
    ]

let weather_dataset =
  Ml.Dataset.make ~feature_names:[| "weather"; "task" |]
    [
      { Ml.Dataset.features = [| "snow"; "overtake" |]; label = "reject" };
      { Ml.Dataset.features = [| "snow"; "turn" |]; label = "accept" };
      { Ml.Dataset.features = [| "clear"; "overtake" |]; label = "accept" };
      { Ml.Dataset.features = [| "clear"; "turn" |]; label = "accept" };
      { Ml.Dataset.features = [| "snow"; "overtake" |]; label = "reject" };
      { Ml.Dataset.features = [| "clear"; "overtake" |]; label = "accept" };
    ]

let test_dataset_basics () =
  Alcotest.(check int) "size" 4 (Ml.Dataset.size xor_dataset);
  Alcotest.(check (list string)) "labels" [ "f"; "t" ] (Ml.Dataset.labels xor_dataset);
  Alcotest.(check (list string)) "feature values" [ "0"; "1" ]
    (Ml.Dataset.feature_values xor_dataset 0)

let test_dataset_split () =
  let train, test = Ml.Dataset.split_at 3 xor_dataset in
  Alcotest.(check int) "train 3" 3 (Ml.Dataset.size train);
  Alcotest.(check int) "test 1" 1 (Ml.Dataset.size test)

let test_dataset_shuffle_deterministic () =
  let s1 = Ml.Dataset.shuffle ~seed:5 xor_dataset in
  let s2 = Ml.Dataset.shuffle ~seed:5 xor_dataset in
  Alcotest.(check bool) "same seed same order" true
    (s1.Ml.Dataset.instances = s2.Ml.Dataset.instances);
  Alcotest.(check int) "same size" 4 (Ml.Dataset.size s1)

let test_majority () =
  Alcotest.(check (option string)) "majority accept" (Some "accept")
    (Ml.Dataset.majority_label weather_dataset)

let test_id3_fits_xor () =
  let model = Ml.Decision_tree.train xor_dataset in
  Alcotest.(check (float 0.001)) "xor learned exactly" 1.0
    (Ml.Eval.accuracy (Ml.Decision_tree.classify model) xor_dataset)

let test_id3_unseen_value_default () =
  let model = Ml.Decision_tree.train weather_dataset in
  (* unseen weather value falls back to the node default, not a crash *)
  let label = Ml.Decision_tree.classify model [| "fog"; "turn" |] in
  Alcotest.(check bool) "some label" true (label = "accept" || label = "reject")

let test_id3_depth_limit () =
  let model = Ml.Decision_tree.train ~max_depth:1 xor_dataset in
  Alcotest.(check bool) "stump depth" true (Ml.Decision_tree.depth model.Ml.Decision_tree.tree <= 2)

let test_naive_bayes () =
  let model = Ml.Naive_bayes.train weather_dataset in
  Alcotest.(check string) "snow overtake rejected" "reject"
    (Ml.Naive_bayes.classify model [| "snow"; "overtake" |]);
  Alcotest.(check string) "clear turn accepted" "accept"
    (Ml.Naive_bayes.classify model [| "clear"; "turn" |])

let test_knn () =
  let model = Ml.Knn.train ~k:1 weather_dataset in
  Alcotest.(check string) "1-nn exact recall" "reject"
    (Ml.Knn.classify model [| "snow"; "overtake" |]);
  let model3 = Ml.Knn.train ~k:3 weather_dataset in
  Alcotest.(check string) "3-nn majority" "accept"
    (Ml.Knn.classify model3 [| "clear"; "turn" |])

let test_learning_curve_shape () =
  let big = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed:11 200) in
  let test = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed:12 100) in
  let curve =
    Ml.Eval.learning_curve Ml.Eval.decision_tree ~train:big ~test
      ~sizes:[ 10; 50; 200 ]
  in
  Alcotest.(check int) "three points" 3 (List.length curve);
  let acc_at n = List.assoc n curve in
  Alcotest.(check bool) "more data helps (or ties)" true
    (acc_at 200 >= acc_at 10 -. 0.05)

let test_majority_classifier () =
  let predict = Ml.Eval.majority_class.Ml.Eval.train weather_dataset in
  Alcotest.(check string) "always majority" "accept" (predict [| "x"; "y" |])

let test_nb_unseen_value () =
  let model = Ml.Naive_bayes.train weather_dataset in
  let label = Ml.Naive_bayes.classify model [| "hail"; "turn" |] in
  Alcotest.(check bool) "graceful on unseen value" true
    (label = "accept" || label = "reject")

let test_empty_test_set_accuracy () =
  let empty = Ml.Dataset.make ~feature_names:[| "a"; "b" |] [] in
  Alcotest.(check (float 0.001)) "vacuous accuracy" 1.0
    (Ml.Eval.accuracy (fun _ -> "x") empty)

(* property: accuracy is always within [0,1] and training-set accuracy of
   an unlimited tree on deduplicated-consistent data is 1.0 *)
let prop_accuracy_bounds =
  QCheck2.Test.make ~name:"accuracy in [0,1]" ~count:30
    QCheck2.Gen.(int_range 1 60)
    (fun n ->
      let d = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed:n 40) in
      let t = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed:(n + 1) 40) in
      let model = Ml.Decision_tree.train d in
      let a = Ml.Eval.accuracy (Ml.Decision_tree.classify model) t in
      a >= 0.0 && a <= 1.0)

let prop_tree_consistent_training =
  QCheck2.Test.make ~name:"tree fits consistent training data" ~count:20
    QCheck2.Gen.(int_range 1 40)
    (fun seed ->
      (* CAV ground truth is a function of the features, so data is
         consistent and an unbounded tree must fit it perfectly *)
      let d = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed 50) in
      let model = Ml.Decision_tree.train ~max_depth:32 d in
      Ml.Eval.accuracy (Ml.Decision_tree.classify model) d = 1.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_accuracy_bounds; prop_tree_consistent_training ]

let () =
  Alcotest.run "ml"
    [
      ( "dataset",
        [
          Alcotest.test_case "basics" `Quick test_dataset_basics;
          Alcotest.test_case "split" `Quick test_dataset_split;
          Alcotest.test_case "shuffle deterministic" `Quick test_dataset_shuffle_deterministic;
          Alcotest.test_case "majority" `Quick test_majority;
        ] );
      ( "models",
        [
          Alcotest.test_case "id3 xor" `Quick test_id3_fits_xor;
          Alcotest.test_case "id3 unseen value" `Quick test_id3_unseen_value_default;
          Alcotest.test_case "id3 depth limit" `Quick test_id3_depth_limit;
          Alcotest.test_case "naive bayes" `Quick test_naive_bayes;
          Alcotest.test_case "knn" `Quick test_knn;
          Alcotest.test_case "majority classifier" `Quick test_majority_classifier;
          Alcotest.test_case "nb unseen value" `Quick test_nb_unseen_value;
          Alcotest.test_case "empty test set" `Quick test_empty_test_set_accuracy;
        ] );
      ( "eval",
        [ Alcotest.test_case "learning curve" `Quick test_learning_curve_shape ] );
      ("properties", qcheck_cases);
    ]
