(* Tests for the answer-set-grammar layer: annotation semantics, the G[PT]
   mapping, context-dependent membership, and language generation. *)

let parse_ctx = Asp.Parser.parse_program

(* The running CAV-style example: a decision grammar whose root annotation
   forbids accepting in risky contexts. *)
let decision_gpm () =
  Asg.Asg_parser.parse
    {| start -> decision { :- result(accept)@1, risky. }
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

let test_asg_parse () =
  let g = decision_gpm () in
  let cfg = Asg.Gpm.cfg g in
  Alcotest.(check int) "3 productions" 3 (List.length (Grammar.Cfg.productions cfg));
  Alcotest.(check string) "start" "start" (Grammar.Cfg.start cfg);
  Alcotest.(check int) "root annotated" 1
    (List.length (Asg.Gpm.annotation g 0));
  Alcotest.(check int) "accept annotated" 1
    (List.length (Asg.Gpm.annotation g 1))

let test_annotation_parse_sites () =
  let r = Asg.Annotation.parse_rule_string ":- result(accept)@1, risky." in
  match r.Asg.Annotation.body with
  | [ Asg.Annotation.Pos a1; Asg.Annotation.Pos a2 ] ->
    Alcotest.(check bool) "site 1" true (a1.Asg.Annotation.site = Some 1);
    Alcotest.(check bool) "no site" true (a2.Asg.Annotation.site = None)
  | _ -> Alcotest.fail "expected two positive annotated atoms"

let test_annotation_pp_roundtrip () =
  let s = ":- result(accept)@1, risky." in
  let r = Asg.Annotation.parse_rule_string s in
  Alcotest.(check string) "roundtrip" s (Asg.Annotation.rule_to_string r)

let test_mangle () =
  Alcotest.(check string) "empty trace unchanged" "p"
    (Asg.Annotation.mangle_pred "p" []);
  Alcotest.(check string) "trace folded" "p@1_2"
    (Asg.Annotation.mangle_pred "p" [ 1; 2 ])

let test_tree_program () =
  let g = decision_gpm () in
  let trees = Grammar.Earley.parses_sentence (Asg.Gpm.cfg g) "accept" in
  let tree = List.hd trees in
  let prog = Asg.Tree_program.program g tree in
  let text = Asp.Program.to_string prog in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "child fact instantiated at trace [1]" true
    (contains "result@1(accept)" text)

let test_membership_no_context () =
  let g = decision_gpm () in
  Alcotest.(check bool) "accept ok w/o risky" true (Asg.Membership.accepts g "accept");
  Alcotest.(check bool) "reject ok" true (Asg.Membership.accepts g "reject");
  Alcotest.(check bool) "garbage rejected" false (Asg.Membership.accepts g "fly")

let test_membership_context () =
  let g = decision_gpm () in
  let risky = parse_ctx "risky." in
  Alcotest.(check bool) "accept blocked under risky" false
    (Asg.Membership.accepts_in_context g ~context:risky "accept");
  Alcotest.(check bool) "reject fine under risky" true
    (Asg.Membership.accepts_in_context g ~context:risky "reject")

let test_membership_context_rules () =
  (* context may contain rules, not only facts *)
  let g = decision_gpm () in
  let ctx = parse_ctx "risky :- weather(snow). weather(snow)." in
  Alcotest.(check bool) "derived risky blocks accept" false
    (Asg.Membership.accepts_in_context g ~context:ctx "accept")

let test_language_generation () =
  let g = decision_gpm () in
  let all = Asg.Language.sentences ~max_depth:4 g in
  Alcotest.(check (list string)) "both decisions" [ "accept"; "reject" ]
    (List.sort compare all);
  let risky = parse_ctx "risky." in
  let valid = Asg.Language.sentences_in_context ~max_depth:4 g ~context:risky in
  Alcotest.(check (list string)) "only reject under risky" [ "reject" ] valid

let test_witness () =
  let g = decision_gpm () in
  match Asg.Membership.witness g "accept" with
  | Some m ->
    Alcotest.(check bool) "witness mentions result@1(accept)" true
      (Asp.Atom.Set.exists
         (fun a -> String.length a.Asp.Atom.pred >= 6) m)
  | None -> Alcotest.fail "expected a witness"

(* Counting semantics: an annotation constraining subtree shape, in the
   spirit of the AAAI-19 ASG examples. The grammar generates a^n b^m and
   annotations require the counts to be equal via child-site atoms. *)
let test_structural_annotation () =
  let g =
    Asg.Asg_parser.parse
      {| start -> as bs { :- n(X)@1, n(Y)@2, X != Y. }
         as -> "a" as { n(X+1) :- n(X)@2. } | { n(0). }
         bs -> "b" bs { n(X+1) :- n(X)@2. } | { n(0). } |}
  in
  Alcotest.(check bool) "a a b b accepted" true
    (Asg.Membership.accepts g "a a b b");
  Alcotest.(check bool) "a b b rejected" false (Asg.Membership.accepts g "a b b");
  Alcotest.(check bool) "empty accepted" true (Asg.Membership.accepts g "")

let test_hypothesis_extension () =
  let g0 =
    Asg.Asg_parser.parse
      {| start -> decision
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  (* without hypothesis everything is accepted *)
  let risky = parse_ctx "risky." in
  Alcotest.(check bool) "accept ok before learning" true
    (Asg.Membership.accepts_in_context g0 ~context:risky "accept");
  let h = Asg.Annotation.parse_rule_string ":- result(accept)@1, risky." in
  let g1 = Asg.Gpm.with_hypothesis g0 [ (0, h) ] in
  Alcotest.(check bool) "accept blocked after adding hypothesis" false
    (Asg.Membership.accepts_in_context g1 ~context:risky "accept")

let test_ranked_generation () =
  (* preferences via weak annotations: reject costs 1, accept costs 0 *)
  let g =
    Asg.Asg_parser.parse
      {| start -> decision { :~ result(reject)@1. [1] }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  let ranked = Asg.Language.ranked_sentences ~max_depth:4 g in
  Alcotest.(check (list (pair string int))) "accept preferred"
    [ ("accept", 0); ("reject", 1) ]
    ranked;
  match Asg.Language.best_sentence g ~context:Asp.Program.empty with
  | Some ("accept", 0) -> ()
  | _ -> Alcotest.fail "expected accept as best"

let test_ranked_respects_constraints () =
  let g =
    Asg.Asg_parser.parse
      {| start -> decision { :- result(accept)@1, risky. :~ result(reject)@1. [1] }
         decision -> "accept" { result(accept). } | "reject" { result(reject). } |}
  in
  let ctx = Asp.Parser.parse_program "risky." in
  match Asg.Language.best_sentence g ~context:ctx with
  | Some ("reject", 1) -> ()
  | other ->
    Alcotest.fail
      (match other with
      | Some (s, c) -> Printf.sprintf "got %s[%d]" s c
      | None -> "got none")

let test_render_roundtrip () =
  let g = decision_gpm () in
  let rendered = Asg.Asg_parser.render g in
  let g' = Asg.Asg_parser.parse rendered in
  (* same language behaviour before and after the roundtrip *)
  let risky = parse_ctx "risky." in
  List.iter
    (fun (ctx, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip agrees on %s" s)
        (Asg.Membership.accepts_in_context g ~context:ctx s)
        (Asg.Membership.accepts_in_context g' ~context:ctx s))
    [ (risky, "accept"); (risky, "reject");
      (Asp.Program.empty, "accept"); (Asp.Program.empty, "reject") ]

let test_render_includes_hypothesis () =
  let g0 = decision_gpm () in
  let h = Asg.Annotation.parse_rule_string ":- result(reject)@1, sunny." in
  let g1 = Asg.Gpm.with_hypothesis g0 [ (0, h) ] in
  let rendered = Asg.Asg_parser.render g1 in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "learned rule rendered" true
    (contains "result(reject)@1" rendered);
  let g2 = Asg.Asg_parser.parse rendered in
  Alcotest.(check bool) "reject blocked when sunny after reload" false
    (Asg.Membership.accepts_in_context g2 ~context:(parse_ctx "sunny.") "reject")

let test_gpm_clean () =
  let g =
    Asg.Asg_parser.parse
      {| start -> decision { :- bad@1. }
         decision -> "go" { ok. }
         orphan -> "x" { never. } |}
  in
  let cleaned = Asg.Gpm.clean g in
  Alcotest.(check int) "orphan removed" 2
    (List.length (Grammar.Cfg.productions (Asg.Gpm.cfg cleaned)));
  (* annotations survive on the re-numbered productions *)
  Alcotest.(check int) "root annotation kept" 1
    (List.length (Asg.Gpm.annotation cleaned 0));
  Alcotest.(check bool) "behaviour preserved" true
    (Asg.Membership.accepts cleaned "go")

let test_ambiguous_membership () =
  (* two parse trees; only one satisfies its annotation: still a member *)
  let g =
    Asg.Asg_parser.parse
      {| s -> a { :- bad@1. }
         a -> "x" b { bad. } | "x" c { }
         b -> { }
         c -> { } |}
  in
  Alcotest.(check bool) "one good tree suffices" true
    (Asg.Membership.accepts g "x")

let test_context_copies_at_depth () =
  (* context facts materialize at every node; a deep annotation can read
     its own copy *)
  let g =
    Asg.Asg_parser.parse
      {| s -> m { }
         m -> "t" { :- blocked. } |}
  in
  let ctx = Asp.Parser.parse_program "blocked." in
  Alcotest.(check bool) "deep node sees its context copy" false
    (Asg.Membership.accepts_in_context g ~context:ctx "t")

let test_shared_annotation_exposed () =
  let g = Asg.Gpm.with_context (decision_gpm ()) (parse_ctx "risky.") in
  Alcotest.(check int) "shared rules recorded" 1
    (List.length (Asg.Gpm.shared g))

(* property: membership of an ASG is always a subset of its CFG language *)
let prop_language_subset_cfg =
  QCheck2.Test.make ~name:"L(G) subset of L(G_CF)" ~count:20
    QCheck2.Gen.(int_range 2 5)
    (fun depth ->
      let g = decision_gpm () in
      let valid = Asg.Language.sentences ~max_depth:depth g in
      List.for_all
        (fun s -> Grammar.Earley.recognize_sentence (Asg.Gpm.cfg g) s)
        valid)

let prop_context_monotone_restriction =
  (* adding constraints via context can only shrink the language *)
  QCheck2.Test.make ~name:"contexts only shrink valid decisions" ~count:20
    QCheck2.Gen.(bool)
    (fun risky_flag ->
      let g = decision_gpm () in
      let ctx = if risky_flag then parse_ctx "risky." else parse_ctx "" in
      let all = Asg.Language.sentences ~max_depth:4 g in
      let restricted = Asg.Language.sentences_in_context ~max_depth:4 g ~context:ctx in
      List.for_all (fun s -> List.mem s all) restricted)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_language_subset_cfg; prop_context_monotone_restriction ]

let () =
  Alcotest.run "asg"
    [
      ( "parsing",
        [
          Alcotest.test_case "asg parse" `Quick test_asg_parse;
          Alcotest.test_case "annotation sites" `Quick test_annotation_parse_sites;
          Alcotest.test_case "annotation roundtrip" `Quick test_annotation_pp_roundtrip;
          Alcotest.test_case "mangle" `Quick test_mangle;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "tree program" `Quick test_tree_program;
          Alcotest.test_case "membership no context" `Quick test_membership_no_context;
          Alcotest.test_case "membership context" `Quick test_membership_context;
          Alcotest.test_case "context rules" `Quick test_membership_context_rules;
          Alcotest.test_case "language generation" `Quick test_language_generation;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "structural annotation" `Quick test_structural_annotation;
          Alcotest.test_case "hypothesis extension" `Quick test_hypothesis_extension;
          Alcotest.test_case "ranked generation" `Quick test_ranked_generation;
          Alcotest.test_case "ranked respects constraints" `Quick test_ranked_respects_constraints;
          Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
          Alcotest.test_case "render hypothesis" `Quick test_render_includes_hypothesis;
          Alcotest.test_case "gpm clean" `Quick test_gpm_clean;
          Alcotest.test_case "ambiguous membership" `Quick test_ambiguous_membership;
          Alcotest.test_case "context at depth" `Quick test_context_copies_at_depth;
          Alcotest.test_case "shared annotation" `Quick test_shared_annotation_exposed;
        ] );
      ("properties", qcheck_cases);
    ]
