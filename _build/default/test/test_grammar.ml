(* Tests for the CFG substrate: analyses, Earley parsing, generation. *)

open Grammar

let t = Symbol.terminal
let nt = Symbol.nonterminal

(* S -> a S b | empty  (the classic a^n b^n grammar) *)
let anbn =
  Cfg.make ~start:"s" [ ("s", [ t "a"; nt "s"; t "b" ]); ("s", []) ]

(* expr -> expr + expr | n   (ambiguous) *)
let ambiguous =
  Cfg.make ~start:"e"
    [ ("e", [ nt "e"; t "+"; nt "e" ]); ("e", [ t "n" ]) ]

let policy_grammar =
  Cfg.make ~start:"policy"
    [
      ("policy", [ nt "effect"; nt "subject" ]);
      ("effect", [ t "permit" ]);
      ("effect", [ t "deny" ]);
      ("subject", [ t "admin" ]);
      ("subject", [ t "user" ]);
    ]

let test_cfg_make () =
  Alcotest.(check int) "5 productions" 5 (List.length (Cfg.productions policy_grammar));
  Alcotest.(check (list string)) "nonterminals" [ "effect"; "policy"; "subject" ]
    (Cfg.nonterminals policy_grammar);
  Alcotest.(check (list string)) "terminals" [ "admin"; "deny"; "permit"; "user" ]
    (Cfg.terminals policy_grammar)

let test_cfg_ill_formed () =
  Alcotest.(check bool) "missing nonterminal rejected" true
    (try
       ignore (Cfg.make ~start:"s" [ ("s", [ nt "ghost" ]) ]);
       false
     with Cfg.Ill_formed _ -> true)

let test_nullable () =
  Alcotest.(check (list string)) "s nullable" [ "s" ] (Cfg.nullable anbn);
  Alcotest.(check (list string)) "none nullable" [] (Cfg.nullable policy_grammar)

let test_reachable_productive () =
  let g =
    Cfg.make ~start:"s"
      [ ("s", [ t "x" ]); ("dead", [ t "y" ]); ("loop", [ nt "loop" ]) ]
  in
  Alcotest.(check (list string)) "reachable" [ "s" ] (Cfg.reachable g);
  Alcotest.(check bool) "loop unproductive" false
    (List.mem "loop" (Cfg.productive g));
  Alcotest.(check bool) "well-formed overall" true (Cfg.is_well_formed g)

let test_earley_recognize () =
  Alcotest.(check bool) "aabb" true (Earley.recognize anbn [ "a"; "a"; "b"; "b" ]);
  Alcotest.(check bool) "empty" true (Earley.recognize anbn []);
  Alcotest.(check bool) "aab rejected" false (Earley.recognize anbn [ "a"; "a"; "b" ]);
  Alcotest.(check bool) "ab" true (Earley.recognize_sentence anbn "a b")

let test_earley_policy () =
  Alcotest.(check bool) "permit admin" true
    (Earley.recognize_sentence policy_grammar "permit admin");
  Alcotest.(check bool) "permit permit rejected" false
    (Earley.recognize_sentence policy_grammar "permit permit")

let test_parses_unambiguous () =
  let trees = Earley.parses_sentence policy_grammar "deny user" in
  Alcotest.(check int) "one tree" 1 (List.length trees);
  let tree = List.hd trees in
  Alcotest.(check string) "yield" "deny user" (Parse_tree.to_sentence tree);
  Alcotest.(check bool) "valid derivation" true
    (Parse_tree.is_valid policy_grammar tree)

let test_parses_ambiguous () =
  let trees = Earley.parses ambiguous [ "n"; "+"; "n"; "+"; "n" ] in
  Alcotest.(check int) "two trees (left/right assoc)" 2 (List.length trees)

let test_parses_left_recursive () =
  let g = Cfg.make ~start:"l" [ ("l", [ nt "l"; t "x" ]); ("l", [ t "x" ]) ] in
  let trees = Earley.parses g [ "x"; "x"; "x" ] in
  Alcotest.(check int) "one tree" 1 (List.length trees);
  Alcotest.(check bool) "recognized" true (Earley.recognize g [ "x"; "x"; "x" ])

let test_parses_unit_cycle () =
  (* A -> A | "a": the cycle is cut, one finite tree remains *)
  let g = Cfg.make ~start:"a" [ ("a", [ nt "a" ]); ("a", [ t "a" ]) ] in
  let trees = Earley.parses g [ "a" ] in
  Alcotest.(check bool) "at least one tree" true (List.length trees >= 1)

let test_traces () =
  let trees = Earley.parses_sentence policy_grammar "permit admin" in
  let tree = List.hd trees in
  let traces =
    List.map
      (fun (tr, p, _) -> (Parse_tree.trace_to_string tr, p.Production.lhs))
      (Parse_tree.nodes_with_traces tree)
  in
  Alcotest.(check (list (pair string string)))
    "root [], children [1] [2]"
    [ ("[]", "policy"); ("[1]", "effect"); ("[2]", "subject") ]
    traces

let test_tree_depth_size () =
  let tree = List.hd (Earley.parses_sentence policy_grammar "permit admin") in
  Alcotest.(check int) "depth" 3 (Parse_tree.depth tree);
  Alcotest.(check int) "size" 5 (Parse_tree.size tree)

let test_generator () =
  let ss = Generator.sentences ~max_depth:4 policy_grammar in
  Alcotest.(check int) "4 sentences" 4 (List.length ss);
  Alcotest.(check bool) "contains deny admin" true (List.mem "deny admin" ss)

let test_generator_depth_bound () =
  let ss = Generator.sentences ~max_depth:3 anbn in
  (* depth 3 allows at most one level of nesting: "", "a b" *)
  Alcotest.(check bool) "empty string present" true (List.mem "" ss);
  Alcotest.(check bool) "a b present" true (List.mem "a b" ss);
  Alcotest.(check bool) "bounded" true (List.length ss <= 3)

let test_generator_limit () =
  let ss = Generator.sentences ~max_depth:20 ~limit:5 anbn in
  Alcotest.(check bool) "limit respected" true (List.length ss <= 5)

(* ---- Transform ---- *)

let test_transform_removes_useless () =
  let g =
    Cfg.make ~start:"s"
      [ ("s", [ t "x" ]); ("dead", [ t "y" ]); ("loop", [ nt "loop" ]);
        ("s", [ nt "loop" ]) ]
  in
  let cleaned, mapping = Transform.remove_useless g in
  Alcotest.(check int) "only s -> x survives" 1
    (List.length (Cfg.productions cleaned));
  Alcotest.(check (list (pair int int))) "mapping" [ (0, 0) ] mapping;
  (* language preserved *)
  Alcotest.(check bool) "x recognized" true (Earley.recognize cleaned [ "x" ])

let test_transform_report () =
  let g =
    Cfg.make ~start:"s"
      [ ("s", [ t "x" ]); ("dead", [ t "y" ]); ("loop", [ nt "loop" ]) ]
  in
  let r = Transform.analyze g in
  Alcotest.(check int) "three productions" 3 r.Transform.total;
  Alcotest.(check (list string)) "dead unreachable" [ "dead"; "loop" ]
    (List.sort compare r.Transform.unreachable);
  Alcotest.(check (list string)) "loop unproductive" [ "loop" ]
    r.Transform.unproductive;
  Alcotest.(check int) "two removed" 2 r.Transform.removed_productions

let test_transform_keeps_clean_grammar () =
  let cleaned, mapping = Transform.remove_useless policy_grammar in
  Alcotest.(check int) "nothing removed" 5
    (List.length (Cfg.productions cleaned));
  Alcotest.(check bool) "identity mapping" true
    (List.for_all (fun (a, b) -> a = b) mapping)

(* property: every generated sentence is recognized by Earley *)
let prop_generated_recognized =
  QCheck2.Test.make ~name:"generated sentences are recognized" ~count:30
    QCheck2.Gen.(int_range 2 6)
    (fun depth ->
      let ss = Generator.sentences ~max_depth:depth ~limit:50 policy_grammar in
      List.for_all (fun s -> Earley.recognize_sentence policy_grammar s) ss)

let prop_generated_anbn =
  QCheck2.Test.make ~name:"anbn generator yields balanced strings" ~count:20
    QCheck2.Gen.(int_range 2 8)
    (fun depth ->
      let ss = Generator.sentences ~max_depth:depth ~limit:100 anbn in
      List.for_all
        (fun s ->
          let toks = if s = "" then [] else String.split_on_char ' ' s in
          let a = List.length (List.filter (( = ) "a") toks) in
          let b = List.length (List.filter (( = ) "b") toks) in
          a = b)
        ss)

let prop_parse_roundtrip =
  QCheck2.Test.make ~name:"parse of a generated sentence yields its string"
    ~count:30
    QCheck2.Gen.(int_range 2 5)
    (fun depth ->
      let ss = Generator.sentences ~max_depth:depth ~limit:20 policy_grammar in
      List.for_all
        (fun s ->
          match Earley.parses_sentence policy_grammar s with
          | [] -> false
          | tree :: _ -> String.equal (Parse_tree.to_sentence tree) s)
        ss)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_generated_recognized; prop_generated_anbn; prop_parse_roundtrip ]

let () =
  Alcotest.run "grammar"
    [
      ( "cfg",
        [
          Alcotest.test_case "make" `Quick test_cfg_make;
          Alcotest.test_case "ill-formed" `Quick test_cfg_ill_formed;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "reachable/productive" `Quick test_reachable_productive;
        ] );
      ( "earley",
        [
          Alcotest.test_case "recognize anbn" `Quick test_earley_recognize;
          Alcotest.test_case "recognize policy" `Quick test_earley_policy;
          Alcotest.test_case "parses unambiguous" `Quick test_parses_unambiguous;
          Alcotest.test_case "parses ambiguous" `Quick test_parses_ambiguous;
          Alcotest.test_case "left recursion" `Quick test_parses_left_recursive;
          Alcotest.test_case "unit cycle" `Quick test_parses_unit_cycle;
        ] );
      ( "parse_tree",
        [
          Alcotest.test_case "traces" `Quick test_traces;
          Alcotest.test_case "depth/size" `Quick test_tree_depth_size;
        ] );
      ( "transform",
        [
          Alcotest.test_case "removes useless" `Quick test_transform_removes_useless;
          Alcotest.test_case "report" `Quick test_transform_report;
          Alcotest.test_case "clean grammar untouched" `Quick test_transform_keeps_clean_grammar;
        ] );
      ( "generator",
        [
          Alcotest.test_case "policy sentences" `Quick test_generator;
          Alcotest.test_case "depth bound" `Quick test_generator_depth_bound;
          Alcotest.test_case "limit" `Quick test_generator_limit;
        ] );
      ("properties", qcheck_cases);
    ]
