(* Tests for explainability: why, why-not, counterfactuals (Section V-B). *)

let gpm () =
  Asg.Asg_parser.parse
    {| start -> decision { :- result(accept)@1, weather(snow).
                           :- result(accept)@1, vloa(V), V < 3. }
       decision -> "accept" { result(accept). } | "reject" { result(reject). } |}

let ctx s = Asp.Parser.parse_program s

let test_why () =
  let g = gpm () in
  match Explain.Why.why g ~context:(ctx "weather(clear). vloa(4).") "accept" with
  | Some model ->
    Alcotest.(check bool) "witness nonempty" true
      (not (Asp.Atom.Set.is_empty model))
  | None -> Alcotest.fail "expected acceptance witness"

let test_why_not_blocked () =
  let g = gpm () in
  match Explain.Why.why_not g ~context:(ctx "weather(snow). vloa(4).") "accept" with
  | Explain.Why.Blocked (b :: _ as bs) ->
    Alcotest.(check bool) "snow constraint blamed" true
      (List.exists
         (fun (bl : Explain.Why.blocker) ->
           let s = Fmt.str "%a" Asp.Rule.pp bl.Explain.Why.constraint_rule in
           let needle = "weather(snow)" in
           let rec go i =
             i + String.length needle <= String.length s
             && (String.sub s i (String.length needle) = needle || go (i + 1))
           in
           go 0)
         bs);
    Alcotest.(check bool) "ground instance fired" true (b.Explain.Why.fired_body <> [])
  | _ -> Alcotest.fail "expected Blocked"

let test_why_not_multiple_blockers () =
  let g = gpm () in
  match Explain.Why.why_not g ~context:(ctx "weather(snow). vloa(1).") "accept" with
  | Explain.Why.Blocked bs ->
    Alcotest.(check bool) "two distinct constraints fire" true
      (List.length bs >= 2)
  | _ -> Alcotest.fail "expected Blocked"

let test_why_not_not_in_cfg () =
  let g = gpm () in
  Alcotest.(check bool) "syntactic rejection" true
    (Explain.Why.why_not g ~context:(ctx "") "fly" = Explain.Why.Not_in_cfg)

let test_counterfactual_replace () =
  let g = gpm () in
  let facts =
    [ Asp.Parser.parse_atom_string "weather(snow)";
      Asp.Parser.parse_atom_string "vloa(4)" ]
  in
  let alternatives (a : Asp.Atom.t) =
    if a.Asp.Atom.pred = "weather" then
      List.map
        (fun w -> Asp.Atom.make "weather" [ Asp.Term.const w ])
        [ "clear"; "rain" ]
      |> List.filter (fun alt -> not (Asp.Atom.equal alt a))
    else []
  in
  match Explain.Counterfactual.find ~alternatives g ~facts "accept" with
  | Some [ Explain.Counterfactual.Replace (old_fact, _) ] ->
    Alcotest.(check string) "weather is the pivot" "weather(snow)"
      (Asp.Atom.to_string old_fact)
  | Some other ->
    Alcotest.fail
      (Printf.sprintf "expected a single replacement, got %d changes"
         (List.length other))
  | None -> Alcotest.fail "expected a counterfactual"

let test_counterfactual_two_changes () =
  let g = gpm () in
  let facts =
    [ Asp.Parser.parse_atom_string "weather(snow)";
      Asp.Parser.parse_atom_string "vloa(1)" ]
  in
  let alternatives (a : Asp.Atom.t) =
    match a.Asp.Atom.pred with
    | "weather" -> [ Asp.Parser.parse_atom_string "weather(clear)" ]
    | "vloa" -> [ Asp.Parser.parse_atom_string "vloa(5)" ]
    | _ -> []
  in
  match Explain.Counterfactual.find ~alternatives g ~facts "accept" with
  | Some changes -> Alcotest.(check int) "both facts must change" 2 (List.length changes)
  | None -> Alcotest.fail "expected a counterfactual"

let test_counterfactual_already_valid () =
  let g = gpm () in
  let facts =
    [ Asp.Parser.parse_atom_string "weather(clear)";
      Asp.Parser.parse_atom_string "vloa(4)" ]
  in
  Alcotest.(check bool) "empty change set" true
    (Explain.Counterfactual.find ~alternatives:(fun _ -> []) g ~facts "accept"
    = Some [])

let test_counterfactual_none () =
  let g =
    Asg.Asg_parser.parse
      {| start -> decision { :- result(accept)@1. }
         decision -> "accept" { result(accept). } | "reject" |}
  in
  Alcotest.(check bool) "unfixable" true
    (Explain.Counterfactual.find ~alternatives:(fun _ -> []) g
       ~facts:[ Asp.Parser.parse_atom_string "weather(snow)" ]
       "accept"
    = None)

let test_counterfactual_sentence () =
  let c =
    Explain.Counterfactual.Replace
      ( Asp.Parser.parse_atom_string "weather(snow)",
        Asp.Parser.parse_atom_string "weather(clear)" )
  in
  Alcotest.(check string) "readable"
    "if weather(snow) had been weather(clear), \"accept\" would have been valid"
    (Explain.Counterfactual.to_sentence "accept" [ c ])

let test_why_derivation () =
  let g = gpm () in
  let target =
    Asp.Atom.make
      (Asg.Annotation.mangle_pred "result" [ 1 ])
      [ Asp.Term.const "accept" ]
  in
  match
    Explain.Why.why_derivation g
      ~context:(ctx "weather(clear). vloa(4).")
      "accept" target
  with
  | Some j ->
    Alcotest.(check bool) "derivation found" true (Asp.Justification.depth j >= 1)
  | None -> Alcotest.fail "expected a derivation for the decision atom"

(* ---- Repair (sentence-level counterfactuals) ---- *)

let convoy_gt () =
  Ilp.Task.apply_hypothesis (Workloads.Convoy.gpm ())
    (Ilp.Hypothesis_space.of_rules
       [ (":- trucks(T), T < 1.", [ 0 ]);
         (":- trucks(T), escorts(E), threat(L), L >= 2, E < T.", [ 0 ]);
         (":- drones(D), threat(L), L >= 3, D < 1.", [ 0 ]) ])

let test_repair_insert () =
  (* a lone truck at threat 2 needs one more escort *)
  let g = convoy_gt () in
  match
    Explain.Repair.repair g ~context:(Workloads.Convoy.context ~threat:2) "truck"
  with
  | Some r ->
    Alcotest.(check int) "one edit" 1 r.Explain.Repair.edits;
    Alcotest.(check bool) "adds an escort" true
      (List.mem "escort" (String.split_on_char ' ' r.Explain.Repair.repaired))
  | None -> Alcotest.fail "expected a repair"

let test_repair_already_valid () =
  let g = convoy_gt () in
  match
    Explain.Repair.repair g ~context:(Workloads.Convoy.context ~threat:0)
      "truck"
  with
  | Some { Explain.Repair.edits = 0; _ } -> ()
  | _ -> Alcotest.fail "valid sentences need no edits"

let test_repair_two_edits () =
  (* threat 3: a lone truck needs both an escort and a drone *)
  let g = convoy_gt () in
  match
    Explain.Repair.repair g ~context:(Workloads.Convoy.context ~threat:3)
      "truck"
  with
  | Some r ->
    Alcotest.(check int) "two edits" 2 r.Explain.Repair.edits;
    let toks = String.split_on_char ' ' r.Explain.Repair.repaired in
    Alcotest.(check bool) "escort and drone added" true
      (List.mem "escort" toks && List.mem "drone" toks)
  | None -> Alcotest.fail "expected a two-edit repair"

let test_repair_out_of_reach () =
  let g = convoy_gt () in
  (* the empty convoy at threat 3 needs 3 insertions; cap at 2 *)
  Alcotest.(check bool) "no repair within 2 edits" true
    (Explain.Repair.repair ~max_edits:2 g
       ~context:(Workloads.Convoy.context ~threat:3) ""
    = None)

let test_apply_edit () =
  Alcotest.(check (list string)) "insert" [ "a"; "x"; "b" ]
    (Explain.Repair.apply_edit [ "a"; "b" ] (Explain.Repair.Insert (1, "x")));
  Alcotest.(check (list string)) "delete" [ "b" ]
    (Explain.Repair.apply_edit [ "a"; "b" ] (Explain.Repair.Delete 0));
  Alcotest.(check (list string)) "replace" [ "a"; "y" ]
    (Explain.Repair.apply_edit [ "a"; "b" ] (Explain.Repair.Replace (1, "y")))

(* property: applying a found counterfactual indeed makes the policy valid *)
let prop_counterfactual_sound =
  QCheck2.Test.make ~name:"counterfactuals actually flip the decision" ~count:20
    QCheck2.Gen.(pair (oneofl [ "snow"; "fog"; "rain"; "clear" ]) (int_range 1 5))
    (fun (weather, vloa) ->
      let g = gpm () in
      let facts =
        [
          Asp.Parser.parse_atom_string (Printf.sprintf "weather(%s)" weather);
          Asp.Parser.parse_atom_string (Printf.sprintf "vloa(%d)" vloa);
        ]
      in
      let alternatives (a : Asp.Atom.t) =
        match a.Asp.Atom.pred with
        | "weather" ->
          List.filter_map
            (fun w ->
              let alt = Asp.Atom.make "weather" [ Asp.Term.const w ] in
              if Asp.Atom.equal alt a then None else Some alt)
            [ "snow"; "fog"; "rain"; "clear" ]
        | "vloa" ->
          List.filter_map
            (fun v ->
              let alt = Asp.Atom.make "vloa" [ Asp.Term.int v ] in
              if Asp.Atom.equal alt a then None else Some alt)
            [ 1; 3; 5 ]
        | _ -> []
      in
      match Explain.Counterfactual.find ~alternatives g ~facts "accept" with
      | None -> true (* nothing claimed *)
      | Some changes ->
        let facts' = Explain.Counterfactual.apply_changes facts changes in
        let context = Asp.Program.with_facts Asp.Program.empty facts' in
        Asg.Membership.accepts_in_context g ~context "accept")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_counterfactual_sound ]

let () =
  Alcotest.run "explain"
    [
      ( "why",
        [
          Alcotest.test_case "why" `Quick test_why;
          Alcotest.test_case "why-not blocked" `Quick test_why_not_blocked;
          Alcotest.test_case "multiple blockers" `Quick test_why_not_multiple_blockers;
          Alcotest.test_case "not in cfg" `Quick test_why_not_not_in_cfg;
          Alcotest.test_case "derivation" `Quick test_why_derivation;
        ] );
      ( "counterfactual",
        [
          Alcotest.test_case "replace" `Quick test_counterfactual_replace;
          Alcotest.test_case "two changes" `Quick test_counterfactual_two_changes;
          Alcotest.test_case "already valid" `Quick test_counterfactual_already_valid;
          Alcotest.test_case "unfixable" `Quick test_counterfactual_none;
          Alcotest.test_case "sentence" `Quick test_counterfactual_sentence;
        ] );
      ( "repair",
        [
          Alcotest.test_case "insert" `Quick test_repair_insert;
          Alcotest.test_case "already valid" `Quick test_repair_already_valid;
          Alcotest.test_case "two edits" `Slow test_repair_two_edits;
          Alcotest.test_case "out of reach" `Quick test_repair_out_of_reach;
          Alcotest.test_case "apply edit" `Quick test_apply_edit;
        ] );
      ("properties", qcheck_cases);
    ]
