(* Tests for the scenario generators and their learning pipelines. *)

(* ---- CAV ---- *)

let test_cav_ground_truth () =
  let s =
    { Workloads.Cav.task = "overtake"; vehicle_loa = 5; region_loa = 3;
      weather = "snow"; time = "day" }
  in
  Alcotest.(check bool) "overtake in snow rejected" false
    (Workloads.Cav.ground_truth s);
  Alcotest.(check bool) "overtake in clear with loa5 accepted" true
    (Workloads.Cav.ground_truth { s with weather = "clear" });
  Alcotest.(check bool) "loa too low rejected" false
    (Workloads.Cav.ground_truth
       { s with weather = "clear"; vehicle_loa = 3 });
  Alcotest.(check bool) "night fog rejected" false
    (Workloads.Cav.ground_truth
       { s with weather = "fog"; time = "night"; task = "straight" })

let test_cav_sampling_deterministic () =
  let a = Workloads.Cav.sample ~seed:3 10 in
  let b = Workloads.Cav.sample ~seed:3 10 in
  Alcotest.(check bool) "same seed same sample" true (a = b);
  Alcotest.(check int) "ten scenarios" 10 (List.length a)

let test_cav_learns_ground_truth () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Cav.modes ()) in
  let train = Workloads.Cav.sample ~seed:42 60 in
  let examples = Workloads.Cav.examples_of train in
  let task = Ilp.Task.make ~gpm:(Workloads.Cav.gpm ()) ~space ~examples in
  match Ilp.Asg_learning.learn_gpm task with
  | None -> Alcotest.fail "CAV learning failed"
  | Some l ->
    let test = Workloads.Cav.sample ~seed:7 150 in
    Alcotest.(check (float 0.01)) "perfect generalization" 1.0
      (Workloads.Cav.gpm_accuracy l.Ilp.Asg_learning.gpm test)

let test_cav_dataset () =
  let d = Workloads.Cav.to_dataset (Workloads.Cav.sample ~seed:5 30) in
  Alcotest.(check int) "30 instances" 30 (Ml.Dataset.size d);
  Alcotest.(check int) "5 features" 5 (Array.length d.Ml.Dataset.feature_names)

let test_cav_all_scenarios () =
  Alcotest.(check int) "full space size" (4 * 5 * 5 * 4 * 2)
    (List.length (Workloads.Cav.all_scenarios ()))

(* ---- XACML logs ---- *)

let test_xacml_ground_truth () =
  let d r a res =
    Workloads.Xacml_logs.ground_truth_decision
      (Workloads.Xacml_logs.request ~role:r ~resource:res ~action:a)
  in
  Alcotest.(check string) "admin delete ok" "Permit"
    (Policy.Decision.to_string (d "admin" "delete" "database"));
  Alcotest.(check string) "manager delete denied" "Deny"
    (Policy.Decision.to_string (d "manager" "delete" "database"));
  Alcotest.(check string) "intern write denied" "Deny"
    (Policy.Decision.to_string (d "intern" "write" "report"));
  Alcotest.(check string) "developer config denied" "Deny"
    (Policy.Decision.to_string (d "developer" "read" "config"))

let test_xacml_policy_matches_oracle () =
  (* the explicit Rule_policy and the procedural oracle must agree *)
  let p = Workloads.Xacml_logs.ground_truth_policy () in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Policy.Request.to_string r)
        (Policy.Decision.to_string (Workloads.Xacml_logs.ground_truth_decision r))
        (Policy.Decision.to_string (Policy.Rule_policy.evaluate p r)))
    (Workloads.Xacml_logs.request_space ())

let test_xacml_noise_injection () =
  let clean = Workloads.Xacml_logs.log ~seed:2 ~n:50 () in
  let noisy =
    Workloads.Xacml_logs.noisy_log ~seed:2 ~n:50 ~flip:0.0 ~irrelevant:1.0 ()
  in
  Alcotest.(check int) "same length" (List.length clean) (List.length noisy);
  Alcotest.(check bool) "all irrelevant" true
    (List.for_all
       (fun (_, d) -> d = Policy.Decision.Not_applicable)
       noisy)

let test_xacml_flat_learning_improves_with_data () =
  let learn n =
    let log = Workloads.Xacml_logs.log ~seed:1 ~n () in
    let examples = Policy.Xacml.examples_of_log log in
    let space =
      Ilp.Hypothesis_space.generate (Workloads.Xacml_logs.modes ())
    in
    match
      Ilp.Asg_learning.learn ~gpm:(Workloads.Xacml_logs.gpm ()) ~space
        ~examples ()
    with
    | Some l ->
      Workloads.Xacml_logs.gpm_accuracy l.Ilp.Asg_learning.gpm
        (Workloads.Xacml_logs.request_space ())
    | None -> 0.0
  in
  let small = learn 10 and big = learn 60 in
  Alcotest.(check bool)
    (Printf.sprintf "more log entries help (%.2f -> %.2f)" small big)
    true (big >= small)

let test_xacml_hierarchy_beats_flat_when_sparse () =
  let log = Workloads.Xacml_logs.log ~seed:1 ~n:10 () in
  let examples = Policy.Xacml.examples_of_log log in
  let eval gpm modes =
    let space = Ilp.Hypothesis_space.generate modes in
    match Ilp.Asg_learning.learn ~gpm ~space ~examples () with
    | Some l ->
      Workloads.Xacml_logs.gpm_accuracy l.Ilp.Asg_learning.gpm
        (Workloads.Xacml_logs.request_space ())
    | None -> 0.0
  in
  let flat = eval (Workloads.Xacml_logs.gpm ()) (Workloads.Xacml_logs.modes ()) in
  let hier =
    eval (Workloads.Xacml_logs.gpm_with_hierarchy ())
      (Workloads.Xacml_logs.hierarchy_modes ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "hierarchy generalizes better (%.2f vs %.2f)" hier flat)
    true (hier > flat)

(* ---- Resupply ---- *)

let test_resupply_ground_truth () =
  let m =
    { Workloads.Resupply.threat_north = 0; threat_south = 3; threat_river = 1;
      weather = "storm"; time = "day"; risk_appetite = "low" }
  in
  Alcotest.(check bool) "calm north valid" true
    (Workloads.Resupply.route_valid m "north");
  Alcotest.(check bool) "hot south invalid at low appetite" false
    (Workloads.Resupply.route_valid m "south");
  Alcotest.(check bool) "river in storm invalid" false
    (Workloads.Resupply.route_valid m "river");
  let high = { m with risk_appetite = "high" } in
  Alcotest.(check bool) "south ok at high appetite" true
    (Workloads.Resupply.route_valid high "south")

let test_resupply_learning () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
  let missions = Workloads.Resupply.campaign ~seed:21 ~n:25 () in
  let examples =
    List.concat_map Workloads.Resupply.examples_of_mission missions
  in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space ~examples ()
  with
  | None -> Alcotest.fail "resupply learning failed"
  | Some l ->
    let test =
      Workloads.Resupply.campaign ~seed:99 ~n:30 ~shift_at:15 ()
    in
    let acc = Workloads.Resupply.gpm_accuracy l.Ilp.Asg_learning.gpm test in
    Alcotest.(check bool) (Printf.sprintf "accuracy %.2f >= 0.9" acc) true
      (acc >= 0.9)

let test_resupply_campaign_shift () =
  let ms = Workloads.Resupply.campaign ~seed:4 ~n:10 ~shift_at:5 () in
  Alcotest.(check int) "10 missions" 10 (List.length ms);
  Alcotest.(check bool) "appetite shifts" true
    ((List.nth ms 4).Workloads.Resupply.risk_appetite = "low"
    && (List.nth ms 5).Workloads.Resupply.risk_appetite = "high")

let test_resupply_utility_selection () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Resupply.modes ()) in
  let missions = Workloads.Resupply.campaign ~seed:21 ~n:20 () in
  let examples =
    List.concat_map Workloads.Resupply.examples_of_mission missions
  in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Resupply.gpm ()) ~space ~examples ()
  with
  | None -> Alcotest.fail "learning failed"
  | Some l ->
    let util_gpm =
      Ilp.Task.apply_hypothesis
        (Workloads.Resupply.utility_gpm ())
        l.Ilp.Asg_learning.outcome.Ilp.Learner.hypothesis
    in
    let test = Workloads.Resupply.campaign ~seed:99 ~n:25 ~shift_at:12 () in
    let acc = Workloads.Resupply.utility_accuracy util_gpm test in
    Alcotest.(check bool) (Printf.sprintf "optimal-route rate %.2f" acc) true
      (acc >= 0.95)

(* ---- Convoy composition ---- *)

let test_convoy_ground_truth () =
  let c trucks escorts drones = { Workloads.Convoy.trucks; escorts; drones } in
  Alcotest.(check bool) "no cargo invalid" false
    (Workloads.Convoy.valid ~threat:0 (c 0 2 1));
  Alcotest.(check bool) "calm lone truck ok" true
    (Workloads.Convoy.valid ~threat:1 (c 1 0 0));
  Alcotest.(check bool) "threat 2 needs escorts" false
    (Workloads.Convoy.valid ~threat:2 (c 2 1 0));
  Alcotest.(check bool) "threat 2 with escorts ok" true
    (Workloads.Convoy.valid ~threat:2 (c 2 2 0));
  Alcotest.(check bool) "threat 3 needs a drone" false
    (Workloads.Convoy.valid ~threat:3 (c 1 1 0))

let test_convoy_counting_annotations () =
  (* the base grammar's structural counters accept every composition *)
  let g = Workloads.Convoy.gpm () in
  Alcotest.(check bool) "any composition parses" true
    (Asg.Membership.accepts g "truck escort drone truck");
  Alcotest.(check bool) "empty convoy parses" true (Asg.Membership.accepts g "")

let test_convoy_sentence_roundtrip () =
  let c = { Workloads.Convoy.trucks = 2; escorts = 1; drones = 1 } in
  Alcotest.(check string) "sentence" "truck truck escort drone"
    (Workloads.Convoy.to_sentence c)

let test_convoy_learning () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Convoy.modes ()) in
  let train = Workloads.Convoy.sample ~seed:11 80 in
  let examples = Workloads.Convoy.examples_of train in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Convoy.gpm ()) ~space ~examples ()
  with
  | None -> Alcotest.fail "convoy learning failed"
  | Some l ->
    let acc =
      Workloads.Convoy.gpm_accuracy l.Ilp.Asg_learning.gpm
        (Workloads.Convoy.all_situations ())
    in
    Alcotest.(check (float 0.01))
      "exact recovery on the full space" 1.0 acc

let test_convoy_generation () =
  (* with the ground-truth constraints installed, generated convoys at
     threat 3 all satisfy the oracle *)
  let h =
    Ilp.Hypothesis_space.of_rules
      [ (":- trucks(T), T < 1.", [ 0 ]);
        (":- trucks(T), escorts(E), threat(L), L >= 2, E < T.", [ 0 ]);
        (":- drones(D), threat(L), L >= 3, D < 1.", [ 0 ]) ]
  in
  let g = Ilp.Task.apply_hypothesis (Workloads.Convoy.gpm ()) h in
  let convoys = Workloads.Convoy.deployable ~max_depth:6 g ~threat:3 in
  Alcotest.(check bool) "some convoys deployable" true (convoys <> []);
  List.iter
    (fun sentence ->
      let count kind =
        List.length
          (List.filter (( = ) kind) (String.split_on_char ' ' sentence))
      in
      let c =
        { Workloads.Convoy.trucks = count "truck"; escorts = count "escort";
          drones = count "drone" }
      in
      Alcotest.(check bool) (sentence ^ " is valid") true
        (Workloads.Convoy.valid ~threat:3 c))
    convoys

(* ---- Data sharing ---- *)

let test_data_sharing_ground_truth () =
  let i = { Workloads.Data_sharing.trust = 5; quality = 4; value = 2; kind = "image" } in
  Alcotest.(check string) "trusted high quality raw" "share_raw"
    (Workloads.Data_sharing.ground_truth_choice i);
  Alcotest.(check string) "low quality redacted" "share_redacted"
    (Workloads.Data_sharing.ground_truth_choice { i with quality = 1 });
  Alcotest.(check string) "untrusted refused" "refuse"
    (Workloads.Data_sharing.ground_truth_choice { i with trust = 1 })

let test_data_sharing_learning () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Data_sharing.modes ()) in
  let items = Workloads.Data_sharing.sample ~seed:8 40 in
  let examples = Workloads.Data_sharing.examples_of items in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Data_sharing.gpm ()) ~space
      ~examples ()
  with
  | None -> Alcotest.fail "data-sharing learning failed"
  | Some l ->
    let test = Workloads.Data_sharing.sample ~seed:9 100 in
    let acc = Workloads.Data_sharing.gpm_accuracy l.Ilp.Asg_learning.gpm test in
    Alcotest.(check bool) (Printf.sprintf "accuracy %.2f >= 0.95" acc) true
      (acc >= 0.95)

(* ---- Federated ---- *)

let test_federated_ground_truth () =
  let o = { Workloads.Federated.trust = 5; reported_accuracy = 90; domain = "same" } in
  Alcotest.(check string) "adopt" "adopt" (Workloads.Federated.ground_truth_choice o);
  Alcotest.(check string) "ensemble when near" "ensemble"
    (Workloads.Federated.ground_truth_choice { o with domain = "near" });
  Alcotest.(check string) "discard when far" "discard"
    (Workloads.Federated.ground_truth_choice { o with domain = "far" })

let test_federated_learning () =
  let space = Ilp.Hypothesis_space.generate (Workloads.Federated.modes ()) in
  let offers = Workloads.Federated.sample ~seed:13 40 in
  let examples = Workloads.Federated.examples_of offers in
  match
    Ilp.Asg_learning.learn ~gpm:(Workloads.Federated.gpm ()) ~space ~examples ()
  with
  | None -> Alcotest.fail "federated learning failed"
  | Some l ->
    let test = Workloads.Federated.sample ~seed:14 100 in
    let acc = Workloads.Federated.gpm_accuracy l.Ilp.Asg_learning.gpm test in
    Alcotest.(check bool) (Printf.sprintf "accuracy %.2f >= 0.9" acc) true
      (acc >= 0.9)

(* property: learned CAV models never accept what the LOA table forbids *)
let prop_cav_examples_consistent =
  QCheck2.Test.make ~name:"CAV examples match the oracle" ~count:20
    QCheck2.Gen.(int_range 1 100)
    (fun seed ->
      let scenarios = Workloads.Cav.sample ~seed 10 in
      let examples = Workloads.Cav.examples_of scenarios in
      (* 2 examples per scenario: the accept label and the reject fallback *)
      List.length examples = 20)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_cav_examples_consistent ]

let () =
  Alcotest.run "workloads"
    [
      ( "cav",
        [
          Alcotest.test_case "ground truth" `Quick test_cav_ground_truth;
          Alcotest.test_case "deterministic sampling" `Quick test_cav_sampling_deterministic;
          Alcotest.test_case "learns ground truth" `Slow test_cav_learns_ground_truth;
          Alcotest.test_case "dataset" `Quick test_cav_dataset;
          Alcotest.test_case "scenario space" `Quick test_cav_all_scenarios;
        ] );
      ( "xacml",
        [
          Alcotest.test_case "ground truth" `Quick test_xacml_ground_truth;
          Alcotest.test_case "policy matches oracle" `Quick test_xacml_policy_matches_oracle;
          Alcotest.test_case "noise injection" `Quick test_xacml_noise_injection;
          Alcotest.test_case "more data helps" `Slow test_xacml_flat_learning_improves_with_data;
          Alcotest.test_case "hierarchy beats flat" `Slow test_xacml_hierarchy_beats_flat_when_sparse;
        ] );
      ( "resupply",
        [
          Alcotest.test_case "ground truth" `Quick test_resupply_ground_truth;
          Alcotest.test_case "learning" `Slow test_resupply_learning;
          Alcotest.test_case "campaign shift" `Quick test_resupply_campaign_shift;
          Alcotest.test_case "utility selection" `Slow test_resupply_utility_selection;
        ] );
      ( "convoy",
        [
          Alcotest.test_case "ground truth" `Quick test_convoy_ground_truth;
          Alcotest.test_case "counting annotations" `Quick test_convoy_counting_annotations;
          Alcotest.test_case "sentence roundtrip" `Quick test_convoy_sentence_roundtrip;
          Alcotest.test_case "learning" `Slow test_convoy_learning;
          Alcotest.test_case "generation" `Slow test_convoy_generation;
        ] );
      ( "data-sharing",
        [
          Alcotest.test_case "ground truth" `Quick test_data_sharing_ground_truth;
          Alcotest.test_case "learning" `Slow test_data_sharing_learning;
        ] );
      ( "federated",
        [
          Alcotest.test_case "ground truth" `Quick test_federated_ground_truth;
          Alcotest.test_case "learning" `Slow test_federated_learning;
        ] );
      ("properties", qcheck_cases);
    ]
