(** Parse trees with per-node traces (Section II-A of the paper): the root
    has trace [[]]; the i-th child of a node with trace [t] has trace
    [t @ [i]], 1-based. *)

type t = Leaf of string | Node of Production.t * t list

type trace = int list

(** Terminal tokens, left to right. *)
val yield : t -> string list

(** Tokens joined by single spaces. *)
val to_sentence : t -> string

val depth : t -> int
val size : t -> int
val root_production : t -> Production.t option

(** All internal nodes with traces, root first. *)
val nodes_with_traces : t -> (trace * Production.t * t list) list

val trace_to_string : trace -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Is the tree a valid derivation in the grammar? *)
val is_valid : Cfg.t -> t -> bool
