(** Grammar symbols: terminals carry the token they match. *)

type t = Terminal of string | Nonterminal of string

val terminal : string -> t
val nonterminal : string -> t
val is_terminal : t -> bool
val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
