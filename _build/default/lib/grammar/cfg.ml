(** Context-free grammars with the standard static analyses.

    Productions are stored in declaration order; their ids are assigned by
    [make] and are stable across the ASG and learning layers. *)

type t = {
  start : string;
  productions : Production.t list;
  by_lhs : (string, Production.t list) Hashtbl.t;
}

exception Ill_formed of string

module StrSet = Set.Make (String)

let productions g = g.productions
let start g = g.start
let productions_of g nt = Option.value ~default:[] (Hashtbl.find_opt g.by_lhs nt)
let production_by_id g id = List.find_opt (fun p -> p.Production.id = id) g.productions

let nonterminals g =
  let s =
    List.fold_left
      (fun acc (p : Production.t) ->
        List.fold_left
          (fun acc sym ->
            match sym with
            | Symbol.Nonterminal n -> StrSet.add n acc
            | Symbol.Terminal _ -> acc)
          (StrSet.add p.lhs acc) p.rhs)
      StrSet.empty g.productions
  in
  StrSet.elements s

let terminals g =
  let s =
    List.fold_left
      (fun acc (p : Production.t) ->
        List.fold_left
          (fun acc sym ->
            match sym with
            | Symbol.Terminal t -> StrSet.add t acc
            | Symbol.Nonterminal _ -> acc)
          acc p.rhs)
      StrSet.empty g.productions
  in
  StrSet.elements s

(** Build a grammar from (lhs, rhs) pairs; ids are assigned in order.
    Raises [Ill_formed] if the start symbol has no production or some
    nonterminal on a right-hand side has none. *)
let make ~start rules =
  let productions =
    List.mapi (fun id (lhs, rhs) -> Production.make ~id ~lhs ~rhs) rules
  in
  let by_lhs = Hashtbl.create 16 in
  List.iter
    (fun (p : Production.t) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_lhs p.lhs) in
      Hashtbl.replace by_lhs p.lhs (existing @ [ p ]))
    productions;
  let g = { start; productions; by_lhs } in
  if not (Hashtbl.mem by_lhs start) then
    raise (Ill_formed (Printf.sprintf "start symbol %s has no production" start));
  List.iter
    (fun nt ->
      if not (Hashtbl.mem by_lhs nt) then
        raise (Ill_formed (Printf.sprintf "nonterminal %s has no production" nt)))
    (nonterminals g);
  g

(** Nonterminals that can derive the empty string. *)
let nullable g =
  let set = ref StrSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        if
          (not (StrSet.mem p.lhs !set))
          && List.for_all
               (function
                 | Symbol.Terminal _ -> false
                 | Symbol.Nonterminal n -> StrSet.mem n !set)
               p.rhs
        then begin
          set := StrSet.add p.lhs !set;
          changed := true
        end)
      g.productions
  done;
  StrSet.elements !set

(** Nonterminals reachable from the start symbol. *)
let reachable g =
  let seen = ref (StrSet.singleton g.start) in
  let rec visit nt =
    List.iter
      (fun (p : Production.t) ->
        List.iter
          (function
            | Symbol.Nonterminal n when not (StrSet.mem n !seen) ->
              seen := StrSet.add n !seen;
              visit n
            | _ -> ())
          p.rhs)
      (productions_of g nt)
  in
  visit g.start;
  StrSet.elements !seen

(** Nonterminals that derive at least one terminal string. *)
let productive g =
  let set = ref StrSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p : Production.t) ->
        if
          (not (StrSet.mem p.lhs !set))
          && List.for_all
               (function
                 | Symbol.Terminal _ -> true
                 | Symbol.Nonterminal n -> StrSet.mem n !set)
               p.rhs
        then begin
          set := StrSet.add p.lhs !set;
          changed := true
        end)
      g.productions
  done;
  StrSet.elements !set

let is_well_formed g =
  let prod = productive g in
  let reach = reachable g in
  List.mem g.start prod
  && List.for_all (fun nt -> List.mem nt prod) reach

let pp ppf g =
  Fmt.pf ppf "start: %s@.%a" g.start
    Fmt.(list ~sep:(any "@.") Production.pp)
    g.productions

let to_string g = Fmt.str "%a" pp g
