(** Context-free grammars with the standard static analyses. Production
    ids are assigned in declaration order by {!make} and are stable. *)

type t

exception Ill_formed of string

(** Build a grammar from (lhs, rhs) pairs.
    @raise Ill_formed when the start symbol or a referenced nonterminal
    has no production. *)
val make : start:string -> (string * Symbol.t list) list -> t

val productions : t -> Production.t list
val start : t -> string
val productions_of : t -> string -> Production.t list
val production_by_id : t -> int -> Production.t option
val nonterminals : t -> string list
val terminals : t -> string list

(** Nonterminals deriving the empty string. *)
val nullable : t -> string list

(** Nonterminals reachable from the start symbol. *)
val reachable : t -> string list

(** Nonterminals deriving at least one terminal string. *)
val productive : t -> string list

(** Every reachable nonterminal (and the start symbol) is productive. *)
val is_well_formed : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
