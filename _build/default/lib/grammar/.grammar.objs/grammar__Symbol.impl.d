lib/grammar/symbol.ml: Fmt String
