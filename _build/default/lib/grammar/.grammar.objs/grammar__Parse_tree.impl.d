lib/grammar/parse_tree.ml: Cfg Fmt List Production String Symbol
