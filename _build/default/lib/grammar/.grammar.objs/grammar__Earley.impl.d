lib/grammar/earley.ml: Array Cfg Hashtbl List Parse_tree Production Set Stdlib String Symbol
