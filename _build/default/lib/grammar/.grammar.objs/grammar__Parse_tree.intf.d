lib/grammar/parse_tree.mli: Cfg Format Production
