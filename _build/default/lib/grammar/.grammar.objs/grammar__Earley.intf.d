lib/grammar/earley.mli: Cfg Parse_tree
