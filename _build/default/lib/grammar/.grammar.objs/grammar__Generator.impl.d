lib/grammar/generator.ml: Cfg Hashtbl List Parse_tree Production Seq Symbol
