lib/grammar/production.mli: Format Symbol
