lib/grammar/transform.ml: Cfg List Production Symbol
