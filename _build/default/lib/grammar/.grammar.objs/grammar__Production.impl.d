lib/grammar/production.ml: Fmt Int List Symbol
