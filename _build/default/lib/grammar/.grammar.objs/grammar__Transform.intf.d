lib/grammar/transform.mli: Cfg
