lib/grammar/symbol.mli: Format
