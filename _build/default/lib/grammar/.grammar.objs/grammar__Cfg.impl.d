lib/grammar/cfg.ml: Fmt Hashtbl List Option Printf Production Set String Symbol
