lib/grammar/generator.mli: Cfg Parse_tree Seq Symbol
