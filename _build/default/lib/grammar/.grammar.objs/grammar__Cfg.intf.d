lib/grammar/cfg.mli: Format Production Symbol
