(** Grammar hygiene: removing unreachable/unproductive productions while
    preserving the language. *)

(** The cleaned grammar plus the old-id → new-id production mapping
    (dropped productions are absent). *)
val remove_useless : Cfg.t -> Cfg.t * (int * int) list

type report = {
  total : int;
  unreachable : string list;
  unproductive : string list;
  removed_productions : int;
}

val analyze : Cfg.t -> report
