(** A production rule [lhs -> rhs], with a stable identifier used both by
    the ASG layer (annotations attach to productions) and by the learner
    (hypothesis rules name the production they extend). *)

type t = { id : int; lhs : string; rhs : Symbol.t list }

let make ~id ~lhs ~rhs = { id; lhs; rhs }
let arity p = List.length p.rhs

let nonterminal_children p =
  List.filteri (fun _ s -> not (Symbol.is_terminal s)) p.rhs

let compare a b = Int.compare a.id b.id
let equal a b = compare a b = 0

let pp ppf p =
  Fmt.pf ppf "%s -> %a" p.lhs Fmt.(list ~sep:(any " ") Symbol.pp) p.rhs

let to_string p = Fmt.str "%a" pp p
