(** A production rule [lhs -> rhs] with a stable identifier, used by ASG
    annotations and by the learner's per-production hypotheses. *)

type t = { id : int; lhs : string; rhs : Symbol.t list }

val make : id:int -> lhs:string -> rhs:Symbol.t list -> t
val arity : t -> int
val nonterminal_children : t -> Symbol.t list

(** Productions compare by id. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
