(** Bounded enumeration of derivation trees and sentences — the raw
    material of policy generation. *)

(** Derivation trees for one symbol, depth-bounded, lazily. *)
val trees_for_symbol : Cfg.t -> max_depth:int -> Symbol.t -> Parse_tree.t Seq.t

(** Trees from the grammar's start symbol (default depth 8). *)
val trees : ?max_depth:int -> Cfg.t -> Parse_tree.t Seq.t

(** Distinct sentences derivable within the depth bound, capped at
    [limit] trees inspected. *)
val sentences : ?max_depth:int -> ?limit:int -> Cfg.t -> string list
