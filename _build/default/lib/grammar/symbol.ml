(** Grammar symbols: terminals carry the token text they match. *)

type t = Terminal of string | Nonterminal of string

let terminal s = Terminal s
let nonterminal s = Nonterminal s
let is_terminal = function Terminal _ -> true | Nonterminal _ -> false

let name = function Terminal s -> s | Nonterminal s -> s

let compare a b =
  match (a, b) with
  | Terminal x, Terminal y -> String.compare x y
  | Terminal _, Nonterminal _ -> -1
  | Nonterminal _, Terminal _ -> 1
  | Nonterminal x, Nonterminal y -> String.compare x y

let equal a b = compare a b = 0

let pp ppf = function
  | Terminal s -> Fmt.pf ppf "%S" s
  | Nonterminal s -> Fmt.string ppf s

let to_string s = Fmt.str "%a" pp s
