(** Parsing: Earley recognition (any CFG, cubic time) and an all-parses
    enumerator (memoized span search; unit-cycle derivations are cut). *)

val recognize : Cfg.t -> string list -> bool

(** All parse trees of the token list from the start symbol, capped at
    [max_trees] (default 256). *)
val parses : ?max_trees:int -> Cfg.t -> string list -> Parse_tree.t list

(** Whitespace-tokenizing variants. *)

val parses_sentence : ?max_trees:int -> Cfg.t -> string -> Parse_tree.t list
val recognize_sentence : Cfg.t -> string -> bool
