(** Parsing: an Earley recognizer plus an all-parses enumerator.

    The recognizer is the textbook Earley algorithm (handles any CFG,
    including ambiguous and left-recursive ones, in cubic time). Parse
    trees are produced by a memoized span enumerator with a cycle guard:
    derivations that revisit the same (nonterminal, span) on one path —
    which only arise from unit cycles like [A -> A] and denote infinite
    families of trees — are cut off. *)

type item = {
  prod : Production.t;
  dot : int;  (** position in the rhs *)
  origin : int;  (** chart index where this item started *)
}

module ItemSet = Set.Make (struct
  type t = item

  let compare = Stdlib.compare
end)

let next_symbol it =
  List.nth_opt it.prod.Production.rhs it.dot

(** Earley recognition of a token list. *)
let recognize (g : Cfg.t) (tokens : string list) : bool =
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  let chart = Array.make (n + 1) ItemSet.empty in
  let add i it =
    if not (ItemSet.mem it chart.(i)) then begin
      chart.(i) <- ItemSet.add it chart.(i);
      true
    end
    else false
  in
  List.iter
    (fun p -> ignore (add 0 { prod = p; dot = 0; origin = 0 }))
    (Cfg.productions_of g (Cfg.start g));
  for i = 0 to n do
    let changed = ref true in
    while !changed do
      changed := false;
      ItemSet.iter
        (fun it ->
          match next_symbol it with
          | Some (Symbol.Nonterminal nt) ->
            (* predict *)
            List.iter
              (fun p ->
                if add i { prod = p; dot = 0; origin = i } then changed := true)
              (Cfg.productions_of g nt)
          | Some (Symbol.Terminal t) ->
            (* scan *)
            if i < n && String.equal tokens.(i) t then
              if add (i + 1) { it with dot = it.dot + 1 } then changed := true
          | None ->
            (* complete *)
            ItemSet.iter
              (fun parent ->
                match next_symbol parent with
                | Some (Symbol.Nonterminal nt)
                  when String.equal nt it.prod.Production.lhs ->
                  if add i { parent with dot = parent.dot + 1 } then
                    changed := true
                | _ -> ())
              chart.(it.origin))
        chart.(i)
    done
  done;
  ItemSet.exists
    (fun it ->
      it.origin = 0
      && it.dot = List.length it.prod.Production.rhs
      && String.equal it.prod.Production.lhs (Cfg.start g))
    chart.(n)

(** All parse trees of [tokens] from the start symbol, capped at
    [max_trees] (default 256). *)
let parses ?(max_trees = 256) (g : Cfg.t) (tokens : string list) :
    Parse_tree.t list =
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  let memo : (string * int * int, Parse_tree.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  let in_progress : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* trees for nonterminal [nt] spanning tokens.(i..j-1) *)
  let rec parse_nt nt i j : Parse_tree.t list =
    let key = (nt, i, j) in
    match Hashtbl.find_opt memo key with
    | Some trees -> trees
    | None ->
      if Hashtbl.mem in_progress key then []
      else begin
        Hashtbl.replace in_progress key ();
        let trees =
          List.concat_map
            (fun (p : Production.t) ->
              List.map
                (fun children -> Parse_tree.Node (p, children))
                (parse_seq p.rhs i j))
            (Cfg.productions_of g nt)
        in
        Hashtbl.remove in_progress key;
        (* memoize only cycle-free results: if this call was reached inside
           another (nt,i,j) cycle the result could be partial *)
        if Hashtbl.length in_progress = 0 then Hashtbl.replace memo key trees;
        trees
      end
  (* lists of child trees for a symbol sequence spanning i..j *)
  and parse_seq syms i j : Parse_tree.t list list =
    match syms with
    | [] -> if i = j then [ [] ] else []
    | Symbol.Terminal t :: rest ->
      if i < j && String.equal tokens.(i) t then
        List.map (fun tl -> Parse_tree.Leaf t :: tl) (parse_seq rest (i + 1) j)
      else []
    | Symbol.Nonterminal nt :: rest ->
      (* try every split point *)
      let results = ref [] in
      for k = i to j do
        let heads = parse_nt nt i k in
        if heads <> [] then
          let tails = parse_seq rest k j in
          List.iter
            (fun h -> List.iter (fun tl -> results := (h :: tl) :: !results) tails)
            heads
      done;
      List.rev !results
  in
  let all = parse_nt (Cfg.start g) 0 n in
  if List.length all > max_trees then
    List.filteri (fun i _ -> i < max_trees) all
  else all

(** Parse a sentence given as a whitespace-separated string. *)
let parses_sentence ?max_trees g sentence =
  let tokens =
    String.split_on_char ' ' sentence |> List.filter (fun s -> s <> "")
  in
  parses ?max_trees g tokens

let recognize_sentence g sentence =
  let tokens =
    String.split_on_char ' ' sentence |> List.filter (fun s -> s <> "")
  in
  recognize g tokens
