(** Grammar hygiene transforms: removing productions that can never
    contribute to a derived sentence. The Policy Refinement Point applies
    this to operator-supplied grammars before learning, so hypothesis
    space and generation never waste effort on dead productions. *)

(** Remove productions whose left-hand side is unreachable from the start
    symbol or unproductive (can derive no terminal string), and
    right-hand sides mentioning such nonterminals. The result preserves
    the grammar's language. Production ids are re-assigned in order; the
    returned mapping sends old ids to new ones (dropped productions are
    absent). *)
let remove_useless (g : Cfg.t) : Cfg.t * (int * int) list =
  let productive = Cfg.productive g in
  let reachable = Cfg.reachable g in
  let useful nt = List.mem nt productive && List.mem nt reachable in
  let keep =
    List.filter
      (fun (p : Production.t) ->
        useful p.lhs
        && List.for_all
             (function
               | Symbol.Terminal _ -> true
               | Symbol.Nonterminal n -> useful n)
             p.rhs)
      (Cfg.productions g)
  in
  let cleaned =
    Cfg.make ~start:(Cfg.start g)
      (List.map (fun (p : Production.t) -> (p.lhs, p.rhs)) keep)
  in
  let mapping =
    List.mapi (fun new_id (p : Production.t) -> (p.id, new_id)) keep
  in
  (cleaned, mapping)

(** Statistics of what a cleanup would remove. *)
type report = {
  total : int;
  unreachable : string list;
  unproductive : string list;
  removed_productions : int;
}

let analyze (g : Cfg.t) : report =
  let productive = Cfg.productive g in
  let reachable = Cfg.reachable g in
  let nts = Cfg.nonterminals g in
  let unreachable = List.filter (fun nt -> not (List.mem nt reachable)) nts in
  let unproductive = List.filter (fun nt -> not (List.mem nt productive)) nts in
  let cleaned, _ = remove_useless g in
  {
    total = List.length (Cfg.productions g);
    unreachable;
    unproductive;
    removed_productions =
      List.length (Cfg.productions g) - List.length (Cfg.productions cleaned);
  }
