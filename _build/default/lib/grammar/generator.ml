(** Bounded enumeration of the derivation trees (and strings) of a CFG.

    Generation is what turns a generative policy model into concrete
    policies: the ASG layer enumerates candidate trees here and filters
    them by annotation satisfiability. Enumeration is depth-bounded and
    lazily produced. *)

(** All derivation trees for [sym] of depth at most [max_depth]. *)
let rec trees_for_symbol (g : Cfg.t) ~max_depth (sym : Symbol.t) :
    Parse_tree.t Seq.t =
  match sym with
  | Symbol.Terminal t -> Seq.return (Parse_tree.Leaf t)
  | Symbol.Nonterminal nt ->
    if max_depth <= 0 then Seq.empty
    else
      Seq.concat_map
        (fun (p : Production.t) ->
          Seq.map
            (fun children -> Parse_tree.Node (p, children))
            (children_seqs g ~max_depth:(max_depth - 1) p.rhs))
        (List.to_seq (Cfg.productions_of g nt))

and children_seqs g ~max_depth (syms : Symbol.t list) :
    Parse_tree.t list Seq.t =
  match syms with
  | [] -> Seq.return []
  | sym :: rest ->
    Seq.concat_map
      (fun tree ->
        Seq.map (fun tl -> tree :: tl) (children_seqs g ~max_depth rest))
      (trees_for_symbol g ~max_depth sym)

(** Trees of the full grammar (from its start symbol). *)
let trees ?(max_depth = 8) (g : Cfg.t) : Parse_tree.t Seq.t =
  trees_for_symbol g ~max_depth (Symbol.Nonterminal (Cfg.start g))

(** Distinct sentences derivable within [max_depth], in generation order. *)
let sentences ?(max_depth = 8) ?(limit = 10_000) (g : Cfg.t) : string list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let count = ref 0 in
  (try
     Seq.iter
       (fun tree ->
         if !count >= limit then raise Exit;
         let s = Parse_tree.to_sentence tree in
         if not (Hashtbl.mem seen s) then begin
           Hashtbl.replace seen s ();
           out := s :: !out;
           incr count
         end)
       (trees ~max_depth g)
   with Exit -> ());
  List.rev !out
