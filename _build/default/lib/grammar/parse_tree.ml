(** Parse trees with per-node traces.

    Following the paper (Section II-A), every node of a parse tree is
    identified by its {e trace}: the root has trace [[]], the i-th child of
    a node with trace [t] has trace [t @ [i]] with 1-based [i]. Traces are
    what the ASG layer uses to re-annotate ASP programs per node. *)

type t =
  | Leaf of string  (** a terminal token *)
  | Node of Production.t * t list

type trace = int list

let rec yield = function
  | Leaf tok -> [ tok ]
  | Node (_, children) -> List.concat_map yield children

(** The string a tree derives: tokens joined with single spaces. *)
let to_sentence tree = String.concat " " (yield tree)

let rec depth = function
  | Leaf _ -> 1
  | Node (_, children) ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec size = function
  | Leaf _ -> 1
  | Node (_, children) -> 1 + List.fold_left (fun acc c -> acc + size c) 0 children

let root_production = function
  | Leaf _ -> None
  | Node (p, _) -> Some p

(** All internal nodes with their traces, root first. *)
let nodes_with_traces tree : (trace * Production.t * t list) list =
  let rec go trace acc = function
    | Leaf _ -> acc
    | Node (p, children) ->
      let acc = (List.rev trace, p, children) :: acc in
      let _, acc =
        List.fold_left
          (fun (i, acc) child -> (i + 1, go (i :: trace) acc child))
          (1, acc) children
      in
      acc
  in
  List.rev (go [] [] tree)

let trace_to_string (t : trace) =
  "[" ^ String.concat "," (List.map string_of_int t) ^ "]"

let rec pp ppf = function
  | Leaf tok -> Fmt.pf ppf "%S" tok
  | Node (p, children) ->
    Fmt.pf ppf "(%s@[<hov>" p.Production.lhs;
    List.iter (fun c -> Fmt.pf ppf " %a" pp c) children;
    Fmt.pf ppf "@])"

let to_string tree = Fmt.str "%a" pp tree

(** Check the tree is a valid derivation in [g] (each node's children match
    its production's right-hand side and the production belongs to [g]). *)
let rec is_valid g tree =
  match tree with
  | Leaf _ -> true
  | Node (p, children) ->
    List.exists (fun q -> Production.equal p q) (Cfg.productions g)
    && List.length children = List.length p.Production.rhs
    && List.for_all2
         (fun sym child ->
           match (sym, child) with
           | Symbol.Terminal t, Leaf tok -> String.equal t tok
           | Symbol.Nonterminal n, Node (q, _) -> String.equal n q.Production.lhs
           | _ -> false)
         p.Production.rhs children
    && List.for_all (is_valid g) children
