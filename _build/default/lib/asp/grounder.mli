(** Grounding: instantiating a safe program's variables with the constants
    that can matter, via the standard two-phase scheme (possible-atom
    fixpoint, then rule instantiation with builtin evaluation). *)

exception Unsafe_rule of Rule.t

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

val pp_ground_rule : Format.formatter -> ground_rule -> unit

(** Expand interval arguments: [p(1..3)] to [p(1)], [p(2)], [p(3)]. *)
val expand_atom : Atom.t -> Atom.t list

(** Ground a program. Negative literals over underivable atoms are
    dropped (trivially true); rules that can never fire are omitted.
    @raise Unsafe_rule on unsafe input. *)
val ground : Program.t -> ground_program

val size : ground_program -> int
val atom_count : ground_program -> int
