(** Grounding: instantiating a safe program's variables with the constants
    that can actually matter.

    The algorithm follows the standard two-phase scheme:
    1. compute the set of {e possible atoms} — the least fixpoint of the
       positive projection of the program (negation ignored, choice heads
       treated as derivable);
    2. instantiate each rule against that base, evaluating arithmetic and
       comparison builtins, dropping rules that can never fire and negative
       literals that can never hold. *)

exception Unsafe_rule of Rule.t

exception Aggregate_in_rule of Rule.t
(** Aggregates are admitted only in constraint and weak-constraint
    bodies. *)

type ghead =
  | GAtom of Atom.t
  | GFalse
  | GWeak of int  (** evaluated weight of a weak-constraint instance *)
  | GChoice of int option * Atom.t list * int option

type ground_rule = {
  ghead : ghead;
  gpos : Atom.t list;
  gneg : Atom.t list;
  gcounts : Rule.count list;
      (** outer-ground aggregates, evaluated against candidate models *)
}

type ground_program = {
  grules : ground_rule list;
  base : Atom.Set.t;  (** all possible atoms *)
}

let pp_ground_rule ppf r =
  let pp_head ppf = function
    | GAtom a -> Atom.pp ppf a
    | GFalse -> ()
    | GWeak _ -> ()
    | GChoice (l, atoms, u) ->
      let pp_b ppf = function Some n -> Fmt.pf ppf "%d " n | None -> () in
      let pp_u ppf = function Some n -> Fmt.pf ppf " %d" n | None -> () in
      Fmt.pf ppf "%a{ %a }%a" pp_b l
        Fmt.(list ~sep:(any "; ") Atom.pp)
        atoms pp_u u
  in
  let body =
    List.map (fun a -> Fmt.str "%a" Atom.pp a) r.gpos
    @ List.map (fun a -> Fmt.str "not %a" Atom.pp a) r.gneg
    @ List.map
        (fun c -> Fmt.str "%a" Rule.pp_body_elt (Rule.Count c))
        r.gcounts
  in
  match (r.ghead, body) with
  | GFalse, body -> Fmt.pf ppf ":- %s." (String.concat ", " body)
  | GWeak w, body -> Fmt.pf ppf ":~ %s. [%d]" (String.concat ", " body) w
  | h, [] -> Fmt.pf ppf "%a." pp_head h
  | h, body -> Fmt.pf ppf "%a :- %s." pp_head h (String.concat ", " body)

(* -- Interval expansion ---------------------------------------------- *)

(** Expand interval arguments: [p(1..3)] becomes [p(1)], [p(2)], [p(3)].
    Endpoints must evaluate to integers once ground. *)
let rec expand_intervals_in_term (t : Term.t) : Term.t list =
  match t with
  | Term.Var _ -> [ t ]
  | Term.Int _ -> [ t ]
  | Term.Fun (f, args) ->
    List.map (fun args -> Term.Fun (f, args)) (expand_args args)
  | Term.Binop _ -> [ t ]
  | Term.Interval (a, b) -> (
    match (Term.eval a, Term.eval b) with
    | Some (Term.Int l), Some (Term.Int u) ->
      if l > u then []
      else List.init (u - l + 1) (fun i -> Term.Int (l + i))
    | _ -> [ t ])

and expand_args = function
  | [] -> [ [] ]
  | arg :: rest ->
    let arg_choices = expand_intervals_in_term arg in
    let rest_choices = expand_args rest in
    List.concat_map
      (fun a -> List.map (fun r -> a :: r) rest_choices)
      arg_choices

let expand_atom (a : Atom.t) : Atom.t list =
  List.map (fun args -> { a with Atom.args }) (expand_args a.Atom.args)

(* -- Indexed atom base ------------------------------------------------ *)

type base = { mutable atoms : Atom.Set.t; by_pred : (string * int, Atom.t list ref) Hashtbl.t }

let base_create () = { atoms = Atom.Set.empty; by_pred = Hashtbl.create 64 }

let base_mem b a = Atom.Set.mem a b.atoms

let base_add b a =
  if not (Atom.Set.mem a b.atoms) then begin
    b.atoms <- Atom.Set.add a b.atoms;
    let key = (a.Atom.pred, Atom.arity a) in
    match Hashtbl.find_opt b.by_pred key with
    | Some l -> l := a :: !l
    | None -> Hashtbl.replace b.by_pred key (ref [ a ]);
  end

let base_candidates b (a : Atom.t) =
  match Hashtbl.find_opt b.by_pred (a.Atom.pred, Atom.arity a) with
  | Some l -> !l
  | None -> []

(* -- Substitution enumeration over a rule body ------------------------ *)

(** Enumerate all substitutions grounding the positive body literals against
    [b], with comparisons checked as soon as their variables are bound.
    Calls [yield] once per complete substitution. *)
let enum_substitutions b (body : Rule.body_elt list) yield =
  (* Process positive literals first only when safe ordering requires it;
     we keep source order but defer comparisons until evaluable. *)
  let rec go subst pending_cmps = function
    | [] ->
      let ok =
        List.for_all
          (fun (op, t1, t2) ->
            match
              (Term.eval (Term.apply subst t1), Term.eval (Term.apply subst t2))
            with
            | Some v1, Some v2 -> Rule.eval_cmp op v1 v2
            | _ -> false)
          pending_cmps
      in
      if ok then yield subst
    | Rule.Pos a :: rest ->
      let a' = Atom.apply subst a in
      let expanded = expand_atom a' in
      List.iter
        (fun a' ->
          if Atom.is_ground a' then begin
            match Atom.eval a' with
            | Some ga -> if base_mem b ga then go subst pending_cmps rest
            | None -> ()
          end
          else
            List.iter
              (fun cand ->
                match Atom.match_atom subst a' cand with
                | Some subst' -> go subst' pending_cmps rest
                | None -> ())
              (base_candidates b a'))
        expanded
    | Rule.Neg _ :: rest -> go subst pending_cmps rest
    | Rule.Count _ :: rest -> go subst pending_cmps rest
    | Rule.Cmp (op, t1, t2) :: rest -> (
      (* Equality can bind a variable: X = t with t evaluable. *)
      let t1' = Term.apply subst t1 and t2' = Term.apply subst t2 in
      match (op, t1', t2') with
      | Rule.Eq, Term.Var v, t when Term.eval t <> None ->
        let value = Option.get (Term.eval t) in
        go (Term.subst_bind v value subst) pending_cmps rest
      | Rule.Eq, t, Term.Var v when Term.eval t <> None ->
        let value = Option.get (Term.eval t) in
        go (Term.subst_bind v value subst) pending_cmps rest
      | _ -> (
        match (Term.eval t1', Term.eval t2') with
        | Some v1, Some v2 ->
          if Rule.eval_cmp op v1 v2 then go subst pending_cmps rest
        | _ -> go subst ((op, t1, t2) :: pending_cmps) rest))
  in
  go Term.subst_empty [] body

(* -- Phase 1: possible atoms ------------------------------------------ *)

let head_instances b subst (head : Rule.head) : Atom.t list =
  match head with
  | Rule.Head a ->
    List.filter_map Atom.eval (expand_atom (Atom.apply subst a))
  | Rule.Falsity | Rule.Weak _ -> []
  | Rule.Choice (_, elts, _) ->
    List.concat_map
      (fun (e : Rule.choice_elt) ->
        (* enumerate local condition bindings *)
        let conds = List.map (fun c -> Rule.Pos (Atom.apply subst c)) e.condition in
        let results = ref [] in
        enum_substitutions b conds (fun local_subst ->
            let a = Atom.apply local_subst (Atom.apply subst e.choice_atom) in
            List.iter
              (fun a ->
                match Atom.eval a with
                | Some ga when Atom.is_ground ga -> results := ga :: !results
                | _ -> ())
              (expand_atom a));
        !results)
      elts

let compute_possible_atoms (p : Program.t) : base =
  let b = base_create () in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        enum_substitutions b r.body (fun subst ->
            List.iter
              (fun a ->
                if not (base_mem b a) then begin
                  base_add b a;
                  changed := true
                end)
              (head_instances b subst r.head)))
      p.rules
  done;
  b

(* -- Phase 2: rule instantiation -------------------------------------- *)

let ground_body b subst (body : Rule.body_elt list) :
    (Atom.t list * Atom.t list * Rule.count list) option =
  let rec go pos neg counts = function
    | [] -> Some (List.rev pos, List.rev neg, List.rev counts)
    | Rule.Pos a :: rest -> (
      match Atom.eval (Atom.apply subst a) with
      | Some ga when Atom.is_ground ga ->
        if base_mem b ga then go (ga :: pos) neg counts rest else None
      | _ -> None)
    | Rule.Neg a :: rest -> (
      match Atom.eval (Atom.apply subst a) with
      | Some ga when Atom.is_ground ga ->
        (* a negative literal over an underivable atom is trivially true *)
        if base_mem b ga then go pos (ga :: neg) counts rest
        else go pos neg counts rest
      | _ -> None)
    | Rule.Cmp (op, t1, t2) :: rest -> (
      match
        (Term.eval (Term.apply subst t1), Term.eval (Term.apply subst t2))
      with
      | Some v1, Some v2 ->
        if Rule.eval_cmp op v1 v2 then go pos neg counts rest else None
      | _ -> None)
    | Rule.Count c :: rest -> (
      match Rule.apply_body_elt subst (Rule.Count c) with
      | Rule.Count c' -> go pos neg (c' :: counts) rest
      | _ -> None)
  in
  go [] [] [] body

(** Ground a program. Raises [Unsafe_rule] if any rule is unsafe. *)
let ground (p : Program.t) : ground_program =
  List.iter
    (fun r -> if not (Rule.is_safe r) then raise (Unsafe_rule r))
    p.rules;
  let b = compute_possible_atoms p in
  let out = ref [] in
  let emit gr = out := gr :: !out in
  List.iter
    (fun (r : Rule.t) ->
      enum_substitutions b r.body (fun subst ->
          match ground_body b subst r.body with
          | None -> ()
          | Some (gpos, gneg, gcounts) -> (
            match r.head with
            | (Rule.Head _ | Rule.Choice _) when gcounts <> [] ->
              raise (Aggregate_in_rule r)
            | Rule.Head a ->
              List.iter
                (fun inst ->
                  match Atom.eval inst with
                  | Some ga when Atom.is_ground ga ->
                    emit { ghead = GAtom ga; gpos; gneg; gcounts }
                  | _ -> ())
                (expand_atom (Atom.apply subst a))
            | Rule.Falsity -> emit { ghead = GFalse; gpos; gneg; gcounts }
            | Rule.Weak w -> (
              match Term.eval (Term.apply subst w) with
              | Some (Term.Int cost) ->
                emit { ghead = GWeak cost; gpos; gneg; gcounts }
              | Some _ | None -> ())
            | Rule.Choice (l, _, u) ->
              let atoms = head_instances b subst r.head in
              let atoms = List.sort_uniq Atom.compare atoms in
              if atoms <> [] || l <> None then
                emit { ghead = GChoice (l, atoms, u); gpos; gneg; gcounts })))
    p.rules;
  { grules = List.rev !out; base = b.atoms }

let size gp = List.length gp.grules
let atom_count gp = Atom.Set.cardinal gp.base
