(** Predicate dependency analysis: dependency graph, Tarjan SCCs, and
    stratification. *)

(** Predicate name and arity. *)
type pred = string * int

type edge_kind = Positive | Negative

module PredMap : Map.S with type key = pred

type graph

val build : Program.t -> graph
val successors : graph -> pred -> (pred * edge_kind) list

(** Strongly connected components, callees before callers. *)
val sccs : graph -> pred list list

(** No predicate depends on itself through negation (choice rules make a
    program count as unstratified). *)
val is_stratified : Program.t -> bool

(** Stratum per predicate (meaningful for stratified programs). *)
val strata : Program.t -> int PredMap.t
