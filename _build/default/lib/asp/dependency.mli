(** Predicate dependency analysis: dependency graph, Tarjan SCCs, and
    stratification. *)

(** Predicate name and arity. *)
type pred = string * int

(** Whether the dependency passes through negation as failure. *)
type edge_kind = Positive | Negative

module PredMap : Map.S with type key = pred

(** The predicate dependency graph of a program. *)
type graph

(** Build the graph: an edge from each head predicate to each predicate
    of its rule's body (and, for choice rules, from each choice atom's
    predicate to the predicates of its condition). *)
val build : Program.t -> graph

(** Outgoing edges of a predicate (its body dependencies). *)
val successors : graph -> pred -> (pred * edge_kind) list

(** Strongly connected components, callees before callers. *)
val sccs : graph -> pred list list

(** No predicate depends on itself through negation (choice rules make a
    program count as unstratified). *)
val is_stratified : Program.t -> bool

(** Stratum per predicate (meaningful for stratified programs). *)
val strata : Program.t -> int PredMap.t
