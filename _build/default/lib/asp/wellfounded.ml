(** Well-founded propagation by the alternating fixpoint.

    Computes a lower bound [definitely true] and an upper bound
    [possibly true] on every stable model of a ground program. For
    stratified choice-free programs the two bounds meet and describe the
    unique answer-set candidate directly; otherwise the solver branches
    only on the atoms left between the bounds. Choice rules are handled
    conservatively: they contribute to the upper bound but never force an
    atom true. *)

type bounds = { lower : Atom.Set.t; upper : Atom.Set.t }

(** Least fixpoint of one application of the reduct operator.
    [negatives_wrt] decides which negative literals count as satisfied
    (an atom's negation holds iff the atom is outside that set).
    [include_choices] makes choice heads derivable (upper-bound mode). *)
let gamma (gp : Grounder.ground_program) ~negatives_wrt ~include_choices =
  let derived = ref Atom.Set.empty in
  let changed = ref true in
  let neg_ok atoms = List.for_all (fun a -> not (Atom.Set.mem a negatives_wrt)) atoms in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Grounder.ground_rule) ->
        let body_fires =
          List.for_all (fun a -> Atom.Set.mem a !derived) r.gpos && neg_ok r.gneg
        in
        if body_fires then
          match r.ghead with
          | Grounder.GAtom a ->
            if not (Atom.Set.mem a !derived) then begin
              derived := Atom.Set.add a !derived;
              changed := true
            end
          | Grounder.GFalse | Grounder.GWeak _ -> ()
          | Grounder.GChoice (_, atoms, _) ->
            if include_choices then
              List.iter
                (fun a ->
                  if not (Atom.Set.mem a !derived) then begin
                    derived := Atom.Set.add a !derived;
                    changed := true
                  end)
                atoms)
      gp.grules
  done;
  !derived

(** Alternating fixpoint: returns well-founded lower/upper bounds. *)
let compute (gp : Grounder.ground_program) : bounds =
  let rec iterate lower upper =
    let lower' = gamma gp ~negatives_wrt:upper ~include_choices:false in
    let upper' = gamma gp ~negatives_wrt:lower' ~include_choices:true in
    if Atom.Set.equal lower lower' && Atom.Set.equal upper upper' then
      { lower = lower'; upper = upper' }
    else iterate lower' upper'
  in
  iterate Atom.Set.empty gp.base

let is_total b = Atom.Set.equal b.lower b.upper
