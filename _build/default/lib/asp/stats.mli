(** Engine instrumentation: global counters and phase timers maintained by
    {!Grounder} and {!Solver}, plus caller-level counters bumped by the ILP
    learner and ASG membership layer.

    All counters are cumulative from the last {!reset}. The intended usage
    pattern for measuring one workload is:

    {[
      Asp.Stats.reset ();
      (* ... run the workload ... *)
      Fmt.pr "%a@." Asp.Stats.pp (Asp.Stats.snapshot ())
    ]}

    The counters are plain field increments on a single global record, so
    their overhead is negligible next to grounding or search; they are not
    thread-safe. *)

type t = {
  mutable ground_calls : int;  (** calls to {!Grounder.ground} *)
  mutable ground_rules : int;  (** ground rule instances emitted *)
  mutable possible_atoms : int;  (** atoms in the possible-atom base *)
  mutable delta_rounds : int;
      (** semi-naive fixpoint rounds (delta iterations) across all
          grounding calls *)
  mutable join_tuples : int;
      (** complete body substitutions enumerated by the rule-body joins *)
  mutable solve_calls : int;  (** calls to {!Solver.solve_ground} *)
  mutable propagations : int;  (** atom assignments made by propagation *)
  mutable decisions : int;  (** DPLL branch decisions *)
  mutable conflicts : int;  (** conflicts raised during search *)
  mutable gl_checks : int;
      (** Gelfond–Lifschitz stability checks on complete assignments *)
  mutable models_found : int;  (** stable models returned *)
  mutable hypothesis_evals : int;
      (** hypothesis/membership evaluations by ILP and ASG callers *)
  mutable ground_seconds : float;  (** wall-clock spent grounding *)
  mutable solve_seconds : float;  (** wall-clock spent in stable-model search *)
}

(** The single global statistics record, mutated in place by the engine. *)
val global : t

(** Zero every counter and timer of {!global}. *)
val reset : unit -> unit

(** An immutable-by-convention copy of {!global}'s current values. *)
val snapshot : unit -> t

(** Run a thunk, adding its wall-clock duration to [ground_seconds]. *)
val time_ground : (unit -> 'a) -> 'a

(** Run a thunk, adding its wall-clock duration to [solve_seconds]. *)
val time_solve : (unit -> 'a) -> 'a

(** Human-readable multi-line rendering of a snapshot. *)
val pp : Format.formatter -> t -> unit

(** One-line JSON object with every counter, as persisted in
    [BENCH_asp.json] (schema documented in [EXPERIMENTS.md]). *)
val to_json : t -> string
