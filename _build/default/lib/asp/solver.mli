(** Stable-model (answer-set) computation: well-founded narrowing followed
    by DPLL-style search with a Gelfond–Lifschitz stability check at each
    complete assignment. Sound and complete for normal rules, constraints
    and bounded choice rules; weak constraints rank models. *)

type model = Atom.Set.t

val pp_model : Format.formatter -> model -> unit
val model_to_string : model -> string

(** Enumerate stable models of a ground program, up to [limit].
    [wellfounded:false] disables the well-founded narrowing (ablation
    knob); results are identical, search is slower. *)
val solve_ground :
  ?limit:int -> ?wellfounded:bool -> Grounder.ground_program -> model list

(** Ground and solve. *)
val solve : ?limit:int -> ?wellfounded:bool -> Program.t -> model list

val has_answer_set : Program.t -> bool
val first_answer_set : Program.t -> model option

(** Atoms true in at least one answer set, optionally restricted to a
    predicate. *)
val brave_consequences : ?pred:string -> Program.t -> Atom.Set.t

(** Atoms true in every answer set; empty if there is none. *)
val cautious_consequences : ?pred:string -> Program.t -> Atom.Set.t

(** {2 Optimization (weak constraints)} *)

(** Summed weights of the weak-constraint instances whose bodies the
    model satisfies. *)
val model_cost : Grounder.ground_program -> model -> int

(** Stable models ranked by cost, cheapest first. *)
val solve_ranked : ?limit:int -> Program.t -> (model * int) list

(** The minimal-cost stable models and their cost; [None] if the program
    has no stable model. *)
val solve_optimal : ?limit:int -> Program.t -> (model list * int) option
