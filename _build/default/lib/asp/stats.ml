(** Engine instrumentation: cheap global counters and phase timers for the
    grounder and solver, exposed so benchmarks and callers that re-solve in
    a loop (the ILP learner, ASG membership checks) can observe where time
    goes without threading state through every call.

    Counters accumulate until {!reset}; {!snapshot} copies the current
    values so a caller can diff two points in time. *)

type t = {
  (* grounder *)
  mutable ground_calls : int;
  mutable ground_rules : int;
  mutable possible_atoms : int;
  mutable delta_rounds : int;
  mutable join_tuples : int;
  (* solver *)
  mutable solve_calls : int;
  mutable propagations : int;
  mutable decisions : int;
  mutable conflicts : int;
  mutable gl_checks : int;
  mutable models_found : int;
  (* callers *)
  mutable hypothesis_evals : int;
  (* wall-clock, seconds *)
  mutable ground_seconds : float;
  mutable solve_seconds : float;
}

let make () =
  {
    ground_calls = 0;
    ground_rules = 0;
    possible_atoms = 0;
    delta_rounds = 0;
    join_tuples = 0;
    solve_calls = 0;
    propagations = 0;
    decisions = 0;
    conflicts = 0;
    gl_checks = 0;
    models_found = 0;
    hypothesis_evals = 0;
    ground_seconds = 0.0;
    solve_seconds = 0.0;
  }

let global = make ()

let reset () =
  let z = make () in
  global.ground_calls <- z.ground_calls;
  global.ground_rules <- z.ground_rules;
  global.possible_atoms <- z.possible_atoms;
  global.delta_rounds <- z.delta_rounds;
  global.join_tuples <- z.join_tuples;
  global.solve_calls <- z.solve_calls;
  global.propagations <- z.propagations;
  global.decisions <- z.decisions;
  global.conflicts <- z.conflicts;
  global.gl_checks <- z.gl_checks;
  global.models_found <- z.models_found;
  global.hypothesis_evals <- z.hypothesis_evals;
  global.ground_seconds <- z.ground_seconds;
  global.solve_seconds <- z.solve_seconds

let snapshot () = { global with ground_calls = global.ground_calls }

(** Monotonic-ish wall clock. [Unix] is deliberately avoided to keep the
    library dependency-free; [Sys.time] measures processor time, which for
    the single-threaded engine tracks wall-clock closely. *)
let now () = Sys.time ()

let time_ground f =
  let t0 = now () in
  Fun.protect ~finally:(fun () ->
      global.ground_seconds <- global.ground_seconds +. (now () -. t0))
    f

let time_solve f =
  let t0 = now () in
  Fun.protect ~finally:(fun () ->
      global.solve_seconds <- global.solve_seconds +. (now () -. t0))
    f

let pp ppf s =
  Fmt.pf ppf
    "@[<v>grounder: %d call(s), %d ground rule(s), %d possible atom(s), %d \
     delta round(s), %d join tuple(s), %.4fs@,\
     solver: %d call(s), %d propagation(s), %d decision(s), %d conflict(s), \
     %d GL check(s), %d model(s), %.4fs@,\
     callers: %d hypothesis evaluation(s)@]"
    s.ground_calls s.ground_rules s.possible_atoms s.delta_rounds s.join_tuples
    s.ground_seconds s.solve_calls s.propagations s.decisions s.conflicts
    s.gl_checks s.models_found s.solve_seconds s.hypothesis_evals

let to_json s =
  Printf.sprintf
    "{\"ground_calls\": %d, \"ground_rules\": %d, \"possible_atoms\": %d, \
     \"delta_rounds\": %d, \"join_tuples\": %d, \"solve_calls\": %d, \
     \"propagations\": %d, \"decisions\": %d, \"conflicts\": %d, \
     \"gl_checks\": %d, \"models_found\": %d, \"hypothesis_evals\": %d, \
     \"ground_seconds\": %.6f, \"solve_seconds\": %.6f}"
    s.ground_calls s.ground_rules s.possible_atoms s.delta_rounds s.join_tuples
    s.solve_calls s.propagations s.decisions s.conflicts s.gl_checks
    s.models_found s.hypothesis_evals s.ground_seconds s.solve_seconds
