(** Hand-written lexer for the textual ASP syntax. *)

type token =
  | IDENT of string  (** lowercase-initial identifier *)
  | VARIABLE of string  (** uppercase- or [_]-initial identifier *)
  | INT of int
  | STRING of string  (** double-quoted; quotes stripped *)
  | IF  (** [:-] *)
  | WEAK_IF  (** [:~] — weak constraint *)
  | LBRACKET
  | RBRACKET
  | DOT
  | COMMA
  | SEMI
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | NOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BACKSLASH
  | DOTDOT
  | COUNT  (** [#count] *)
  | AT  (** [@] — annotation marker used by answer set grammars *)
  | PIPE  (** [|] — alternative separator in the grammar syntax *)
  | ARROW  (** [->] — used by the grammar syntax, not by plain ASP *)
  | EOF

exception Lex_error of string * int  (** message, position *)

let token_to_string = function
  | IDENT s -> Printf.sprintf "ident %S" s
  | VARIABLE s -> Printf.sprintf "variable %S" s
  | INT n -> Printf.sprintf "int %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | IF -> ":-"
  | WEAK_IF -> ":~"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | DOT -> "."
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | NOT -> "not"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | BACKSLASH -> "\\"
  | DOTDOT -> ".."
  | COUNT -> "#count"
  | AT -> "@"
  | PIPE -> "|"
  | ARROW -> "->"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_digit c || is_lower c || is_upper c || c = '_' || c = '\''

(** Tokenize a whole input string. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if is_lower c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      if word = "not" then emit NOT else emit (IDENT word)
    end
    else if is_upper c || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (VARIABLE (String.sub input start (!i - start)))
    end
    else if c = '#' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      if word = "count" then emit COUNT
      else raise (Lex_error (Printf.sprintf "unknown directive #%s" word, start))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 8 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", !i));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = match peek 1 with Some c2 -> Some (c, c2) | None -> None in
      match two with
      | Some (':', '-') ->
        emit IF;
        i := !i + 2
      | Some (':', '~') ->
        emit WEAK_IF;
        i := !i + 2
      | Some ('!', '=') ->
        emit NEQ;
        i := !i + 2
      | Some ('<', '=') ->
        emit LE;
        i := !i + 2
      | Some ('>', '=') ->
        emit GE;
        i := !i + 2
      | Some ('.', '.') ->
        emit DOTDOT;
        i := !i + 2
      | Some ('-', '>') ->
        emit ARROW;
        i := !i + 2
      | _ -> (
        (match c with
        | '.' -> emit DOT
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | ':' -> emit COLON
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '*' -> emit STAR
        | '/' -> emit SLASH
        | '\\' -> emit BACKSLASH
        | '@' -> emit AT
        | '|' -> emit PIPE
        | '[' -> emit LBRACKET
        | ']' -> emit RBRACKET
        | _ ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i)
    end
  done;
  emit EOF;
  List.rev !tokens
