(** Evaluating (possibly non-ground) rule bodies against a fixed model —
    used by the learner to test which candidate constraints a witness
    model violates, and by explanations. *)

(** The value of an outer-ground [#count] aggregate in a model. *)
val count_value : Atom.Set.t -> Rule.count -> int

(** Does an outer-ground [#count] aggregate hold in the model? *)
val count_holds : Atom.Set.t -> Rule.count -> bool

(** Does some substitution make every body element true in the model? *)
val body_holds : Atom.Set.t -> Rule.body_elt list -> bool

(** Is a constraint violated by the model (its body holds)? Always false
    for non-constraint rules. *)
val violates : Atom.Set.t -> Rule.t -> bool

(** All ground instances of the body that hold in the model — the
    evidence for {e why} a constraint fired. *)
val satisfying_instances :
  Atom.Set.t -> Rule.body_elt list -> Rule.body_elt list list

(** Total cost a weak constraint contributes on a model: its weight summed
    over all distinct satisfying ground body instances; zero for non-weak
    rules. *)
val weak_cost : Atom.Set.t -> Rule.t -> int
