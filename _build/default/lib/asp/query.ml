(** Evaluating (possibly non-ground) rule bodies against a fixed model —
    used by the learner to test which candidate constraints a witness
    model violates, and by the policy layer for explanations. *)

(** The value of a [#count] aggregate in a model: the number of distinct
    ground tuple instantiations under which every condition holds. The
    aggregate must be outer-ground (only its local variables free). *)
let rec count_value (m : Atom.Set.t) (c : Rule.count) : int =
  let atoms = Atom.Set.elements m in
  let candidates (a : Atom.t) =
    List.filter
      (fun (cand : Atom.t) ->
        String.equal cand.pred a.pred && Atom.arity cand = Atom.arity a)
      atoms
  in
  let seen = Hashtbl.create 8 in
  let pos, rest =
    List.partition (function Rule.Pos _ -> true | _ -> false) c.conditions
  in
  let cmps, negs =
    List.partition (function Rule.Cmp _ -> true | _ -> false) rest
  in
  let ordered = pos @ cmps @ negs in
  let rec go subst = function
    | [] ->
      let tuple = List.map (Term.apply subst) c.tuple in
      if List.for_all Term.is_ground tuple then
        Hashtbl.replace seen (String.concat ";" (List.map Term.to_string tuple)) ()
    | Rule.Pos a :: rest ->
      let a' = Atom.apply subst a in
      if Atom.is_ground a' then begin
        match Atom.eval a' with
        | Some ga -> if Atom.Set.mem ga m then go subst rest
        | None -> ()
      end
      else
        List.iter
          (fun cand ->
            match Atom.match_atom subst a' cand with
            | Some subst' -> go subst' rest
            | None -> ())
          (candidates a')
    | Rule.Cmp (op, t1, t2) :: rest -> (
      match
        (Term.eval (Term.apply subst t1), Term.eval (Term.apply subst t2))
      with
      | Some v1, Some v2 -> if Rule.eval_cmp op v1 v2 then go subst rest
      | _ -> ())
    | Rule.Neg a :: rest -> (
      match Atom.eval (Atom.apply subst a) with
      | Some ga when Atom.is_ground ga ->
        if not (Atom.Set.mem ga m) then go subst rest
      | _ -> ())
    | Rule.Count _ :: _ -> () (* no nesting *)
  in
  go Term.subst_empty ordered;
  Hashtbl.length seen

(** Does an outer-ground [#count] aggregate hold in the model? *)
and count_holds (m : Atom.Set.t) (c : Rule.count) : bool =
  match Term.eval c.bound with
  | Some (Term.Int _ as k) ->
    Rule.eval_cmp c.count_op (Term.Int (count_value m c)) k
  | Some _ | None -> false

(** Does some substitution make every element of [body] true in [m]?
    Positive literals are matched against the model's atoms; comparisons
    are evaluated once their variables are bound (an [=] against a free
    variable binds it); negative literals and aggregates are checked last
    and must be outer-ground by then. *)
let body_holds (m : Atom.Set.t) (body : Rule.body_elt list) : bool =
  let atoms = Atom.Set.elements m in
  let by_pred = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      let key = (a.pred, Atom.arity a) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_pred key) in
      Hashtbl.replace by_pred key (a :: existing))
    atoms;
  let candidates (a : Atom.t) =
    Option.value ~default:[] (Hashtbl.find_opt by_pred (a.pred, Atom.arity a))
  in
  (* positive literals first, then comparisons, then negatives/aggregates *)
  let pos, rest = List.partition (function Rule.Pos _ -> true | _ -> false) body in
  let cmps, negs = List.partition (function Rule.Cmp _ -> true | _ -> false) rest in
  let ordered = pos @ cmps @ negs in
  let rec go subst = function
    | [] -> true
    | Rule.Count c :: rest -> (
      match Rule.apply_body_elt subst (Rule.Count c) with
      | Rule.Count c' -> count_holds m c' && go subst rest
      | _ -> false)
    | Rule.Pos a :: rest ->
      let a' = Atom.apply subst a in
      if Atom.is_ground a' then
        match Atom.eval a' with
        | Some ga -> Atom.Set.mem ga m && go subst rest
        | None -> false
      else
        List.exists
          (fun cand ->
            match Atom.match_atom subst a' cand with
            | Some subst' -> go subst' rest
            | None -> false)
          (candidates a')
    | Rule.Cmp (op, t1, t2) :: rest -> (
      let t1' = Term.apply subst t1 and t2' = Term.apply subst t2 in
      match (op, t1', t2') with
      | Rule.Eq, Term.Var v, t when Term.eval t <> None ->
        go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
      | Rule.Eq, t, Term.Var v when Term.eval t <> None ->
        go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
      | _ -> (
        match (Term.eval t1', Term.eval t2') with
        | Some v1, Some v2 -> Rule.eval_cmp op v1 v2 && go subst rest
        | _ -> false))
    | Rule.Neg a :: rest -> (
      let a' = Atom.apply subst a in
      match Atom.eval a' with
      | Some ga when Atom.is_ground ga ->
        (not (Atom.Set.mem ga m)) && go subst rest
      | _ -> false)
  in
  go Term.subst_empty ordered

(** Is a constraint violated by [m]? (Its body holds.) Non-constraint
    rules are never "violated" in this sense. *)
let violates (m : Atom.Set.t) (r : Rule.t) : bool =
  match r.Rule.head with
  | Rule.Falsity -> body_holds m r.Rule.body
  | Rule.Head _ | Rule.Choice _ | Rule.Weak _ -> false

(** All substitutions (as ground body instances) making [body] hold —
    used to explain {e why} a constraint fired. *)
let satisfying_instances (m : Atom.Set.t) (body : Rule.body_elt list) :
    Rule.body_elt list list =
  let results = ref [] in
  let atoms = Atom.Set.elements m in
  let candidates (a : Atom.t) =
    List.filter
      (fun (c : Atom.t) ->
        String.equal c.pred a.pred && Atom.arity c = Atom.arity a)
      atoms
  in
  let pos, rest = List.partition (function Rule.Pos _ -> true | _ -> false) body in
  let cmps, negs = List.partition (function Rule.Cmp _ -> true | _ -> false) rest in
  let ordered = pos @ cmps @ negs in
  let rec go subst = function
    | [] ->
      results := List.map (Rule.apply_body_elt subst) body :: !results
    | Rule.Count c :: rest -> (
      match Rule.apply_body_elt subst (Rule.Count c) with
      | Rule.Count c' -> if count_holds m c' then go subst rest
      | _ -> ())
    | Rule.Pos a :: rest ->
      let a' = Atom.apply subst a in
      if Atom.is_ground a' then begin
        match Atom.eval a' with
        | Some ga -> if Atom.Set.mem ga m then go subst rest
        | None -> ()
      end
      else
        List.iter
          (fun cand ->
            match Atom.match_atom subst a' cand with
            | Some subst' -> go subst' rest
            | None -> ())
          (candidates a')
    | Rule.Cmp (op, t1, t2) :: rest -> (
      let t1' = Term.apply subst t1 and t2' = Term.apply subst t2 in
      match (op, t1', t2') with
      | Rule.Eq, Term.Var v, t when Term.eval t <> None ->
        go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
      | Rule.Eq, t, Term.Var v when Term.eval t <> None ->
        go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
      | _ -> (
        match (Term.eval t1', Term.eval t2') with
        | Some v1, Some v2 -> if Rule.eval_cmp op v1 v2 then go subst rest
        | _ -> ()))
    | Rule.Neg a :: rest -> (
      let a' = Atom.apply subst a in
      match Atom.eval a' with
      | Some ga when Atom.is_ground ga ->
        if not (Atom.Set.mem ga m) then go subst rest
      | _ -> ())
  in
  go Term.subst_empty ordered;
  List.rev !results

(** Total cost a weak constraint contributes on a model: the sum of its
    weight over all distinct satisfying ground instances of its body.
    Zero for non-weak rules. *)
let weak_cost (m : Atom.Set.t) (r : Rule.t) : int =
  match r.Rule.head with
  | Rule.Weak weight ->
    let seen = Hashtbl.create 8 in
    let total = ref 0 in
    let atoms = Atom.Set.elements m in
    let candidates (a : Atom.t) =
      List.filter
        (fun (c : Atom.t) ->
          String.equal c.pred a.pred && Atom.arity c = Atom.arity a)
        atoms
    in
    let pos, rest =
      List.partition (function Rule.Pos _ -> true | _ -> false) r.Rule.body
    in
    let cmps, negs =
      List.partition (function Rule.Cmp _ -> true | _ -> false) rest
    in
    let ordered = pos @ cmps @ negs in
    let rec go subst = function
      | Rule.Count c :: rest -> (
        match Rule.apply_body_elt subst (Rule.Count c) with
        | Rule.Count c' -> if count_holds m c' then go subst rest
        | _ -> ())
      | [] -> (
        let instance =
          String.concat ";"
            (List.map
               (fun e -> Fmt.str "%a" Rule.pp_body_elt (Rule.apply_body_elt subst e))
               r.Rule.body)
        in
        if not (Hashtbl.mem seen instance) then begin
          Hashtbl.replace seen instance ();
          match Term.eval (Term.apply subst weight) with
          | Some (Term.Int w) -> total := !total + w
          | Some _ | None -> ()
        end)
      | Rule.Pos a :: rest ->
        let a' = Atom.apply subst a in
        if Atom.is_ground a' then begin
          match Atom.eval a' with
          | Some ga -> if Atom.Set.mem ga m then go subst rest
          | None -> ()
        end
        else
          List.iter
            (fun cand ->
              match Atom.match_atom subst a' cand with
              | Some subst' -> go subst' rest
              | None -> ())
            (candidates a')
      | Rule.Cmp (op, t1, t2) :: rest -> (
        let t1' = Term.apply subst t1 and t2' = Term.apply subst t2 in
        match (op, t1', t2') with
        | Rule.Eq, Term.Var v, t when Term.eval t <> None ->
          go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
        | Rule.Eq, t, Term.Var v when Term.eval t <> None ->
          go (Term.subst_bind v (Option.get (Term.eval t)) subst) rest
        | _ -> (
          match (Term.eval t1', Term.eval t2') with
          | Some v1, Some v2 -> if Rule.eval_cmp op v1 v2 then go subst rest
          | _ -> ()))
      | Rule.Neg a :: rest -> (
        let a' = Atom.apply subst a in
        match Atom.eval a' with
        | Some ga when Atom.is_ground ga ->
          if not (Atom.Set.mem ga m) then go subst rest
        | _ -> ())
    in
    go Term.subst_empty ordered;
    !total
  | Rule.Head _ | Rule.Falsity | Rule.Choice _ -> 0
