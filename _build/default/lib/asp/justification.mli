(** Justifications: non-circular derivation trees showing why an atom
    belongs to an answer set, built by replaying the reduct's least
    fixpoint. *)

type t =
  | Fact of Atom.t
  | Derived of {
      atom : Atom.t;
      rule : Grounder.ground_rule;  (** the rule that fired *)
      premises : t list;  (** justifications of the positive body *)
      absent : Atom.t list;  (** negative body atoms, false in the model *)
    }
  | Chosen of {
      atom : Atom.t;
      premises : t list;  (** the choice rule's positive body *)
      absent : Atom.t list;
    }

(** The atom a justification explains. *)
val atom_of : t -> Atom.t

(** Justify every atom of a stable model. *)
val justify_all : Grounder.ground_program -> Solver.model -> t Atom.Map.t

(** Justification for one atom, if derivable. *)
val justify : Grounder.ground_program -> Solver.model -> Atom.t -> t option

(** Height of the derivation tree (a fact has depth 1). *)
val depth : t -> int

val pp : ?indent:int -> Format.formatter -> t -> unit
val to_string : t -> string
