(** Stable-model (answer-set) computation.

    The solver grounds the program, narrows the search space with
    well-founded propagation, then runs a DPLL-style search over the
    remaining unknown atoms. Each complete assignment is verified against
    the Gelfond–Lifschitz condition (least model of the reduct equals the
    candidate), so the search is sound and complete for normal rules,
    constraints, and choice rules with cardinality bounds. *)

type model = Atom.Set.t

let pp_model ppf m =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Atom.pp) (Atom.Set.elements m)

let model_to_string m = Fmt.str "%a" pp_model m

type value = True | False | Unknown

exception Conflict
exception Done

(* Integer-indexed view of the ground program. *)
type irule = {
  ihead : ihead;
  ipos : int array;
  ineg : int array;
}

and ihead =
  | IAtom of int
  | IFalse
  | IWeak of int  (** weight of a weak-constraint instance *)
  | IChoice of int option * int array * int option

type search_state = {
  atoms : Atom.t array;
  rules : irule list;
  rules_by_head : int list array;  (** rule indices that can derive atom i *)
  rule_arr : irule array;
  assignment : value array;
  count_rules : Grounder.ground_rule list;
      (** aggregate-bearing constraints/weak rules, checked on candidate
          models rather than during propagation *)
}

let index_program (gp : Grounder.ground_program) =
  let atoms = Array.of_list (Atom.Set.elements gp.base) in
  let id_of = Hashtbl.create (Array.length atoms * 2) in
  Array.iteri (fun i a -> Hashtbl.replace id_of a i) atoms;
  let id a = Hashtbl.find id_of a in
  let count_rules, plain_rules =
    List.partition
      (fun (r : Grounder.ground_rule) -> r.gcounts <> [])
      gp.grules
  in
  let rules =
    List.map
      (fun (r : Grounder.ground_rule) ->
        {
          ihead =
            (match r.ghead with
            | Grounder.GAtom a -> IAtom (id a)
            | Grounder.GFalse -> IFalse
            | Grounder.GWeak w -> IWeak w
            | Grounder.GChoice (l, ats, u) ->
              IChoice (l, Array.of_list (List.map id ats), u));
          ipos = Array.of_list (List.map id r.gpos);
          ineg = Array.of_list (List.map id r.gneg);
        })
      plain_rules
  in
  let rule_arr = Array.of_list rules in
  let rules_by_head = Array.make (Array.length atoms) [] in
  Array.iteri
    (fun ri r ->
      match r.ihead with
      | IAtom h -> rules_by_head.(h) <- ri :: rules_by_head.(h)
      | IFalse | IWeak _ -> ()
      | IChoice (_, ats, _) ->
        Array.iter (fun a -> rules_by_head.(a) <- ri :: rules_by_head.(a)) ats)
    rule_arr;
  {
    atoms;
    rules;
    rules_by_head;
    rule_arr;
    assignment = Array.make (Array.length atoms) Unknown;
    count_rules;
  }

(* -- Propagation ------------------------------------------------------- *)

let body_status st r =
  (* Tri-valued status of a rule body: [`Sat], [`Blocked], or [`Open]. *)
  let blocked = ref false and open_ = ref false in
  Array.iter
    (fun a ->
      match st.assignment.(a) with
      | True -> ()
      | False -> blocked := true
      | Unknown -> open_ := true)
    r.ipos;
  Array.iter
    (fun a ->
      match st.assignment.(a) with
      | False -> ()
      | True -> blocked := true
      | Unknown -> open_ := true)
    r.ineg;
  if !blocked then `Blocked else if !open_ then `Open else `Sat

(** A rule can still support its head atom [a] if its body is not blocked. *)
let rule_supports st ri a =
  let r = st.rule_arr.(ri) in
  match r.ihead with
  | IAtom h -> h = a && body_status st r <> `Blocked
  | IChoice (_, ats, _) ->
    Array.exists (fun x -> x = a) ats && body_status st r <> `Blocked
  | IFalse | IWeak _ -> false

let set st i v =
  match st.assignment.(i) with
  | Unknown -> st.assignment.(i) <- v; true
  | existing -> if existing = v then false else raise Conflict

(** Deterministic consequences at the current assignment. Raises [Conflict]
    when a constraint fires or a forced value contradicts the assignment. *)
let propagate st =
  let changed = ref true in
  while !changed do
    changed := false;
    (* forward: satisfied bodies derive their normal heads *)
    List.iter
      (fun r ->
        match r.ihead with
        | IAtom h ->
          if body_status st r = `Sat then
            if set st h True then changed := true
        | IFalse -> (
          match body_status st r with
          | `Sat -> raise Conflict
          | `Open ->
            (* unit propagation on constraints *)
            let unknown_pos = ref [] and unknown_neg = ref [] in
            Array.iter
              (fun a -> if st.assignment.(a) = Unknown then unknown_pos := a :: !unknown_pos)
              r.ipos;
            Array.iter
              (fun a -> if st.assignment.(a) = Unknown then unknown_neg := a :: !unknown_neg)
              r.ineg;
            (match (!unknown_pos, !unknown_neg) with
            | [ a ], [] -> if set st a False then changed := true
            | [], [ a ] -> if set st a True then changed := true
            | _ -> ())
          | `Blocked -> ())
        | IWeak _ -> ()
        | IChoice (lower, ats, upper) ->
          if body_status st r = `Sat then begin
            let n_true = ref 0 and n_unknown = ref 0 in
            Array.iter
              (fun a ->
                match st.assignment.(a) with
                | True -> incr n_true
                | Unknown -> incr n_unknown
                | False -> ())
              ats;
            (match upper with
            | Some u ->
              if !n_true > u then raise Conflict
              else if !n_true = u && !n_unknown > 0 then
                (* remaining elements must be false *)
                Array.iter
                  (fun a ->
                    if st.assignment.(a) = Unknown then
                      if set st a False then changed := true)
                  ats
            | None -> ());
            match lower with
            | Some l ->
              if !n_true + !n_unknown < l then raise Conflict
              else if !n_true + !n_unknown = l && !n_unknown > 0 then
                Array.iter
                  (fun a ->
                    if st.assignment.(a) = Unknown then
                      if set st a True then changed := true)
                  ats
            | None -> ()
          end)
      st.rules;
    (* backward: an atom with no remaining support must be false *)
    Array.iteri
      (fun i v ->
        if v = Unknown then
          let supported =
            List.exists (fun ri -> rule_supports st ri i) st.rules_by_head.(i)
          in
          if not supported then if set st i False then changed := true)
      st.assignment
  done

(* -- Stability check --------------------------------------------------- *)

(** Gelfond–Lifschitz check: the least model of the reduct w.r.t. the
    candidate must equal the candidate; constraints and cardinality bounds
    must hold. *)
let is_stable st =
  let in_m i = st.assignment.(i) = True in
  let n = Array.length st.atoms in
  let derived = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let neg_ok = Array.for_all (fun a -> not (in_m a)) r.ineg in
        let pos_ok = Array.for_all (fun a -> derived.(a)) r.ipos in
        if neg_ok && pos_ok then
          match r.ihead with
          | IAtom h ->
            if not derived.(h) then begin
              derived.(h) <- true;
              changed := true
            end
          | IFalse | IWeak _ -> ()
          | IChoice (_, ats, _) ->
            Array.iter
              (fun a ->
                if in_m a && not derived.(a) then begin
                  derived.(a) <- true;
                  changed := true
                end)
              ats)
      st.rules
  done;
  let least_equals_m = ref true in
  for i = 0 to n - 1 do
    if derived.(i) <> in_m i then least_equals_m := false
  done;
  !least_equals_m
  && List.for_all
       (fun r ->
         let body_sat =
           Array.for_all in_m r.ipos
           && Array.for_all (fun a -> not (in_m a)) r.ineg
         in
         match r.ihead with
         | IFalse -> not body_sat
         | IAtom _ | IWeak _ -> true
         | IChoice (lower, ats, upper) ->
           if not body_sat then true
           else begin
             let k = Array.fold_left (fun acc a -> if in_m a then acc + 1 else acc) 0 ats in
             (match lower with Some l -> k >= l | None -> true)
             && match upper with Some u -> k <= u | None -> true
           end)
       st.rules

(* -- Search ------------------------------------------------------------ *)

let extract_model st =
  let m = ref Atom.Set.empty in
  Array.iteri
    (fun i v -> if v = True then m := Atom.Set.add st.atoms.(i) !m)
    st.assignment;
  !m

(** Enumerate stable models of a ground program, up to [limit].
    [wellfounded:false] disables the well-founded narrowing (exposed for
    the ablation benchmark); the result is unchanged, only slower. *)
let solve_ground ?limit ?(wellfounded = true) (gp : Grounder.ground_program) :
    model list =
  let st = index_program gp in
  if wellfounded then begin
    let wf = Wellfounded.compute gp in
    try
      Array.iteri
        (fun i a ->
          if Atom.Set.mem a wf.Wellfounded.lower then ignore (set st i True)
          else if not (Atom.Set.mem a wf.Wellfounded.upper) then
            ignore (set st i False))
        st.atoms
    with Conflict -> ()
  end;
  let found = ref [] in
  let count = ref 0 in
  let aggregate_constraints_ok m =
    List.for_all
      (fun (r : Grounder.ground_rule) ->
        match r.ghead with
        | Grounder.GFalse ->
          let body_sat =
            List.for_all (fun a -> Atom.Set.mem a m) r.gpos
            && List.for_all (fun a -> not (Atom.Set.mem a m)) r.gneg
            && List.for_all (fun c -> Query.count_holds m c) r.gcounts
          in
          not body_sat
        | Grounder.GAtom _ | Grounder.GWeak _ | Grounder.GChoice _ -> true)
      st.count_rules
  in
  let record () =
    if is_stable st then begin
      let m = extract_model st in
      if aggregate_constraints_ok m then begin
        found := m :: !found;
        incr count;
        match limit with Some l when !count >= l -> raise Done | _ -> ()
      end
    end
  in
  let snapshot () = Array.copy st.assignment in
  let restore snap = Array.blit snap 0 st.assignment 0 (Array.length snap) in
  let rec search () =
    match
      (try
         propagate st;
         `Ok
       with Conflict -> `Conflict)
    with
    | `Conflict -> ()
    | `Ok -> (
      (* find an unknown atom to branch on *)
      let rec find i =
        if i >= Array.length st.assignment then None
        else if st.assignment.(i) = Unknown then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> record ()
      | Some i ->
        let snap = snapshot () in
        (* try false first: favours subset-minimal candidates *)
        st.assignment.(i) <- False;
        search ();
        restore snap;
        st.assignment.(i) <- True;
        search ();
        restore snap)
  in
  (try search () with Done -> ());
  List.rev !found

(** Enumerate stable models of a (non-ground) program. *)
let solve ?limit ?wellfounded (p : Program.t) : model list =
  solve_ground ?limit ?wellfounded (Grounder.ground p)

let has_answer_set (p : Program.t) : bool =
  match solve ~limit:1 p with [] -> false | _ -> true

let first_answer_set (p : Program.t) : model option =
  match solve ~limit:1 p with [] -> None | m :: _ -> Some m

(** Atoms true in at least one answer set (brave consequences), restricted
    to a predicate when [pred] is given. *)
let brave_consequences ?pred (p : Program.t) : Atom.Set.t =
  let models = solve p in
  let all = List.fold_left Atom.Set.union Atom.Set.empty models in
  match pred with
  | None -> all
  | Some name -> Atom.Set.filter (fun a -> String.equal a.Atom.pred name) all

(** Atoms true in every answer set (cautious consequences); empty when the
    program has no answer set. *)
let cautious_consequences ?pred (p : Program.t) : Atom.Set.t =
  match solve p with
  | [] -> Atom.Set.empty
  | first :: rest ->
    let inter = List.fold_left Atom.Set.inter first rest in
    (match pred with
    | None -> inter
    | Some name -> Atom.Set.filter (fun a -> String.equal a.Atom.pred name) inter)

(* -- Optimization (weak constraints) ----------------------------------- *)

(** Cost of a model: the summed weights of the weak-constraint instances
    whose bodies it satisfies. *)
let model_cost (gp : Grounder.ground_program) (m : model) : int =
  List.fold_left
    (fun acc (r : Grounder.ground_rule) ->
      match r.ghead with
      | Grounder.GWeak w ->
        let body_sat =
          List.for_all (fun a -> Atom.Set.mem a m) r.gpos
          && List.for_all (fun a -> not (Atom.Set.mem a m)) r.gneg
          && List.for_all (fun c -> Query.count_holds m c) r.gcounts
        in
        if body_sat then acc + w else acc
      | Grounder.GAtom _ | Grounder.GFalse | Grounder.GChoice _ -> acc)
    0 gp.grules

(** Stable models ranked by weak-constraint cost, cheapest first. *)
let solve_ranked ?limit (p : Program.t) : (model * int) list =
  let gp = Grounder.ground p in
  let models = solve_ground ?limit gp in
  List.map (fun m -> (m, model_cost gp m)) models
  |> List.stable_sort (fun (_, c1) (_, c2) -> Int.compare c1 c2)

(** The optimal stable models (all tied at minimal cost) and their cost.
    [None] when the program has no stable model. *)
let solve_optimal ?limit (p : Program.t) : (model list * int) option =
  match solve_ranked ?limit p with
  | [] -> None
  | (_, best) :: _ as ranked ->
    Some (List.map fst (List.filter (fun (_, c) -> c = best) ranked), best)
