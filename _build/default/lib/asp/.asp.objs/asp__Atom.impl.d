lib/asp/atom.ml: Fmt List Map Set String Term
