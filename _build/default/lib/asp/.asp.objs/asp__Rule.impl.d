lib/asp/rule.ml: Atom Fmt List Stdlib Term
