lib/asp/rule.mli: Atom Format Term
