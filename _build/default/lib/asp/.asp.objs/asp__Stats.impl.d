lib/asp/stats.ml: Fmt Fun Printf Sys
