lib/asp/stats.mli: Format
