lib/asp/grounder.mli: Atom Format Program Rule
