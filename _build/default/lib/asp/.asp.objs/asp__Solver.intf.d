lib/asp/solver.mli: Atom Format Grounder Program
