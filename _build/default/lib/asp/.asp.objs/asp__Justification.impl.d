lib/asp/justification.ml: Atom Fmt Grounder List Solver String
