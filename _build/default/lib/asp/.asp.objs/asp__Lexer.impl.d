lib/asp/lexer.ml: Buffer List Printf String
