lib/asp/grounder.ml: Array Atom Dependency Fmt Hashtbl Int List Program Rule Stats String Term
