lib/asp/grounder.ml: Atom Fmt Hashtbl List Option Program Rule String Term
