lib/asp/parser.ml: Atom Lexer List Printf Program Rule Term
