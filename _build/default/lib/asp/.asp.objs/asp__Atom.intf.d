lib/asp/atom.mli: Format Map Set Term
