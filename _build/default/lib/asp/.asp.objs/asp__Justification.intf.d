lib/asp/justification.mli: Atom Format Grounder Solver
