lib/asp/dependency.ml: Atom Hashtbl List Map Option Program Rule Stdlib
