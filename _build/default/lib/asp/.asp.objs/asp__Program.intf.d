lib/asp/program.mli: Atom Format Rule
