lib/asp/solver.ml: Array Atom Fmt Grounder Hashtbl Int List Program Query Stats String
