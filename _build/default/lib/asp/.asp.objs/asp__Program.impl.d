lib/asp/program.ml: Atom Fmt Hashtbl List Rule Stdlib
