lib/asp/wellfounded.ml: Atom Grounder List
