lib/asp/wellfounded.ml: Array Atom Grounder Hashtbl List
