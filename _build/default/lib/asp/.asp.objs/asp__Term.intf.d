lib/asp/term.mli: Format Map
