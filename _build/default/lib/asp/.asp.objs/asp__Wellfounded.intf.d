lib/asp/wellfounded.mli: Atom Grounder
