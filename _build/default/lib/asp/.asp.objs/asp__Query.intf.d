lib/asp/query.mli: Atom Rule
