lib/asp/dependency.mli: Map Program
