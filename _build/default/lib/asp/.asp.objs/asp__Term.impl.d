lib/asp/term.ml: Fmt Int List Map Option Stdlib String
