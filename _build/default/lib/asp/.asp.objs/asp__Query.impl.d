lib/asp/query.ml: Atom Fmt Hashtbl List Option Rule String Term
