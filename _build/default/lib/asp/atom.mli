(** Predicate atoms: a predicate name applied to terms. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t

(** A propositional atom (no arguments). *)
val prop : string -> t

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val is_ground : t -> bool

(** Free variables, in first-occurrence order, without duplicates. *)
val vars : t -> string list

val apply : Term.subst -> t -> t

(** Evaluate arithmetic inside the arguments; [None] if any argument
    fails to evaluate. *)
val eval : t -> t option

(** One-way matching of a pattern atom against a ground atom. *)
val match_atom : Term.subst -> t -> t -> Term.subst option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Ord : Set.OrderedType with type t = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
