(** Justifications: non-circular derivation trees showing {e why} an atom
    belongs to an answer set. Replays the least-fixpoint construction of
    the Gelfond–Lifschitz reduct, recording for each derived atom the
    first rule that fired for it; the resulting trees are well-founded
    (children always derived strictly earlier). Atoms contributed by
    choice rules are justified as choices, with the enabling body. *)

type t =
  | Fact of Atom.t  (** derived by a rule with an empty positive body *)
  | Derived of {
      atom : Atom.t;
      rule : Grounder.ground_rule;  (** the rule that fired *)
      premises : t list;  (** justifications of the positive body *)
      absent : Atom.t list;  (** negative body atoms, false in the model *)
    }
  | Chosen of {
      atom : Atom.t;
      premises : t list;  (** the choice rule's positive body *)
      absent : Atom.t list;
    }

let atom_of = function
  | Fact a -> a
  | Derived { atom; _ } -> atom
  | Chosen { atom; _ } -> atom

(** Justify every atom of a stable model [m] of [gp]. Returns a map from
    atoms to justification trees. Assumes [m] is indeed stable; atoms not
    derivable (should not happen for stable models) are absent from the
    result. *)
let justify_all (gp : Grounder.ground_program) (m : Solver.model) :
    t Atom.Map.t =
  let in_m a = Atom.Set.mem a m in
  let table : t Atom.Map.t ref = ref Atom.Map.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Grounder.ground_rule) ->
        let premises_ready =
          List.for_all (fun a -> Atom.Map.mem a !table) r.gpos
        in
        let neg_ok = List.for_all (fun a -> not (in_m a)) r.gneg in
        if premises_ready && neg_ok then begin
          let premises = List.map (fun a -> Atom.Map.find a !table) r.gpos in
          match r.ghead with
          | Grounder.GAtom h when in_m h && not (Atom.Map.mem h !table) ->
            let j =
              if r.gpos = [] && r.gneg = [] then Fact h
              else Derived { atom = h; rule = r; premises; absent = r.gneg }
            in
            table := Atom.Map.add h j !table;
            changed := true
          | Grounder.GChoice (_, atoms, _) ->
            List.iter
              (fun a ->
                if in_m a && not (Atom.Map.mem a !table) then begin
                  table :=
                    Atom.Map.add a
                      (Chosen { atom = a; premises; absent = r.gneg })
                      !table;
                  changed := true
                end)
              atoms
          | Grounder.GAtom _ | Grounder.GFalse | Grounder.GWeak _ -> ()
        end)
      gp.grules
  done;
  !table

(** Justification for one atom of a stable model, if derivable. *)
let justify (gp : Grounder.ground_program) (m : Solver.model) (a : Atom.t) :
    t option =
  Atom.Map.find_opt a (justify_all gp m)

let rec depth = function
  | Fact _ -> 1
  | Derived { premises; _ } | Chosen { premises; _ } ->
    1 + List.fold_left (fun acc j -> max acc (depth j)) 0 premises

let rec pp ?(indent = 0) ppf (j : t) =
  let pad = String.make (2 * indent) ' ' in
  match j with
  | Fact a -> Fmt.pf ppf "%s%a  (fact)@." pad Atom.pp a
  | Derived { atom; premises; absent; _ } ->
    Fmt.pf ppf "%s%a  because@." pad Atom.pp atom;
    List.iter (pp ~indent:(indent + 1) ppf) premises;
    List.iter
      (fun a ->
        Fmt.pf ppf "%s  not %a  (absent)@." pad Atom.pp a)
      absent
  | Chosen { atom; premises; absent } ->
    Fmt.pf ppf "%s%a  (chosen)@." pad Atom.pp atom;
    List.iter (pp ~indent:(indent + 1) ppf) premises;
    List.iter
      (fun a -> Fmt.pf ppf "%s  not %a  (absent)@." pad Atom.pp a)
      absent

let to_string j = Fmt.str "%a" (pp ~indent:0) j
