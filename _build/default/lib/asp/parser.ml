(** Recursive-descent parser for the textual ASP syntax.

    Grammar (informal; [..] marks repetition):
    {v
      program    ::= statement..
      statement  ::= rule DOT
      rule       ::= head [IF body] | IF body
      head       ::= atom | choice
      choice     ::= [INT] LBRACE choice_elt (SEMI choice_elt).. RBRACE [INT]
      choice_elt ::= atom [COLON atom (COMMA atom)..]
      body       ::= body_elt (COMMA body_elt)..
      body_elt   ::= NOT atom | atom | term cmp term
      term       ::= sum; sum ::= product ((PLUS|MINUS) product)..
      product    ::= primary ((STAR|SLASH|BACKSLASH) primary)..
      primary    ::= INT | MINUS INT | VARIABLE | IDENT [LPAREN terms RPAREN]
                   | STRING | LPAREN term RPAREN
      interval   ::= primary DOTDOT primary   (only at argument position)
    v} *)

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let make_state input = { toks = Lexer.tokenize input }
let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
            (Lexer.token_to_string got)))

let rec parse_term st = parse_sum st

and parse_sum st =
  let left = parse_product st in
  let rec loop left =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Term.Binop (Term.Add, left, parse_product st))
    | Lexer.MINUS ->
      advance st;
      loop (Term.Binop (Term.Sub, left, parse_product st))
    | _ -> left
  in
  loop left

and parse_product st =
  let left = parse_primary st in
  let rec loop left =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Term.Binop (Term.Mul, left, parse_primary st))
    | Lexer.SLASH ->
      advance st;
      loop (Term.Binop (Term.Div, left, parse_primary st))
    | Lexer.BACKSLASH ->
      advance st;
      loop (Term.Binop (Term.Mod, left, parse_primary st))
    | _ -> left
  in
  loop left

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Term.Int n
  | Lexer.MINUS ->
    advance st;
    (match peek st with
    | Lexer.INT n ->
      advance st;
      Term.Int (-n)
    | _ ->
      let t = parse_primary st in
      Term.Binop (Term.Sub, Term.Int 0, t))
  | Lexer.VARIABLE v ->
    advance st;
    Term.Var v
  | Lexer.STRING s ->
    advance st;
    Term.Fun ("\"" ^ s ^ "\"", [])
  | Lexer.IDENT f ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_term_args st in
      expect st Lexer.RPAREN;
      Term.Fun (f, args)
    end
    else Term.Fun (f, [])
  | Lexer.LPAREN ->
    advance st;
    let t = parse_term st in
    expect st Lexer.RPAREN;
    t
  | tok ->
    raise
      (Parse_error
         (Printf.sprintf "expected a term but found %s"
            (Lexer.token_to_string tok)))

(** Term at argument position, possibly an interval [l..u]. *)
and parse_arg st =
  let t = parse_term st in
  if peek st = Lexer.DOTDOT then begin
    advance st;
    let u = parse_term st in
    Term.Interval (t, u)
  end
  else t

and parse_term_args st =
  let first = parse_arg st in
  let rec loop acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      loop (parse_arg st :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let parse_atom st =
  match peek st with
  | Lexer.IDENT pred ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_term_args st in
      expect st Lexer.RPAREN;
      Atom.make pred args
    end
    else Atom.prop pred
  | tok ->
    raise
      (Parse_error
         (Printf.sprintf "expected an atom but found %s"
            (Lexer.token_to_string tok)))

let cmp_of_token = function
  | Lexer.EQ -> Some Rule.Eq
  | Lexer.NEQ -> Some Rule.Neq
  | Lexer.LT -> Some Rule.Lt
  | Lexer.LE -> Some Rule.Le
  | Lexer.GT -> Some Rule.Gt
  | Lexer.GE -> Some Rule.Ge
  | _ -> None

let rec parse_body_elt st =
  match peek st with
  | Lexer.COUNT ->
    advance st;
    expect st Lexer.LBRACE;
    let tuple = parse_term_args st in
    expect st Lexer.COLON;
    let conditions = parse_count_conditions st in
    expect st Lexer.RBRACE;
    let count_op =
      match cmp_of_token (peek st) with
      | Some op ->
        advance st;
        op
      | None -> raise (Parse_error "expected a comparison after #count { }")
    in
    let bound = parse_term st in
    Rule.Count { Rule.tuple; conditions; count_op; bound }
  | Lexer.NOT ->
    advance st;
    Rule.Neg (parse_atom st)
  | Lexer.IDENT _ -> (
    (* Could be an atom or the left side of a comparison like [f(X) < g(Y)].
       Parse a term first; if a comparison operator follows, it was a term. *)
    let t = parse_arg st in
    match cmp_of_token (peek st) with
    | Some op ->
      advance st;
      Rule.Cmp (op, t, parse_arg st)
    | None -> (
      match t with
      | Term.Fun (pred, args) -> Rule.Pos (Atom.make pred args)
      | _ -> raise (Parse_error "expected an atom in rule body")))
  | _ -> (
    let t = parse_arg st in
    match cmp_of_token (peek st) with
    | Some op ->
      advance st;
      Rule.Cmp (op, t, parse_arg st)
    | None -> raise (Parse_error "expected a comparison operator"))

and parse_count_conditions st =
  let first = parse_body_elt st in
  (match first with
  | Rule.Count _ -> raise (Parse_error "nested #count is not supported")
  | _ -> ());
  let rec loop acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      match parse_body_elt st with
      | Rule.Count _ -> raise (Parse_error "nested #count is not supported")
      | e -> loop (e :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let parse_body st =
  let first = parse_body_elt st in
  let rec loop acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      loop (parse_body_elt st :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let parse_choice_elt st =
  let atom = parse_atom st in
  if peek st = Lexer.COLON then begin
    advance st;
    let first = parse_atom st in
    let rec loop acc =
      if peek st = Lexer.COMMA then begin
        advance st;
        loop (parse_atom st :: acc)
      end
      else List.rev acc
    in
    { Rule.choice_atom = atom; condition = loop [ first ] }
  end
  else { Rule.choice_atom = atom; condition = [] }

let parse_choice st lower =
  expect st Lexer.LBRACE;
  let elts =
    if peek st = Lexer.RBRACE then []
    else begin
      let first = parse_choice_elt st in
      let rec loop acc =
        if peek st = Lexer.SEMI then begin
          advance st;
          loop (parse_choice_elt st :: acc)
        end
        else List.rev acc
      in
      loop [ first ]
    end
  in
  expect st Lexer.RBRACE;
  let upper =
    match peek st with
    | Lexer.INT u ->
      advance st;
      Some u
    | _ -> None
  in
  Rule.Choice (lower, elts, upper)

let parse_rule st =
  match peek st with
  | Lexer.IF ->
    advance st;
    let body = parse_body st in
    expect st Lexer.DOT;
    Rule.constraint_ body
  | Lexer.WEAK_IF ->
    advance st;
    let body = parse_body st in
    expect st Lexer.DOT;
    expect st Lexer.LBRACKET;
    let weight = parse_term st in
    expect st Lexer.RBRACKET;
    Rule.weak weight body
  | _ ->
    let head =
      match peek st with
      | Lexer.LBRACE -> parse_choice st None
      | Lexer.INT l when peek2 st = Lexer.LBRACE ->
        advance st;
        parse_choice st (Some l)
      | _ -> Rule.Head (parse_atom st)
    in
    let body =
      if peek st = Lexer.IF then begin
        advance st;
        parse_body st
      end
      else []
    in
    expect st Lexer.DOT;
    { Rule.head; body }

(** Parse a full program from a string. Raises [Parse_error] or
    [Lexer.Lex_error] on malformed input. *)
let parse_program input =
  let st = { toks = Lexer.tokenize input } in
  let rec loop acc =
    if peek st = Lexer.EOF then List.rev acc else loop (parse_rule st :: acc)
  in
  Program.of_rules (loop [])

(** Parse a single ground-or-not atom from a string. *)
let parse_atom_string input =
  let st = { toks = Lexer.tokenize input } in
  let a = parse_atom st in
  expect st Lexer.EOF;
  a

(** Parse a single rule (with trailing dot) from a string. *)
let parse_rule_string input =
  let st = { toks = Lexer.tokenize input } in
  let r = parse_rule st in
  expect st Lexer.EOF;
  r
