(** Annotated ASP programs — the semantic side of an answer set grammar
    (Definition 1): atoms may carry a child site [@i]; instantiating a
    rule at a node with trace [t] renames [a@i] to [a@(t ++ [i])] and a
    plain [a] to [a@t], with traces folded into predicate names so the
    plain ASP engine applies unchanged. *)

type aatom = {
  atom : Asp.Atom.t;
  site : int option;  (** [Some i] = annotation [@i]; [None] = this node *)
}

type body_elt =
  | Pos of aatom
  | Neg of aatom
  | Cmp of Asp.Rule.cmp_op * Asp.Term.t * Asp.Term.t

type choice_elt = { choice_atom : aatom; condition : aatom list }

type head =
  | Head of aatom
  | Falsity
  | Weak of Asp.Term.t  (** preference: violating costs the weight *)
  | Choice of int option * choice_elt list * int option

type rule = { head : head; body : body_elt list }
type program = rule list

(** {2 Construction} *)

val at : ?site:int -> Asp.Atom.t -> aatom
val fact : ?site:int -> Asp.Atom.t -> rule
val constraint_ : body_elt list -> rule

(** Lift plain ASP (used for contexts [G(C)]): every atom refers to the
    node itself. *)
val of_asp_rule : Asp.Rule.t -> rule

val of_asp_program : Asp.Program.t -> program

(** {2 Trace instantiation} *)

(** ["p"] at trace [[1;2]] becomes ["p@1_2"]; the empty trace leaves the
    name unchanged. *)
val mangle_pred : string -> int list -> string

val instantiate_atom : int list -> aatom -> Asp.Atom.t
val instantiate_rule : int list -> rule -> Asp.Rule.t
val instantiate_program : int list -> program -> Asp.Rule.t list

(** {2 Parsing (ASP syntax plus [@i] sites and [:~ ... [w]])} *)

exception Parse_error of string

type pstate = Asp.Parser.state

val parse_rule : pstate -> rule
val parse : string -> program
val parse_rule_string : string -> rule

(** {2 Printing and comparison} *)

val pp_aatom : Format.formatter -> aatom -> unit
val pp_body_elt : Format.formatter -> body_elt -> unit
val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> program -> unit
val rule_to_string : rule -> string
val to_string : program -> string
val compare_rule : rule -> rule -> int
val equal_rule : rule -> rule -> bool
