(** Enumerating the language of an ASG — the {e policy generation}
    operation: given a generative policy model (an ASG) and a context, the
    valid policies are exactly the strings of [L(G(C))]. *)

(** All sentences of [L(G)] derivable within [max_depth], capped at
    [limit] candidate trees. *)
let sentences ?(max_depth = 8) ?(limit = 10_000) (g : Gpm.t) : string list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let inspected = ref 0 in
  (try
     Seq.iter
       (fun tree ->
         if !inspected >= limit then raise Exit;
         incr inspected;
         let s = Grammar.Parse_tree.to_sentence tree in
         if not (Hashtbl.mem seen s) then
           if Membership.tree_accepted g tree then begin
             Hashtbl.replace seen s ();
             out := s :: !out
           end)
       (Grammar.Generator.trees ~max_depth (Gpm.cfg g))
   with Exit -> ());
  List.rev !out

(** The valid policies in a given context: [L(G(C))] up to [max_depth]. *)
let sentences_in_context ?max_depth ?limit (g : Gpm.t)
    ~(context : Asp.Program.t) : string list =
  sentences ?max_depth ?limit (Gpm.with_context g context)

(* -- Preference-ranked generation (utility-based policies) -------------- *)

(** Sentences of [L(G)] ranked by cost: the minimal weak-constraint cost of
    any answer set of any of the sentence's tree programs. This realizes
    the paper's third policy type — utility-based policies that "produce
    the best consequence according to some value function" — with the
    value function expressed as [:~ body. [w]] annotations. *)
let ranked_sentences ?(max_depth = 8) ?(limit = 10_000) (g : Gpm.t) :
    (string * int) list =
  let best = Hashtbl.create 16 in
  let inspected = ref 0 in
  (try
     Seq.iter
       (fun tree ->
         if !inspected >= limit then raise Exit;
         incr inspected;
         let s = Grammar.Parse_tree.to_sentence tree in
         match Asp.Solver.solve_optimal (Tree_program.program g tree) with
         | None -> ()
         | Some (_, cost) -> (
           match Hashtbl.find_opt best s with
           | Some c when c <= cost -> ()
           | _ -> Hashtbl.replace best s cost))
       (Grammar.Generator.trees ~max_depth (Gpm.cfg g))
   with Exit -> ());
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) best []
  |> List.stable_sort (fun (s1, c1) (s2, c2) ->
         let c = Int.compare c1 c2 in
         if c <> 0 then c else String.compare s1 s2)

let ranked_sentences_in_context ?max_depth ?limit (g : Gpm.t)
    ~(context : Asp.Program.t) : (string * int) list =
  ranked_sentences ?max_depth ?limit (Gpm.with_context g context)

(** The best (minimal-cost) valid policy in a context, if any. *)
let best_sentence ?max_depth ?limit (g : Gpm.t) ~(context : Asp.Program.t) :
    (string * int) option =
  match ranked_sentences_in_context ?max_depth ?limit g ~context with
  | [] -> None
  | first :: _ -> Some first
