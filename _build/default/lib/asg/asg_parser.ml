(** Textual syntax for answer set grammars.

    {v
      start -> policy { :- invalid@1. }
      policy -> "permit" subject | "deny" subject { deny. }
      subject -> "admin" | "user"
    v}

    Each alternative is one production; an optional brace block after an
    alternative holds its annotated ASP program. Terminals are quoted
    (multi-word terminals are split into one terminal per word);
    identifiers are nonterminals. The start symbol is the left-hand side
    of the first statement. *)

exception Parse_error = Asp.Parser.Parse_error

type raw_production = {
  lhs : string;
  rhs : Grammar.Symbol.t list;
  annotation : Annotation.program;
}

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_annotation_block (st : Asp.Parser.state) : Annotation.program =
  Asp.Parser.expect st Asp.Lexer.LBRACE;
  let rec loop acc =
    if Asp.Parser.peek st = Asp.Lexer.RBRACE then begin
      Asp.Parser.advance st;
      List.rev acc
    end
    else loop (Annotation.parse_rule st :: acc)
  in
  loop []

(** Right-hand-side symbols end at [|], [{], EOF, or the start of the next
    statement ([ident ->]). *)
let rec parse_symbols (st : Asp.Parser.state) acc =
  match Asp.Parser.peek st with
  | Asp.Lexer.STRING s ->
    Asp.Parser.advance st;
    let terminals = List.map Grammar.Symbol.terminal (split_words s) in
    parse_symbols st (List.rev_append terminals acc)
  | Asp.Lexer.IDENT name when Asp.Parser.peek2 st <> Asp.Lexer.ARROW ->
    Asp.Parser.advance st;
    parse_symbols st (Grammar.Symbol.nonterminal name :: acc)
  | _ -> List.rev acc

let parse_alternative (st : Asp.Parser.state) lhs : raw_production =
  let rhs = parse_symbols st [] in
  let annotation =
    if Asp.Parser.peek st = Asp.Lexer.LBRACE then parse_annotation_block st
    else []
  in
  { lhs; rhs; annotation }

let parse_statement (st : Asp.Parser.state) : raw_production list =
  let lhs =
    match Asp.Parser.peek st with
    | Asp.Lexer.IDENT name ->
      Asp.Parser.advance st;
      name
    | tok ->
      raise
        (Parse_error
           (Printf.sprintf "expected a nonterminal but found %s"
              (Asp.Lexer.token_to_string tok)))
  in
  Asp.Parser.expect st Asp.Lexer.ARROW;
  let first = parse_alternative st lhs in
  let rec loop acc =
    if Asp.Parser.peek st = Asp.Lexer.PIPE then begin
      Asp.Parser.advance st;
      loop (parse_alternative st lhs :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

(** Parse an ASG from its textual form. *)
let parse (input : string) : Gpm.t =
  let st = Asp.Parser.make_state input in
  let rec loop acc =
    if Asp.Parser.peek st = Asp.Lexer.EOF then List.rev acc
    else loop (List.rev_append (parse_statement st) acc)
  in
  let raw = loop [] in
  match raw with
  | [] -> raise (Parse_error "empty grammar")
  | first :: _ ->
    let cfg =
      Grammar.Cfg.make ~start:first.lhs
        (List.map (fun r -> (r.lhs, r.rhs)) raw)
    in
    let annotations =
      List.concat
        (List.mapi
           (fun id r -> if r.annotation = [] then [] else [ (id, r.annotation) ])
           raw)
    in
    Gpm.make ~annotations cfg

(* -- Rendering ----------------------------------------------------------- *)

(** Render a grammar back to its textual form; [parse (render g)] yields a
    grammar with the same language and annotations (production ids are
    re-assigned in order). The [shared] (context) rules are intentionally
    not rendered: contexts are runtime inputs, not part of the model. *)
let render (g : Gpm.t) : string =
  let buf = Buffer.create 256 in
  let cfg = Gpm.cfg g in
  List.iter
    (fun (p : Grammar.Production.t) ->
      Buffer.add_string buf p.Grammar.Production.lhs;
      Buffer.add_string buf " ->";
      List.iter
        (fun sym ->
          Buffer.add_char buf ' ';
          match sym with
          | Grammar.Symbol.Terminal t ->
            Buffer.add_string buf (Printf.sprintf "%S" t)
          | Grammar.Symbol.Nonterminal n -> Buffer.add_string buf n)
        p.Grammar.Production.rhs;
      (match Gpm.annotation g p.Grammar.Production.id with
      | [] -> ()
      | rules ->
        Buffer.add_string buf " { ";
        List.iter
          (fun r ->
            Buffer.add_string buf (Annotation.rule_to_string r);
            Buffer.add_char buf ' ')
          rules;
        Buffer.add_string buf "}");
      Buffer.add_char buf '\n')
    (Grammar.Cfg.productions cfg);
  Buffer.contents buf
