(** Textual syntax for answer set grammars:

    {v
      start -> policy { :- invalid@1. }
      policy -> "permit" subject | "deny" subject { deny. }
      subject -> "admin" | "user"
    v}

    Terminals are quoted (multi-word terminals split per word); the brace
    block after an alternative holds its annotated ASP program; the start
    symbol is the first statement's left-hand side. *)

exception Parse_error of string

val parse : string -> Gpm.t

(** Render a grammar back to its textual form; parsing the result yields
    an equivalent grammar (shared context rules are not rendered). *)
val render : Gpm.t -> string
