(** The [G[PT]] mapping (Section II-A): a parse tree of an ASG induces an
    ASP program by instantiating each node's production annotation at the
    node's trace. The string is in the language of the grammar iff some
    parse tree's induced program has an answer set. *)

(** Build the ASP program induced by [tree] under grammar [g]. *)
let program (g : Gpm.t) (tree : Grammar.Parse_tree.t) : Asp.Program.t =
  let rules =
    List.concat_map
      (fun (trace, (p : Grammar.Production.t), _children) ->
        Annotation.instantiate_program trace
          (Gpm.full_annotation g p.Grammar.Production.id))
      (Grammar.Parse_tree.nodes_with_traces tree)
  in
  Asp.Program.of_rules rules

(** The induced program together with extra ground context facts. *)
let program_with_facts g tree facts =
  Asp.Program.with_facts (program g tree) facts
