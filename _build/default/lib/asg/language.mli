(** Enumerating the language of an ASG — policy {e generation}: the valid
    policies of a model under a context are the strings of [L(G(C))]. *)

val sentences : ?max_depth:int -> ?limit:int -> Gpm.t -> string list

val sentences_in_context :
  ?max_depth:int -> ?limit:int -> Gpm.t -> context:Asp.Program.t -> string list

(** {2 Preference-ranked generation (utility-based policies)} *)

(** Sentences ranked by the minimal weak-constraint cost of their
    witnessing answer sets, cheapest first. *)
val ranked_sentences :
  ?max_depth:int -> ?limit:int -> Gpm.t -> (string * int) list

val ranked_sentences_in_context :
  ?max_depth:int ->
  ?limit:int ->
  Gpm.t ->
  context:Asp.Program.t ->
  (string * int) list

(** The minimal-cost valid policy in a context, if any. *)
val best_sentence :
  ?max_depth:int ->
  ?limit:int ->
  Gpm.t ->
  context:Asp.Program.t ->
  (string * int) option
