(** Annotated ASP programs — the semantic side of an answer set grammar.

    Following Definition 1 of the paper, a production rule
    [n0 -> n1 ... nk] carries an annotated ASP program whose atoms may be
    annotated with an integer between 1 and k. Annotation [a@i] refers to
    the i-th child of the node where the production is applied; an
    unannotated atom refers to the node itself. At a node with trace [t],
    [a@i] is instantiated as the ordinary atom [a@(t ++ [i])] and [a] as
    [a@t] (traces are folded into the predicate name, so the plain ASP
    engine can solve the resulting program unchanged). *)

type aatom = {
  atom : Asp.Atom.t;
  site : int option;  (** [Some i] = annotation [@i]; [None] = this node *)
}

type body_elt =
  | Pos of aatom
  | Neg of aatom
  | Cmp of Asp.Rule.cmp_op * Asp.Term.t * Asp.Term.t

type choice_elt = { choice_atom : aatom; condition : aatom list }

type head =
  | Head of aatom
  | Falsity
  | Weak of Asp.Term.t  (** preference: violating costs the weight *)
  | Choice of int option * choice_elt list * int option

type rule = { head : head; body : body_elt list }
type program = rule list

let at ?site atom = { atom; site }
let fact ?site atom = { head = Head (at ?site atom); body = [] }
let constraint_ body = { head = Falsity; body }

(** Lift a plain ASP rule into an unannotated rule (every atom refers to
    the node itself). Used for contexts [G(C)]. *)
let of_asp_rule (r : Asp.Rule.t) : rule =
  let lift a = { atom = a; site = None } in
  let head =
    match r.Asp.Rule.head with
    | Asp.Rule.Head a -> Head (lift a)
    | Asp.Rule.Falsity -> Falsity
    | Asp.Rule.Weak w -> Weak w
    | Asp.Rule.Choice (l, elts, u) ->
      Choice
        ( l,
          List.map
            (fun (e : Asp.Rule.choice_elt) ->
              {
                choice_atom = lift e.choice_atom;
                condition = List.map lift e.condition;
              })
            elts,
          u )
  in
  let body =
    List.map
      (function
        | Asp.Rule.Pos a -> Pos (lift a)
        | Asp.Rule.Neg a -> Neg (lift a)
        | Asp.Rule.Cmp (op, t1, t2) -> Cmp (op, t1, t2)
        | Asp.Rule.Count _ ->
          raise
            (Invalid_argument
               "Annotation.of_asp_rule: aggregates are not supported in \
                grammar annotations"))
      r.Asp.Rule.body
  in
  { head; body }

let of_asp_program (p : Asp.Program.t) : program =
  List.map of_asp_rule (Asp.Program.rules p)

(* -- Trace instantiation ----------------------------------------------- *)

(** Predicate-name mangling: an atom with trace [1;2] over predicate [p]
    becomes predicate ["p@1_2"]; the empty trace leaves the name unchanged
    (the root's annotations are global atoms). *)
let mangle_pred pred (trace : int list) =
  match trace with
  | [] -> pred
  | _ -> pred ^ "@" ^ String.concat "_" (List.map string_of_int trace)

let instantiate_atom (trace : int list) (a : aatom) : Asp.Atom.t =
  let full_trace =
    match a.site with None -> trace | Some i -> trace @ [ i ]
  in
  { a.atom with Asp.Atom.pred = mangle_pred a.atom.Asp.Atom.pred full_trace }

(** Instantiate an annotated rule at the node with trace [t] — the
    [P R @ t] operation of Section II-A. *)
let instantiate_rule (trace : int list) (r : rule) : Asp.Rule.t =
  let head =
    match r.head with
    | Head a -> Asp.Rule.Head (instantiate_atom trace a)
    | Falsity -> Asp.Rule.Falsity
    | Weak w -> Asp.Rule.Weak w
    | Choice (l, elts, u) ->
      Asp.Rule.Choice
        ( l,
          List.map
            (fun e ->
              {
                Asp.Rule.choice_atom = instantiate_atom trace e.choice_atom;
                condition = List.map (instantiate_atom trace) e.condition;
              })
            elts,
          u )
  in
  let body =
    List.map
      (function
        | Pos a -> Asp.Rule.Pos (instantiate_atom trace a)
        | Neg a -> Asp.Rule.Neg (instantiate_atom trace a)
        | Cmp (op, t1, t2) -> Asp.Rule.Cmp (op, t1, t2))
      r.body
  in
  { Asp.Rule.head; body }

let instantiate_program trace (p : program) : Asp.Rule.t list =
  List.map (instantiate_rule trace) p

(* -- Parsing ------------------------------------------------------------ *)

(** Parse annotated ASP text: plain ASP syntax where any atom may be
    followed by [@i]. Reuses the ASP token stream. *)

exception Parse_error = Asp.Parser.Parse_error

type pstate = Asp.Parser.state

let parse_aatom (st : pstate) : aatom =
  let atom = Asp.Parser.parse_atom st in
  if Asp.Parser.peek st = Asp.Lexer.AT then begin
    Asp.Parser.advance st;
    match Asp.Parser.peek st with
    | Asp.Lexer.INT i ->
      Asp.Parser.advance st;
      { atom; site = Some i }
    | tok ->
      raise
        (Parse_error
           (Printf.sprintf "expected child index after @ but found %s"
              (Asp.Lexer.token_to_string tok)))
  end
  else { atom; site = None }

let parse_body_elt (st : pstate) : body_elt =
  match Asp.Parser.peek st with
  | Asp.Lexer.NOT ->
    Asp.Parser.advance st;
    Neg (parse_aatom st)
  | Asp.Lexer.IDENT _ -> (
    let t = Asp.Parser.parse_arg st in
    match Asp.Parser.cmp_of_token (Asp.Parser.peek st) with
    | Some op ->
      Asp.Parser.advance st;
      Cmp (op, t, Asp.Parser.parse_arg st)
    | None -> (
      match t with
      | Asp.Term.Fun (pred, args) ->
        let atom = Asp.Atom.make pred args in
        if Asp.Parser.peek st = Asp.Lexer.AT then begin
          Asp.Parser.advance st;
          match Asp.Parser.peek st with
          | Asp.Lexer.INT i ->
            Asp.Parser.advance st;
            Pos { atom; site = Some i }
          | tok ->
            raise
              (Parse_error
                 (Printf.sprintf "expected child index after @ but found %s"
                    (Asp.Lexer.token_to_string tok)))
        end
        else Pos { atom; site = None }
      | _ -> raise (Parse_error "expected an atom in annotated rule body")))
  | _ -> (
    let t = Asp.Parser.parse_arg st in
    match Asp.Parser.cmp_of_token (Asp.Parser.peek st) with
    | Some op ->
      Asp.Parser.advance st;
      Cmp (op, t, Asp.Parser.parse_arg st)
    | None -> raise (Parse_error "expected a comparison operator"))

let parse_body (st : pstate) : body_elt list =
  let first = parse_body_elt st in
  let rec loop acc =
    if Asp.Parser.peek st = Asp.Lexer.COMMA then begin
      Asp.Parser.advance st;
      loop (parse_body_elt st :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

let parse_choice_elt (st : pstate) : choice_elt =
  let choice_atom = parse_aatom st in
  if Asp.Parser.peek st = Asp.Lexer.COLON then begin
    Asp.Parser.advance st;
    let first = parse_aatom st in
    let rec loop acc =
      if Asp.Parser.peek st = Asp.Lexer.COMMA then begin
        Asp.Parser.advance st;
        loop (parse_aatom st :: acc)
      end
      else List.rev acc
    in
    { choice_atom; condition = loop [ first ] }
  end
  else { choice_atom; condition = [] }

let parse_choice (st : pstate) lower : head =
  Asp.Parser.expect st Asp.Lexer.LBRACE;
  let elts =
    if Asp.Parser.peek st = Asp.Lexer.RBRACE then []
    else begin
      let first = parse_choice_elt st in
      let rec loop acc =
        if Asp.Parser.peek st = Asp.Lexer.SEMI then begin
          Asp.Parser.advance st;
          loop (parse_choice_elt st :: acc)
        end
        else List.rev acc
      in
      loop [ first ]
    end
  in
  Asp.Parser.expect st Asp.Lexer.RBRACE;
  let upper =
    match Asp.Parser.peek st with
    | Asp.Lexer.INT u ->
      Asp.Parser.advance st;
      Some u
    | _ -> None
  in
  Choice (lower, elts, upper)

let parse_rule (st : pstate) : rule =
  match Asp.Parser.peek st with
  | Asp.Lexer.IF ->
    Asp.Parser.advance st;
    let body = parse_body st in
    Asp.Parser.expect st Asp.Lexer.DOT;
    { head = Falsity; body }
  | Asp.Lexer.WEAK_IF ->
    Asp.Parser.advance st;
    let body = parse_body st in
    Asp.Parser.expect st Asp.Lexer.DOT;
    Asp.Parser.expect st Asp.Lexer.LBRACKET;
    let weight = Asp.Parser.parse_term st in
    Asp.Parser.expect st Asp.Lexer.RBRACKET;
    { head = Weak weight; body }
  | _ ->
    let head =
      match Asp.Parser.peek st with
      | Asp.Lexer.LBRACE -> parse_choice st None
      | Asp.Lexer.INT l when Asp.Parser.peek2 st = Asp.Lexer.LBRACE ->
        Asp.Parser.advance st;
        parse_choice st (Some l)
      | _ -> Head (parse_aatom st)
    in
    let body =
      if Asp.Parser.peek st = Asp.Lexer.IF then begin
        Asp.Parser.advance st;
        parse_body st
      end
      else []
    in
    Asp.Parser.expect st Asp.Lexer.DOT;
    { head; body }

(** Parse an annotated program from a string. *)
let parse (input : string) : program =
  let st = Asp.Parser.make_state input in
  let rec loop acc =
    if Asp.Parser.peek st = Asp.Lexer.EOF then List.rev acc
    else loop (parse_rule st :: acc)
  in
  loop []

let parse_rule_string (input : string) : rule =
  let st = Asp.Parser.make_state input in
  let r = parse_rule st in
  Asp.Parser.expect st Asp.Lexer.EOF;
  r

(* -- Pretty printing ----------------------------------------------------- *)

let pp_aatom ppf a =
  match a.site with
  | None -> Asp.Atom.pp ppf a.atom
  | Some i -> Fmt.pf ppf "%a@@%d" Asp.Atom.pp a.atom i

let pp_body_elt ppf = function
  | Pos a -> pp_aatom ppf a
  | Neg a -> Fmt.pf ppf "not %a" pp_aatom a
  | Cmp (op, t1, t2) ->
    Fmt.pf ppf "%a %s %a" Asp.Term.pp t1 (Asp.Rule.cmp_op_to_string op)
      Asp.Term.pp t2

let pp_choice_elt ppf e =
  match e.condition with
  | [] -> pp_aatom ppf e.choice_atom
  | conds ->
    Fmt.pf ppf "%a : %a" pp_aatom e.choice_atom
      Fmt.(list ~sep:(any ", ") pp_aatom)
      conds

let pp_head ppf = function
  | Head a -> pp_aatom ppf a
  | Falsity -> ()
  | Weak _ -> ()
  | Choice (l, elts, u) ->
    let pp_bound ppf = function Some n -> Fmt.pf ppf "%d " n | None -> () in
    let pp_ubound ppf = function Some n -> Fmt.pf ppf " %d" n | None -> () in
    Fmt.pf ppf "%a{ %a }%a" pp_bound l
      Fmt.(list ~sep:(any "; ") pp_choice_elt)
      elts pp_ubound u

let pp_rule ppf (r : rule) =
  match (r.head, r.body) with
  | Head _, [] | Choice _, [] -> Fmt.pf ppf "%a." pp_head r.head
  | Falsity, body ->
    Fmt.pf ppf ":- %a." Fmt.(list ~sep:(any ", ") pp_body_elt) body
  | Weak w, body ->
    Fmt.pf ppf ":~ %a. [%a]"
      Fmt.(list ~sep:(any ", ") pp_body_elt)
      body Asp.Term.pp w
  | head, body ->
    Fmt.pf ppf "%a :- %a." pp_head head
      Fmt.(list ~sep:(any ", ") pp_body_elt)
      body

let pp ppf (p : program) = Fmt.(list ~sep:(any "@.") pp_rule) ppf p
let rule_to_string r = Fmt.str "%a" pp_rule r
let to_string p = Fmt.str "%a" pp p

let compare_rule (r1 : rule) (r2 : rule) =
  String.compare (rule_to_string r1) (rule_to_string r2)

let equal_rule r1 r2 = compare_rule r1 r2 = 0
