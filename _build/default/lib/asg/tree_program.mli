(** The [G[PT]] mapping (Section II-A): the ASP program a parse tree
    induces — each node's annotation instantiated at the node's trace. *)

val program : Gpm.t -> Grammar.Parse_tree.t -> Asp.Program.t

val program_with_facts :
  Gpm.t -> Grammar.Parse_tree.t -> Asp.Atom.t list -> Asp.Program.t
