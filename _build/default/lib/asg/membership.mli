(** Language membership: [s ∈ L(G)] iff some parse tree of the underlying
    CFG induces a program with an answer set. *)

val tokenize : string -> string list
val tree_accepted : Gpm.t -> Grammar.Parse_tree.t -> bool
val accepts_tokens : Gpm.t -> string list -> bool
val accepts : Gpm.t -> string -> bool

(** [s ∈ L(G(C))]. *)
val accepts_in_context : Gpm.t -> context:Asp.Program.t -> string -> bool

(** A witnessing answer set for an accepted sentence. *)
val witness : Gpm.t -> string -> Asp.Solver.model option
