lib/asg/membership.ml: Asp Gpm Grammar List String Tree_program
