lib/asg/annotation.ml: Asp Fmt List Printf String
