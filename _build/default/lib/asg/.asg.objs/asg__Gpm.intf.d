lib/asg/gpm.mli: Annotation Asp Format Grammar
