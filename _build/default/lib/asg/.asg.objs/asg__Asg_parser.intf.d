lib/asg/asg_parser.mli: Gpm
