lib/asg/tree_program.mli: Asp Gpm Grammar
