lib/asg/language.mli: Asp Gpm
