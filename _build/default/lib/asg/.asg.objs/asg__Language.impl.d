lib/asg/language.ml: Asp Gpm Grammar Hashtbl Int List Membership Seq String Tree_program
