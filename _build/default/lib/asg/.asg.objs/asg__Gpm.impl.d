lib/asg/gpm.ml: Annotation Asp Fmt Grammar List
