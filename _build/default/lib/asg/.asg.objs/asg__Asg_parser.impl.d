lib/asg/asg_parser.ml: Annotation Asp Buffer Gpm Grammar List Printf String
