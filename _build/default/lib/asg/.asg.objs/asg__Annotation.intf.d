lib/asg/annotation.mli: Asp Format
