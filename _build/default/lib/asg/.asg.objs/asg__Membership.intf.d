lib/asg/membership.mli: Asp Gpm Grammar
