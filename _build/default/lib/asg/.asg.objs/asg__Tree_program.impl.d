lib/asg/tree_program.ml: Annotation Asp Gpm Grammar List
