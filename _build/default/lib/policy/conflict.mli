(** Conflict analysis and resolution: static detection of potential
    conflicts over a request space, runtime (context-dependent) checks,
    and pluggable resolution strategies. *)

type strategy =
  | Prefer_deny
  | Prefer_permit
  | Priority of (string -> int)  (** higher wins; by rule id *)
  | Most_specific  (** rule referencing more attributes wins *)

(** Opposite-effect rule pairs jointly applicable somewhere in the
    space, with a witnessing request. *)
val static_conflicts :
  Rule_policy.rule list ->
  Request.t list ->
  (Rule_policy.rule * Rule_policy.rule * Request.t) list

(** Do the two rules conflict on this concrete request? *)
val conflicts_on : Rule_policy.rule -> Rule_policy.rule -> Request.t -> bool

val specificity : Rule_policy.rule -> int

(** Resolve applicable rules to one decision. *)
val resolve : strategy -> Rule_policy.rule list -> Decision.t

(** Evaluate rules on a request under a resolution strategy. *)
val evaluate_with :
  strategy -> Rule_policy.rule list -> Request.t -> Decision.t
