(** XACML-flavoured XML serialization of the policy subset — a wire form
    for sharing rendered policies between coalition members.
    [of_string (to_string p)] reproduces the policy. *)

exception Xml_error of string

val to_string : Rule_policy.t -> string

(** Parse the writer's output.
    @raise Xml_error on malformed or unsupported documents. *)
val of_string : string -> Rule_policy.t
