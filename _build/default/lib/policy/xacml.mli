(** The XACML↔ASG bridge (Section IV-C / Figure 3): the decision GPM for
    access control, request-log examples for the learner, and rendering of
    learned hypotheses as XACML-style rules. *)

(** The permit/deny decision grammar. *)
val decision_gpm : unit -> Asg.Gpm.t

(** Production id carrying learned constraints. *)
val start_production : int

(** Decide a request with a learned GPM: permit/deny by membership, the
    [default] stance on ties, [Indeterminate] when neither is valid. *)
val decide : ?default:Decision.t -> Asg.Gpm.t -> Request.t -> Decision.t

(** Mode bias over attribute vocabularies. *)
val modes :
  vocabulary:(Attribute.t * string list) list -> max_body:int -> unit ->
  Ilp.Mode.t

(** Examples from a request/decision log (permit-sided; see the module
    implementation notes). [keep_irrelevant] retains NotApplicable
    responses as (mis-)labels — the Figure-3b noise scenario. *)
val examples_of_log :
  ?keep_irrelevant:bool ->
  ?weight:int ->
  (Request.t * Decision.t) list ->
  Ilp.Example.t list

(** Recognize an [attr(cat, name, value)] literal as an attribute test. *)
val attr_test : Asp.Atom.t -> Expr.t option

(** Render a learned constraint as an XACML-style rule (a constraint on
    permit reads back as a Deny rule); [None] when not renderable. *)
val rule_of_constraint : rid:string -> Asg.Annotation.rule -> Rule_policy.rule option

(** Render a hypothesis as a policy plus the unrendered rules as text. *)
val policy_of_hypothesis :
  pid:string ->
  Ilp.Hypothesis_space.candidate list ->
  Rule_policy.t * string list
