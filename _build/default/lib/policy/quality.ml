(** Policy quality metrics (Section V-A): consistency, relevance,
    minimality, completeness. Metrics are evaluated against a finite
    request space supplied by the caller (exhaustive for enumerable
    attribute domains, sampled otherwise). *)

type report = {
  consistency : float;  (** fraction of requests without rule conflicts *)
  conflicts : (Request.t * Rule_policy.rule * Rule_policy.rule) list;
  relevance : float;  (** fraction of rules applicable somewhere *)
  irrelevant_rules : Rule_policy.rule list;
  minimality : float;  (** fraction of rules that are not redundant *)
  redundant_rules : Rule_policy.rule list;
  completeness : float;  (** fraction of requests with a decision *)
  uncovered : Request.t list;
}

(** A catch-all fallback (true target and condition) is a default, not a
    policy statement; counting it against every specific rule would flag
    every default-deny/permit policy as inconsistent. *)
let is_catch_all (rule : Rule_policy.rule) =
  rule.target = Expr.True && rule.condition = Expr.True

(** Pairs of applicable non-default rules with opposite effects on [r]. *)
let conflicting_pairs (p : Rule_policy.t) (r : Request.t) =
  let applicable =
    List.filter
      (fun rule -> not (is_catch_all rule))
      (Rule_policy.applicable_rules p r)
  in
  let permits, denies =
    List.partition
      (fun (rule : Rule_policy.rule) -> rule.effect = Rule_policy.Permit)
      applicable
  in
  List.concat_map (fun a -> List.map (fun b -> (r, a, b)) denies) permits

let assess (p : Rule_policy.t) (space : Request.t list) : report =
  let n_req = max 1 (List.length space) in
  let conflicts = List.concat_map (conflicting_pairs p) space in
  let conflicting_requests =
    List.sort_uniq Request.compare (List.map (fun (r, _, _) -> r) conflicts)
  in
  let consistency =
    1.0
    -. (float_of_int (List.length conflicting_requests) /. float_of_int n_req)
  in
  (* relevance *)
  let irrelevant_rules =
    List.filter
      (fun (rule : Rule_policy.rule) ->
        not
          (List.exists
             (fun r ->
               List.exists
                 (fun (applicable : Rule_policy.rule) ->
                   applicable.rid = rule.rid)
                 (Rule_policy.applicable_rules p r))
             space))
      p.rules
  in
  let n_rules = max 1 (List.length p.rules) in
  let relevance =
    1.0 -. (float_of_int (List.length irrelevant_rules) /. float_of_int n_rules)
  in
  (* minimality: a rule is redundant if removing it changes no decision *)
  let decisions policy =
    List.map (fun r -> Rule_policy.evaluate policy r) space
  in
  let full = decisions p in
  let redundant_rules =
    List.filter
      (fun (rule : Rule_policy.rule) ->
        let without =
          {
            p with
            Rule_policy.rules =
              List.filter
                (fun (r' : Rule_policy.rule) -> r'.rid <> rule.rid)
                p.rules;
          }
        in
        decisions without = full)
      p.rules
  in
  let minimality =
    1.0 -. (float_of_int (List.length redundant_rules) /. float_of_int n_rules)
  in
  (* completeness *)
  let uncovered =
    List.filter
      (fun r -> Rule_policy.evaluate p r = Decision.Not_applicable)
      space
  in
  let completeness =
    1.0 -. (float_of_int (List.length uncovered) /. float_of_int n_req)
  in
  {
    consistency;
    conflicts;
    relevance;
    irrelevant_rules;
    minimality;
    redundant_rules;
    completeness;
    uncovered;
  }

(** A policy passes when all four metrics are perfect. *)
let is_high_quality report =
  report.consistency = 1.0 && report.relevance = 1.0
  && report.minimality = 1.0 && report.completeness = 1.0

let pp ppf r =
  Fmt.pf ppf
    "consistency %.2f | relevance %.2f | minimality %.2f | completeness %.2f"
    r.consistency r.relevance r.minimality r.completeness
