(** Access decisions, following XACML's four-valued outcome. *)

type t = Permit | Deny | Not_applicable | Indeterminate

let to_string = function
  | Permit -> "Permit"
  | Deny -> "Deny"
  | Not_applicable -> "NotApplicable"
  | Indeterminate -> "Indeterminate"

let of_string = function
  | "Permit" | "permit" -> Some Permit
  | "Deny" | "deny" -> Some Deny
  | "NotApplicable" | "notapplicable" -> Some Not_applicable
  | "Indeterminate" | "indeterminate" -> Some Indeterminate
  | _ -> None

let equal (a : t) (b : t) = a = b
let pp ppf d = Fmt.string ppf (to_string d)
