(** Target/condition expressions over request attributes — the boolean
    combinations of attribute tests the paper's Section IV-D calls out as
    necessary for data-sharing policies. *)

type cmp = Lt | Le | Gt | Ge

type t =
  | True
  | Equals of Attribute.t * Attribute.value
  | One_of of Attribute.t * Attribute.value list
  | Compare of cmp * Attribute.t * int  (** numeric attribute vs constant *)
  | And of t list
  | Or of t list
  | Not of t

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

(** Three-valued evaluation: [`Match], [`No_match], or [`Missing] when a
    referenced attribute is absent from the request (XACML's
    indeterminate case). *)
let rec eval (r : Request.t) (e : t) : [ `Match | `No_match | `Missing ] =
  match e with
  | True -> `Match
  | Equals (a, v) -> (
    match Request.find a r with
    | None -> `Missing
    | Some actual -> if Attribute.value_equal actual v then `Match else `No_match)
  | One_of (a, vs) -> (
    match Request.find a r with
    | None -> `Missing
    | Some actual ->
      if List.exists (Attribute.value_equal actual) vs then `Match
      else `No_match)
  | Compare (op, a, k) -> (
    match Request.find a r with
    | None -> `Missing
    | Some (Attribute.Int n) ->
      let holds =
        match op with Lt -> n < k | Le -> n <= k | Gt -> n > k | Ge -> n >= k
      in
      if holds then `Match else `No_match
    | Some _ -> `Missing)
  | And es ->
    List.fold_left
      (fun acc e ->
        match (acc, eval r e) with
        | `No_match, _ | _, `No_match -> `No_match
        | `Missing, _ | _, `Missing -> `Missing
        | `Match, `Match -> `Match)
      `Match es
  | Or es ->
    List.fold_left
      (fun acc e ->
        match (acc, eval r e) with
        | `Match, _ | _, `Match -> `Match
        | `Missing, _ | _, `Missing -> `Missing
        | `No_match, `No_match -> `No_match)
      `No_match es
  | Not e -> (
    match eval r e with
    | `Match -> `No_match
    | `No_match -> `Match
    | `Missing -> `Missing)

let matches r e = eval r e = `Match

(** Attributes referenced anywhere in the expression. *)
let rec attributes = function
  | True -> []
  | Equals (a, _) | One_of (a, _) | Compare (_, a, _) -> [ a ]
  | And es | Or es -> List.concat_map attributes es
  | Not e -> attributes e

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | Equals (a, v) -> Fmt.pf ppf "%a = %a" Attribute.pp a Attribute.pp_value v
  | One_of (a, vs) ->
    Fmt.pf ppf "%a in {%a}" Attribute.pp a
      Fmt.(list ~sep:(any ", ") Attribute.pp_value)
      vs
  | Compare (op, a, k) ->
    Fmt.pf ppf "%a %s %d" Attribute.pp a (cmp_to_string op) k
  | And es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " and ") pp) es
  | Or es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " or ") pp) es
  | Not e -> Fmt.pf ppf "not %a" pp e

let to_string e = Fmt.str "%a" pp e
