(** Nested policy sets (XACML PolicySet): trees of policies combined
    under per-node algorithms and applicability targets. *)

type t =
  | Policy of Rule_policy.t
  | Set of {
      psid : string;
      target : Expr.t;
      alg : Rule_policy.combining;
      children : t list;
    }

val policy : Rule_policy.t -> t
val set : ?target:Expr.t -> alg:Rule_policy.combining -> string -> t list -> t
val evaluate : t -> Request.t -> Decision.t

(** All policies in the tree, leaves first. *)
val policies : t -> Rule_policy.t list

val depth : t -> int
val id : t -> string

(** The first policy that actually decides the request (audit trails). *)
val deciding_policy : t -> Request.t -> Rule_policy.t option

val pp : ?indent:int -> Format.formatter -> t -> unit
