(** Attributes for attribute-based access control: a category (XACML's
    subject / resource / action / environment), a name, and a typed value. *)

type category = Subject | Resource | Action | Environment

type value = Str of string | Int of int | Bool of bool

type t = { category : category; name : string }

let subject name = { category = Subject; name }
let resource name = { category = Resource; name }
let action name = { category = Action; name }
let environment name = { category = Environment; name }

let category_to_string = function
  | Subject -> "subject"
  | Resource -> "resource"
  | Action -> "action"
  | Environment -> "environment"

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let value_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b

let value_compare (a : value) (b : value) = Stdlib.compare a b
let value_equal a b = value_compare a b = 0

(** The value as an ASP term (strings and booleans become constants). *)
let value_to_term = function
  | Str s -> Asp.Term.const s
  | Int i -> Asp.Term.int i
  | Bool b -> Asp.Term.const (string_of_bool b)

let pp ppf a = Fmt.pf ppf "%s.%s" (category_to_string a.category) a.name
let to_string a = Fmt.str "%a" pp a

let pp_value ppf v = Fmt.string ppf (value_to_string v)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
