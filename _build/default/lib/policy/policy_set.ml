(** Nested policy sets — XACML's PolicySet element: a tree whose leaves
    are policies and whose inner nodes combine their children under a
    combining algorithm and an applicability target. Coalition-level
    policy organization (per-member policy sets combined at the coalition
    root) maps naturally onto this structure. *)

type t =
  | Policy of Rule_policy.t
  | Set of {
      psid : string;
      target : Expr.t;
      alg : Rule_policy.combining;
      children : t list;
    }

let policy p = Policy p

let set ?(target = Expr.True) ~alg psid children =
  Set { psid; target; alg; children }

let rec evaluate (node : t) (r : Request.t) : Decision.t =
  match node with
  | Policy p -> Rule_policy.evaluate p r
  | Set { target; alg; children; _ } -> (
    match Expr.eval r target with
    | `No_match -> Decision.Not_applicable
    | `Missing -> Decision.Indeterminate
    | `Match ->
      Rule_policy.combine alg (List.map (fun c -> evaluate c r) children))

(** All policies in the tree, leaves first. *)
let rec policies = function
  | Policy p -> [ p ]
  | Set { children; _ } -> List.concat_map policies children

(** Depth of the tree (a single policy has depth 1). *)
let rec depth = function
  | Policy _ -> 1
  | Set { children; _ } ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

(** The id of the node. *)
let id = function
  | Policy p -> p.Rule_policy.pid
  | Set { psid; _ } -> psid

(** Find the first applicable policy that actually decides the request —
    useful for audit trails ("which member's policy decided this?"). *)
let rec deciding_policy (node : t) (r : Request.t) : Rule_policy.t option =
  match node with
  | Policy p -> (
    match Rule_policy.evaluate p r with
    | Decision.Permit | Decision.Deny -> Some p
    | Decision.Not_applicable | Decision.Indeterminate -> None)
  | Set { target; children; _ } ->
    if Expr.matches r target then
      List.fold_left
        (fun acc c ->
          match acc with Some _ -> acc | None -> deciding_policy c r)
        None children
    else None

let rec pp ?(indent = 0) ppf node =
  let pad = String.make (2 * indent) ' ' in
  match node with
  | Policy p -> Fmt.pf ppf "%s%a@." pad Rule_policy.pp p
  | Set { psid; alg; children; target } ->
    Fmt.pf ppf "%spolicy-set %s [%s]%s@." pad psid
      (Rule_policy.combining_to_string alg)
      (match target with
      | Expr.True -> ""
      | t -> " target " ^ Expr.to_string t);
    List.iter (pp ~indent:(indent + 1) ppf) children
