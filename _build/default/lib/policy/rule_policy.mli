(** The XACML-subset policy model: rules (target, condition, effect)
    grouped into policies under a combining algorithm. *)

type effect = Permit | Deny

type rule = {
  rid : string;
  effect : effect;
  target : Expr.t;
  condition : Expr.t;
}

type combining =
  | First_applicable
  | Deny_overrides
  | Permit_overrides
  | Deny_unless_permit
  | Permit_unless_deny

type t = {
  pid : string;
  target : Expr.t;
  rules : rule list;
  alg : combining;
}

val rule :
  ?target:Expr.t -> ?condition:Expr.t -> effect:effect -> string -> rule

val make : ?target:Expr.t -> ?alg:combining -> string -> rule list -> t
val effect_to_decision : effect -> Decision.t
val effect_to_string : effect -> string
val combining_to_string : combining -> string
val eval_rule : Request.t -> rule -> Decision.t

(** Combine component decisions under an algorithm. *)
val combine : combining -> Decision.t list -> Decision.t

val evaluate : t -> Request.t -> Decision.t

(** One-level policy set (default deny-overrides). *)
val evaluate_set : ?alg:combining -> t list -> Request.t -> Decision.t

(** Rules whose target and condition both match. *)
val applicable_rules : t -> Request.t -> rule list

val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
