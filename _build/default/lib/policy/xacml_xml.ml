(** A compact XACML-flavoured XML serialization of the policy subset —
    the exchange format for sharing rendered policies between coalition
    members (the paper's policies are XACML; sharing needs a wire form).

    The element set mirrors XACML 3.0's skeleton (Policy / Rule / Target /
    Condition / Match) restricted to our [Expr] language. A hand-written
    reader parses exactly what the writer emits; both are total on the
    supported subset, and [of_string (to_string p)] reproduces the
    policy. *)

exception Xml_error of string

(* -- writing ------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_attrs (v : Attribute.value) =
  match v with
  | Attribute.Str s -> ("string", s)
  | Attribute.Int i -> ("integer", string_of_int i)
  | Attribute.Bool b -> ("boolean", string_of_bool b)

let rec expr_to_xml buf indent (e : Expr.t) =
  let pad = String.make indent ' ' in
  match e with
  | Expr.True -> Buffer.add_string buf (pad ^ "<AnyOf/>\n")
  | Expr.Equals (a, v) ->
    let ty, value = value_to_attrs v in
    Buffer.add_string buf
      (Printf.sprintf
         "%s<Match category=\"%s\" attribute=\"%s\" type=\"%s\" value=\"%s\"/>\n"
         pad
         (Attribute.category_to_string a.Attribute.category)
         (escape a.Attribute.name) ty (escape value))
  | Expr.One_of (a, vs) ->
    Buffer.add_string buf
      (Printf.sprintf "%s<OneOf category=\"%s\" attribute=\"%s\">\n" pad
         (Attribute.category_to_string a.Attribute.category)
         (escape a.Attribute.name));
    List.iter
      (fun v ->
        let ty, value = value_to_attrs v in
        Buffer.add_string buf
          (Printf.sprintf "%s  <Value type=\"%s\" value=\"%s\"/>\n" pad ty
             (escape value)))
      vs;
    Buffer.add_string buf (pad ^ "</OneOf>\n")
  | Expr.Compare (op, a, k) ->
    Buffer.add_string buf
      (Printf.sprintf
         "%s<Compare category=\"%s\" attribute=\"%s\" op=\"%s\" bound=\"%d\"/>\n"
         pad
         (Attribute.category_to_string a.Attribute.category)
         (escape a.Attribute.name)
         (escape (Expr.cmp_to_string op))
         k)
  | Expr.And es ->
    Buffer.add_string buf (pad ^ "<AllOf>\n");
    List.iter (expr_to_xml buf (indent + 2)) es;
    Buffer.add_string buf (pad ^ "</AllOf>\n")
  | Expr.Or es ->
    Buffer.add_string buf (pad ^ "<AnyOf>\n");
    List.iter (expr_to_xml buf (indent + 2)) es;
    Buffer.add_string buf (pad ^ "</AnyOf>\n")
  | Expr.Not e ->
    Buffer.add_string buf (pad ^ "<Not>\n");
    expr_to_xml buf (indent + 2) e;
    Buffer.add_string buf (pad ^ "</Not>\n")

let rule_to_xml buf indent (r : Rule_policy.rule) =
  let pad = String.make indent ' ' in
  Buffer.add_string buf
    (Printf.sprintf "%s<Rule RuleId=\"%s\" Effect=\"%s\">\n" pad
       (escape r.Rule_policy.rid)
       (Rule_policy.effect_to_string r.Rule_policy.effect));
  Buffer.add_string buf (pad ^ "  <Target>\n");
  expr_to_xml buf (indent + 4) r.Rule_policy.target;
  Buffer.add_string buf (pad ^ "  </Target>\n");
  Buffer.add_string buf (pad ^ "  <Condition>\n");
  expr_to_xml buf (indent + 4) r.Rule_policy.condition;
  Buffer.add_string buf (pad ^ "  </Condition>\n");
  Buffer.add_string buf (pad ^ "</Rule>\n")

let to_string (p : Rule_policy.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "<Policy PolicyId=\"%s\" RuleCombiningAlg=\"%s\">\n"
       (escape p.Rule_policy.pid)
       (Rule_policy.combining_to_string p.Rule_policy.alg));
  Buffer.add_string buf "  <Target>\n";
  expr_to_xml buf 4 p.Rule_policy.target;
  Buffer.add_string buf "  </Target>\n";
  List.iter (rule_to_xml buf 2) p.Rule_policy.rules;
  Buffer.add_string buf "</Policy>\n";
  Buffer.contents buf

(* -- reading ------------------------------------------------------------ *)

(* A minimal XML tokenizer for the writer's output: tags with quoted
   attributes, no text nodes, no comments. *)

type tag = {
  name : string;
  attrs : (string * string) list;
  kind : [ `Open | `Close | `Selfclose ];
}

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let rest = String.sub s !i (min 6 (n - !i)) in
      let entity, len =
        if String.length rest >= 5 && String.sub rest 0 5 = "&amp;" then ('&', 5)
        else if String.length rest >= 4 && String.sub rest 0 4 = "&lt;" then ('<', 4)
        else if String.length rest >= 4 && String.sub rest 0 4 = "&gt;" then ('>', 4)
        else if String.length rest >= 6 && String.sub rest 0 6 = "&quot;" then ('"', 6)
        else ('&', 1)
      in
      Buffer.add_char buf entity;
      i := !i + len
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let tokenize (input : string) : tag list =
  let tags = ref [] in
  let n = String.length input in
  let i = ref 0 in
  while !i < n do
    if input.[!i] = '<' then begin
      let close = String.index_from input !i '>' in
      let body = String.sub input (!i + 1) (close - !i - 1) in
      let kind, body =
        if String.length body > 0 && body.[0] = '/' then
          (`Close, String.sub body 1 (String.length body - 1))
        else if String.length body > 0 && body.[String.length body - 1] = '/'
        then (`Selfclose, String.sub body 0 (String.length body - 1))
        else (`Open, body)
      in
      let body = String.trim body in
      let name, rest =
        match String.index_opt body ' ' with
        | None -> (body, "")
        | Some j ->
          (String.sub body 0 j, String.sub body (j + 1) (String.length body - j - 1))
      in
      (* parse key="value" pairs *)
      let attrs = ref [] in
      let k = ref 0 in
      let m = String.length rest in
      while !k < m do
        if rest.[!k] = ' ' then incr k
        else begin
          let eq =
            match String.index_from_opt rest !k '=' with
            | Some e -> e
            | None -> raise (Xml_error ("malformed attribute in <" ^ body ^ ">"))
          in
          let key = String.trim (String.sub rest !k (eq - !k)) in
          let q1 = String.index_from rest eq '"' in
          let q2 = String.index_from rest (q1 + 1) '"' in
          let value = String.sub rest (q1 + 1) (q2 - q1 - 1) in
          attrs := (key, unescape value) :: !attrs;
          k := q2 + 1
        end
      done;
      tags := { name; attrs = List.rev !attrs; kind } :: !tags;
      i := close + 1
    end
    else incr i
  done;
  List.rev !tags

let attr tag key =
  match List.assoc_opt key tag.attrs with
  | Some v -> v
  | None -> raise (Xml_error (Printf.sprintf "<%s> missing %s" tag.name key))

let category_of_string = function
  | "subject" -> Attribute.Subject
  | "resource" -> Attribute.Resource
  | "action" -> Attribute.Action
  | "environment" -> Attribute.Environment
  | c -> raise (Xml_error ("unknown category " ^ c))

let value_of ty v =
  match ty with
  | "string" -> Attribute.Str v
  | "integer" -> Attribute.Int (int_of_string v)
  | "boolean" -> Attribute.Bool (bool_of_string v)
  | _ -> raise (Xml_error ("unknown value type " ^ ty))

let attribute_of tag =
  { Attribute.category = category_of_string (attr tag "category");
    name = attr tag "attribute" }

let cmp_of = function
  | "<" -> Expr.Lt
  | "<=" -> Expr.Le
  | ">" -> Expr.Gt
  | ">=" -> Expr.Ge
  | op -> raise (Xml_error ("unknown comparison " ^ op))

(* parse one expression starting at the head of the tag stream *)
let rec parse_expr (tags : tag list) : Expr.t * tag list =
  match tags with
  | { name = "AnyOf"; kind = `Selfclose; _ } :: rest -> (Expr.True, rest)
  | ({ name = "Match"; kind = `Selfclose; _ } as t) :: rest ->
    (Expr.Equals (attribute_of t, value_of (attr t "type") (attr t "value")), rest)
  | ({ name = "Compare"; kind = `Selfclose; _ } as t) :: rest ->
    ( Expr.Compare
        (cmp_of (attr t "op"), attribute_of t, int_of_string (attr t "bound")),
      rest )
  | ({ name = "OneOf"; kind = `Open; _ } as t) :: rest ->
    let rec values acc = function
      | ({ name = "Value"; kind = `Selfclose; _ } as v) :: rest ->
        values (value_of (attr v "type") (attr v "value") :: acc) rest
      | { name = "OneOf"; kind = `Close; _ } :: rest -> (List.rev acc, rest)
      | _ -> raise (Xml_error "malformed <OneOf>")
    in
    let vs, rest = values [] rest in
    (Expr.One_of (attribute_of t, vs), rest)
  | { name = ("AllOf" | "AnyOf") as n; kind = `Open; _ } :: rest ->
    let rec children acc tags =
      match tags with
      | { name; kind = `Close; _ } :: rest when name = n -> (List.rev acc, rest)
      | _ ->
        let e, rest = parse_expr tags in
        children (e :: acc) rest
    in
    let es, rest = children [] rest in
    ((if n = "AllOf" then Expr.And es else Expr.Or es), rest)
  | { name = "Not"; kind = `Open; _ } :: rest -> (
    let e, rest = parse_expr rest in
    match rest with
    | { name = "Not"; kind = `Close; _ } :: rest -> (Expr.Not e, rest)
    | _ -> raise (Xml_error "unterminated <Not>"))
  | t :: _ -> raise (Xml_error ("unexpected <" ^ t.name ^ "> in expression"))
  | [] -> raise (Xml_error "unexpected end of document in expression")

let parse_boxed name tags =
  match tags with
  | { name = n; kind = `Open; _ } :: rest when n = name -> (
    let e, rest = parse_expr rest in
    match rest with
    | { name = n; kind = `Close; _ } :: rest when n = name -> (e, rest)
    | _ -> raise (Xml_error ("unterminated <" ^ name ^ ">")))
  | _ -> raise (Xml_error ("expected <" ^ name ^ ">"))

let combining_of = function
  | "first-applicable" -> Rule_policy.First_applicable
  | "deny-overrides" -> Rule_policy.Deny_overrides
  | "permit-overrides" -> Rule_policy.Permit_overrides
  | "deny-unless-permit" -> Rule_policy.Deny_unless_permit
  | "permit-unless-deny" -> Rule_policy.Permit_unless_deny
  | a -> raise (Xml_error ("unknown combining algorithm " ^ a))

let of_string (input : string) : Rule_policy.t =
  match tokenize input with
  | ({ name = "Policy"; kind = `Open; _ } as p) :: rest ->
    let target, rest = parse_boxed "Target" rest in
    let rec rules acc = function
      | ({ name = "Rule"; kind = `Open; _ } as r) :: rest ->
        let rtarget, rest = parse_boxed "Target" rest in
        let condition, rest = parse_boxed "Condition" rest in
        let rest =
          match rest with
          | { name = "Rule"; kind = `Close; _ } :: rest -> rest
          | _ -> raise (Xml_error "unterminated <Rule>")
        in
        let effect =
          match attr r "Effect" with
          | "Permit" -> Rule_policy.Permit
          | "Deny" -> Rule_policy.Deny
          | e -> raise (Xml_error ("unknown effect " ^ e))
        in
        rules
          (Rule_policy.rule ~target:rtarget ~condition ~effect
             (attr r "RuleId")
          :: acc)
          rest
      | { name = "Policy"; kind = `Close; _ } :: _ -> List.rev acc
      | t :: _ -> raise (Xml_error ("unexpected <" ^ t.name ^ "> in policy"))
      | [] -> raise (Xml_error "unterminated <Policy>")
    in
    let rs = rules [] rest in
    Rule_policy.make ~target
      ~alg:(combining_of (attr p "RuleCombiningAlg"))
      (attr p "PolicyId") rs
  | _ -> raise (Xml_error "expected a <Policy> document")
