(** An access request: an assignment of values to attributes (XACML's
    request context). *)

type t = Attribute.value Attribute.Map.t

let empty : t = Attribute.Map.empty
let bind attr value (r : t) : t = Attribute.Map.add attr value r
let of_list l : t = List.fold_left (fun r (a, v) -> bind a v r) empty l
let find attr (r : t) = Attribute.Map.find_opt attr r
let bindings (r : t) = Attribute.Map.bindings r

let compare (a : t) (b : t) =
  Attribute.Map.compare Attribute.value_compare a b

let equal a b = compare a b = 0

(** Encode a request as ASP context facts:
    [subject.role = admin] becomes [attr(subject, role, admin)]. *)
let to_context (r : t) : Asp.Program.t =
  Asp.Program.of_rules
    (List.map
       (fun ((a : Attribute.t), v) ->
         Asp.Rule.fact
           (Asp.Atom.make "attr"
              [
                Asp.Term.const (Attribute.category_to_string a.Attribute.category);
                Asp.Term.const a.Attribute.name;
                Attribute.value_to_term v;
              ]))
       (bindings r))

let pp ppf (r : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (a, v) ->
          Fmt.pf ppf "%a=%a" Attribute.pp a Attribute.pp_value v))
    (bindings r)

let to_string r = Fmt.str "%a" pp r
