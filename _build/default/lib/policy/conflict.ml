(** Conflict analysis and resolution (Section V-A's discussion): static
    detection of {e potential} conflicts over an attribute domain, runtime
    detection against a concrete request (conflicts are context-dependent,
    as the paper's Crypto-project/postdoc example illustrates), and
    pluggable resolution strategies. *)

type strategy =
  | Prefer_deny
  | Prefer_permit
  | Priority of (string -> int)  (** higher wins; by rule id *)
  | Most_specific  (** rule with more referenced attributes wins *)

(** Potential conflict: opposite effects and jointly satisfiable
    applicability over the given request space. Returns the witnesses. *)
let static_conflicts (rules : Rule_policy.rule list)
    (space : Request.t list) :
    (Rule_policy.rule * Rule_policy.rule * Request.t) list =
  let applicable (rule : Rule_policy.rule) r =
    Expr.matches r rule.target && Expr.matches r rule.condition
  in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  List.concat_map
    (fun ((a : Rule_policy.rule), (b : Rule_policy.rule)) ->
      if a.effect = b.effect then []
      else
        match List.find_opt (fun r -> applicable a r && applicable b r) space with
        | Some witness -> [ (a, b, witness) ]
        | None -> [])
    (pairs rules)

(** Do [a] and [b] actually conflict on request [r]? *)
let conflicts_on (a : Rule_policy.rule) (b : Rule_policy.rule) (r : Request.t) =
  a.effect <> b.effect
  && Expr.matches r a.target && Expr.matches r a.condition
  && Expr.matches r b.target && Expr.matches r b.condition

let specificity (rule : Rule_policy.rule) =
  List.length
    (List.sort_uniq Attribute.compare
       (Expr.attributes rule.target @ Expr.attributes rule.condition))

(** Resolve a set of applicable rules to one decision. *)
let resolve (s : strategy) (applicable : Rule_policy.rule list) : Decision.t =
  match applicable with
  | [] -> Decision.Not_applicable
  | rules -> (
    match s with
    | Prefer_deny ->
      if List.exists (fun (r : Rule_policy.rule) -> r.effect = Rule_policy.Deny) rules
      then Decision.Deny
      else Decision.Permit
    | Prefer_permit ->
      if
        List.exists
          (fun (r : Rule_policy.rule) -> r.effect = Rule_policy.Permit)
          rules
      then Decision.Permit
      else Decision.Deny
    | Priority rank -> (
      let best =
        List.fold_left
          (fun acc (r : Rule_policy.rule) ->
            match acc with
            | None -> Some r
            | Some (b : Rule_policy.rule) ->
              if rank r.rid > rank b.rid then Some r else acc)
          None rules
      in
      match best with
      | Some r -> Rule_policy.effect_to_decision r.effect
      | None -> Decision.Not_applicable)
    | Most_specific -> (
      let best =
        List.fold_left
          (fun acc (r : Rule_policy.rule) ->
            match acc with
            | None -> Some r
            | Some b -> if specificity r > specificity b then Some r else acc)
          None rules
      in
      match best with
      | Some r -> Rule_policy.effect_to_decision r.effect
      | None -> Decision.Not_applicable))

(** Evaluate a rule list on a request under a resolution strategy. *)
let evaluate_with (s : strategy) (rules : Rule_policy.rule list)
    (r : Request.t) : Decision.t =
  let applicable =
    List.filter
      (fun (rule : Rule_policy.rule) ->
        Expr.matches r rule.target && Expr.matches r rule.condition)
      rules
  in
  resolve s applicable
