(** Target/condition expressions over request attributes: Boolean
    combinations of attribute tests. *)

type cmp = Lt | Le | Gt | Ge

type t =
  | True
  | Equals of Attribute.t * Attribute.value
  | One_of of Attribute.t * Attribute.value list
  | Compare of cmp * Attribute.t * int
  | And of t list
  | Or of t list
  | Not of t

val cmp_to_string : cmp -> string

(** Three-valued evaluation; [`Missing] when a referenced attribute is
    absent (XACML's indeterminate case). *)
val eval : Request.t -> t -> [ `Match | `No_match | `Missing ]

val matches : Request.t -> t -> bool

(** Attributes referenced anywhere in the expression. *)
val attributes : t -> Attribute.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
