(** An access request: an attribute-to-value assignment (XACML's request
    context). *)

type t = Attribute.value Attribute.Map.t

val empty : t
val bind : Attribute.t -> Attribute.value -> t -> t
val of_list : (Attribute.t * Attribute.value) list -> t
val find : Attribute.t -> t -> Attribute.value option
val bindings : t -> (Attribute.t * Attribute.value) list
val compare : t -> t -> int
val equal : t -> t -> bool

(** Encode as ASP facts: [subject.role = admin] becomes
    [attr(subject, role, admin)]. *)
val to_context : t -> Asp.Program.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
