(** The XACML↔ASG bridge for the paper's access-control case study
    (Section IV-C and Figure 3).

    The generative policy model for access control is an ASG over the
    two-token decision language {permit, deny}; a request is translated
    into ASP context facts ([attr(category, name, value)]); learned
    constraint annotations forbid a decision under attribute conditions.
    A learned constraint on [permit] therefore reads back as a Deny rule
    (and vice versa), which is how this module renders hypotheses in the
    style of Figure 3. *)

(** The decision GPM used by the XACML learning experiments. *)
let decision_gpm () : Asg.Gpm.t =
  Asg.Asg_parser.parse
    {| start -> decision
       decision -> "permit" { result(permit). } | "deny" { result(deny). } |}

(** Production id carrying the learned constraints. *)
let start_production = 0

(** Decide a request with a learned GPM: generate the valid decisions in
    the request's context and combine. When both decisions are valid the
    request is decided by [default] (permissive or restrictive stance);
    when neither is, the GPM is inconsistent for this request and the
    result is [Indeterminate]. *)
let decide ?(default = Decision.Permit) (gpm : Asg.Gpm.t) (r : Request.t) :
    Decision.t =
  let context = Request.to_context r in
  let permit = Asg.Membership.accepts_in_context gpm ~context "permit" in
  let deny = Asg.Membership.accepts_in_context gpm ~context "deny" in
  match (permit, deny) with
  | true, false -> Decision.Permit
  | false, true -> Decision.Deny
  | true, true -> default
  | false, false -> Decision.Indeterminate

(** Mode bias over attribute vocabularies: one [attr] mode atom per
    (category, name) with its value domain, plus the decision atom. *)
let modes ~(vocabulary : (Attribute.t * string list) list) ~max_body () :
    Ilp.Mode.t =
  let attr_modes =
    List.map
      (fun ((a : Attribute.t), values) ->
        Ilp.Mode.matom "attr"
          [
            Ilp.Mode.Constants [ Attribute.category_to_string a.Attribute.category ];
            Ilp.Mode.Constants [ a.Attribute.name ];
            Ilp.Mode.Constants values;
          ])
      vocabulary
  in
  Ilp.Mode.make ~target_prods:[ start_production ] ~heads:[ Ilp.Mode.Constraint ]
    ~bodies:
      (Ilp.Mode.matom ~required:true ~site:(Some 1) "result"
         [ Ilp.Mode.Constants [ "permit" ] ]
      :: attr_modes)
    ~max_body ()

(** Examples from a request/decision log. Learning is permit-sided, which
    matches a default-permit / explicit-deny policy structure: a Permit
    response is a positive example of "permit", a Deny response a negative
    one, and the always-available "deny" fallback is asserted positively.
    [Not_applicable]/[Indeterminate] responses are the "irrelevant
    responses" of the paper's noisy-dataset discussion: with
    [keep_irrelevant:false] (a filtered dataset, the default) they are
    dropped; otherwise they are misread as denials, reproducing the
    Figure-3b failure mode. *)
let examples_of_log ?(keep_irrelevant = false) ?weight
    (log : (Request.t * Decision.t) list) : Ilp.Example.t list =
  List.concat_map
    (fun (r, d) ->
      let context = Request.to_context r in
      match d with
      | Decision.Permit ->
        [
          Ilp.Example.positive ?weight ~context "permit";
          Ilp.Example.positive ?weight ~context "deny";
        ]
      | Decision.Deny ->
        [
          Ilp.Example.negative ?weight ~context "permit";
          Ilp.Example.positive ?weight ~context "deny";
        ]
      | Decision.Not_applicable | Decision.Indeterminate ->
        if keep_irrelevant then
          [ Ilp.Example.negative ?weight ~context "permit" ]
        else [])
    log

(* -- Rendering learned hypotheses as Figure-3-style policies ---------- *)

let category_of_string = function
  | "subject" -> Some Attribute.Subject
  | "resource" -> Some Attribute.Resource
  | "action" -> Some Attribute.Action
  | "environment" -> Some Attribute.Environment
  | _ -> None

let const_name = function Asp.Term.Fun (name, []) -> Some name | _ -> None

(** Recognize an [attr(cat, name, value)] literal as an attribute test. *)
let attr_test (a : Asp.Atom.t) : Expr.t option =
  match (a.Asp.Atom.pred, a.Asp.Atom.args) with
  | "attr", [ cat; name; value ] -> (
    match (const_name cat, const_name name) with
    | Some cat, Some name -> (
      match category_of_string cat with
      | Some category ->
        let attr = { Attribute.category; name } in
        (match value with
        | Asp.Term.Fun (v, []) -> Some (Expr.Equals (attr, Attribute.Str v))
        | Asp.Term.Int n -> Some (Expr.Equals (attr, Attribute.Int n))
        | _ -> None)
      | None -> None)
    | _ -> None)
  | _ -> None

(** Render a learned constraint as an XACML-style rule: a constraint that
    forbids [permit] under conditions C becomes [Deny if C]. Returns
    [None] for hypothesis rules that are not in the recognizable
    constraint shape. *)
let rule_of_constraint ~rid (r : Asg.Annotation.rule) :
    Rule_policy.rule option =
  match r.Asg.Annotation.head with
  | Asg.Annotation.Falsity ->
    let decision = ref None in
    let conds = ref [] in
    let ok =
      List.for_all
        (function
          | Asg.Annotation.Pos { Asg.Annotation.atom; site = Some 1 }
            when atom.Asp.Atom.pred = "result" -> (
            match atom.Asp.Atom.args with
            | [ Asp.Term.Fun (("permit" | "deny") as d, []) ] ->
              decision := Some d;
              true
            | _ -> false)
          | Asg.Annotation.Pos { Asg.Annotation.atom; site = None } -> (
            match attr_test atom with
            | Some test ->
              conds := test :: !conds;
              true
            | None -> false)
          | _ -> false)
        r.Asg.Annotation.body
    in
    if not ok then None
    else
      Option.map
        (fun d ->
          let effect =
            (* forbidding permit = a deny rule, and vice versa *)
            if d = "permit" then Rule_policy.Deny else Rule_policy.Permit
          in
          let condition =
            match List.rev !conds with
            | [] -> Expr.True
            | [ c ] -> c
            | cs -> Expr.And cs
          in
          Rule_policy.rule ~condition ~effect rid)
        !decision
  | Asg.Annotation.Head _ | Asg.Annotation.Choice _ | Asg.Annotation.Weak _ ->
    None

(** Render a whole learned hypothesis as a policy (plus the unrendered
    leftover rules as text). *)
let policy_of_hypothesis ~pid (h : Ilp.Hypothesis_space.candidate list) :
    Rule_policy.t * string list =
  let rules, leftovers =
    List.fold_left
      (fun (rules, leftovers) (c : Ilp.Hypothesis_space.candidate) ->
        let rid = Printf.sprintf "%s-r%d" pid (List.length rules + 1) in
        match rule_of_constraint ~rid c.Ilp.Hypothesis_space.rule with
        | Some rule -> (rule :: rules, leftovers)
        | None ->
          ( rules,
            Asg.Annotation.rule_to_string c.Ilp.Hypothesis_space.rule
            :: leftovers ))
      ([], []) h
  in
  ( Rule_policy.make ~alg:Rule_policy.First_applicable pid (List.rev rules),
    List.rev leftovers )
