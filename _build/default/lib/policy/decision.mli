(** Access decisions (XACML's four-valued outcome). *)

type t = Permit | Deny | Not_applicable | Indeterminate

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
