(** Policy quality metrics (Section V-A): consistency, relevance,
    minimality, completeness, evaluated against a finite request space. *)

type report = {
  consistency : float;  (** fraction of requests without rule conflicts *)
  conflicts : (Request.t * Rule_policy.rule * Rule_policy.rule) list;
  relevance : float;  (** fraction of rules applicable somewhere *)
  irrelevant_rules : Rule_policy.rule list;
  minimality : float;  (** fraction of rules that are not redundant *)
  redundant_rules : Rule_policy.rule list;
  completeness : float;  (** fraction of requests with a decision *)
  uncovered : Request.t list;
}

(** Is the rule a catch-all default (true target and condition)?
    Defaults are excluded from conflict counting. *)
val is_catch_all : Rule_policy.rule -> bool

(** Applicable non-default rule pairs with opposite effects. *)
val conflicting_pairs :
  Rule_policy.t ->
  Request.t ->
  (Request.t * Rule_policy.rule * Rule_policy.rule) list

val assess : Rule_policy.t -> Request.t list -> report

(** All four metrics perfect. *)
val is_high_quality : report -> bool

val pp : Format.formatter -> report -> unit
