(** Attributes for attribute-based access control: category, name, and
    typed values. *)

type category = Subject | Resource | Action | Environment
type value = Str of string | Int of int | Bool of bool
type t = { category : category; name : string }

val subject : string -> t
val resource : string -> t
val action : string -> t
val environment : string -> t
val category_to_string : category -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val value_to_string : value -> string
val value_compare : value -> value -> int
val value_equal : value -> value -> bool

(** The value as an ASP term. *)
val value_to_term : value -> Asp.Term.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_value : Format.formatter -> value -> unit

module Map : Map.S with type key = t
