lib/policy/conflict.ml: Attribute Decision Expr List Request Rule_policy
