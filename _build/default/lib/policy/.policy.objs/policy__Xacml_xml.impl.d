lib/policy/xacml_xml.ml: Attribute Buffer Expr List Printf Rule_policy String
