lib/policy/attribute.ml: Asp Fmt Map Stdlib
