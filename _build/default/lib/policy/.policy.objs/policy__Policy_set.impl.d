lib/policy/policy_set.ml: Decision Expr Fmt List Request Rule_policy String
