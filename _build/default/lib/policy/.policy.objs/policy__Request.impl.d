lib/policy/request.ml: Asp Attribute Fmt List
