lib/policy/conflict.mli: Decision Request Rule_policy
