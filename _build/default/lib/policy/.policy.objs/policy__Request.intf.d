lib/policy/request.mli: Asp Attribute Format
