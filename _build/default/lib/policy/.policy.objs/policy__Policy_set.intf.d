lib/policy/policy_set.mli: Decision Expr Format Request Rule_policy
