lib/policy/expr.mli: Attribute Format Request
