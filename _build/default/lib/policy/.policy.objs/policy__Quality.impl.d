lib/policy/quality.ml: Decision Expr Fmt List Request Rule_policy
