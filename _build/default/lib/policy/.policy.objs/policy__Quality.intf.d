lib/policy/quality.mli: Format Request Rule_policy
