lib/policy/decision.ml: Fmt
