lib/policy/attribute.mli: Asp Format Map
