lib/policy/decision.mli: Format
