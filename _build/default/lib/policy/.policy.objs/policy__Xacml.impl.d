lib/policy/xacml.ml: Asg Asp Attribute Decision Expr Ilp List Option Printf Request Rule_policy
