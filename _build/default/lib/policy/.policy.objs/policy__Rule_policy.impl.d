lib/policy/rule_policy.ml: Decision Expr Fmt List Request
