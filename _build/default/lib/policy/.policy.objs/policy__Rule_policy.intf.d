lib/policy/rule_policy.mli: Decision Expr Format Request
