lib/policy/xacml_xml.mli: Rule_policy
