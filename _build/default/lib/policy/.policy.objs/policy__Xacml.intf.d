lib/policy/xacml.mli: Asg Asp Attribute Decision Expr Ilp Request Rule_policy
