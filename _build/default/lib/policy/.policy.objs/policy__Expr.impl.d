lib/policy/expr.ml: Attribute Fmt List Request
