(** The XACML-subset policy model: rules with targets, conditions and
    effects, grouped into policies under a combining algorithm. *)

type effect = Permit | Deny

type rule = {
  rid : string;
  effect : effect;
  target : Expr.t;  (** applicability *)
  condition : Expr.t;  (** must also hold for the effect to fire *)
}

type combining =
  | First_applicable
  | Deny_overrides
  | Permit_overrides
  | Deny_unless_permit
  | Permit_unless_deny

type t = {
  pid : string;
  target : Expr.t;
  rules : rule list;
  alg : combining;
}

let rule ?(target = Expr.True) ?(condition = Expr.True) ~effect rid =
  { rid; effect; target; condition }

let make ?(target = Expr.True) ?(alg = First_applicable) pid rules =
  { pid; target; rules; alg }

let effect_to_decision = function
  | Permit -> Decision.Permit
  | Deny -> Decision.Deny

let effect_to_string = function Permit -> "Permit" | Deny -> "Deny"

let combining_to_string = function
  | First_applicable -> "first-applicable"
  | Deny_overrides -> "deny-overrides"
  | Permit_overrides -> "permit-overrides"
  | Deny_unless_permit -> "deny-unless-permit"
  | Permit_unless_deny -> "permit-unless-deny"

(** Evaluate one rule. *)
let eval_rule (r : Request.t) (rule : rule) : Decision.t =
  match Expr.eval r rule.target with
  | `No_match -> Decision.Not_applicable
  | `Missing -> Decision.Indeterminate
  | `Match -> (
    match Expr.eval r rule.condition with
    | `Match -> effect_to_decision rule.effect
    | `No_match -> Decision.Not_applicable
    | `Missing -> Decision.Indeterminate)

let combine (alg : combining) (decisions : Decision.t list) : Decision.t =
  let has d = List.exists (Decision.equal d) decisions in
  match alg with
  | First_applicable -> (
    let rec first = function
      | [] -> Decision.Not_applicable
      | (Decision.Permit | Decision.Deny | Decision.Indeterminate) as d :: _ -> d
      | Decision.Not_applicable :: rest -> first rest
    in
    first decisions)
  | Deny_overrides ->
    if has Decision.Deny then Decision.Deny
    else if has Decision.Indeterminate then Decision.Indeterminate
    else if has Decision.Permit then Decision.Permit
    else Decision.Not_applicable
  | Permit_overrides ->
    if has Decision.Permit then Decision.Permit
    else if has Decision.Indeterminate then Decision.Indeterminate
    else if has Decision.Deny then Decision.Deny
    else Decision.Not_applicable
  | Deny_unless_permit ->
    if has Decision.Permit then Decision.Permit else Decision.Deny
  | Permit_unless_deny ->
    if has Decision.Deny then Decision.Deny else Decision.Permit

(** Evaluate a policy against a request. *)
let evaluate (p : t) (r : Request.t) : Decision.t =
  match Expr.eval r p.target with
  | `No_match -> Decision.Not_applicable
  | `Missing -> Decision.Indeterminate
  | `Match -> combine p.alg (List.map (eval_rule r) p.rules)

(** Evaluate a list of policies under a top-level combining algorithm (a
    one-level policy set). *)
let evaluate_set ?(alg = Deny_overrides) (ps : t list) (r : Request.t) :
    Decision.t =
  combine alg (List.map (fun p -> evaluate p r) ps)

(** Rules applicable to a request (target and condition both match). *)
let applicable_rules (p : t) (r : Request.t) : rule list =
  if Expr.matches r p.target then
    List.filter
      (fun (rule : rule) ->
        Expr.matches r rule.target && Expr.matches r rule.condition)
      p.rules
  else []

let pp_rule ppf rule =
  Fmt.pf ppf "rule %s: %s if %a" rule.rid
    (effect_to_string rule.effect)
    Expr.pp
    (match (rule.target, rule.condition) with
    | Expr.True, c -> c
    | t, Expr.True -> t
    | t, c -> Expr.And [ t; c ])

let pp ppf p =
  Fmt.pf ppf "policy %s [%s]" p.pid (combining_to_string p.alg);
  (match p.target with
  | Expr.True -> ()
  | t -> Fmt.pf ppf " target %a" Expr.pp t);
  List.iter (fun rule -> Fmt.pf ppf "@.  %a" pp_rule rule) p.rules

let to_string p = Fmt.str "%a" pp p
