(** Categorical naive Bayes with Laplace smoothing. *)

type t

val train : Dataset.t -> t
val classify : t -> string array -> string
