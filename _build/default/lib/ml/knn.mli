(** k-nearest neighbours with Hamming distance over categorical
    features. *)

type t

val train : ?k:int -> Dataset.t -> t
val classify : t -> string array -> string
