(** Classifier evaluation: accuracy and learning curves. *)

type classifier = { name : string; train : Dataset.t -> string array -> string }

let decision_tree =
  {
    name = "decision-tree";
    train = (fun d -> let m = Decision_tree.train d in Decision_tree.classify m);
  }

let naive_bayes =
  {
    name = "naive-bayes";
    train = (fun d -> let m = Naive_bayes.train d in Naive_bayes.classify m);
  }

let knn ?(k = 3) () =
  { name = Printf.sprintf "%d-nn" k;
    train = (fun d -> let m = Knn.train ~k d in Knn.classify m) }

let majority_class =
  {
    name = "majority";
    train =
      (fun d ->
        let label = Option.value ~default:"?" (Dataset.majority_label d) in
        fun _ -> label);
  }

let accuracy (predict : string array -> string) (test : Dataset.t) : float =
  match test.Dataset.instances with
  | [] -> 1.0
  | instances ->
    let correct =
      List.length
        (List.filter
           (fun (i : Dataset.instance) ->
             predict i.Dataset.features = i.Dataset.label)
           instances)
    in
    float_of_int correct /. float_of_int (List.length instances)

(** Learning curve: train on the first [n] instances for each [n] in
    [sizes], evaluate on [test]. *)
let learning_curve (c : classifier) ~(train : Dataset.t) ~(test : Dataset.t)
    ~(sizes : int list) : (int * float) list =
  List.map
    (fun n ->
      let sub = Dataset.take n train in
      let predict = c.train sub in
      (n, accuracy predict test))
    sizes
