(** Categorical datasets for the shallow-ML baselines the paper's CAV
    comparison is made against (Section IV-A): feature vectors of string
    values plus a class label. *)

type instance = { features : string array; label : string }

type t = {
  feature_names : string array;
  instances : instance list;
}

let make ~feature_names instances = { feature_names; instances }
let size d = List.length d.instances
let labels d = List.sort_uniq compare (List.map (fun i -> i.label) d.instances)

let feature_values d j =
  List.sort_uniq compare (List.map (fun i -> i.features.(j)) d.instances)

(** Deterministic pseudo-random shuffle (caller provides the seed). *)
let shuffle ~seed d =
  let st = Random.State.make [| seed |] in
  let arr = Array.of_list d.instances in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  { d with instances = Array.to_list arr }

(** First [n] instances as training set, rest as test set. *)
let split_at n d =
  let rec go i acc = function
    | [] -> (List.rev acc, [])
    | x :: rest ->
      if i >= n then (List.rev acc, x :: rest) else go (i + 1) (x :: acc) rest
  in
  let train, test = go 0 [] d.instances in
  ({ d with instances = train }, { d with instances = test })

let take n d =
  let train, _ = split_at n d in
  train

(** Majority label of a dataset ([None] when empty). *)
let majority_label d =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun i ->
      Hashtbl.replace tally i.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally i.label)))
    d.instances;
  Hashtbl.fold
    (fun label n acc ->
      match acc with
      | Some (_, best) when best >= n -> acc
      | _ -> Some (label, n))
    tally None
  |> Option.map fst
