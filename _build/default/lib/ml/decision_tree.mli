(** ID3 decision-tree induction with information gain. Zero-gain splits
    still happen while the node is impure (XOR-like targets), with
    termination guaranteed by the shrinking feature list. *)

type node =
  | Leaf of string
  | Split of int * (string * node) list * string
      (** feature index, branches by value, default for unseen values *)

type t = { tree : node; feature_names : string array }

val train : ?max_depth:int -> Dataset.t -> t
val classify : t -> string array -> string
val depth : node -> int
