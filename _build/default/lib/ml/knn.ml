(** k-nearest neighbours over categorical features with Hamming distance. *)

type t = { k : int; train : Dataset.instance list }

let train ?(k = 3) (d : Dataset.t) : t = { k; train = d.Dataset.instances }

let hamming (a : string array) (b : string array) =
  let n = min (Array.length a) (Array.length b) in
  let d = ref 0 in
  for i = 0 to n - 1 do
    if a.(i) <> b.(i) then incr d
  done;
  !d

let classify (t : t) (features : string array) : string =
  let scored =
    List.map
      (fun (i : Dataset.instance) -> (hamming i.Dataset.features features, i))
      t.train
  in
  let sorted = List.sort (fun (d1, _) (d2, _) -> compare d1 d2) scored in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  let nearest = take t.k sorted in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (_, (i : Dataset.instance)) ->
      Hashtbl.replace tally i.Dataset.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally i.Dataset.label)))
    nearest;
  Hashtbl.fold
    (fun label n acc ->
      match acc with
      | Some (_, best) when best >= n -> acc
      | _ -> Some (label, n))
    tally None
  |> Option.map fst
  |> Option.value ~default:"?"
