(** Categorical naive Bayes with Laplace smoothing. *)

type t = {
  labels : string list;
  priors : (string * float) list;
  (* (label, feature index, value) -> conditional log-probability *)
  cond : (string * int * string, float) Hashtbl.t;
  feature_values : string list array;
  n_features : int;
}

let train (d : Dataset.t) : t =
  let labels = Dataset.labels d in
  let n = float_of_int (Dataset.size d) in
  let n_features = Array.length d.Dataset.feature_names in
  let count_label l =
    List.length
      (List.filter (fun (i : Dataset.instance) -> i.Dataset.label = l)
         d.Dataset.instances)
  in
  let priors =
    List.map (fun l -> (l, float_of_int (count_label l) /. n)) labels
  in
  let feature_values = Array.init n_features (Dataset.feature_values d) in
  let cond = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let of_label =
        List.filter (fun (i : Dataset.instance) -> i.Dataset.label = l)
          d.Dataset.instances
      in
      let nl = float_of_int (List.length of_label) in
      for j = 0 to n_features - 1 do
        let vocab = feature_values.(j) in
        let k = float_of_int (List.length vocab) in
        List.iter
          (fun v ->
            let c =
              List.length
                (List.filter
                   (fun (i : Dataset.instance) -> i.Dataset.features.(j) = v)
                   of_label)
            in
            (* Laplace smoothing *)
            let p = (float_of_int c +. 1.0) /. (nl +. k) in
            Hashtbl.replace cond (l, j, v) (log p))
          vocab
      done)
    labels;
  { labels; priors; cond; feature_values; n_features }

let classify (t : t) (features : string array) : string =
  let score l =
    let prior = log (List.assoc l t.priors +. 1e-9) in
    let rec go j acc =
      if j >= t.n_features then acc
      else
        let v = features.(j) in
        let lp =
          match Hashtbl.find_opt t.cond (l, j, v) with
          | Some lp -> lp
          | None ->
            (* unseen value: uniform smoothed mass *)
            log (1.0 /. float_of_int (1 + List.length t.feature_values.(j)))
        in
        go (j + 1) (acc +. lp)
    in
    go 0 prior
  in
  match t.labels with
  | [] -> "?"
  | first :: rest ->
    fst
      (List.fold_left
         (fun (bl, bs) l ->
           let s = score l in
           if s > bs then (l, s) else (bl, bs))
         (first, score first) rest)
