(** ID3 decision-tree induction with information gain — the canonical
    shallow-ML baseline. *)

type node =
  | Leaf of string
  | Split of int * (string * node) list * string
      (** feature index, branches by value, default label for unseen values *)

type t = { tree : node; feature_names : string array }

let entropy (instances : Dataset.instance list) =
  let n = float_of_int (List.length instances) in
  if n = 0.0 then 0.0
  else begin
    let tally = Hashtbl.create 8 in
    List.iter
      (fun (i : Dataset.instance) ->
        Hashtbl.replace tally i.Dataset.label
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally i.Dataset.label)))
      instances;
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. n in
        acc -. (p *. (log p /. log 2.0)))
      tally 0.0
  end

let majority (instances : Dataset.instance list) =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (i : Dataset.instance) ->
      Hashtbl.replace tally i.Dataset.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally i.Dataset.label)))
    instances;
  Hashtbl.fold
    (fun label n acc ->
      match acc with
      | Some (_, best) when best >= n -> acc
      | _ -> Some (label, n))
    tally None
  |> Option.map fst
  |> Option.value ~default:"?"

let partition_by j instances =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (i : Dataset.instance) ->
      let v = i.Dataset.features.(j) in
      Hashtbl.replace groups v
        (i :: Option.value ~default:[] (Hashtbl.find_opt groups v)))
    instances;
  Hashtbl.fold (fun v is acc -> (v, List.rev is) :: acc) groups []

let information_gain instances j =
  let base = entropy instances in
  let n = float_of_int (List.length instances) in
  let weighted =
    List.fold_left
      (fun acc (_, group) ->
        acc +. (float_of_int (List.length group) /. n *. entropy group))
      0.0
      (partition_by j instances)
  in
  base -. weighted

let rec grow instances remaining_features ~max_depth =
  let all_same =
    match instances with
    | [] -> true
    | (first : Dataset.instance) :: rest ->
      List.for_all
        (fun (i : Dataset.instance) -> i.Dataset.label = first.Dataset.label)
        rest
  in
  if all_same || remaining_features = [] || max_depth = 0 then
    Leaf (majority instances)
  else begin
    let best =
      List.fold_left
        (fun acc j ->
          let g = information_gain instances j in
          match acc with
          | Some (_, bg) when bg >= g -> acc
          | _ -> Some (j, g))
        None remaining_features
    in
    (* split even on zero gain while impure (handles XOR-like targets
       where no single feature is informative at the root); recursion
       terminates because the feature list shrinks *)
    match best with
    | None -> Leaf (majority instances)
    | Some (j, _) ->
      let rest = List.filter (fun k -> k <> j) remaining_features in
      let branches =
        List.map
          (fun (v, group) -> (v, grow group rest ~max_depth:(max_depth - 1)))
          (partition_by j instances)
      in
      Split (j, branches, majority instances)
  end

let train ?(max_depth = 16) (d : Dataset.t) : t =
  let features = List.init (Array.length d.Dataset.feature_names) Fun.id in
  { tree = grow d.Dataset.instances features ~max_depth;
    feature_names = d.Dataset.feature_names }

let rec classify_node node (features : string array) =
  match node with
  | Leaf label -> label
  | Split (j, branches, default) -> (
    match List.assoc_opt features.(j) branches with
    | Some child -> classify_node child features
    | None -> default)

let classify (t : t) features = classify_node t.tree features

let rec depth = function
  | Leaf _ -> 1
  | Split (_, branches, _) ->
    1 + List.fold_left (fun acc (_, n) -> max acc (depth n)) 0 branches
