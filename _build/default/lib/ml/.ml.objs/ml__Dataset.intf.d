lib/ml/dataset.mli:
