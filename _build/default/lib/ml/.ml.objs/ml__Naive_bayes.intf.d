lib/ml/naive_bayes.mli: Dataset
