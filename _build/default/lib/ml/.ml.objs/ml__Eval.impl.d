lib/ml/eval.ml: Dataset Decision_tree Knn List Naive_bayes Option Printf
