lib/ml/knn.mli: Dataset
