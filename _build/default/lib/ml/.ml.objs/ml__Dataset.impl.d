lib/ml/dataset.ml: Array Hashtbl List Option Random
