lib/ml/decision_tree.ml: Array Dataset Fun Hashtbl List Option
