lib/ml/eval.mli: Dataset
