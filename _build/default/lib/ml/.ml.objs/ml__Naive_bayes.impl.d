lib/ml/naive_bayes.ml: Array Dataset Hashtbl List
