lib/ml/decision_tree.mli: Dataset
